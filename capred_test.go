package capred_test

import (
	"bytes"
	"strings"
	"testing"

	"capred"
)

func TestQuickstartFlow(t *testing.T) {
	p := capred.NewHybrid(capred.DefaultHybridConfig())
	spec, ok := capred.TraceByName("INT_xli")
	if !ok {
		t.Fatal("INT_xli missing from the roster")
	}
	c, err := capred.RunTrace(capred.Limit(spec.Open(), 80_000), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Loads == 0 {
		t.Fatal("no loads")
	}
	if c.PredRate() <= 0.3 {
		t.Errorf("prediction rate %.3f implausibly low", c.PredRate())
	}
	if !strings.Contains(c.String(), "pred-rate") {
		t.Error("Counters summary missing fields")
	}
}

func TestCustomWorkloadComposition(t *testing.T) {
	g := capred.NewGenerator(42)
	g.AddShare(capred.NewLinkedList(g, 8, 1), 50)
	g.AddShare(capred.NewArrayWalk(g, 1000, 4, 8), 50)
	cap, err := capred.RunTrace(capred.Limit(g, 40_000), capred.NewCAP(capred.DefaultCAPConfig()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cap.SpecCorrect == 0 {
		t.Error("CAP predicted nothing on a list-heavy custom workload")
	}
}

func TestTraceRoundTripThroughPublicAPI(t *testing.T) {
	spec, _ := capred.TraceByName("JAV_aud")
	var buf bytes.Buffer
	w := capred.NewTraceWriter(&buf)
	src := capred.Limit(spec.Open(), 5000)
	var n int
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Emit(ev); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := capred.NewTraceReader(&buf)
	stats, err := capred.CollectStats(r)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != int64(n) {
		t.Errorf("decoded %d events, wrote %d", stats.Total, n)
	}
}

func TestGapThroughPublicAPI(t *testing.T) {
	cfg := capred.DefaultHybridConfig()
	cfg.Speculative = true
	g := capred.NewGap(capred.NewHybrid(cfg), 8)
	for i := 0; i < 100; i++ {
		g.Process(capred.LoadRef{IP: 0x40}, 0x1234)
	}
	g.Drain()
	if g.Pending() != 0 {
		t.Error("gap did not drain")
	}
}

func TestMachineThroughPublicAPI(t *testing.T) {
	spec, _ := capred.TraceByName("MM_aud")
	base := capred.RunMachine(capred.Limit(spec.Open(), 40_000), nil, 0, capred.DefaultMachineConfig())
	hyb := capred.RunMachine(capred.Limit(spec.Open(), 40_000),
		capred.NewHybrid(capred.DefaultHybridConfig()), 0, capred.DefaultMachineConfig())
	if hyb.Cycles >= base.Cycles {
		t.Errorf("prediction should save cycles: base=%d hybrid=%d", base.Cycles, hyb.Cycles)
	}
}

func TestExperimentTableRendering(t *testing.T) {
	r := capred.Fig10(capred.ExperimentConfig{EventsPerTrace: 20_000})
	out := r.Table().String()
	for _, want := range []string{"no tag", "8 bit tag + path", "misprediction"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig10 table missing %q:\n%s", want, out)
		}
	}
}
