package cpu

import (
	"testing"

	"capred/internal/predictor"
	"capred/internal/prefetch"
	"capred/internal/trace"
	"capred/internal/workload"
)

// aluTrace returns n independent ALU ops.
func aluTrace(n int) trace.Source {
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{Kind: trace.KindALU, IP: uint32(4 * i)}
	}
	return trace.NewSliceSource(evs)
}

// chainTrace returns n ALU ops where each depends on the previous.
func chainTrace(n int) trace.Source {
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{Kind: trace.KindALU, IP: uint32(4 * i)}
		if i > 0 {
			evs[i].Src1 = 1
		}
	}
	return trace.NewSliceSource(evs)
}

func TestIndependentALUBoundedByWidth(t *testing.T) {
	const n = 8000
	r := Run(aluTrace(n), nil, 0, DefaultConfig())
	if r.Instructions != n {
		t.Fatalf("retired %d, want %d", r.Instructions, n)
	}
	// 8-wide fetch, 10 FUs: IPC should approach 8.
	if ipc := r.IPC(); ipc < 6 {
		t.Errorf("independent ALU IPC = %.2f, want near the fetch width", ipc)
	}
}

func TestDependentChainSerialises(t *testing.T) {
	const n = 8000
	r := Run(chainTrace(n), nil, 0, DefaultConfig())
	// A single dependence chain of unit-latency ops: ~1 IPC.
	if ipc := r.IPC(); ipc > 1.2 {
		t.Errorf("chained ALU IPC = %.2f, want about 1", ipc)
	}
}

func TestFULimitBinds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FUs = 2
	cfg.FetchWidth = 8
	r := Run(aluTrace(8000), nil, 0, cfg)
	if ipc := r.IPC(); ipc > 2.2 {
		t.Errorf("IPC = %.2f with 2 FUs, want ≤ ~2", ipc)
	}
}

func TestBranchMispredictionsCostCycles(t *testing.T) {
	// Alternating taken/not-taken confuses the 2-bit counters less than
	// random; compare random outcomes vs all-taken.
	mk := func(rndTaken bool) trace.Source {
		evs := make([]trace.Event, 6000)
		x := uint32(12345)
		for i := range evs {
			taken := true
			if rndTaken {
				x = x*1664525 + 1013904223
				taken = x>>16&1 != 0 // high LCG bit: long period
			}
			evs[i] = trace.Event{Kind: trace.KindBranch, IP: 0x100, Taken: taken}
		}
		return trace.NewSliceSource(evs)
	}
	steady := Run(mk(false), nil, 0, DefaultConfig())
	random := Run(mk(true), nil, 0, DefaultConfig())
	if random.Cycles <= steady.Cycles {
		t.Errorf("random branches (%d cycles) should cost more than steady (%d)",
			random.Cycles, steady.Cycles)
	}
	if steady.BranchMispreds > random.BranchMispreds {
		t.Error("steady branches should mispredict less")
	}
}

// pointerChase builds a trace of loads where each load's address comes
// from the previous one (a linked-list walk), repeated over a small ring
// of addresses so a context predictor can learn it.
func pointerChase(n int) []trace.Event {
	addrs := []uint32{0x1010, 0x8058, 0x4024, 0x20c8, 0x60e4, 0x70a8}
	evs := make([]trace.Event, 0, 2*n)
	for i := 0; i < n; i++ {
		ev := trace.Event{
			Kind: trace.KindLoad, IP: 0x100,
			Addr: addrs[i%len(addrs)] + 8, Offset: 8,
		}
		if i > 0 {
			ev.Src1 = 2 // previous load (one ALU in between)
		}
		evs = append(evs, ev)
		evs = append(evs, trace.Event{Kind: trace.KindALU, IP: 0x200, Src1: 1})
	}
	return evs
}

func TestAddressPredictionSpeedsUpPointerChase(t *testing.T) {
	evs := pointerChase(6000)
	base := Run(trace.NewSliceSource(evs), nil, 0, DefaultConfig())
	pred := Run(trace.NewSliceSource(evs),
		predictor.NewHybrid(predictor.DefaultHybridConfig()), 0, DefaultConfig())
	if pred.Cycles >= base.Cycles {
		t.Fatalf("prediction did not help: base=%d pred=%d cycles", base.Cycles, pred.Cycles)
	}
	speedup := float64(base.Cycles) / float64(pred.Cycles)
	if speedup < 1.2 {
		t.Errorf("pointer-chase speedup = %.2f, want substantial", speedup)
	}
	if pred.CorrectSpec == 0 {
		t.Error("no correct speculative accesses recorded")
	}
}

func TestPredictionHelpsChainsMoreThanArrays(t *testing.T) {
	// §2: address prediction is the enabler for parallel execution of
	// recursive data structures, while strided code already pipelines.
	// The speedup on a dependent chain must exceed that on an array walk.
	arr := make([]trace.Event, 0, 12000)
	for i := 0; i < 6000; i++ {
		arr = append(arr, trace.Event{
			Kind: trace.KindLoad, IP: 0x100, Addr: uint32(0x100000 + 8*(i%512)),
		})
		arr = append(arr, trace.Event{Kind: trace.KindALU, IP: 0x200, Src1: 1})
	}
	speedup := func(evs []trace.Event) float64 {
		base := Run(trace.NewSliceSource(evs), nil, 0, DefaultConfig())
		pred := Run(trace.NewSliceSource(evs),
			predictor.NewHybrid(predictor.DefaultHybridConfig()), 0, DefaultConfig())
		return float64(base.Cycles) / float64(pred.Cycles)
	}
	chase := speedup(pointerChase(6000))
	array := speedup(arr)
	if chase <= array {
		t.Errorf("chain speedup (%.2f) should exceed array speedup (%.2f)", chase, array)
	}
}

func TestMispredictionPenaltyHurts(t *testing.T) {
	// A predictor that speculates wrongly on random addresses must not
	// beat the no-prediction baseline... construct random loads and a
	// hostile always-speculate predictor.
	evs := make([]trace.Event, 0, 8000)
	x := uint32(7)
	for i := 0; i < 4000; i++ {
		x = x*1664525 + 1013904223
		evs = append(evs, trace.Event{Kind: trace.KindLoad, IP: 0x100, Addr: x &^ 3})
		evs = append(evs, trace.Event{Kind: trace.KindALU, Src1: 1})
	}
	base := Run(trace.NewSliceSource(evs), nil, 0, DefaultConfig())
	hostile := Run(trace.NewSliceSource(evs), alwaysWrong{}, 0, DefaultConfig())
	if hostile.Cycles <= base.Cycles {
		t.Errorf("wrong speculation should cost cycles: base=%d hostile=%d",
			base.Cycles, hostile.Cycles)
	}
	if hostile.MispredSpec == 0 {
		t.Error("hostile predictor should record mispredictions")
	}
}

// alwaysWrong speculates a fixed wrong address for every load.
type alwaysWrong struct{}

func (alwaysWrong) Name() string { return "always-wrong" }
func (alwaysWrong) Predict(predictor.LoadRef) predictor.Prediction {
	return predictor.Prediction{Addr: 0xDEAD0000, Predicted: true, Speculate: true}
}
func (alwaysWrong) Resolve(predictor.LoadRef, predictor.Prediction, uint32) {}

func TestWindowLimitBinds(t *testing.T) {
	// A long-latency load at the head of a full window stalls fetch: a
	// tiny window must be slower than the default on miss-heavy code.
	evs := make([]trace.Event, 0, 20000)
	x := uint32(3)
	for i := 0; i < 5000; i++ {
		x = x*1664525 + 1013904223
		evs = append(evs, trace.Event{Kind: trace.KindLoad, IP: 0x100, Addr: x &^ 3})
		evs = append(evs, trace.Event{Kind: trace.KindALU}, trace.Event{Kind: trace.KindALU}, trace.Event{Kind: trace.KindALU})
	}
	small := DefaultConfig()
	small.Window = 16
	big := Run(trace.NewSliceSource(evs), nil, 0, DefaultConfig())
	tiny := Run(trace.NewSliceSource(evs), nil, 0, small)
	if tiny.Cycles <= big.Cycles {
		t.Errorf("16-entry window (%d cycles) should be slower than 128 (%d)",
			tiny.Cycles, big.Cycles)
	}
}

func TestRunOnRealWorkload(t *testing.T) {
	spec, ok := workload.ByName("INT_xli")
	if !ok {
		t.Fatal("INT_xli missing")
	}
	src := trace.NewLimit(spec.Open(), 60_000)
	base := Run(src, nil, 0, DefaultConfig())
	if base.Instructions != 60_000 {
		t.Fatalf("instructions = %d", base.Instructions)
	}
	if base.IPC() < 0.3 || base.IPC() > 8 {
		t.Errorf("baseline IPC = %.2f, implausible", base.IPC())
	}
	src2 := trace.NewLimit(spec.Open(), 60_000)
	pred := Run(src2, predictor.NewHybrid(predictor.DefaultHybridConfig()), 0, DefaultConfig())
	if pred.Cycles >= base.Cycles {
		t.Errorf("hybrid prediction should speed up INT_xli: base=%d pred=%d",
			base.Cycles, pred.Cycles)
	}
	if base.L1HitRate <= 0 || base.L1HitRate > 1 {
		t.Errorf("L1 hit rate = %v", base.L1HitRate)
	}
}

func TestResultIPCZeroCycles(t *testing.T) {
	var r Result
	if r.IPC() != 0 {
		t.Error("IPC of empty result should be 0")
	}
}

func TestPrefetcherRaisesHitRate(t *testing.T) {
	spec, _ := workload.ByName("MM_aud")
	base := Run(trace.NewLimit(spec.Open(), 60_000), nil, 0, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Prefetcher = prefetch.NewRPT(prefetch.DefaultRPTConfig())
	pf := Run(trace.NewLimit(spec.Open(), 60_000), nil, 0, cfg)
	if !(pf.L1HitRate > base.L1HitRate) {
		t.Errorf("prefetching did not raise L1 hit rate: %.3f vs %.3f",
			pf.L1HitRate, base.L1HitRate)
	}
	if pf.Cycles >= base.Cycles {
		t.Errorf("prefetching did not save cycles on streaming MM: %d vs %d",
			pf.Cycles, base.Cycles)
	}
}

func TestRingI64(t *testing.T) {
	r := newRing(8)
	for i := int64(0); i < 20; i++ {
		r.set(i, i*10)
	}
	// Recent entries are retrievable; negative indices read as zero.
	if r.get(19) != 190 || r.get(13) != 130 {
		t.Error("ring recent reads wrong")
	}
	if r.get(-1) != 0 {
		t.Error("negative index should read 0")
	}
}

func TestResourceReserveRespectsLimit(t *testing.T) {
	r := newResource(2, 64)
	c1 := r.reserve(10)
	c2 := r.reserve(10)
	c3 := r.reserve(10)
	if c1 != 10 || c2 != 10 {
		t.Errorf("first two reservations at 10: got %d, %d", c1, c2)
	}
	if c3 != 11 {
		t.Errorf("third reservation should spill to 11, got %d", c3)
	}
	// Earlier cycles can still be reserved if within the ring window.
	if c := r.reserve(5); c != 5 {
		t.Errorf("backfill reservation = %d, want 5", c)
	}
}

func TestTournamentLearnsLoopPattern(t *testing.T) {
	// Period-8 pattern TTTTTTTN: the local component must learn it.
	bp := newTournament(12, 10)
	misses := 0
	for i := 0; i < 4000; i++ {
		taken := i%8 != 7
		if bp.predict(0x40) != taken && i > 1000 {
			misses++
		}
		bp.update(0x40, taken)
	}
	if misses > 60 {
		t.Errorf("tournament mispredicted %d/3000 on a period-8 loop", misses)
	}
}
