// Package cpu is a trace-driven out-of-order timing model with the
// headline parameters of the paper's performance simulator (§4.1): 8-wide
// fetch, a 128-entry instruction window, 10 functional units, 4 data-cache
// ports, a g-share branch predictor, the memsys two-level data-cache
// hierarchy, and optional load-address prediction with selective recovery.
//
// The model computes, for every instruction, the cycle at which it
// fetches, issues (dependences + structural resources), completes and
// retires. It is not cycle-accurate against any real machine — the paper's
// own caveat applies ("actual performance benefits are highly dependent on
// the implementation") — but it reproduces the terms that address
// prediction changes: load-to-use latency on dependence chains, finite
// window/width, and misprediction recovery.
package cpu

import (
	"context"
	"fmt"

	"capred/internal/memsys"
	"capred/internal/pipeline"
	"capred/internal/predictor"
	"capred/internal/prefetch"
	"capred/internal/trace"
)

// Config parameterises the machine.
type Config struct {
	FetchWidth int // instructions fetched per cycle
	Window     int // in-flight instruction limit (ROB size)
	FUs        int // functional units accepting one op per cycle each
	CachePorts int // data-cache ports per cycle
	FrontDepth int // front-end stages between fetch and dispatch

	BranchFlushPenalty int // extra cycles after a mispredicted branch resolves
	AddrMispredPenalty int // selective-recovery cost of a wrong speculative access
	// LoadPipeExtra is the scheduling + address-generation pipeline a
	// normal load pays before its cache access starts; a correct address
	// prediction moves the whole access into the front end (§1: "remaining
	// activities, including the cache access, can be processed
	// speculatively early in the pipeline").
	LoadPipeExtra int

	BranchTableBits int // g-share table size (2^bits counters)
	BranchHistBits  int

	Hierarchy memsys.HierarchyConfig

	// Prefetcher, when non-nil, observes every load and warms the cache
	// hierarchy with its proposals (prefetch traffic is modelled as free
	// background bandwidth; only its cache-state effect is simulated).
	Prefetcher prefetch.Prefetcher

	// Ctx, when non-nil, cancels the run at the next event boundary; the
	// partial Result then carries the context's error in Err.
	Ctx context.Context
}

// DefaultConfig mirrors §4.1.
func DefaultConfig() Config {
	return Config{
		FetchWidth:         8,
		Window:             128,
		FUs:                10,
		CachePorts:         4,
		FrontDepth:         8,
		BranchFlushPenalty: 9,
		AddrMispredPenalty: 4,
		LoadPipeExtra:      8,
		BranchTableBits:    14,
		BranchHistBits:     12,
		Hierarchy:          memsys.DefaultHierarchyConfig(),
	}
}

// Result reports the timing outcome of one run.
type Result struct {
	Instructions int64
	Cycles       int64

	// Err is non-nil when the trace source failed (truncation, decode
	// error) or the run was cancelled: the cycle counts then cover only
	// the prefix simulated before the failure.
	Err error

	Loads        int64
	SpecAccesses int64
	CorrectSpec  int64
	MispredSpec  int64

	Branches       int64
	BranchMispreds int64

	L1HitRate float64
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// ringI64 is a fixed-size ring of int64 indexed by a monotonically
// increasing sequence number; entries older than the capacity are
// overwritten, which is safe because consumers only look back a bounded
// distance (the window size or dependency horizon).
type ringI64 struct {
	buf  []int64
	mask int64
}

func newRing(capacity int) *ringI64 {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ringI64{buf: make([]int64, n), mask: int64(n - 1)}
}

func (r *ringI64) get(i int64) int64 {
	if i < 0 {
		return 0
	}
	return r.buf[i&r.mask]
}

func (r *ringI64) set(i int64, v int64) { r.buf[i&r.mask] = v }

// resource tracks per-cycle usage of a structural resource with a ring of
// counters. Cells are zeroed the first time the simulation's cycle
// frontier passes them; the ring is sized well beyond the maximum
// look-back (window size + worst-case memory latency), so a reservation
// never reads a cell that has not been cleared for its cycle.
type resource struct {
	used    []int32
	limit   int32
	mask    int64
	maxSeen int64
}

func newResource(limit, span int) *resource {
	n := 1
	for n < span {
		n <<= 1
	}
	return &resource{used: make([]int32, n), limit: int32(limit), mask: int64(n - 1), maxSeen: -1}
}

// reserve finds the first cycle ≥ from with a free slot and claims it.
func (r *resource) reserve(from int64) int64 {
	c := from
	for {
		if c > r.maxSeen {
			for i := r.maxSeen + 1; i <= c; i++ {
				r.used[i&r.mask] = 0
			}
			r.maxSeen = c
		}
		if r.used[c&r.mask] < r.limit {
			r.used[c&r.mask]++
			return c
		}
		c++
	}
}

// tournament is the §4.1 "hybrid branch predictor": a g-share global
// component, a two-level local-history component, and a per-branch
// chooser. The local component matters here because the out-of-order mix
// interleaves many independent loops, which scrambles global history.
type tournament struct {
	gtab  []uint8
	hist  uint32
	gmask uint32
	hmask uint32

	lhist []uint16
	lpht  []uint8
	lmask uint32

	choose []uint8
}

func newTournament(tableBits, histBits int) *tournament {
	return &tournament{
		gtab:   make([]uint8, 1<<uint(tableBits)),
		gmask:  uint32(1)<<uint(tableBits) - 1,
		hmask:  uint32(1)<<uint(histBits) - 1,
		lhist:  make([]uint16, 2048),
		lpht:   make([]uint8, 4096),
		lmask:  4095,
		choose: make([]uint8, 4096),
	}
}

func (t *tournament) gIdx(ip uint32) uint32 { return (ip>>2 ^ t.hist&t.hmask) & t.gmask }

func (t *tournament) lIdx(ip uint32) (int, uint32) {
	li := int(ip >> 2 & 2047)
	return li, uint32(t.lhist[li]) & t.lmask
}

func (t *tournament) predict(ip uint32) bool {
	g := t.gtab[t.gIdx(ip)] >= 2
	_, lp := t.lIdx(ip)
	l := t.lpht[lp] >= 2
	if t.choose[ip>>2&4095] >= 2 {
		return g
	}
	return l
}

func (t *tournament) update(ip uint32, taken bool) {
	gi := t.gIdx(ip)
	li, lp := t.lIdx(ip)
	g := t.gtab[gi] >= 2
	l := t.lpht[lp] >= 2

	ch := &t.choose[ip>>2&4095]
	if g != l {
		if g == taken {
			if *ch < 3 {
				*ch++
			}
		} else if *ch > 0 {
			*ch--
		}
	}
	bump := func(e *uint8) {
		if taken {
			if *e < 3 {
				*e++
			}
		} else if *e > 0 {
			*e--
		}
	}
	bump(&t.gtab[gi])
	bump(&t.lpht[lp])
	t.lhist[li] = t.lhist[li]<<1 | uint16(b2u(taken))
	t.hist = t.hist<<1 | b2u(taken)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Run simulates the trace on the configured machine. pred may be nil (no
// address prediction — the paper's baseline) or any Predictor; gapDepth
// defers prediction verification by that many dynamic loads (§5). When
// gapDepth > 0 the predictor must be built in speculative mode.
func Run(src trace.Source, pred predictor.Predictor, gapDepth int, cfg Config) Result {
	var (
		res  Result
		hier = memsys.NewHierarchy(cfg.Hierarchy)
		bp   = newTournament(cfg.BranchTableBits, cfg.BranchHistBits)
		ghr  predictor.GHR
		path predictor.PathHist

		complete = newRing(1 << 12) // per-seq completion cycles
		retire   = newRing(cfg.Window * 2)

		seq        int64
		fetchCycle int64 // cycle currently being filled with fetches
		fetchUsed  int   // fetches already issued this cycle
		flushUntil int64 // front-end stall from a branch misprediction

		fus   = newResource(cfg.FUs, 1<<12)
		ports = newResource(cfg.CachePorts, 1<<12)

		gap *pipeline.Gap
	)
	if pred != nil {
		gap = pipeline.New(pred, gapDepth)
	}

	lastRetire := int64(0)

	// Events arrive in pooled SoA blocks — polling the context (and paying
	// the source's interface dispatch) once per block instead of once per
	// event keeps cancellation latency in the microseconds, and the block
	// stays on the warm replay cursor's zero-copy path end to end. The
	// timing model reads most fields of every kind (the readiness check
	// consumes Src1/Src2 before the kind dispatch), so each event is
	// gathered through the kind-gated Event accessor rather than read
	// column-wise: fields a kind does not carry must come back zero here,
	// not as another event's stale column data.
	bs := trace.AsBlocks(src)
	block := trace.GetBlock()
	defer trace.PutBlock(block)
	for {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				res.Err = err
				break
			}
		}
		n, ok := bs.NextBlock(block, trace.BlockLen)
		for bi := 0; bi < n; bi++ {
			ev := block.Event(bi)

			// Fetch: width-limited, stalled by flushes and the finite window.
			f := fetchCycle
			if flushUntil > f {
				f, fetchUsed = flushUntil, 0
			}
			if wstart := retire.get(seq - int64(cfg.Window)); wstart > f {
				f, fetchUsed = wstart, 0
			}
			if fetchUsed >= cfg.FetchWidth {
				f, fetchUsed = f+1, 0
			}
			fetchCycle = f
			fetchUsed++

			dispatch := f + int64(cfg.FrontDepth)

			// Readiness: dispatch plus source operands. Producers further back
			// than the completion ring have long retired; their values are
			// ready by construction.
			ready := dispatch
			if d := int64(ev.Src1); d != 0 && d <= complete.mask {
				if c := complete.get(seq - d); c > ready {
					ready = c
				}
			}
			if d := int64(ev.Src2); d != 0 && d <= complete.mask {
				if c := complete.get(seq - d); c > ready {
					ready = c
				}
			}

			var done int64
			switch ev.Kind {
			case trace.KindALU:
				issue := fus.reserve(ready)
				done = issue + int64(ev.Latency())

			case trace.KindStore:
				issue := fus.reserve(ready)
				issue = ports.reserve(issue)
				hier.Access(ev.Addr, true)
				done = issue + 1

			case trace.KindLoad:
				res.Loads++
				if cfg.Prefetcher != nil {
					if pfAddr, ok := cfg.Prefetcher.Observe(ev.IP, ev.Addr); ok {
						hier.Prefetch(pfAddr)
					}
				}
				var p predictor.Prediction
				if gap != nil {
					ref := predictor.LoadRef{
						IP: ev.IP, Offset: ev.Offset,
						GHR: ghr.Value(), Path: path.Value(),
					}
					p = gap.Process(ref, ev.Addr)
				}
				lat := int64(hier.Access(ev.Addr, false))
				switch {
				case p.Speculate && p.Addr == ev.Addr:
					// Correct speculative access: launched in the front end at
					// fetch, so the data returns at f+lat and dependents do not
					// wait for address generation. The port was used early.
					res.SpecAccesses++
					res.CorrectSpec++
					ports.reserve(f)
					avail := f + lat
					if avail < dispatch+1 {
						avail = dispatch + 1
					}
					// Verification still occupies a unit once sources arrive.
					fus.reserve(ready)
					done = avail
				case p.Speculate:
					// Wrong speculative access: normal access plus selective
					// re-execution of the dependents already scheduled.
					res.SpecAccesses++
					res.MispredSpec++
					ports.reserve(f)
					issue := fus.reserve(ready)
					issue = ports.reserve(issue)
					done = issue + int64(cfg.LoadPipeExtra) + lat + int64(cfg.AddrMispredPenalty)
				default:
					issue := fus.reserve(ready)
					issue = ports.reserve(issue)
					done = issue + int64(cfg.LoadPipeExtra) + lat
				}

			case trace.KindBranch:
				res.Branches++
				issue := fus.reserve(ready)
				done = issue + 1
				if bp.predict(ev.IP) != ev.Taken {
					res.BranchMispreds++
					if fl := done + int64(cfg.BranchFlushPenalty); fl > flushUntil {
						flushUntil = fl
					}
				}
				bp.update(ev.IP, ev.Taken)
				ghr.Update(ev.Taken)

			case trace.KindCall, trace.KindReturn:
				issue := fus.reserve(ready)
				done = issue + 1
				if ev.Kind == trace.KindCall {
					path.Push(ev.IP)
				}
			}

			complete.set(seq, done)
			ret := done
			if ret < lastRetire {
				ret = lastRetire
			}
			retire.set(seq, ret)
			lastRetire = ret

			seq++
		}
		if !ok {
			break
		}
	}
	if gap != nil {
		gap.Drain()
	}
	res.Instructions = seq
	res.Cycles = lastRetire
	res.L1HitRate = hier.L1.HitRate()
	// A decode error must not pass for clean EOF: the cycle counts of a
	// truncated run look plausible but measure a different program.
	if err := src.Err(); err != nil && res.Err == nil {
		res.Err = fmt.Errorf("trace source: %w", err)
	}
	return res
}
