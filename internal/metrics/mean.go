package metrics

import "fmt"

// Rates is the read interface shared by Counters (load-weighted pooled
// rates) and Mean (equal-weight per-trace averages). Table renderers
// accept a Rates so per-trace rows and aggregate rows format identically.
type Rates interface {
	Empty() bool
	PredRate() float64
	Accuracy() float64
	MispredRate() float64
	CorrectSpecRate() float64
	MispredOfLoads() float64
	SelStateShare(state uint8) float64
	CorrectSelectionRate() float64
}

var (
	_ Rates = Counters{}
	_ Rates = Mean{}
)

// Mean aggregates per-trace rates with equal weight, the way the paper's
// "Average" bars do: each trace contributes one sample per rate no matter
// how many loads it executes. This differs from pooling counters (which
// load-weights the aggregate, so a long surviving trace dominates under
// partial failure); the pooled view is retained in Pooled for debugging.
//
// A rate whose per-trace denominator is zero (for example accuracy on a
// trace that never speculated) contributes no sample to that rate's mean
// — matching how a per-trace table row would show "n/a" rather than 0.
//
// Mean is comparable, so result structs holding one can be compared with
// == in determinism tests, like Counters.
type Mean struct {
	Traces int      // traces folded in
	Pooled Counters // load-weighted pool of the same traces, for debugging

	// Per-rate sums and sample counts, grouped by denominator.
	nLoads          int // traces with Loads > 0
	sumPredRate     float64
	sumCorrectSpec  float64
	sumMispredLoads float64

	nSpec          int // traces with Speculated > 0
	sumAccuracy    float64
	sumMispredRate float64

	nDual         int // traces with DualConfident > 0
	sumSelState   [4]float64
	sumCorrectSel float64
}

// Add folds one trace's counters into the mean as a single equal-weight
// sample.
func (m *Mean) Add(c Counters) {
	m.Traces++
	m.Pooled.Merge(c)
	if c.Loads > 0 {
		m.nLoads++
		m.sumPredRate += c.PredRate()
		m.sumCorrectSpec += c.CorrectSpecRate()
		m.sumMispredLoads += c.MispredOfLoads()
	}
	if c.Speculated > 0 {
		m.nSpec++
		m.sumAccuracy += c.Accuracy()
		m.sumMispredRate += c.MispredRate()
	}
	if c.DualConfident > 0 {
		m.nDual++
		for s := range m.sumSelState {
			m.sumSelState[s] += c.SelStateShare(uint8(s))
		}
		m.sumCorrectSel += c.CorrectSelectionRate()
	}
}

func mean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Empty reports whether no contributing trace saw any loads.
func (m Mean) Empty() bool { return m.nLoads == 0 }

// PredRate is the equal-weight mean of the per-trace prediction rates.
func (m Mean) PredRate() float64 { return mean(m.sumPredRate, m.nLoads) }

// Accuracy is the equal-weight mean of the per-trace accuracies.
func (m Mean) Accuracy() float64 { return mean(m.sumAccuracy, m.nSpec) }

// MispredRate is the equal-weight mean of the per-trace misprediction
// rates.
func (m Mean) MispredRate() float64 { return mean(m.sumMispredRate, m.nSpec) }

// CorrectSpecRate is the equal-weight mean of the per-trace
// correct-speculative rates.
func (m Mean) CorrectSpecRate() float64 { return mean(m.sumCorrectSpec, m.nLoads) }

// MispredOfLoads is the equal-weight mean of the per-trace shares of
// loads suffering a wrong speculative access.
func (m Mean) MispredOfLoads() float64 { return mean(m.sumMispredLoads, m.nLoads) }

// SelStateShare is the equal-weight mean of the per-trace selector-state
// shares.
func (m Mean) SelStateShare(state uint8) float64 {
	if int(state) >= len(m.sumSelState) {
		return 0
	}
	return mean(m.sumSelState[state], m.nDual)
}

// CorrectSelectionRate is the equal-weight mean of the per-trace
// selection-quality metric; with no dual-confident trace it is 1, like
// the per-trace convention.
func (m Mean) CorrectSelectionRate() float64 {
	if m.nDual == 0 {
		return 1
	}
	return mean(m.sumCorrectSel, m.nDual)
}

// String renders a one-line summary in the Counters format, with the
// trace count in place of the load count.
func (m Mean) String() string {
	return fmt.Sprintf("traces=%d pred-rate=%.1f%% accuracy=%.2f%% correct-spec=%.1f%%",
		m.Traces, m.PredRate()*100, m.Accuracy()*100, m.CorrectSpecRate()*100)
}
