// Package metrics accumulates the prediction statistics reported in the
// paper's evaluation: prediction rate (speculative accesses out of all
// dynamic loads), accuracy (correct predictions out of speculative
// accesses), misprediction rate, correct-speculative rate, and the hybrid
// selector statistics of Fig. 8.
package metrics

import (
	"fmt"

	"capred/internal/predictor"
)

// Counters aggregates per-load prediction outcomes.
type Counters struct {
	Loads       int64 // dynamic loads observed
	Predicted   int64 // loads for which an address was produced
	Correct     int64 // correct among Predicted (speculated or not)
	Speculated  int64 // loads for which a speculative access was launched
	SpecCorrect int64 // correct among Speculated
	Mispred     int64 // wrong among Speculated

	// Hybrid selector statistics (Fig. 8), collected over loads where
	// both components were confident.
	DualConfident int64
	SelStates     [4]int64
	MisSelected   int64 // mispredictions the other component had right
}

// Record tallies one resolved load.
func (c *Counters) Record(p predictor.Prediction, actual uint32) {
	c.Loads++
	if p.Predicted {
		c.Predicted++
		if p.Addr == actual {
			c.Correct++
		}
	}
	if p.Speculate {
		c.Speculated++
		if p.Addr == actual {
			c.SpecCorrect++
		} else {
			c.Mispred++
		}
	}
	if p.Stride.Confident && p.CAP.Confident {
		c.DualConfident++
		if int(p.SelState) < len(c.SelStates) {
			c.SelStates[p.SelState]++
		}
		if p.Speculate && p.Addr != actual {
			other := p.Stride
			if p.Selected == predictor.CompStride {
				other = p.CAP
			}
			if other.Addr == actual {
				c.MisSelected++
			}
		}
	}
}

// Merge adds other into c.
func (c *Counters) Merge(other Counters) {
	c.Loads += other.Loads
	c.Predicted += other.Predicted
	c.Correct += other.Correct
	c.Speculated += other.Speculated
	c.SpecCorrect += other.SpecCorrect
	c.Mispred += other.Mispred
	c.DualConfident += other.DualConfident
	for i := range c.SelStates {
		c.SelStates[i] += other.SelStates[i]
	}
	c.MisSelected += other.MisSelected
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Empty reports whether the counters saw no loads at all — e.g. a table
// row whose every contributing trace failed. Renderers use it to mark
// the row "n/a" instead of printing zero rates that read as measured.
func (c Counters) Empty() bool { return c.Loads == 0 }

// PredRate is the paper's prediction-rate metric: speculative accesses out
// of all dynamic loads.
func (c Counters) PredRate() float64 { return ratio(c.Speculated, c.Loads) }

// Accuracy is the correct-prediction rate out of all speculative accesses.
func (c Counters) Accuracy() float64 { return ratio(c.SpecCorrect, c.Speculated) }

// MispredRate is 1 − Accuracy: wrong speculative accesses out of all
// speculative accesses.
func (c Counters) MispredRate() float64 { return ratio(c.Mispred, c.Speculated) }

// CorrectSpecRate is the Fig. 9/11 metric: correct speculative accesses
// out of all dynamic loads.
func (c Counters) CorrectSpecRate() float64 { return ratio(c.SpecCorrect, c.Loads) }

// MispredOfLoads is the share of all dynamic loads that suffered a wrong
// speculative access.
func (c Counters) MispredOfLoads() float64 { return ratio(c.Mispred, c.Loads) }

// SelStateShare returns the fraction of dual-confident loads predicted in
// the given selector state.
func (c Counters) SelStateShare(state uint8) float64 {
	if int(state) >= len(c.SelStates) {
		return 0
	}
	return ratio(c.SelStates[state], c.DualConfident)
}

// CorrectSelectionRate is 1 − (mis-selections / dual-confident loads): the
// Fig. 8 selection-quality metric.
func (c Counters) CorrectSelectionRate() float64 {
	if c.DualConfident == 0 {
		return 1
	}
	return 1 - ratio(c.MisSelected, c.DualConfident)
}

// String renders a one-line summary.
func (c Counters) String() string {
	return fmt.Sprintf("loads=%d pred-rate=%.1f%% accuracy=%.2f%% correct-spec=%.1f%%",
		c.Loads, c.PredRate()*100, c.Accuracy()*100, c.CorrectSpecRate()*100)
}
