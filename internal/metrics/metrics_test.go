package metrics

import (
	"strings"
	"testing"

	"capred/internal/predictor"
)

func TestCountersBasicRates(t *testing.T) {
	var c Counters
	// 1: correct speculated.
	c.Record(predictor.Prediction{Addr: 10, Predicted: true, Speculate: true}, 10)
	// 2: wrong speculated.
	c.Record(predictor.Prediction{Addr: 10, Predicted: true, Speculate: true}, 11)
	// 3: correct, not speculated.
	c.Record(predictor.Prediction{Addr: 20, Predicted: true}, 20)
	// 4: no prediction.
	c.Record(predictor.Prediction{}, 30)

	if c.Loads != 4 || c.Predicted != 3 || c.Correct != 2 ||
		c.Speculated != 2 || c.SpecCorrect != 1 || c.Mispred != 1 {
		t.Fatalf("counters wrong: %+v", c)
	}
	if c.PredRate() != 0.5 {
		t.Errorf("PredRate = %v, want 0.5", c.PredRate())
	}
	if c.Accuracy() != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", c.Accuracy())
	}
	if c.MispredRate() != 0.5 {
		t.Errorf("MispredRate = %v, want 0.5", c.MispredRate())
	}
	if c.CorrectSpecRate() != 0.25 {
		t.Errorf("CorrectSpecRate = %v, want 0.25", c.CorrectSpecRate())
	}
	if c.MispredOfLoads() != 0.25 {
		t.Errorf("MispredOfLoads = %v, want 0.25", c.MispredOfLoads())
	}
}

func TestCountersEmptyRates(t *testing.T) {
	var c Counters
	if c.PredRate() != 0 || c.Accuracy() != 0 || c.CorrectSpecRate() != 0 {
		t.Error("empty counters must report zero rates")
	}
	if c.CorrectSelectionRate() != 1 {
		t.Error("empty selection rate should be 1 (no mis-selections)")
	}
}

func TestCountersSelectorStats(t *testing.T) {
	var c Counters
	dual := predictor.Prediction{
		Addr: 10, Predicted: true, Speculate: true,
		Selected: predictor.CompCAP,
		SelState: predictor.SelStrongCAP,
		Stride:   predictor.ComponentPrediction{Addr: 99, Predicted: true, Confident: true},
		CAP:      predictor.ComponentPrediction{Addr: 10, Predicted: true, Confident: true},
	}
	c.Record(dual, 10) // correct, CAP selected
	if c.DualConfident != 1 || c.SelStates[predictor.SelStrongCAP] != 1 {
		t.Fatalf("selector stats wrong: %+v", c)
	}
	if c.SelStateShare(predictor.SelStrongCAP) != 1 {
		t.Error("SelStateShare wrong")
	}

	// Mis-selection: selected CAP, wrong, stride had it right.
	miss := dual
	miss.Addr = 50
	miss.CAP.Addr = 50
	miss.Stride.Addr = 77
	c.Record(miss, 77)
	if c.MisSelected != 1 {
		t.Fatalf("MisSelected = %d, want 1", c.MisSelected)
	}
	if got := c.CorrectSelectionRate(); got != 0.5 {
		t.Errorf("CorrectSelectionRate = %v, want 0.5", got)
	}

	// Both wrong: not a mis-selection.
	bothWrong := dual
	bothWrong.Addr = 1
	bothWrong.CAP.Addr = 1
	bothWrong.Stride.Addr = 2
	c.Record(bothWrong, 3)
	if c.MisSelected != 1 {
		t.Error("both-wrong must not count as mis-selection")
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	a.Record(predictor.Prediction{Addr: 1, Predicted: true, Speculate: true}, 1)
	b.Record(predictor.Prediction{Addr: 2, Predicted: true, Speculate: true}, 3)
	b.Record(predictor.Prediction{}, 9)
	a.Merge(b)
	if a.Loads != 3 || a.Speculated != 2 || a.SpecCorrect != 1 || a.Mispred != 1 {
		t.Errorf("merge wrong: %+v", a)
	}
}

func TestCountersString(t *testing.T) {
	var c Counters
	c.Record(predictor.Prediction{Addr: 1, Predicted: true, Speculate: true}, 1)
	if !strings.Contains(c.String(), "loads=1") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestSelStateShareOutOfRange(t *testing.T) {
	var c Counters
	if c.SelStateShare(200) != 0 {
		t.Error("out-of-range selector state must report 0")
	}
}
