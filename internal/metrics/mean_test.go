package metrics

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMeanEqualWeight(t *testing.T) {
	// Trace A: 100 loads, 50 speculated, 50 correct → pred 0.5, acc 1.0.
	a := Counters{Loads: 100, Speculated: 50, SpecCorrect: 50, Predicted: 50, Correct: 50}
	// Trace B: 10× the loads, zero speculation → pred 0, no accuracy sample.
	b := Counters{Loads: 1000}

	var m Mean
	m.Add(a)
	m.Add(b)

	// Equal weight: pred rate is the mean of 0.5 and 0.0, not the pooled
	// 50/1100 that load weighting would give.
	if got := m.PredRate(); !approx(got, 0.25) {
		t.Errorf("PredRate = %v, want 0.25", got)
	}
	// Accuracy has a single sample (B never speculated).
	if got := m.Accuracy(); !approx(got, 1.0) {
		t.Errorf("Accuracy = %v, want 1.0", got)
	}
	// The pooled variant stays load-weighted for debugging.
	if got := m.Pooled.PredRate(); !approx(got, 50.0/1100.0) {
		t.Errorf("Pooled.PredRate = %v, want %v", got, 50.0/1100.0)
	}
	if m.Traces != 2 {
		t.Errorf("Traces = %d, want 2", m.Traces)
	}
}

func TestMeanMatchesSingleTrace(t *testing.T) {
	c := Counters{
		Loads: 200, Predicted: 120, Correct: 100,
		Speculated: 110, SpecCorrect: 95, Mispred: 15,
		DualConfident: 40, SelStates: [4]int64{10, 5, 5, 20}, MisSelected: 4,
	}
	var m Mean
	m.Add(c)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"PredRate", m.PredRate(), c.PredRate()},
		{"Accuracy", m.Accuracy(), c.Accuracy()},
		{"MispredRate", m.MispredRate(), c.MispredRate()},
		{"CorrectSpecRate", m.CorrectSpecRate(), c.CorrectSpecRate()},
		{"MispredOfLoads", m.MispredOfLoads(), c.MispredOfLoads()},
		{"SelStateShare3", m.SelStateShare(3), c.SelStateShare(3)},
		{"CorrectSelectionRate", m.CorrectSelectionRate(), c.CorrectSelectionRate()},
	}
	for _, ck := range checks {
		if !approx(ck.got, ck.want) {
			t.Errorf("%s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
}

func TestMeanEmptyAndDefaults(t *testing.T) {
	var m Mean
	if !m.Empty() {
		t.Error("zero Mean should be Empty")
	}
	if got := m.CorrectSelectionRate(); got != 1 {
		t.Errorf("CorrectSelectionRate with no samples = %v, want 1", got)
	}
	m.Add(Counters{}) // a trace that saw nothing
	if !m.Empty() {
		t.Error("Mean over load-free traces should stay Empty")
	}
}

func TestMeanComparable(t *testing.T) {
	var a, b Mean
	c := Counters{Loads: 10, Speculated: 5, SpecCorrect: 5}
	a.Add(c)
	b.Add(c)
	if a != b {
		t.Error("identical Means should compare equal")
	}
	b.Add(c)
	if a == b {
		t.Error("different Means should not compare equal")
	}
}
