package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// randCounters builds internally-consistent counters: the invariants the
// simulator maintains (Speculated = SpecCorrect + Mispred ≤ Loads, …)
// hold for every sample, so the properties below test the aggregation,
// not garbage inputs.
func randCounters(r *rand.Rand, loads int64) Counters {
	var c Counters
	c.Loads = loads
	if loads == 0 {
		return c
	}
	c.Predicted = r.Int63n(loads + 1)
	c.Correct = r.Int63n(c.Predicted + 1)
	c.Speculated = r.Int63n(c.Predicted + 1)
	c.SpecCorrect = r.Int63n(c.Speculated + 1)
	c.Mispred = c.Speculated - c.SpecCorrect
	c.DualConfident = r.Int63n(loads + 1)
	rem := c.DualConfident
	for i := range c.SelStates {
		c.SelStates[i] = r.Int63n(rem + 1)
		rem -= c.SelStates[i]
	}
	c.MisSelected = r.Int63n(c.DualConfident + 1)
	return c
}

const tol = 1e-9

func close(a, b float64) bool { return math.Abs(a-b) <= tol }

// TestMeanEqualsPooledOnUniformBudgets pins the agreement property: when
// every trace has the same denominator, weighting each trace equally and
// pooling the raw counters are algebraically the same average, so Mean
// and Counters must agree on every rate sharing that denominator.
func TestMeanEqualsPooledOnUniformBudgets(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var m Mean
		var pool Counters
		n := 2 + r.Intn(8)
		const loads = 10_000
		for i := 0; i < n; i++ {
			c := randCounters(r, loads)
			// Uniform denominators across the board: same Loads,
			// Speculated and DualConfident per trace.
			c.Speculated = loads / 2
			c.SpecCorrect = r.Int63n(c.Speculated + 1)
			c.Mispred = c.Speculated - c.SpecCorrect
			c.DualConfident = loads / 4
			rem := c.DualConfident
			for s := range c.SelStates {
				c.SelStates[s] = r.Int63n(rem + 1)
				rem -= c.SelStates[s]
			}
			c.MisSelected = r.Int63n(c.DualConfident + 1)
			m.Add(c)
			pool.Merge(c)
		}
		checks := []struct {
			name         string
			mean, pooled float64
		}{
			{"PredRate", m.PredRate(), pool.PredRate()},
			{"CorrectSpecRate", m.CorrectSpecRate(), pool.CorrectSpecRate()},
			{"MispredOfLoads", m.MispredOfLoads(), pool.MispredOfLoads()},
			{"Accuracy", m.Accuracy(), pool.Accuracy()},
			{"MispredRate", m.MispredRate(), pool.MispredRate()},
			{"SelStateShare(0)", m.SelStateShare(0), pool.SelStateShare(0)},
			{"SelStateShare(3)", m.SelStateShare(3), pool.SelStateShare(3)},
			{"CorrectSelectionRate", m.CorrectSelectionRate(), pool.CorrectSelectionRate()},
		}
		for _, c := range checks {
			if !close(c.mean, c.pooled) {
				t.Fatalf("trial %d: %s: equal-weight %v != pooled %v on uniform budgets",
					trial, c.name, c.mean, c.pooled)
			}
		}
	}
}

// TestMeanZeroLoadTraces pins the n/a convention: a trace that saw no
// loads contributes no samples, so it cannot drag any rate toward zero,
// and a mean built only from such traces reports Empty.
func TestMeanZeroLoadTraces(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var withZeros, withoutZeros Mean
	for i := 0; i < 5; i++ {
		c := randCounters(r, 1000)
		withZeros.Add(c)
		withoutZeros.Add(c)
		withZeros.Add(Counters{}) // interleave zero-load traces
	}
	if withZeros.PredRate() != withoutZeros.PredRate() ||
		withZeros.Accuracy() != withoutZeros.Accuracy() ||
		withZeros.CorrectSpecRate() != withoutZeros.CorrectSpecRate() ||
		withZeros.CorrectSelectionRate() != withoutZeros.CorrectSelectionRate() {
		t.Fatalf("zero-load traces moved the mean: with=%v without=%v", withZeros, withoutZeros)
	}
	if withZeros.Traces != withoutZeros.Traces+5 {
		t.Fatalf("zero-load traces not counted: %d vs %d", withZeros.Traces, withoutZeros.Traces)
	}

	var onlyZeros Mean
	onlyZeros.Add(Counters{})
	onlyZeros.Add(Counters{})
	if !onlyZeros.Empty() {
		t.Fatal("mean of zero-load traces should be Empty")
	}
	if onlyZeros.PredRate() != 0 || onlyZeros.Accuracy() != 0 {
		t.Fatalf("empty mean rates should be 0: %v", onlyZeros)
	}
	if onlyZeros.CorrectSelectionRate() != 1 {
		// The per-trace convention: nothing dual-confident means no
		// mis-selections.
		t.Fatalf("empty CorrectSelectionRate should be 1, got %v", onlyZeros.CorrectSelectionRate())
	}
}

// TestMeanPartialFailureSubset pins the failure-handling property the
// drivers rely on: folding in only the surviving subset is exactly the
// mean over that subset — failed traces leave no residue — and every
// rate stays within [0, 1].
func TestMeanPartialFailureSubset(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 3 + r.Intn(10)
		traces := make([]Counters, n)
		for i := range traces {
			// Wildly non-uniform budgets: partial failure must not let a
			// big trace dominate the equal-weight view.
			traces[i] = randCounters(r, int64(1+r.Intn(1_000_000)))
		}
		survivors := traces[:1+r.Intn(n)]

		var got Mean
		for _, c := range traces[:len(survivors)] {
			got.Add(c)
		}
		// Reference: arithmetic average of per-trace rates.
		var sumPred float64
		for _, c := range survivors {
			sumPred += c.PredRate()
		}
		want := sumPred / float64(len(survivors))
		if !close(got.PredRate(), want) {
			t.Fatalf("trial %d: subset mean %v != arithmetic mean %v", trial, got.PredRate(), want)
		}

		for _, v := range []float64{
			got.PredRate(), got.Accuracy(), got.MispredRate(),
			got.CorrectSpecRate(), got.MispredOfLoads(),
			got.SelStateShare(0), got.SelStateShare(1),
			got.SelStateShare(2), got.SelStateShare(3),
			got.CorrectSelectionRate(),
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("trial %d: rate out of [0,1]: %v (%v)", trial, v, got)
			}
		}
	}
}
