package server

// Shared helpers: realistic event streams from the workload generator,
// encoded in the v3 binary format, plus the offline reference runs the
// server's counters must match bit for bit.

import (
	"bytes"
	"testing"

	"capred/internal/metrics"
	"capred/internal/sim"
	"capred/internal/trace"
	"capred/internal/workload"
)

// collectEvents materialises n events of the idx-th workload trace.
func collectEvents(t *testing.T, idx int, n int64) []trace.Event {
	t.Helper()
	specs := workload.Traces()
	src := trace.NewLimit(specs[idx%len(specs)].Open(), n)
	evs := make([]trace.Event, 0, n)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		evs = append(evs, ev)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("workload source: %v", err)
	}
	return evs
}

// encodeTrace renders evs as a v3 binary stream, header included.
func encodeTrace(t *testing.T, evs []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, ev := range evs {
		if err := w.Emit(ev); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

// chunks splits data into size-byte pieces, deliberately ignoring event
// boundaries so every test exercises the decoder's tail buffering.
func chunks(data []byte, size int) [][]byte {
	var out [][]byte
	for len(data) > 0 {
		n := min(size, len(data))
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// offlineCounters runs the same events through the offline RunTrace path
// with a fresh predictor built from cfg — the reference the server's
// session counters must equal exactly.
func offlineCounters(t *testing.T, cfg SessionConfig, evs []trace.Event) metrics.Counters {
	t.Helper()
	p, err := cfg.build()
	if err != nil {
		t.Fatalf("build %+v: %v", cfg, err)
	}
	c, err := sim.RunTrace(trace.NewSliceSource(evs), p, cfg.Gap)
	if err != nil {
		t.Fatalf("offline run: %v", err)
	}
	return c
}

// testConfig is DefaultConfig shrunk for tests: no janitor goroutine,
// small job budgets.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SweepInterval = 0
	cfg.JobEvents = 1_000
	cfg.ReplayCacheBudget = 1 << 20
	return cfg
}
