package server

// Named predictor configurations a session can bind to, plus the knobs
// the paper's evaluation turns: confidence thresholds, CAP history
// length, LT tag bits, the pollution-free field width, and the hybrid's
// LT update policy. Unset knobs keep the paper's §4.2 defaults.

import (
	"fmt"
	"slices"

	"capred/internal/predictor"
	"capred/internal/predictor/tournament"
)

// SessionConfig is the body of POST /v1/sessions: the predictor kind, an
// optional prediction gap, and optional knob overrides (nil keeps the
// named configuration's default).
type SessionConfig struct {
	// Predictor names the configuration: last, stride, stride-basic, cap,
	// hybrid or tournament.
	Predictor string `json:"predictor"`
	// Gap, when positive, runs the session in the paper's pipelined mode:
	// resolutions arrive Gap dynamic loads after their predictions.
	Gap int `json:"gap,omitempty"`

	ConfThreshold *uint8 `json:"conf_threshold,omitempty"` // speculation confidence threshold
	HistoryLen    *int   `json:"history_len,omitempty"`    // CAP base-address history depth
	TagBits       *int   `json:"tag_bits,omitempty"`       // CAP LT tag width (0 disables)
	PFBits        *int   `json:"pf_bits,omitempty"`        // CAP pollution-free field width (0 disables)
	// UpdatePolicy selects the hybrid's LT update policy: "always",
	// "unless-stride-correct" or "unless-stride-selected".
	UpdatePolicy string `json:"update_policy,omitempty"`

	// Components names the tournament's entrants, in preference order
	// (tournament sessions only); empty selects the default 5-way lineup.
	Components []string `json:"components,omitempty"`
	// ChooserMax overrides the tournament chooser's saturating-counter
	// ceiling (tournament sessions only).
	ChooserMax *uint8 `json:"chooser_max,omitempty"`
}

// PredictorKinds lists the predictor configurations sessions can bind
// to, in a stable order (it seeds the per-kind metric series).
func PredictorKinds() []string {
	return []string{"last", "stride", "stride-basic", "cap", "hybrid", "tournament"}
}

// updatePolicies maps the wire names onto the §4.3 policies.
var updatePolicies = map[string]predictor.UpdatePolicy{
	"always":                 predictor.UpdateAlways,
	"unless-stride-correct":  predictor.UpdateUnlessStrideCorrect,
	"unless-stride-selected": predictor.UpdateUnlessStrideSelected,
}

// validate rejects malformed session configurations with a message fit
// for the HTTP 400 body.
func (c SessionConfig) validate() error {
	switch c.Predictor {
	case "last", "stride", "stride-basic", "cap", "hybrid", "tournament":
	case "":
		return fmt.Errorf("predictor is required (one of %v)", PredictorKinds())
	default:
		return fmt.Errorf("unknown predictor %q (one of %v)", c.Predictor, PredictorKinds())
	}
	if c.Gap < 0 || c.Gap > 256 {
		return fmt.Errorf("gap must be in [0, 256], got %d", c.Gap)
	}
	if c.Gap > 0 && c.Predictor == "last" {
		return fmt.Errorf("predictor %q has no pipelined (gap) mode", c.Predictor)
	}
	if c.HistoryLen != nil && (*c.HistoryLen < 1 || *c.HistoryLen > 16) {
		return fmt.Errorf("history_len must be in [1, 16], got %d", *c.HistoryLen)
	}
	if c.TagBits != nil && (*c.TagBits < 0 || *c.TagBits > 16) {
		return fmt.Errorf("tag_bits must be in [0, 16], got %d", *c.TagBits)
	}
	if c.PFBits != nil && (*c.PFBits < 0 || *c.PFBits > 8) {
		return fmt.Errorf("pf_bits must be in [0, 8], got %d", *c.PFBits)
	}
	if c.UpdatePolicy != "" {
		if c.Predictor != "hybrid" {
			return fmt.Errorf("update_policy applies to the hybrid predictor only")
		}
		if _, ok := updatePolicies[c.UpdatePolicy]; !ok {
			return fmt.Errorf("unknown update_policy %q", c.UpdatePolicy)
		}
	}
	hasCAP := c.Predictor == "cap" || c.Predictor == "hybrid"
	if !hasCAP && (c.HistoryLen != nil || c.TagBits != nil || c.PFBits != nil) {
		return fmt.Errorf("history_len, tag_bits and pf_bits apply to cap and hybrid only")
	}
	if c.Predictor == "tournament" {
		// The tournament builds each entrant with its default config; the
		// single-predictor knobs have no well-defined target and are
		// rejected rather than silently ignored.
		if c.ConfThreshold != nil {
			return fmt.Errorf("conf_threshold does not apply to the tournament; components use their defaults")
		}
		known := tournament.ComponentNames()
		for i, name := range c.Components {
			if !slices.Contains(known, name) {
				return fmt.Errorf("unknown component %q (one of %v)", name, known)
			}
			if slices.Contains(c.Components[:i], name) {
				return fmt.Errorf("duplicate component %q", name)
			}
		}
		if len(c.Components) > tournament.MaxComponents {
			return fmt.Errorf("at most %d components, got %d", tournament.MaxComponents, len(c.Components))
		}
		if c.ChooserMax != nil && (*c.ChooserMax < 2 || *c.ChooserMax > 15) {
			return fmt.Errorf("chooser_max must be in [2, 15], got %d", *c.ChooserMax)
		}
	} else {
		if c.Components != nil || c.ChooserMax != nil {
			return fmt.Errorf("components and chooser_max apply to the tournament predictor only")
		}
	}
	return nil
}

// build constructs a fresh predictor instance for the configuration.
// Every call returns an independent instance, so concurrent sessions
// never share predictor state.
func (c SessionConfig) build() (predictor.Predictor, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	speculative := c.Gap > 0
	applyCAP := func(cfg *predictor.CAPConfig) {
		if c.ConfThreshold != nil {
			cfg.ConfThreshold = *c.ConfThreshold
		}
		if c.HistoryLen != nil {
			cfg.HistoryLen = *c.HistoryLen
		}
		if c.TagBits != nil {
			cfg.TagBits = *c.TagBits
		}
		if c.PFBits != nil {
			cfg.PFBits = *c.PFBits
		}
		cfg.Speculative = speculative
	}
	switch c.Predictor {
	case "last":
		cfg := predictor.DefaultLastConfig()
		if c.ConfThreshold != nil {
			cfg.ConfThreshold = *c.ConfThreshold
		}
		return predictor.NewLast(cfg), nil
	case "stride", "stride-basic":
		cfg := predictor.DefaultStrideConfig()
		if c.Predictor == "stride-basic" {
			cfg = predictor.BasicStrideConfig()
		}
		if c.ConfThreshold != nil {
			cfg.ConfThreshold = *c.ConfThreshold
		}
		cfg.Speculative = speculative
		return predictor.NewStride(cfg), nil
	case "cap":
		cfg := predictor.DefaultCAPConfig()
		applyCAP(&cfg)
		return predictor.NewCAP(cfg), nil
	case "hybrid":
		cfg := predictor.DefaultHybridConfig()
		applyCAP(&cfg.CAP)
		if c.ConfThreshold != nil {
			cfg.Stride.ConfThreshold = *c.ConfThreshold
		}
		if c.UpdatePolicy != "" {
			cfg.UpdatePolicy = updatePolicies[c.UpdatePolicy]
		}
		cfg.Speculative = speculative
		return predictor.NewHybrid(cfg), nil
	case "tournament":
		names := c.Components
		if len(names) == 0 {
			names = tournament.DefaultComponents()
		}
		cfg := tournament.DefaultConfig()
		if c.ChooserMax != nil {
			cfg.CounterMax = *c.ChooserMax
		}
		return tournament.NewNamed(cfg, speculative, names...)
	}
	return nil, fmt.Errorf("unknown predictor %q", c.Predictor)
}

// tournamentComponentLabels lists the display names a tournament
// session's components can report, in a stable order — the /metrics
// per-component series are pre-registered from it so the scrape surface
// is stable from the first request. Sessions build components with
// their default configurations, so each buildable component contributes
// exactly its default Name().
func tournamentComponentLabels() []string {
	names := tournament.ComponentNames()
	out := make([]string, len(names))
	for i, n := range names {
		c, err := tournament.NewComponent(n, false)
		if err != nil {
			panic(err) // unreachable: ComponentNames lists buildable components
		}
		out[i] = c.Name()
	}
	return out
}
