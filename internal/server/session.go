package server

// Prediction sessions: a client binds a session to a named predictor
// configuration and streams trace events at it in the v3 binary
// encoding, split across request bodies at arbitrary byte boundaries;
// each batch returns the predictions' running counters. The session owns
// a StreamDecoder (delta state spans bodies) and a sim.Stepper (the same
// per-event path RunTrace uses), so a session's counters after N events
// are bit-identical to an offline RunTrace over those N events.
//
// Lifecycle: sessions are bounded in number (backpressure: 429 +
// Retry-After), in per-session events, and in whole-server ingested
// events; idle sessions are evicted after the TTL by a janitor sweep
// (and lazily on access, so tests and single-threaded callers never
// race the sweeper).

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"capred/internal/metrics"
	"capred/internal/predictor/tournament"
	"capred/internal/sim"
	"capred/internal/trace"
)

// componentStater is implemented by predictors that arbitrate between
// named components (the tournament); sessions surface their selection
// statistics on /metrics.
type componentStater interface {
	ComponentStats() []tournament.ComponentStat
}

// session is one live prediction session.
type session struct {
	ID        string
	Cfg       SessionConfig
	CreatedAt time.Time

	mu       sync.Mutex // serialises batches; protects everything below
	dec      *trace.StreamDecoder
	st       *sim.Stepper
	events   int64 // events ingested (all kinds)
	batches  int64
	lastUsed time.Time
	finished bool // Finish() ran (gap drained); terminal
	// prevSel is the component-selection snapshot after the previous
	// batch (tournament sessions only); ingest diffs against it to feed
	// the per-component /metrics series.
	prevSel []tournament.ComponentStat
}

// sessionSnapshot is a consistent view of a session's progress, taken
// under the session lock so it never interleaves with a batch.
type sessionSnapshot struct {
	Events   int64
	Batches  int64
	Finished bool
	C        metrics.Counters
}

func (s *session) snapshot() sessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sessionSnapshot{Events: s.events, Batches: s.batches, Finished: s.finished, C: s.st.C}
}

// ingestResult reports one applied batch: the events it contained, the
// session's running totals and counters after it, and the counter deltas
// it contributed (feeding the per-predictor-kind metric series).
type ingestResult struct {
	Events  int64
	Total   int64
	Batches int64
	C       metrics.Counters

	DLoads, DPredicted, DCorrect int64
	// DSel is the batch's per-component selection delta (tournament
	// sessions only; nil otherwise).
	DSel []tournament.ComponentStat
}

// sessionStore owns every live session and enforces the capacity,
// budget and TTL policies.
type sessionStore struct {
	maxSessions  int
	ttl          time.Duration
	sessionLimit int64 // events per session; 0 = unlimited
	globalLimit  int64 // events across all sessions since start; 0 = unlimited
	now          func() time.Time

	mu       sync.Mutex
	sessions map[string]*session

	// globalEvents is atomic, not st.mu-guarded: ingest consults it while
	// holding a session's lock, and the store lock nests outside session
	// locks everywhere else (get/evict), so taking st.mu there would be a
	// lock-order inversion.
	globalEvents atomic.Int64
	evicted      atomic.Int64 // cumulative TTL evictions, for /metrics
}

func newSessionStore(cfg Config) *sessionStore {
	return &sessionStore{
		maxSessions:  cfg.MaxSessions,
		ttl:          cfg.SessionTTL,
		sessionLimit: cfg.SessionEventBudget,
		globalLimit:  cfg.GlobalEventBudget,
		now:          cfg.now(),
		sessions:     make(map[string]*session),
	}
}

// Errors mapped onto HTTP statuses by the handlers.
var (
	errTooManySessions = errors.New("session capacity exhausted")
	errNotFound        = errors.New("no such session")
	errBudget          = errors.New("event budget exhausted")
	errFinished        = errors.New("session already finished")
)

// newID returns a 16-hex-char random identifier with a type prefix.
func newID(prefix string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: id entropy unavailable: %v", err))
	}
	return prefix + hex.EncodeToString(b[:])
}

// create opens a session bound to cfg. It fails with errTooManySessions
// when the store is at capacity after evicting expired sessions.
func (st *sessionStore) create(cfg SessionConfig) (*session, error) {
	p, err := cfg.build()
	if err != nil {
		return nil, err
	}
	now := st.now()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked(now)
	if st.maxSessions > 0 && len(st.sessions) >= st.maxSessions {
		return nil, errTooManySessions
	}
	s := &session{
		ID:        newID("s"),
		Cfg:       cfg,
		CreatedAt: now,
		dec:       trace.NewStreamDecoder(),
		st:        sim.NewStepper(p, cfg.Gap),
		lastUsed:  now,
	}
	st.sessions[s.ID] = s
	return s, nil
}

// get returns the session, refreshing its TTL clock.
func (st *sessionStore) get(id string) (*session, error) {
	now := st.now()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked(now)
	s, ok := st.sessions[id]
	if !ok {
		return nil, errNotFound
	}
	s.mu.Lock()
	s.lastUsed = now
	s.mu.Unlock()
	return s, nil
}

// remove deletes the session, returning it for a final render.
func (st *sessionStore) remove(id string) (*session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	if !ok {
		return nil, errNotFound
	}
	delete(st.sessions, id)
	return s, nil
}

// open returns the number of live sessions.
func (st *sessionStore) open() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// ingested returns the global ingested-event count.
func (st *sessionStore) ingested() int64 { return st.globalEvents.Load() }

// sweep evicts TTL-expired sessions and returns how many it removed.
func (st *sessionStore) sweep() int {
	now := st.now()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evictLocked(now)
}

func (st *sessionStore) evictLocked(now time.Time) int {
	if st.ttl <= 0 {
		return 0
	}
	n := 0
	for id, s := range st.sessions {
		s.mu.Lock()
		expired := now.Sub(s.lastUsed) > st.ttl
		s.mu.Unlock()
		if expired {
			delete(st.sessions, id)
			n++
		}
	}
	st.evicted.Add(int64(n))
	return n
}

// admitEvents rejects ingest once the global budget is spent. Admission
// is a pre-check: the per-batch overshoot is bounded by the request body
// cap, which is the trade that keeps batches from being half-applied.
func (st *sessionStore) admitEvents() error {
	if used := st.globalEvents.Load(); st.globalLimit > 0 && used >= st.globalLimit {
		return fmt.Errorf("%w: server ingested %d of %d budgeted events", errBudget, used, st.globalLimit)
	}
	return nil
}

// chargeEvents records n ingested events against the global budget.
func (st *sessionStore) chargeEvents(n int64) { st.globalEvents.Add(n) }

// ingest decodes one request body's chunk of the session's event stream
// and steps the predictor over every complete event, returning the
// number of events applied. The whole batch is applied atomically with
// respect to budget admission: admission is checked before any decode,
// so a rejected batch leaves the decoder and predictor untouched and the
// client can close the session cleanly.
func (s *session) ingest(st *sessionStore, body []byte) (ingestResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return ingestResult{}, errFinished
	}
	if st.sessionLimit > 0 && s.events >= st.sessionLimit {
		return ingestResult{}, fmt.Errorf("%w: session ingested %d of %d budgeted events", errBudget, s.events, st.sessionLimit)
	}
	if err := st.admitEvents(); err != nil {
		return ingestResult{}, err
	}
	before := s.st.C
	evBefore := s.dec.Events()
	// Block-native ingest: the decoder writes columns, the stepper reads
	// them; no []Event batch is materialised between the two.
	if err := s.dec.FeedBlocks(body, s.st.StepBlock); err != nil {
		return ingestResult{}, err
	}
	n := s.dec.Events() - evBefore
	s.events += n
	s.batches++
	s.lastUsed = st.now()
	st.chargeEvents(n)
	res := ingestResult{
		Events:     n,
		Total:      s.events,
		Batches:    s.batches,
		C:          s.st.C,
		DLoads:     s.st.C.Loads - before.Loads,
		DPredicted: s.st.C.Predicted - before.Predicted,
		DCorrect:   s.st.C.Correct - before.Correct,
	}
	if cs, ok := s.st.Predictor().(componentStater); ok {
		cur := cs.ComponentStats()
		res.DSel = make([]tournament.ComponentStat, len(cur))
		copy(res.DSel, cur)
		for i := range res.DSel {
			if i < len(s.prevSel) {
				res.DSel[i].Selected -= s.prevSel[i].Selected
				res.DSel[i].Correct -= s.prevSel[i].Correct
			}
		}
		s.prevSel = cur
	}
	return res, nil
}

// finish drains the prediction gap (resolving in-flight predictions, as
// RunTrace does at clean end of stream) and declares the event stream
// complete. A stream ending mid-event is reported as an error, exactly
// like an offline decode of a truncated trace.
func (s *session) finish() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return nil
	}
	s.finished = true
	if err := s.dec.Close(); err != nil {
		return err
	}
	s.st.Finish()
	return nil
}
