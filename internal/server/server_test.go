package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"capred/internal/metrics"
	"capred/internal/sim"
)

// newTestServer builds a Server plus an httptest front end, torn down
// with the test.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// do issues one request and returns the status and body.
func do(t *testing.T, method, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// sessionView mirrors the wire shape of a session response.
type sessionViewResp struct {
	ID       string           `json:"id"`
	Events   int64            `json:"events"`
	Batches  int64            `json:"batches"`
	Finished bool             `json:"finished"`
	Counters metrics.Counters `json:"counters"`
}

// openSession creates a session over HTTP and returns its view.
func openSession(t *testing.T, base string, cfg SessionConfig) sessionViewResp {
	t.Helper()
	body, _ := json.Marshal(cfg)
	code, b, _ := do(t, "POST", base+"/v1/sessions", body)
	if code != http.StatusCreated {
		t.Fatalf("create session %+v: %d %s", cfg, code, b)
	}
	var v sessionViewResp
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// streamSession posts data in chunkSize pieces and deletes the session,
// returning the final (post-Finish) view.
func streamSession(t *testing.T, base, id string, data []byte, chunkSize int) sessionViewResp {
	t.Helper()
	for _, chunk := range chunks(data, chunkSize) {
		code, b, _ := do(t, "POST", base+"/v1/sessions/"+id+"/events", chunk)
		if code != http.StatusOK {
			t.Fatalf("post events: %d %s", code, b)
		}
	}
	code, b, _ := do(t, "DELETE", base+"/v1/sessions/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("delete session: %d %s", code, b)
	}
	var v sessionViewResp
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSessionStreamMatchesOffline is the tentpole guarantee: a session's
// counters after streaming N events over HTTP, in chunks that ignore
// event boundaries, equal an offline RunTrace over the same events —
// field for field, including the hybrid selector statistics.
func TestSessionStreamMatchesOffline(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []SessionConfig{
		{Predictor: "last"},
		{Predictor: "stride"},
		{Predictor: "stride-basic"},
		{Predictor: "cap"},
		{Predictor: "hybrid"},
		{Predictor: "stride", Gap: 8},
		{Predictor: "cap", Gap: 8},
		{Predictor: "hybrid", Gap: 8},
		{Predictor: "tournament"},
		{Predictor: "tournament", Gap: 8},
		{Predictor: "tournament", Components: []string{"stride", "cap"}},
		{Predictor: "tournament", Components: []string{"markov", "delta2", "callpath"}, Gap: 8},
	}
	for i, cfg := range cases {
		name := fmt.Sprintf("%s-gap%d", cfg.Predictor, cfg.Gap)
		t.Run(name, func(t *testing.T) {
			evs := collectEvents(t, i, 5_000)
			want := offlineCounters(t, cfg, evs)
			v := openSession(t, ts.URL, cfg)
			final := streamSession(t, ts.URL, v.ID, encodeTrace(t, evs), 777)
			if final.Counters != want {
				t.Fatalf("server counters differ from offline run:\nserver:  %+v\noffline: %+v", final.Counters, want)
			}
			if final.Events != int64(len(evs)) {
				t.Fatalf("events: got %d, want %d", final.Events, len(evs))
			}
			if !final.Finished {
				t.Fatal("final view not marked finished")
			}
		})
	}
}

// TestConcurrentSessionsBitIdentical runs the acceptance criterion: at
// least 8 sessions streaming concurrently, each over a different trace
// and predictor configuration, all ending bit-identical to their offline
// reference. Run under -race in CI.
func TestConcurrentSessionsBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cfgs := []SessionConfig{
		{Predictor: "last"},
		{Predictor: "stride"},
		{Predictor: "stride-basic"},
		{Predictor: "cap"},
		{Predictor: "hybrid"},
		{Predictor: "stride", Gap: 8},
		{Predictor: "cap", Gap: 4},
		{Predictor: "hybrid", Gap: 8},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(cfgs))
	for i, cfg := range cfgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			evs := collectEvents(t, i, 3_000)
			want := offlineCounters(t, cfg, evs)
			v := openSession(t, ts.URL, cfg)
			final := streamSession(t, ts.URL, v.ID, encodeTrace(t, evs), 513)
			if final.Counters != want {
				errs <- fmt.Errorf("%s gap %d: server %+v != offline %+v", cfg.Predictor, cfg.Gap, final.Counters, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDrainSemantics(t *testing.T) {
	s, ts := newTestServer(t, nil)

	v := openSession(t, ts.URL, SessionConfig{Predictor: "stride"})
	evs := collectEvents(t, 0, 1_000)
	data := encodeTrace(t, evs)
	half := len(data) / 2
	if code, b, _ := do(t, "POST", ts.URL+"/v1/sessions/"+v.ID+"/events", data[:half]); code != http.StatusOK {
		t.Fatalf("pre-drain batch: %d %s", code, b)
	}

	s.BeginDrain()

	if code, _, _ := do(t, "GET", ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", code)
	}
	body, _ := json.Marshal(SessionConfig{Predictor: "cap"})
	code, _, hdr := do(t, "POST", ts.URL+"/v1/sessions", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("new session during drain: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 during drain must carry Retry-After")
	}
	if code, _, _ := do(t, "POST", ts.URL+"/v1/jobs", []byte(`{"experiment":"baselines"}`)); code != http.StatusTooManyRequests {
		t.Fatalf("new job during drain: %d, want 429", code)
	}

	// In-flight work completes: the open session still takes batches and
	// closes cleanly, matching the offline run.
	if code, b, _ := do(t, "POST", ts.URL+"/v1/sessions/"+v.ID+"/events", data[half:]); code != http.StatusOK {
		t.Fatalf("in-flight batch during drain: %d %s", code, b)
	}
	code, b, _ := do(t, "DELETE", ts.URL+"/v1/sessions/"+v.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("close during drain: %d %s", code, b)
	}
	var final sessionViewResp
	if err := json.Unmarshal(b, &final); err != nil {
		t.Fatal(err)
	}
	if want := offlineCounters(t, SessionConfig{Predictor: "stride"}, evs); final.Counters != want {
		t.Fatalf("drained session counters: %+v, want %+v", final.Counters, want)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestSessionCapacityBackpressure(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxSessions = 1 })
	openSession(t, ts.URL, SessionConfig{Predictor: "stride"})
	body, _ := json.Marshal(SessionConfig{Predictor: "cap"})
	code, _, hdr := do(t, "POST", ts.URL+"/v1/sessions", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity create: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After on capacity 429")
	}
}

func TestBudget429AndMetrics(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.SessionEventBudget = 100 })
	v := openSession(t, ts.URL, SessionConfig{Predictor: "stride"})
	data := encodeTrace(t, collectEvents(t, 0, 150))
	if code, b, _ := do(t, "POST", ts.URL+"/v1/sessions/"+v.ID+"/events", data); code != http.StatusOK {
		t.Fatalf("first batch: %d %s", code, b)
	}
	if code, _, _ := do(t, "POST", ts.URL+"/v1/sessions/"+v.ID+"/events", nil); code != http.StatusTooManyRequests {
		t.Fatalf("over-budget batch: %d, want 429", code)
	}

	_, b, _ := do(t, "GET", ts.URL+"/metrics", nil)
	page := string(b)
	for _, want := range []string{
		"capserve_batches_dropped_budget_total 1",
		"capserve_events_ingested_total 150",
		"capserve_sessions_opened_total 1",
		"capserve_sessions_open 1",
		`capserve_loads_total{predictor="stride"}`,
		"# TYPE capserve_job_run_seconds summary",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, page)
		}
	}
}

func TestBatchBodyCap(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatchBytes = 64 })
	v := openSession(t, ts.URL, SessionConfig{Predictor: "stride"})
	big := encodeTrace(t, collectEvents(t, 0, 1_000))
	if code, _, _ := do(t, "POST", ts.URL+"/v1/sessions/"+v.ID+"/events", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d, want 413", code)
	}
}

func TestJobOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Workers = 2 })
	code, b, _ := do(t, "POST", ts.URL+"/v1/jobs", []byte(`{"experiment":"baselines"}`))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State != JobDone && st.State != JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		_, b, _ = do(t, "GET", ts.URL+"/v1/jobs/"+st.ID, nil)
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != JobDone {
		t.Fatalf("job failed: %+v", st)
	}

	code, b, _ = do(t, "GET", ts.URL+"/v1/jobs/"+st.ID+"/table", nil)
	if code != http.StatusOK {
		t.Fatalf("table: %d %s", code, b)
	}
	offline := sim.DefaultConfig()
	offline.EventsPerTrace = testConfig().JobEvents
	exp, _ := sim.ExperimentByName("baselines")
	if want := exp.Run(offline).Table().String(); string(b) != want {
		t.Fatalf("served table differs from offline run:\n--- served ---\n%s\n--- offline ---\n%s", b, want)
	}

	// The job list carries it, and /metrics saw it complete.
	code, b, _ = do(t, "GET", ts.URL+"/v1/jobs", nil)
	if code != http.StatusOK || !strings.Contains(string(b), st.ID) {
		t.Fatalf("job list: %d %s", code, b)
	}
	_, b, _ = do(t, "GET", ts.URL+"/metrics", nil)
	if !strings.Contains(string(b), `capserve_jobs_completed_total{status="done"} 1`) {
		t.Fatalf("/metrics missing completed job:\n%s", b)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"unknown predictor", "POST", "/v1/sessions", `{"predictor":"oracle"}`, 400},
		{"missing predictor", "POST", "/v1/sessions", `{}`, 400},
		{"gap on last", "POST", "/v1/sessions", `{"predictor":"last","gap":8}`, 400},
		{"cap knob on stride", "POST", "/v1/sessions", `{"predictor":"stride","history_len":4}`, 400},
		{"update policy on cap", "POST", "/v1/sessions", `{"predictor":"cap","update_policy":"always"}`, 400},
		{"bad json", "POST", "/v1/sessions", `{`, 400},
		{"unknown experiment", "POST", "/v1/jobs", `{"experiment":"fig99"}`, 400},
		{"missing session", "GET", "/v1/sessions/s0000000000000000", "", 404},
		{"missing session delete", "DELETE", "/v1/sessions/s0000000000000000", "", 404},
		{"missing session events", "POST", "/v1/sessions/s0000000000000000/events", "", 404},
		{"missing job", "GET", "/v1/jobs/j0000000000000000", "", 404},
		{"missing job table", "GET", "/v1/jobs/j0000000000000000/table", "", 404},
	} {
		code, b, _ := do(t, tc.method, ts.URL+tc.path, []byte(tc.body))
		if code != tc.want {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, b, tc.want)
		}
		if !strings.Contains(string(b), `"error"`) {
			t.Errorf("%s: error body missing envelope: %s", tc.name, b)
		}
	}
}

func TestJobTableConflictBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.JobRunners = 0 // job stays queued
		c.JobQueueDepth = 1
	})
	code, b, _ := do(t, "POST", ts.URL+"/v1/jobs", []byte(`{"experiment":"baselines"}`))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var st JobStatus
	json.Unmarshal(b, &st)
	if code, _, _ := do(t, "GET", ts.URL+"/v1/jobs/"+st.ID+"/table", nil); code != http.StatusConflict {
		t.Fatalf("table before done: %d, want 409", code)
	}
}

func TestDiscoveryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)
	code, b, _ := do(t, "GET", ts.URL+"/v1/experiments", nil)
	if code != http.StatusOK || !strings.Contains(string(b), "baselines") {
		t.Fatalf("experiments: %d %s", code, b)
	}
	code, b, _ = do(t, "GET", ts.URL+"/v1/predictors", nil)
	if code != http.StatusOK || !strings.Contains(string(b), "hybrid") {
		t.Fatalf("predictors: %d %s", code, b)
	}
	code, b, _ = do(t, "GET", ts.URL+"/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(b), `"ok"`) {
		t.Fatalf("healthz: %d %s", code, b)
	}
}

func TestPprofOptIn(t *testing.T) {
	_, off := newTestServer(t, nil)
	if code, _, _ := do(t, "GET", off.URL+"/debug/pprof/", nil); code != http.StatusNotFound {
		t.Fatalf("pprof off: %d, want 404", code)
	}
	_, on := newTestServer(t, func(c *Config) { c.EnablePprof = true })
	if code, _, _ := do(t, "GET", on.URL+"/debug/pprof/", nil); code != http.StatusOK {
		t.Fatalf("pprof on: %d, want 200", code)
	}
}
