package server

// Boundary tests for every admission-control decision the server makes:
// the event budgets at their exact edges, the session cap's 429 +
// Retry-After contract, the body cap at exactly MaxBatchBytes, and the
// finish/409 semantics under concurrent finishers. These are the edges
// capload leans on — a load run's ledger only reconciles with /metrics
// if each boundary rejects and accepts exactly where it claims to.

import (
	"bytes"
	"net/http"
	"sync"
	"testing"

	"capred/internal/trace"
)

// encodeTwoBatches renders 2n events as ONE v3 stream split at the
// n-event boundary: the second chunk continues the first's delta state,
// so posting them back to back is a legal stream.
func encodeTwoBatches(t *testing.T, n int64) (first, second []byte) {
	t.Helper()
	evs := collectEvents(t, 0, 2*n)
	var buf bytes.Buffer
	mark := 0
	w := trace.NewWriter(&buf)
	for i, ev := range evs {
		if err := w.Emit(ev); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if int64(i+1) == n {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			mark = buf.Len()
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	return data[:mark], data[mark:]
}

// TestSessionBudgetBoundary: the per-session budget is a pre-check —
// a batch is admitted while events < budget (overshoot bounded by the
// body cap) and refused with 429 once events >= budget.
func TestSessionBudgetBoundary(t *testing.T) {
	const batch = 500
	// One continuous stream cut at an event boundary: the second chunk
	// continues the first's delta state (a fresh header mid-stream would
	// be a decode error, not an admission decision).
	first, second := encodeTwoBatches(t, batch)
	cases := []struct {
		name       string
		budget     int64
		wantSecond int // status of the second batch
	}{
		{"second batch under budget", 2*batch + 1, http.StatusOK},
		{"exactly at budget after first", batch, http.StatusTooManyRequests},
		{"one event short of budget", batch - 1, http.StatusTooManyRequests},
		{"one event past first batch", batch + 1, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, func(c *Config) { c.SessionEventBudget = tc.budget })
			sess := openSession(t, ts.URL, SessionConfig{Predictor: "last"})
			url := ts.URL + "/v1/sessions/" + sess.ID + "/events"

			// The first batch always starts under budget, so it is admitted
			// whole even when it overshoots the budget.
			code, body, _ := do(t, "POST", url, first)
			if code != http.StatusOK {
				t.Fatalf("first batch: %d %s", code, body)
			}
			code, body, hdr := do(t, "POST", url, second)
			if code != tc.wantSecond {
				t.Fatalf("second batch: %d %s, want %d", code, body, tc.wantSecond)
			}
			if code == http.StatusTooManyRequests && hdr.Get("Retry-After") != "1" {
				t.Fatalf("budget 429 carried Retry-After %q, want \"1\"", hdr.Get("Retry-After"))
			}

			// A budget rejection leaves the session closable: the decoder
			// was never fed, so DELETE drains cleanly with the first
			// batch's counters intact.
			code, body, _ = do(t, "DELETE", ts.URL+"/v1/sessions/"+sess.ID, nil)
			if code != http.StatusOK {
				t.Fatalf("close after rejection: %d %s", code, body)
			}
		})
	}
}

// TestGlobalBudgetBoundary: the whole-server budget admits while spent
// < budget and refuses once spent >= budget — across sessions, which is
// what distinguishes it from the per-session limit.
func TestGlobalBudgetBoundary(t *testing.T) {
	const batch = 500
	data := encodeTrace(t, collectEvents(t, 0, batch))
	_, ts := newTestServer(t, func(c *Config) { c.GlobalEventBudget = 2 * batch })

	// Two sessions spend the budget exactly; a third session's batch must
	// be refused even though that session has ingested nothing.
	for i := 0; i < 2; i++ {
		sess := openSession(t, ts.URL, SessionConfig{Predictor: "last"})
		code, body, _ := do(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/events", data)
		if code != http.StatusOK {
			t.Fatalf("batch %d within budget: %d %s", i, code, body)
		}
	}
	fresh := openSession(t, ts.URL, SessionConfig{Predictor: "last"})
	code, body, hdr := do(t, "POST", ts.URL+"/v1/sessions/"+fresh.ID+"/events", data)
	if code != http.StatusTooManyRequests {
		t.Fatalf("batch past global budget: %d %s, want 429", code, body)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("global-budget 429 carried Retry-After %q, want \"1\"", hdr.Get("Retry-After"))
	}
}

// TestMaxSessionsBoundary: opens succeed up to the cap exactly, the
// next is 429 + Retry-After, and closing one session readmits.
func TestMaxSessionsBoundary(t *testing.T) {
	const cap = 3
	_, ts := newTestServer(t, func(c *Config) { c.MaxSessions = cap })

	prime := encodeTrace(t, collectEvents(t, 0, 100))
	ids := make([]string, cap)
	for i := range ids {
		ids[i] = openSession(t, ts.URL, SessionConfig{Predictor: "last"}).ID
		// Feed each session a batch so its eventual close drains cleanly
		// (an empty stream reads as a truncated trace).
		if code, b, _ := do(t, "POST", ts.URL+"/v1/sessions/"+ids[i]+"/events", prime); code != http.StatusOK {
			t.Fatalf("prime %d: %d %s", i, code, b)
		}
	}
	body := []byte(`{"predictor": "last"}`)
	code, b, hdr := do(t, "POST", ts.URL+"/v1/sessions", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("open past cap: %d %s, want 429", code, b)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("429 carried Retry-After %q, want \"1\"", hdr.Get("Retry-After"))
	}

	if code, b, _ := do(t, "DELETE", ts.URL+"/v1/sessions/"+ids[0], nil); code != http.StatusOK {
		t.Fatalf("close: %d %s", code, b)
	}
	if code, b, _ := do(t, "POST", ts.URL+"/v1/sessions", body); code != http.StatusCreated {
		t.Fatalf("open after a close: %d %s, want 201", code, b)
	}
}

// TestMaxBatchBytesBoundary: a body of exactly MaxBatchBytes is served;
// one byte over is 413, and the rejection consumes nothing — the same
// bytes re-sent in two halves are then accepted in full.
func TestMaxBatchBytesBoundary(t *testing.T) {
	const n = 2_000
	data := encodeTrace(t, collectEvents(t, 0, n))

	t.Run("exactly at cap", func(t *testing.T) {
		_, ts := newTestServer(t, func(c *Config) { c.MaxBatchBytes = int64(len(data)) })
		sess := openSession(t, ts.URL, SessionConfig{Predictor: "last"})
		code, body, _ := do(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/events", data)
		if code != http.StatusOK {
			t.Fatalf("body at exactly the cap: %d %s, want 200", code, body)
		}
	})
	t.Run("one byte over cap", func(t *testing.T) {
		srv, ts := newTestServer(t, func(c *Config) { c.MaxBatchBytes = int64(len(data)) - 1 })
		sess := openSession(t, ts.URL, SessionConfig{Predictor: "last"})
		url := ts.URL + "/v1/sessions/" + sess.ID + "/events"
		code, body, _ := do(t, "POST", url, data)
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("body one byte over the cap: %d %s, want 413", code, body)
		}
		if got := srv.mBatchTooLarge.Value(); got != 1 {
			t.Fatalf("too-large counter = %d after one 413, want 1", got)
		}

		// Nothing was consumed: the same stream split at an arbitrary
		// byte passes, and the session's totals equal the whole trace.
		half := len(data) / 2
		for _, part := range [][]byte{data[:half], data[half:]} {
			if code, body, _ := do(t, "POST", url, part); code != http.StatusOK {
				t.Fatalf("post after split: %d %s", code, body)
			}
		}
		final := streamSession(t, ts.URL, sess.ID, nil, 1)
		if final.Events != n {
			t.Fatalf("events after split delivery = %d, want %d", final.Events, n)
		}
	})
}

// TestFinishIdempotentUnderConcurrency: many goroutines finishing one
// session all succeed (finish is idempotent, first wins, rest no-op),
// and a post to a finished-but-live session is 409, exactly once per
// attempt.
func TestFinishIdempotentUnderConcurrency(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	sess := openSession(t, ts.URL, SessionConfig{Predictor: "last"})
	data := encodeTrace(t, collectEvents(t, 0, 100))
	if code, body, _ := do(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/events", data); code != http.StatusOK {
		t.Fatalf("prime: %d %s", code, body)
	}

	// Race N direct finishers (the handler's DELETE path removes the
	// session first; finishing without removal is what a janitor racing a
	// slow client produces). Every call must return nil.
	live, err := srv.store.get(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	const finishers = 16
	errs := make([]error, finishers)
	var wg sync.WaitGroup
	for i := 0; i < finishers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = live.finish()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("finisher %d: %v (finish must be idempotent)", i, err)
		}
	}

	// The session is finished but still in the store: every further batch
	// is a 409 conflict, and each one ticks the conflict counter.
	for i := 1; i <= 3; i++ {
		code, body, _ := do(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/events", data)
		if code != http.StatusConflict {
			t.Fatalf("post %d to finished session: %d %s, want 409", i, code, body)
		}
		if got := srv.mBatchConflict.Value(); got != int64(i) {
			t.Fatalf("conflict counter = %d after %d conflicts", got, i)
		}
	}

	// DELETE still works — the double-finish inside is the no-op branch —
	// and returns the finished view.
	code, body, _ := do(t, "DELETE", ts.URL+"/v1/sessions/"+sess.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("delete finished session: %d %s", code, body)
	}
}
