package server

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("z_batches_total", "Batches.", "")
	c.Add(3)
	r.Counter("a_loads_total", "Loads by kind.", `predictor="cap"`).Add(7)
	r.Counter("a_loads_total", "Loads by kind.", `predictor="stride"`).Add(2)
	r.GaugeFunc("m_open", "Open things.", "", func() int64 { return 5 })
	tm := r.Timing("m_wait_seconds", "Waiting.")
	tm.Observe(1500 * time.Millisecond)
	tm.Observe(500 * time.Millisecond)

	var b strings.Builder
	r.Render(&b)
	want := `# HELP a_loads_total Loads by kind.
# TYPE a_loads_total counter
a_loads_total{predictor="cap"} 7
a_loads_total{predictor="stride"} 2
# HELP m_open Open things.
# TYPE m_open gauge
m_open 5
# HELP m_wait_seconds Waiting.
# TYPE m_wait_seconds summary
m_wait_seconds_sum 2
m_wait_seconds_count 2
# HELP z_batches_total Batches.
# TYPE z_batches_total counter
z_batches_total 3
`
	if b.String() != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
	if got := tm.Count(); got != 2 {
		t.Fatalf("timing count: got %d, want 2", got)
	}
}

func TestRegistryReusesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.", "")
	b := r.Counter("x_total", "X.", "")
	if a != b {
		t.Fatal("same name+labels must return the same series")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "X.", "")
}
