package server

// The async experiment job queue: any registry experiment can be
// submitted as a job, polled for status and progress, and its rendered
// table fetched once done. Jobs run on the existing sharded scheduler
// under the established resilience policy — per-trace deadlines,
// bounded transient retries, cancellation, per-shard panic isolation
// into *PanicError — so a misbehaving trace degrades a job to partial
// results with a failure footer instead of taking the server down.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"capred/internal/sim"
	"capred/internal/trace"
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Experiment is a registry name (see GET /v1/experiments).
	Experiment string `json:"experiment"`
	// Events overrides the per-trace instruction budget (0 = server default).
	Events int64 `json:"events,omitempty"`
	// Workers overrides the scheduler's worker-goroutine count for this
	// job (0 = server default). Results are bit-identical at any count.
	Workers int `json:"workers,omitempty"`
}

// job is one queued/running/finished experiment run.
type job struct {
	ID  string
	Req JobRequest

	mu          sync.Mutex
	state       JobState
	submitted   time.Time
	started     time.Time
	finished    time.Time
	table       string
	failures    []string // rendered TraceFailure lines
	errMsg      string   // terminal error for failed jobs
	shardsDone  atomic.Int64
	shardsTotal atomic.Int64
}

// JobStatus is the wire rendering of a job.
type JobStatus struct {
	ID          string   `json:"id"`
	Experiment  string   `json:"experiment"`
	Events      int64    `json:"events"`
	Workers     int      `json:"workers"`
	State       JobState `json:"state"`
	SubmittedAt string   `json:"submitted_at"`
	StartedAt   string   `json:"started_at,omitempty"`
	FinishedAt  string   `json:"finished_at,omitempty"`
	ShardsDone  int64    `json:"shards_done"`
	ShardsTotal int64    `json:"shards_total"`
	Failures    []string `json:"failures,omitempty"`
	Error       string   `json:"error,omitempty"`
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.ID,
		Experiment:  j.Req.Experiment,
		Events:      j.Req.Events,
		Workers:     j.Req.Workers,
		State:       j.state,
		SubmittedAt: rfc3339(j.submitted),
		StartedAt:   rfc3339(j.started),
		FinishedAt:  rfc3339(j.finished),
		ShardsDone:  j.shardsDone.Load(),
		ShardsTotal: j.shardsTotal.Load(),
		Failures:    append([]string(nil), j.failures...),
		Error:       j.errMsg,
	}
}

// errQueueFull reports job-queue backpressure (429 + Retry-After).
var errQueueFull = errors.New("job queue full")

// jobQueue accepts, schedules and retains jobs. Completed jobs stay
// queryable for the life of the process (they are small: a rendered
// table and some timestamps).
type jobQueue struct {
	events        int64 // default per-trace budget
	workers       int   // default scheduler workers
	traceTimeout  time.Duration
	sourceRetries int
	replay        *trace.ReplayCache // shared across jobs: same trace+budget streams replay for free
	now           func() time.Time

	queue  chan *job
	ctx    context.Context // cancels running jobs on hard shutdown
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool // queue channel closed; no further submissions
	jobs   map[string]*job
	order  []string

	// Observability hooks, wired by the server.
	onQueueWait func(time.Duration)
	onRun       func(time.Duration, JobState)
}

func newJobQueue(cfg Config) *jobQueue {
	ctx, cancel := context.WithCancel(context.Background())
	q := &jobQueue{
		events:        cfg.JobEvents,
		workers:       cfg.Workers,
		traceTimeout:  cfg.TraceTimeout,
		sourceRetries: cfg.SourceRetries,
		now:           cfg.now(),
		queue:         make(chan *job, cfg.JobQueueDepth),
		ctx:           ctx,
		cancel:        cancel,
		jobs:          make(map[string]*job),
	}
	if cfg.ReplayCacheBudget != 0 {
		q.replay = trace.NewReplayCache(cfg.ReplayCacheBudget)
	}
	for i := 0; i < cfg.JobRunners; i++ {
		q.wg.Add(1)
		go q.runner()
	}
	return q
}

// submit enqueues a job, failing fast with errQueueFull on backpressure.
func (q *jobQueue) submit(req JobRequest) (*job, error) {
	if _, ok := sim.ExperimentByName(req.Experiment); !ok {
		return nil, fmt.Errorf("unknown experiment %q", req.Experiment)
	}
	if req.Events < 0 || req.Workers < 0 {
		return nil, fmt.Errorf("events and workers must be non-negative")
	}
	if req.Events == 0 {
		req.Events = q.events
	}
	if req.Workers == 0 {
		req.Workers = q.workers
	}
	j := &job{ID: newID("j"), Req: req, state: JobQueued, submitted: q.now()}
	// The send happens under q.mu so it can never race the close in stop:
	// it is non-blocking, so holding the lock across it is safe.
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, errQueueFull
	}
	select {
	case q.queue <- j:
		q.jobs[j.ID] = j
		q.order = append(q.order, j.ID)
		return j, nil
	default:
		return nil, errQueueFull
	}
}

// get returns a job by ID.
func (q *jobQueue) get(id string) (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// list returns every job's status in submission order.
func (q *jobQueue) list() []JobStatus {
	q.mu.Lock()
	ids := append([]string(nil), q.order...)
	q.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := q.get(id); ok {
			out = append(out, j.status())
		}
	}
	return out
}

// depth returns the number of queued-but-not-started jobs.
func (q *jobQueue) depth() int { return len(q.queue) }

// table returns a finished job's rendered table.
func (j *job) renderedTable() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.table, j.state == JobDone
}

// runner is one job-executing goroutine. Jobs run one at a time per
// runner; inside a job, the sharded scheduler fans out across the
// configured worker goroutines. Runners exit when stop closes the queue
// channel, after running (or, post-cancellation, fast-failing) whatever
// was still queued.
func (q *jobQueue) runner() {
	defer q.wg.Done()
	for j := range q.queue {
		q.runJob(j)
	}
}

// failUnstarted marks a job that will never run (shutdown beat it).
func (q *jobQueue) failUnstarted(j *job) {
	j.mu.Lock()
	j.state = JobFailed
	j.errMsg = "server shut down before the job started"
	j.finished = q.now()
	j.mu.Unlock()
}

func (q *jobQueue) runJob(j *job) {
	if q.ctx.Err() != nil {
		q.failUnstarted(j)
		return
	}
	exp, ok := sim.ExperimentByName(j.Req.Experiment)
	if !ok { // validated at submit; unreachable unless the registry shrank
		return
	}
	start := q.now()
	j.mu.Lock()
	j.state = JobRunning
	j.started = start
	j.mu.Unlock()
	if q.onQueueWait != nil {
		q.onQueueWait(start.Sub(j.submitted))
	}

	cfg := sim.Config{
		EventsPerTrace: j.Req.Events,
		Workers:        j.Req.Workers,
		Ctx:            q.ctx,
		TraceTimeout:   q.traceTimeout,
		SourceRetries:  q.sourceRetries,
		ReplayCache:    q.replay,
		Progress: func(done, total int) {
			j.shardsDone.Store(int64(done))
			j.shardsTotal.Store(int64(total))
		},
	}

	table, failures, err := runExperiment(exp, cfg)

	end := q.now()
	j.mu.Lock()
	j.finished = end
	j.failures = failures
	switch {
	case err != nil:
		j.state = JobFailed
		j.errMsg = err.Error()
	case q.ctx.Err() != nil:
		// Cancelled mid-run: the scheduler returned partial results; a
		// drained job must not masquerade as a clean one.
		j.state = JobFailed
		j.table = table
		j.errMsg = fmt.Sprintf("cancelled: %v", q.ctx.Err())
	default:
		j.state = JobDone
		j.table = table
	}
	state := j.state
	j.mu.Unlock()
	if q.onRun != nil {
		q.onRun(end.Sub(start), state)
	}
}

// runExperiment executes one experiment, converting a panic that escapes
// the scheduler's per-shard isolation (e.g. in a table renderer) into an
// error instead of a server crash.
func runExperiment(exp sim.Experiment, cfg sim.Config) (table string, failures []string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment panicked: %v\n%s", r, debug.Stack())
		}
	}()
	res := exp.Run(cfg)
	for _, f := range res.Failed() {
		failures = append(failures, f.String())
	}
	return res.Table().String(), failures, nil
}

// stop shuts the queue down: the channel closes (submit starts returning
// errQueueFull), running and queued jobs get until ctx's deadline to
// complete, then the scheduler context is cancelled — running jobs abort
// into the failed state and still-queued jobs fast-fail. Idempotent.
func (q *jobQueue) stop(ctx context.Context) {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.queue)
	}
	q.mu.Unlock()
	finished := make(chan struct{})
	// capvet:ignore goisolate pure waiter: only wg.Wait and a close run here, no user code can panic
	go func() {
		q.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		q.cancel()
		<-finished
	}
	q.cancel() // release the context either way
	// With zero runners nothing drains the closed channel; fail the
	// leftovers so no job reads "queued" forever.
	for j := range q.queue {
		q.failUnstarted(j)
	}
}
