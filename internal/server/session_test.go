package server

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock drives the store's TTL logic without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time             { return c.t }
func (c *fakeClock) advance(d time.Duration)    { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                  { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func withClock(cfg Config, c *fakeClock) Config { cfg.Now = c.now; return cfg }

func TestStoreCapacityAndTTLEviction(t *testing.T) {
	clock := newFakeClock()
	cfg := testConfig()
	cfg.MaxSessions = 2
	cfg.SessionTTL = time.Minute
	st := newSessionStore(withClock(cfg, clock))

	a, err := st.create(SessionConfig{Predictor: "stride"})
	if err != nil {
		t.Fatalf("create a: %v", err)
	}
	if _, err := st.create(SessionConfig{Predictor: "cap"}); err != nil {
		t.Fatalf("create b: %v", err)
	}
	if _, err := st.create(SessionConfig{Predictor: "hybrid"}); !errors.Is(err, errTooManySessions) {
		t.Fatalf("third create: got %v, want errTooManySessions", err)
	}

	clock.advance(2 * time.Minute)
	if _, err := st.create(SessionConfig{Predictor: "hybrid"}); err != nil {
		t.Fatalf("create after TTL: %v", err)
	}
	if got := st.open(); got != 1 {
		t.Fatalf("open sessions after eviction: got %d, want 1", got)
	}
	if got := st.evicted.Load(); got != 2 {
		t.Fatalf("evicted count: got %d, want 2", got)
	}
	if _, err := st.get(a.ID); !errors.Is(err, errNotFound) {
		t.Fatalf("get evicted session: got %v, want errNotFound", err)
	}
}

func TestGetRefreshesTTL(t *testing.T) {
	clock := newFakeClock()
	cfg := testConfig()
	cfg.SessionTTL = time.Minute
	st := newSessionStore(withClock(cfg, clock))

	s, err := st.create(SessionConfig{Predictor: "last"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clock.advance(45 * time.Second) // past half the TTL, under the whole
		if _, err := st.get(s.ID); err != nil {
			t.Fatalf("touch %d: %v", i, err)
		}
	}
	clock.advance(2 * time.Minute)
	if n := st.sweep(); n != 1 {
		t.Fatalf("sweep: got %d evictions, want 1", n)
	}
}

func TestSessionEventBudget(t *testing.T) {
	cfg := testConfig()
	cfg.SessionEventBudget = 100
	st := newSessionStore(cfg)
	s, err := st.create(SessionConfig{Predictor: "stride"})
	if err != nil {
		t.Fatal(err)
	}

	body := encodeTrace(t, collectEvents(t, 0, 150))
	res, err := s.ingest(st, body)
	if err != nil {
		t.Fatalf("first batch (budget pre-check admits it): %v", err)
	}
	if res.Events != 150 {
		t.Fatalf("events applied: got %d, want 150", res.Events)
	}
	if _, err := s.ingest(st, nil); !errors.Is(err, errBudget) {
		t.Fatalf("over-budget batch: got %v, want errBudget", err)
	}
	if got := st.ingested(); got != 150 {
		t.Fatalf("global ingested: got %d, want 150", got)
	}
}

func TestGlobalEventBudget(t *testing.T) {
	cfg := testConfig()
	cfg.GlobalEventBudget = 100
	st := newSessionStore(cfg)
	a, _ := st.create(SessionConfig{Predictor: "stride"})
	b, _ := st.create(SessionConfig{Predictor: "cap"})

	if _, err := a.ingest(st, encodeTrace(t, collectEvents(t, 0, 150))); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	if _, err := b.ingest(st, encodeTrace(t, collectEvents(t, 1, 10))); !errors.Is(err, errBudget) {
		t.Fatalf("other session after global budget spent: got %v, want errBudget", err)
	}
}

func TestFinishedSessionSemantics(t *testing.T) {
	st := newSessionStore(testConfig())
	s, err := st.create(SessionConfig{Predictor: "hybrid", Gap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ingest(st, encodeTrace(t, collectEvents(t, 0, 200))); err != nil {
		t.Fatal(err)
	}
	if err := s.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := s.finish(); err != nil {
		t.Fatalf("finish must be idempotent: %v", err)
	}
	if _, err := s.ingest(st, nil); !errors.Is(err, errFinished) {
		t.Fatalf("ingest after finish: got %v, want errFinished", err)
	}
}

func TestFinishReportsTruncatedStream(t *testing.T) {
	st := newSessionStore(testConfig())
	s, err := st.create(SessionConfig{Predictor: "stride"})
	if err != nil {
		t.Fatal(err)
	}
	data := encodeTrace(t, collectEvents(t, 0, 50))
	if _, err := s.ingest(st, data[:len(data)-1]); err != nil {
		t.Fatalf("partial body buffers the tail, no error yet: %v", err)
	}
	err = s.finish()
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("finish on mid-event stream: got %v, want truncation error", err)
	}
}

func TestRejectedBatchLeavesSessionUntouched(t *testing.T) {
	cfg := testConfig()
	cfg.SessionEventBudget = 100
	st := newSessionStore(cfg)
	s, err := st.create(SessionConfig{Predictor: "cap"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ingest(st, encodeTrace(t, collectEvents(t, 0, 120))); err != nil {
		t.Fatal(err)
	}
	before := s.snapshot()
	if _, err := s.ingest(st, []byte{1, 2, 3}); !errors.Is(err, errBudget) {
		t.Fatalf("got %v, want errBudget", err)
	}
	if after := s.snapshot(); after != before {
		t.Fatalf("rejected batch mutated the session: %+v vs %+v", after, before)
	}
}
