package server

// TTL/janitor lease-edge tests: the exact eviction boundary, the
// janitor sweep racing live traffic (run these under -race), and the
// guarantee that evicting a session never corrupts a batch already in
// flight on it.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// lockedClock is a thread-safe fakeClock for tests where the sweeper,
// the clock and the traffic run on different goroutines. (fakeClock is
// deliberately unsynchronised; single-threaded tests keep using it.)
type lockedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *lockedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *lockedClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestTTLExactBoundary pins the lease edge: a session idle for exactly
// the TTL is still alive (eviction is strictly "older than TTL"), one
// nanosecond more and it is gone. Clients that heartbeat at the TTL
// period therefore never lose a session to rounding.
func TestTTLExactBoundary(t *testing.T) {
	clock := newFakeClock()
	cfg := testConfig()
	cfg.SessionTTL = time.Minute
	st := newSessionStore(withClock(cfg, clock))

	s, err := st.create(SessionConfig{Predictor: "stride"})
	if err != nil {
		t.Fatal(err)
	}

	clock.advance(time.Minute) // idle == TTL exactly
	if n := st.sweep(); n != 0 {
		t.Fatalf("sweep at idle==TTL evicted %d sessions, want 0 (boundary is strict)", n)
	}
	if _, err := st.get(s.ID); err != nil {
		t.Fatalf("session evicted at the exact TTL boundary: %v", err)
	}

	clock.advance(time.Minute + time.Nanosecond) // one step past the edge
	if n := st.sweep(); n != 1 {
		t.Fatalf("sweep past TTL evicted %d sessions, want 1", n)
	}
	if _, err := st.get(s.ID); !errors.Is(err, errNotFound) {
		t.Fatalf("get after eviction: got %v, want errNotFound", err)
	}
}

// TestSweepRacesTraffic runs creates, gets, ingests and sweeps on
// separate goroutines while the clock advances, then checks the store's
// books balance: every session ever created is either still open or
// counted in the eviction total. Under -race this also proves the
// store-lock/session-lock nesting in evictLocked, get and ingest is
// consistent.
func TestSweepRacesTraffic(t *testing.T) {
	clock := &lockedClock{t: time.Unix(1_000_000, 0)}
	cfg := testConfig()
	cfg.SessionTTL = 50 * time.Millisecond
	cfg.MaxSessions = 0 // traffic outruns the fake clock; capacity is not under test
	cfg.Now = clock.now
	st := newSessionStore(cfg)

	body := encodeTrace(t, collectEvents(t, 0, 200))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		wg       sync.WaitGroup
		created  atomic.Int64
		ingested atomic.Int64
		ids      sync.Map // session ID -> struct{}, for the getter goroutine
	)

	// Traffic: open sessions and stream a batch at each.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				s, err := st.create(SessionConfig{Predictor: "last"})
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				created.Add(1)
				ids.Store(s.ID, struct{}{})
				if res, err := s.ingest(st, body); err == nil {
					ingested.Add(res.Events)
				} else {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}()
	}
	// Touches: get refreshes lastUsed under the store lock; racing it
	// against the sweeper is the whole point. errNotFound is legal (the
	// sweeper may win), any other error is not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			ids.Range(func(k, _ any) bool {
				if _, err := st.get(k.(string)); err != nil && !errors.Is(err, errNotFound) {
					t.Errorf("get: %v", err)
				}
				return ctx.Err() == nil
			})
		}
	}()
	// The janitor stand-in plus a moving clock so evictions really fire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			clock.advance(20 * time.Millisecond)
			st.sweep()
		}
	}()

	time.Sleep(100 * time.Millisecond)
	cancel()
	wg.Wait()

	// Quiesced: everything still open is now idle. One last expiry sweep
	// must leave the books balanced — every session ever created is
	// accounted for in the eviction total, none lost, none double-counted.
	clock.advance(cfg.SessionTTL + time.Second)
	st.sweep()
	if open := st.open(); open != 0 {
		t.Fatalf("%d sessions survived the final expiry sweep", open)
	}
	if evicted := st.evicted.Load(); evicted != created.Load() {
		t.Fatalf("books do not balance: evicted %d != created %d", evicted, created.Load())
	}
	if got := st.ingested(); got != ingested.Load() {
		t.Fatalf("global ingested = %d, want %d (eviction must not lose or double-charge events)",
			got, ingested.Load())
	}
}

// TestEvictionLeavesInFlightBatchIntact: a handler holding a session
// pointer across an eviction (get succeeded, then the janitor swept)
// must still apply its batch correctly — eviction only unlinks the
// session from the store, it never tears down state under the lock a
// batch is running on. The evicted session's counters must match a
// never-evicted session fed the same bytes.
func TestEvictionLeavesInFlightBatchIntact(t *testing.T) {
	// One continuous v3 stream split at an arbitrary byte boundary, as a
	// client streaming across two POSTs would send it.
	stream := encodeTrace(t, collectEvents(t, 0, 600))
	batch1, batch2 := stream[:len(stream)/2], stream[len(stream)/2:]

	clock := newFakeClock()
	cfg := testConfig()
	cfg.SessionTTL = time.Minute
	st := newSessionStore(withClock(cfg, clock))
	s, err := st.create(SessionConfig{Predictor: "hybrid", Gap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ingest(st, batch1); err != nil {
		t.Fatal(err)
	}

	// The janitor evicts the idle session while "the handler" still holds s.
	clock.advance(2 * time.Minute)
	if n := st.sweep(); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	if _, err := st.get(s.ID); !errors.Is(err, errNotFound) {
		t.Fatalf("store still resolves an evicted ID: %v", err)
	}

	// The in-flight batch on the retained pointer completes untouched.
	res, err := s.ingest(st, batch2)
	if err != nil {
		t.Fatalf("batch on evicted session: %v", err)
	}
	if res.Total != 600 {
		t.Fatalf("evicted session holds %d events after both batches, want 600", res.Total)
	}

	// Same bytes through a session that was never evicted: identical
	// counters, or eviction corrupted decoder/stepper state.
	ref := newSessionStore(testConfig())
	r, err := ref.create(SessionConfig{Predictor: "hybrid", Gap: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]byte{batch1, batch2} {
		if _, err := r.ingest(ref, b); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s.snapshot(), r.snapshot(); got != want {
		t.Fatalf("evicted session diverged from reference:\nevicted   %+v\nreference %+v", got, want)
	}
}

// TestJanitorGoroutineLifecycle runs the real janitor (ticker-driven,
// wall clock) against live traffic and shuts it down; under -race this
// covers the production goroutine itself, not a stand-in, and proves
// Shutdown stops it without leaking or double-closing janitorStop.
func TestJanitorGoroutineLifecycle(t *testing.T) {
	cfg := testConfig()
	cfg.SessionTTL = time.Millisecond
	cfg.SweepInterval = time.Millisecond
	cfg.MaxSessions = 0 // the create loop outruns the 1ms sweeper on slow hosts; capacity is not under test
	srv := New(cfg)

	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		s, err := srv.store.create(SessionConfig{Predictor: "cap"})
		if err != nil {
			t.Fatalf("create under janitor: %v", err)
		}
		if _, err := srv.store.get(s.ID); err != nil && !errors.Is(err, errNotFound) {
			t.Fatalf("get under janitor: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil { // idempotent: janitorStop not double-closed
		t.Fatalf("second shutdown: %v", err)
	}
}
