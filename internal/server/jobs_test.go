package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"capred/internal/sim"
)

// waitForJob polls until the job leaves the queued/running states.
func waitForJob(t *testing.T, j *job) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := j.status()
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish: %+v", j.ID, j.status())
	return JobStatus{}
}

func TestJobRunsExperimentBitIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 4
	q := newJobQueue(cfg)
	defer q.stop(context.Background())

	j, err := q.submit(JobRequest{Experiment: "baselines"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st := waitForJob(t, j)
	if st.State != JobDone {
		t.Fatalf("job state: %+v", st)
	}
	if st.ShardsTotal == 0 || st.ShardsDone != st.ShardsTotal {
		t.Fatalf("progress never completed: done %d of %d", st.ShardsDone, st.ShardsTotal)
	}

	got, ok := j.renderedTable()
	if !ok {
		t.Fatal("renderedTable not available on a done job")
	}
	offline := sim.DefaultConfig()
	offline.EventsPerTrace = cfg.JobEvents
	exp, _ := sim.ExperimentByName("baselines")
	want := exp.Run(offline).Table().String()
	if got != want {
		t.Fatalf("job table differs from offline run:\n--- job ---\n%s\n--- offline ---\n%s", got, want)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	q := newJobQueue(testConfig())
	defer q.stop(context.Background())
	if _, err := q.submit(JobRequest{Experiment: "no-such-figure"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := q.submit(JobRequest{Experiment: "baselines", Events: -1}); err == nil {
		t.Fatal("negative events accepted")
	}
}

func TestJobQueueBackpressureAndShutdown(t *testing.T) {
	cfg := testConfig()
	cfg.JobRunners = 0 // nothing consumes: the queue holds jobs forever
	cfg.JobQueueDepth = 1
	q := newJobQueue(cfg)

	j, err := q.submit(JobRequest{Experiment: "baselines"})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := q.submit(JobRequest{Experiment: "baselines"}); !errors.Is(err, errQueueFull) {
		t.Fatalf("second submit: got %v, want errQueueFull", err)
	}

	q.stop(context.Background())
	if _, err := q.submit(JobRequest{Experiment: "baselines"}); !errors.Is(err, errQueueFull) {
		t.Fatalf("submit after stop: got %v, want errQueueFull", err)
	}
	st := j.status()
	if st.State != JobFailed || !strings.Contains(st.Error, "shut down") {
		t.Fatalf("queued job after shutdown: %+v, want failed with shutdown error", st)
	}
}

func TestJobListOrder(t *testing.T) {
	cfg := testConfig()
	cfg.JobRunners = 0
	cfg.JobQueueDepth = 4
	q := newJobQueue(cfg)
	defer q.stop(context.Background())

	var ids []string
	for i := 0; i < 3; i++ {
		j, err := q.submit(JobRequest{Experiment: "baselines"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	list := q.list()
	if len(list) != 3 {
		t.Fatalf("list length: got %d, want 3", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Fatalf("list[%d] = %s, want %s (submission order)", i, st.ID, ids[i])
		}
	}
	if got := q.depth(); got != 3 {
		t.Fatalf("queue depth: got %d, want 3", got)
	}
}
