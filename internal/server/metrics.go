package server

// A minimal metrics registry rendering the Prometheus text exposition
// format, stdlib only. The server needs a handful of counters, a few
// callback gauges and two latency summaries; depending on a client
// library for that would be the project's first external dependency, so
// this implements exactly the subset /metrics needs: counter and gauge
// families with optional fixed label sets, summary families as
// _sum/_count pairs, deterministic render order.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Var is one metric series: an atomic integer, rendered either as the
// integer itself or scaled by a fixed factor (latency sums count
// microseconds and render as seconds).
type Var struct {
	i     atomic.Int64
	fn    func() int64 // callback series (gauges computed at scrape time)
	scale float64      // 0 renders the raw integer; else value × scale
}

// Add increments the series.
func (v *Var) Add(n int64) { v.i.Add(n) }

// Inc increments the series by one.
func (v *Var) Inc() { v.i.Add(1) }

// Value returns the current value (callback series consult the callback).
func (v *Var) Value() int64 {
	if v.fn != nil {
		return v.fn()
	}
	return v.i.Load()
}

func (v *Var) render(w io.Writer, name, labels string) {
	series := name
	if labels != "" {
		series = name + "{" + labels + "}"
	}
	if v.scale != 0 {
		fmt.Fprintf(w, "%s %g\n", series, float64(v.Value())*v.scale)
	} else {
		fmt.Fprintf(w, "%s %d\n", series, v.Value())
	}
}

// family is one metric name: help, type and its series by label set.
type family struct {
	name, help, typ string
	order           []string // label strings in registration order
	series          map[string]*Var
}

// Registry holds the server's metric families and renders them in the
// Prometheus text format, sorted by family name for a stable scrape.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

func (r *Registry) register(name, help, typ, labels string, v *Var) *Var {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*Var)}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	if existing, ok := f.series[labels]; ok {
		return existing
	}
	f.series[labels] = v
	f.order = append(f.order, labels)
	return v
}

// Counter registers (or returns the existing) monotonically-increasing
// series. labels is a pre-rendered Prometheus label set such as
// `predictor="hybrid"`, or "" for none.
func (r *Registry) Counter(name, help, labels string) *Var {
	return r.register(name, help, "counter", labels, &Var{})
}

// Gauge registers an explicitly-set gauge series.
func (r *Registry) Gauge(name, help, labels string) *Var {
	return r.register(name, help, "gauge", labels, &Var{})
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() int64) {
	r.register(name, help, "gauge", labels, &Var{fn: fn})
}

// CounterFunc registers a counter whose value is read at scrape time
// from an existing monotonic source (e.g. an atomic the data path
// already maintains).
func (r *Registry) CounterFunc(name, help, labels string, fn func() int64) {
	r.register(name, help, "counter", labels, &Var{fn: fn})
}

// Timing is a latency summary: a _sum/_count pair under one family.
type Timing struct {
	sum   *Var // microseconds, rendered as seconds
	count *Var
}

// Timing registers a summary family <name> with <name>_sum (seconds) and
// <name>_count series.
func (r *Registry) Timing(name, help string) Timing {
	return Timing{
		sum:   r.register(name, help, "summary", "\x00sum", &Var{scale: 1e-6}),
		count: r.register(name, help, "summary", "\x00count", &Var{}),
	}
}

// Observe records one duration.
func (t Timing) Observe(d time.Duration) {
	t.sum.Add(d.Microseconds())
	t.count.Inc()
}

// Count returns the number of observations so far.
func (t Timing) Count() int64 { return t.count.Value() }

// Render writes every family in the text exposition format.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, labels := range f.order {
			v := f.series[labels]
			switch labels {
			case "\x00sum":
				v.render(w, f.name+"_sum", "")
			case "\x00count":
				v.render(w, f.name+"_count", "")
			default:
				v.render(w, f.name, labels)
			}
		}
	}
}
