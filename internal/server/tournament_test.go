package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestTournamentSessionValidation pins the config surface: the
// tournament accepts only its own knobs, and its knobs are rejected
// everywhere else.
func TestTournamentSessionValidation(t *testing.T) {
	u8 := func(v uint8) *uint8 { return &v }
	bad := []SessionConfig{
		{Predictor: "tournament", Components: []string{"bogus"}},
		{Predictor: "tournament", Components: []string{"stride", "stride"}},
		{Predictor: "tournament", ConfThreshold: u8(2)},
		{Predictor: "tournament", HistoryLen: intp(4)},
		{Predictor: "tournament", TagBits: intp(8)},
		{Predictor: "tournament", UpdatePolicy: "always"},
		{Predictor: "tournament", ChooserMax: u8(1)},
		{Predictor: "tournament", ChooserMax: u8(16)},
		{Predictor: "hybrid", Components: []string{"stride", "cap"}},
		{Predictor: "cap", ChooserMax: u8(3)},
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("case %d (%+v): validate accepted an invalid config", i, cfg)
		}
	}
	good := []SessionConfig{
		{Predictor: "tournament"},
		{Predictor: "tournament", Gap: 8},
		{Predictor: "tournament", Components: []string{"cap", "markov"}},
		{Predictor: "tournament", ChooserMax: u8(7)},
	}
	for i, cfg := range good {
		if err := cfg.validate(); err != nil {
			t.Errorf("case %d (%+v): validate rejected a valid config: %v", i, cfg, err)
		}
		if _, err := cfg.build(); err != nil {
			t.Errorf("case %d (%+v): build: %v", i, cfg, err)
		}
	}
}

func intp(v int) *int { return &v }

// scrapeComponentCounters parses the per-component tournament series out
// of a /metrics scrape.
func scrapeComponentCounters(t *testing.T, base, series string) map[string]int64 {
	t.Helper()
	code, body, _ := do(t, "GET", base+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	out := make(map[string]int64)
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, series+`{component="`)
		if !ok {
			continue
		}
		name, val, ok := strings.Cut(rest, `"} `)
		if !ok {
			t.Fatalf("unparseable metric line %q", line)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("metric value in %q: %v", line, err)
		}
		out[name] = n
	}
	return out
}

// TestTournamentSessionMetrics streams a trace through a tournament
// session and checks the per-component /metrics accounting: the series
// exist from startup for every buildable component (no labels appear
// mid-run, none is "none"), and the selected counts sum exactly to the
// session's speculated-load count — every speculative access is
// attributed to exactly one winning component.
func TestTournamentSessionMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)

	before := scrapeComponentCounters(t, ts.URL, "capserve_tournament_selected_total")
	for _, name := range tournamentComponentLabels() {
		if _, ok := before[name]; !ok {
			t.Errorf("component %q series missing before any session", name)
		}
	}
	if _, ok := before["none"]; ok {
		t.Error(`a component series is labelled "none"`)
	}

	cfg := SessionConfig{Predictor: "tournament"}
	evs := collectEvents(t, 3, 8_000)
	v := openSession(t, ts.URL, cfg)
	final := streamSession(t, ts.URL, v.ID, encodeTrace(t, evs), 4096)
	if final.Counters != offlineCounters(t, cfg, evs) {
		t.Fatal("tournament session counters differ from offline RunTrace")
	}

	selected := scrapeComponentCounters(t, ts.URL, "capserve_tournament_selected_total")
	correct := scrapeComponentCounters(t, ts.URL, "capserve_tournament_selected_correct_total")
	var sumSel, sumCor int64
	for name, n := range selected {
		sumSel += n - before[name]
		if c := correct[name]; c > n {
			t.Errorf("component %q: correct %d exceeds selected %d", name, c, n)
		}
	}
	for _, n := range correct {
		sumCor += n
	}
	if sumSel != final.Counters.Speculated {
		t.Errorf("selected sum %d != session speculated %d", sumSel, final.Counters.Speculated)
	}
	if sumCor != final.Counters.SpecCorrect {
		t.Errorf("correct sum %d != session spec-correct %d", sumCor, final.Counters.SpecCorrect)
	}
}

// TestPredictorsEndpointListsTournament pins the discovery surface.
func TestPredictorsEndpointListsTournament(t *testing.T) {
	_, ts := newTestServer(t, nil)
	code, body, _ := do(t, "GET", ts.URL+"/v1/predictors", nil)
	if code != http.StatusOK {
		t.Fatalf("/v1/predictors: %d", code)
	}
	var kinds []string
	if err := json.Unmarshal(body, &kinds); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range kinds {
		if k == "tournament" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tournament missing from %v", kinds)
	}
}
