// Package server implements capserve: a long-running HTTP service
// exposing the simulator over two surfaces — streaming prediction
// sessions (open a session bound to a predictor configuration, POST v3
// trace bytes at it, read running counters bit-identical to an offline
// RunTrace) and an async experiment job queue running registry
// experiments on the sharded scheduler. Stdlib only, like the rest of
// the project.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"capred/internal/sim"
)

// Config tunes a Server. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// MaxSessions bounds concurrently-open prediction sessions; opening
	// past it returns 429 + Retry-After. 0 means unbounded.
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this. 0 disables TTL
	// eviction.
	SessionTTL time.Duration
	// SweepInterval is the janitor period for TTL eviction. Eviction also
	// happens lazily on access, so 0 (no janitor) only delays reclaiming
	// sessions nobody touches again.
	SweepInterval time.Duration
	// SessionEventBudget caps events one session may ingest; 0 = unlimited.
	SessionEventBudget int64
	// GlobalEventBudget caps events ingested across all sessions over the
	// server's lifetime; 0 = unlimited.
	GlobalEventBudget int64
	// MaxBatchBytes caps one POST …/events request body.
	MaxBatchBytes int64

	// JobEvents is the default per-trace event budget for jobs.
	JobEvents int64
	// Workers is the default scheduler worker count for jobs.
	Workers int
	// TraceTimeout and SourceRetries carry the resilience policy into job
	// runs (see sim.Config).
	TraceTimeout  time.Duration
	SourceRetries int
	// JobQueueDepth bounds queued-but-not-started jobs; submitting past it
	// returns 429 + Retry-After.
	JobQueueDepth int
	// JobRunners is how many jobs execute concurrently.
	JobRunners int
	// ReplayCacheBudget sizes the decoded-trace replay cache shared by all
	// jobs, in bytes. 0 disables it.
	ReplayCacheBudget int64

	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		// 64 is a measured choice, not headroom to grow: under a 2x-overload
		// bursty day (capload, 2000 sessions / 512 users) the cap held p99
		// batch latency at 56ms where 128 let it double to 109ms — the cap
		// converts overload into brief Retry-After waits instead of queueing
		// delay (EXPERIMENTS.md, load-soak SLO table).
		MaxSessions: 64,
		// The TTL must clear a streaming client's longest legitimate think
		// gap (capload plans up to 1.5x its 5m mean, i.e. 7.5m). The old 5m
		// default sat inside that distribution and evicted 306 of 500 live
		// sessions in a compressed-day replay; 10m evicted none.
		SessionTTL:         10 * time.Minute,
		SweepInterval:      30 * time.Second,
		SessionEventBudget: 200_000_000,
		GlobalEventBudget:  2_000_000_000,
		MaxBatchBytes:      8 << 20,
		JobEvents:          1_000_000,
		Workers:            runtime.GOMAXPROCS(0),
		TraceTimeout:       5 * time.Minute,
		SourceRetries:      2,
		JobQueueDepth:      32,
		JobRunners:         1,
		ReplayCacheBudget:  256 << 20,
	}
}

func (c Config) now() func() time.Time {
	if c.Now != nil {
		return c.Now
	}
	return time.Now
}

// Server is the capserve HTTP service.
type Server struct {
	cfg   Config
	store *sessionStore
	jobs  *jobQueue
	reg   *Registry
	mux   *http.ServeMux
	http  *http.Server

	draining    atomic.Bool
	janitorStop chan struct{}

	// Metric series. Per-predictor-kind series are pre-registered so the
	// scrape surface is stable from the first request.
	mSessionsOpened *Var
	mSessionsClosed *Var
	mSessionsReject *Var
	mBatches        *Var
	mDroppedBudget  *Var
	mBatchTooLarge  *Var
	mBatchConflict  *Var
	mJobsSubmitted  *Var
	mJobsReject     *Var
	mJobsDone       *Var
	mJobsFailed     *Var
	mJobRun         Timing
	mJobWait        Timing
	mKindLoads      map[string]*Var
	mKindPredicted  map[string]*Var
	mKindCorrect    map[string]*Var
	mCompSelected   map[string]*Var
	mCompCorrect    map[string]*Var
}

// New builds a Server from cfg. Call Serve (or use Handler in tests) to
// take traffic, and Shutdown to drain.
func New(cfg Config) *Server {
	s := &Server{
		cfg:         cfg,
		store:       newSessionStore(cfg),
		jobs:        newJobQueue(cfg),
		reg:         NewRegistry(),
		mux:         http.NewServeMux(),
		janitorStop: make(chan struct{}),
	}
	s.registerMetrics()
	s.jobs.onQueueWait = s.mJobWait.Observe
	s.jobs.onRun = func(d time.Duration, state JobState) {
		s.mJobRun.Observe(d)
		if state == JobDone {
			s.mJobsDone.Inc()
		} else {
			s.mJobsFailed.Inc()
		}
	}
	s.routes()
	s.http = &http.Server{Handler: s.mux}
	if cfg.SweepInterval > 0 && cfg.SessionTTL > 0 {
		go s.janitor()
	}
	return s
}

func (s *Server) registerMetrics() {
	r := s.reg
	r.GaugeFunc("capserve_sessions_open", "Prediction sessions currently open.", "",
		func() int64 { return int64(s.store.open()) })
	s.mSessionsOpened = r.Counter("capserve_sessions_opened_total", "Prediction sessions opened.", "")
	s.mSessionsClosed = r.Counter("capserve_sessions_closed_total", "Prediction sessions closed by clients.", "")
	r.CounterFunc("capserve_sessions_evicted_total", "Prediction sessions evicted after the idle TTL.", "",
		s.store.evicted.Load)
	s.mSessionsReject = r.Counter("capserve_sessions_rejected_total", "Session opens rejected for capacity or drain (HTTP 429).", "")
	r.CounterFunc("capserve_events_ingested_total", "Trace events ingested across all sessions.", "",
		s.store.ingested)
	s.mBatches = r.Counter("capserve_batches_served_total", "Event batches decoded, predicted and answered.", "")
	s.mDroppedBudget = r.Counter("capserve_batches_dropped_budget_total", "Event batches rejected by a per-session or global event budget.", "")
	s.mBatchTooLarge = r.Counter("capserve_batches_rejected_too_large_total", "Event batches rejected for exceeding the request body cap (HTTP 413).", "")
	s.mBatchConflict = r.Counter("capserve_batches_conflict_total", "Event batches rejected because the session had already finished (HTTP 409).", "")
	s.mJobsSubmitted = r.Counter("capserve_jobs_submitted_total", "Experiment jobs accepted into the queue.", "")
	s.mJobsReject = r.Counter("capserve_jobs_rejected_total", "Experiment jobs rejected because the queue was full (HTTP 429).", "")
	s.mJobsDone = r.Counter("capserve_jobs_completed_total", "Experiment jobs finished, by outcome.", `status="done"`)
	s.mJobsFailed = r.Counter("capserve_jobs_completed_total", "Experiment jobs finished, by outcome.", `status="failed"`)
	r.GaugeFunc("capserve_job_queue_depth", "Jobs queued but not yet started.", "",
		func() int64 { return int64(s.jobs.depth()) })
	s.mJobRun = r.Timing("capserve_job_run_seconds", "Wall time jobs spent executing.")
	s.mJobWait = r.Timing("capserve_job_queue_wait_seconds", "Wall time jobs spent queued before starting.")

	s.mKindLoads = make(map[string]*Var)
	s.mKindPredicted = make(map[string]*Var)
	s.mKindCorrect = make(map[string]*Var)
	for _, kind := range PredictorKinds() {
		labels := fmt.Sprintf("predictor=%q", kind)
		s.mKindLoads[kind] = r.Counter("capserve_loads_total", "Loads stepped through sessions, by predictor kind.", labels)
		s.mKindPredicted[kind] = r.Counter("capserve_predicted_total", "Confident predictions made in sessions, by predictor kind.", labels)
		s.mKindCorrect[kind] = r.Counter("capserve_correct_total", "Correct confident predictions in sessions, by predictor kind.", labels)
	}

	// Tournament sessions additionally break speculative selections down
	// by winning component; every buildable component's series exists
	// from startup so scrapes never see labels appear mid-run.
	s.mCompSelected = make(map[string]*Var)
	s.mCompCorrect = make(map[string]*Var)
	for _, name := range tournamentComponentLabels() {
		labels := fmt.Sprintf("component=%q", name)
		s.mCompSelected[name] = r.Counter("capserve_tournament_selected_total", "Speculative predictions won, by tournament component.", labels)
		s.mCompCorrect[name] = r.Counter("capserve_tournament_selected_correct_total", "Correct speculative predictions among those won, by tournament component.", labels)
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/predictors", s.handlePredictors)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleSessionEvents)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/table", s.handleJobTable)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// Handler exposes the route table (tests drive it via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve takes traffic on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error { return s.http.Serve(ln) }

// BeginDrain flips the server into drain mode: health goes 503, new
// sessions and jobs get 429 + Retry-After, in-flight work continues.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Shutdown gracefully stops the server: drain mode on, running jobs get
// until ctx's deadline, in-flight HTTP requests complete, then listeners
// close. Safe to call without a prior Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	select {
	case <-s.janitorStop:
	default:
		close(s.janitorStop)
	}
	s.jobs.stop(ctx)
	return s.http.Shutdown(ctx)
}

func (s *Server) janitor() {
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.store.sweep()
		}
	}
}

// --- response plumbing ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

var errDraining = errors.New("server is draining; retry against another instance")

// --- health & metrics ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"sessions_open": s.store.open(),
		"jobs_queued":   s.jobs.depth(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.Render(w)
}

// --- discovery ---

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name string `json:"name"`
		Desc string `json:"desc"`
	}
	var out []entry
	for _, e := range sim.Experiments() {
		out = append(out, entry{e.Name, e.Desc})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePredictors(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, PredictorKinds())
}

// --- sessions ---

// sessionView is the wire rendering of a session.
type sessionView struct {
	ID        string        `json:"id"`
	Config    SessionConfig `json:"config"`
	CreatedAt string        `json:"created_at"`
	Events    int64         `json:"events"`
	Batches   int64         `json:"batches"`
	Finished  bool          `json:"finished"`
	Counters  any           `json:"counters"`
}

func viewOf(sess *session) sessionView {
	snap := sess.snapshot()
	return sessionView{
		ID:        sess.ID,
		Config:    sess.Cfg,
		CreatedAt: rfc3339(sess.CreatedAt),
		Events:    snap.Events,
		Batches:   snap.Batches,
		Finished:  snap.Finished,
		Counters:  snap.C,
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.mSessionsReject.Inc()
		writeErr(w, http.StatusTooManyRequests, errDraining)
		return
	}
	var cfg SessionConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding session config: %w", err))
		return
	}
	sess, err := s.store.create(cfg)
	if err != nil {
		if errors.Is(err, errTooManySessions) {
			s.mSessionsReject.Inc()
			writeErr(w, http.StatusTooManyRequests, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mSessionsOpened.Inc()
	writeJSON(w, http.StatusCreated, viewOf(sess))
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.store.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(sess))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sess, err := s.store.remove(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mSessionsClosed.Inc()
	if err := sess.finish(); err != nil {
		// The stream ended mid-event: surface it like an offline decode of
		// a truncated trace would, alongside the counters reached.
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":   err.Error(),
			"session": viewOf(sess),
		})
		return
	}
	writeJSON(w, http.StatusOK, viewOf(sess))
}

// batchResponse answers one POST …/events.
type batchResponse struct {
	Session  string `json:"session"`
	Events   int64  `json:"events"`
	Total    int64  `json:"total_events"`
	Batches  int64  `json:"batches"`
	Counters any    `json:"counters"`
}

func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess, err := s.store.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.mBatchTooLarge.Inc()
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch exceeds %d bytes; split the stream into smaller posts", tooBig.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading batch: %w", err))
		return
	}
	res, err := sess.ingest(s.store, body)
	switch {
	case errors.Is(err, errBudget):
		s.mDroppedBudget.Inc()
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, errFinished):
		s.mBatchConflict.Inc()
		writeErr(w, http.StatusConflict, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mBatches.Inc()
	kind := sess.Cfg.Predictor
	s.mKindLoads[kind].Add(res.DLoads)
	s.mKindPredicted[kind].Add(res.DPredicted)
	s.mKindCorrect[kind].Add(res.DCorrect)
	for _, d := range res.DSel {
		if v, ok := s.mCompSelected[d.Name]; ok {
			v.Add(d.Selected)
		}
		if v, ok := s.mCompCorrect[d.Name]; ok {
			v.Add(d.Correct)
		}
	}
	writeJSON(w, http.StatusOK, batchResponse{
		Session:  sess.ID,
		Events:   res.Events,
		Total:    res.Total,
		Batches:  res.Batches,
		Counters: res.C,
	})
}

// --- jobs ---

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.mJobsReject.Inc()
		writeErr(w, http.StatusTooManyRequests, errDraining)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding job request: %w", err))
		return
	}
	j, err := s.jobs.submit(req)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			s.mJobsReject.Inc()
			writeErr(w, http.StatusTooManyRequests, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mJobsSubmitted.Inc()
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobTable(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	table, done := j.renderedTable()
	if !done {
		writeErr(w, http.StatusConflict, fmt.Errorf("job is %s; the table exists once it is %s", j.status().State, JobDone))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, table)
}
