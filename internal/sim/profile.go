package sim

import (
	"context"
	"fmt"

	"capred/internal/metrics"
	"capred/internal/predictor"
	"capred/internal/report"
	"capred/internal/trace"
	"capred/internal/workload"
)

// ProfileAssistResult compares the plain hybrid against a profile-assisted
// hybrid (§6 future work: software-assisted load classification), at the
// baseline table size and at a reduced one (the paper expects profile
// feedback to "help reducing predictor size").
type ProfileAssistResult struct {
	FailureSet
	Names    []string
	Counters []metrics.Mean
	// Classified is the total number of profiled static loads, and
	// Irregular how many of them the profile filters out.
	Classified int
	Irregular  int
}

// ProfileAssist runs the profile-feedback experiment: each trace is
// profiled on a training prefix, then simulated with and without the
// resulting classification, at 4K- and 512-entry link tables.
func ProfileAssist(cfg Config) ProfileAssistResult {
	specs := workload.Traces()

	// profileCell is the leaf's serialisable per-trace result (exported
	// fields so it survives the dist wire).
	type profileCell struct {
		C          [4]metrics.Counters
		Classified int
		Irregular  int
	}
	type cell struct {
		profileCell
		done bool
	}
	cells := make([]cell, len(specs))

	g := newGrid(cfg)
	g.addPass("profile-assist", specs, func(i int) error {
		spec := specs[i]
		// The training pass and all four variants share one leaf scope:
		// the deadline covers the whole job, and a retry restarts it with
		// a fresh cell so no partial tallies survive.
		res, err := distLeaf(cfg, spec, func(ctx context.Context, open func() trace.Source) (profileCell, error) {
			var res profileCell

			// Training pass: profile the first half of the budget.
			prof := predictor.NewProfiler()
			src := trace.NewLimit(open(), cfg.EventsPerTrace/2)
			err := forEachBlock(ctx, src, func(b *trace.Block) {
				for i, kb := range b.KindTaken {
					if trace.Kind(kb&^trace.KindTakenBit) == trace.KindLoad {
						prof.Observe(b.IP[i], b.Addr[i])
					}
				}
			})
			if err != nil {
				return res, fmt.Errorf("profiling pass: %w", err)
			}
			profile := prof.Profile()
			res.Classified = profile.Len()
			res.Irregular = profile.CountByClass()[predictor.ClassIrregular]

			small := func() predictor.HybridConfig {
				hc := predictor.DefaultHybridConfig()
				hc.CAP.LTEntries = 512
				hc.CAP.PFTableEntries = 2048
				return hc
			}
			variants := []Factory{
				hybridFactory,
				func() predictor.Predictor {
					return predictor.NewProfiled(hybridFactory(), profile)
				},
				func() predictor.Predictor { return predictor.NewHybrid(small()) },
				func() predictor.Predictor {
					return predictor.NewProfiled(predictor.NewHybrid(small()), profile)
				},
			}
			for v, f := range variants {
				c, err := RunTraceContext(ctx, open(), cfg.factoryFor(spec, f)(), 0)
				if err != nil {
					return res, fmt.Errorf("variant %d: %w", v, err)
				}
				res.C[v] = c
			}
			return res, nil
		})
		if err != nil {
			return err
		}
		cells[i] = cell{profileCell: res, done: true}
		return nil
	})

	r := ProfileAssistResult{
		Names: []string{
			"hybrid 4K LT",
			"hybrid 4K LT + profile",
			"hybrid 512 LT",
			"hybrid 512 LT + profile",
		},
	}
	r.absorb(g.size(), g.run())
	r.Counters = make([]metrics.Mean, 4)
	for _, cell := range cells {
		if !cell.done {
			continue
		}
		for v := range cell.C {
			r.Counters[v].Add(cell.C[v])
		}
		r.Classified += cell.Classified
		r.Irregular += cell.Irregular
	}
	return r
}

// Table renders the profile-assist comparison.
func (r ProfileAssistResult) Table() *report.Table {
	t := report.New("§6 future work: profile-assisted hybrid (irregular loads filtered)",
		"configuration", "prediction rate", "accuracy", "mispred of loads")
	for i, n := range r.Names {
		c := r.Counters[i]
		t.Add(n, naPct(c, c.PredRate()), naPct2(c, c.Accuracy()), naPct2(c, c.MispredOfLoads()))
	}
	t.SetFooter(r.Footer())
	return t
}
