package sim

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"capred/internal/predictor"
	"capred/internal/trace"
	"capred/internal/workload"
)

// failSourceFor returns a WrapSource that truncates the named trace with
// a decode error after n events and leaves every other trace untouched.
func failSourceFor(name string, n int64) func(string, trace.Source) trace.Source {
	return func(traceName string, src trace.Source) trace.Source {
		if traceName == name {
			return trace.NewFailAfter(src, n, nil)
		}
		return src
	}
}

// panicFactoryFor returns a WrapFactory whose factory panics for the
// named trace only.
func panicFactoryFor(name string) func(string, Factory) Factory {
	return func(traceName string, f Factory) Factory {
		if traceName != name {
			return f
		}
		return func() predictor.Predictor { panic("injected factory panic") }
	}
}

func TestRunTraceSurfacesDecodeError(t *testing.T) {
	spec, _ := workload.ByName("INT_go")
	src := trace.NewFailAfter(trace.NewLimit(spec.Open(), 50_000), 10_000, nil)
	c, err := RunTrace(src, hybridFactory(), 0)
	if !errors.Is(err, trace.ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if c.Loads == 0 {
		t.Error("partial counters should cover the events before the fault")
	}
}

func TestRunTraceCleanEOFHasNoError(t *testing.T) {
	spec, _ := workload.ByName("INT_go")
	// The fault budget outlives the stream, so EOF arrives cleanly and no
	// error may be invented.
	src := trace.NewFailAfter(trace.NewLimit(spec.Open(), 5_000), 1_000_000, nil)
	if _, err := RunTrace(src, hybridFactory(), 0); err != nil {
		t.Fatalf("clean EOF reported an error: %v", err)
	}
}

func TestRunTraceContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec, _ := workload.ByName("INT_go")
	_, err := RunTraceContext(ctx, trace.NewLimit(spec.Open(), 50_000), hybridFactory(), 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunTraceHangingSourceUnblocksOnCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	spec, _ := workload.ByName("INT_go")
	src := trace.NewHang(ctx, trace.NewLimit(spec.Open(), 50_000), 1000)
	done := make(chan error, 1)
	go func() {
		_, err := RunTraceContext(ctx, src, hybridFactory(), 0)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hung source was not unblocked by cancellation")
	}
}

func TestRunAllIsolatesDecodeError(t *testing.T) {
	cfg := Config{
		EventsPerTrace: 10_000,
		WrapSource:     failSourceFor("INT_go", 2_000),
	}
	runs, fails := runAll(cfg, workload.Traces(), "test", hybridFactory, 0)
	if len(fails) != 1 {
		t.Fatalf("failures = %v, want exactly the injected one", fails)
	}
	if fails[0].Trace != "INT_go" || fails[0].Suite != "INT" || fails[0].Stage != "test" {
		t.Errorf("failure misattributed: %+v", fails[0])
	}
	if !errors.Is(fails[0].Err, trace.ErrInjected) {
		t.Errorf("failure error = %v, want wrapped ErrInjected", fails[0].Err)
	}
	var okRuns int
	for _, r := range runs {
		if r.ok {
			okRuns++
			if r.Spec.Name == "INT_go" {
				t.Error("failed trace marked ok")
			}
		}
	}
	if okRuns != len(runs)-1 {
		t.Errorf("%d of %d runs ok, want all but one", okRuns, len(runs))
	}
}

func TestPanickingFactoryFailsOnlyItsTrace(t *testing.T) {
	cfg := Config{
		EventsPerTrace: 5_000,
		WrapFactory:    panicFactoryFor("CAD_cat"),
	}
	runs, fails := runAll(cfg, workload.Traces(), "test", hybridFactory, 0)
	if len(fails) != 1 || fails[0].Trace != "CAD_cat" {
		t.Fatalf("failures = %v, want exactly CAD_cat", fails)
	}
	var pe *PanicError
	if !errors.As(fails[0].Err, &pe) {
		t.Fatalf("failure error = %T, want *PanicError", fails[0].Err)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic lost its stack")
	}
	if !strings.Contains(pe.Error(), "injected factory panic") {
		t.Errorf("panic value lost: %v", pe)
	}
	for _, r := range runs {
		if r.Spec.Name != "CAD_cat" && !r.ok {
			t.Errorf("sibling trace %s damaged by the panic", r.Spec.Name)
		}
	}
}

func TestTransientSourceErrorIsRetried(t *testing.T) {
	// The first open of INT_go fails transiently; the retry succeeds.
	var mu sync.Mutex
	failed := false
	wrap := func(traceName string, src trace.Source) trace.Source {
		if traceName != "INT_go" {
			return src
		}
		mu.Lock()
		defer mu.Unlock()
		if !failed {
			failed = true
			return trace.NewFailAfter(src, 100, trace.Transient(trace.ErrInjected))
		}
		return src
	}

	cfg := Config{EventsPerTrace: 5_000, WrapSource: wrap, SourceRetries: 1}
	_, fails := runAll(cfg, workload.Traces(), "test", hybridFactory, 0)
	if len(fails) != 0 {
		t.Fatalf("transient failure not retried: %v", fails)
	}

	// Without a retry budget the same fault is fatal for the trace.
	mu.Lock()
	failed = false
	mu.Unlock()
	cfg.SourceRetries = 0
	_, fails = runAll(cfg, workload.Traces(), "test", hybridFactory, 0)
	if len(fails) != 1 || fails[0].Trace != "INT_go" {
		t.Fatalf("failures = %v, want INT_go without retries", fails)
	}
}

func TestTraceTimeoutFailsSlowTraceOnly(t *testing.T) {
	// Hang one trace's source; the per-trace deadline must fail it while
	// its siblings run to completion.
	ctx := context.Background()
	cfg := Config{
		EventsPerTrace: 5_000,
		TraceTimeout:   50 * time.Millisecond,
	}
	// This WrapSource-based hang cannot see the run's own deadline context
	// (WrapSourceCtx exists for that), so it blocks on one the test
	// controls, released well after the per-trace deadline has expired.
	hctx, hcancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer hcancel()
	cfg.WrapSource = func(traceName string, src trace.Source) trace.Source {
		if traceName == "JAV_aud" {
			return trace.NewHang(hctx, src, 100)
		}
		return src
	}
	runs, fails := runAll(cfg, workload.Traces(), "test", hybridFactory, 0)
	if len(fails) != 1 || fails[0].Trace != "JAV_aud" {
		t.Fatalf("failures = %v, want exactly JAV_aud", fails)
	}
	for _, r := range runs {
		if r.Spec.Name != "JAV_aud" && !r.ok {
			t.Errorf("sibling %s failed alongside the slow trace", r.Spec.Name)
		}
	}
}

func TestCorruptedSourceCompletesButDegrades(t *testing.T) {
	spec, _ := workload.ByName("INT_xli")
	clean, err := RunTrace(trace.NewLimit(spec.Open(), 50_000), hybridFactory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	corrupted, err := RunTrace(
		trace.NewCorrupt(trace.NewLimit(spec.Open(), 50_000), 5, nil),
		hybridFactory(), 0)
	if err != nil {
		t.Fatalf("corruption is silent damage, not a stream error: %v", err)
	}
	if corrupted.Loads != clean.Loads {
		t.Errorf("corruption changed the load count: %d vs %d", corrupted.Loads, clean.Loads)
	}
	if !(corrupted.Accuracy() < clean.Accuracy()) {
		t.Errorf("scrambled addresses should cost accuracy: clean=%.4f corrupt=%.4f",
			clean.Accuracy(), corrupted.Accuracy())
	}
}

func TestFig5PartialResults(t *testing.T) {
	cfg := Config{
		EventsPerTrace: 10_000,
		WrapSource:     failSourceFor("INT_go", 2_000),
	}
	r := Fig5(cfg)
	// Fig5 runs three passes (stride, cap, hybrid); the bad trace fails
	// in each of them.
	if len(r.Failed()) != 3 {
		t.Fatalf("failures = %v, want one per pass", r.Failed())
	}
	for _, f := range r.Failed() {
		if f.Trace != "INT_go" {
			t.Errorf("unexpected failing trace %q", f.Trace)
		}
	}
	if r.AvgH.Pooled.Loads == 0 {
		t.Error("survivors should still aggregate")
	}
	out := r.Table().String()
	if !strings.Contains(out, "WARNING: 3 of") {
		t.Errorf("table footer missing the failure warning:\n%s", out)
	}
	if !strings.Contains(out, "INT_go") {
		t.Errorf("table footer must name the failing trace:\n%s", out)
	}
}

func TestFig10PartialResultsWithPanic(t *testing.T) {
	cfg := Config{
		EventsPerTrace: 8_000,
		WrapFactory:    panicFactoryFor("MM_aud"),
	}
	r := Fig10(cfg)
	if len(r.Failed()) == 0 {
		t.Fatal("panicking factory reported no failures")
	}
	for _, f := range r.Failed() {
		if f.Trace != "MM_aud" {
			t.Errorf("unexpected failing trace %q", f.Trace)
		}
		var pe *PanicError
		if !errors.As(f.Err, &pe) {
			t.Errorf("failure %v did not preserve the panic", f)
		}
	}
	out := r.Table().String()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "MM_aud") {
		t.Errorf("footer missing failure report:\n%s", out)
	}
	for _, c := range r.Counters {
		if c.Pooled.Loads == 0 {
			t.Error("surviving traces should still produce every variant row")
		}
	}
}

func TestCancelledExperimentReportsEveryTrace(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Fig5(Config{EventsPerTrace: 5_000, Ctx: ctx})
	if got, want := len(r.Failed()), 3*len(workload.Traces()); got != want {
		t.Fatalf("failures = %d, want %d (every trace, every pass)", got, want)
	}
	for _, f := range r.Failed() {
		if !errors.Is(f.Err, context.Canceled) {
			t.Errorf("failure %v should be the cancellation", f)
		}
	}
	// The table must still render — all rows n/a, footer explaining why.
	out := r.Table().String()
	if !strings.Contains(out, "WARNING") {
		t.Errorf("cancelled run must keep its failure footer:\n%s", out)
	}
}

func TestFooterAccounting(t *testing.T) {
	var s FailureSet
	if s.Footer() != "" {
		t.Error("clean set must render no footer")
	}
	s.absorb(45, []TraceFailure{{Trace: "INT_go", Suite: "INT", Stage: "stride", Err: trace.ErrInjected}})
	s.absorb(45, nil)
	f := s.Footer()
	if !strings.Contains(f, "1 of 90") {
		t.Errorf("footer should count runs across passes: %q", f)
	}
	if !strings.Contains(f, "INT_go [stride]") {
		t.Errorf("footer should attribute the failure: %q", f)
	}
}
