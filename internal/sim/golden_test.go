package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"capred/internal/trace"
)

var (
	updateGolden = flag.Bool("update", false,
		"rewrite the golden files under testdata/ from this run's serial output")
	goldenWorkers = flag.Int("golden-workers", 4,
		"worker count for the parallel leg of the equivalence test")
)

// goldenEvents keeps the golden sweep fast while still exercising every
// table renderer and every driver pass; determinism does not depend on
// scale, so a small budget pins the same properties the full sweep has.
const goldenEvents = 20_000

// goldenConfig is the configuration both legs of the equivalence suite
// run: only the worker count differs, which is exactly the claim the
// goldens enforce.
func goldenConfig(workers int) Config {
	return Config{
		EventsPerTrace: goldenEvents,
		Workers:        workers,
		ReplayCache:    trace.NewReplayCache(0),
	}
}

// renderAll runs every registered experiment at the golden budget and
// returns name → rendered table (with the failure footer, which must be
// empty on a clean run).
func renderAll(workers int) (map[string]string, error) {
	cfg := goldenConfig(workers)
	out := make(map[string]string)
	for _, e := range Experiments() {
		r := e.Run(cfg)
		if fails := r.Failed(); len(fails) != 0 {
			return nil, fmt.Errorf("%s (workers=%d): unexpected failures: %v", e.Name, workers, fails)
		}
		out[e.Name] = r.Table().String()
	}
	return out, nil
}

// serialTables memoises the serial reference render: both golden
// comparison and the serial leg of the equivalence test need it, and one
// full sweep is expensive enough to share.
var serialTables struct {
	once sync.Once
	out  map[string]string
	err  error
}

func serialRender(t *testing.T) map[string]string {
	t.Helper()
	serialTables.once.Do(func() {
		serialTables.out, serialTables.err = renderAll(1)
	})
	if serialTables.err != nil {
		t.Fatal(serialTables.err)
	}
	return serialTables.out
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden")
}

// TestGoldenTables renders every experiment table serially and diffs it
// against the checked-in golden. Regenerate with:
//
//	go test ./internal/sim -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	tables := serialRender(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			got := tables[e.Name]
			path := goldenPath(e.Name)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("table drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// TestSerialParallelEquivalence is the determinism contract: the
// parallel scheduler must produce byte-identical tables to the serial
// reference path at any worker count. Run under -race in CI so the
// equivalence proof doubles as a data-race check on the shard isolation.
func TestSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep, twice")
	}
	workers := *goldenWorkers
	if workers <= 1 {
		// workers=1 in the CI matrix pins the serial leg against the
		// goldens only; the comparison below would be trivially true.
		workers = 2
	}
	serial := serialRender(t)
	parallel, err := renderAll(workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		if serial[e.Name] != parallel[e.Name] {
			t.Errorf("%s: workers=%d table differs from serial\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				e.Name, workers, serial[e.Name], workers, parallel[e.Name])
		}
	}
}
