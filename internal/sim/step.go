package sim

import (
	"capred/internal/metrics"
	"capred/internal/pipeline"
	"capred/internal/predictor"
	"capred/internal/trace"
)

// Stepper drives one predictor over an externally-supplied event stream
// with exactly RunTrace's semantics: history-register maintenance,
// prediction, resolution and counter recording per event. RunTrace
// itself steps through here, so a consumer that feeds a Stepper the same
// events — the serving path, which receives them over the network —
// accumulates bit-identical counters by construction rather than by
// parallel-implementation discipline.
type Stepper struct {
	sess *predictor.Session
	gap  *pipeline.Gap // non-nil when operating under a prediction gap
	C    metrics.Counters
}

// NewStepper wraps p for step-wise driving. gapDepth 0 is the paper's
// immediate-update mode; a positive depth defers resolutions by that
// many dynamic loads (the predictor must then be built in speculative
// mode, as for RunTrace).
func NewStepper(p predictor.Predictor, gapDepth int) *Stepper {
	s := &Stepper{sess: predictor.NewSession(p)}
	if gapDepth > 0 {
		s.gap = pipeline.New(p, gapDepth)
	}
	return s
}

// Predictor returns the wrapped predictor instance. The serving layer
// and the tournament ablation use it to pull predictor-specific
// statistics (e.g. per-component selection counts) after — or, under
// the session lock, during — a run.
func (s *Stepper) Predictor() predictor.Predictor { return s.sess.Predictor() }

// Step processes one event.
func (s *Stepper) Step(ev trace.Event) {
	switch ev.Kind {
	case trace.KindBranch:
		s.sess.Branch(ev.Taken)
	case trace.KindCall:
		s.sess.Call(ev.IP)
	case trace.KindLoad:
		var pr predictor.Prediction
		if s.gap == nil {
			pr = s.sess.Load(ev.IP, ev.Offset, ev.Addr)
		} else {
			pr = s.gap.Process(s.sess.Ref(ev.IP, ev.Offset), ev.Addr)
		}
		s.C.Record(pr, ev.Addr)
	}
}

// StepBatch processes a batch of events in order.
func (s *Stepper) StepBatch(evs []trace.Event) {
	for _, ev := range evs {
		s.Step(ev)
	}
}

// StepBlock processes a struct-of-arrays block of events in order,
// reading only the columns each kind carries (the Block column
// contract). The gap-mode dispatch is hoisted out of the per-event
// path; each loop is the exact per-event sequence Step performs, so
// block and per-event driving stay bit-identical.
func (s *Stepper) StepBlock(b *trace.Block) {
	kt := b.KindTaken
	if s.gap == nil {
		for i, kb := range kt {
			switch trace.Kind(kb &^ trace.KindTakenBit) {
			case trace.KindBranch:
				s.sess.Branch(kb&trace.KindTakenBit != 0)
			case trace.KindCall:
				s.sess.Call(b.IP[i])
			case trace.KindLoad:
				addr := b.Addr[i]
				pr := s.sess.Load(b.IP[i], b.Offset[i], addr)
				s.C.Record(pr, addr)
			}
		}
		return
	}
	for i, kb := range kt {
		switch trace.Kind(kb &^ trace.KindTakenBit) {
		case trace.KindBranch:
			s.sess.Branch(kb&trace.KindTakenBit != 0)
		case trace.KindCall:
			s.sess.Call(b.IP[i])
		case trace.KindLoad:
			addr := b.Addr[i]
			pr := s.gap.Process(s.sess.Ref(b.IP[i], b.Offset[i]), addr)
			s.C.Record(pr, addr)
		}
	}
}

// Finish resolves the predictions still in flight inside the prediction
// gap; it is a no-op in immediate mode. Call it once, at clean end of
// stream, as RunTrace does.
func (s *Stepper) Finish() {
	if s.gap != nil {
		s.gap.Drain()
	}
}
