package sim

import (
	"testing"

	"capred/internal/predictor"
	"capred/internal/trace"
	"capred/internal/workload"
)

// stepperVsRunTrace pins the serving-path contract: stepping the same
// events through a Stepper yields counters identical to RunTrace over
// the same source, for every predictor family and both update modes.
func TestStepperMatchesRunTrace(t *testing.T) {
	spec, ok := workload.ByName("INT_xli")
	if !ok {
		t.Fatal("INT_xli missing from roster")
	}
	const events = 50_000
	factories := map[string]func(speculative bool) predictor.Predictor{
		"last": func(bool) predictor.Predictor {
			return predictor.NewLast(predictor.DefaultLastConfig())
		},
		"stride": func(s bool) predictor.Predictor {
			cfg := predictor.DefaultStrideConfig()
			cfg.Speculative = s
			return predictor.NewStride(cfg)
		},
		"cap": func(s bool) predictor.Predictor {
			cfg := predictor.DefaultCAPConfig()
			cfg.Speculative = s
			return predictor.NewCAP(cfg)
		},
		"hybrid": func(s bool) predictor.Predictor {
			cfg := predictor.DefaultHybridConfig()
			cfg.Speculative = s
			return predictor.NewHybrid(cfg)
		},
	}
	for name, mk := range factories {
		for _, gap := range []int{0, 8} {
			if name == "last" && gap > 0 {
				continue // the last-address baseline has no speculative mode
			}
			spec := spec
			speculative := gap > 0
			want, err := RunTrace(trace.NewLimit(spec.Open(), events), mk(speculative), gap)
			if err != nil {
				t.Fatalf("%s gap %d: RunTrace: %v", name, gap, err)
			}

			st := NewStepper(mk(speculative), gap)
			src := trace.AsBatch(trace.NewLimit(spec.Open(), events))
			var buf [333]trace.Event // deliberately off-size batches
			for {
				n, ok := src.NextBatch(buf[:])
				st.StepBatch(buf[:n])
				if !ok {
					break
				}
			}
			if err := src.Err(); err != nil {
				t.Fatalf("%s gap %d: source: %v", name, gap, err)
			}
			st.Finish()
			if st.C != want {
				t.Errorf("%s gap %d: stepper counters diverge:\n  stepper  %+v\n  runtrace %+v",
					name, gap, st.C, want)
			}
		}
	}
}

// TestStepperEventByEvent feeds events one at a time — the worst-case
// network batch size — and must still agree exactly.
func TestStepperEventByEvent(t *testing.T) {
	spec, ok := workload.ByName("TPC_t23")
	if !ok {
		t.Fatal("TPC_t23 missing from roster")
	}
	const events = 20_000
	mk := func() predictor.Predictor { return predictor.NewHybrid(predictor.DefaultHybridConfig()) }
	want, err := RunTrace(trace.NewLimit(spec.Open(), events), mk(), 0)
	if err != nil {
		t.Fatalf("RunTrace: %v", err)
	}
	st := NewStepper(mk(), 0)
	src := trace.NewLimit(spec.Open(), events)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		st.Step(ev)
	}
	st.Finish()
	if st.C != want {
		t.Fatalf("event-by-event stepping diverges from RunTrace")
	}
}
