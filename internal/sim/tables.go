package sim

import (
	"fmt"

	"capred/internal/metrics"
	"capred/internal/predictor"
	"capred/internal/report"
)

// --- §4.3: link-table update policy ---

// UpdatePolicyResult holds hybrid counters per LT update policy.
type UpdatePolicyResult struct {
	FailureSet
	Policies []predictor.UpdatePolicy
	Counters []metrics.Mean
}

// UpdatePolicy reproduces the §4.3 study: the three LT update policies.
// The paper finds "update always" slightly better on almost all traces.
func UpdatePolicy(cfg Config) UpdatePolicyResult {
	r := UpdatePolicyResult{Policies: []predictor.UpdatePolicy{
		predictor.UpdateAlways,
		predictor.UpdateUnlessStrideCorrect,
		predictor.UpdateUnlessStrideSelected,
	}}
	g := newGrid(cfg)
	passes := make([]*suitePass, len(r.Policies))
	for i, pol := range r.Policies {
		pol := pol
		f := func() predictor.Predictor {
			hc := predictor.DefaultHybridConfig()
			hc.UpdatePolicy = pol
			return predictor.NewHybrid(hc)
		}
		passes[i] = g.addSuitePass(pol.String(), f, 0)
	}
	r.absorb(g.size(), g.run())
	for _, p := range passes {
		_, avg := p.merge()
		r.Counters = append(r.Counters, avg)
	}
	return r
}

// Table renders the update-policy comparison.
func (r UpdatePolicyResult) Table() *report.Table {
	t := report.New("§4.3: LT update policy (hybrid, average over all traces)",
		"policy", "prediction rate", "accuracy")
	for i, pol := range r.Policies {
		c := r.Counters[i]
		t.Add(pol.String(), naPct(c, c.PredRate()), naPct2(c, c.Accuracy()))
	}
	t.SetFooter(r.Footer())
	return t
}

// --- §4.2 text: LT size sweep ---

// LTSizeResult holds hybrid counters per LT entry count.
type LTSizeResult struct {
	FailureSet
	Sizes    []int
	Counters []metrics.Mean
}

// LTSize reproduces the §4.2 sensitivity claim: the hybrid prediction rate
// steadily increases from 1K-entry to 8K-entry link tables.
func LTSize(cfg Config) LTSizeResult {
	r := LTSizeResult{Sizes: []int{1024, 2048, 4096, 8192}}
	g := newGrid(cfg)
	passes := make([]*suitePass, len(r.Sizes))
	for i, n := range r.Sizes {
		n := n
		f := func() predictor.Predictor {
			hc := predictor.DefaultHybridConfig()
			hc.CAP.LTEntries = n
			return predictor.NewHybrid(hc)
		}
		passes[i] = g.addSuitePass(fmt.Sprintf("LT %d", n), f, 0)
	}
	r.absorb(g.size(), g.run())
	for _, p := range passes {
		_, avg := p.merge()
		r.Counters = append(r.Counters, avg)
	}
	return r
}

// Table renders the LT size sweep.
func (r LTSizeResult) Table() *report.Table {
	t := report.New("§4.2: hybrid prediction rate vs LT entries",
		"LT entries", "prediction rate", "accuracy")
	for i, n := range r.Sizes {
		c := r.Counters[i]
		t.Add(fmt.Sprintf("%dK", n/1024), naPct(c, c.PredRate()), naPct2(c, c.Accuracy()))
	}
	t.SetFooter(r.Footer())
	return t
}

// --- §1 text: baseline predictor comparison ---

// BaselinesResult compares all predictor families on the same traces.
type BaselinesResult struct {
	FailureSet
	Names    []string
	Counters []metrics.Mean
}

// Baselines reproduces the §1 ladder: last-address predictors handle ≈40%
// of loads, stride adds ≈13%, CAP and the hybrid sit above.
func Baselines(cfg Config) BaselinesResult {
	r := BaselinesResult{}
	g := newGrid(cfg)
	var passes []*suitePass
	add := func(name string, f Factory) {
		r.Names = append(r.Names, name)
		passes = append(passes, g.addSuitePass(name, f, 0))
	}
	add("last", func() predictor.Predictor { return predictor.NewLast(predictor.DefaultLastConfig()) })
	add("stride", func() predictor.Predictor { return predictor.NewStride(predictor.BasicStrideConfig()) })
	add("stride+", strideFactory)
	add("cap", capFactory)
	add("hybrid", hybridFactory)
	r.absorb(g.size(), g.run())
	for _, p := range passes {
		_, avg := p.merge()
		r.Counters = append(r.Counters, avg)
	}
	return r
}

// Table renders the baseline ladder.
func (r BaselinesResult) Table() *report.Table {
	t := report.New("§1: predictor family ladder (average over all traces)",
		"predictor", "prediction rate", "correct of loads", "accuracy")
	for i, n := range r.Names {
		c := r.Counters[i]
		t.Add(n, naPct(c, c.PredRate()), naPct(c, c.CorrectSpecRate()), naPct2(c, c.Accuracy()))
	}
	t.SetFooter(r.Footer())
	return t
}

// --- §3.6: control-based address predictors ---

// ControlBasedResult compares control-based predictors to CAP.
type ControlBasedResult struct {
	FailureSet
	Names    []string
	Counters []metrics.Mean
}

// ControlBased reproduces the §3.6 negative result: g-share-style and
// call-path address predictors are no substitute for CAP.
func ControlBased(cfg Config) ControlBasedResult {
	r := ControlBasedResult{}
	g := newGrid(cfg)
	var passes []*suitePass
	add := func(name string, f Factory) {
		r.Names = append(r.Names, name)
		passes = append(passes, g.addSuitePass(name, f, 0))
	}
	add("gshare-addr", func() predictor.Predictor {
		return predictor.NewControl(predictor.DefaultControlConfig(false))
	})
	add("path-addr", func() predictor.Predictor {
		return predictor.NewControl(predictor.DefaultControlConfig(true))
	})
	add("cap", capFactory)
	r.absorb(g.size(), g.run())
	for _, p := range passes {
		_, avg := p.merge()
		r.Counters = append(r.Counters, avg)
	}
	return r
}

// Table renders the control-based comparison.
func (r ControlBasedResult) Table() *report.Table {
	t := report.New("§3.6: control-based address predictors vs CAP",
		"predictor", "prediction rate", "correct of loads", "accuracy")
	for i, n := range r.Names {
		c := r.Counters[i]
		t.Add(n, naPct(c, c.PredRate()), naPct(c, c.CorrectSpecRate()), naPct2(c, c.Accuracy()))
	}
	t.SetFooter(r.Footer())
	return t
}

// --- Ablations beyond the paper's figures (DESIGN.md §6) ---

// AblationsResult holds named configuration deltas of the CAP/hybrid.
type AblationsResult struct {
	FailureSet
	Names    []string
	Counters []metrics.Mean
}

// Ablations measures the design choices DESIGN.md calls out: PF bits
// on/off/external, static vs dynamic selector, and shift(m) variations.
func Ablations(cfg Config) AblationsResult {
	r := AblationsResult{}
	g := newGrid(cfg)
	var passes []*suitePass
	add := func(name string, f Factory) {
		r.Names = append(r.Names, name)
		passes = append(passes, g.addSuitePass(name, f, 0))
	}
	add("hybrid (baseline)", hybridFactory)
	add("hybrid, no PF bits", func() predictor.Predictor {
		hc := predictor.DefaultHybridConfig()
		hc.CAP.PFBits = 0
		hc.CAP.PFTableEntries = 0
		return predictor.NewHybrid(hc)
	})
	add("hybrid, in-LT PF bits", func() predictor.Predictor {
		hc := predictor.DefaultHybridConfig()
		hc.CAP.PFTableEntries = 0
		return predictor.NewHybrid(hc)
	})
	add("hybrid, static selector=stride", func() predictor.Predictor {
		hc := predictor.DefaultHybridConfig()
		hc.StaticSelector = predictor.CompStride
		return predictor.NewHybrid(hc)
	})
	add("hybrid, static selector=cap", func() predictor.Predictor {
		hc := predictor.DefaultHybridConfig()
		hc.StaticSelector = predictor.CompCAP
		return predictor.NewHybrid(hc)
	})
	add("cap, history len 2", func() predictor.Predictor {
		cc := predictor.DefaultCAPConfig()
		cc.HistoryLen = 2
		return predictor.NewCAP(cc)
	})
	add("cap, 2-way LT", func() predictor.Predictor {
		cc := predictor.DefaultCAPConfig()
		cc.LTWays = 2
		return predictor.NewCAP(cc)
	})
	r.absorb(g.size(), g.run())
	for _, p := range passes {
		_, avg := p.merge()
		r.Counters = append(r.Counters, avg)
	}
	return r
}

// Table renders the ablation rows.
func (r AblationsResult) Table() *report.Table {
	t := report.New("Ablations (average over all traces)",
		"configuration", "prediction rate", "accuracy", "mispred of loads")
	for i, n := range r.Names {
		c := r.Counters[i]
		t.Add(n, naPct(c, c.PredRate()), naPct2(c, c.Accuracy()), naPct2(c, c.MispredOfLoads()))
	}
	t.SetFooter(r.Footer())
	return t
}
