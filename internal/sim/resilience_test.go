package sim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"capred/internal/trace"
)

// The PR 1 resilience knobs (TraceTimeout, SourceRetries, ctx polling)
// originally applied only on the runAll path; the custom drain loops in
// classes.go, profile.go, value.go and wrongpath.go ignored them. These
// tests drive the same fault matrix through every one of those drivers.

// customLoopDrivers enumerates the drivers with hand-rolled drain loops
// as (name, run) pairs returning the failure set.
func customLoopDrivers() []struct {
	name string
	run  func(Config) FailureSet
} {
	return []struct {
		name string
		run  func(Config) FailureSet
	}{
		{"ClassCoverage", func(cfg Config) FailureSet { return ClassCoverage(cfg).FailureSet }},
		{"ProfileAssist", func(cfg Config) FailureSet { return ProfileAssist(cfg).FailureSet }},
		{"AddressVsValue", func(cfg Config) FailureSet { return AddressVsValue(cfg).FailureSet }},
		{"WrongPath", func(cfg Config) FailureSet { return WrongPath(cfg).FailureSet }},
	}
}

// TestTraceTimeoutBoundsCustomLoops injects a hanging source into one
// trace of each custom-loop driver. The hang blocks on the per-trace
// deadline context itself (via WrapSourceCtx), so the driver must fail
// that trace with DeadlineExceeded within TraceTimeout instead of
// wedging the whole sweep; every sibling must survive.
func TestTraceTimeoutBoundsCustomLoops(t *testing.T) {
	const victim = "INT_go"
	for _, d := range customLoopDrivers() {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				EventsPerTrace: 5_000,
				TraceTimeout:   100 * time.Millisecond,
				WrapSourceCtx: func(ctx context.Context, traceName string, src trace.Source) trace.Source {
					if traceName == victim {
						return trace.NewHang(ctx, src, 100)
					}
					return src
				},
			}
			start := time.Now()
			fails := d.run(cfg)
			if len(fails.Failed()) == 0 {
				t.Fatalf("%s ignored the hanging source", d.name)
			}
			for _, f := range fails.Failed() {
				if f.Trace != victim {
					t.Errorf("sibling %s failed alongside the hung trace: %v", f.Trace, f.Err)
				}
				if !errors.Is(f.Err, context.DeadlineExceeded) {
					t.Errorf("failure should carry the deadline: %v", f.Err)
				}
			}
			// The hang must cost roughly one TraceTimeout, not wedge the
			// driver; the generous bound keeps slow CI out of the picture.
			if e := time.Since(start); e > 30*time.Second {
				t.Errorf("driver took %v with a 100ms trace deadline", e)
			}
		})
	}
}

// TestTransientErrorRetriedInCustomLoops fails the first open of one
// trace with a transient error in each custom-loop driver; with one
// retry the sweep must come back clean, and with none the trace must
// fail.
func TestTransientErrorRetriedInCustomLoops(t *testing.T) {
	const victim = "CAD_cat"
	for _, d := range customLoopDrivers() {
		d := d
		t.Run(d.name, func(t *testing.T) {
			oneShot := func() func(string, trace.Source) trace.Source {
				var mu sync.Mutex
				fired := false
				return func(traceName string, src trace.Source) trace.Source {
					if traceName != victim {
						return src
					}
					mu.Lock()
					defer mu.Unlock()
					if fired {
						return src
					}
					fired = true
					return trace.NewFailAfter(src, 50, trace.Transient(trace.ErrInjected))
				}
			}

			cfg := Config{EventsPerTrace: 5_000, SourceRetries: 1, WrapSource: oneShot()}
			if fails := d.run(cfg); len(fails.Failed()) != 0 {
				t.Fatalf("transient fault not retried: %v", fails.Failed())
			}

			cfg = Config{EventsPerTrace: 5_000, SourceRetries: 0, WrapSource: oneShot()}
			fails := d.run(cfg)
			if len(fails.Failed()) == 0 {
				t.Fatal("without retries the transient fault must surface")
			}
			for _, f := range fails.Failed() {
				if f.Trace != victim {
					t.Errorf("failure misattributed to %s: %v", f.Trace, f.Err)
				}
				if !errors.Is(f.Err, trace.ErrInjected) {
					t.Errorf("failure should carry the injected error: %v", f.Err)
				}
			}
		})
	}
}
