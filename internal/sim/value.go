package sim

import (
	"fmt"

	"capred/internal/predictor"
	"capred/internal/report"
	"capred/internal/trace"
	"capred/internal/valuepred"
	"capred/internal/workload"
)

// valueCounters mirrors the metrics the figure tables use, for value
// predictors.
type valueCounters struct {
	Loads       int64
	Speculated  int64
	SpecCorrect int64
}

func (c valueCounters) predRate() float64 {
	if c.Loads == 0 {
		return 0
	}
	return float64(c.Speculated) / float64(c.Loads)
}

func (c valueCounters) correctRate() float64 {
	if c.Loads == 0 {
		return 0
	}
	return float64(c.SpecCorrect) / float64(c.Loads)
}

func (c valueCounters) accuracy() float64 {
	if c.Speculated == 0 {
		return 0
	}
	return float64(c.SpecCorrect) / float64(c.Speculated)
}

// AddressVsValueResult compares address predictability with value
// predictability over the same dynamic loads — the §1 claim that value
// prediction's "lower predictability makes this option less attractive".
type AddressVsValueResult struct {
	FailureSet
	Names    []string
	Rates    []float64 // speculative accesses / loads
	Corrects []float64 // correct speculations / loads
	Accs     []float64
}

// AddressVsValue measures the last/stride/context/hybrid value predictors
// ([Lipa96a], [Saze97], [Wang97]) against the paper's hybrid address
// predictor on identical load streams.
func AddressVsValue(cfg Config) AddressVsValueResult {
	specs := workload.Traces()

	type row struct {
		addr addrTally
		vals [4]valueCounters
		done bool
	}
	rows := make([]row, len(specs))

	errs := parallelTry(cfg, len(specs), func(i int) error {
		spec := specs[i]
		vcfg := valuepred.DefaultConfig()
		vpreds := [4]valuepred.Predictor{
			valuepred.NewLast(vcfg),
			valuepred.NewStride(vcfg),
			valuepred.NewContext(vcfg),
			valuepred.NewHybrid(vcfg),
		}
		apred := cfg.factoryFor(spec, hybridFactory)()

		var ghr predictor.GHR
		var path predictor.PathHist
		src := cfg.open(spec)
		for {
			ev, ok := src.Next()
			if !ok {
				break
			}
			switch ev.Kind {
			case trace.KindBranch:
				ghr.Update(ev.Taken)
			case trace.KindCall:
				path.Push(ev.IP)
			case trace.KindLoad:
				ref := predictor.LoadRef{
					IP: ev.IP, Offset: ev.Offset,
					GHR: ghr.Value(), Path: path.Value(),
				}
				ap := apred.Predict(ref)
				rows[i].addr.loads++
				if ap.Speculate {
					rows[i].addr.spec++
					if ap.Addr == ev.Addr {
						rows[i].addr.correct++
					}
				}
				apred.Resolve(ref, ap, ev.Addr)

				for v, vp := range vpreds {
					p := vp.Predict(ev.IP)
					rows[i].vals[v].Loads++
					if p.Speculate {
						rows[i].vals[v].Speculated++
						if p.Val == ev.Val {
							rows[i].vals[v].SpecCorrect++
						}
					}
					vp.Resolve(ev.IP, p, ev.Val)
				}
			}
		}
		if err := src.Err(); err != nil {
			return fmt.Errorf("trace source: %w", err)
		}
		rows[i].done = true
		return nil
	})

	var addr addrTally
	var vals [4]valueCounters
	for _, r := range rows {
		if !r.done {
			continue
		}
		addr.loads += r.addr.loads
		addr.spec += r.addr.spec
		addr.correct += r.addr.correct
		for v := range vals {
			vals[v].Loads += r.vals[v].Loads
			vals[v].Speculated += r.vals[v].Speculated
			vals[v].SpecCorrect += r.vals[v].SpecCorrect
		}
	}

	out := AddressVsValueResult{}
	out.absorb(len(specs), failuresOf(specs, "addr-vs-value", errs))
	push := func(name string, rate, correct, acc float64) {
		out.Names = append(out.Names, name)
		out.Rates = append(out.Rates, rate)
		out.Corrects = append(out.Corrects, correct)
		out.Accs = append(out.Accs, acc)
	}
	push("hybrid address", addr.rate(), addr.correctRate(), addr.accuracy())
	names := []string{"last-value", "stride-value", "context-value", "hybrid-value"}
	for v, n := range names {
		push(n, vals[v].predRate(), vals[v].correctRate(), vals[v].accuracy())
	}
	return out
}

// addrTally is a minimal address-side tally for this experiment.
type addrTally struct {
	loads, spec, correct int64
}

func (m addrTally) rate() float64 {
	if m.loads == 0 {
		return 0
	}
	return float64(m.spec) / float64(m.loads)
}

func (m addrTally) correctRate() float64 {
	if m.loads == 0 {
		return 0
	}
	return float64(m.correct) / float64(m.loads)
}

func (m addrTally) accuracy() float64 {
	if m.spec == 0 {
		return 0
	}
	return float64(m.correct) / float64(m.spec)
}

// Table renders the comparison.
func (r AddressVsValueResult) Table() *report.Table {
	t := report.New("§1: address vs value predictability (same loads, matched budgets)",
		"predictor", "spec rate", "correct of loads", "accuracy")
	for i, n := range r.Names {
		t.Add(n, report.Pct(r.Rates[i]), report.Pct(r.Corrects[i]), report.Pct2(r.Accs[i]))
	}
	t.SetFooter(r.Footer())
	return t
}
