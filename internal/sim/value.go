package sim

import (
	"context"

	"capred/internal/predictor"
	"capred/internal/report"
	"capred/internal/trace"
	"capred/internal/valuepred"
	"capred/internal/workload"
)

// valueCounters mirrors the metrics the figure tables use, for value
// predictors.
type valueCounters struct {
	Loads       int64
	Speculated  int64
	SpecCorrect int64
}

func (c valueCounters) predRate() float64 {
	if c.Loads == 0 {
		return 0
	}
	return float64(c.Speculated) / float64(c.Loads)
}

func (c valueCounters) correctRate() float64 {
	if c.Loads == 0 {
		return 0
	}
	return float64(c.SpecCorrect) / float64(c.Loads)
}

func (c valueCounters) accuracy() float64 {
	if c.Speculated == 0 {
		return 0
	}
	return float64(c.SpecCorrect) / float64(c.Speculated)
}

// AddressVsValueResult compares address predictability with value
// predictability over the same dynamic loads — the §1 claim that value
// prediction's "lower predictability makes this option less attractive".
type AddressVsValueResult struct {
	FailureSet
	Names    []string
	Rates    []float64 // speculative accesses / loads
	Corrects []float64 // correct speculations / loads
	Accs     []float64
}

// AddressVsValue measures the last/stride/context/hybrid value predictors
// ([Lipa96a], [Saze97], [Wang97]) against the paper's hybrid address
// predictor on identical load streams.
func AddressVsValue(cfg Config) AddressVsValueResult {
	specs := workload.Traces()

	// valueRow is the leaf's serialisable per-trace result (exported
	// fields so it survives the dist wire).
	type valueRow struct {
		Addr addrTally
		Vals [4]valueCounters
	}
	type row struct {
		valueRow
		done bool
	}
	rows := make([]row, len(specs))

	g := newGrid(cfg)
	g.addPass("addr-vs-value", specs, func(i int) error {
		spec := specs[i]
		// The whole per-trace measurement runs in one leaf scope and
		// accumulates into a local row, so a retry restarts from fresh
		// tallies and rows[i] only ever holds a complete attempt.
		vr, err := distLeaf(cfg, spec, func(ctx context.Context, open func() trace.Source) (valueRow, error) {
			var r valueRow
			vcfg := valuepred.DefaultConfig()
			vpreds := [4]valuepred.Predictor{
				valuepred.NewLast(vcfg),
				valuepred.NewStride(vcfg),
				valuepred.NewContext(vcfg),
				valuepred.NewHybrid(vcfg),
			}
			apred := cfg.factoryFor(spec, hybridFactory)()

			var ghr predictor.GHR
			var path predictor.PathHist
			err := forEachBlock(ctx, open(), func(b *trace.Block) {
				for i, kb := range b.KindTaken {
					switch trace.Kind(kb &^ trace.KindTakenBit) {
					case trace.KindBranch:
						ghr.Update(kb&trace.KindTakenBit != 0)
					case trace.KindCall:
						path.Push(b.IP[i])
					case trace.KindLoad:
						ip, addr, val := b.IP[i], b.Addr[i], b.Val[i]
						ref := predictor.LoadRef{
							IP: ip, Offset: b.Offset[i],
							GHR: ghr.Value(), Path: path.Value(),
						}
						ap := apred.Predict(ref)
						r.Addr.Loads++
						if ap.Speculate {
							r.Addr.Spec++
							if ap.Addr == addr {
								r.Addr.Correct++
							}
						}
						apred.Resolve(ref, ap, addr)

						for v, vp := range vpreds {
							p := vp.Predict(ip)
							r.Vals[v].Loads++
							if p.Speculate {
								r.Vals[v].Speculated++
								if p.Val == val {
									r.Vals[v].SpecCorrect++
								}
							}
							vp.Resolve(ip, p, val)
						}
					}
				}
			})
			return r, err
		})
		if err != nil {
			return err
		}
		rows[i] = row{valueRow: vr, done: true}
		return nil
	})
	fails := g.run()

	// Aggregate with equal weight per trace, like the figure tables'
	// "Average" row: each surviving trace contributes one sample per
	// rate, so a longer trace cannot dominate the comparison.
	var addrRate, addrCorrect, addrAcc rateMean
	var valRate, valCorrect, valAcc [4]rateMean
	for _, r := range rows {
		if !r.done {
			continue
		}
		addrRate.add(r.Addr.Spec, r.Addr.Loads)
		addrCorrect.add(r.Addr.Correct, r.Addr.Loads)
		addrAcc.add(r.Addr.Correct, r.Addr.Spec)
		for v := range valRate {
			valRate[v].add(r.Vals[v].Speculated, r.Vals[v].Loads)
			valCorrect[v].add(r.Vals[v].SpecCorrect, r.Vals[v].Loads)
			valAcc[v].add(r.Vals[v].SpecCorrect, r.Vals[v].Speculated)
		}
	}

	out := AddressVsValueResult{}
	out.absorb(g.size(), fails)
	push := func(name string, rate, correct, acc float64) {
		out.Names = append(out.Names, name)
		out.Rates = append(out.Rates, rate)
		out.Corrects = append(out.Corrects, correct)
		out.Accs = append(out.Accs, acc)
	}
	push("hybrid address", addrRate.mean(), addrCorrect.mean(), addrAcc.mean())
	names := []string{"last-value", "stride-value", "context-value", "hybrid-value"}
	for v, n := range names {
		push(n, valRate[v].mean(), valCorrect[v].mean(), valAcc[v].mean())
	}
	return out
}

// rateMean accumulates the equal-weight mean of per-trace rates; a trace
// whose denominator is zero contributes no sample.
type rateMean struct {
	sum float64
	n   int
}

func (m *rateMean) add(num, den int64) {
	if den > 0 {
		m.sum += float64(num) / float64(den)
		m.n++
	}
}

func (m rateMean) mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// addrTally is a minimal address-side tally for this experiment
// (exported fields so it survives the dist wire).
type addrTally struct {
	Loads, Spec, Correct int64
}

func (m addrTally) rate() float64 {
	if m.Loads == 0 {
		return 0
	}
	return float64(m.Spec) / float64(m.Loads)
}

func (m addrTally) correctRate() float64 {
	if m.Loads == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.Loads)
}

func (m addrTally) accuracy() float64 {
	if m.Spec == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.Spec)
}

// Table renders the comparison.
func (r AddressVsValueResult) Table() *report.Table {
	t := report.New("§1: address vs value predictability (same loads, matched budgets)",
		"predictor", "spec rate", "correct of loads", "accuracy")
	for i, n := range r.Names {
		t.Add(n, report.Pct(r.Rates[i]), report.Pct(r.Corrects[i]), report.Pct2(r.Accs[i]))
	}
	t.SetFooter(r.Footer())
	return t
}
