package sim

import (
	"reflect"
	"testing"

	"capred/internal/metrics"
	"capred/internal/trace"
	"capred/internal/workload"
)

// cachedCfg returns cfg with a replay cache of the given byte budget
// attached (0 = unlimited).
func cachedCfg(cfg Config, budget int64) Config {
	cfg.ReplayCache = trace.NewReplayCache(budget)
	return cfg
}

// TestCachedRunsMatchStreaming pins the cache's core guarantee: replaying
// materialised streams produces bit-identical counters to regenerating
// them, across drivers with very different drain loops.
func TestCachedRunsMatchStreaming(t *testing.T) {
	base := Config{EventsPerTrace: 20_000}

	t.Run("Baselines", func(t *testing.T) {
		cfg := cachedCfg(base, 0)
		a := Baselines(base)
		b := Baselines(cfg)
		if len(a.Failed()) != 0 || len(b.Failed()) != 0 {
			t.Fatalf("unexpected failures: %v / %v", a.Failed(), b.Failed())
		}
		for i := range a.Counters {
			if a.Counters[i] != b.Counters[i] {
				t.Fatalf("%s differs cached vs streaming:\n%+v\n%+v",
					a.Names[i], a.Counters[i], b.Counters[i])
			}
		}
		st := cfg.ReplayCache.Stats()
		if st.Hits == 0 || st.Entries != len(workload.Traces()) {
			t.Errorf("cache not exercised: %+v", st)
		}
	})

	t.Run("ClassCoverage", func(t *testing.T) {
		cfg := cachedCfg(base, 0)
		a := ClassCoverage(base)
		b := ClassCoverage(cfg)
		if !reflect.DeepEqual(a.ClassShare, b.ClassShare) {
			t.Fatalf("class shares differ:\n%v\n%v", a.ClassShare, b.ClassShare)
		}
		if !reflect.DeepEqual(a.Coverage, b.Coverage) {
			t.Fatalf("coverage differs:\n%v\n%v", a.Coverage, b.Coverage)
		}
	})

	t.Run("WrongPath", func(t *testing.T) {
		cfg := cachedCfg(base, 0)
		a := WrongPath(base)
		b := WrongPath(cfg)
		for m := range a.Counters {
			if a.Counters[m] != b.Counters[m] {
				t.Fatalf("mode %s differs cached vs streaming:\n%+v\n%+v",
					a.Modes[m], a.Counters[m], b.Counters[m])
			}
		}
	})
}

// TestCacheBudgetFallbackKeepsResultsIdentical proves that a cache too
// small to hold any stream silently degrades to live regeneration with
// unchanged results.
func TestCacheBudgetFallbackKeepsResultsIdentical(t *testing.T) {
	base := Config{EventsPerTrace: 15_000}
	cfg := cachedCfg(base, 1024) // far below any 15k-event stream
	a := Baselines(base)
	b := Baselines(cfg)
	for i := range a.Counters {
		if a.Counters[i] != b.Counters[i] {
			t.Fatalf("%s differs under budget fallback:\n%+v\n%+v",
				a.Names[i], a.Counters[i], b.Counters[i])
		}
	}
	st := cfg.ReplayCache.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("over-budget streams retained: %+v", st)
	}
	if st.Rejected == 0 || st.Misses == 0 {
		t.Errorf("fallback not recorded: %+v", st)
	}
}

// TestCachedParallelReplay replays the same cached traces from many
// concurrent trace runs (Workers drives goroutines); under -race this
// pins that shared cursors are race-free.
func TestCachedParallelReplay(t *testing.T) {
	cfg := cachedCfg(Config{EventsPerTrace: 10_000, Workers: 8}, 0)
	// Two passes: the first materialises, the second replays concurrently.
	for pass := 0; pass < 2; pass++ {
		runs, fails := runAll(cfg, workload.Traces(), "replay", hybridFactory, 0)
		if len(fails) != 0 {
			t.Fatalf("pass %d failures: %v", pass, fails)
		}
		for _, r := range runs {
			if r.C.Loads == 0 {
				t.Fatalf("pass %d: trace %s saw no loads", pass, r.Spec.Name)
			}
		}
	}
	if st := cfg.ReplayCache.Stats(); st.Hits == 0 {
		t.Errorf("replays not served from cache: %+v", st)
	}
}

// TestAverageIsEqualWeight pins the averaging fix: a trace contributing
// 10× the loads of its siblings moves "Average" no more than they do.
func TestAverageIsEqualWeight(t *testing.T) {
	spec := func(name, suite string) workload.TraceSpec {
		return workload.TraceSpec{Name: name, Suite: suite}
	}
	counters := func(loads, spec int64) metrics.Counters {
		return metrics.Counters{Loads: loads, Predicted: spec, Correct: spec, Speculated: spec, SpecCorrect: spec}
	}
	runs := []traceRun{
		{Spec: spec("a", "S1"), C: counters(1000, 800), ok: true},   // rate 0.8
		{Spec: spec("b", "S1"), C: counters(1000, 400), ok: true},   // rate 0.4
		{Spec: spec("c", "S2"), C: counters(10000, 2000), ok: true}, // 10× loads, rate 0.2
	}
	_, avg := bySuite(runs)
	want := (0.8 + 0.4 + 0.2) / 3
	if got := avg.PredRate(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Average pred rate = %v, want equal-weight %v", got, want)
	}
	// The load-weighted pool would sit far below the equal-weight mean
	// (dominated by the long, low-rate trace); it stays available for
	// debugging.
	pooled := avg.Pooled.PredRate()
	if pooled >= want {
		t.Fatalf("pooled rate %v should sit below the equal-weight mean %v here", pooled, want)
	}
	// Swapping which trace is long must not change the equal-weight mean.
	runs[0].C, runs[2].C = counters(10000, 8000), counters(1000, 200)
	_, avg2 := bySuite(runs)
	if got := avg2.PredRate(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Average moved with trace length: %v, want %v", got, want)
	}
}
