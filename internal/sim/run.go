// Package sim wires workloads, predictors and metrics into the paper's
// experiments: one driver function per evaluation figure/table (Fig. 5
// through Fig. 12, the LT update-policy and LT size studies, the §1
// baselines and the §3.6 control-based comparison).
package sim

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"capred/internal/metrics"
	"capred/internal/pipeline"
	"capred/internal/predictor"
	"capred/internal/trace"
	"capred/internal/workload"
)

// Config scales the experiments. The paper uses 30M instructions per
// trace; rates converge much earlier, so the default keeps experiments
// interactive while a higher budget sharpens the numbers.
type Config struct {
	// EventsPerTrace bounds each trace (instructions, all kinds).
	EventsPerTrace int64
	// Parallelism bounds concurrent trace simulations; 0 means NumCPU.
	Parallelism int

	// Ctx, when non-nil, cancels in-flight trace simulations: traces
	// that have not completed fail with the context's error and the
	// drivers report partial results. nil means Background.
	Ctx context.Context
	// TraceTimeout, when positive, bounds each individual trace run; a
	// trace exceeding it fails with context.DeadlineExceeded without
	// affecting its siblings.
	TraceTimeout time.Duration
	// SourceRetries bounds re-runs of a trace whose source failed with a
	// transient error (trace.IsTransient). 0 disables retries.
	SourceRetries int

	// WrapSource, when non-nil, wraps every trace source as it is
	// opened. The fault-injection harness and capsim's -inject flag use
	// it to substitute hostile streams for specific traces.
	WrapSource func(traceName string, src trace.Source) trace.Source
	// WrapFactory, like WrapSource, substitutes the predictor factory
	// for specific traces (e.g. one that panics, to test isolation).
	WrapFactory func(traceName string, f Factory) Factory
}

// DefaultConfig returns the standard experiment scale.
func DefaultConfig() Config {
	return Config{EventsPerTrace: 400_000}
}

func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// Factory builds a fresh predictor instance for one trace run.
type Factory func() predictor.Predictor

// RunTrace drives one predictor over one event stream, maintaining the
// global branch-history and call-path registers, and returns the
// prediction counters. gapDepth 0 is the paper's immediate-update mode
// (§4); a positive depth defers resolutions by that many dynamic loads
// (§5) — the predictor must then be built in speculative mode.
//
// The returned error is non-nil when the stream ended on a source error
// (src.Err) rather than clean EOF; the counters accumulated up to that
// point are returned alongside it so callers can decide whether partial
// numbers are usable.
func RunTrace(src trace.Source, p predictor.Predictor, gapDepth int) (metrics.Counters, error) {
	return RunTraceContext(context.Background(), src, p, gapDepth)
}

// RunTraceContext is RunTrace with cancellation: the run stops with
// ctx.Err() at the next event boundary once ctx is done. A source whose
// Next blocks (e.g. a stalled feed) must itself honour ctx — see
// trace.NewHang — since a blocked Next cannot be interrupted here.
func RunTraceContext(ctx context.Context, src trace.Source, p predictor.Predictor, gapDepth int) (metrics.Counters, error) {
	var (
		c    metrics.Counters
		ghr  predictor.GHR
		path predictor.PathHist
		gap  = pipeline.New(p, gapDepth)
		n    int64
	)
	// Polling ctx every event would dominate the hot loop; a power-of-two
	// stride keeps cancellation latency in the microseconds.
	const ctxCheckMask = 1<<12 - 1
	for {
		if n&ctxCheckMask == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return c, err
			}
		}
		n++
		ev, ok := src.Next()
		if !ok {
			break
		}
		switch ev.Kind {
		case trace.KindBranch:
			ghr.Update(ev.Taken)
		case trace.KindCall:
			path.Push(ev.IP)
		case trace.KindLoad:
			ref := predictor.LoadRef{
				IP:     ev.IP,
				Offset: ev.Offset,
				GHR:    ghr.Value(),
				Path:   path.Value(),
			}
			pr := gap.Process(ref, ev.Addr)
			c.Record(pr, ev.Addr)
		}
	}
	gap.Drain()
	// A decode error must never be mistaken for clean EOF: counters from
	// a truncated stream look plausible but undercount every rate.
	if err := src.Err(); err != nil {
		return c, fmt.Errorf("trace source: %w", err)
	}
	return c, nil
}

// traceRun pairs a trace with its counters.
type traceRun struct {
	Spec workload.TraceSpec
	C    metrics.Counters
	ok   bool
}

// runOne simulates a single trace with per-trace deadline, fault
// wrappers and panic propagation (the caller recovers).
func runOne(cfg Config, spec workload.TraceSpec, f Factory, gapDepth int) (metrics.Counters, error) {
	ctx := cfg.context()
	if cfg.TraceTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.TraceTimeout)
		defer cancel()
	}
	return RunTraceContext(ctx, cfg.open(spec), cfg.factoryFor(spec, f)(), gapDepth)
}

// runAll simulates every trace in specs with a fresh predictor from the
// factory, in parallel, preserving spec order in the result. A failing
// trace — source error, panic anywhere in its predictor or factory,
// cancellation, deadline — is isolated into a TraceFailure; transient
// source errors are retried up to cfg.SourceRetries times.
func runAll(cfg Config, specs []workload.TraceSpec, stage string, f Factory, gapDepth int) ([]traceRun, []TraceFailure) {
	out := make([]traceRun, len(specs))
	errs := parallelTry(cfg, len(specs), func(i int) error {
		spec := specs[i]
		// Record the spec up front so even a panic mid-run leaves the slot
		// attributed to its trace.
		out[i] = traceRun{Spec: spec}
		for attempt := 0; ; attempt++ {
			c, err := runOne(cfg, spec, f, gapDepth)
			if err == nil {
				out[i] = traceRun{Spec: spec, C: c, ok: true}
				return nil
			}
			if attempt >= cfg.SourceRetries || !trace.IsTransient(err) {
				return err
			}
		}
	})
	return out, failuresOf(specs, stage, errs)
}

// bySuite groups trace runs into per-suite merged counters plus the
// overall aggregate ("Average" in the paper's figures). Failed runs are
// skipped, so the aggregates cover exactly the surviving traces.
func bySuite(runs []traceRun) (suites map[string]metrics.Counters, avg metrics.Counters) {
	suites = make(map[string]metrics.Counters)
	for _, r := range runs {
		if !r.ok {
			continue
		}
		c := suites[r.Spec.Suite]
		c.Merge(r.C)
		suites[r.Spec.Suite] = c
		avg.Merge(r.C)
	}
	return suites, avg
}

// runSuites is the common per-figure helper: every trace, one factory.
// The stage label attributes any failures to the pass that hit them.
func runSuites(cfg Config, stage string, f Factory, gapDepth int) (map[string]metrics.Counters, metrics.Counters, []TraceFailure) {
	runs, fails := runAll(cfg, workload.Traces(), stage, f, gapDepth)
	suites, avg := bySuite(runs)
	return suites, avg, fails
}
