// Package sim wires workloads, predictors and metrics into the paper's
// experiments: one driver function per evaluation figure/table (Fig. 5
// through Fig. 12, the LT update-policy and LT size studies, the §1
// baselines and the §3.6 control-based comparison).
package sim

import (
	"context"
	"fmt"
	"time"

	"capred/internal/metrics"
	"capred/internal/predictor"
	"capred/internal/retry"
	"capred/internal/trace"
	"capred/internal/workload"
)

// Config scales the experiments. The paper uses 30M instructions per
// trace; rates converge much earlier, so the default keeps experiments
// interactive while a higher budget sharpens the numbers.
type Config struct {
	// EventsPerTrace bounds each trace (instructions, all kinds).
	EventsPerTrace int64
	// Workers bounds the goroutines the scheduler shards an experiment's
	// (trace × configuration) grid across. 0 (and 1) select the serial
	// reference path: shards run in registration order on the calling
	// goroutine. Every worker count produces bit-identical tables — each
	// shard holds its own predictor instance and replay cursor, writes
	// only its own result slot, and results merge in shard order after
	// the pool drains (see scheduler.go).
	Workers int

	// Ctx, when non-nil, cancels in-flight trace simulations: traces
	// that have not completed fail with the context's error and the
	// drivers report partial results. nil means Background.
	Ctx context.Context
	// TraceTimeout, when positive, bounds each individual trace run; a
	// trace exceeding it fails with context.DeadlineExceeded without
	// affecting its siblings.
	TraceTimeout time.Duration
	// SourceRetries bounds re-runs of a trace whose source failed with a
	// transient error (trace.IsTransient). 0 disables retries.
	SourceRetries int

	// Progress, when non-nil, is invoked by the scheduler as grid shards
	// complete: done counts finished (trace × configuration) cells of the
	// current pass, total the cells the pass registered. Calls may arrive
	// concurrently from worker goroutines; the callback must be fast and
	// thread-safe. The serving layer uses it to report job progress.
	Progress func(done, total int)

	// ReplayCache, when non-nil, materialises each trace's event stream
	// once (in the compact trace encoding) and replays it on later
	// opens, so sweeps that drive the same trace through many predictor
	// configurations stop re-running the workload generator. Streaming
	// and cached runs produce identical counters; the cache only changes
	// where events come from.
	ReplayCache *trace.ReplayCache

	// WrapSource, when non-nil, wraps every trace source as it is
	// opened. The fault-injection harness and capsim's -inject flag use
	// it to substitute hostile streams for specific traces.
	WrapSource func(traceName string, src trace.Source) trace.Source
	// WrapSourceCtx is WrapSource with the per-trace deadline context:
	// it is applied after WrapSource, inside the TraceTimeout scope, so
	// wrappers that must observe cancellation (e.g. trace.NewHang bound
	// to the run's own deadline) can be injected.
	WrapSourceCtx func(ctx context.Context, traceName string, src trace.Source) trace.Source
	// WrapFactory, like WrapSource, substitutes the predictor factory
	// for specific traces (e.g. one that panics, to test isolation).
	WrapFactory func(traceName string, f Factory) Factory

	// dist and broker are the distribution seam (see dist.go), installed
	// by WithDist on a coordinator and RunDistShard on a worker. The
	// broker pointer is shared by every copy of the Config the drivers
	// capture, threading one record/replay state through a whole run.
	dist   DistRunner
	broker *broker
}

// DefaultConfig returns the standard experiment scale.
func DefaultConfig() Config {
	return Config{EventsPerTrace: 400_000}
}

// schedWorkers resolves the configured worker count for the scheduler;
// anything below 2 is the serial path.
func (c Config) schedWorkers() int {
	if c.Workers > 1 {
		return c.Workers
	}
	return 1
}

// Factory builds a fresh predictor instance for one trace run.
type Factory func() predictor.Predictor

// RunTrace drives one predictor over one event stream, maintaining the
// global branch-history and call-path registers, and returns the
// prediction counters. gapDepth 0 is the paper's immediate-update mode
// (§4); a positive depth defers resolutions by that many dynamic loads
// (§5) — the predictor must then be built in speculative mode.
//
// The returned error is non-nil when the stream ended on a source error
// (src.Err) rather than clean EOF; the counters accumulated up to that
// point are returned alongside it so callers can decide whether partial
// numbers are usable.
func RunTrace(src trace.Source, p predictor.Predictor, gapDepth int) (metrics.Counters, error) {
	return RunTraceContext(context.Background(), src, p, gapDepth)
}

// RunTraceContext is RunTrace with cancellation: the run stops with
// ctx.Err() at the next batch boundary once ctx is done. A source whose
// Next blocks (e.g. a stalled feed) must itself honour ctx — see
// trace.NewHang — since a blocked Next cannot be interrupted here.
func RunTraceContext(ctx context.Context, src trace.Source, p predictor.Predictor, gapDepth int) (metrics.Counters, error) {
	// RunTrace and the step-wise serving path (server sessions fed events
	// over the network) share one per-event code path — the Stepper — so
	// their counters agree bit-for-bit by construction.
	st := NewStepper(p, gapDepth)
	err := forEachBlock(ctx, src, st.StepBlock)
	// Drain the prediction gap on every exit, including source error and
	// cancellation: predictions are recorded at predict time, so Finish
	// never changes the counters, but skipping it would leave the
	// in-flight resolutions unapplied to the predictor's tables and break
	// the resolve-all invariant partial-counter consumers rely on.
	st.Finish()
	return st.C, err
}

// forEachBlock drains src in blocks of up to trace.BlockLen events,
// invoking fn on each block and polling ctx between blocks. It returns
// the context's error on cancellation, or the source error (wrapped)
// when the stream ended on one instead of clean EOF. Every drain loop
// in the package goes through here, so cancellation, error propagation
// and block delivery behave identically across drivers.
//
// The block passed to fn follows the Block view contract: it is valid
// only for the duration of the call and must be treated as read-only
// (warm replay cursors alias the cache's resident columns).
func forEachBlock(ctx context.Context, src trace.Source, fn func(*trace.Block)) error {
	bs := trace.AsBlocks(src)
	b := trace.GetBlock()
	defer trace.PutBlock(b)
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n, ok := bs.NextBlock(b, trace.BlockLen)
		if n > 0 {
			fn(b)
		}
		if !ok {
			break
		}
	}
	// A decode error must never be mistaken for clean EOF: counters from
	// a truncated stream look plausible but undercount every rate.
	if err := src.Err(); err != nil {
		return fmt.Errorf("trace source: %w", err)
	}
	return nil
}

// traceRun pairs a trace with its counters.
type traceRun struct {
	Spec workload.TraceSpec
	C    metrics.Counters
	ok   bool
}

// perTrace is the single per-trace run policy: it installs the config's
// per-trace deadline, retries transient source errors (trace.IsTransient)
// up to SourceRetries times, and hands the body a context-aware opener
// that applies the fault wrappers. Every driver pass — the figure sweeps
// and the custom classification/profiling/value/wrong-path loops — runs
// its per-trace work through here, so the resilience knobs apply
// uniformly.
//
// The body may run more than once (on retry) and must therefore reset
// any per-trace state it accumulates at the top of each attempt, only
// publishing results once it returns nil.
func (c Config) perTrace(spec workload.TraceSpec, body func(ctx context.Context, open func() trace.Source) error) error {
	// Zero BaseDelay: a transient source failure is a pure re-run, not a
	// remote call worth backing off from. The dist layer configures the
	// same Policy with backoff for its RPCs.
	pol := retry.Policy{Attempts: c.SourceRetries + 1}
	return pol.Do(c.context(), trace.IsTransient, func(int) error {
		ctx := c.context()
		if c.TraceTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.TraceTimeout)
			defer cancel()
		}
		return body(ctx, func() trace.Source { return c.openCtx(ctx, spec) })
	})
}

// runAll simulates every trace in specs with a fresh predictor from the
// factory, sharded across the config's workers, preserving spec order in
// the result. A failing trace — source error, panic anywhere in its
// predictor or factory, cancellation, deadline — is isolated into a
// TraceFailure; transient source errors are retried up to
// cfg.SourceRetries times.
func runAll(cfg Config, specs []workload.TraceSpec, stage string, f Factory, gapDepth int) ([]traceRun, []TraceFailure) {
	out := make([]traceRun, len(specs))
	g := newGrid(cfg)
	g.addPass(stage, specs, func(i int) error {
		spec := specs[i]
		// Record the spec up front so even a panic mid-run leaves the slot
		// attributed to its trace.
		out[i] = traceRun{Spec: spec}
		c, err := distLeaf(cfg, spec, func(ctx context.Context, open func() trace.Source) (metrics.Counters, error) {
			return RunTraceContext(ctx, open(), cfg.factoryFor(spec, f)(), gapDepth)
		})
		if err != nil {
			return err
		}
		out[i] = traceRun{Spec: spec, C: c, ok: true}
		return nil
	})
	return out, g.run()
}

// bySuite groups trace runs into per-suite merged counters plus the
// overall aggregate ("Average" in the paper's figures). Per-suite rows
// pool counters (every trace in a suite runs the same event budget);
// the aggregate is an equal-weight mean over per-trace rates, as in the
// paper — pooling would let long (or merely surviving, under partial
// failure) traces dominate. Failed runs are skipped, so the aggregates
// cover exactly the surviving traces.
func bySuite(runs []traceRun) (suites map[string]metrics.Counters, avg metrics.Mean) {
	suites = make(map[string]metrics.Counters)
	for _, r := range runs {
		if !r.ok {
			continue
		}
		c := suites[r.Spec.Suite]
		c.Merge(r.C)
		suites[r.Spec.Suite] = c
		avg.Add(r.C)
	}
	return suites, avg
}

// runSuites is the common per-figure helper: every trace, one factory.
// The stage label attributes any failures to the pass that hit them.
func runSuites(cfg Config, stage string, f Factory, gapDepth int) (map[string]metrics.Counters, metrics.Mean, []TraceFailure) {
	runs, fails := runAll(cfg, workload.Traces(), stage, f, gapDepth)
	suites, avg := bySuite(runs)
	return suites, avg, fails
}
