// Package sim wires workloads, predictors and metrics into the paper's
// experiments: one driver function per evaluation figure/table (Fig. 5
// through Fig. 12, the LT update-policy and LT size studies, the §1
// baselines and the §3.6 control-based comparison).
package sim

import (
	"runtime"
	"sync"

	"capred/internal/metrics"
	"capred/internal/pipeline"
	"capred/internal/predictor"
	"capred/internal/trace"
	"capred/internal/workload"
)

// Config scales the experiments. The paper uses 30M instructions per
// trace; rates converge much earlier, so the default keeps experiments
// interactive while a higher budget sharpens the numbers.
type Config struct {
	// EventsPerTrace bounds each trace (instructions, all kinds).
	EventsPerTrace int64
	// Parallelism bounds concurrent trace simulations; 0 means NumCPU.
	Parallelism int
}

// DefaultConfig returns the standard experiment scale.
func DefaultConfig() Config {
	return Config{EventsPerTrace: 400_000}
}

func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// Factory builds a fresh predictor instance for one trace run.
type Factory func() predictor.Predictor

// RunTrace drives one predictor over one event stream, maintaining the
// global branch-history and call-path registers, and returns the
// prediction counters. gapDepth 0 is the paper's immediate-update mode
// (§4); a positive depth defers resolutions by that many dynamic loads
// (§5) — the predictor must then be built in speculative mode.
func RunTrace(src trace.Source, p predictor.Predictor, gapDepth int) metrics.Counters {
	var (
		c    metrics.Counters
		ghr  predictor.GHR
		path predictor.PathHist
		gap  = pipeline.New(p, gapDepth)
	)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		switch ev.Kind {
		case trace.KindBranch:
			ghr.Update(ev.Taken)
		case trace.KindCall:
			path.Push(ev.IP)
		case trace.KindLoad:
			ref := predictor.LoadRef{
				IP:     ev.IP,
				Offset: ev.Offset,
				GHR:    ghr.Value(),
				Path:   path.Value(),
			}
			pr := gap.Process(ref, ev.Addr)
			c.Record(pr, ev.Addr)
		}
	}
	gap.Drain()
	return c
}

// traceRun pairs a trace with its counters.
type traceRun struct {
	Spec workload.TraceSpec
	C    metrics.Counters
}

// runAll simulates every trace in specs with a fresh predictor from the
// factory, in parallel, preserving spec order in the result.
func runAll(cfg Config, specs []workload.TraceSpec, f Factory, gapDepth int) []traceRun {
	out := make([]traceRun, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.workers())
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec workload.TraceSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			src := trace.NewLimit(spec.Open(), cfg.EventsPerTrace)
			out[i] = traceRun{Spec: spec, C: RunTrace(src, f(), gapDepth)}
		}(i, spec)
	}
	wg.Wait()
	return out
}

// bySuite groups trace runs into per-suite merged counters plus the
// overall aggregate ("Average" in the paper's figures).
func bySuite(runs []traceRun) (suites map[string]metrics.Counters, avg metrics.Counters) {
	suites = make(map[string]metrics.Counters)
	for _, r := range runs {
		c := suites[r.Spec.Suite]
		c.Merge(r.C)
		suites[r.Spec.Suite] = c
		avg.Merge(r.C)
	}
	return suites, avg
}

// runSuites is the common per-figure helper: every trace, one factory.
func runSuites(cfg Config, f Factory, gapDepth int) (map[string]metrics.Counters, metrics.Counters) {
	return bySuite(runAll(cfg, workload.Traces(), f, gapDepth))
}
