package sim

import (
	"testing"

	"capred/internal/trace"
)

// The driver benchmarks time whole experiment passes with and without
// the replay cache, at the default 400k-event scale. The Streaming/
// Cached pairs are the headline comparison: a cached pass replays every
// trace from its materialised encoding instead of re-running the
// workload generators. Cached variants warm the cache before the timed
// region, so they measure steady-state sweep cost (the cold
// materialisation pass is measured separately by cmd/benchsweep).

func benchCfg(cache bool) Config {
	cfg := Config{EventsPerTrace: 400_000}
	if cache {
		cfg.ReplayCache = trace.NewReplayCache(0)
	}
	return cfg
}

func BenchmarkBaselinesStreaming(b *testing.B) {
	cfg := benchCfg(false)
	for i := 0; i < b.N; i++ {
		Baselines(cfg)
	}
}

func BenchmarkBaselinesCached(b *testing.B) {
	cfg := benchCfg(true)
	Baselines(cfg) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Baselines(cfg)
	}
}

func BenchmarkFig9Streaming(b *testing.B) {
	cfg := benchCfg(false)
	for i := 0; i < b.N; i++ {
		Fig9(cfg)
	}
}

func BenchmarkFig9Cached(b *testing.B) {
	cfg := benchCfg(true)
	Baselines(cfg) // warm the cache with one cheap pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fig9(cfg)
	}
}

func BenchmarkFig12Streaming(b *testing.B) {
	cfg := benchCfg(false)
	for i := 0; i < b.N; i++ {
		Fig12(cfg)
	}
}

func BenchmarkFig12Cached(b *testing.B) {
	cfg := benchCfg(true)
	Baselines(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fig12(cfg)
	}
}

func BenchmarkPrefetchCached(b *testing.B) {
	cfg := benchCfg(true)
	Baselines(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prefetch(cfg)
	}
}
