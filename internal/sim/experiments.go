package sim

import (
	"context"
	"fmt"

	"capred/internal/cpu"
	"capred/internal/metrics"
	"capred/internal/predictor"
	"capred/internal/report"
	"capred/internal/trace"
	"capred/internal/workload"
)

// Standard factories.

func strideFactory() predictor.Predictor {
	return predictor.NewStride(predictor.DefaultStrideConfig())
}

func capFactory() predictor.Predictor {
	return predictor.NewCAP(predictor.DefaultCAPConfig())
}

func hybridFactory() predictor.Predictor {
	return predictor.NewHybrid(predictor.DefaultHybridConfig())
}

// suiteOrder returns suite names plus the aggregate row label.
func suiteOrder() []string {
	return append(workload.SuiteNames(), "Average")
}

// rowFor selects a table row's rates: per-suite rows are pooled
// counters, the "Average" row is the equal-weight per-trace mean. Both
// satisfy metrics.Rates, so renderers format them identically.
func rowFor(suites map[string]metrics.Counters, avg metrics.Mean, name string) metrics.Rates {
	if name == "Average" {
		return avg
	}
	return suites[name]
}

// naPct / naPct2 render a percentage cell, masking rows whose every
// contributing trace failed ("n/a") so partial tables cannot present
// missing data as measured zeros.
func naPct(c metrics.Rates, v float64) string {
	if c.Empty() {
		return "n/a"
	}
	return report.Pct(v)
}

func naPct2(c metrics.Rates, v float64) string {
	if c.Empty() {
		return "n/a"
	}
	return report.Pct2(v)
}

// safeDiv returns num/den, or 0 for an empty denominator (e.g. a suite
// whose every trace failed), keeping partial tables free of NaN/Inf.
func safeDiv(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// runTimed drives the timing model over one trace with the experiment
// config's budget, context, per-trace deadline, transient retry and
// fault wrappers applied. f may be nil (the no-prediction baseline).
func runTimed(cfg Config, spec workload.TraceSpec, mcfg cpu.Config, f Factory, gapDepth int) (cpu.Result, error) {
	out, err := distLeaf(cfg, spec, func(ctx context.Context, open func() trace.Source) (cpu.Result, error) {
		m := mcfg
		m.Ctx = ctx
		var p predictor.Predictor
		if f != nil {
			p = cfg.factoryFor(spec, f)()
		}
		res := cpu.Run(open(), p, gapDepth, m)
		// The error travels separately so the partial Result stays
		// JSON-encodable; it is reattached below on both code paths.
		err := res.Err
		res.Err = nil
		return res, err
	})
	out.Err = err
	return out, err
}

// --- Figure 5: prediction performance of the different predictors ---

// Fig5Result holds per-suite counters for the three predictors.
type Fig5Result struct {
	FailureSet
	Stride map[string]metrics.Counters
	CAP    map[string]metrics.Counters
	Hybrid map[string]metrics.Counters
	AvgS   metrics.Mean
	AvgC   metrics.Mean
	AvgH   metrics.Mean
}

// Fig5 reproduces Figure 5: prediction rate and accuracy of the enhanced
// stride, stand-alone CAP, and hybrid predictors across the eight suites.
// All three passes shard across one worker pool.
func Fig5(cfg Config) Fig5Result {
	var r Fig5Result
	g := newGrid(cfg)
	ps := g.addSuitePass("stride", strideFactory, 0)
	pc := g.addSuitePass("cap", capFactory, 0)
	ph := g.addSuitePass("hybrid", hybridFactory, 0)
	r.absorb(g.size(), g.run())
	r.Stride, r.AvgS = ps.merge()
	r.CAP, r.AvgC = pc.merge()
	r.Hybrid, r.AvgH = ph.merge()
	return r
}

// Table renders the Figure 5 rows.
func (r Fig5Result) Table() *report.Table {
	t := report.New("Figure 5: prediction performance of the different predictors",
		"suite", "stride rate", "cap rate", "hybrid rate",
		"stride acc", "cap acc", "hybrid acc")
	for _, s := range suiteOrder() {
		cs := rowFor(r.Stride, r.AvgS, s)
		cc := rowFor(r.CAP, r.AvgC, s)
		ch := rowFor(r.Hybrid, r.AvgH, s)
		t.Add(s,
			naPct(cs, cs.PredRate()), naPct(cc, cc.PredRate()), naPct(ch, ch.PredRate()),
			naPct2(cs, cs.Accuracy()), naPct2(cc, cc.Accuracy()), naPct2(ch, ch.Accuracy()))
	}
	t.SetFooter(r.Footer())
	return t
}

// --- Figure 6: hybrid performance vs LB size and associativity ---

// LBGeometry names one load-buffer configuration.
type LBGeometry struct {
	Entries int
	Ways    int
}

func (g LBGeometry) String() string {
	return fmt.Sprintf("%dK,%dway", g.Entries/1024, g.Ways)
}

// Fig6Geometries are the paper's five LB configurations.
func Fig6Geometries() []LBGeometry {
	return []LBGeometry{{2048, 2}, {4096, 1}, {4096, 2}, {4096, 4}, {8192, 2}}
}

// Fig6Result maps geometry → per-suite counters.
type Fig6Result struct {
	FailureSet
	Geometries []LBGeometry
	Suites     []map[string]metrics.Counters
	Avgs       []metrics.Mean
}

// Fig6 reproduces Figure 6: hybrid prediction rate as a function of the
// number of LB entries and associativity.
func Fig6(cfg Config) Fig6Result {
	r := Fig6Result{Geometries: Fig6Geometries()}
	g := newGrid(cfg)
	passes := make([]*suitePass, len(r.Geometries))
	for i, geom := range r.Geometries {
		geom := geom
		f := func() predictor.Predictor {
			hc := predictor.DefaultHybridConfig()
			hc.CAP.LBEntries = geom.Entries
			hc.CAP.LBWays = geom.Ways
			return predictor.NewHybrid(hc)
		}
		passes[i] = g.addSuitePass("LB "+geom.String(), f, 0)
	}
	r.absorb(g.size(), g.run())
	for _, p := range passes {
		suites, avg := p.merge()
		r.Suites = append(r.Suites, suites)
		r.Avgs = append(r.Avgs, avg)
	}
	return r
}

// Table renders the Figure 6 rows (prediction rate per geometry, accuracy
// for the baseline 4K 2-way geometry, as in the paper).
func (r Fig6Result) Table() *report.Table {
	headers := []string{"suite"}
	for _, g := range r.Geometries {
		headers = append(headers, g.String())
	}
	headers = append(headers, "acc(4K,2way)")
	t := report.New("Figure 6: hybrid prediction rate vs LB entries/associativity", headers...)
	baseIdx := 2 // 4K 2-way
	for _, s := range suiteOrder() {
		row := []string{s}
		for i := range r.Geometries {
			c := rowFor(r.Suites[i], r.Avgs[i], s)
			row = append(row, naPct(c, c.PredRate()))
		}
		c := rowFor(r.Suites[baseIdx], r.Avgs[baseIdx], s)
		row = append(row, naPct2(c, c.Accuracy()))
		t.Add(row...)
	}
	t.SetFooter(r.Footer())
	return t
}

// --- Figure 7: relative performance (speedup) per trace ---

// Fig7Row is one trace's timing outcome.
type Fig7Row struct {
	Trace         string
	Suite         string
	BaseCycles    int64
	StrideCycles  int64
	HybridCycles  int64
	StrideSpeedup float64
	HybridSpeedup float64
}

// Fig7Result holds per-trace speedups plus the averages. Traces that
// failed are absent from Rows and listed in Failures instead.
type Fig7Result struct {
	FailureSet
	Rows      []Fig7Row
	AvgStride float64
	AvgHybrid float64
}

// Fig7 reproduces Figure 7: per-trace speedup of the enhanced stride and
// hybrid predictors over no address prediction, on the OoO timing model.
func Fig7(cfg Config) Fig7Result {
	specs := workload.Traces()
	rows := make([]Fig7Row, len(specs))
	done := make([]bool, len(specs))
	g := newGrid(cfg)
	g.addPass("timing", specs, func(i int) error {
		spec := specs[i]
		mcfg := cpu.DefaultConfig()
		base, err := runTimed(cfg, spec, mcfg, nil, 0)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		st, err := runTimed(cfg, spec, mcfg, strideFactory, 0)
		if err != nil {
			return fmt.Errorf("stride: %w", err)
		}
		hy, err := runTimed(cfg, spec, mcfg, hybridFactory, 0)
		if err != nil {
			return fmt.Errorf("hybrid: %w", err)
		}
		rows[i] = Fig7Row{
			Trace: spec.Name, Suite: spec.Suite,
			BaseCycles: base.Cycles, StrideCycles: st.Cycles, HybridCycles: hy.Cycles,
			StrideSpeedup: safeDiv(float64(base.Cycles), float64(st.Cycles)),
			HybridSpeedup: safeDiv(float64(base.Cycles), float64(hy.Cycles)),
		}
		done[i] = true
		return nil
	})
	var r Fig7Result
	r.absorb(g.size(), g.run())
	var ss, hs float64
	for i, row := range rows {
		if !done[i] {
			continue
		}
		r.Rows = append(r.Rows, row)
		ss += row.StrideSpeedup
		hs += row.HybridSpeedup
	}
	r.AvgStride = safeDiv(ss, float64(len(r.Rows)))
	r.AvgHybrid = safeDiv(hs, float64(len(r.Rows)))
	return r
}

// Table renders the Figure 7 rows.
func (r Fig7Result) Table() *report.Table {
	t := report.New("Figure 7: speedup over no address prediction, per trace",
		"trace", "stride", "hybrid")
	for _, row := range r.Rows {
		t.Add(row.Trace, report.Speedup(row.StrideSpeedup), report.Speedup(row.HybridSpeedup))
	}
	t.Add("Average", report.Speedup(r.AvgStride), report.Speedup(r.AvgHybrid))
	t.SetFooter(r.Footer())
	return t
}

// --- Figure 8: selector performance ---

// Fig8Result holds per-suite hybrid counters (the selector statistics).
type Fig8Result struct {
	FailureSet
	Suites map[string]metrics.Counters
	Avg    metrics.Mean
}

// Fig8 reproduces Figure 8: the distribution of selector-counter states
// over dual-confident loads and the correct-selection rate.
func Fig8(cfg Config) Fig8Result {
	suites, avg, fails := runSuites(cfg, "hybrid", hybridFactory, 0)
	r := Fig8Result{Suites: suites, Avg: avg}
	r.absorb(len(workload.Traces()), fails)
	return r
}

// Table renders the Figure 8 rows.
func (r Fig8Result) Table() *report.Table {
	t := report.New("Figure 8: selector performance",
		"suite", "strong-stride", "weak-stride", "weak-cap", "strong-cap", "correct-sel")
	for _, s := range suiteOrder() {
		c := rowFor(r.Suites, r.Avg, s)
		t.Add(s,
			naPct(c, c.SelStateShare(predictor.SelStrongStride)),
			naPct(c, c.SelStateShare(predictor.SelWeakStride)),
			naPct(c, c.SelStateShare(predictor.SelWeakCAP)),
			naPct(c, c.SelStateShare(predictor.SelStrongCAP)),
			naPct2(c, c.CorrectSelectionRate()))
	}
	t.SetFooter(r.Footer())
	return t
}

// --- Figure 9: history length and global correlation ---

// Fig9Lengths are the history lengths the paper sweeps.
func Fig9Lengths() []int { return []int{1, 2, 3, 4, 6, 12} }

// Fig9Result holds correct-speculative rates per history length, with and
// without global correlation.
type Fig9Result struct {
	FailureSet
	Lengths []int
	With    []float64
	Without []float64
}

// Fig9 reproduces Figure 9: correct predictions as a function of the
// history length, isolating global correlation. No confidence mechanism
// is used (every prediction is a speculative access).
func Fig9(cfg Config) Fig9Result {
	r := Fig9Result{Lengths: Fig9Lengths()}
	g := newGrid(cfg)
	type pass struct {
		sp *suitePass
		gc bool
	}
	var passes []pass
	for _, gc := range []bool{true, false} {
		for _, hl := range r.Lengths {
			hl := hl
			gc := gc
			f := func() predictor.Predictor {
				cc := predictor.DefaultCAPConfig()
				cc.HistoryLen = hl
				cc.GlobalCorrelation = gc
				cc.ConfThreshold = 0 // no confidence mechanism
				cc.TagBits = 0
				cc.CF = predictor.NoCF()
				return predictor.NewCAP(cc)
			}
			stage := fmt.Sprintf("hist %d gc=%v", hl, gc)
			passes = append(passes, pass{g.addSuitePass(stage, f, 0), gc})
		}
	}
	r.absorb(g.size(), g.run())
	for _, p := range passes {
		_, avg := p.sp.merge()
		if p.gc {
			r.With = append(r.With, avg.CorrectSpecRate())
		} else {
			r.Without = append(r.Without, avg.CorrectSpecRate())
		}
	}
	return r
}

// Table renders the Figure 9 series.
func (r Fig9Result) Table() *report.Table {
	t := report.New("Figure 9: correct predictions vs history length (stand-alone CAP, no confidence)",
		"history length", "global correlation", "no global correlation")
	for i, hl := range r.Lengths {
		t.Add(fmt.Sprintf("%d", hl), report.Pct(r.With[i]), report.Pct(r.Without[i]))
	}
	t.SetFooter(r.Footer())
	return t
}

// BestLength returns the history length with the highest correct rate for
// the given series.
func (r Fig9Result) BestLength(with bool) int {
	series := r.Without
	if with {
		series = r.With
	}
	best, bestV := r.Lengths[0], series[0]
	for i, v := range series {
		if v > bestV {
			best, bestV = r.Lengths[i], v
		}
	}
	return best
}

// --- Figure 10: LT tags and control-flow indications ---

// Fig10Variant names one confidence configuration of the sweep.
type Fig10Variant struct {
	Name    string
	TagBits int
	Path    bool
}

// Fig10Variants are the paper's five configurations.
func Fig10Variants() []Fig10Variant {
	return []Fig10Variant{
		{"no tag", 0, false},
		{"4 bit tag", 4, false},
		{"8 bit tag", 8, false},
		{"4 bit tag + path", 4, true},
		{"8 bit tag + path", 8, true},
	}
}

// Fig10Result holds prediction and misprediction rates per variant.
type Fig10Result struct {
	FailureSet
	Variants []Fig10Variant
	Counters []metrics.Mean
}

// Fig10 reproduces Figure 10: the influence of LT tags (and control-flow
// indications) on the stand-alone CAP predictor.
func Fig10(cfg Config) Fig10Result {
	r := Fig10Result{Variants: Fig10Variants()}
	g := newGrid(cfg)
	passes := make([]*suitePass, len(r.Variants))
	for i, v := range r.Variants {
		v := v
		f := func() predictor.Predictor {
			cc := predictor.DefaultCAPConfig()
			cc.TagBits = v.TagBits
			if !v.Path {
				cc.CF = predictor.NoCF()
			}
			return predictor.NewCAP(cc)
		}
		passes[i] = g.addSuitePass(v.Name, f, 0)
	}
	r.absorb(g.size(), g.run())
	for _, p := range passes {
		_, avg := p.merge()
		r.Counters = append(r.Counters, avg)
	}
	return r
}

// Table renders the Figure 10 rows.
func (r Fig10Result) Table() *report.Table {
	t := report.New("Figure 10: influence of LT tags on the CAP predictor",
		"variant", "prediction rate", "misprediction rate")
	for i, v := range r.Variants {
		c := r.Counters[i]
		t.Add(v.Name, naPct(c, c.PredRate()), naPct2(c, c.MispredRate()))
	}
	t.SetFooter(r.Footer())
	return t
}

// --- Figure 11: prediction gap ---

// Fig11Gaps are the prediction gaps the paper sweeps (0 = immediate).
func Fig11Gaps() []int { return []int{0, 4, 8, 12} }

// Fig11Result holds stride and hybrid counters per gap.
type Fig11Result struct {
	FailureSet
	Gaps   []int
	Stride []metrics.Mean
	Hybrid []metrics.Mean
}

// Fig11 reproduces Figure 11: the influence of the prediction gap on
// prediction rate and accuracy for the enhanced stride and hybrid
// predictors.
func Fig11(cfg Config) Fig11Result {
	r := Fig11Result{Gaps: Fig11Gaps()}
	g := newGrid(cfg)
	sPasses := make([]*suitePass, len(r.Gaps))
	hPasses := make([]*suitePass, len(r.Gaps))
	for gi, gap := range r.Gaps {
		gap := gap
		spec := gap > 0
		sf := func() predictor.Predictor {
			sc := predictor.DefaultStrideConfig()
			sc.Speculative = spec
			return predictor.NewStride(sc)
		}
		hf := func() predictor.Predictor {
			hc := predictor.DefaultHybridConfig()
			hc.Speculative = spec
			return predictor.NewHybrid(hc)
		}
		sPasses[gi] = g.addSuitePass(fmt.Sprintf("stride gap %d", gap), sf, gap)
		hPasses[gi] = g.addSuitePass(fmt.Sprintf("hybrid gap %d", gap), hf, gap)
	}
	r.absorb(g.size(), g.run())
	for gi := range r.Gaps {
		_, avgS := sPasses[gi].merge()
		_, avgH := hPasses[gi].merge()
		r.Stride = append(r.Stride, avgS)
		r.Hybrid = append(r.Hybrid, avgH)
	}
	return r
}

// Table renders the Figure 11 rows.
func (r Fig11Result) Table() *report.Table {
	t := report.New("Figure 11: influence of the prediction gap",
		"gap", "stride rate", "hybrid rate", "stride acc", "hybrid acc")
	for i, gap := range r.Gaps {
		name := "immediate"
		if gap > 0 {
			name = fmt.Sprintf("%d", gap)
		}
		t.Add(name,
			naPct(r.Stride[i], r.Stride[i].PredRate()), naPct(r.Hybrid[i], r.Hybrid[i].PredRate()),
			naPct2(r.Stride[i], r.Stride[i].Accuracy()), naPct2(r.Hybrid[i], r.Hybrid[i].Accuracy()))
	}
	t.SetFooter(r.Footer())
	return t
}

// --- Figure 12: speedup with a prediction gap of 8 ---

// Fig12Row is one suite's speedups.
type Fig12Row struct {
	Suite                 string
	StrideImm, StrideGap8 float64
	HybridImm, HybridGap8 float64
}

// Fig12Result holds per-suite speedups immediate vs gap 8.
type Fig12Result struct {
	FailureSet
	Rows []Fig12Row
}

// Fig12 reproduces Figure 12: relative performance of the predictors for
// an immediate update and for a prediction gap of 8 cycles.
func Fig12(cfg Config) Fig12Result {
	suites := workload.SuiteNames()
	var r Fig12Result
	rows := make([]Fig12Row, len(suites)+1)
	var totals [5]float64 // base, strideImm, strideGap, hybridImm, hybridGap

	// Every suite's per-trace timing runs register into one grid, so the
	// pool stays busy across suite boundaries.
	type suiteJob struct {
		specs  []workload.TraceSpec
		cycles [][5]int64
		done   []bool
	}
	jobs := make([]suiteJob, len(suites))
	g := newGrid(cfg)
	for si, suite := range suites {
		specs := workload.BySuite(suite)
		jobs[si] = suiteJob{
			specs:  specs,
			cycles: make([][5]int64, len(specs)),
			done:   make([]bool, len(specs)),
		}
		job := &jobs[si]
		g.addPass("timing", specs, func(i int) error {
			spec := job.specs[i]
			mcfg := cpu.DefaultConfig()
			run := func(f Factory, gap int) (int64, error) {
				res, err := runTimed(cfg, spec, mcfg, f, gap)
				return res.Cycles, err
			}
			specStrideF := func() predictor.Predictor {
				sc := predictor.DefaultStrideConfig()
				sc.Speculative = true
				return predictor.NewStride(sc)
			}
			specHybridF := func() predictor.Predictor {
				hc := predictor.DefaultHybridConfig()
				hc.Speculative = true
				return predictor.NewHybrid(hc)
			}
			variants := []struct {
				f   Factory
				gap int
			}{
				{nil, 0}, {strideFactory, 0}, {specStrideF, 8}, {hybridFactory, 0}, {specHybridF, 8},
			}
			for v, va := range variants {
				c, err := run(va.f, va.gap)
				if err != nil {
					return err
				}
				job.cycles[i][v] = c
			}
			job.done[i] = true
			return nil
		})
	}
	r.absorb(g.size(), g.run())
	for si, suite := range suites {
		var base, stImm, stGap, hyImm, hyGap int64
		for i, c := range jobs[si].cycles {
			if !jobs[si].done[i] {
				continue
			}
			base += c[0]
			stImm += c[1]
			stGap += c[2]
			hyImm += c[3]
			hyGap += c[4]
		}
		rows[si] = Fig12Row{
			Suite:      suite,
			StrideImm:  safeDiv(float64(base), float64(stImm)),
			StrideGap8: safeDiv(float64(base), float64(stGap)),
			HybridImm:  safeDiv(float64(base), float64(hyImm)),
			HybridGap8: safeDiv(float64(base), float64(hyGap)),
		}
		totals[0] += float64(base)
		totals[1] += float64(stImm)
		totals[2] += float64(stGap)
		totals[3] += float64(hyImm)
		totals[4] += float64(hyGap)
	}
	rows[len(suites)] = Fig12Row{
		Suite:      "Average",
		StrideImm:  safeDiv(totals[0], totals[1]),
		StrideGap8: safeDiv(totals[0], totals[2]),
		HybridImm:  safeDiv(totals[0], totals[3]),
		HybridGap8: safeDiv(totals[0], totals[4]),
	}
	r.Rows = rows
	return r
}

// Table renders the Figure 12 rows.
func (r Fig12Result) Table() *report.Table {
	t := report.New("Figure 12: speedup, immediate update vs prediction gap 8",
		"suite", "stride imm", "stride gap8", "hybrid imm", "hybrid gap8")
	for _, row := range r.Rows {
		t.Add(row.Suite,
			report.Speedup(row.StrideImm), report.Speedup(row.StrideGap8),
			report.Speedup(row.HybridImm), report.Speedup(row.HybridGap8))
	}
	t.SetFooter(r.Footer())
	return t
}
