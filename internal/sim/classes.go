package sim

import (
	"context"
	"fmt"

	"capred/internal/predictor"
	"capred/internal/report"
	"capred/internal/trace"
	"capred/internal/workload"
)

// classOrder fixes the reporting order of profiled load classes.
var classOrder = []predictor.LoadClass{
	predictor.ClassConstant,
	predictor.ClassStride,
	predictor.ClassContext,
	predictor.ClassIrregular,
	predictor.ClassUnknown,
}

// ClassCoverageResult breaks each predictor's correct speculations down by
// the profiled pattern class of the load — the quantitative version of the
// paper's §2 analysis of which program behaviours each scheme captures.
type ClassCoverageResult struct {
	FailureSet
	Predictors []string
	// Share of dynamic loads in each class (same order as classOrder).
	ClassShare map[predictor.LoadClass]float64
	// Coverage[predictor][class] = correct speculations / loads of class.
	Coverage []map[predictor.LoadClass]float64
}

// ClassCoverage profiles every trace to classify its static loads, then
// measures per-class coverage of the last, enhanced-stride, CAP and
// hybrid predictors.
func ClassCoverage(cfg Config) ClassCoverageResult {
	specs := workload.Traces()
	factories := []Factory{
		func() predictor.Predictor { return predictor.NewLast(predictor.DefaultLastConfig()) },
		strideFactory,
		capFactory,
		hybridFactory,
	}
	names := []string{"last", "stride+", "cap", "hybrid"}

	// classTally is the leaf's serialisable per-trace result: dynamic
	// loads per profiled class and, per predictor, correct speculations
	// per class (exported fields so it survives the dist wire).
	type classTally struct {
		Loads   map[predictor.LoadClass]int64
		Correct []map[predictor.LoadClass]int64
	}
	type tally struct {
		classTally
		done bool
	}

	tallies := make([]tally, len(specs))

	g := newGrid(cfg)
	g.addPass("class-coverage", specs, func(i int) error {
		spec := specs[i]
		// Both passes run inside one leaf scope so the deadline spans the
		// whole two-pass job and a retry restarts it from scratch with
		// fresh state.
		t, err := distLeaf(cfg, spec, func(ctx context.Context, open func() trace.Source) (classTally, error) {
			// Classification pass.
			prof := predictor.NewProfiler()
			err := forEachBlock(ctx, open(), func(b *trace.Block) {
				for i, kb := range b.KindTaken {
					if trace.Kind(kb&^trace.KindTakenBit) == trace.KindLoad {
						prof.Observe(b.IP[i], b.Addr[i])
					}
				}
			})
			if err != nil {
				return classTally{}, fmt.Errorf("classification pass: %w", err)
			}
			profile := prof.Profile()

			t := classTally{
				Loads:   make(map[predictor.LoadClass]int64),
				Correct: make([]map[predictor.LoadClass]int64, len(factories)),
			}
			preds := make([]predictor.Predictor, len(factories))
			for v, f := range factories {
				t.Correct[v] = make(map[predictor.LoadClass]int64)
				preds[v] = cfg.factoryFor(spec, f)()
			}

			var ghr predictor.GHR
			var path predictor.PathHist
			err = forEachBlock(ctx, open(), func(b *trace.Block) {
				for i, kb := range b.KindTaken {
					switch trace.Kind(kb &^ trace.KindTakenBit) {
					case trace.KindBranch:
						ghr.Update(kb&trace.KindTakenBit != 0)
					case trace.KindCall:
						path.Push(b.IP[i])
					case trace.KindLoad:
						class := profile.Class(b.IP[i])
						t.Loads[class]++
						ref := predictor.LoadRef{
							IP: b.IP[i], Offset: b.Offset[i],
							GHR: ghr.Value(), Path: path.Value(),
						}
						addr := b.Addr[i]
						for v, p := range preds {
							pr := p.Predict(ref)
							if pr.Speculate && pr.Addr == addr {
								t.Correct[v][class]++
							}
							p.Resolve(ref, pr, addr)
						}
					}
				}
			})
			if err != nil {
				return classTally{}, fmt.Errorf("measurement pass: %w", err)
			}
			return t, nil
		})
		if err != nil {
			return err
		}
		tallies[i] = tally{classTally: t, done: true}
		return nil
	})
	fails := g.run()

	// Aggregate (failed traces contribute nothing).
	loads := make(map[predictor.LoadClass]int64)
	correct := make([]map[predictor.LoadClass]int64, len(factories))
	for v := range factories {
		correct[v] = make(map[predictor.LoadClass]int64)
	}
	var total int64
	for _, t := range tallies {
		if !t.done {
			continue
		}
		for c, n := range t.Loads {
			loads[c] += n
			total += n
		}
		for v := range factories {
			for c, n := range t.Correct[v] {
				correct[v][c] += n
			}
		}
	}

	out := ClassCoverageResult{
		Predictors: names,
		ClassShare: make(map[predictor.LoadClass]float64),
		Coverage:   make([]map[predictor.LoadClass]float64, len(factories)),
	}
	out.absorb(g.size(), fails)
	for _, c := range classOrder {
		if total > 0 {
			out.ClassShare[c] = float64(loads[c]) / float64(total)
		}
	}
	for v := range factories {
		out.Coverage[v] = make(map[predictor.LoadClass]float64)
		for _, c := range classOrder {
			if loads[c] > 0 {
				out.Coverage[v][c] = float64(correct[v][c]) / float64(loads[c])
			}
		}
	}
	return out
}

// Table renders the class-coverage matrix.
func (r ClassCoverageResult) Table() *report.Table {
	t := report.New("§2 analysis: per-class coverage (correct speculations / loads of class)",
		"class", "share of loads", "last", "stride+", "cap", "hybrid")
	for _, c := range classOrder {
		row := []string{c.String(), report.Pct(r.ClassShare[c])}
		for v := range r.Predictors {
			row = append(row, report.Pct(r.Coverage[v][c]))
		}
		t.Add(row...)
	}
	t.SetFooter(r.Footer())
	return t
}
