package sim

// The Finish-on-error contract: a run ending on a source error must
// still drain the prediction gap, so the partial counters AND the
// predictor's table state match a clean run truncated at the same
// event. Before the fix, RunTraceContext returned early on source error
// and left gapDepth resolutions unapplied — invisible in that run's own
// counters (they are recorded at predict time) but a silent divergence
// in any predictor state the caller keeps using.

import (
	"errors"
	"testing"

	"capred/internal/metrics"
	"capred/internal/predictor"
	"capred/internal/trace"
	"capred/internal/workload"
)

func TestRunTraceDrainsGapOnSourceError(t *testing.T) {
	spec, ok := workload.ByName("INT_go")
	if !ok {
		t.Fatal("INT_go missing from roster")
	}
	const faultAt = 10_000
	for _, gap := range []int{0, 4} {
		mk := func() predictor.Predictor {
			hc := predictor.DefaultHybridConfig()
			hc.Speculative = gap > 0
			return predictor.NewHybrid(hc)
		}

		// Faulted run: the stream dies after faultAt events.
		faulted := mk()
		cFault, err := RunTrace(
			trace.NewFailAfter(trace.NewLimit(spec.Open(), 50_000), faultAt, nil),
			faulted, gap)
		if !errors.Is(err, trace.ErrInjected) {
			t.Fatalf("gap %d: err = %v, want wrapped ErrInjected", gap, err)
		}

		// Reference: a clean run over exactly the same faultAt events.
		clean := mk()
		cClean, err := RunTrace(trace.NewLimit(spec.Open(), faultAt), clean, gap)
		if err != nil {
			t.Fatalf("gap %d: clean reference run: %v", gap, err)
		}

		if cFault != cClean {
			t.Fatalf("gap %d: partial counters diverge from a clean run over the same events:\nfaulted %+v\nclean   %+v",
				gap, cFault, cClean)
		}

		// The stronger half of the contract: both predictors must now be in
		// identical table state. Drive each over the same continuation
		// stream — if the faulted run skipped the gap drain, its tables lag
		// gapDepth resolutions behind and the counters split.
		continuation := func(p predictor.Predictor) metrics.Counters {
			st := NewStepper(p, gap)
			err := forEachBlock(nil, trace.NewLimit(spec.Open(), 20_000), st.StepBlock)
			if err != nil {
				t.Fatalf("gap %d: continuation: %v", gap, err)
			}
			st.Finish()
			return st.C
		}
		if a, b := continuation(faulted), continuation(clean); a != b {
			t.Fatalf("gap %d: predictor state diverged after the fault path: the gap was not drained\nfaulted-then-continued %+v\nclean-then-continued   %+v",
				gap, a, b)
		}
	}
}
