package sim

import (
	"context"
	"fmt"

	"capred/internal/metrics"
	"capred/internal/pipeline"
	"capred/internal/predictor"
	"capred/internal/report"
	"capred/internal/trace"
	"capred/internal/workload"
)

// WrongPathMode selects how wrong-path predictions are handled.
type WrongPathMode uint8

// Wrong-path handling modes.
const (
	// WrongPathNone: no wrong-path loads are injected (the idealised
	// model every §4 experiment uses).
	WrongPathNone WrongPathMode = iota
	// WrongPathSquash: wrong-path loads predict through the tables and
	// are squashed on recovery — the §5.4 history-buffer discipline.
	WrongPathSquash
	// WrongPathDestructive: wrong-path loads resolve with their bogus
	// addresses, destructively updating the tables — the hazard §5.4
	// warns against.
	WrongPathDestructive
)

// String names the mode.
func (m WrongPathMode) String() string {
	switch m {
	case WrongPathNone:
		return "no wrong path"
	case WrongPathSquash:
		return "wrong path + squash recovery"
	case WrongPathDestructive:
		return "wrong path, destructive updates"
	default:
		return "invalid"
	}
}

// runTraceWrongPath drives a speculative-mode predictor with a prediction
// gap, injecting a burst of wrong-path loads after every branch the
// model's own predictor would have mispredicted. Wrong-path loads replay
// recently seen static loads with perturbed addresses — what a front end
// fetches down the wrong arm of a branch.
func runTraceWrongPath(ctx context.Context, src trace.Source, p predictor.Predictor, gapDepth, burst int, mode WrongPathMode) (metrics.Counters, error) {
	var (
		c    metrics.Counters
		ghr  predictor.GHR
		path predictor.PathHist
		gap  = pipeline.New(p, gapDepth)

		// Small g-share deciding which branches are "mispredicted".
		bp    = make([]uint8, 4096)
		bhist uint32

		// Ring of recent load refs to replay on the wrong path.
		recent [16]predictor.LoadRef
		rn     int
	)
	predictBr := func(ip uint32) bool { return bp[(ip>>2^bhist)&4095] >= 2 }
	updateBr := func(ip uint32, taken bool) {
		e := &bp[(ip>>2^bhist)&4095]
		if taken {
			if *e < 3 {
				*e++
			}
		} else if *e > 0 {
			*e--
		}
		bhist = bhist<<1 | b2u(taken)
	}

	process := func(ev trace.Event) {
		switch ev.Kind {
		case trace.KindBranch:
			mispredicted := predictBr(ev.IP) != ev.Taken
			updateBr(ev.IP, ev.Taken)
			ghr.Update(ev.Taken)
			if mispredicted && mode != WrongPathNone && rn > 0 {
				// Fetch down the wrong path: replay recent loads with
				// perturbed addresses, then recover.
				injected := 0
				for i := 0; i < burst; i++ {
					ref := recent[(rn-1-i%rn+len(recent))%len(recent)]
					ref.GHR = ghr.Value() ^ 1 // wrong-path history
					pr := gap.Process(ref, ref.IP*2654435761|4)
					injected++
					if mode == WrongPathSquash {
						// Recovery will flush these before resolution.
						_ = pr
					}
				}
				if mode == WrongPathSquash {
					gap.SquashNewest(injected)
				}
				// In destructive mode the bogus actuals resolve through
				// the normal gap flow, corrupting the tables.
			}
		case trace.KindCall:
			path.Push(ev.IP)
		case trace.KindLoad:
			ref := predictor.LoadRef{
				IP: ev.IP, Offset: ev.Offset,
				GHR: ghr.Value(), Path: path.Value(),
			}
			recent[rn%len(recent)] = ref
			rn++
			if rn > len(recent) {
				rn = len(recent)
			}
			pr := gap.Process(ref, ev.Addr)
			c.Record(pr, ev.Addr)
		}
	}
	// The wrong-path injection body wants whole events (it replays the
	// branch/load interleaving through the gap); gather per event rather
	// than duplicating that logic column-wise.
	err := forEachBlock(ctx, src, func(b *trace.Block) {
		for i := range b.KindTaken {
			process(b.Event(i))
		}
	})
	if err != nil {
		return c, err
	}
	gap.Drain()
	return c, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// WrongPathResult compares the three wrong-path disciplines.
type WrongPathResult struct {
	FailureSet
	Modes    []WrongPathMode
	Counters []metrics.Mean
}

// WrongPath runs the §5.4 speculative-control-flow experiment: the hybrid
// predictor at a prediction gap of 8, with wrong-path load bursts after
// every modelled branch misprediction, handled by squash recovery or
// resolved destructively.
func WrongPath(cfg Config) WrongPathResult {
	modes := []WrongPathMode{WrongPathNone, WrongPathSquash, WrongPathDestructive}
	specs := workload.Traces()

	counters := make([][]metrics.Counters, len(modes))
	for m := range modes {
		counters[m] = make([]metrics.Counters, len(specs))
	}
	done := make([]bool, len(specs))
	g := newGrid(cfg)
	g.addPass("wrong-path", specs, func(i int) error {
		f := func() predictor.Predictor {
			hc := predictor.DefaultHybridConfig()
			hc.Speculative = true
			return predictor.NewHybrid(hc)
		}
		// Each mode gets its own leaf scope: the deadline bounds one
		// mode's run, and a transient source error retries just that mode.
		for m, mode := range modes {
			c, err := distLeaf(cfg, specs[i], func(ctx context.Context, open func() trace.Source) (metrics.Counters, error) {
				return runTraceWrongPath(ctx, open(), cfg.factoryFor(specs[i], f)(), 8, 4, mode)
			})
			if err != nil {
				return fmt.Errorf("%s: %w", mode, err)
			}
			counters[m][i] = c
		}
		done[i] = true
		return nil
	})

	out := WrongPathResult{Modes: modes, Counters: make([]metrics.Mean, len(modes))}
	out.absorb(g.size(), g.run())
	for m := range modes {
		for i := range specs {
			if !done[i] {
				continue
			}
			out.Counters[m].Add(counters[m][i])
		}
	}
	return out
}

// Table renders the wrong-path comparison.
func (r WrongPathResult) Table() *report.Table {
	t := report.New("§5.4: speculative control flow (hybrid, gap 8, wrong-path bursts of 4)",
		"discipline", "prediction rate", "accuracy", "correct of loads")
	for m, mode := range r.Modes {
		c := r.Counters[m]
		t.Add(mode.String(), naPct(c, c.PredRate()), naPct2(c, c.Accuracy()),
			naPct(c, c.CorrectSpecRate()))
	}
	t.SetFooter(r.Footer())
	return t
}
