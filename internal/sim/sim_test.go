package sim

import (
	"strings"
	"testing"

	"capred/internal/predictor"
	"capred/internal/trace"
	"capred/internal/workload"
)

// testCfg keeps experiment tests fast; rates at this scale are a few
// points below the converged ones but every shape assertion holds.
func testCfg() Config { return Config{EventsPerTrace: 100_000} }

func TestRunTraceCountsLoads(t *testing.T) {
	spec, _ := workload.ByName("INT_go")
	src := trace.NewLimit(spec.Open(), 50_000)
	c, err := RunTrace(src, hybridFactory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Loads == 0 {
		t.Fatal("no loads recorded")
	}
	if c.Speculated > c.Loads || c.SpecCorrect > c.Speculated {
		t.Errorf("counter invariants violated: %+v", c)
	}
}

func TestRunTraceGapMatchesPipelinedMode(t *testing.T) {
	spec, _ := workload.ByName("JAV_aud")
	src := trace.NewLimit(spec.Open(), 50_000)
	hc := predictor.DefaultHybridConfig()
	hc.Speculative = true
	c, err := RunTrace(src, predictor.NewHybrid(hc), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Loads == 0 || c.SpecCorrect == 0 {
		t.Fatalf("gapped run produced no predictions: %+v", c)
	}
}

func TestFig5Shape(t *testing.T) {
	// The footprint-heavy suites (NT, W95) train the CAP slowly — their
	// CAP-over-stride margin needs more than the quick-test budget.
	r := Fig5(Config{EventsPerTrace: 300_000})
	s, c, h := r.AvgS, r.AvgC, r.AvgH

	if !(h.PredRate() > s.PredRate()) {
		t.Errorf("hybrid rate (%.3f) must beat stride (%.3f)", h.PredRate(), s.PredRate())
	}
	if !(h.PredRate() > c.PredRate()) {
		t.Errorf("hybrid rate (%.3f) must beat CAP (%.3f)", h.PredRate(), c.PredRate())
	}
	// The paper's headline band: hybrid around 67%, accuracy near 99%.
	if h.PredRate() < 0.55 || h.PredRate() > 0.80 {
		t.Errorf("hybrid rate %.3f outside the paper's band", h.PredRate())
	}
	for _, acc := range []float64{s.Accuracy(), c.Accuracy(), h.Accuracy()} {
		if acc < 0.98 {
			t.Errorf("accuracy %.4f below the paper's ≈99%% regime", acc)
		}
	}
	// MM is the suite where the stride predictor wins (§4.2).
	if !(r.Stride["MM"].PredRate() > r.CAP["MM"].PredRate()) {
		t.Error("on MM, stride must beat CAP")
	}
	// Everywhere else CAP beats the enhanced stride.
	for _, suite := range workload.SuiteNames() {
		if suite == "MM" {
			continue
		}
		if !(r.CAP[suite].PredRate() > r.Stride[suite].PredRate()) {
			t.Errorf("on %s, CAP (%.3f) should beat stride (%.3f)",
				suite, r.CAP[suite].PredRate(), r.Stride[suite].PredRate())
		}
	}
	// TPC is the least predictable suite for the hybrid.
	for _, suite := range workload.SuiteNames() {
		if suite == "TPC" {
			continue
		}
		if r.Hybrid["TPC"].PredRate() > r.Hybrid[suite].PredRate() {
			t.Errorf("TPC should have the lowest hybrid rate, but %s is lower", suite)
		}
	}
	if r.Table().Rows() != 9 {
		t.Error("Fig5 table should have 9 rows")
	}
}

func TestFig6Shape(t *testing.T) {
	r := Fig6(testCfg())
	// Geometry order: 2K2w, 4K1w, 4K2w, 4K4w, 8K2w.
	rate := func(i int) float64 { return r.Avgs[i].PredRate() }
	if !(rate(2) >= rate(0)) {
		t.Errorf("4K2w (%.3f) should beat 2K2w (%.3f)", rate(2), rate(0))
	}
	if !(rate(2) >= rate(1)) {
		t.Errorf("2-way (%.3f) should beat direct-mapped (%.3f) at 4K (the paper: 2-way is a definite win)", rate(2), rate(1))
	}
	if !(rate(4) >= rate(2)-0.005) {
		t.Errorf("8K2w (%.3f) should not lose to 4K2w (%.3f)", rate(4), rate(2))
	}
	if r.Table().Rows() != 9 {
		t.Error("Fig6 table rows")
	}
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(testCfg())
	c := r.Avg
	if c.Pooled.DualConfident == 0 {
		t.Fatal("no dual-confident loads")
	}
	// Most dual-confident loads sit in the CAP-selecting states (§4.4:
	// almost 90%).
	capShare := c.SelStateShare(predictor.SelWeakCAP) + c.SelStateShare(predictor.SelStrongCAP)
	if capShare < 0.5 {
		t.Errorf("CAP-side selector share %.3f, want the majority", capShare)
	}
	// The 2-bit selector is close to perfect (paper: >99%).
	if c.CorrectSelectionRate() < 0.985 {
		t.Errorf("correct selection rate %.4f, want near-perfect", c.CorrectSelectionRate())
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(Config{EventsPerTrace: 60_000})
	// Global correlation helps (the paper estimates ≈10% of loads; accept
	// any clear win).
	best := r.BestLength(true)
	if bestV, worstV := r.With[idxOf(r.Lengths, best)], r.Without[idxOf(r.Lengths, best)]; bestV <= worstV {
		t.Errorf("global correlation should increase correct predictions: %v vs %v", bestV, worstV)
	}
	// The optimal history length with correlation is longer than without
	// (paper: 3–4 vs 2) — at minimum, not shorter.
	if r.BestLength(true) < r.BestLength(false) {
		t.Errorf("optimal history with correlation (%d) should not be shorter than without (%d)",
			r.BestLength(true), r.BestLength(false))
	}
	// Degenerate history (1) must be worse than the default region (3-4).
	if r.With[0] >= r.With[2] {
		t.Errorf("history length 1 (%.3f) should underperform length 3 (%.3f)", r.With[0], r.With[2])
	}
	if r.Table().Rows() != len(r.Lengths) {
		t.Error("Fig9 table rows")
	}
}

func idxOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

func TestFig10Shape(t *testing.T) {
	r := Fig10(testCfg())
	// Order: no tag, 4 bit, 8 bit, 4 bit + path, 8 bit + path.
	mr := func(i int) float64 { return r.Counters[i].MispredRate() }
	pr := func(i int) float64 { return r.Counters[i].PredRate() }
	if !(mr(1) < mr(0)) {
		t.Errorf("4-bit tags (%.4f) must cut mispredictions vs no tags (%.4f)", mr(1), mr(0))
	}
	if !(mr(2) <= mr(1)) {
		t.Errorf("8-bit tags (%.4f) must not mispredict more than 4-bit (%.4f)", mr(2), mr(1))
	}
	if !(mr(4) <= mr(2)) {
		t.Errorf("adding path info (%.4f) must not hurt 8-bit tags (%.4f)", mr(4), mr(2))
	}
	// Tags cost only a small slice of prediction rate (paper: ≈2%).
	if pr(0)-pr(2) > 0.08 {
		t.Errorf("tags cost %.3f of prediction rate, should be small", pr(0)-pr(2))
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11(Config{EventsPerTrace: 80_000})
	// Gaps: 0, 4, 8, 12.
	h := func(i int) float64 { return r.Hybrid[i].PredRate() }
	if !(h(1) < h(0)) {
		t.Errorf("a prediction gap must cost prediction rate: imm=%.3f gap4=%.3f", h(0), h(1))
	}
	// Beyond the first gap the influence is low (paper: "its influence is
	// quite low").
	if h(1)-h(3) > 0.10 {
		t.Errorf("gap growth cost too high: gap4=%.3f gap12=%.3f", h(1), h(3))
	}
	// Accuracy is hurt by the gap (paper: 98.9% → 96.6%).
	if !(r.Hybrid[1].Accuracy() < r.Hybrid[0].Accuracy()) {
		t.Error("gapped accuracy should drop below immediate")
	}
	// The hybrid stays ahead of the stride predictor under the gap.
	if !(r.Hybrid[2].CorrectSpecRate() > r.Stride[2].CorrectSpecRate()) {
		t.Error("hybrid must stay ahead of stride at gap 8")
	}
}

func TestFig7Shape(t *testing.T) {
	r := Fig7(Config{EventsPerTrace: 40_000})
	if len(r.Rows) != 45 {
		t.Fatalf("Fig7 rows = %d, want 45", len(r.Rows))
	}
	if !(r.AvgHybrid > 1.0) {
		t.Errorf("hybrid average speedup %.3f, want > 1", r.AvgHybrid)
	}
	if !(r.AvgHybrid > r.AvgStride) {
		t.Errorf("hybrid (%.3f) must beat stride (%.3f) on average", r.AvgHybrid, r.AvgStride)
	}
	// The paper's band: most traces 10–25%; accept a broad plausible band
	// for the average.
	if r.AvgHybrid < 1.03 || r.AvgHybrid > 1.8 {
		t.Errorf("hybrid average speedup %.3f outside plausible band", r.AvgHybrid)
	}
	if !strings.Contains(r.Table().String(), "Average") {
		t.Error("Fig7 table must include the average row")
	}
}

func TestFig12Shape(t *testing.T) {
	r := Fig12(Config{EventsPerTrace: 30_000})
	avg := r.Rows[len(r.Rows)-1]
	if avg.Suite != "Average" {
		t.Fatal("last row should be the average")
	}
	if !(avg.HybridImm > 1.0 && avg.HybridGap8 > 1.0) {
		t.Errorf("hybrid speedups must stay above 1: imm=%.3f gap8=%.3f", avg.HybridImm, avg.HybridGap8)
	}
	if !(avg.HybridGap8 <= avg.HybridImm) {
		t.Errorf("gap 8 speedup (%.3f) should not beat immediate (%.3f)", avg.HybridGap8, avg.HybridImm)
	}
	if !(avg.HybridGap8 >= avg.StrideGap8) {
		t.Errorf("hybrid (%.3f) should stay ahead of stride (%.3f) at gap 8", avg.HybridGap8, avg.StrideGap8)
	}
}

func TestBaselinesLadder(t *testing.T) {
	// CAP's context links take longer to train than stride state; the
	// cap-over-stride step of the ladder only emerges past warm-up, so
	// this test needs a larger budget than the other shape tests.
	r := Baselines(Config{EventsPerTrace: 300_000})
	// Names: last, stride, stride+, cap, hybrid. The §1 ladder on correct
	// predictions per load: last < stride family < hybrid; cap above
	// stride overall.
	cs := func(i int) float64 { return r.Counters[i].CorrectSpecRate() }
	if !(cs(2) > cs(0)) {
		t.Errorf("enhanced stride (%.3f) must beat last (%.3f)", cs(2), cs(0))
	}
	if !(cs(3) > cs(2)) {
		t.Errorf("cap (%.3f) must beat enhanced stride (%.3f) on average", cs(3), cs(2))
	}
	if !(cs(4) > cs(3)) {
		t.Errorf("hybrid (%.3f) must beat cap (%.3f)", cs(4), cs(3))
	}
	// Enhanced stride must not be less accurate than basic stride.
	if r.Counters[2].Accuracy() < r.Counters[1].Accuracy() {
		t.Error("enhancements should not reduce stride accuracy")
	}
}

func TestControlBasedWeak(t *testing.T) {
	r := ControlBased(testCfg())
	// Names: gshare-addr, path-addr, cap.
	if !(r.Counters[2].CorrectSpecRate() > r.Counters[0].CorrectSpecRate()) {
		t.Error("CAP must beat the g-share address predictor (§3.6)")
	}
	if !(r.Counters[2].CorrectSpecRate() > r.Counters[1].CorrectSpecRate()) {
		t.Error("CAP must beat the path address predictor (§3.6)")
	}
}

func TestUpdatePolicyAlwaysCompetitive(t *testing.T) {
	r := UpdatePolicy(testCfg())
	always := r.Counters[0].CorrectSpecRate()
	for i := 1; i < len(r.Counters); i++ {
		if r.Counters[i].CorrectSpecRate() > always+0.01 {
			t.Errorf("policy %s (%.3f) clearly beats always (%.3f); the paper found the opposite",
				r.Policies[i], r.Counters[i].CorrectSpecRate(), always)
		}
	}
}

func TestLTSizeMonotone(t *testing.T) {
	r := LTSize(testCfg())
	first := r.Counters[0].PredRate()
	last := r.Counters[len(r.Counters)-1].PredRate()
	if !(last > first) {
		t.Errorf("hybrid rate should grow with LT size: 1K=%.3f 8K=%.3f", first, last)
	}
}

func TestAblationsRun(t *testing.T) {
	r := Ablations(Config{EventsPerTrace: 40_000})
	if len(r.Names) != len(r.Counters) || len(r.Names) < 5 {
		t.Fatalf("ablations incomplete: %d names", len(r.Names))
	}
	// The dynamic selector should not lose to either static policy.
	base := r.Counters[0].CorrectSpecRate()
	for i, n := range r.Names {
		if strings.Contains(n, "static selector") && r.Counters[i].CorrectSpecRate() > base+0.01 {
			t.Errorf("%s (%.3f) clearly beats the dynamic selector (%.3f)",
				n, r.Counters[i].CorrectSpecRate(), base)
		}
	}
}

func TestAddressVsValueShape(t *testing.T) {
	r := AddressVsValue(Config{EventsPerTrace: 80_000})
	// Names: hybrid address, last-value, stride-value, context-value,
	// hybrid-value. §1's claim: addresses are far more predictable than
	// values on the same loads.
	addr := r.Corrects[0]
	for i := 1; i < len(r.Names); i++ {
		if r.Corrects[i] >= addr {
			t.Errorf("%s (%.3f) should not reach address predictability (%.3f)",
				r.Names[i], r.Corrects[i], addr)
		}
	}
	// The hybrid value predictor must beat the last-value baseline.
	if !(r.Corrects[4] > r.Corrects[1]) {
		t.Errorf("hybrid-value (%.3f) should beat last-value (%.3f)", r.Corrects[4], r.Corrects[1])
	}
	if r.Table().Rows() != 5 {
		t.Error("table rows")
	}
}

func TestPrefetchShape(t *testing.T) {
	r := Prefetch(Config{EventsPerTrace: 40_000})
	// Names: baseline, RPT, address prediction, both.
	if r.Speedups[0] != 1.0 {
		t.Errorf("baseline speedup = %v", r.Speedups[0])
	}
	if !(r.Speedups[1] > 1.0) {
		t.Errorf("prefetching should help: %.3f", r.Speedups[1])
	}
	if !(r.L1HitRate[1] > r.L1HitRate[0]) {
		t.Errorf("prefetching should raise the L1 hit rate: %.3f vs %.3f",
			r.L1HitRate[1], r.L1HitRate[0])
	}
	if !(r.Speedups[3] >= r.Speedups[2]) {
		t.Errorf("combining prefetch with prediction (%.3f) should not lose to prediction alone (%.3f)",
			r.Speedups[3], r.Speedups[2])
	}
}

func TestClassCoverageShape(t *testing.T) {
	r := ClassCoverage(Config{EventsPerTrace: 80_000})
	cov := func(v int, c predictor.LoadClass) float64 { return r.Coverage[v][c] }
	// Order: last, stride+, cap, hybrid.
	const (
		last = iota
		stridePlus
		capP
		hybrid
	)
	// The §2 ladder: last owns constants only; stride adds arrays; CAP
	// adds context; the hybrid inherits the best of both.
	if cov(last, predictor.ClassConstant) < 0.7 {
		t.Errorf("last should own constants: %.3f", cov(last, predictor.ClassConstant))
	}
	if cov(last, predictor.ClassStride) > 0.2 {
		t.Errorf("last should fail on strides: %.3f", cov(last, predictor.ClassStride))
	}
	if !(cov(stridePlus, predictor.ClassStride) > 0.6) {
		t.Errorf("stride+ should own strides: %.3f", cov(stridePlus, predictor.ClassStride))
	}
	if cov(stridePlus, predictor.ClassContext) > 0.3 {
		t.Errorf("stride+ should fail on context loads: %.3f", cov(stridePlus, predictor.ClassContext))
	}
	if !(cov(capP, predictor.ClassContext) > 0.6) {
		t.Errorf("cap should own context loads: %.3f", cov(capP, predictor.ClassContext))
	}
	for _, c := range []predictor.LoadClass{predictor.ClassConstant, predictor.ClassStride, predictor.ClassContext} {
		if cov(hybrid, c) < 0.6 {
			t.Errorf("hybrid should cover class %v: %.3f", c, cov(hybrid, c))
		}
	}
	// Nobody covers irregular loads well.
	for v := range r.Predictors {
		if cov(v, predictor.ClassIrregular) > 0.4 {
			t.Errorf("%s covers irregular loads suspiciously well: %.3f",
				r.Predictors[v], cov(v, predictor.ClassIrregular))
		}
	}
}

func TestProfileAssistShape(t *testing.T) {
	r := ProfileAssist(Config{EventsPerTrace: 60_000})
	// Order: 4K, 4K+profile, 512, 512+profile. Filtering irregular loads
	// must cut mispredictions-per-load sharply at both table sizes.
	if !(r.Counters[1].MispredOfLoads() < r.Counters[0].MispredOfLoads()/2) {
		t.Errorf("profile should cut mispredictions: %.4f vs %.4f",
			r.Counters[1].MispredOfLoads(), r.Counters[0].MispredOfLoads())
	}
	if !(r.Counters[3].MispredOfLoads() < r.Counters[2].MispredOfLoads()) {
		t.Error("profile should cut mispredictions at 512-entry LT too")
	}
	if r.Irregular == 0 || r.Classified == 0 {
		t.Errorf("profiler classified nothing: %d/%d", r.Irregular, r.Classified)
	}
}

func TestWrongPathShape(t *testing.T) {
	r := WrongPath(Config{EventsPerTrace: 60_000})
	// Modes: none, squash, destructive.
	none, squash, destr := r.Counters[0], r.Counters[1], r.Counters[2]
	// Squash recovery must keep accuracy essentially at the clean level.
	if none.Accuracy()-squash.Accuracy() > 0.005 {
		t.Errorf("squash recovery lost accuracy: clean=%.4f squash=%.4f",
			none.Accuracy(), squash.Accuracy())
	}
	// Destructive wrong-path updates must visibly hurt (§5.4's hazard).
	if !(destr.Accuracy() < squash.Accuracy()) {
		t.Errorf("destructive updates should hurt accuracy: %.4f vs %.4f",
			destr.Accuracy(), squash.Accuracy())
	}
	if !(destr.CorrectSpecRate() < squash.CorrectSpecRate()) {
		t.Error("destructive updates should cost correct predictions")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Parallel trace simulation must not introduce nondeterminism: two
	// runs of the same experiment produce identical counters.
	cfg := Config{EventsPerTrace: 30_000}
	a := Fig10(cfg)
	b := Fig10(cfg)
	for i := range a.Counters {
		if a.Counters[i] != b.Counters[i] {
			t.Fatalf("variant %d differs between runs:\n%+v\n%+v",
				i, a.Counters[i], b.Counters[i])
		}
	}
}
