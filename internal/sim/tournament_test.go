package sim

import (
	"reflect"
	"testing"

	"capred/internal/predictor"
	"capred/internal/predictor/tournament"
	"capred/internal/trace"
	"capred/internal/workload"
)

// TestTournamentStepBlockEquivalence pins the block-path contract for
// the tournament: StepBlock over SoA blocks and Step over individual
// events must produce bit-identical counters AND per-component
// selection statistics, in immediate mode and under a prediction gap.
func TestTournamentStepBlockEquivalence(t *testing.T) {
	spec, ok := workload.ByName("INT_xli")
	if !ok {
		t.Fatal("INT_xli missing from roster")
	}
	const events = 40_000
	for _, gap := range []int{0, 4} {
		stepSt := NewStepper(tournament.NewFull(gap > 0), gap)
		src := trace.NewLimit(spec.Open(), events)
		for {
			ev, ok := src.Next()
			if !ok {
				break
			}
			stepSt.Step(ev)
		}
		if err := src.Err(); err != nil {
			t.Fatalf("gap %d: step source: %v", gap, err)
		}
		stepSt.Finish()

		blockSt := NewStepper(tournament.NewFull(gap > 0), gap)
		if err := forEachBlock(nil, trace.NewLimit(spec.Open(), events), blockSt.StepBlock); err != nil {
			t.Fatalf("gap %d: block source: %v", gap, err)
		}
		blockSt.Finish()

		if stepSt.C != blockSt.C {
			t.Errorf("gap %d: counters diverge:\n  step  %+v\n  block %+v", gap, stepSt.C, blockSt.C)
		}
		ss := stepSt.Predictor().(*tournament.Tournament).ComponentStats()
		bs := blockSt.Predictor().(*tournament.Tournament).ComponentStats()
		if !reflect.DeepEqual(ss, bs) {
			t.Errorf("gap %d: component stats diverge:\n  step  %+v\n  block %+v", gap, ss, bs)
		}
	}
}

// TestTournamentPairMatchesHybridOnTrace runs the two-way stride+CAP
// tournament and the paper's hybrid over a real trace — immediate and
// gap 8 — and requires identical counters: the experiment-level face of
// the decision-identity that FuzzTournamentSelector pins per step.
func TestTournamentPairMatchesHybridOnTrace(t *testing.T) {
	spec, ok := workload.ByName("TPC_t23")
	if !ok {
		t.Fatal("TPC_t23 missing from roster")
	}
	const events = 60_000
	for _, gap := range []int{0, 8} {
		speculative := gap > 0
		hcfg := predictor.DefaultHybridConfig()
		hcfg.Speculative = speculative
		want, err := RunTrace(trace.NewLimit(spec.Open(), events), predictor.NewHybrid(hcfg), gap)
		if err != nil {
			t.Fatalf("gap %d: hybrid: %v", gap, err)
		}
		got, err := RunTrace(trace.NewLimit(spec.Open(), events), tournament.NewPaperPair(speculative), gap)
		if err != nil {
			t.Fatalf("gap %d: tournament: %v", gap, err)
		}
		if got != want {
			t.Errorf("gap %d: counters diverge:\n  hybrid     %+v\n  tournament %+v", gap, want, got)
		}
	}
}
