// The parallel sharded experiment scheduler. Every experiment is a grid
// of independent (configuration pass × trace) cells — exactly the
// embarrassingly-parallel shape of the paper's evaluation — and this
// file turns that grid into shards executed across a bounded worker
// pool.
//
// Determinism: output tables are bit-identical at every worker count.
// Three properties make that structural rather than lucky:
//
//  1. Shards are independent. Each shard builds its own predictor
//     instance(s) from a fresh factory call and opens its own trace
//     source — with a ReplayCache configured, a private replay cursor
//     over the cache's immutable shared bytes. No mutable state is
//     shared between shards.
//  2. Each shard writes only its own pre-allocated result slot, so the
//     completion order of shards cannot influence what any slot holds.
//  3. All merging (suite pooling, equal-weight means, failure lists)
//     happens after the pool drains, iterating the slots in shard
//     registration order. Floating-point accumulation therefore runs in
//     one fixed order regardless of scheduling.
//
// The resilience policy composes per shard: perTrace installs the
// config's deadline and transient-retry loop inside the shard, a panic
// anywhere in a shard is recovered into a *PanicError for that shard
// alone, and cancellation fails the shards that have not started while
// the ones in flight stop at their next batch boundary.
package sim

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"capred/internal/metrics"
	"capred/internal/trace"
	"capred/internal/workload"
)

// shard is one (configuration pass, trace) cell of an experiment grid.
type shard struct {
	stage string
	spec  workload.TraceSpec
	run   func() error
}

// grid accumulates an experiment's full work grid before execution, so
// every pass of a multi-configuration sweep shards across the same
// worker pool instead of running pass-by-pass behind barriers.
type grid struct {
	cfg    Config
	shards []shard
}

func newGrid(cfg Config) *grid { return &grid{cfg: cfg} }

// addPass registers one configuration pass over specs; body(i) performs
// the i-th trace's work and must write results only to slot i of
// whatever the caller pre-allocated (see the determinism contract at the
// top of the file).
func (g *grid) addPass(stage string, specs []workload.TraceSpec, body func(i int) error) {
	for i := range specs {
		i := i
		g.shards = append(g.shards, shard{
			stage: stage,
			spec:  specs[i],
			run:   func() error { return body(i) },
		})
	}
}

// suitePass is the handle addSuitePass returns: per-trace runs to be
// merged into per-suite counters once the grid has drained.
type suitePass struct {
	runs []traceRun
}

// addSuitePass registers the standard figure pass — every trace of the
// roster through one predictor factory — and returns the handle to merge
// its rows after run.
func (g *grid) addSuitePass(stage string, f Factory, gapDepth int) *suitePass {
	specs := workload.Traces()
	sp := &suitePass{runs: make([]traceRun, len(specs))}
	cfg := g.cfg
	g.addPass(stage, specs, func(i int) error {
		spec := specs[i]
		// Record the spec up front so even a panic mid-run leaves the
		// slot attributed to its trace.
		sp.runs[i] = traceRun{Spec: spec}
		c, err := distLeaf(cfg, spec, func(ctx context.Context, open func() trace.Source) (metrics.Counters, error) {
			return RunTraceContext(ctx, open(), cfg.factoryFor(spec, f)(), gapDepth)
		})
		if err != nil {
			return err
		}
		sp.runs[i] = traceRun{Spec: spec, C: c, ok: true}
		return nil
	})
	return sp
}

// merge pools the pass's surviving runs per suite and folds them into
// the equal-weight average, in trace-roster order.
func (sp *suitePass) merge() (map[string]metrics.Counters, metrics.Mean) {
	return bySuite(sp.runs)
}

// size is the number of registered shards — what FailureSet.Attempted
// should account for.
func (g *grid) size() int { return len(g.shards) }

// run executes every registered shard under the config's worker count
// and returns the failures in shard registration order.
func (g *grid) run() []TraceFailure {
	errs := runShards(g.cfg, g.shards)
	var fails []TraceFailure
	for i, err := range errs {
		if err != nil {
			fails = append(fails, TraceFailure{
				Trace: g.shards[i].spec.Name,
				Suite: g.shards[i].spec.Suite,
				Stage: g.shards[i].stage,
				Err:   err,
			})
		}
	}
	return fails
}

// runShards is the scheduler core: it executes shards across
// cfg.schedWorkers() goroutines (serially, in order, on the calling
// goroutine for Workers <= 1) and returns per-shard errors in shard
// order. Workers claim shard indices from an atomic cursor, so no shard
// runs twice and an idle worker immediately picks up the next cell of
// whatever pass still has work. Each shard is isolated: a panic becomes
// that shard's *PanicError, and once the config's context is done,
// not-yet-started shards fail with its error instead of running.
func runShards(cfg Config, shards []shard) []error {
	if b := cfg.broker; b != nil {
		switch b.mode {
		case brokerRecord:
			return recordShards(cfg, shards)
		case brokerReplay:
			if cfg.dist != nil {
				return distShards(cfg, shards)
			}
		}
	}
	errs := make([]error, len(shards))
	ctx := cfg.context()
	var done atomic.Int64
	runOne := func(i int) {
		// Progress reporting is observational only: it must not perturb
		// scheduling or results, so it fires after the shard's slot is
		// final, counting completions (not slot indices) monotonically.
		if cfg.Progress != nil {
			defer func() { cfg.Progress(int(done.Add(1)), len(shards)) }()
		}
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		errs[i] = shards[i].run()
	}

	workers := cfg.schedWorkers()
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		// Serial reference path: the golden harness diffs every parallel
		// run against this.
		for i := range shards {
			runOne(i)
		}
		return errs
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	return errs
}
