package sim

// Differential fuzz for the SoA hot path: StepBlock is a hand-hoisted
// rewrite of the per-event Step loop, so for every event mix the two
// must accumulate bit-identical counters, in both immediate-update and
// gapped mode. The fuzzer steers kind interleavings, address patterns
// and block-boundary placement.

import (
	"testing"

	"capred/internal/predictor"
	"capred/internal/trace"
)

// eventsFromBytes expands raw fuzz bytes into a valid event mix, four
// bytes per event, so the fuzzer explores interleavings without ever
// constructing an event the trace layer would reject.
func eventsFromBytes(data []byte) []trace.Event {
	evs := make([]trace.Event, 0, len(data)/4)
	for i := 0; i+4 <= len(data); i += 4 {
		k, a, b, c := data[i], data[i+1], data[i+2], data[i+3]
		ev := trace.Event{IP: uint32(a)<<4 | uint32(k>>4)}
		switch k % 6 {
		case 0:
			ev.Kind = trace.KindLoad
			ev.Addr = uint32(b)<<8 | uint32(c)
			ev.Val = uint32(c) * 3
			ev.Offset = int32(int8(b))
			ev.Src1, ev.Src2 = uint32(c&7), uint32(b&7)
		case 1:
			ev.Kind = trace.KindStore
			ev.Addr = uint32(c)<<8 | uint32(b)
			ev.Offset = -int32(b & 31)
			ev.Src1, ev.Src2 = uint32(b&7), uint32(c&7)
		case 2:
			ev.Kind = trace.KindBranch
			ev.Addr = uint32(b) << 2
			ev.Taken = c&1 == 1
			ev.Src1 = uint32(c & 7)
		case 3:
			ev.Kind = trace.KindCall
			ev.Addr = uint32(b) << 4
		case 4:
			ev.Kind = trace.KindReturn
			ev.Addr = uint32(c) << 4
		default:
			ev.Kind = trace.KindALU
			ev.Src1, ev.Src2 = uint32(b&15), uint32(c&15)
			ev.Lat = 1 + c%8
		}
		evs = append(evs, ev)
	}
	return evs
}

func FuzzStepBlockVsStep(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 200, 9, 9})
	f.Add([]byte("load-branch-call mixes steer from here, any bytes work"))
	f.Add(make([]byte, 4*300)) // long all-load run, repeated IP 0
	f.Fuzz(func(t *testing.T, data []byte) {
		evs := eventsFromBytes(data)
		for _, gap := range []int{0, 4} {
			mk := func() *Stepper {
				hc := predictor.DefaultHybridConfig()
				hc.Speculative = gap > 0
				return NewStepper(predictor.NewHybrid(hc), gap)
			}

			perEvent := mk()
			for _, ev := range evs {
				perEvent.Step(ev)
			}
			perEvent.Finish()

			// Odd block size so block boundaries land mid-mix, not only at
			// the end of the stream.
			blocked := mk()
			bs := trace.AsBlocks(trace.NewSliceSource(evs))
			b := trace.NewBlock(17)
			for {
				n, ok := bs.NextBlock(b, 17)
				if n > 0 {
					blocked.StepBlock(b)
				}
				if !ok {
					break
				}
			}
			blocked.Finish()

			if perEvent.C != blocked.C {
				t.Fatalf("gap %d: counters diverge over %d events:\nStep      %+v\nStepBlock %+v",
					gap, len(evs), perEvent.C, blocked.C)
			}
		}
	})
}
