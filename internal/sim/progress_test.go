package sim

import (
	"sync"
	"testing"
)

// TestProgressCallback: the scheduler reports one completion per grid
// cell, the final call sees done == total, and the callback's presence
// does not change the result tables.
func TestProgressCallback(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var calls []int
		total := -1
		cfg := DefaultConfig()
		cfg.EventsPerTrace = 2_000
		cfg.Workers = workers
		cfg.Progress = func(done, tot int) {
			mu.Lock()
			calls = append(calls, done)
			total = tot
			mu.Unlock()
		}
		withProgress := Baselines(cfg)

		cfg.Progress = nil
		plain := Baselines(cfg)
		if withProgress.Table().String() != plain.Table().String() {
			t.Fatalf("workers %d: progress callback changed the result table", workers)
		}

		mu.Lock()
		if total <= 0 {
			t.Fatalf("workers %d: progress never reported a total", workers)
		}
		if len(calls) != total {
			t.Fatalf("workers %d: %d progress calls for %d cells", workers, len(calls), total)
		}
		max := 0
		for _, d := range calls {
			if d > max {
				max = d
			}
		}
		mu.Unlock()
		if max != total {
			t.Fatalf("workers %d: max done %d never reached total %d", workers, max, total)
		}
	}
}
