// Distribution seam for the experiment harness: leaf-level record and
// replay.
//
// An experiment's shard closures capture live state (result slots,
// predictor factories, profiles) and cannot travel over a wire. What
// CAN travel is the output of each expensive leaf computation — every
// per-trace simulation runs inside cfg.perTrace and produces a small
// serialisable value (counters, a timing result, a tally). So instead
// of shipping closures, the fleet ships leaf results:
//
//   - A worker re-runs the experiment's deterministic driver code with
//     a broker in record mode that skips every grid but the target one
//     and runs only the target shard, appending each leaf's value (or
//     error) to a log in execution order.
//   - The coordinator runs the same driver code with the broker in
//     replay mode: runShards hands the grid to a DistRunner, and as
//     results come back the shard closures are re-executed locally with
//     distLeaf popping the leaf log instead of simulating. The closures
//     write the real result slots, in shard registration order, on one
//     goroutine — so the merged table is byte-identical to a local run
//     by construction (same slots, same merge order, same float
//     accumulation order).
//
// Worker and coordinator execute the same control flow, so the log
// lengths agree; a divergence (short or leftover log) is surfaced as an
// attributed shard error, never a silently short table.
package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime/debug"

	"capred/internal/trace"
	"capred/internal/workload"
)

// WireError is an error serialised for the coordinator. Messages
// round-trip byte-identically, so failure footers match a local run's.
type WireError struct {
	Msg   string `json:"msg"`
	Panic bool   `json:"panic,omitempty"`
	Stack string `json:"stack,omitempty"`
}

// wireErr converts a leaf error for the wire (nil-safe).
func wireErr(err error) *WireError {
	if err == nil {
		return nil
	}
	return &WireError{Msg: err.Error()}
}

// wirePanic converts a recovered panic for the wire.
func wirePanic(v any, stack []byte) *WireError {
	return &WireError{Msg: fmt.Sprint(v), Panic: true, Stack: string(stack)}
}

// AsError reconstructs the coordinator-side error: panics come back as
// *PanicError (stack preserved), everything else as *RemoteError with
// the original message.
func (w *WireError) AsError() error {
	if w == nil {
		return nil
	}
	if w.Panic {
		return &PanicError{Value: w.Msg, Stack: []byte(w.Stack)}
	}
	return &RemoteError{Msg: w.Msg}
}

// RemoteError is a worker-side failure replayed on the coordinator. It
// renders exactly as the original error did, keeping failure footers
// identical between local and distributed runs.
type RemoteError struct {
	Msg string `json:"msg"`
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Msg }

// LeafRecord is one leaf computation's outcome on the wire: the
// JSON-encoded value and/or the error. Both may be set — a failing
// timing run still returns its partial result, just like a local call.
type LeafRecord struct {
	Data json.RawMessage `json:"data,omitempty"`
	Err  *WireError      `json:"err,omitempty"`
}

// DistShardInfo describes one shard of a grid to the DistRunner.
type DistShardInfo struct {
	Index int    `json:"index"`
	Stage string `json:"stage"`
	Trace string `json:"trace"`
	Suite string `json:"suite"`
}

// DistShardResult is a worker's answer for one shard: the ordered leaf
// log, or the panic that interrupted it (in which case the coordinator
// skips replay and attributes the shard).
type DistShardResult struct {
	Leaves []LeafRecord `json:"leaves,omitempty"`
	Panic  *WireError   `json:"panic,omitempty"`
}

// DistRunner executes one grid's shards somewhere — a worker fleet, or
// in-process fallback — and hands results back for merging.
//
// The contract: for every shard the runner either invokes merge exactly
// once with that shard's result (recording merge's return as the
// shard's error) or sets an attributed error itself (lease exhausted,
// cancelled, ...). merge calls MUST be serialised on the calling
// goroutine and arrive in ascending shard order — replay writes the
// drivers' real result slots and the determinism contract requires one
// fixed merge order. progress (possibly nil) may be called as shards
// complete, from any goroutine.
type DistRunner interface {
	RunGrid(ctx context.Context, seq int, shards []DistShardInfo,
		merge func(i int, res DistShardResult) error,
		progress func(done, total int)) []error
}

// brokerMode selects how distLeaf and runShards behave.
type brokerMode uint8

const (
	brokerOff    brokerMode = iota
	brokerRecord            // worker: run one target shard, log its leaves
	brokerReplay            // coordinator: dispatch grids, replay leaf logs
)

// broker is the shared distribution state threaded through every copy
// of a Config during one experiment run (installed as a pointer before
// Experiment.Run, so the drivers' captured copies all see it). Record
// mode runs the single target shard on one goroutine; replay mode
// serialises shard replays on the RunGrid caller — so no locking.
type broker struct {
	mode brokerMode
	seq  int // grids seen so far this experiment run

	// Record mode: the (grid, shard) to execute and its growing log.
	targetSeq int
	targetIdx int
	ran       bool
	log       []LeafRecord
	panicErr  *WireError

	// Replay mode: the current shard's log and read cursor.
	replay []LeafRecord
	pos    int
}

// WithDist returns cfg configured to dispatch every grid through d,
// replaying worker leaf logs into the drivers' result slots.
func WithDist(cfg Config, d DistRunner) Config {
	cfg.dist = d
	cfg.broker = &broker{mode: brokerReplay}
	return cfg
}

// RunDistShard executes exactly one shard of one experiment — the unit
// of work a fleet worker pulls — and returns its leaf log. gridSeq
// counts the experiment's runShards calls (0 for every current driver);
// index is the shard's registration position. The run uses cfg's full
// resilience policy (deadline, transient retries, fault wrappers), so
// retrying happens where the data is, never on the replay path.
func RunDistShard(e Experiment, cfg Config, gridSeq, index int) (DistShardResult, error) {
	cfg.dist = nil
	cfg.Progress = nil
	cfg.Workers = 1
	b := &broker{mode: brokerRecord, targetSeq: gridSeq, targetIdx: index}
	cfg.broker = b
	e.Run(cfg)
	if !b.ran {
		return DistShardResult{}, fmt.Errorf("dist: experiment %q has no shard at grid %d index %d", e.Name, gridSeq, index)
	}
	return DistShardResult{Leaves: b.log, Panic: b.panicErr}, nil
}

// distLeaf is the leaf seam every per-trace computation runs through.
// Local mode computes under cfg.perTrace; record mode additionally logs
// the (value, error) pair; replay mode pops the log instead of
// computing. The value is meaningful even alongside a non-nil error
// (partial results), exactly as for a direct call.
func distLeaf[T any](cfg Config, spec workload.TraceSpec, compute func(ctx context.Context, open func() trace.Source) (T, error)) (T, error) {
	b := cfg.broker
	if b != nil && b.mode == brokerReplay {
		var v T
		if b.pos >= len(b.replay) {
			return v, &RemoteError{Msg: "dist: leaf log exhausted (worker computed fewer results than the shard replays)"}
		}
		rec := b.replay[b.pos]
		b.pos++
		if len(rec.Data) > 0 {
			if err := json.Unmarshal(rec.Data, &v); err != nil {
				return v, fmt.Errorf("dist: decoding leaf result: %w", err)
			}
		}
		return v, rec.Err.AsError()
	}

	var v T
	err := cfg.perTrace(spec, func(ctx context.Context, open func() trace.Source) error {
		var cerr error
		v, cerr = compute(ctx, open)
		return cerr
	})
	if b != nil && b.mode == brokerRecord {
		rec := LeafRecord{Err: wireErr(err)}
		if data, merr := json.Marshal(v); merr != nil {
			// An unencodable value must fail loudly on both sides, not
			// replay as a zero.
			err = fmt.Errorf("dist: encoding leaf result: %w", merr)
			rec = LeafRecord{Err: wireErr(err)}
		} else {
			rec.Data = data
		}
		b.log = append(b.log, rec)
	}
	return v, err
}

// recordShards is runShards in record mode: every grid but the target
// is skipped wholesale (its slots stay zero; the worker's own table is
// discarded anyway) and the target shard runs serially, its panic — if
// any — captured for the wire.
func recordShards(cfg Config, shards []shard) []error {
	b := cfg.broker
	seq := b.seq
	b.seq++
	errs := make([]error, len(shards))
	if seq != b.targetSeq || b.targetIdx < 0 || b.targetIdx >= len(shards) {
		return errs
	}
	b.ran = true
	func() {
		defer func() {
			if r := recover(); r != nil {
				b.panicErr = wirePanic(r, debug.Stack())
			}
		}()
		errs[b.targetIdx] = shards[b.targetIdx].run()
	}()
	return errs
}

// distShards is runShards in replay mode: the grid is described to the
// DistRunner, and each returned leaf log is replayed through the real
// shard closure — writing the drivers' result slots on this goroutine,
// in registration order. A shard whose log does not line up with its
// closure's control flow fails with an attributed error.
func distShards(cfg Config, shards []shard) []error {
	b := cfg.broker
	seq := b.seq
	b.seq++
	infos := make([]DistShardInfo, len(shards))
	for i, s := range shards {
		infos[i] = DistShardInfo{Index: i, Stage: s.stage, Trace: s.spec.Name, Suite: s.spec.Suite}
	}
	merge := func(i int, res DistShardResult) (err error) {
		if res.Panic != nil {
			return res.Panic.AsError()
		}
		b.replay = res.Leaves
		b.pos = 0
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = &PanicError{Value: r, Stack: debug.Stack()}
				}
			}()
			err = shards[i].run()
		}()
		if err == nil && b.pos != len(b.replay) {
			err = &RemoteError{Msg: fmt.Sprintf("dist: leaf log leftover (%d of %d results unconsumed)", len(b.replay)-b.pos, len(b.replay))}
		}
		return err
	}
	errs := cfg.dist.RunGrid(cfg.context(), seq, infos, merge, cfg.Progress)
	if len(errs) != len(shards) {
		// A misbehaving runner must not shorten the table: pad the
		// missing shards with attributed errors.
		out := make([]error, len(shards))
		copy(out, errs)
		for i := len(errs); i < len(out); i++ {
			out[i] = &RemoteError{Msg: "dist: runner returned a short error list"}
		}
		return out
	}
	return errs
}
