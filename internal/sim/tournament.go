package sim

import (
	"context"
	"fmt"
	"strings"

	"capred/internal/metrics"
	"capred/internal/predictor"
	"capred/internal/predictor/tournament"
	"capred/internal/report"
	"capred/internal/trace"
	"capred/internal/workload"
)

// tournamentRow names one configuration of the ablation. A nil
// component list selects the paper's hybrid (§3.7) as the reference;
// otherwise the row runs a tournament over the named components.
type tournamentRow struct {
	name  string
	comps []string
}

// tournamentRows fixes the ablation ladder: the paper's hybrid, the
// two-way tournament that must reproduce it exactly, each new component
// on its own (a 1-way tournament is the component plus confidence
// gating), and the full 5-way lineup.
func tournamentRows() []tournamentRow {
	return []tournamentRow{
		{"hybrid (§3.7)", nil},
		{"tournament stride+cap", []string{"stride", "cap"}},
		{"markov alone", []string{"markov"}},
		{"delta2 alone", []string{"delta2"}},
		{"callpath alone", []string{"callpath"}},
		{"tournament 5-way", tournament.DefaultComponents()},
	}
}

// tournamentPredictor builds the predictor for one ablation row.
func tournamentPredictor(row tournamentRow, speculative bool) (predictor.Predictor, error) {
	if row.comps == nil {
		cfg := predictor.DefaultHybridConfig()
		cfg.Speculative = speculative
		return predictor.NewHybrid(cfg), nil
	}
	if len(row.comps) == 2 && row.comps[0] == "stride" && row.comps[1] == "cap" {
		// The paper pair carries the chooser geometry and initial counter
		// vector that make it decision-identical to the hybrid row.
		return tournament.NewPaperPair(speculative), nil
	}
	return tournament.NewNamed(tournament.DefaultConfig(), speculative, row.comps...)
}

// tournamentTally is the per-trace leaf result: the standard counters
// plus the tournament's per-component selection statistics (exported
// fields so it survives the dist wire).
type tournamentTally struct {
	C   metrics.Counters
	Sel []tournament.ComponentStat
}

// TournamentResult holds the ablation outcome: per-row aggregate rates
// over all traces plus per-component selection statistics.
type TournamentResult struct {
	FailureSet
	Rows []string
	// Avg is the equal-weight per-trace mean of each row's rates — the
	// same aggregation as the figures' "Average" rows.
	Avg []metrics.Mean
	// Pooled sums each row's counters across traces (for the selector
	// statistics, which are counts, not rates).
	Pooled []metrics.Counters
	// Sel[row] sums the per-component selection stats across traces;
	// empty for the hybrid reference row.
	Sel [][]tournament.ComponentStat
}

// Tournament runs the meta-predictor ablation across every trace: the
// paper's hybrid against the two-way tournament that provably equals it,
// the three new component predictors alone, and the full 5-way
// tournament. Immediate mode (§4), like Fig. 5.
func Tournament(cfg Config) TournamentResult {
	rows := tournamentRows()
	specs := workload.Traces()

	type cell struct {
		t    tournamentTally
		done bool
	}
	cells := make([][]cell, len(rows))
	g := newGrid(cfg)
	for ri, row := range rows {
		row := row
		cells[ri] = make([]cell, len(specs))
		g.addPass(row.name, specs, func(i int) error {
			spec := specs[i]
			t, err := distLeaf(cfg, spec, func(ctx context.Context, open func() trace.Source) (tournamentTally, error) {
				f := cfg.factoryFor(spec, func() predictor.Predictor {
					p, err := tournamentPredictor(row, false)
					if err != nil {
						panic(err) // unreachable: rows name known components only
					}
					return p
				})
				st := NewStepper(f(), 0)
				err := forEachBlock(ctx, open(), st.StepBlock)
				st.Finish()
				out := tournamentTally{C: st.C}
				if tp, ok := st.Predictor().(*tournament.Tournament); ok {
					out.Sel = tp.ComponentStats()
				}
				return out, err
			})
			if err != nil {
				return err
			}
			cells[ri][i] = cell{t: t, done: true}
			return nil
		})
	}
	fails := g.run()

	out := TournamentResult{
		Rows:   make([]string, len(rows)),
		Avg:    make([]metrics.Mean, len(rows)),
		Pooled: make([]metrics.Counters, len(rows)),
		Sel:    make([][]tournament.ComponentStat, len(rows)),
	}
	out.absorb(g.size(), fails)
	for ri, row := range rows {
		out.Rows[ri] = row.name
		for _, c := range cells[ri] {
			if !c.done {
				continue
			}
			out.Avg[ri].Add(c.t.C)
			out.Pooled[ri].Merge(c.t.C)
			if c.t.Sel != nil {
				if out.Sel[ri] == nil {
					out.Sel[ri] = make([]tournament.ComponentStat, len(c.t.Sel))
					for si := range c.t.Sel {
						out.Sel[ri][si].Name = c.t.Sel[si].Name
					}
				}
				for si := range c.t.Sel {
					out.Sel[ri][si].Selected += c.t.Sel[si].Selected
					out.Sel[ri][si].Correct += c.t.Sel[si].Correct
				}
			}
		}
	}
	return out
}

// selShares renders one row's per-component selection breakdown:
// share of speculative accesses attributed to each component, with the
// component's own accuracy on the loads it won.
func selShares(stats []tournament.ComponentStat) string {
	if len(stats) == 0 {
		return "—"
	}
	var total int64
	for _, s := range stats {
		total += s.Selected
	}
	parts := make([]string, 0, len(stats))
	for _, s := range stats {
		if total == 0 {
			parts = append(parts, s.Name+" 0%")
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %s@%s", s.Name,
			report.Pct(float64(s.Selected)/float64(total)),
			report.Pct(safeDiv(float64(s.Correct), float64(s.Selected)))))
	}
	return strings.Join(parts, " ")
}

// Table renders the ablation.
func (r TournamentResult) Table() *report.Table {
	t := report.New("tournament meta-predictor vs the paper's hybrid (average over traces)",
		"configuration", "pred rate", "accuracy", "correct spec", "mispred/loads",
		"selection share@accuracy")
	for i, name := range r.Rows {
		a := r.Avg[i]
		t.Add(name,
			naPct(a, a.PredRate()),
			naPct(a, a.Accuracy()),
			naPct(a, a.CorrectSpecRate()),
			naPct2(a, a.MispredOfLoads()),
			selShares(r.Sel[i]))
	}
	t.SetFooter(r.Footer())
	return t
}
