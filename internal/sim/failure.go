// Fault tolerance for the experiment harness: per-trace failures are
// isolated, recorded and reported instead of crashing a sweep or
// silently folding truncated counters into the aggregate tables.
package sim

import (
	"context"
	"fmt"
	"strings"

	"capred/internal/trace"
	"capred/internal/workload"
)

// PanicError is a panic recovered from a per-trace worker goroutine,
// converted into an ordinary error with the goroutine's stack captured
// at the panic site.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string { return fmt.Sprintf("panic: %v", p.Value) }

// TraceFailure records one failed trace run within an experiment.
type TraceFailure struct {
	Trace string // trace name, e.g. "INT_go"
	Suite string // suite name, e.g. "INT"
	Stage string // which pass of the experiment, e.g. "stride" or "gap 8"
	Err   error
}

// String renders the failure as one report line.
func (f TraceFailure) String() string {
	if f.Stage != "" {
		return fmt.Sprintf("%s [%s]: %v", f.Trace, f.Stage, f.Err)
	}
	return fmt.Sprintf("%s: %v", f.Trace, f.Err)
}

// FailureSet is embedded in every experiment result: the per-trace runs
// that failed, out of how many were attempted. Tables render partial
// results from the surviving runs plus an explicit failure footer.
type FailureSet struct {
	Failures  []TraceFailure
	Attempted int // total per-trace runs the driver attempted
}

// Failed returns the recorded failures (nil for a clean run).
func (s FailureSet) Failed() []TraceFailure { return s.Failures }

// absorb accounts for `runs` attempted trace runs and their failures.
func (s *FailureSet) absorb(runs int, fails []TraceFailure) {
	s.Attempted += runs
	s.Failures = append(s.Failures, fails...)
}

// Footer renders the "N of M traces failed" report appended to tables,
// or "" when every run succeeded.
func (s FailureSet) Footer() string {
	if len(s.Failures) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "WARNING: %d of %d trace runs failed; rows aggregate the survivors",
		len(s.Failures), s.Attempted)
	for _, f := range s.Failures {
		b.WriteString("\n  ")
		b.WriteString(f.String())
	}
	return b.String()
}

// context returns the config's context, defaulting to Background.
func (c Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// open builds the (budget-limited) source for one trace. With a replay
// cache configured the materialised stream is shared across every run of
// the same trace at the same budget; fault-injection wrappers are
// applied outside the cache, so injected faults are never materialised
// and a retry re-applies them to a fresh cursor.
func (c Config) open(spec workload.TraceSpec) trace.Source {
	var src trace.Source
	if c.ReplayCache != nil {
		// The key folds in everything that changes the limited stream.
		key := fmt.Sprintf("%s@%d", spec.Name, c.EventsPerTrace)
		src = c.ReplayCache.Open(key, func() trace.Source {
			return trace.NewLimit(spec.Open(), c.EventsPerTrace)
		})
	} else {
		src = trace.NewLimit(spec.Open(), c.EventsPerTrace)
	}
	if c.WrapSource != nil {
		src = c.WrapSource(spec.Name, src)
	}
	return src
}

// openCtx is open plus the context-aware fault wrapper: WrapSourceCtx
// sees the per-trace deadline context installed by perTrace, so an
// injected hang can block on the very deadline that is supposed to fail
// it.
func (c Config) openCtx(ctx context.Context, spec workload.TraceSpec) trace.Source {
	src := c.open(spec)
	if c.WrapSourceCtx != nil {
		src = c.WrapSourceCtx(ctx, spec.Name, src)
	}
	return src
}

// factoryFor applies the per-trace factory wrapper when one is
// configured.
func (c Config) factoryFor(spec workload.TraceSpec, f Factory) Factory {
	if c.WrapFactory != nil {
		return c.WrapFactory(spec.Name, f)
	}
	return f
}
