// The experiment registry: one entry per paper figure/table driver, so
// the CLI, the benchmark sweep and the golden-output regression harness
// all iterate the same list instead of each hard-coding the roster.
package sim

import (
	"sort"

	"capred/internal/report"
)

// Result is the shape every experiment result shares: a table renderer
// and the failure list accumulated by its embedded FailureSet.
type Result interface {
	Table() *report.Table
	Failed() []TraceFailure
}

// Experiment couples a driver's CLI name and description with a runner
// returning its result behind the common interface.
type Experiment struct {
	Name string
	Desc string
	Run  func(Config) Result
}

// experimentList registers every driver.
func experimentList() []Experiment {
	return []Experiment{
		{"fig5", "prediction rate & accuracy of stride, CAP, hybrid per suite",
			func(c Config) Result { return Fig5(c) }},
		{"fig6", "hybrid prediction rate vs LB entries/associativity",
			func(c Config) Result { return Fig6(c) }},
		{"fig7", "per-trace speedup over no address prediction (timing model)",
			func(c Config) Result { return Fig7(c) }},
		{"fig8", "hybrid selector state distribution and correct-selection rate",
			func(c Config) Result { return Fig8(c) }},
		{"fig9", "correct predictions vs history length, ± global correlation",
			func(c Config) Result { return Fig9(c) }},
		{"fig10", "influence of LT tags and path info on CAP",
			func(c Config) Result { return Fig10(c) }},
		{"fig11", "influence of the prediction gap on rate and accuracy",
			func(c Config) Result { return Fig11(c) }},
		{"fig12", "per-suite speedup, immediate vs prediction gap 8",
			func(c Config) Result { return Fig12(c) }},
		{"update-policy", "§4.3 LT update policies",
			func(c Config) Result { return UpdatePolicy(c) }},
		{"lt-size", "§4.2 hybrid rate vs LT entries",
			func(c Config) Result { return LTSize(c) }},
		{"baselines", "§1 predictor family ladder",
			func(c Config) Result { return Baselines(c) }},
		{"control", "§3.6 control-based predictors vs CAP",
			func(c Config) Result { return ControlBased(c) }},
		{"ablations", "design-choice ablations beyond the paper's figures",
			func(c Config) Result { return Ablations(c) }},
		{"profile-assist", "§6 future work: profile-guided load classification",
			func(c Config) Result { return ProfileAssist(c) }},
		{"addr-vs-value", "§1: address vs load-value predictability",
			func(c Config) Result { return AddressVsValue(c) }},
		{"prefetch", "§1.1: data prefetching vs address prediction",
			func(c Config) Result { return Prefetch(c) }},
		{"classes", "§2: per-pattern-class coverage of each predictor",
			func(c Config) Result { return ClassCoverage(c) }},
		{"wrong-path", "§5.4: wrong-path predictions with and without squash recovery",
			func(c Config) Result { return WrongPath(c) }},
		{"tournament", "N-way tournament meta-predictor vs the paper's hybrid",
			func(c Config) Result { return Tournament(c) }},
	}
}

// Experiments returns every registered experiment, sorted by name.
func Experiments() []Experiment {
	out := experimentList()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ExperimentByName looks an experiment up by its CLI name.
func ExperimentByName(name string) (Experiment, bool) {
	for _, e := range experimentList() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
