package sim

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"capred/internal/trace"
	"capred/internal/workload"
)

// TestSchedulerShardAttributionUnderWorkers injects two unrelated faults
// into a parallel run: each must be attributed to exactly its own shard,
// with every sibling surviving, no matter which worker hit it.
func TestSchedulerShardAttributionUnderWorkers(t *testing.T) {
	cfg := Config{
		EventsPerTrace: 8_000,
		Workers:        4,
		WrapSource:     failSourceFor("INT_go", 2_000),
		WrapFactory:    panicFactoryFor("CAD_cat"),
	}
	runs, fails := runAll(cfg, workload.Traces(), "test", hybridFactory, 0)
	if len(fails) != 2 {
		t.Fatalf("failures = %v, want exactly the two injected ones", fails)
	}
	byTrace := map[string]error{}
	for _, f := range fails {
		if f.Stage != "test" {
			t.Errorf("failure %v lost its stage", f)
		}
		byTrace[f.Trace] = f.Err
	}
	if !errors.Is(byTrace["INT_go"], trace.ErrInjected) {
		t.Errorf("INT_go error = %v, want wrapped ErrInjected", byTrace["INT_go"])
	}
	var pe *PanicError
	if !errors.As(byTrace["CAD_cat"], &pe) {
		t.Errorf("CAD_cat error = %v, want *PanicError", byTrace["CAD_cat"])
	}
	for _, r := range runs {
		bad := r.Spec.Name == "INT_go" || r.Spec.Name == "CAD_cat"
		if r.ok == bad {
			t.Errorf("trace %s: ok=%v, want %v", r.Spec.Name, r.ok, !bad)
		}
	}
}

// TestSchedulerMultiPassFailureOrder pins that failures come back in
// shard registration order even when workers complete out of order: the
// same trace failing in all three Fig5 passes reports stride, cap,
// hybrid — the registration order — every time.
func TestSchedulerMultiPassFailureOrder(t *testing.T) {
	r := Fig5(Config{
		EventsPerTrace: 8_000,
		Workers:        6,
		WrapSource:     failSourceFor("INT_go", 2_000),
	})
	fails := r.Failed()
	if len(fails) != 3 {
		t.Fatalf("failures = %v, want one per pass", fails)
	}
	for i, stage := range []string{"stride", "cap", "hybrid"} {
		if fails[i].Stage != stage || fails[i].Trace != "INT_go" {
			t.Errorf("failure[%d] = %v, want INT_go at stage %s", i, fails[i], stage)
		}
	}
}

// TestSchedulerNoGoroutineLeak runs parallel grids repeatedly and checks
// the worker pool drains completely each time.
func TestSchedulerNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := Config{EventsPerTrace: 2_000, Workers: 8}
	for i := 0; i < 3; i++ {
		if _, fails := runAll(cfg, workload.Traces(), "leak", hybridFactory, 0); len(fails) != 0 {
			t.Fatalf("clean run failed: %v", fails)
		}
	}
	// Allow the runtime a moment to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSchedulerPromptCancellation hangs every trace source on the run's
// context and cancels shortly after launch: the pool must unblock and
// return promptly, with every shard accounted for as a failure.
func TestSchedulerPromptCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		EventsPerTrace: 1_000_000,
		Workers:        4,
		Ctx:            ctx,
		WrapSourceCtx: func(ctx context.Context, name string, src trace.Source) trace.Source {
			return trace.NewHang(ctx, src, 100)
		},
	}
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	runs, fails := runAll(cfg, workload.Traces(), "hang", hybridFactory, 0)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; hung workers were not unblocked promptly", elapsed)
	}
	if len(fails) != len(runs) {
		t.Fatalf("%d of %d shards failed, want all (every source hangs)", len(fails), len(runs))
	}
	for _, f := range fails {
		if !errors.Is(f.Err, context.Canceled) {
			t.Errorf("failure %v should carry the cancellation", f)
		}
	}
}

// TestSchedulerFlakyOpenRetryUnderWorkers wires trace.FlakyOpen into the
// per-shard retry loop: every trace's first open fails transiently, and
// with one retry the whole parallel run must still come back clean.
func TestSchedulerFlakyOpenRetryUnderWorkers(t *testing.T) {
	// WrapSource hands us an opened source, while FlakyOpen wraps an
	// opener; bridge them per trace, under a lock since wrapping happens
	// concurrently across shards.
	var mu sync.Mutex
	cur := map[string]trace.Source{}
	openers := map[string]func() trace.Source{}
	wrap := func(name string, src trace.Source) trace.Source {
		mu.Lock()
		defer mu.Unlock()
		if _, ok := openers[name]; !ok {
			openers[name] = trace.FlakyOpen(func() trace.Source { return cur[name] }, 1, 200)
		}
		cur[name] = src
		return openers[name]()
	}

	cfg := Config{EventsPerTrace: 5_000, Workers: 4, WrapSource: wrap, SourceRetries: 1}
	runs, fails := runAll(cfg, workload.Traces(), "flaky", hybridFactory, 0)
	if len(fails) != 0 {
		t.Fatalf("transient opens not retried under workers: %v", fails)
	}
	for _, r := range runs {
		if !r.ok || r.C.Loads == 0 {
			t.Fatalf("trace %s did not complete after retry", r.Spec.Name)
		}
	}

	// Without the retry budget every shard's transient fault is fatal.
	mu.Lock()
	cur = map[string]trace.Source{}
	openers = map[string]func() trace.Source{}
	mu.Unlock()
	cfg.SourceRetries = 0
	_, fails = runAll(cfg, workload.Traces(), "flaky", hybridFactory, 0)
	if len(fails) != len(workload.Traces()) {
		t.Fatalf("failures = %d, want every trace without retries", len(fails))
	}
}

// TestSchedulerDeterministicAcrossWorkerCounts is the counters-level
// determinism check under oversubscription: more workers than shards,
// odd worker counts, and the serial path must all produce identical
// per-trace counters.
func TestSchedulerDeterministicAcrossWorkerCounts(t *testing.T) {
	base := Config{EventsPerTrace: 5_000}
	ref, fails := runAll(base, workload.Traces(), "det", hybridFactory, 0)
	if len(fails) != 0 {
		t.Fatalf("serial reference failed: %v", fails)
	}
	for _, workers := range []int{2, 5, 64} {
		cfg := base
		cfg.Workers = workers
		runs, fails := runAll(cfg, workload.Traces(), "det", hybridFactory, 0)
		if len(fails) != 0 {
			t.Fatalf("workers=%d failed: %v", workers, fails)
		}
		for i := range runs {
			if runs[i].Spec.Name != ref[i].Spec.Name {
				t.Fatalf("workers=%d: result order diverged at %d", workers, i)
			}
			if runs[i].C != ref[i].C {
				t.Errorf("workers=%d: %s counters diverged from serial", workers, runs[i].Spec.Name)
			}
		}
	}
}
