package sim

import (
	"capred/internal/cpu"
	"capred/internal/prefetch"
	"capred/internal/report"
	"capred/internal/workload"
)

// PrefetchResult compares data prefetching with address prediction and
// with their combination ([Gonz97]: sharing stride structures for both)
// on the timing model.
type PrefetchResult struct {
	FailureSet
	Names     []string
	Speedups  []float64 // over the no-prefetch, no-prediction baseline
	L1HitRate []float64
}

// Prefetch runs the §1.1 positioning experiment: a Baer/Chen stride
// prefetcher, the hybrid address predictor, and both together, against a
// plain baseline, over all 45 traces.
func Prefetch(cfg Config) PrefetchResult {
	specs := workload.Traces()
	const variants = 4

	type row struct {
		cycles [variants]int64
		l1     [variants]float64
		done   bool
	}
	rows := make([]row, len(specs))

	g := newGrid(cfg)
	g.addPass("prefetch", specs, func(i int) error {
		spec := specs[i]
		run := func(v int) (cpu.Result, error) {
			mcfg := cpu.DefaultConfig()
			var p Factory
			switch v {
			case 1:
				mcfg.Prefetcher = prefetch.NewRPT(prefetch.DefaultRPTConfig())
			case 2:
				p = hybridFactory
			case 3:
				mcfg.Prefetcher = prefetch.NewRPT(prefetch.DefaultRPTConfig())
				p = hybridFactory
			}
			return runTimed(cfg, spec, mcfg, p, 0)
		}
		for v := 0; v < variants; v++ {
			r, err := run(v)
			if err != nil {
				return err
			}
			rows[i].cycles[v] = r.Cycles
			rows[i].l1[v] = r.L1HitRate
		}
		rows[i].done = true
		return nil
	})
	fails := g.run()

	var cycles [variants]int64
	var l1 [variants]float64
	survived := 0
	for _, r := range rows {
		if r.done {
			survived++
		}
	}
	for _, r := range rows {
		if !r.done {
			continue
		}
		for v := 0; v < variants; v++ {
			cycles[v] += r.cycles[v]
			l1[v] += r.l1[v] / float64(survived)
		}
	}
	names := []string{
		"baseline",
		"stride prefetch (RPT)",
		"hybrid address prediction",
		"prefetch + address prediction",
	}
	out := PrefetchResult{}
	out.absorb(g.size(), fails)
	for v := 0; v < variants; v++ {
		out.Names = append(out.Names, names[v])
		out.Speedups = append(out.Speedups, safeDiv(float64(cycles[0]), float64(cycles[v])))
		out.L1HitRate = append(out.L1HitRate, l1[v])
	}
	return out
}

// Table renders the prefetch comparison.
func (r PrefetchResult) Table() *report.Table {
	t := report.New("§1.1: data prefetching vs address prediction (timing model)",
		"configuration", "speedup", "avg L1 hit rate")
	for i, n := range r.Names {
		t.Add(n, report.Speedup(r.Speedups[i]), report.Pct(r.L1HitRate[i]))
	}
	t.SetFooter(r.Footer())
	return t
}
