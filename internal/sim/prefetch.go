package sim

import (
	"capred/internal/cpu"
	"capred/internal/prefetch"
	"capred/internal/report"
	"capred/internal/trace"
	"capred/internal/workload"
)

// PrefetchResult compares data prefetching with address prediction and
// with their combination ([Gonz97]: sharing stride structures for both)
// on the timing model.
type PrefetchResult struct {
	Names     []string
	Speedups  []float64 // over the no-prefetch, no-prediction baseline
	L1HitRate []float64
}

// Prefetch runs the §1.1 positioning experiment: a Baer/Chen stride
// prefetcher, the hybrid address predictor, and both together, against a
// plain baseline, over all 45 traces.
func Prefetch(cfg Config) PrefetchResult {
	specs := workload.Traces()
	const variants = 4

	type row struct {
		cycles [variants]int64
		l1     [variants]float64
	}
	rows := make([]row, len(specs))

	parallelFor(cfg, len(specs), func(i int) {
		spec := specs[i]
		run := func(v int) cpu.Result {
			mcfg := cpu.DefaultConfig()
			var p Factory
			switch v {
			case 1:
				mcfg.Prefetcher = prefetch.NewRPT(prefetch.DefaultRPTConfig())
			case 2:
				p = hybridFactory
			case 3:
				mcfg.Prefetcher = prefetch.NewRPT(prefetch.DefaultRPTConfig())
				p = hybridFactory
			}
			src := trace.NewLimit(spec.Open(), cfg.EventsPerTrace)
			if p == nil {
				return cpu.Run(src, nil, 0, mcfg)
			}
			return cpu.Run(src, p(), 0, mcfg)
		}
		for v := 0; v < variants; v++ {
			r := run(v)
			rows[i].cycles[v] = r.Cycles
			rows[i].l1[v] = r.L1HitRate
		}
	})

	var cycles [variants]int64
	var l1 [variants]float64
	for _, r := range rows {
		for v := 0; v < variants; v++ {
			cycles[v] += r.cycles[v]
			l1[v] += r.l1[v] / float64(len(rows))
		}
	}
	names := []string{
		"baseline",
		"stride prefetch (RPT)",
		"hybrid address prediction",
		"prefetch + address prediction",
	}
	out := PrefetchResult{}
	for v := 0; v < variants; v++ {
		out.Names = append(out.Names, names[v])
		out.Speedups = append(out.Speedups, float64(cycles[0])/float64(cycles[v]))
		out.L1HitRate = append(out.L1HitRate, l1[v])
	}
	return out
}

// Table renders the prefetch comparison.
func (r PrefetchResult) Table() *report.Table {
	t := report.New("§1.1: data prefetching vs address prediction (timing model)",
		"configuration", "speedup", "avg L1 hit rate")
	for i, n := range r.Names {
		t.Add(n, report.Speedup(r.Speedups[i]), report.Pct(r.L1HitRate[i]))
	}
	return t
}
