package prefetch

import "testing"

func TestRPTLearnsStride(t *testing.T) {
	r := NewRPT(DefaultRPTConfig())
	var issued []uint32
	for i := 0; i < 20; i++ {
		addr := uint32(0x1000 + 64*i)
		if pf, ok := r.Observe(0x100, addr); ok {
			issued = append(issued, pf)
		}
	}
	if len(issued) < 14 {
		t.Fatalf("issued only %d prefetches", len(issued))
	}
	// Prefetches must target the next stride.
	last := issued[len(issued)-1]
	if last != 0x1000+64*19+64 {
		t.Errorf("last prefetch = %#x, want next element", last)
	}
}

func TestRPTSilentOnRandom(t *testing.T) {
	r := NewRPT(DefaultRPTConfig())
	x := uint32(3)
	issued := 0
	for i := 0; i < 200; i++ {
		x = x*1664525 + 1013904223
		if _, ok := r.Observe(0x100, x&^3); ok {
			issued++
		}
	}
	if issued > 5 {
		t.Errorf("issued %d prefetches on random addresses", issued)
	}
}

func TestRPTZeroStrideSuppressed(t *testing.T) {
	r := NewRPT(DefaultRPTConfig())
	for i := 0; i < 20; i++ {
		if _, ok := r.Observe(0x100, 0x5000); ok {
			t.Fatal("constant address must not trigger prefetches")
		}
	}
}

func TestRPTDegree(t *testing.T) {
	cfg := DefaultRPTConfig()
	cfg.Degree = 4
	r := NewRPT(cfg)
	var pf uint32
	for i := 0; i < 10; i++ {
		if a, ok := r.Observe(0x100, uint32(0x2000+8*i)); ok {
			pf = a
		}
	}
	if pf != 0x2000+8*9+4*8 {
		t.Errorf("degree-4 prefetch = %#x", pf)
	}
}

func TestRPTConfidenceResetOnBreak(t *testing.T) {
	r := NewRPT(DefaultRPTConfig())
	for i := 0; i < 10; i++ {
		r.Observe(0x100, uint32(0x1000+8*i))
	}
	// Break the stride; the next observation must not prefetch.
	r.Observe(0x100, 0x9000)
	if _, ok := r.Observe(0x100, 0x9008); ok {
		t.Error("prefetch issued before confidence rebuilt")
	}
}

func TestRPTGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRPT(RPTConfig{Entries: 1000})
}

func TestNextLine(t *testing.T) {
	n := NewNextLine(32)
	if n.Name() != "next-line" {
		t.Error("name")
	}
	pf, ok := n.Observe(0x1, 0x1000)
	if !ok || pf != 0x1020 {
		t.Errorf("next-line prefetch = %#x ok=%v", pf, ok)
	}
	if NewNextLine(0).LineBytes != 32 {
		t.Error("default line size")
	}
}

func TestRPTName(t *testing.T) {
	if NewRPT(DefaultRPTConfig()).Name() != "rpt-stride" {
		t.Error("name")
	}
}
