// Package prefetch implements the hardware data prefetchers the paper's
// prior-art section positions address prediction against: the
// reference-prediction-table stride prefetcher of Baer and Chen
// ([Baer91]/[Chen95]), and the [Gonz97] observation that the same
// stride structures can serve address prediction and prefetching
// simultaneously. Unlike address prediction, a prefetch needs no recovery
// — it only warms the cache for a future reference.
package prefetch

// Prefetcher observes the resolved load stream and proposes addresses to
// bring into the cache ahead of their use.
type Prefetcher interface {
	// Observe trains on one resolved load and returns an address to
	// prefetch (ok=false when none).
	Observe(ip, addr uint32) (prefetchAddr uint32, ok bool)
	// Name identifies the prefetcher.
	Name() string
}

// RPTConfig configures the reference prediction table.
type RPTConfig struct {
	Entries int // direct-mapped table entries (power of two)
	// Degree is how many strides ahead to prefetch (1 = next reference).
	Degree int
	// MinConfidence is the steady-state count required before issuing
	// prefetches (two matching strides, like the paper's 2-bit schemes).
	MinConfidence uint8
}

// DefaultRPTConfig mirrors the classic Baer/Chen configuration.
func DefaultRPTConfig() RPTConfig {
	return RPTConfig{Entries: 4096, Degree: 1, MinConfidence: 2}
}

type rptEntry struct {
	last   uint32
	stride int32
	conf   uint8
	state  uint8 // 0 empty, 1 have-last, 2 have-stride
}

// RPT is the Baer/Chen stride prefetcher.
type RPT struct {
	cfg  RPTConfig
	tab  []rptEntry
	mask uint32
}

// NewRPT builds a reference prediction table.
func NewRPT(cfg RPTConfig) *RPT {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic("prefetch: RPT entries must be a power of two")
	}
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	return &RPT{cfg: cfg, tab: make([]rptEntry, cfg.Entries), mask: uint32(cfg.Entries - 1)}
}

// Name implements Prefetcher.
func (r *RPT) Name() string { return "rpt-stride" }

// Observe implements Prefetcher.
func (r *RPT) Observe(ip, addr uint32) (uint32, bool) {
	e := &r.tab[(ip>>2)&r.mask]
	defer func() { e.last = addr }()
	switch e.state {
	case 0:
		e.state = 1
		return 0, false
	case 1:
		e.stride = int32(addr - e.last)
		e.state = 2
		e.conf = 0
		return 0, false
	default:
		delta := int32(addr - e.last)
		if delta == e.stride {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			e.stride = delta
			e.conf = 0
		}
		if e.conf >= r.cfg.MinConfidence && e.stride != 0 {
			return addr + uint32(e.stride)*uint32(r.cfg.Degree), true
		}
		return 0, false
	}
}

// NextLine is the trivial sequential prefetcher (next cache line), the
// baseline any stride scheme must beat on strided code.
type NextLine struct {
	LineBytes uint32
}

// NewNextLine builds a next-line prefetcher.
func NewNextLine(lineBytes uint32) *NextLine {
	if lineBytes == 0 {
		lineBytes = 32
	}
	return &NextLine{LineBytes: lineBytes}
}

// Name implements Prefetcher.
func (n *NextLine) Name() string { return "next-line" }

// Observe implements Prefetcher.
func (n *NextLine) Observe(ip, addr uint32) (uint32, bool) {
	return addr + n.LineBytes, true
}
