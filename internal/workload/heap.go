package workload

import "math/rand"

// Heap is a simple bump allocator over a 32-bit address space, used by the
// behaviours to lay out data structures. Allocations carry small random
// padding so heap addresses exhibit the low-bit entropy of real allocators
// (malloc headers, size-class rounding) — the CAP link-table index is
// built from address LSBs, so this entropy matters.
type Heap struct {
	next  uint32
	limit uint32
	rng   *rand.Rand
}

// NewHeap returns a heap covering [base, base+size).
func NewHeap(base, size uint32, rng *rand.Rand) *Heap {
	return &Heap{next: base, limit: base + size, rng: rng}
}

// Alloc returns a 4-byte-aligned block of the given size, with up to 28
// bytes of random padding before it. It panics when the region is
// exhausted — workload authors size regions generously.
func (h *Heap) Alloc(size uint32) uint32 {
	pad := uint32(h.rng.Intn(8)) * 4
	addr := (h.next + pad + 3) &^ 3
	h.next = addr + size
	if h.next > h.limit {
		panic("workload: heap region exhausted")
	}
	return addr
}

// AllocNodes allocates n blocks of the given size and returns their base
// addresses in a shuffled order, emulating the fragmented layout of nodes
// allocated and freed over a program's lifetime. The traversal order of a
// linked structure built over these nodes is then address-irregular, as
// in the paper's §2.1 examples.
func (h *Heap) AllocNodes(n int, size uint32) []uint32 {
	addrs := make([]uint32, n)
	for i := range addrs {
		addrs[i] = h.Alloc(size)
	}
	h.rng.Shuffle(n, func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	return addrs
}

// Remaining reports how many bytes are left in the region.
func (h *Heap) Remaining() uint32 {
	if h.next >= h.limit {
		return 0
	}
	return h.limit - h.next
}
