package workload

import (
	"fmt"

	"capred/internal/trace"
)

// TraceSpec names one synthetic trace and knows how to build its
// generator. The 45 specs below stand in for the paper's 45 proprietary
// IA-32 traces, grouped into the same eight suites with per-suite
// behaviour mixes chosen to land in the same pattern-class proportions
// (see DESIGN.md §2).
type TraceSpec struct {
	Name  string // e.g. "INT_xli"
	Suite string // e.g. "INT"
	Seed  int64
	build func(g *Generator, variant int)
	index int // variant index within the suite
}

// Open builds a fresh streaming source for the trace. Sources from the
// same spec are bit-identical.
func (s TraceSpec) Open() trace.Source {
	g := NewGenerator(s.Seed)
	s.build(g, s.index)
	return g
}

// SuiteNames lists the eight suites in the paper's reporting order.
func SuiteNames() []string {
	return []string{"CAD", "GAM", "INT", "JAV", "MM", "NT", "TPC", "W95"}
}

var suiteBuilders = map[string]struct {
	traces []string
	build  func(g *Generator, variant int)
}{
	"CAD": {[]string{"cat", "mic"}, buildCAD},
	"GAM": {[]string{"duk", "fal", "mec", "qua"}, buildGAM},
	"INT": {[]string{"cmp", "gcc", "go", "ijp", "m88", "prl", "vtx", "xli"}, buildINT},
	"JAV": {[]string{"3dg", "aud", "cfc", "cwc", "cws"}, buildJAV},
	"MM":  {[]string{"aud", "ind", "ine", "mpa", "mpg", "mpv", "spc", "xdm"}, buildMM},
	"NT":  {[]string{"cdw", "exl", "frl", "pdx", "pmk", "pwp", "wdp", "wwd"}, buildNT},
	"TPC": {[]string{"t23", "t33", "tpb"}, buildTPC},
	"W95": {[]string{"cdw", "exl", "frl", "prx", "pwp", "wdp", "wwd"}, buildW95},
}

// Traces returns all 45 trace specs in suite order.
func Traces() []TraceSpec {
	var out []TraceSpec
	for _, suite := range SuiteNames() {
		out = append(out, BySuite(suite)...)
	}
	return out
}

// BySuite returns the specs of one suite.
func BySuite(suite string) []TraceSpec {
	sb, ok := suiteBuilders[suite]
	if !ok {
		panic(fmt.Sprintf("workload: unknown suite %q", suite))
	}
	out := make([]TraceSpec, len(sb.traces))
	for i, name := range sb.traces {
		out[i] = TraceSpec{
			Name:  suite + "_" + name,
			Suite: suite,
			Seed:  seedFor(suite, i),
			build: sb.build,
			index: i,
		}
	}
	return out
}

// ByName returns the spec with the given full name (e.g. "INT_xli").
func ByName(name string) (TraceSpec, bool) {
	for _, s := range Traces() {
		if s.Name == name {
			return s, true
		}
	}
	return TraceSpec{}, false
}

// seedFor derives a stable per-trace seed from the suite name and index.
func seedFor(suite string, i int) int64 {
	h := int64(1469598103934665603)
	for _, c := range suite {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h ^ int64(i)*2654435761
}

// Suite mixes. AddShare registers each behaviour with its target share of
// the trace's dynamic loads (units of percent), so the mixes below read as
// load-share budgets across the four pattern classes the paper analyses:
// constant (globals/stack), long stride (arrays), short context (lists,
// trees, call sites, short loops, recurring hash) and hard (random walks,
// random hash probes, huge mutating lists). The `variant` index perturbs
// sizes so a suite's traces differ beyond their seeds.

// buildINT models SPECint95: a broad mix — globals, stack frames,
// pointer-chasing lists and trees (xlisp, go), call-site-correlated
// functions, short loops, a few long arrays and some irregular traffic.
func buildINT(g *Generator, v int) {
	// Constant: 38
	g.AddShare(NewGlobalScalars(g, 10+v), 19)
	g.AddShare(NewGlobalScalars(g, 6), 9)
	g.AddShare(NewStackFrame(g, 6), 6)
	g.AddShare(NewStackFrame(g, 4), 4)
	// Long stride: 8
	g.AddShare(NewArrayWalk(g, 2000+300*v, 4, 8), 5)
	g.AddShare(NewArrayWalk(g, 700, 8, 8), 3)
	// Short context: 21
	g.AddShare(NewLinkedList(g, 6+v%3, 1), 6)
	g.AddShare(NewLinkedList(g, 10, 2), 4)
	g.AddShare(NewDoubleList(g, 8), 3)
	g.AddShare(NewBinaryTree(g, 31, 6), 4)
	g.AddShare(NewCallSites(g, 4, 5+v%2, 4), 5)
	g.AddShare(NewShortLoop(g, 7+v%4, 4), 3)
	g.AddShare(NewHashTable(g, 256, 12, false), 3)
	// Hard: 26
	g.AddShare(NewHashTable(g, 512, 0, true), 4)
	g.AddShare(NewRandomWalk(g, 1<<15), 11)
	g.AddShare(NewLinkedListOpts(g, 5000, 1, 40, 120), 11)
}

// buildCAD models CAD tools: large data sets, many static loads, high
// address volatility; prediction rates sit below the average.
func buildCAD(g *Generator, v int) {
	// Constant: 33
	for i := 0; i < 10; i++ {
		g.AddShare(NewGlobalScalars(g, 12), 2.4)
	}
	for i := 0; i < 8; i++ {
		g.AddShare(NewStackFrame(g, 5), 1.1)
	}
	// Long stride: 10
	g.AddShare(NewArrayWalk(g, 6000+1000*v, 8, 8), 6)
	g.AddShare(NewArrayWalk(g, 1500, 4, 8), 4)
	// Short context: 24
	g.AddShare(NewLinkedList(g, 8, 1), 4)
	g.AddShare(NewDoubleList(g, 7), 2)
	g.AddShare(NewBinaryTree(g, 63, 8), 5)
	g.AddShare(NewCallSites(g, 5, 6, 4), 6)
	g.AddShare(NewHashTable(g, 256, 16, false), 4)
	g.AddShare(NewShortLoop(g, 9, 4), 3)
	// Hard: 32
	g.AddShare(NewHashTable(g, 1024, 0, true), 5)
	g.AddShare(NewRandomWalk(g, 1<<15), 14)
	g.AddShare(NewLinkedListOpts(g, 6000, 1, 40, 120), 13)
}

// buildGAM models games (Quake et al.): geometry arrays plus entity lists.
func buildGAM(g *Generator, v int) {
	// Constant: 40
	g.AddShare(NewGlobalScalars(g, 14), 22)
	g.AddShare(NewGlobalScalars(g, 8), 8)
	g.AddShare(NewStackFrame(g, 5), 10)
	// Long stride: 12
	g.AddShare(NewArrayWalk(g, 4000+500*v, 16, 8), 7)
	g.AddShare(NewArrayWalk(g, 900, 8, 8), 5)
	// Short context: 26
	g.AddShare(NewShortLoop(g, 8, 8), 6)
	g.AddShare(NewLinkedList(g, 7+v, 1), 6)
	g.AddShare(NewBinaryTree(g, 31, 5), 4)
	g.AddShare(NewCallSites(g, 3, 4, 4), 5)
	g.AddShare(NewHashTable(g, 256, 10, false), 3)
	g.AddShare(NewDoubleList(g, 7), 2)
	// Hard: 22
	g.AddShare(NewHashTable(g, 512, 0, true), 3)
	g.AddShare(NewRandomWalk(g, 1<<15), 10)
	g.AddShare(NewLinkedListOpts(g, 4000, 1, 40, 120), 9)
}

// buildJAV models Java programs: stack-machine model, short procedures,
// short loops, call-site correlation; the most predictable suite.
func buildJAV(g *Generator, v int) {
	// Constant: 45
	g.AddShare(NewGlobalScalars(g, 8), 9)
	for i := 0; i < 6; i++ {
		g.AddShare(NewGlobalScalars(g, 8), 1)
	}
	for i := 0; i < 6; i++ {
		g.AddShare(NewStackFrame(g, 8), 3)
	}
	for i := 0; i < 6; i++ {
		g.AddShare(NewStackFrame(g, 5), 2)
	}
	// Long stride: 6
	g.AddShare(NewArrayWalk(g, 1200, 4, 8), 6)
	// Short context: 30
	g.AddShare(NewShortLoop(g, 6+v%3, 4), 8)
	g.AddShare(NewShortLoop(g, 10, 4), 5)
	g.AddShare(NewCallSites(g, 4, 4, 5), 8)
	g.AddShare(NewLinkedList(g, 6, 1), 5)
	g.AddShare(NewDoubleList(g, 6), 2)
	g.AddShare(NewHashTable(g, 256, 8, false), 3)
	// Hard: 19
	g.AddShare(NewHashTable(g, 512, 0, true), 4)
	g.AddShare(NewRandomWalk(g, 1<<15), 8)
	g.AddShare(NewLinkedListOpts(g, 3000, 1, 30, 120), 7)
}

// buildMM models MMX multimedia kernels: dominated by long strided array
// processing, which CAP's limited storage can hardly handle (§4.2).
func buildMM(g *Generator, v int) {
	// Constant: 25
	g.AddShare(NewGlobalScalars(g, 8), 15)
	g.AddShare(NewStackFrame(g, 4), 10)
	// Long stride: 40
	g.AddShare(NewArrayWalk(g, 16000+2000*v, 4, 12), 18)
	g.AddShare(NewArrayWalk(g, 8000, 8, 12), 13)
	g.AddShare(NewArrayWalk(g, 3000, 16, 8), 9)
	// Short context: 12
	g.AddShare(NewShortLoop(g, 16, 4), 5)
	g.AddShare(NewLinkedList(g, 6, 1), 4)
	g.AddShare(NewCallSites(g, 3, 4, 3), 3)
	// Hard: 23
	g.AddShare(NewHashTable(g, 512, 0, true), 5)
	g.AddShare(NewRandomWalk(g, 1<<15), 9)
	g.AddShare(NewLinkedListOpts(g, 4000, 1, 40, 120), 9)
}

// buildNT models NT desktop applications: a very large static code
// footprint contending for the LB, with a moderate irregular share.
func buildNT(g *Generator, v int) {
	// Constant: 38, spread over many instances for LB contention.
	for i := 0; i < 32; i++ {
		g.AddShare(NewGlobalScalars(g, 20), 0.8)
	}
	for i := 0; i < 20; i++ {
		g.AddShare(NewStackFrame(g, 8), 0.6)
	}
	// Long stride: 8
	g.AddShare(NewArrayWalk(g, 2500+400*v, 4, 8), 8)
	// Short context: 26
	for i := 0; i < 13; i++ {
		g.AddShare(NewCallSites(g, 4, 5, 6), 0.75)
	}
	g.AddShare(NewLinkedList(g, 8, 1), 4)
	g.AddShare(NewDoubleList(g, 8), 2)
	g.AddShare(NewBinaryTree(g, 63, 8), 4)
	g.AddShare(NewShortLoop(g, 8, 4), 3)
	g.AddShare(NewHashTable(g, 512, 20, false), 4)
	// Hard: 28
	g.AddShare(NewHashTable(g, 1024, 0, true), 5)
	g.AddShare(NewRandomWalk(g, 1<<15), 11)
	g.AddShare(NewLinkedListOpts(g, 5000, 1, 40, 120), 12)
}

// buildTPC models transaction processing: hash joins, index trees and
// random I/O buffers; the least predictable suite.
func buildTPC(g *Generator, v int) {
	// Constant: 30
	for i := 0; i < 16; i++ {
		g.AddShare(NewGlobalScalars(g, 16), 1.25)
	}
	for i := 0; i < 10; i++ {
		g.AddShare(NewStackFrame(g, 6), 1)
	}
	// Long stride: 5
	g.AddShare(NewArrayWalk(g, 3000, 8, 8), 5)
	// Short context: 20
	g.AddShare(NewBinaryTree(g, 127, 10+2*v), 6)
	g.AddShare(NewCallSites(g, 5, 6, 5), 5)
	g.AddShare(NewLinkedList(g, 20, 1), 3)
	g.AddShare(NewDoubleList(g, 9), 2)
	g.AddShare(NewHashTable(g, 512, 24, false), 4)
	// Hard: 45
	g.AddShare(NewHashTable(g, 2048, 0, true), 9)
	g.AddShare(NewRandomWalk(g, 1<<15), 18)
	g.AddShare(NewLinkedListOpts(g, 6000, 1, 50, 150), 18)
}

// buildW95 models Windows 95 desktop applications: like NT but with an
// even higher LB contention and irregular share.
func buildW95(g *Generator, v int) {
	// Constant: 38
	for i := 0; i < 33; i++ {
		g.AddShare(NewGlobalScalars(g, 20), 0.85)
	}
	for i := 0; i < 21; i++ {
		g.AddShare(NewStackFrame(g, 7), 0.45)
	}
	// Long stride: 5
	g.AddShare(NewArrayWalk(g, 2000+300*v, 4, 8), 5)
	// Short context: 22
	for i := 0; i < 13; i++ {
		g.AddShare(NewCallSites(g, 4, 5, 6), 0.6)
	}
	g.AddShare(NewLinkedList(g, 10, 1), 4)
	g.AddShare(NewDoubleList(g, 8), 2)
	g.AddShare(NewBinaryTree(g, 63, 8), 4)
	g.AddShare(NewShortLoop(g, 8, 4), 2)
	g.AddShare(NewHashTable(g, 512, 18, false), 3)
	// Hard: 36
	g.AddShare(NewHashTable(g, 1024, 0, true), 6)
	g.AddShare(NewRandomWalk(g, 1<<15), 14)
	g.AddShare(NewLinkedListOpts(g, 6000, 1, 40, 130), 16)
}
