package workload

// This file implements the program behaviours whose load-address patterns
// the paper analyses:
//
//	globalScalars   constant addresses (last-address predictable)
//	stackFrame      stable frame-pointer-relative locals (constant-ish)
//	arrayWalk       long strided traversals (stride predictable)
//	shortLoop       short, repeatedly executed stride runs (§4.3's JAVA
//	                inner loop: context predictable, stride-hostile)
//	linkedList      §2.1 recursive data structures (context predictable)
//	doubleList      §3.2 doubly linked list with alternating direction
//	binaryTree      repeated search paths over a pointer tree
//	callSites       §2.2 call-site-correlated function bodies
//	hashTable       computed addresses over a recurring key set
//	randomWalk      irregular pollution loads (unpredictable)

// globalScalars models reads of global variables and read-only constants.
type globalScalars struct {
	ipBase uint32
	addrs  []uint32
	tick   int
}

func NewGlobalScalars(g *Generator, n int) Behavior {
	b := &globalScalars{ipBase: g.ipBlock(4 * n), addrs: make([]uint32, n)}
	for i := range b.addrs {
		b.addrs[i] = g.heap.Alloc(8)
	}
	return b
}

func (b *globalScalars) step(g *Generator) {
	var accum int64 = -1
	for i, a := range b.addrs {
		ip := b.ipBase + uint32(16*i)
		// Value behaviour varies by variable: counters increment every
		// read burst, flags flip irregularly, the rest are stable data.
		var val uint32
		switch i % 4 {
		case 0:
			val = uint32(b.tick) // counter
		case 1:
			val = stableVal(a) ^ uint32(b.tick)&^7 // occasionally rewritten
		default:
			val = stableVal(a)
		}
		ld := g.loadVal(ip, a, 0, -1, val)
		accum = g.alu(ip+4, ld, accum, 1) // accumulate: sum += g_i
		g.alu(ip+8, ld, -1, 1)
	}
	b.tick++
	g.branch(b.ipBase+uint32(16*len(b.addrs)), b.ipBase, b.tick%8 != 0, -1)
}

// stackFrame models a leaf function reading locals and spilled arguments
// at fixed frame-pointer offsets: the frame address is stable across calls
// from a steady call depth, so the loads are constant per static IP.
type stackFrame struct {
	ipBase  uint32
	frame   uint32
	offsets []int32
	tick    int
}

func NewStackFrame(g *Generator, locals int) Behavior {
	b := &stackFrame{
		ipBase:  g.ipBlock(8 * locals),
		frame:   0xBFF0_0000 - uint32(g.rng.Intn(1<<14))*4,
		offsets: make([]int32, locals),
	}
	for i := range b.offsets {
		b.offsets[i] = int32(-4 * (i + 1))
	}
	return b
}

func (b *stackFrame) step(g *Generator) {
	g.call(b.ipBase, b.ipBase+8)
	b.tick++
	var accum int64 = -1
	for i, off := range b.offsets {
		ip := b.ipBase + 8 + uint32(12*i)
		// Locals and spilled arguments change between invocations.
		val := stableVal(b.frame+uint32(off)) ^ uint32(b.tick*(i+1))
		ld := g.loadVal(ip, b.frame+uint32(off), off, -1, val)
		accum = g.alu(ip+4, ld, accum, 1)
		g.alu(ip+8, ld, -1, 1)
	}
	g.ret(b.ipBase+4, b.ipBase+8+uint32(12*len(b.offsets)))
}

// arrayWalk linearly traverses a long array; the paper's MM suite is
// dominated by this class. The cursor persists across bursts.
type arrayWalk struct {
	ipBase   uint32
	base     uint32
	elemSize uint32
	length   int
	perBurst int
	pos      int
	idxDep   int64
	accumDep int64
}

func NewArrayWalk(g *Generator, length int, elemSize uint32, perBurst int) Behavior {
	return &arrayWalk{
		ipBase:   g.ipBlock(16),
		base:     g.heap.Alloc(uint32(length) * elemSize),
		elemSize: elemSize,
		length:   length,
		perBurst: perBurst,
		idxDep:   -1,
		accumDep: -1,
	}
}

func (b *arrayWalk) step(g *Generator) {
	for i := 0; i < b.perBurst; i++ {
		addr := b.base + uint32(b.pos)*b.elemSize
		idx := g.alu(b.ipBase, b.idxDep, -1, 1) // index increment
		b.idxDep = idx
		ld := g.load(b.ipBase+4, addr, 0, idx)
		b.accumDep = g.alu(b.ipBase+8, ld, b.accumDep, 1) // sum += a[i]
		b.pos++
		end := b.pos >= b.length
		g.branch(b.ipBase+12, b.ipBase, !end, idx)
		if end {
			b.pos = 0
		}
		// Rare data-dependent glitch: skip ahead, as when an element is
		// rejected by a condition — the stride predictor mispredicts once.
		if g.rng.Intn(1500) == 0 {
			b.pos = (b.pos + 1 + g.rng.Intn(4)) % b.length
		}
	}
}

// shortLoop is a short stride run executed start-to-finish every burst —
// the §4.3 JAVA inner loop: the wrap-around defeats stride confidence but
// the whole sequence is context predictable.
type shortLoop struct {
	ipBase   uint32
	base     uint32
	elemSize uint32
	length   int
}

func NewShortLoop(g *Generator, length int, elemSize uint32) Behavior {
	return &shortLoop{
		ipBase:   g.ipBlock(8),
		base:     g.heap.Alloc(uint32(length) * elemSize),
		elemSize: elemSize,
		length:   length,
	}
}

func (b *shortLoop) step(g *Generator) {
	n := b.length
	// Rare trip-count wobble, as when the loop bound is data dependent.
	if g.rng.Intn(100) == 0 {
		n += g.rng.Intn(3) - 1
		if n < 2 {
			n = 2
		}
	}
	var idxDep, accum int64 = -1, -1
	for i := 0; i < n; i++ {
		idx := g.alu(b.ipBase, idxDep, -1, 1)
		idxDep = idx
		ld := g.load(b.ipBase+4, b.base+uint32(i)*b.elemSize, 0, idx)
		accum = g.alu(b.ipBase+8, ld, accum, 1)
		g.branch(b.ipBase+12, b.ipBase, i+1 < n, idx)
	}
}

// listNode field offsets, shared by the pointer-chasing behaviours. The
// layouts mirror the paper's figures 1 and 2.
const (
	offVal  = 0
	offNext = 8
	offPrev = 12
)

// linkedList models §2.1: a singly linked list over shuffled heap nodes,
// traversed in full each burst. Each visit loads the data field and the
// next pointer from the same base (global correlation across the two
// static loads), with the next-pointer load address-dependent on the
// previous one (pointer chase).
type linkedList struct {
	ipBase  uint32
	nodes   []uint32 // traversal order
	fields  int      // extra data fields loaded per node (≥ 1)
	window  int      // nodes visited per burst (0 = whole list)
	cursor  int
	churnPm int // per-mille chance per burst of a node swap (mutation)
}

func NewLinkedList(g *Generator, length, fields int) Behavior {
	return NewLinkedListOpts(g, length, fields, 0, 10)
}

// newLinkedListOpts exposes windowed traversal (for lists far longer than
// a burst should be) and list mutation churn (insert/delete modelled as a
// swap of two nodes, which breaks the learned links once).
func NewLinkedListOpts(g *Generator, length, fields, window, churnPm int) Behavior {
	return &linkedList{
		ipBase:  g.ipBlock(16 + 4*fields),
		nodes:   g.heap.AllocNodes(length, 16),
		fields:  fields,
		window:  window,
		churnPm: churnPm,
	}
}

func (b *linkedList) step(g *Generator) {
	if b.churnPm > 0 && g.rng.Intn(1000) < b.churnPm {
		i, j := g.rng.Intn(len(b.nodes)), g.rng.Intn(len(b.nodes))
		b.nodes[i], b.nodes[j] = b.nodes[j], b.nodes[i]
	}
	count := b.window
	if count <= 0 || count > len(b.nodes) {
		count = len(b.nodes)
	}
	var chase int64 = -1
	for n := 0; n < count; n++ {
		node := b.nodes[b.cursor]
		for f := 0; f < b.fields; f++ {
			off := int32(offVal + 4*f)
			ld := g.load(b.ipBase+uint32(16*f), node+uint32(off), off, chase)
			g.consumers(b.ipBase+uint32(16*f)+4, ld, 2)
		}
		nextIdx := b.cursor + 1
		if nextIdx >= len(b.nodes) {
			nextIdx = 0
		}
		// The next-pointer load returns the successor's base address.
		next := g.loadVal(b.ipBase+64, node+offNext, offNext, chase, b.nodes[nextIdx])
		chase = next
		g.alu(b.ipBase+68, next, -1, 1)
		b.cursor++
		atEnd := b.cursor >= len(b.nodes)
		g.branch(b.ipBase+72, b.ipBase, !atEnd, next)
		if atEnd {
			b.cursor = 0
		}
	}
}

// doubleList models §3.2's figure 2: a doubly linked list walked forward
// then backward, so the data-field load needs two addresses of history to
// know the direction.
type doubleList struct {
	ipBase  uint32
	nodes   []uint32
	forward bool
}

func NewDoubleList(g *Generator, length int) Behavior {
	return &doubleList{
		ipBase:  g.ipBlock(16),
		nodes:   g.heap.AllocNodes(length, 16),
		forward: true,
	}
}

func (b *doubleList) step(g *Generator) {
	order := b.nodes
	ptrOff := int32(offNext)
	if !b.forward {
		ptrOff = offPrev
		order = make([]uint32, len(b.nodes))
		for i, n := range b.nodes {
			order[len(b.nodes)-1-i] = n
		}
	}
	var chase int64 = -1
	for i, node := range order {
		ld := g.load(b.ipBase, node+offVal, offVal, chase)
		g.consumers(b.ipBase+4, ld, 2)
		neighbour := node
		if i+1 < len(order) {
			neighbour = order[i+1]
		}
		ptr := g.loadVal(b.ipBase+12, node+uint32(ptrOff), ptrOff, chase, neighbour)
		chase = ptr
		g.alu(b.ipBase+16, ptr, -1, 1)
		g.branch(b.ipBase+20, b.ipBase, i+1 < len(order), ptr)
	}
	b.forward = !b.forward
}

// binaryTree models repeated searches over a pointer tree: a small set of
// keys is probed in a recurring order, so each root-to-node path repeats.
type binaryTree struct {
	ipBase uint32
	nodes  []uint32 // heap addresses, tree shaped by index arithmetic
	paths  [][]int  // node-index paths probed in rotation
	turn   int
}

func NewBinaryTree(g *Generator, size, nQueries int) Behavior {
	b := &binaryTree{
		ipBase: g.ipBlock(16),
		nodes:  g.heap.AllocNodes(size, 24),
	}
	// Build nQueries recurring root-to-leaf paths over the implicit
	// heap-index tree (children of i are 2i+1, 2i+2).
	for q := 0; q < nQueries; q++ {
		var path []int
		i := 0
		for i < size {
			path = append(path, i)
			if g.rng.Intn(2) == 0 {
				i = 2*i + 1
			} else {
				i = 2*i + 2
			}
		}
		b.paths = append(b.paths, path)
	}
	return b
}

func (b *binaryTree) step(g *Generator) {
	// Occasionally a query changes: rebuild one recurring path.
	if g.rng.Intn(250) == 0 {
		q := g.rng.Intn(len(b.paths))
		var path []int
		i := 0
		for i < len(b.nodes) {
			path = append(path, i)
			if g.rng.Intn(2) == 0 {
				i = 2*i + 1
			} else {
				i = 2*i + 2
			}
		}
		b.paths[q] = path
	}
	path := b.paths[b.turn]
	b.turn = (b.turn + 1) % len(b.paths)
	var chase int64 = -1
	for step, idx := range path {
		node := b.nodes[idx]
		key := g.load(b.ipBase, node+offVal, offVal, chase)
		g.consumers(b.ipBase+4, key, 2) // compare chain
		left := step+1 < len(path) && path[step+1] == 2*idx+1
		off := int32(offNext) // left child pointer
		if !left {
			off = offPrev // right child pointer
		}
		child := node
		if step+1 < len(path) {
			child = b.nodes[path[step+1]]
		}
		ptr := g.loadVal(b.ipBase+12, node+uint32(off), off, chase, child)
		chase = ptr
		g.alu(b.ipBase+16, ptr, -1, 1)
		g.branch(b.ipBase+20, b.ipBase, step+1 < len(path), key)
	}
}

// callSites models §2.2: a function called from several sites in a
// recurring pattern (xlmatch's a-c-u-a); its loads read per-site argument
// blocks, so addresses correlate with the call site, not with any stride.
type callSites struct {
	ipBase  uint32 // callee code
	siteIPs []uint32
	argMem  []uint32 // per-site argument block
	pattern []int    // recurring site sequence
	pos     int
	nLoads  int
}

func NewCallSites(g *Generator, sites, patternLen, nLoads int) Behavior {
	b := &callSites{
		ipBase:  g.ipBlock(4 * (nLoads + 4)),
		siteIPs: make([]uint32, sites),
		argMem:  make([]uint32, sites),
		pattern: make([]int, patternLen),
		nLoads:  nLoads,
	}
	for i := range b.siteIPs {
		b.siteIPs[i] = g.ipBlock(4)
		b.argMem[i] = g.heap.Alloc(64)
	}
	for i := range b.pattern {
		b.pattern[i] = g.rng.Intn(sites)
	}
	// Double one site, as in the paper's xlmatch example (xaref calls the
	// function twice in a row: A1 A1 C U A2 A2). The repeat makes the
	// per-load address sequence ambiguous under a one-address history.
	if patternLen >= 2 {
		i := g.rng.Intn(patternLen - 1)
		b.pattern[i+1] = b.pattern[i]
	}
	return b
}

func (b *callSites) step(g *Generator) {
	// Occasional control-flow drift: one pattern slot is re-drawn, as
	// when the caller mix shifts with program phase.
	if g.rng.Intn(200) == 0 {
		b.pattern[g.rng.Intn(len(b.pattern))] = g.rng.Intn(len(b.siteIPs))
	}
	site := b.pattern[b.pos]
	b.pos = (b.pos + 1) % len(b.pattern)
	g.call(b.siteIPs[site], b.ipBase)
	// Site-correlated branch inside the callee keeps the GHR informative.
	g.branch(b.ipBase, b.ipBase+16, site%2 == 0, -1)
	var accum int64 = -1
	for i := 0; i < b.nLoads; i++ {
		off := int32(4 * i)
		ip := b.ipBase + 4 + uint32(8*i)
		ld := g.load(ip, b.argMem[site]+uint32(off), off, -1)
		accum = g.alu(ip+4, ld, accum, 1)
		g.alu(ip+8, ld, -1, 1)
	}
	g.ret(b.ipBase+4+uint32(8*b.nLoads), b.siteIPs[site]+4)
}

// hashTable models computed-address accesses: keys drawn from a recurring
// sequence are hashed into bucket heads and one chain node is chased. With
// a short key pattern the sequence is context predictable; with a long or
// random one it pollutes predictors (the paper's aliasing discussion in
// §3.3 uses exactly hash-table loads).
type hashTable struct {
	ipBase    uint32
	buckets   uint32 // bucket array base
	nBuckets  uint32
	chainMem  []uint32
	keys      []uint32
	pos       int
	tick      int
	randomise bool
}

func NewHashTable(g *Generator, nBuckets, keyCycle int, randomise bool) Behavior {
	b := &hashTable{
		ipBase:    g.ipBlock(16),
		buckets:   g.heap.Alloc(uint32(nBuckets) * 8),
		nBuckets:  uint32(nBuckets),
		chainMem:  g.heap.AllocNodes(nBuckets, 16),
		keys:      make([]uint32, keyCycle),
		randomise: randomise,
	}
	for i := range b.keys {
		b.keys[i] = g.rng.Uint32()
	}
	return b
}

func (b *hashTable) step(g *Generator) {
	var key uint32
	if b.randomise {
		key = g.rng.Uint32()
	} else {
		if g.rng.Intn(150) == 0 {
			b.keys[g.rng.Intn(len(b.keys))] = g.rng.Uint32()
		}
		key = b.keys[b.pos]
		b.pos = (b.pos + 1) % len(b.keys)
	}
	h := key * 2654435761 % b.nBuckets
	hash := g.alu(b.ipBase, -1, -1, 2)
	head := g.loadVal(b.ipBase+4, b.buckets+h*8, 0, hash, b.chainMem[h])
	node := g.loadVal(b.ipBase+8, b.chainMem[h]+offVal, offVal, head, key)
	g.consumers(b.ipBase+12, node, 3)
	b.tick++
	g.branch(b.ipBase+24, b.ipBase, b.tick%8 != 0, node)
}

// randomWalk emits loads at uniformly random heap addresses: the
// never-recurring pollution traffic §3.5's PF bits defend against.
type randomWalk struct {
	ipBase uint32
	span   uint32
	base   uint32
	tick   int
}

func NewRandomWalk(g *Generator, span uint32) Behavior {
	return &randomWalk{ipBase: g.ipBlock(8), span: span, base: g.heap.Alloc(64)}
}

func (b *randomWalk) step(g *Generator) {
	for i := 0; i < 4; i++ {
		addr := (b.base + g.rng.Uint32()%b.span) &^ 3
		ld := g.loadVal(b.ipBase, addr, 0, -1, g.rng.Uint32())
		g.consumers(b.ipBase+4, ld, 2)
	}
	b.tick++
	g.branch(b.ipBase+12, b.ipBase, b.tick%5 != 0, -1)
}

// loadsPerBurst implementations: the dynamic-load cost of one step call,
// used by Generator.AddShare to convert target shares into weights.

func (b *globalScalars) loadsPerBurst() int { return len(b.addrs) }

func (b *stackFrame) loadsPerBurst() int { return len(b.offsets) }

func (b *arrayWalk) loadsPerBurst() int { return b.perBurst }

func (b *shortLoop) loadsPerBurst() int { return b.length }

func (b *linkedList) loadsPerBurst() int {
	count := b.window
	if count <= 0 || count > len(b.nodes) {
		count = len(b.nodes)
	}
	return count * (b.fields + 1)
}

func (b *doubleList) loadsPerBurst() int { return 2 * len(b.nodes) }

func (b *binaryTree) loadsPerBurst() int {
	total := 0
	for _, p := range b.paths {
		total += 2 * len(p)
	}
	return total / len(b.paths)
}

func (b *callSites) loadsPerBurst() int { return b.nLoads }

func (b *hashTable) loadsPerBurst() int { return 2 }

func (b *randomWalk) loadsPerBurst() int { return 4 }
