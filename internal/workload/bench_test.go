package workload

import (
	"bytes"
	"testing"

	"capred/internal/trace"
)

// The drain benchmarks compare the three ways a driver can consume one
// trace's events: re-running the workload generator (what every open
// cost before the replay cache), decoding the cached encoding through
// the io.Reader-based file decoder, and a replay cursor over the
// in-memory encoding. The cursor must beat the generator for the cache
// to pay off — a cache that replays slower than regeneration is pure
// memory overhead.

const benchEvents = 400_000

func openGen() trace.Source {
	spec, _ := ByName("INT_go")
	return trace.NewLimit(spec.Open(), benchEvents)
}

func drain(b *testing.B, src trace.Source, buf []trace.Event) {
	b.Helper()
	bs := trace.AsBatch(src)
	for {
		_, ok := bs.NextBatch(buf)
		if !ok {
			break
		}
	}
	if err := src.Err(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkDrainGenerator(b *testing.B) {
	b.ReportAllocs()
	buf := make([]trace.Event, 1024)
	for i := 0; i < b.N; i++ {
		drain(b, openGen(), buf)
	}
}

func BenchmarkDrainCachedReader(b *testing.B) {
	var enc bytes.Buffer
	w := trace.NewWriter(&enc)
	src := trace.AsBatch(openGen())
	buf := make([]trace.Event, 1024)
	for {
		n, ok := src.NextBatch(buf)
		for _, ev := range buf[:n] {
			if err := w.Emit(ev); err != nil {
				b.Fatal(err)
			}
		}
		if !ok {
			break
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	data := enc.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, trace.NewReader(bytes.NewReader(data)), buf)
	}
}

func BenchmarkDrainReplayCursor(b *testing.B) {
	c := trace.NewReplayCache(0)
	open := func() trace.Source { return openGen() }
	c.Open("k", open) // materialise once, outside the timed region
	buf := make([]trace.Event, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, c.Open("k", open), buf)
	}
}
