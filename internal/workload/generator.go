// Package workload synthesises instruction traces that reproduce the load
// address-pattern classes the paper's evaluation traces exhibit (§2):
// constant/global scalars, stack frames, strided array walks, recursive
// data structures (linked lists, doubly linked lists, binary trees),
// call-site-correlated function bodies, hash tables and irregular walks.
//
// A Generator interleaves behaviour instances with a seeded weighted
// scheduler and implements trace.Source, so experiments can stream
// arbitrarily long traces without materialising them. The 45 named traces
// of the paper's eight suites are defined in suites.go.
package workload

import (
	"math/rand"

	"capred/internal/trace"
)

// Behavior is one simulated program component. Each step call emits a
// bounded burst of events (for example one loop iteration) into the
// generator.
type Behavior interface {
	step(g *Generator)
	// loadsPerBurst estimates how many dynamic loads one step emits, so
	// the scheduler can convert target load shares into pick weights.
	loadsPerBurst() int
}

// Generator interleaves behaviours into a single instruction stream.
type Generator struct {
	rng   *rand.Rand
	heap  *Heap
	buf   []trace.Event
	pos   int   // read position in buf
	abs   int64 // absolute index of the next event to be emitted
	comps []weightedBehavior
	total int
	ipTop uint32 // next static-code block to hand out
}

type weightedBehavior struct {
	b Behavior
	w int
}

// NewGenerator creates an empty generator with the given seed. Behaviours
// are added with Add; the stream is then consumed via trace.Source.
func NewGenerator(seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		rng:   rng,
		heap:  NewHeap(0x1000_0000, 0xD000_0000, rng),
		ipTop: 0x0040_0000,
	}
}

// RNG exposes the generator's seeded random source to behaviours.
func (g *Generator) RNG() *rand.Rand { return g.rng }

// Heap exposes the generator's data address space.
func (g *Generator) Heap() *Heap { return g.heap }

// Add registers a behaviour with a scheduling weight: on each refill the
// generator picks one behaviour with probability weight/total and emits
// one burst from it.
func (g *Generator) Add(b Behavior, weight int) {
	if weight <= 0 {
		panic("workload: behaviour weight must be positive")
	}
	g.comps = append(g.comps, weightedBehavior{b: b, w: weight})
	g.total += weight
}

// AddShare registers a behaviour so that it contributes approximately the
// given share (in load-share units, e.g. 12.5) of the trace's dynamic
// loads, by dividing out the behaviour's burst size.
func (g *Generator) AddShare(b Behavior, share float64) {
	lpb := b.loadsPerBurst()
	if lpb < 1 {
		lpb = 1
	}
	w := int(share*100/float64(lpb) + 0.5)
	if w < 1 {
		w = 1
	}
	g.Add(b, w)
}

// ipBlock hands out a fresh static-code region of the given instruction
// count; behaviours derive their static IPs from it.
func (g *Generator) ipBlock(slots int) uint32 {
	base := g.ipTop
	g.ipTop += uint32(slots) * 4
	return base
}

// Next implements trace.Source.
func (g *Generator) Next() (trace.Event, bool) {
	for g.pos >= len(g.buf) {
		if g.total == 0 {
			return trace.Event{}, false
		}
		g.buf = g.buf[:0]
		g.pos = 0
		g.pick().step(g)
	}
	ev := g.buf[g.pos]
	g.pos++
	return ev, true
}

// NextBatch implements trace.BatchSource: it copies whole behaviour
// bursts out of the refill buffer per call, so the hot replay loops pay
// one call per burst instead of one interface dispatch per event.
func (g *Generator) NextBatch(dst []trace.Event) (int, bool) {
	if g.total == 0 {
		return 0, false
	}
	var n int
	for n < len(dst) {
		if g.pos >= len(g.buf) {
			if n > 0 {
				// Batch boundary at a burst boundary: return what we have
				// rather than paying a refill mid-call.
				return n, true
			}
			g.buf = g.buf[:0]
			g.pos = 0
			g.pick().step(g)
			continue
		}
		c := copy(dst[n:], g.buf[g.pos:])
		g.pos += c
		n += c
	}
	return n, true
}

// Err implements trace.Source; generation never fails.
func (g *Generator) Err() error { return nil }

func (g *Generator) pick() Behavior {
	n := g.rng.Intn(g.total)
	for _, c := range g.comps {
		if n < c.w {
			return c.b
		}
		n -= c.w
	}
	panic("workload: unreachable scheduler state")
}

// emit appends an event and returns its absolute stream index, which
// behaviours use to express dependency distances.
func (g *Generator) emit(ev trace.Event) int64 {
	g.buf = append(g.buf, ev)
	idx := g.abs
	g.abs++
	return idx
}

// dist converts a producer's absolute index into the distance field of an
// event emitted right now; zero producers map to "no dependency".
func (g *Generator) dist(producer int64) uint32 {
	if producer < 0 {
		return 0
	}
	d := g.abs - producer
	if d <= 0 || d > 1<<30 {
		return 0
	}
	return uint32(d)
}

// Emission helpers shared by behaviours.

// alu emits an ALU op with up to two dependencies and returns its index.
func (g *Generator) alu(ip uint32, src1, src2 int64, lat uint8) int64 {
	return g.emit(trace.Event{
		Kind: trace.KindALU, IP: ip,
		Src1: g.dist(src1), Src2: g.dist(src2), Lat: lat,
	})
}

// stableVal derives a deterministic "memory content" for an address, used
// as the default loaded value: re-reading an unmodified location returns
// the same value, as in a real memory image.
func stableVal(addr uint32) uint32 {
	return addr*2654435761 ^ 0x9e3779b9
}

// load emits a load whose address was produced by addrDep (-1 for none)
// and returns its index. The loaded value defaults to the stable memory
// content of the address.
func (g *Generator) load(ip, addr uint32, offset int32, addrDep int64) int64 {
	return g.loadVal(ip, addr, offset, addrDep, stableVal(addr))
}

// loadVal emits a load with an explicit loaded value — pointer fields
// return the pointee's address, counters return incrementing values, and
// volatile data returns whatever the program last stored.
func (g *Generator) loadVal(ip, addr uint32, offset int32, addrDep int64, val uint32) int64 {
	return g.emit(trace.Event{
		Kind: trace.KindLoad, IP: ip, Addr: addr, Val: val, Offset: offset,
		Src1: g.dist(addrDep),
	})
}

// store emits a store of a value produced by valDep to addr.
func (g *Generator) store(ip, addr uint32, offset int32, valDep int64) int64 {
	return g.emit(trace.Event{
		Kind: trace.KindStore, IP: ip, Addr: addr, Offset: offset,
		Src1: g.dist(valDep),
	})
}

// branch emits a conditional branch depending on condDep.
func (g *Generator) branch(ip, target uint32, taken bool, condDep int64) int64 {
	return g.emit(trace.Event{
		Kind: trace.KindBranch, IP: ip, Addr: target, Taken: taken,
		Src1: g.dist(condDep),
	})
}

// call and ret emit control transfers used for path history.
func (g *Generator) call(ip, target uint32) int64 {
	return g.emit(trace.Event{Kind: trace.KindCall, IP: ip, Addr: target})
}

func (g *Generator) ret(ip, target uint32) int64 {
	return g.emit(trace.Event{Kind: trace.KindReturn, IP: ip, Addr: target})
}

// consumers emits n dependent ALU ops consuming the value produced at
// producer, modelling the instructions fed by a load.
func (g *Generator) consumers(ip uint32, producer int64, n int) {
	prev := producer
	for i := 0; i < n; i++ {
		prev = g.alu(ip+uint32(4*i), prev, -1, 1)
	}
}
