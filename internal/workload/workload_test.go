package workload

import (
	"testing"

	"capred/internal/trace"
)

func collectN(t *testing.T, src trace.Source, n int64) []trace.Event {
	t.Helper()
	lim := trace.NewLimit(src, n)
	var out []trace.Event
	for {
		ev, ok := lim.Next()
		if !ok {
			break
		}
		out = append(out, ev)
	}
	if err := lim.Err(); err != nil {
		t.Fatalf("source error: %v", err)
	}
	return out
}

func TestGeneratorDeterministic(t *testing.T) {
	spec, ok := ByName("INT_xli")
	if !ok {
		t.Fatal("INT_xli missing")
	}
	a := collectN(t, spec.Open(), 5000)
	b := collectN(t, spec.Open(), 5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTracesCompleteRoster(t *testing.T) {
	all := Traces()
	if len(all) != 45 {
		t.Fatalf("Traces() returned %d specs, want 45 (the paper's roster)", len(all))
	}
	wantCounts := map[string]int{
		"CAD": 2, "GAM": 4, "INT": 8, "JAV": 5,
		"MM": 8, "NT": 8, "TPC": 3, "W95": 7,
	}
	got := map[string]int{}
	names := map[string]bool{}
	for _, s := range all {
		got[s.Suite]++
		if names[s.Name] {
			t.Errorf("duplicate trace name %s", s.Name)
		}
		names[s.Name] = true
	}
	for suite, n := range wantCounts {
		if got[suite] != n {
			t.Errorf("suite %s has %d traces, want %d", suite, got[suite], n)
		}
	}
}

func TestDistinctSeedsAcrossTraces(t *testing.T) {
	seeds := map[int64]string{}
	for _, s := range Traces() {
		if other, dup := seeds[s.Seed]; dup {
			t.Errorf("traces %s and %s share seed %d", s.Name, other, s.Seed)
		}
		seeds[s.Seed] = s.Name
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("NOPE_zzz"); ok {
		t.Error("ByName should fail for unknown trace")
	}
}

func TestBySuiteUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BySuite should panic for unknown suite")
		}
	}()
	BySuite("NOPE")
}

func TestEveryTraceProducesSaneEvents(t *testing.T) {
	for _, spec := range Traces() {
		evs := collectN(t, spec.Open(), 20000)
		if len(evs) != 20000 {
			t.Errorf("%s: produced only %d events", spec.Name, len(evs))
			continue
		}
		var loads, branches int
		for i, ev := range evs {
			if !ev.Kind.Valid() {
				t.Errorf("%s: invalid event kind at %d", spec.Name, i)
				break
			}
			switch ev.Kind {
			case trace.KindLoad:
				loads++
				if ev.Addr == 0 {
					t.Errorf("%s: load with zero address at %d", spec.Name, i)
				}
				if ev.Src1 != 0 && int(ev.Src1) > i {
					t.Errorf("%s: dependency before start of trace at %d", spec.Name, i)
				}
			case trace.KindBranch:
				branches++
			}
		}
		// Load density should be in a plausible 15–45% band.
		share := float64(loads) / float64(len(evs))
		if share < 0.15 || share > 0.45 {
			t.Errorf("%s: load share %.2f outside [0.15, 0.45]", spec.Name, share)
		}
		if branches == 0 {
			t.Errorf("%s: no branches (GHR would starve)", spec.Name)
		}
	}
}

func TestGeneratorStatsClassesPresent(t *testing.T) {
	// The INT mix must contain all three coarse pattern classes.
	spec, _ := ByName("INT_gcc")
	s, err := trace.Collect(trace.NewLimit(spec.Open(), 60000))
	if err != nil {
		t.Fatal(err)
	}
	// Strict per-IP stride classification is rare once churn is on (one
	// glitch reclassifies a load), so require the two robust classes and
	// a consistent total.
	if s.ConstantLoads == 0 || s.OtherLoads == 0 {
		t.Errorf("INT_gcc misses a pattern class: %+v", s)
	}
	if s.ConstantLoads+s.StrideLoads+s.OtherLoads != s.LoadIPs {
		t.Errorf("classification does not partition static loads: %+v", s)
	}
}

func TestSuiteFootprints(t *testing.T) {
	// NT and W95 must have markedly more static loads than JAV — the
	// paper attributes their lower prediction rates to LB contention.
	count := func(name string) int {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		s, err := trace.Collect(trace.NewLimit(spec.Open(), 120000))
		if err != nil {
			t.Fatal(err)
		}
		return s.LoadIPs
	}
	nt, jav := count("NT_cdw"), count("JAV_aud")
	if nt < jav*2 {
		t.Errorf("NT static-load footprint (%d) should dwarf JAV's (%d)", nt, jav)
	}
}

func TestHeapAlloc(t *testing.T) {
	g := NewGenerator(1)
	h := g.Heap()
	seen := map[uint32]bool{}
	prev := uint32(0)
	for i := 0; i < 100; i++ {
		a := h.Alloc(16)
		if a%4 != 0 {
			t.Fatalf("allocation %#x not 4-byte aligned", a)
		}
		if seen[a] {
			t.Fatalf("allocation %#x returned twice", a)
		}
		if a < prev {
			t.Fatalf("bump allocator went backwards: %#x after %#x", a, prev)
		}
		seen[a] = true
		prev = a
	}
	if h.Remaining() == 0 {
		t.Error("heap exhausted far too early")
	}
}

func TestHeapAllocNodesShuffled(t *testing.T) {
	g := NewGenerator(2)
	nodes := g.Heap().AllocNodes(64, 16)
	if len(nodes) != 64 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	sortedRuns := 0
	for i := 1; i < len(nodes); i++ {
		if nodes[i] > nodes[i-1] {
			sortedRuns++
		}
	}
	// A shuffled list should be far from monotone.
	if sortedRuns > 50 {
		t.Errorf("node addresses look unshuffled (%d/63 ascending steps)", sortedRuns)
	}
}

func TestHeapExhaustionPanics(t *testing.T) {
	g := NewGenerator(3)
	h := NewHeap(0x1000, 64, g.RNG())
	defer func() {
		if recover() == nil {
			t.Error("expected panic on heap exhaustion")
		}
	}()
	for i := 0; i < 10; i++ {
		h.Alloc(32)
	}
}

func TestAddRejectsNonPositiveWeight(t *testing.T) {
	g := NewGenerator(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for weight 0")
		}
	}()
	g.Add(NewRandomWalk(g, 1024), 0)
}

func TestEmptyGeneratorEndsImmediately(t *testing.T) {
	g := NewGenerator(5)
	if _, ok := g.Next(); ok {
		t.Error("empty generator should produce no events")
	}
	if g.Err() != nil {
		t.Error("empty generator should not error")
	}
}

func TestAddShareConvertsBurstSizes(t *testing.T) {
	// Two behaviours at equal shares but very different burst sizes must
	// contribute comparable dynamic load counts.
	g := NewGenerator(99)
	list := NewLinkedList(g, 10, 1) // 20 loads per burst
	hash := NewHashTable(g, 256, 8, false)
	g.AddShare(list, 50)
	g.AddShare(hash, 50)
	// The list behaviour received the first static-code block, the hash
	// the second; split counts at the boundary between them.
	const boundary = 0x0040_0000 + 4*(16+4) // list ipBlock size
	var listLoads, hashLoads int64
	lim := trace.NewLimit(g, 200_000)
	for {
		ev, ok := lim.Next()
		if !ok {
			break
		}
		if ev.Kind == trace.KindLoad {
			if ev.IP < boundary {
				listLoads++
			} else {
				hashLoads++
			}
		}
	}
	if listLoads == 0 || hashLoads == 0 {
		t.Fatal("one behaviour produced no loads")
	}
	ratio := float64(listLoads) / float64(hashLoads)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("equal shares should balance dynamic loads: list=%d hash=%d",
			listLoads, hashLoads)
	}
}

func TestPointerLoadsCarryPointeeValues(t *testing.T) {
	// The next-pointer load of a linked list must return the address the
	// traversal visits next — the invariant value prediction relies on.
	g := NewGenerator(7)
	g.Add(NewLinkedList(g, 6, 1), 1)
	lim := trace.NewLimit(g, 4000)
	type lastLoad struct {
		addr, val uint32
	}
	var prevNext *lastLoad
	checked := 0
	for {
		ev, ok := lim.Next()
		if !ok {
			break
		}
		if ev.Kind != trace.KindLoad {
			continue
		}
		if ev.Offset == offNext {
			if prevNext != nil && prevNext.val != 0 {
				// The next visit's base must equal the loaded pointer.
				base := ev.Addr - uint32(offNext)
				if base != prevNext.val {
					t.Fatalf("pointer value %#x does not match next node base %#x",
						prevNext.val, base)
				}
				checked++
			}
			prevNext = &lastLoad{ev.Addr, ev.Val}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d pointer hops verified", checked)
	}
}

func TestLoadValuesStableForCleanAddresses(t *testing.T) {
	// Re-reading an unmodified global returns the same value across the
	// trace (the stableVal contract).
	spec, _ := ByName("GAM_duk")
	lim := trace.NewLimit(spec.Open(), 100_000)
	vals := map[uint32]uint32{}
	conflicts := 0
	total := 0
	for {
		ev, ok := lim.Next()
		if !ok {
			break
		}
		if ev.Kind != trace.KindLoad {
			continue
		}
		total++
		if v, seen := vals[ev.Addr]; seen {
			if v != ev.Val {
				conflicts++
			}
		} else {
			vals[ev.Addr] = ev.Val
		}
	}
	// Volatile locations exist by design (counters, locals, payloads),
	// but the majority of repeat reads must be stable.
	if conflicts*2 > total {
		t.Errorf("too many volatile re-reads: %d of %d", conflicts, total)
	}
}
