package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"capred/internal/sim"
)

// chaosTransport wraps a transport with per-path faults. Each hook
// returns true when it consumed the request (the fault replaced the
// normal round trip).
type chaosTransport struct {
	base http.RoundTripper

	mu sync.Mutex
	// dropPaths maps a path substring to how many matching requests to
	// drop (fail with a transport error). Negative means drop forever.
	dropPaths map[string]int
	// duplicatePath, when non-empty, sends matching requests twice and
	// returns the second response.
	duplicatePath string
	duplicated    int
	// corruptPath, when non-empty, flips a byte in matching response
	// bodies.
	corruptPath string
	corrupted   int
}

func (c *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	for sub, n := range c.dropPaths {
		if strings.Contains(req.URL.Path, sub) && n != 0 {
			if n > 0 {
				c.dropPaths[sub] = n - 1
			}
			c.mu.Unlock()
			return nil, fmt.Errorf("chaos: dropped %s", req.URL.Path)
		}
	}
	dup := c.duplicatePath != "" && strings.Contains(req.URL.Path, c.duplicatePath)
	corrupt := c.corruptPath != "" && strings.Contains(req.URL.Path, c.corruptPath)
	c.mu.Unlock()

	if dup {
		// Replay the body: duplicate delivery of an idempotent result.
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		first := req.Clone(req.Context())
		first.Body = body
		if resp, err := c.base.RoundTrip(first); err == nil {
			resp.Body.Close()
			c.mu.Lock()
			c.duplicated++
			c.mu.Unlock()
		}
	}
	resp, err := c.base.RoundTrip(req)
	if err != nil || !corrupt {
		return resp, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if len(data) > 0 {
		data[len(data)/2] ^= 0xff
		c.mu.Lock()
		c.corrupted++
		c.mu.Unlock()
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
	return resp, nil
}

// startChaosWorker runs one worker whose transport is chaos-wrapped.
func startChaosWorker(t *testing.T, c *Coordinator, srv *httptest.Server, name string, chaos *chaosTransport) (*Worker, func()) {
	t.Helper()
	chaos.base = srv.Client().Transport
	w := NewWorker(WorkerConfig{
		Coordinator: srv.URL,
		Name:        name,
		Client:      &http.Client{Transport: chaos},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func(ctx context.Context) {
		defer close(done)
		w.Run(ctx)
	}(ctx)
	return w, func() {
		cancel()
		<-done
	}
}

// TestChaosDuplicateResults: every result POST is delivered twice; the
// duplicates must be detected by hash and discarded, and the table
// must stay byte-identical.
func TestChaosDuplicateResults(t *testing.T) {
	cfg := sim.Config{EventsPerTrace: testEvents}
	want := localTable(t, "fig5", cfg)

	c := fastCoord(CoordConfig{LocalWorkers: -1})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	chaos := &chaosTransport{duplicatePath: "/dist/v1/result"}
	_, stop := startChaosWorker(t, c, srv, "dup-worker", chaos)
	defer stop()

	if got := distTable(t, c, "fig5", cfg); got != want {
		t.Errorf("table differs under duplicate delivery\nlocal:\n%s\ndist:\n%s", want, got)
	}
	st := c.Stats()
	if st.Duplicates == 0 {
		t.Errorf("no duplicates detected: %+v", st)
	}
	if st.HashMismatches != 0 {
		t.Errorf("determinism alarm: duplicate results hashed differently: %+v", st)
	}
}

// TestChaosHeartbeatLoss: all heartbeats are dropped under a short
// lease, so leases expire mid-shard and shards are re-claimed. The
// worker still completes and posts whole results (accepting a
// complete result from an expired lease is safe — the computation is
// deterministic), and the table stays byte-identical.
func TestChaosHeartbeatLoss(t *testing.T) {
	cfg := sim.Config{EventsPerTrace: testEvents}
	want := localTable(t, "fig5", cfg)

	c := fastCoord(CoordConfig{
		Lease:        20 * time.Millisecond,
		WorkerTTL:    time.Hour, // keep the worker registered: only its leases rot
		LocalWorkers: -1,
		MaxAttempts:  1 << 20, // re-claims must never exhaust the budget here
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	chaos := &chaosTransport{dropPaths: map[string]int{"/dist/v1/heartbeat": -1}}
	_, stop := startChaosWorker(t, c, srv, "mute-worker", chaos)
	defer stop()

	if got := distTable(t, c, "fig5", cfg); got != want {
		t.Errorf("table differs under heartbeat loss\nlocal:\n%s\ndist:\n%s", want, got)
	}
}

// TestChaosCorruptTraceFetch: fetched trace bytes are corrupted in
// flight; the hash check must reject them and the worker regenerate
// the stream locally, keeping the table byte-identical.
func TestChaosCorruptTraceFetch(t *testing.T) {
	cfg := sim.Config{EventsPerTrace: testEvents}
	want := localTable(t, "fig5", cfg)

	c := fastCoord(CoordConfig{LocalWorkers: -1})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	chaos := &chaosTransport{corruptPath: "/dist/v1/traces/"}
	w, stop := startChaosWorker(t, c, srv, "corrupt-worker", chaos)
	defer stop()

	if got := distTable(t, c, "fig5", cfg); got != want {
		t.Errorf("table differs under trace corruption\nlocal:\n%s\ndist:\n%s", want, got)
	}
	if st := w.Stats(); st.TraceLocal == 0 {
		t.Errorf("worker never fell back to local generation: %+v", st)
	}
}

// TestChaosAbandonedClaim: a vandal claims shards and vanishes without
// ever heartbeating or posting. Its leases must expire, the shards
// re-claim, and — once the vandal is pruned — the in-process fallback
// finishes the grid bit-identically.
func TestChaosAbandonedClaim(t *testing.T) {
	cfg := sim.Config{EventsPerTrace: testEvents}
	want := localTable(t, "fig5", cfg)

	c := fastCoord(CoordConfig{
		Lease:        20 * time.Millisecond,
		WorkerTTL:    60 * time.Millisecond,
		LocalWorkers: 2,
		MaxAttempts:  1 << 20,
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The vandal claims over HTTP like a real worker, then sits on the
	// lease. One claim is enough — it stops touching the coordinator so
	// the TTL can prune it.
	vandalDone := make(chan struct{})
	go func(ctx context.Context) {
		defer close(vandalDone)
		w := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "vandal", Client: srv.Client()})
		for i := 0; i < 200; i++ {
			var resp claimResponse
			if err := w.post(ctx, "/dist/v1/claim", claimRequest{Worker: "vandal"}, &resp); err != nil {
				return
			}
			if resp.Shard != nil {
				return // got a lease; now vanish
			}
			if retrySleep(ctx, 2*time.Millisecond) != nil {
				return
			}
		}
	}(context.Background())

	got := distTable(t, c, "fig5", cfg)
	<-vandalDone
	if got != want {
		t.Errorf("table differs after abandoned claim\nlocal:\n%s\ndist:\n%s", want, got)
	}
	if st := c.Stats(); st.Reclaims == 0 {
		t.Errorf("abandoned lease never reclaimed: %+v", st)
	}
}

// retrySleep is a tiny ctx-aware pause for the chaos helpers.
func retrySleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// TestChaosWorkerDeathMidGrid: a worker is hard-stopped (context
// cancelled, no drain) mid-grid while a second keeps running; the
// survivor plus re-claims must finish the grid bit-identically.
func TestChaosWorkerDeathMidGrid(t *testing.T) {
	cfg := sim.Config{EventsPerTrace: testEvents}
	want := localTable(t, "fig5", cfg)

	c := fastCoord(CoordConfig{
		Lease:       50 * time.Millisecond,
		WorkerTTL:   150 * time.Millisecond,
		MaxAttempts: 1 << 20,
		// Local fallback stays armed in case the kill lands while the
		// survivor holds nothing; it uses the same record path, so any
		// mix of survivor/local execution is still byte-identical.
		LocalWorkers: 1,
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	victimCtx, killVictim := context.WithCancel(context.Background())
	survivorCtx, stopSurvivor := context.WithCancel(context.Background())
	defer stopSurvivor()
	var wg sync.WaitGroup
	for _, wk := range []struct {
		name string
		ctx  context.Context
	}{{"victim", victimCtx}, {"survivor", survivorCtx}} {
		w := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: wk.name, Client: srv.Client()})
		wg.Add(1)
		go func(ctx context.Context, w *Worker) {
			defer wg.Done()
			w.Run(ctx)
		}(wk.ctx, w)
	}

	// Kill the victim shortly into the grid: some of its leases die
	// with it and must be re-claimed.
	killed := make(chan struct{})
	go func(ctx context.Context) {
		defer close(killed)
		retrySleep(ctx, 30*time.Millisecond)
		killVictim()
	}(context.Background())

	got := distTable(t, c, "fig5", cfg)
	<-killed
	stopSurvivor()
	wg.Wait()
	if got != want {
		t.Errorf("table differs after worker death\nlocal:\n%s\ndist:\n%s", want, got)
	}
}
