// Package dist is the fault-tolerant distributed experiment fleet: a
// coordinator that hands (trace × configuration) shards of an
// experiment grid to pull-based workers under expiring leases, and the
// worker loop capserve runs in -worker mode.
//
// Robustness model (DESIGN.md §13):
//
//   - Shards are leased, not assigned. A worker that crashes, hangs or
//     partitions simply stops heartbeating; its lease expires and the
//     shard returns to the pending pool for another claim.
//   - Results are idempotent. The computation is deterministic, so any
//     completed result for a shard is THE result; the first accepted
//     one wins and later duplicates are detected by shard identity plus
//     a hash of the result body, counted and discarded.
//   - Workers never report work they may have poisoned: a worker whose
//     lease was revoked (or whose context was cancelled mid-shard)
//     discards the attempt instead of posting it.
//   - The coordinator degrades to in-process execution when no remote
//     worker is available, over the exact same record/replay path, so a
//     fleet of zero still produces the full table.
//
// Equivalence: the merged table is byte-identical to a local capsim run
// by construction — workers return leaf logs (internal/sim's dist
// seam), and the coordinator replays them through the real driver
// closures in shard registration order on one goroutine. The PR 3
// golden harness is the oracle; the chaos tests in this package drive
// every fault against it.
package dist

import "capred/internal/sim"

// ShardDesc describes one leased shard to a worker: everything needed
// to recompute the shard bit-identically plus the lease terms.
type ShardDesc struct {
	// Token identifies the grid run this lease belongs to; results
	// carrying a stale token are discarded.
	Token      string `json:"token"`
	Experiment string `json:"experiment"`
	Grid       int    `json:"grid"`
	Index      int    `json:"index"`
	Stage      string `json:"stage,omitempty"`
	Trace      string `json:"trace"`
	Suite      string `json:"suite,omitempty"`

	// TraceHash content-addresses the trace's encoded v3 byte stream;
	// workers fetch it once per node and fall back to regenerating the
	// identical stream locally when the fetch fails.
	TraceHash string `json:"trace_hash,omitempty"`

	Events         int64 `json:"events"`
	SourceRetries  int   `json:"source_retries,omitempty"`
	TraceTimeoutMS int64 `json:"trace_timeout_ms,omitempty"`
	LeaseMS        int64 `json:"lease_ms"`
}

// shardRef identifies a lease in heartbeats.
type shardRef struct {
	Token string `json:"token"`
	Index int    `json:"index"`
}

type registerRequest struct {
	Worker string `json:"worker"`
}

type registerResponse struct {
	PollMS int64 `json:"poll_ms"`
}

type claimRequest struct {
	Worker string `json:"worker"`
}

type claimResponse struct {
	Shard        *ShardDesc `json:"shard,omitempty"`
	RetryAfterMS int64      `json:"retry_after_ms,omitempty"`
	Drain        bool       `json:"drain,omitempty"`
}

type heartbeatRequest struct {
	Worker string     `json:"worker"`
	Shards []shardRef `json:"shards,omitempty"`
}

type heartbeatResponse struct {
	Revoked []shardRef `json:"revoked,omitempty"`
	Drain   bool       `json:"drain,omitempty"`
}

type resultRequest struct {
	Worker string              `json:"worker"`
	Token  string              `json:"token"`
	Index  int                 `json:"index"`
	Result sim.DistShardResult `json:"result"`
}

// Result submission outcomes, echoed in resultResponse.Status.
const (
	statusAccepted  = "accepted"
	statusDuplicate = "duplicate"
	statusMismatch  = "mismatch" // duplicate whose hash disagrees with the merged result
	statusStale     = "stale"    // unknown token/shard: grid already finished
)

type resultResponse struct {
	Status string `json:"status"`
}
