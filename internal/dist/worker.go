package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"capred/internal/retry"
	"capred/internal/sim"
	"capred/internal/trace"
)

// WorkerConfig configures one fleet worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:port".
	Coordinator string
	// Name identifies this worker in leases and logs. Required.
	Name string
	// Client, when non-nil, replaces http.DefaultClient (tests inject
	// fault transports here).
	Client *http.Client
	// RPC overrides the retry policy for coordinator calls. The zero
	// value selects a jittered exponential backoff (5 attempts, 50ms
	// base, 2s cap, 30s budget) seeded from the worker name, so retry
	// storms from a restarted fleet spread out deterministically per
	// worker.
	RPC retry.Policy
	// Logf, when non-nil, receives operational events.
	Logf func(format string, args ...any)
	// Now injects the clock for pacing decisions; nil uses the wall
	// clock. Results never depend on it.
	Now func() time.Time
}

// WorkerStats counts one worker's activity.
type WorkerStats struct {
	Shards       int64 // shards executed and accepted
	Revoked      int64 // shards abandoned because the lease was revoked mid-run
	Rejected     int64 // results the coordinator did not accept (duplicate/stale)
	TraceFetches int64 // content-addressed trace streams fetched
	TraceLocal   int64 // traces regenerated locally after a failed/absent fetch
}

// String renders the stats as one report line.
func (s WorkerStats) String() string {
	return fmt.Sprintf("worker: %d shards (%d revoked, %d rejected), %d trace fetches, %d local regenerations",
		s.Shards, s.Revoked, s.Rejected, s.TraceFetches, s.TraceLocal)
}

// Worker pulls shards from a coordinator, executes them through the
// sim record path, and posts leaf logs back. It is resilient by
// construction: every RPC retries with jittered backoff, a revoked
// lease abandons the shard without posting, and any shard it fails to
// finish is simply re-claimed by someone else when the lease expires.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	rpc    retry.Policy
	cache  *trace.ReplayCache

	mu    sync.Mutex
	stats WorkerStats
}

// NewWorker returns a worker ready to Run against cfg.Coordinator.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	pol := cfg.RPC
	if pol.Attempts == 0 {
		pol = retry.Policy{
			Attempts:   5,
			BaseDelay:  50 * time.Millisecond,
			MaxDelay:   2 * time.Second,
			Multiplier: 2,
			Jitter:     0.5,
			Budget:     30 * time.Second,
		}
	}
	if pol.Jitter > 0 && pol.Rand == nil {
		h := fnv.New64a()
		io.WriteString(h, cfg.Name)
		pol.Rand = retry.NewRand(int64(h.Sum64()))
	}
	return &Worker{
		cfg:    cfg,
		client: client,
		rpc:    pol,
		cache:  trace.NewReplayCache(0),
	}
}

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run registers with the coordinator and pulls shards until the
// coordinator tells it to drain or ctx is cancelled. It returns nil on
// a clean drain.
func (w *Worker) Run(ctx context.Context) error {
	var reg registerResponse
	err := w.post(ctx, "/dist/v1/register", registerRequest{Worker: w.cfg.Name}, &reg)
	if err != nil {
		return fmt.Errorf("register with %s: %w", w.cfg.Coordinator, err)
	}
	w.logf("worker %s: registered with %s", w.cfg.Name, w.cfg.Coordinator)

	idlePoll := time.Duration(reg.PollMS) * time.Millisecond
	if idlePoll <= 0 {
		idlePoll = 100 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp claimResponse
		if err := w.post(ctx, "/dist/v1/claim", claimRequest{Worker: w.cfg.Name}, &resp); err != nil {
			return fmt.Errorf("claim from %s: %w", w.cfg.Coordinator, err)
		}
		switch {
		case resp.Drain:
			w.logf("worker %s: drained", w.cfg.Name)
			return nil
		case resp.Shard != nil:
			w.runShard(ctx, *resp.Shard)
		default:
			d := time.Duration(resp.RetryAfterMS) * time.Millisecond
			if d <= 0 {
				d = idlePoll
			}
			if err := retry.Sleep(ctx, d); err != nil {
				return err
			}
		}
	}
}

// runShard executes one leased shard under a heartbeat, posting the
// leaf log back unless the lease was revoked mid-run.
func (w *Worker) runShard(ctx context.Context, desc ShardDesc) {
	w.logf("worker %s: claimed %s/%d (%s)", w.cfg.Name, desc.Token, desc.Index, desc.Trace)

	// Heartbeat until the shard finishes; a revocation cancels the
	// computation so a re-claimed shard is never double-posted.
	hbCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	revoked := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func(ctx context.Context) {
		defer hbWG.Done()
		w.heartbeatLoop(ctx, desc, revoked)
	}(hbCtx)

	runCtx, cancelRun := context.WithCancel(ctx)
	go func(ctx context.Context) {
		select {
		case <-revoked:
			cancelRun()
		case <-ctx.Done():
		}
	}(hbCtx)

	res := w.execute(runCtx, desc)
	cancelRun()
	cancel()
	hbWG.Wait()

	select {
	case <-revoked:
		// The lease moved on; our result may be poisoned by the
		// cancellation, and even a clean one must not race the new
		// owner's. Drop it.
		w.mu.Lock()
		w.stats.Revoked++
		w.mu.Unlock()
		w.logf("worker %s: lease revoked on %s/%d, result dropped", w.cfg.Name, desc.Token, desc.Index)
		return
	default:
	}
	if ctx.Err() != nil {
		// Our own shutdown cancelled the run mid-shard: the leaf log may
		// be truncated by the cancellation, so it must not be posted.
		return
	}

	var rr resultResponse
	if err := w.post(ctx, "/dist/v1/result", resultRequest{
		Worker: w.cfg.Name, Token: desc.Token, Index: desc.Index, Result: res,
	}, &rr); err != nil {
		w.logf("worker %s: posting %s/%d failed: %v", w.cfg.Name, desc.Token, desc.Index, err)
		return
	}
	w.mu.Lock()
	if rr.Status == statusAccepted {
		w.stats.Shards++
	} else {
		w.stats.Rejected++
	}
	w.mu.Unlock()
	w.logf("worker %s: completed %s/%d (%s)", w.cfg.Name, desc.Token, desc.Index, rr.Status)
}

// heartbeatLoop extends the shard's lease at a third of its term and
// closes revoked if the coordinator disowns the lease. Heartbeat RPC
// failures are tolerated silently: the lease simply drifts toward
// expiry, and either a later beat lands or the shard is re-claimed.
func (w *Worker) heartbeatLoop(ctx context.Context, desc ShardDesc, revoked chan<- struct{}) {
	period := time.Duration(desc.LeaseMS) * time.Millisecond / 3
	if period <= 0 {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var resp heartbeatResponse
		req := heartbeatRequest{Worker: w.cfg.Name, Shards: []shardRef{{Token: desc.Token, Index: desc.Index}}}
		if err := w.postOnce(ctx, "/dist/v1/heartbeat", req, &resp); err != nil {
			continue
		}
		for _, ref := range resp.Revoked {
			if ref.Token == desc.Token && ref.Index == desc.Index {
				close(revoked)
				return
			}
		}
	}
}

// execute recomputes one shard bit-identically via the sim record
// path, with the trace pre-seeded from the coordinator's
// content-addressed store when possible.
func (w *Worker) execute(ctx context.Context, desc ShardDesc) sim.DistShardResult {
	w.ensureTrace(ctx, desc)

	exp, ok := sim.ExperimentByName(desc.Experiment)
	if !ok {
		return sim.DistShardResult{Panic: &sim.WireError{
			Msg: fmt.Sprintf("dist: worker has no experiment %q", desc.Experiment),
		}}
	}
	cfg := sim.Config{
		EventsPerTrace: desc.Events,
		SourceRetries:  desc.SourceRetries,
		TraceTimeout:   time.Duration(desc.TraceTimeoutMS) * time.Millisecond,
		Ctx:            ctx,
		ReplayCache:    w.cache,
	}
	res, err := sim.RunDistShard(exp, cfg, desc.Grid, desc.Index)
	if err != nil {
		return sim.DistShardResult{Panic: &sim.WireError{Msg: err.Error()}}
	}
	return res
}

// ensureTrace fetches the shard's trace stream by content hash and
// seeds the replay cache with it, so the simulation's own open hits a
// resident entry instead of regenerating the workload. Any failure —
// no hash, fetch error, hash mismatch — falls back to local
// generation, which produces the identical stream; the fetch is an
// optimisation, never a correctness dependency.
func (w *Worker) ensureTrace(ctx context.Context, desc ShardDesc) {
	if desc.TraceHash == "" {
		return
	}
	key := fmt.Sprintf("%s@%d", desc.Trace, desc.Events)
	data, err := w.fetchTrace(ctx, desc.TraceHash)
	if err != nil {
		w.mu.Lock()
		w.stats.TraceLocal++
		w.mu.Unlock()
		w.logf("worker %s: trace %s fetch failed (%v), generating locally", w.cfg.Name, key, err)
		return
	}
	w.mu.Lock()
	w.stats.TraceFetches++
	w.mu.Unlock()
	// Seeding = opening through the cache with a generator that decodes
	// the fetched bytes: the cache materialises (and retains) the
	// stream, and the simulation's later open of the same key replays
	// the resident entry.
	src := w.cache.Open(key, func() trace.Source {
		return trace.NewReader(bytes.NewReader(data))
	})
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
}

// fetchTrace downloads and hash-verifies one content-addressed stream.
func (w *Worker) fetchTrace(ctx context.Context, hash string) ([]byte, error) {
	var data []byte
	err := w.rpc.Do(ctx, transientHTTP, func(int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			w.cfg.Coordinator+"/dist/v1/traces/"+hash, nil)
		if err != nil {
			return err
		}
		resp, err := w.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return &httpStatusError{status: resp.StatusCode, url: req.URL.Path}
		}
		data, err = io.ReadAll(resp.Body)
		return err
	})
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != hash {
		return nil, fmt.Errorf("dist: trace hash mismatch: want %s, got %s", hash, got)
	}
	return data, nil
}

// post is a retried JSON POST to the coordinator.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	return w.rpc.Do(ctx, transientHTTP, func(int) error {
		return w.postOnce(ctx, path, in, out)
	})
}

// postOnce is a single JSON POST attempt.
func (w *Worker) postOnce(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return &httpStatusError{status: resp.StatusCode, url: path}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// httpStatusError marks a non-200 coordinator response; 5xx and 429
// are retryable, 4xx are not.
type httpStatusError struct {
	status int
	url    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("dist: %s: HTTP %d", e.url, e.status)
}

// transientHTTP classifies RPC errors for retry: transport errors and
// retryable statuses are worth another attempt, protocol-level 4xx
// (bad request, unknown trace) are not.
func transientHTTP(err error) bool {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.status >= 500 || se.status == http.StatusTooManyRequests
	}
	return true
}
