package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"capred/internal/sim"
	"capred/internal/trace"
	"capred/internal/workload"
)

// CoordConfig tunes the coordinator's failure model.
type CoordConfig struct {
	// Lease bounds how long a claimed shard may go without a heartbeat
	// before it is re-claimed. Default 10s.
	Lease time.Duration
	// WorkerTTL prunes workers that stop claiming/heartbeating.
	// Default 3×Lease.
	WorkerTTL time.Duration
	// MaxAttempts bounds lease grants per shard; a shard still
	// unfinished after that many leases fails with an attributed error
	// instead of cycling forever. Default 3.
	MaxAttempts int
	// Tick paces lease-expiry and liveness checks. Default Lease/4,
	// clamped to [10ms, 1s].
	Tick time.Duration
	// LocalWorkers is the in-process degraded-mode pool size used when
	// no remote worker is available: 0 means 1, negative disables local
	// fallback entirely.
	LocalWorkers int
	// LocalDelay is the grace period before degrading to local
	// execution when no worker has EVER registered (once one has, a
	// fleet that dies is taken over immediately). Default 3s.
	LocalDelay time.Duration
	// Now injects the clock (tests); nil uses the wall clock. The clock
	// only drives leases and liveness — results never depend on it.
	Now func() time.Time
	// Logf, when non-nil, receives operational events (registrations,
	// reclaims, duplicates, takeovers).
	Logf func(format string, args ...any)
}

// CoordStats counts the coordinator's fault-handling activity.
type CoordStats struct {
	Registered     int64 // worker registrations
	Claims         int64 // shard leases granted (incl. re-claims and local)
	Results        int64 // results accepted and merged
	Duplicates     int64 // late results for already-merged shards, discarded
	HashMismatches int64 // duplicates whose body hash disagreed (determinism alarm)
	Stale          int64 // results for finished grids, discarded
	Reclaims       int64 // leases expired and shards returned to the pool
	FailedShards   int64 // shards failed after MaxAttempts lease grants
	LocalShards    int64 // shards executed by the in-process fallback
	TraceFetches   int64 // trace streams served to workers
}

// String renders the stats as one report line.
func (s CoordStats) String() string {
	return fmt.Sprintf("fleet: %d registrations, %d leases, %d results (%d duplicate, %d stale, %d hash-mismatch), %d reclaims, %d failed shards, %d local shards, %d trace fetches",
		s.Registered, s.Claims, s.Results, s.Duplicates, s.Stale, s.HashMismatches,
		s.Reclaims, s.FailedShards, s.LocalShards, s.TraceFetches)
}

// Shard lease states.
const (
	shardPending = iota
	shardLeased
	shardDone
	shardFailed
)

// shardState tracks one shard through the lease state machine:
// pending → leased(worker, expiry, attempt#) → done(result, hash) or
// failed(attributed error); an expired lease returns to pending.
type shardState struct {
	desc     ShardDesc
	state    int
	worker   string
	local    bool // leased to the in-process fallback: no expiry
	expires  time.Time
	attempts int
	result   sim.DistShardResult
	hash     string
	err      error
}

// gridRun is one RunGrid invocation's live state.
type gridRun struct {
	token      string
	shards     []*shardState
	remaining  int // pending + leased
	completed  int // done + failed, for progress reporting
	doneCh     chan struct{}
	progress   func(done, total int)
	graceUntil time.Time // local fallback holds off until here
}

// workerState tracks a registered worker's liveness.
type workerState struct {
	lastSeen time.Time
	drained  bool
}

// Coordinator owns the shard pool, the lease state machine and the
// content-addressed trace store. It implements sim.DistRunner: capsim
// runs each experiment through RunExperiment, and every grid the
// drivers register is dispatched to the fleet (or the local fallback)
// and merged back in registration order.
type Coordinator struct {
	cfg    CoordConfig
	traces *traceStore

	mu             sync.Mutex
	workers        map[string]*workerState
	run            *gridRun
	epoch          int
	draining       bool
	everRegistered bool
	localActive    int
	stats          CoordStats

	// Current experiment context, set by RunExperiment for the grids
	// its drivers register synchronously underneath it.
	curExp sim.Experiment
	curCfg sim.Config
}

// NewCoordinator returns a coordinator with cfg's failure model.
func NewCoordinator(cfg CoordConfig) *Coordinator {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Coordinator{
		cfg:     cfg,
		traces:  newTraceStore(),
		workers: make(map[string]*workerState),
	}
}

func (c *Coordinator) now() time.Time {
	return c.cfg.Now()
}

func (c *Coordinator) lease() time.Duration {
	if c.cfg.Lease > 0 {
		return c.cfg.Lease
	}
	return 10 * time.Second
}

func (c *Coordinator) workerTTL() time.Duration {
	if c.cfg.WorkerTTL > 0 {
		return c.cfg.WorkerTTL
	}
	return 3 * c.lease()
}

func (c *Coordinator) maxAttempts() int {
	if c.cfg.MaxAttempts > 0 {
		return c.cfg.MaxAttempts
	}
	return 3
}

func (c *Coordinator) tick() time.Duration {
	if c.cfg.Tick > 0 {
		return c.cfg.Tick
	}
	t := c.lease() / 4
	if t < 10*time.Millisecond {
		t = 10 * time.Millisecond
	}
	if t > time.Second {
		t = time.Second
	}
	return t
}

func (c *Coordinator) localDelay() time.Duration {
	if c.cfg.LocalDelay > 0 {
		return c.cfg.LocalDelay
	}
	return 3 * time.Second
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Stats returns a snapshot of the fault-handling counters.
func (c *Coordinator) Stats() CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RunExperiment runs one experiment with its grids dispatched through
// the fleet. The result is byte-identical to e.Run(cfg) locally.
func (c *Coordinator) RunExperiment(e sim.Experiment, cfg sim.Config) sim.Result {
	c.mu.Lock()
	c.curExp, c.curCfg = e, cfg
	c.mu.Unlock()
	return e.Run(sim.WithDist(cfg, c))
}

// BeginDrain tells the fleet to wind down: once the current run (if
// any) finishes, claim responses carry drain=true and workers exit.
func (c *Coordinator) BeginDrain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// WaitDrained blocks until every registered worker has been told to
// drain or has gone stale, polling briefly, up to timeout. It returns
// whether the fleet fully drained.
func (c *Coordinator) WaitDrained(ctx context.Context, timeout time.Duration) bool {
	const poll = 20 * time.Millisecond
	t := time.NewTicker(poll)
	defer t.Stop()
	for i := int64(0); i <= int64(timeout/poll); i++ {
		if c.allDrained() {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
	}
	return c.allDrained()
}

// allDrained reports whether no live worker remains undrained.
func (c *Coordinator) allDrained() bool {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneWorkersLocked(now)
	for _, w := range c.workers {
		if !w.drained {
			return false
		}
	}
	return true
}

// RunGrid implements sim.DistRunner: register the shards, pump the
// lease state machine until the grid drains (or ctx dies), then hand
// each shard's result to merge in registration order.
func (c *Coordinator) RunGrid(ctx context.Context, seq int, infos []sim.DistShardInfo,
	merge func(i int, res sim.DistShardResult) error, progress func(done, total int)) []error {

	errs := make([]error, len(infos))
	if len(infos) == 0 {
		return errs
	}

	c.mu.Lock()
	exp, execCfg := c.curExp, c.curCfg
	c.epoch++
	token := fmt.Sprintf("%s.%d.%d", exp.Name, seq, c.epoch)
	c.mu.Unlock()

	// Materialise + hash the grid's traces up front (cached across
	// grids and experiments), so every ShardDesc is content-addressed.
	leaseMS := c.lease().Milliseconds()
	shards := make([]*shardState, len(infos))
	for i, info := range infos {
		desc := ShardDesc{
			Token:          token,
			Experiment:     exp.Name,
			Grid:           seq,
			Index:          info.Index,
			Stage:          info.Stage,
			Trace:          info.Trace,
			Suite:          info.Suite,
			Events:         execCfg.EventsPerTrace,
			SourceRetries:  execCfg.SourceRetries,
			TraceTimeoutMS: execCfg.TraceTimeout.Milliseconds(),
			LeaseMS:        leaseMS,
		}
		if h, err := c.traces.hashFor(info.Trace, execCfg.EventsPerTrace); err == nil {
			desc.TraceHash = h
		}
		shards[i] = &shardState{desc: desc}
	}
	run := &gridRun{
		token:     token,
		shards:    shards,
		remaining: len(shards),
		doneCh:    make(chan struct{}),
		progress:  progress,
	}

	c.mu.Lock()
	c.run = run
	c.mu.Unlock()
	c.logf("dist: grid %s: %d shards", token, len(shards))

	tick := time.NewTicker(c.tick())
	defer tick.Stop()
	cancelled := false
pumping:
	for {
		c.pump(ctx, run, exp, execCfg)
		select {
		case <-run.doneCh:
			break pumping
		case <-ctx.Done():
			cancelled = true
			break pumping
		case <-tick.C:
		}
	}

	// Detach the run: any result arriving from here on is stale and
	// discarded, so reading shard state below needs no lock.
	c.mu.Lock()
	c.run = nil
	c.mu.Unlock()

	for i, s := range run.shards {
		switch s.state {
		case shardDone:
			errs[i] = merge(i, s.result)
		case shardFailed:
			errs[i] = s.err
		default:
			if cancelled {
				errs[i] = ctx.Err()
			} else {
				errs[i] = &sim.RemoteError{Msg: "dist: shard did not complete"}
			}
		}
	}
	return errs
}

// pump advances the lease state machine: expire leases, prune dead
// workers, and start the in-process fallback when the fleet is empty.
func (c *Coordinator) pump(ctx context.Context, run *gridRun, exp sim.Experiment, execCfg sim.Config) {
	now := c.now()
	var fireProgress func()
	var spawn int

	c.mu.Lock()
	if c.run == run {
		c.pruneWorkersLocked(now)
		c.expireLeasesLocked(run, now)
		if run.graceUntil.IsZero() {
			run.graceUntil = now.Add(c.localDelay())
		}
		pending := 0
		for _, s := range run.shards {
			if s.state == shardPending {
				pending++
			}
		}
		canDegrade := c.everRegistered || !now.Before(run.graceUntil)
		if pending > 0 && len(c.workers) == 0 && c.localActive == 0 &&
			c.cfg.LocalWorkers >= 0 && canDegrade {
			spawn = c.cfg.LocalWorkers
			if spawn == 0 {
				spawn = 1
			}
			if spawn > pending {
				spawn = pending
			}
			c.localActive = spawn
		}
		fireProgress = c.progressLocked(run)
	}
	c.mu.Unlock()

	if fireProgress != nil {
		fireProgress()
	}
	if spawn > 0 {
		c.logf("dist: grid %s: no live workers, degrading to %d in-process runner(s)", run.token, spawn)
		for i := 0; i < spawn; i++ {
			go func(ctx context.Context, id int) {
				c.localRun(ctx, run, exp, execCfg, fmt.Sprintf("local/%d", id))
			}(ctx, i)
		}
	}
}

// pruneWorkersLocked drops workers that have not been heard from
// within the TTL; their leases expire on their own schedule.
func (c *Coordinator) pruneWorkersLocked(now time.Time) {
	ttl := c.workerTTL()
	for name, w := range c.workers {
		if now.Sub(w.lastSeen) > ttl {
			delete(c.workers, name)
		}
	}
}

// expireLeasesLocked returns timed-out shards to the pending pool, or
// fails them once the attempt budget is spent.
func (c *Coordinator) expireLeasesLocked(run *gridRun, now time.Time) {
	for _, s := range run.shards {
		if s.state != shardLeased || s.local || now.Before(s.expires) {
			continue
		}
		if s.attempts >= c.maxAttempts() {
			s.state = shardFailed
			s.err = &sim.RemoteError{Msg: fmt.Sprintf(
				"dist: shard %s/%d (%s) failed after %d lease attempts; last worker %q",
				s.desc.Experiment, s.desc.Index, s.desc.Trace, s.attempts, s.worker)}
			c.stats.FailedShards++
			run.remaining--
			run.completed++
			c.finishLocked(run)
		} else {
			s.state = shardPending
			c.stats.Reclaims++
		}
		c.logf("dist: grid %s: lease expired on shard %d (worker %q, attempt %d)",
			run.token, s.desc.Index, s.worker, s.attempts)
		s.worker = ""
	}
}

// finishLocked closes the run's done channel once nothing remains.
func (c *Coordinator) finishLocked(run *gridRun) {
	if run.remaining == 0 {
		select {
		case <-run.doneCh:
		default:
			close(run.doneCh)
		}
	}
}

// progressLocked captures a progress callback invocation for firing
// outside the lock, or nil when there is nothing to report.
func (c *Coordinator) progressLocked(run *gridRun) func() {
	if run.progress == nil {
		return nil
	}
	done, total := run.completed, len(run.shards)
	return func() { run.progress(done, total) }
}

// touchWorkerLocked refreshes (or creates) a worker's liveness record.
func (c *Coordinator) touchWorkerLocked(name string, now time.Time) {
	w := c.workers[name]
	if w == nil {
		w = &workerState{}
		c.workers[name] = w
	}
	w.lastSeen = now
}

// register records a worker joining the fleet.
func (c *Coordinator) register(name string) registerResponse {
	now := c.now()
	c.mu.Lock()
	c.touchWorkerLocked(name, now)
	c.everRegistered = true
	c.stats.Registered++
	c.mu.Unlock()
	c.logf("dist: worker %q registered", name)
	return registerResponse{PollMS: 100}
}

// claim leases the first pending shard to a worker, or reports how
// long to wait / whether to drain.
func (c *Coordinator) claim(worker string) claimResponse {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	run := c.run
	var resp claimResponse
	if run == nil {
		if c.draining {
			resp.Drain = true
			if w := c.workers[worker]; w != nil {
				w.drained = true
			}
		} else {
			resp.RetryAfterMS = 200
		}
	} else if desc := c.claimShardLocked(run, worker, false, now); desc != nil {
		resp.Shard = desc
	} else {
		// Shards may yet be re-claimed if a lease expires, so workers
		// keep polling until the grid finishes.
		resp.RetryAfterMS = 100
	}
	return resp
}

// claimShardLocked grants a lease on the first pending shard, failing
// over-attempted shards as it scans.
func (c *Coordinator) claimShardLocked(run *gridRun, worker string, local bool, now time.Time) *ShardDesc {
	for _, s := range run.shards {
		if s.state != shardPending {
			continue
		}
		s.state = shardLeased
		s.worker = worker
		s.local = local
		s.attempts++
		s.expires = now.Add(c.lease())
		c.stats.Claims++
		desc := s.desc
		return &desc
	}
	return nil
}

// heartbeat extends the worker's leases and reports which of its
// claimed shards are no longer its own (revoked → stop computing).
func (c *Coordinator) heartbeat(req heartbeatRequest) heartbeatResponse {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.Worker, now)
	var resp heartbeatResponse
	run := c.run
	for _, ref := range req.Shards {
		ok := false
		if run != nil && run.token == ref.Token && ref.Index >= 0 && ref.Index < len(run.shards) {
			s := run.shards[ref.Index]
			if s.state == shardLeased && s.worker == req.Worker {
				s.expires = now.Add(c.lease())
				ok = true
			}
		}
		if !ok {
			resp.Revoked = append(resp.Revoked, ref)
		}
	}
	resp.Drain = c.draining && run == nil
	return resp
}

// submit records a shard result: the first one wins, duplicates are
// hash-checked and discarded, stale tokens are dropped. local marks
// the in-process fallback, which must not count as a live fleet
// member (a registered "worker" suppresses degraded mode).
func (c *Coordinator) submit(worker string, local bool, token string, index int, res sim.DistShardResult) string {
	hash := resultHash(res)
	now := c.now()
	var fireProgress func()
	status := statusStale

	c.mu.Lock()
	if !local {
		c.touchWorkerLocked(worker, now)
	}
	run := c.run
	if run != nil && run.token == token && index >= 0 && index < len(run.shards) {
		s := run.shards[index]
		switch s.state {
		case shardDone:
			c.stats.Duplicates++
			status = statusDuplicate
			if s.hash != hash {
				c.stats.HashMismatches++
				status = statusMismatch
			}
		case shardFailed:
			// Already attributed; a late completion cannot be merged
			// without reordering the failure set.
			c.stats.Duplicates++
			status = statusDuplicate
		default:
			s.state = shardDone
			s.worker = worker
			s.result = res
			s.hash = hash
			c.stats.Results++
			run.remaining--
			run.completed++
			c.finishLocked(run)
			fireProgress = c.progressLocked(run)
			status = statusAccepted
		}
	} else {
		c.stats.Stale++
	}
	c.mu.Unlock()

	if fireProgress != nil {
		fireProgress()
	}
	if status != statusAccepted {
		c.logf("dist: result for %s/%d from %q: %s", token, index, worker, status)
	}
	return status
}

// resultHash canonically hashes a shard result for duplicate
// comparison (json.Marshal is deterministic for these types).
func resultHash(res sim.DistShardResult) string {
	data, err := json.Marshal(res)
	if err != nil {
		return "unhashable: " + err.Error()
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// localRun is the degraded-mode worker: it claims shards like a remote
// worker but executes them in-process over the coordinator's own
// config (replay cache, fault wrappers included), through the same
// record path as the fleet.
func (c *Coordinator) localRun(ctx context.Context, run *gridRun, exp sim.Experiment, execCfg sim.Config, name string) {
	defer func() {
		c.mu.Lock()
		c.localActive--
		c.mu.Unlock()
	}()
	for ctx.Err() == nil {
		now := c.now()
		c.mu.Lock()
		var desc *ShardDesc
		if c.run == run {
			desc = c.claimShardLocked(run, name, true, now)
		}
		c.mu.Unlock()
		if desc == nil {
			return
		}
		res := execShard(ctx, exp, execCfg, *desc)
		c.mu.Lock()
		c.stats.LocalShards++
		c.mu.Unlock()
		c.submit(name, true, desc.Token, desc.Index, res)
	}
}

// execShard runs one shard in-process, converting any panic that
// escapes the sim layer into a wire panic so it is attributed, never
// fatal.
func execShard(ctx context.Context, exp sim.Experiment, execCfg sim.Config, desc ShardDesc) (out sim.DistShardResult) {
	defer func() {
		if r := recover(); r != nil {
			out = sim.DistShardResult{Panic: &sim.WireError{
				Msg: fmt.Sprint(r), Panic: true, Stack: string(debug.Stack()),
			}}
		}
	}()
	cfg := execCfg
	cfg.Ctx = ctx
	res, err := sim.RunDistShard(exp, cfg, desc.Grid, desc.Index)
	if err != nil {
		return sim.DistShardResult{Panic: &sim.WireError{Msg: err.Error()}}
	}
	return res
}

// Handler returns the coordinator's HTTP API under /dist/v1/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /dist/v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.register(req.Worker))
	})
	mux.HandleFunc("POST /dist/v1/claim", func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.claim(req.Worker))
	})
	mux.HandleFunc("POST /dist/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.heartbeat(req))
	})
	mux.HandleFunc("POST /dist/v1/result", func(w http.ResponseWriter, r *http.Request) {
		var req resultRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, resultResponse{Status: c.submit(req.Worker, false, req.Token, req.Index, req.Result)})
	})
	mux.HandleFunc("GET /dist/v1/traces/{hash}", func(w http.ResponseWriter, r *http.Request) {
		data, ok := c.traces.byHash(r.PathValue("hash"))
		if !ok {
			http.Error(w, "unknown trace hash", http.StatusNotFound)
			return
		}
		c.mu.Lock()
		c.stats.TraceFetches++
		c.mu.Unlock()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// traceStore materialises each (trace, events) stream once into the
// compact v3 encoding and serves it content-addressed by SHA-256.
type traceStore struct {
	mu      sync.Mutex
	entries map[string]*traceEntry
	hashes  map[string]*traceEntry
}

type traceEntry struct {
	once sync.Once
	data []byte
	hash string
	err  error
}

func newTraceStore() *traceStore {
	return &traceStore{
		entries: make(map[string]*traceEntry),
		hashes:  make(map[string]*traceEntry),
	}
}

// hashFor materialises (once) and content-addresses one trace stream.
func (s *traceStore) hashFor(name string, events int64) (string, error) {
	key := fmt.Sprintf("%s@%d", name, events)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		e = &traceEntry{}
		s.entries[key] = e
	}
	s.mu.Unlock()

	e.once.Do(func() {
		spec, ok := workload.ByName(name)
		if !ok {
			e.err = fmt.Errorf("dist: unknown trace %q", name)
			return
		}
		data, err := encodeTrace(trace.NewLimit(spec.Open(), events))
		if err != nil {
			e.err = err
			return
		}
		sum := sha256.Sum256(data)
		e.data = data
		e.hash = hex.EncodeToString(sum[:])
	})
	if e.err != nil {
		return "", e.err
	}
	s.mu.Lock()
	s.hashes[e.hash] = e
	s.mu.Unlock()
	return e.hash, nil
}

// byHash returns a materialised stream's bytes.
func (s *traceStore) byHash(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.hashes[hash]
	if e == nil || e.err != nil {
		return nil, false
	}
	return e.data, true
}

// encodeTrace drains src into the binary v3 encoding.
func encodeTrace(src trace.Source) ([]byte, error) {
	var buf writerBuffer
	w := trace.NewWriter(&buf)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Emit(ev); err != nil {
			return nil, err
		}
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.data, nil
}

// writerBuffer is a minimal append-only byte sink.
type writerBuffer struct{ data []byte }

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
