package dist

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"capred/internal/sim"
	"capred/internal/trace"
)

// testEvents keeps the equivalence experiments fast while still
// exercising thousands of predictions per shard.
const testEvents = 5_000

// equivExperiments covers every distinct leaf shape the drivers
// serialise: plain counters (fig5), timed cpu results (fig7), the
// classification tally (classes), the three-mode wrong-path loop, the
// address/value rows and the profiled multi-variant cell.
var equivExperiments = []string{
	"fig5", "fig7", "classes", "wrong-path", "addr-vs-value", "profile-assist",
}

// localTable is the oracle: the experiment run entirely in-process, no
// distribution seam installed. Plain-config oracles are cached across
// tests (the run is deterministic, so one computation serves them all).
func localTable(t *testing.T, name string, cfg sim.Config) string {
	t.Helper()
	e, ok := sim.ExperimentByName(name)
	if !ok {
		t.Fatalf("unknown experiment %q", name)
	}
	cacheable := cfg.WrapSource == nil && cfg.WrapSourceCtx == nil && cfg.WrapFactory == nil
	key := fmt.Sprintf("%s@%d", name, cfg.EventsPerTrace)
	if cacheable {
		oracleMu.Lock()
		got, ok := oracleTables[key]
		oracleMu.Unlock()
		if ok {
			return got
		}
	}
	got := e.Run(cfg).Table().String()
	if cacheable {
		oracleMu.Lock()
		oracleTables[key] = got
		oracleMu.Unlock()
	}
	return got
}

var (
	oracleMu     sync.Mutex
	oracleTables = map[string]string{}
)

func distTable(t *testing.T, c *Coordinator, name string, cfg sim.Config) string {
	t.Helper()
	e, ok := sim.ExperimentByName(name)
	if !ok {
		t.Fatalf("unknown experiment %q", name)
	}
	return c.RunExperiment(e, cfg).Table().String()
}

// fastCoord returns a coordinator tuned for test timescales.
func fastCoord(cfg CoordConfig) *Coordinator {
	if cfg.Lease == 0 {
		cfg.Lease = 2 * time.Second
	}
	if cfg.Tick == 0 {
		cfg.Tick = 5 * time.Millisecond
	}
	if cfg.LocalDelay == 0 {
		cfg.LocalDelay = time.Millisecond
	}
	return NewCoordinator(cfg)
}

// startWorkers runs n workers against the coordinator's HTTP API and
// returns them plus a shutdown func that drains them cleanly.
func startWorkers(t *testing.T, c *Coordinator, n int) ([]*Worker, func()) {
	t.Helper()
	srv := httptest.NewServer(c.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerConfig{
			Coordinator: srv.URL,
			Name:        fmt.Sprintf("w%d", i),
			Client:      srv.Client(),
		})
		workers[i] = w
		wg.Add(1)
		go func(ctx context.Context, w *Worker) {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", w.cfg.Name, err)
			}
		}(ctx, w)
	}
	return workers, func() {
		c.BeginDrain()
		drained := make(chan struct{})
		go func(ctx context.Context) {
			wg.Wait()
			close(drained)
		}(ctx)
		select {
		case <-drained:
		case <-time.After(10 * time.Second):
			cancel()
			wg.Wait()
		}
		cancel()
		srv.Close()
	}
}

// TestDegradedModeMatchesLocal runs every leaf shape through the
// coordinator with zero workers: the in-process fallback must produce
// byte-identical tables.
func TestDegradedModeMatchesLocal(t *testing.T) {
	cfg := sim.Config{EventsPerTrace: testEvents}
	c := fastCoord(CoordConfig{LocalWorkers: 2})
	for _, name := range equivExperiments {
		want := localTable(t, name, cfg)
		got := distTable(t, c, name, cfg)
		if got != want {
			t.Errorf("%s: degraded table differs from local\nlocal:\n%s\ndist:\n%s", name, want, got)
		}
	}
	if st := c.Stats(); st.LocalShards == 0 {
		t.Fatalf("no local shards executed: %+v", st)
	}
}

// TestFleetMatchesLocal runs experiments over real HTTP workers (no
// local fallback) and requires byte-identical tables.
func TestFleetMatchesLocal(t *testing.T) {
	cfg := sim.Config{EventsPerTrace: testEvents}
	c := fastCoord(CoordConfig{LocalWorkers: -1})
	_, stop := startWorkers(t, c, 2)
	defer stop()

	for _, name := range equivExperiments {
		want := localTable(t, name, cfg)
		got := distTable(t, c, name, cfg)
		if got != want {
			t.Errorf("%s: fleet table differs from local\nlocal:\n%s\ndist:\n%s", name, want, got)
		}
	}
	st := c.Stats()
	if st.LocalShards != 0 {
		t.Errorf("local fallback ran with a live fleet: %+v", st)
	}
	if st.Results == 0 {
		t.Errorf("no results accepted from the fleet: %+v", st)
	}
}

// TestSharedReplayCacheMatchesLocal distributes with the coordinator's
// own replay cache installed, as capsim does.
func TestSharedReplayCacheMatchesLocal(t *testing.T) {
	want := localTable(t, "fig5", sim.Config{EventsPerTrace: testEvents})
	cfg := sim.Config{EventsPerTrace: testEvents, ReplayCache: trace.NewReplayCache(0)}
	c := fastCoord(CoordConfig{LocalWorkers: 1})
	if got := distTable(t, c, "fig5", cfg); got != want {
		t.Errorf("cached degraded table differs from local\nlocal:\n%s\ndist:\n%s", want, got)
	}
}

// TestPanicAttribution: a leaf that panics in degraded mode must
// surface as an attributed failure identical to the local run's
// (degraded mode only: fault wrappers are live in-process values and
// do not travel to remote workers).
func TestPanicAttribution(t *testing.T) {
	mk := func() sim.Config {
		cfg := sim.Config{EventsPerTrace: testEvents}
		cfg.WrapSource = func(traceName string, src trace.Source) trace.Source {
			if traceName == "INT_gcc" {
				panic("injected source panic")
			}
			return src
		}
		return cfg
	}
	want := localTable(t, "fig5", mk())
	c := fastCoord(CoordConfig{LocalWorkers: 2})
	got := distTable(t, c, "fig5", mk())
	if got != want {
		t.Errorf("panic attribution differs\nlocal:\n%s\ndist:\n%s", want, got)
	}
}

// TestSubmitIdempotence drives the lease bookkeeping directly: first
// result wins, duplicates and mismatches are counted and discarded,
// stale tokens never touch the run.
func TestSubmitIdempotence(t *testing.T) {
	c := NewCoordinator(CoordConfig{})
	run := &gridRun{
		token:     "fig5.1.1",
		shards:    []*shardState{{}, {}},
		remaining: 2,
		doneCh:    make(chan struct{}),
	}
	run.shards[0].state = shardLeased
	run.shards[1].state = shardLeased
	c.run = run

	res := sim.DistShardResult{Leaves: []sim.LeafRecord{{Data: []byte(`{"Loads":1}`)}}}
	other := sim.DistShardResult{Leaves: []sim.LeafRecord{{Data: []byte(`{"Loads":2}`)}}}

	if st := c.submit("w1", false, "fig5.1.1", 0, res); st != statusAccepted {
		t.Fatalf("first submit: got %s", st)
	}
	if st := c.submit("w2", false, "fig5.1.1", 0, res); st != statusDuplicate {
		t.Fatalf("identical duplicate: got %s", st)
	}
	if st := c.submit("w2", false, "fig5.1.1", 0, other); st != statusMismatch {
		t.Fatalf("differing duplicate: got %s", st)
	}
	if st := c.submit("w1", false, "other.9.9", 0, res); st != statusStale {
		t.Fatalf("stale token: got %s", st)
	}
	if st := c.submit("w1", false, "fig5.1.1", 7, res); st != statusStale {
		t.Fatalf("out-of-range index: got %s", st)
	}
	if run.remaining != 1 {
		t.Fatalf("remaining = %d, want 1", run.remaining)
	}
	st := c.Stats()
	if st.Results != 1 || st.Duplicates != 2 || st.HashMismatches != 1 || st.Stale != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestLeaseExpiryFailsAfterMaxAttempts: a shard that keeps timing out
// must eventually fail with an attributed error, not cycle forever.
func TestLeaseExpiryFailsAfterMaxAttempts(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	now := base
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	c := NewCoordinator(CoordConfig{Lease: 10 * time.Second, MaxAttempts: 2, Now: clock})
	run := &gridRun{
		token:     "fig5.1.1",
		shards:    []*shardState{{desc: ShardDesc{Experiment: "fig5", Trace: "gcc"}}},
		remaining: 1,
		doneCh:    make(chan struct{}),
	}
	c.run = run

	for attempt := 1; attempt <= 2; attempt++ {
		resp := c.claim("flaky")
		if resp.Shard == nil {
			t.Fatalf("attempt %d: no shard leased", attempt)
		}
		advance(11 * time.Second)
		c.mu.Lock()
		c.expireLeasesLocked(run, clock())
		c.mu.Unlock()
	}

	s := run.shards[0]
	if s.state != shardFailed {
		t.Fatalf("shard state = %d, want failed", s.state)
	}
	if s.err == nil {
		t.Fatal("failed shard has no attributed error")
	}
	select {
	case <-run.doneCh:
	default:
		t.Fatal("run not finished after final shard failed")
	}
	st := c.Stats()
	if st.Reclaims != 1 || st.FailedShards != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWaitDrained: BeginDrain must flow to claiming workers and
// WaitDrained must observe them drained.
func TestWaitDrained(t *testing.T) {
	c := fastCoord(CoordConfig{LocalWorkers: -1})
	_, stop := startWorkers(t, c, 2)
	defer stop()
	c.BeginDrain()
	if !c.WaitDrained(context.Background(), 5*time.Second) {
		t.Fatal("fleet did not drain")
	}
}
