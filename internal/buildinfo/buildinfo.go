// Package buildinfo renders the one-line version banner every binary
// prints for -version, sourced from the build metadata the Go toolchain
// embeds (module version, VCS revision, dirty flag). Deployments of
// capserve in particular need to be identifiable from the running
// binary alone.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String returns the version banner for the named binary, e.g.
//
//	capserve (devel) go1.22.5 linux/amd64 3f9c2d1a8b07-dirty (2026-08-05T12:00:00Z)
//
// Fields that the build did not record (no VCS stamp, stripped build
// info) are omitted rather than faked.
func String(name string) string {
	bi, ok := debug.ReadBuildInfo()
	return render(name, bi, ok)
}

// render is the testable core of String.
func render(name string, bi *debug.BuildInfo, ok bool) string {
	version := "(unknown)"
	var rev, at string
	dirty := false
	if ok && bi != nil {
		version = bi.Main.Version
		if version == "" {
			version = "(devel)"
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.time":
				at = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s %s/%s", name, version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		b.WriteString(" " + rev)
		if dirty {
			b.WriteString("-dirty")
		}
	}
	if at != "" {
		b.WriteString(" (" + at + ")")
	}
	return b.String()
}
