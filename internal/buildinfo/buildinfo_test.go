package buildinfo

import (
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringAlwaysIdentifies(t *testing.T) {
	s := String("capserve")
	if !strings.HasPrefix(s, "capserve ") {
		t.Fatalf("banner %q does not lead with the binary name", s)
	}
	if !strings.Contains(s, runtime.Version()) {
		t.Fatalf("banner %q missing the Go version", s)
	}
	if !strings.Contains(s, runtime.GOOS+"/"+runtime.GOARCH) {
		t.Fatalf("banner %q missing the platform", s)
	}
}

func TestRenderWithVCSStamp(t *testing.T) {
	bi := &debug.BuildInfo{
		Main: debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.time", Value: "2026-08-05T00:00:00Z"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	s := render("traceinfo", bi, true)
	for _, want := range []string{"traceinfo v1.2.3", "0123456789ab-dirty", "(2026-08-05T00:00:00Z)"} {
		if !strings.Contains(s, want) {
			t.Errorf("banner %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "0123456789abcdef") {
		t.Errorf("banner %q should truncate the revision to 12 chars", s)
	}
}

func TestRenderWithoutBuildInfo(t *testing.T) {
	s := render("capsim", nil, false)
	if !strings.Contains(s, "(unknown)") {
		t.Fatalf("banner %q should admit the version is unknown", s)
	}
}
