package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// recordSleeps returns a Sleep that records requested delays without
// waiting.
func recordSleeps(got *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*got = append(*got, d)
		return nil
	}
}

func TestZeroValueRunsOnce(t *testing.T) {
	calls := 0
	err := Policy{}.Do(context.Background(), nil, func(int) error {
		calls++
		return errors.New("boom")
	})
	if calls != 1 || err == nil {
		t.Fatalf("calls=%d err=%v; want one failing attempt", calls, err)
	}
}

func TestAttemptBudgetAndTryNumbers(t *testing.T) {
	var tries []int
	err := Policy{Attempts: 3}.Do(context.Background(), nil, func(try int) error {
		tries = append(tries, try)
		return errors.New("always")
	})
	if err == nil || len(tries) != 3 {
		t.Fatalf("tries=%v err=%v; want 3 attempts then last error", tries, err)
	}
	for i, try := range tries {
		if try != i {
			t.Fatalf("attempt %d reported try=%d", i, try)
		}
	}
}

func TestSuccessStopsRetrying(t *testing.T) {
	calls := 0
	err := Policy{Attempts: 5}.Do(context.Background(), nil, func(int) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v; want success on third try", calls, err)
	}
}

func TestPermanentErrorStopsImmediately(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	err := Policy{Attempts: 5}.Do(context.Background(),
		func(err error) bool { return !errors.Is(err, permanent) },
		func(int) error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("calls=%d err=%v; want one attempt, permanent error", calls, err)
	}
}

func TestBackoffScheduleDeterministicWithoutRand(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		Attempts:  5,
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  45 * time.Millisecond,
		Sleep:     recordSleeps(&slept),
	}
	_ = p.Do(context.Background(), nil, func(int) error { return errors.New("x") })
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 45 * time.Millisecond}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Fatalf("slept %v; want %v", slept, want)
	}
}

func TestJitterDeterministicWhenSeeded(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		p := Policy{
			Attempts:  6,
			BaseDelay: 100 * time.Millisecond,
			Jitter:    0.5,
			Rand:      NewRand(42),
			Sleep:     recordSleeps(&slept),
		}
		_ = p.Do(context.Background(), nil, func(int) error { return errors.New("x") })
		return slept
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed gave different schedules:\n%v\n%v", a, b)
	}
	base := 100 * time.Millisecond
	lo, hi := base/2, base+base/2
	if a[0] < lo || a[0] > hi {
		t.Fatalf("first jittered delay %v outside [%v, %v]", a[0], lo, hi)
	}
	jittered := false
	for _, d := range a {
		if d%base != 0 {
			jittered = true
		}
	}
	if !jittered {
		t.Fatalf("jitter never perturbed the schedule: %v", a)
	}
}

func TestSleepBudgetStopsRetries(t *testing.T) {
	var slept []time.Duration
	calls := 0
	p := Policy{
		Attempts:  100,
		BaseDelay: 10 * time.Millisecond,
		Budget:    35 * time.Millisecond,
		Sleep:     recordSleeps(&slept),
	}
	err := p.Do(context.Background(), nil, func(int) error { calls++; return errors.New("x") })
	if err == nil {
		t.Fatal("want last error once the budget is spent")
	}
	// Planned sleeps: 10 + 20 = 30; the next (40) would blow the 35ms
	// budget, so exactly 3 attempts run.
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls=%d slept=%v; want 3 attempts and 2 sleeps under the budget", calls, slept)
	}
}

func TestCancelledContextReturnsAttemptError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attemptErr := errors.New("attempt failed")
	calls := 0
	err := Policy{Attempts: 5, BaseDelay: time.Millisecond}.Do(ctx, nil, func(int) error {
		calls++
		return attemptErr
	})
	if !errors.Is(err, attemptErr) || calls != 1 {
		t.Fatalf("calls=%d err=%v; want the attempt error after a cancelled backoff", calls, err)
	}
}
