// Package retry is the repo's single bounded-retry policy: a fixed
// attempt budget, optional jittered exponential backoff between
// attempts, and an optional total-sleep budget. The experiment
// harness uses it with a zero delay (transient trace-source retries
// are pure re-runs), the distributed fleet uses it with backoff and a
// budget for worker→coordinator RPCs.
//
// Determinism: a Policy never reads the wall clock or the global
// random source. Jitter is drawn from an explicitly provided
// *rand.Rand, so a seeded policy produces the same delay sequence on
// every run, and a policy without one backs off on the exact
// unjittered schedule. Sleeping is injectable for tests.
package retry

import (
	"context"
	"math/rand"
	"time"
)

// Policy bounds a retry loop. The zero value runs the attempt exactly
// once with no delays — retrying is always an explicit decision.
type Policy struct {
	// Attempts is the total number of tries (first attempt included).
	// Values below 1 mean 1: the attempt always runs at least once.
	Attempts int
	// BaseDelay is the sleep before the first retry; 0 retries
	// immediately (the experiment harness's transient-source mode).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; 0 means uncapped.
	MaxDelay time.Duration
	// Multiplier scales the delay between retries; values <= 1 default
	// to 2 (classic doubling).
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter×delay (clamped
	// to [0,1]). It needs Rand to be non-nil to take effect.
	Jitter float64
	// Budget caps the total planned sleep across all retries; once the
	// next delay would exceed it the loop stops and returns the last
	// attempt error. 0 means unlimited.
	Budget time.Duration
	// Rand is the jitter source. nil disables jitter, keeping the
	// schedule exactly deterministic.
	Rand *rand.Rand
	// Sleep overrides how delays are waited out (tests). nil sleeps on
	// a timer, honouring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// NewRand returns a seeded jitter source for Policy.Rand. It exists so
// packages under the determinism analyzer's scope can construct one
// without calling math/rand directly.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Do runs attempt until it succeeds or the policy is exhausted: at
// most Attempts tries, stopping early when retryable reports an error
// permanent (nil retries every error), when the sleep budget is
// spent, or when ctx is cancelled mid-backoff. It returns the last
// attempt's error (nil on success); attempt receives the zero-based
// try number.
func (p Policy) Do(ctx context.Context, retryable func(error) bool, attempt func(try int) error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepTimer
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	delay := p.BaseDelay
	var planned time.Duration
	for try := 0; ; try++ {
		err := attempt(try)
		if err == nil || try+1 >= attempts {
			return err
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		if d := p.jittered(delay); d > 0 {
			if p.Budget > 0 && planned+d > p.Budget {
				return err
			}
			planned += d
			if sleepErr := sleep(ctx, d); sleepErr != nil {
				// Cancelled mid-backoff: the attempt error is the useful
				// one — the sleep error is just "the caller gave up".
				return err
			}
		}
		delay = time.Duration(float64(delay) * mult)
		if p.MaxDelay > 0 && delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// jittered spreads d uniformly over [d−j·d, d+j·d] when a Rand is
// configured, and returns it unchanged otherwise.
func (p Policy) jittered(d time.Duration) time.Duration {
	if d <= 0 || p.Jitter <= 0 || p.Rand == nil {
		return d
	}
	j := p.Jitter
	if j > 1 {
		j = 1
	}
	span := time.Duration(float64(d) * j)
	if span <= 0 {
		return d
	}
	return d - span + time.Duration(p.Rand.Int63n(int64(2*span)+1))
}

// Sleep waits out d honouring ctx, returning ctx's error if cancelled
// first. It is the same timer the default Policy sleeps on, exported
// for callers that need a single context-aware pause (poll pacing)
// without a full retry loop.
func Sleep(ctx context.Context, d time.Duration) error { return sleepTimer(ctx, d) }

// sleepTimer is the default Sleep: a timer select against ctx.
func sleepTimer(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
