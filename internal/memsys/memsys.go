// Package memsys models the memory hierarchy of the paper's baseline
// processor (§4.1): a 32KB L1 data cache, a 1MB L2, and main memory, with
// set-associative, write-back, LRU caches. The timing model uses it to
// derive per-access load-to-use latencies.
package memsys

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Ways      int // associativity (power of two)
	HitCycles int // access latency on a hit
}

// Cache is a set-associative, write-back, true-LRU cache model. It tracks
// hits and misses; data values are not modelled, only presence.
type Cache struct {
	cfg      CacheConfig
	sets     int
	lineLow  uint
	tagShift uint
	setMask  uint32
	clock    uint32
	lines    []cacheLine

	Hits   int64
	Misses int64
}

type cacheLine struct {
	valid bool
	dirty bool
	tag   uint32
	age   uint32 // clock stamp of the last access; the set's minimum is LRU
}

// NewCache builds a cache. Size, line size and ways must describe a
// power-of-two set count.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Ways <= 0 {
		panic("memsys: cache geometry must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("memsys: set count must be a positive power of two")
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("memsys: line size must be a power of two")
	}
	lineLow := log2(uint(cfg.LineBytes))
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineLow:  lineLow,
		tagShift: lineLow + log2(uint(sets)),
		setMask:  uint32(sets - 1),
		lines:    make([]cacheLine, lines),
	}
}

func log2(n uint) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func (c *Cache) set(addr uint32) int {
	return int((addr >> c.lineLow) & c.setMask)
}

func (c *Cache) tag(addr uint32) uint32 {
	return addr >> c.tagShift
}

// Access looks up addr, filling on miss. It returns whether the access hit
// and, on miss, whether a dirty victim was evicted (write-back traffic).
func (c *Cache) Access(addr uint32, write bool) (hit, writeback bool) {
	base := c.set(addr) * c.cfg.Ways
	tag := c.tag(addr)
	victim := base
	for i := base; i < base+c.cfg.Ways; i++ {
		l := &c.lines[i]
		if l.valid && l.tag == tag {
			c.touch(base, i)
			if write {
				l.dirty = true
			}
			c.Hits++
			return true, false
		}
		if !l.valid {
			victim = i
		} else if c.lines[victim].valid && l.age < c.lines[victim].age {
			victim = i
		}
	}
	c.Misses++
	l := &c.lines[victim]
	writeback = l.valid && l.dirty
	l.valid, l.dirty, l.tag = true, write, tag
	c.touch(base, victim)
	return false, writeback
}

// Contains reports whether addr is resident without perturbing LRU or
// statistics.
func (c *Cache) Contains(addr uint32) bool {
	base := c.set(addr) * c.cfg.Ways
	tag := c.tag(addr)
	for i := base; i < base+c.cfg.Ways; i++ {
		l := &c.lines[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// touch stamps line i as most recently used. A monotone clock keeps the
// exact LRU order of the textbook increment-every-way scheme (stamps in
// a set are distinct, the minimum is always the least recently used)
// at O(1) per access instead of O(ways).
func (c *Cache) touch(base, i int) {
	c.clock++
	c.lines[i].age = c.clock
}

// HitRate returns hits / accesses.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// HierarchyConfig describes the two-level hierarchy plus memory latency.
type HierarchyConfig struct {
	L1, L2    CacheConfig
	MemCycles int
}

// DefaultHierarchyConfig mirrors §4.1: 32KB L1, 1MB L2, with latencies in
// line with the paper's era scaled to its 3-cycle load-to-use discussion.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:        CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Ways: 4, HitCycles: 4},
		L2:        CacheConfig{SizeBytes: 1 << 20, LineBytes: 32, Ways: 8, HitCycles: 8},
		MemCycles: 30,
	}
}

// Hierarchy is the two-level data-cache hierarchy.
type Hierarchy struct {
	cfg HierarchyConfig
	L1  *Cache
	L2  *Cache
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{cfg: cfg, L1: NewCache(cfg.L1), L2: NewCache(cfg.L2)}
}

// Access performs a load or store and returns its total latency in cycles.
func (h *Hierarchy) Access(addr uint32, write bool) int {
	lat := h.cfg.L1.HitCycles
	hit, _ := h.L1.Access(addr, write)
	if hit {
		return lat
	}
	lat += h.cfg.L2.HitCycles
	hit, _ = h.L2.Access(addr, write)
	if hit {
		return lat
	}
	return lat + h.cfg.MemCycles
}

// L1HitCycles exposes the L1 latency (the minimum load-to-use latency the
// paper's address prediction hides).
func (h *Hierarchy) L1HitCycles() int { return h.cfg.L1.HitCycles }

// Prefetch brings addr's line into the hierarchy without counting it as
// demand traffic in either level's hit statistics.
func (h *Hierarchy) Prefetch(addr uint32) {
	h1, m1 := h.L1.Hits, h.L1.Misses
	h2, m2 := h.L2.Hits, h.L2.Misses
	if hit, _ := h.L1.Access(addr, false); !hit {
		h.L2.Access(addr, false)
	}
	h.L1.Hits, h.L1.Misses = h1, m1
	h.L2.Hits, h.L2.Misses = h2, m2
}
