package memsys

import (
	"testing"
	"testing/quick"
)

func small() CacheConfig {
	return CacheConfig{SizeBytes: 256, LineBytes: 32, Ways: 2, HitCycles: 3}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := NewCache(small())
	if hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold access should miss")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Error("second access should hit")
	}
	// Same line, different word: hit.
	if hit, _ := c.Access(0x101C, false); !hit {
		t.Error("same-line access should hit")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", c.Hits, c.Misses)
	}
	if c.HitRate() != 2.0/3.0 {
		t.Errorf("HitRate = %v", c.HitRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 256B / 32B lines / 2 ways = 4 sets. Addresses 0, 0x200, 0x400 share
	// set 0 (set bits are addr>>5 & 3).
	c := NewCache(small())
	c.Access(0x000, false)
	c.Access(0x200, false)
	c.Access(0x000, false) // refresh 0 -> 0x200 is LRU
	c.Access(0x400, false) // evicts 0x200
	if !c.Contains(0x000) {
		t.Error("recently used line evicted")
	}
	if c.Contains(0x200) {
		t.Error("LRU line should have been evicted")
	}
	if !c.Contains(0x400) {
		t.Error("new line missing")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := NewCache(small())
	c.Access(0x000, true) // dirty
	c.Access(0x200, false)
	_, wb := c.Access(0x400, false) // evicts dirty 0x000
	if !wb {
		t.Error("evicting a dirty line must signal a write-back")
	}
	_, wb = c.Access(0x600, false) // evicts clean 0x200
	if wb {
		t.Error("evicting a clean line must not signal a write-back")
	}
}

func TestCacheWriteHitMarksDirty(t *testing.T) {
	c := NewCache(small())
	c.Access(0x000, false) // clean fill
	c.Access(0x000, true)  // write hit -> dirty
	c.Access(0x200, false)
	_, wb := c.Access(0x400, false) // evict 0x000
	if !wb {
		t.Error("write-hit line should be dirty on eviction")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, LineBytes: 32, Ways: 1},
		{SizeBytes: 256, LineBytes: 24, Ways: 1},
		{SizeBytes: 96, LineBytes: 32, Ways: 1}, // 3 sets
		{SizeBytes: 256, LineBytes: 32, Ways: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := NewCache(small())
	c.Access(0x000, false)
	hits, misses := c.Hits, c.Misses
	c.Contains(0x000)
	c.Contains(0xFF00)
	if c.Hits != hits || c.Misses != misses {
		t.Error("Contains must not change statistics")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	cfg := DefaultHierarchyConfig()
	cold := cfg.L1.HitCycles + cfg.L2.HitCycles + cfg.MemCycles
	// Cold: L1 miss + L2 miss + memory.
	if lat := h.Access(0x12345000, false); lat != cold {
		t.Errorf("cold access latency = %d, want %d", lat, cold)
	}
	// Now resident in both: L1 hit.
	if lat := h.Access(0x12345000, false); lat != cfg.L1.HitCycles {
		t.Errorf("warm access latency = %d, want %d", lat, cfg.L1.HitCycles)
	}
	if h.L1HitCycles() != cfg.L1.HitCycles {
		t.Errorf("L1HitCycles = %d", h.L1HitCycles())
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Access(0x100000, false)
	// Evict from L1 by filling its set (L1: 32KB/32B/4w = 256 sets;
	// same-set addresses differ by 8KB).
	for i := 1; i <= 4; i++ {
		h.Access(0x100000+uint32(i)*8192, false)
	}
	if h.L1.Contains(0x100000) {
		t.Fatal("line should have been evicted from L1")
	}
	// L2 (1MB, 8 ways) still holds it: latency is L1 miss + L2 hit.
	cfg := DefaultHierarchyConfig()
	if lat := h.Access(0x100000, false); lat != cfg.L1.HitCycles+cfg.L2.HitCycles {
		t.Errorf("L2 hit latency = %d, want %d", lat, cfg.L1.HitCycles+cfg.L2.HitCycles)
	}
}

// Property: hit rate is always in [0,1] and hits+misses equals accesses.
func TestCacheCountersProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewCache(small())
		for _, a := range addrs {
			c.Access(a, a%3 == 0)
		}
		if c.Hits+c.Misses != int64(len(addrs)) {
			return false
		}
		r := c.HitRate()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHierarchyPrefetchWarmsWithoutStats(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Prefetch(0x4000_0000)
	if h.L1.Hits != 0 || h.L1.Misses != 0 || h.L2.Hits != 0 || h.L2.Misses != 0 {
		t.Error("prefetch must not perturb demand statistics")
	}
	// The line is now resident: a demand access hits L1.
	cfg := DefaultHierarchyConfig()
	if lat := h.Access(0x4000_0000, false); lat != cfg.L1.HitCycles {
		t.Errorf("post-prefetch access latency = %d, want L1 hit (%d)", lat, cfg.L1.HitCycles)
	}
}
