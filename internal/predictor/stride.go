package predictor

// StrideConfig configures the stride predictor. The paper's "enhanced"
// stride predictor (§4.2, §5.3) adds the interval technique and
// control-flow indications to the classic stride scheme; both are
// disabled for the basic variant.
type StrideConfig struct {
	Entries       int
	Ways          int
	ConfMax       uint8
	ConfThreshold uint8
	Interval      bool     // record array length, stop speculating past it
	CF            CFConfig // control-flow indications (0 bits = off)
	Speculative   bool     // pipelined (prediction-gap) operation
}

// DefaultStrideConfig returns the enhanced stride predictor of §4.2:
// 4K-entry 2-way LB, interval counters and control-flow indications on.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{
		Entries: 4096, Ways: 2,
		ConfMax: 3, ConfThreshold: 2,
		Interval: true,
		CF:       CFConfig{Bits: 4, Table: true},
	}
}

// BasicStrideConfig returns the classic stride predictor with no
// enhancements, for the baseline table of §1.
func BasicStrideConfig() StrideConfig {
	cfg := DefaultStrideConfig()
	cfg.Interval = false
	cfg.CF = CFConfig{}
	return cfg
}

// strideState is the per-static-load stride prediction state kept in a
// load-buffer entry. It is shared verbatim by the hybrid predictor.
type strideState struct {
	last   uint32 // architectural last address
	stride int32
	have   bool // last is valid
	haveSt bool // stride is valid (second occurrence seen)
	conf   uint8

	// Interval technique: interval is the learned run length (number of
	// consecutive same-stride accesses before the last break); run counts
	// the current streak. The interval only gates speculation once two
	// consecutive runs agree (intConf), so a one-off data-dependent glitch
	// does not poison a long array's learned length.
	interval uint16
	run      uint16
	intConf  bool

	cf cfInd

	// Speculative (pipelined) state.
	pending   uint16 // predictions awaiting resolution
	specLast  uint32 // address of the most recently predicted instance
	specValid bool
}

// strideCore implements prediction/resolution over a strideState; the
// stand-alone Stride predictor and the Hybrid predictor both embed it.
type strideCore struct {
	cfg StrideConfig
}

// predict computes this component's opinion for the load. It advances
// speculative state when the core runs in speculative mode.
func (c *strideCore) predict(st *strideState, ref LoadRef) ComponentPrediction {
	if !c.cfg.Speculative {
		return c.predictFrom(st, st.last, st.have, ref)
	}
	if st.pending == 0 {
		st.specLast, st.specValid = st.last, st.have
	}
	cp := c.predictFrom(st, st.specLast, st.specValid, ref)
	if cp.Predicted {
		st.specLast = cp.Addr
	}
	st.pending++
	return cp
}

func (c *strideCore) predictFrom(st *strideState, base uint32, haveBase bool, ref LoadRef) ComponentPrediction {
	if !haveBase {
		return ComponentPrediction{}
	}
	addr := base + uint32(st.stride)
	confident := st.conf >= c.cfg.ConfThreshold &&
		st.cf.allow(c.cfg.CF, ref.GHR) &&
		c.intervalAllows(st)
	return ComponentPrediction{Addr: addr, Predicted: true, Confident: confident}
}

// intervalAllows applies the interval technique: once the learned array
// length is reached, trade a likely misprediction for a no-prediction.
func (c *strideCore) intervalAllows(st *strideState) bool {
	if !c.cfg.Interval || st.interval == 0 || !st.intConf {
		return true
	}
	return st.run < st.interval
}

// resolve verifies this component's part of a prediction and updates the
// architectural (and, on mispredictions, speculative) state.
func (c *strideCore) resolve(st *strideState, cp ComponentPrediction, speculated bool, ref LoadRef, actual uint32) {
	if c.cfg.Speculative && st.pending > 0 {
		st.pending--
	}
	correct := cp.Predicted && cp.Addr == actual

	// Confidence and control-flow indications reflect prediction outcome.
	if cp.Predicted {
		if correct {
			st.conf = satInc(st.conf, c.cfg.ConfMax)
		} else {
			st.conf = 0
		}
		st.cf.record(c.cfg.CF, ref.GHR, correct, speculated)
	}

	// Architectural stride update.
	if st.have {
		delta := int32(actual - st.last)
		if st.haveSt && delta == st.stride {
			if st.run < ^uint16(0) {
				st.run++
			}
		} else {
			// Stride break: learn the interval, restart the streak. The
			// interval is confirmed only when two consecutive runs agree
			// (within one element).
			if c.cfg.Interval && st.run > 0 {
				d := int(st.run) - int(st.interval)
				st.intConf = st.interval > 0 && d >= -1 && d <= 1
				st.interval = st.run
			}
			st.run = 0
			st.stride = delta
			st.haveSt = true
		}
	}
	st.last = actual
	st.have = true

	if c.cfg.Speculative {
		if st.pending == 0 {
			st.specLast, st.specValid = st.last, st.have
		} else if !correct || !st.specValid {
			// Catch-up (§5.2): extrapolate the stride over the pending
			// unresolved instances so the next prediction lands
			// correctly, instead of waiting for the window to drain.
			if st.haveSt {
				st.specLast = actual + uint32(st.stride)*uint32(st.pending)
				st.specValid = true
			} else {
				st.specValid = false
			}
		}
	}
}

// squash undoes Predict's in-flight bookkeeping for a flushed prediction.
// The speculative last-address cannot be rewound precisely (the flushed
// prediction already advanced it), so it is invalidated; the catch-up
// path re-establishes it at the next resolution.
func (c *strideCore) squash(st *strideState) {
	if !c.cfg.Speculative {
		return
	}
	if st.pending > 0 {
		st.pending--
	}
	st.specValid = false
	if st.pending == 0 {
		st.specLast, st.specValid = st.last, st.have
	}
}

// StrideComponent is the stride predictor packaged at component
// granularity — per-load state in its own load buffer over the shared
// core — for composition by the tournament meta-predictor
// (internal/predictor/tournament). The stand-alone Stride predictor is
// the same component wrapped as a full Predictor.
type StrideComponent struct {
	core strideCore
	lb   *LBTable[strideState]
}

// NewStrideComponent builds the stride component.
func NewStrideComponent(cfg StrideConfig) *StrideComponent {
	return &StrideComponent{
		core: strideCore{cfg: cfg},
		lb:   NewLBTable[strideState](cfg.Entries, cfg.Ways),
	}
}

// ID identifies the component in Prediction.Selected.
func (s *StrideComponent) ID() Component { return CompStride }

// Name returns the component's display name.
func (s *StrideComponent) Name() string {
	if s.core.cfg.Interval || s.core.cfg.CF.enabled() {
		return "stride+"
	}
	return "stride"
}

// Predict computes the component's opinion for the load, advancing
// speculative state in speculative mode. The LB entry is allocated at
// prediction time so in-flight instance counts are exact in pipelined
// mode.
func (s *StrideComponent) Predict(ref LoadRef) ComponentPrediction {
	st, _ := s.lb.Insert(ref.IP)
	return s.core.predict(st, ref)
}

// Resolve verifies the component's opinion and updates its tables.
func (s *StrideComponent) Resolve(ref LoadRef, cp ComponentPrediction, speculated bool, actual uint32) {
	st, _ := s.lb.Insert(ref.IP)
	s.core.resolve(st, cp, speculated, ref, actual)
}

// Squash undoes Predict's in-flight bookkeeping for a flushed
// prediction (§5.4 wrong-path recovery).
func (s *StrideComponent) Squash(ref LoadRef, cp ComponentPrediction) {
	if st := s.lb.Lookup(ref.IP); st != nil {
		s.core.squash(st)
	}
}

// Stride is the stand-alone stride predictor: the component wrapped as
// a full Predictor.
type Stride struct {
	comp *StrideComponent
}

// NewStride builds a stride predictor.
func NewStride(cfg StrideConfig) *Stride {
	return &Stride{comp: NewStrideComponent(cfg)}
}

// Name implements Predictor.
func (s *Stride) Name() string { return s.comp.Name() }

// Predict implements Predictor.
func (s *Stride) Predict(ref LoadRef) Prediction {
	cp := s.comp.Predict(ref)
	return Prediction{
		Addr:      cp.Addr,
		Predicted: cp.Predicted,
		Speculate: cp.Confident,
		Selected:  CompStride,
		Stride:    cp,
	}
}

// Resolve implements Predictor.
func (s *Stride) Resolve(ref LoadRef, p Prediction, actual uint32) {
	s.comp.Resolve(ref, p.Stride, p.Speculate, actual)
}

// Squash implements Squasher: the prediction was made on a wrong path and
// will never resolve.
func (s *Stride) Squash(ref LoadRef, p Prediction) {
	s.comp.Squash(ref, p.Stride)
}
