package predictor

import "testing"

func TestCFDisabledAlwaysAllows(t *testing.T) {
	var f cfInd
	cfg := CFConfig{}
	if !f.allow(cfg, 0b1111) {
		t.Error("disabled CF must always allow")
	}
	f.record(cfg, 0b1111, false, true)
	if !f.allow(cfg, 0b1111) {
		t.Error("disabled CF must ignore records")
	}
}

func TestCFSimpleBlocksLastMispredictionPath(t *testing.T) {
	var f cfInd
	cfg := CFConfig{Bits: 3}
	if !f.allow(cfg, 0b101) {
		t.Error("fresh CF must allow")
	}
	f.record(cfg, 0b101, false, true) // speculated misprediction
	if f.allow(cfg, 0b101) {
		t.Error("the misprediction path must be blocked")
	}
	if !f.allow(cfg, 0b011) {
		t.Error("other paths must stay allowed")
	}
	// A new misprediction replaces the pattern.
	f.record(cfg, 0b011, false, true)
	if !f.allow(cfg, 0b101) {
		t.Error("old pattern must be forgotten after a new misprediction")
	}
	if f.allow(cfg, 0b011) {
		t.Error("new pattern must be blocked")
	}
}

func TestCFSimpleIgnoresNonSpeculatedOutcomes(t *testing.T) {
	var f cfInd
	cfg := CFConfig{Bits: 2}
	f.record(cfg, 0b01, false, false) // wrong but not speculated
	if !f.allow(cfg, 0b01) {
		t.Error("non-speculated mispredictions must not block the simple scheme")
	}
	f.record(cfg, 0b01, true, true) // correct speculated access
	if !f.allow(cfg, 0b01) {
		t.Error("correct accesses must not block")
	}
}

func TestCFTablePerPathAccuracy(t *testing.T) {
	var f cfInd
	cfg := CFConfig{Bits: 2, Table: true}
	// Unknown paths are allowed.
	if !f.allow(cfg, 0b00) {
		t.Error("unknown path must be allowed")
	}
	f.record(cfg, 0b00, false, true)
	f.record(cfg, 0b01, true, true)
	if f.allow(cfg, 0b00) {
		t.Error("failed path must be blocked")
	}
	if !f.allow(cfg, 0b01) {
		t.Error("successful path must be allowed")
	}
	if !f.allow(cfg, 0b10) {
		t.Error("untouched path must be allowed")
	}
}

func TestCFTableUnblocksWhenPredictionsRecover(t *testing.T) {
	// The table variant tracks prediction correctness even while blocked,
	// so a path recovers once the prediction stream is right again.
	var f cfInd
	cfg := CFConfig{Bits: 2, Table: true}
	f.record(cfg, 0b10, false, true)
	if f.allow(cfg, 0b10) {
		t.Fatal("path should be blocked")
	}
	f.record(cfg, 0b10, true, false) // verified correct, not speculated
	if !f.allow(cfg, 0b10) {
		t.Error("path should unblock after a correct prediction")
	}
}

func TestCFMaskLimitsPatternWidth(t *testing.T) {
	var f cfInd
	cfg := CFConfig{Bits: 2}
	f.record(cfg, 0b1111, false, true) // only the low 2 bits matter
	if f.allow(cfg, 0b0011) {
		t.Error("patterns must compare on the low Bits only")
	}
	if !f.allow(cfg, 0b0001) {
		t.Error("differing low bits must be allowed")
	}
}
