package predictor

import "testing"

func TestProfilerClassifiesConstant(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 40; i++ {
		p.Observe(0x100, 0x8000)
	}
	if got := p.Profile().Class(0x100); got != ClassConstant {
		t.Errorf("constant load classified as %v", got)
	}
}

func TestProfilerClassifiesStride(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 40; i++ {
		p.Observe(0x100, uint32(0x8000+16*i))
	}
	if got := p.Profile().Class(0x100); got != ClassStride {
		t.Errorf("stride load classified as %v", got)
	}
}

func TestProfilerClassifiesContext(t *testing.T) {
	p := NewProfiler()
	bases := []uint32{0x1010, 0x8058, 0x4024, 0x20c8}
	for i := 0; i < 80; i++ {
		p.Observe(0x100, bases[i%4])
	}
	if got := p.Profile().Class(0x100); got != ClassContext {
		t.Errorf("recurring load classified as %v", got)
	}
}

func TestProfilerClassifiesIrregular(t *testing.T) {
	p := NewProfiler()
	x := uint32(7)
	for i := 0; i < 80; i++ {
		x = x*1664525 + 1013904223
		p.Observe(0x100, x&^3)
	}
	if got := p.Profile().Class(0x100); got != ClassIrregular {
		t.Errorf("random load classified as %v", got)
	}
}

func TestProfilerUnknownBelowMinSamples(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 5; i++ {
		p.Observe(0x100, 0x8000)
	}
	if got := p.Profile().Class(0x100); got != ClassUnknown {
		t.Errorf("under-sampled load classified as %v", got)
	}
}

func TestProfileZeroValue(t *testing.T) {
	var p *Profile
	if p.Class(0x100) != ClassUnknown {
		t.Error("nil profile should return unknown")
	}
	var p2 Profile
	if p2.Class(0x100) != ClassUnknown {
		t.Error("empty profile should return unknown")
	}
	p2.Set(0x100, ClassStride)
	if p2.Class(0x100) != ClassStride || p2.Len() != 1 {
		t.Error("Set/Class/Len broken")
	}
	if p2.CountByClass()[ClassStride] != 1 {
		t.Error("CountByClass broken")
	}
}

func TestLoadClassString(t *testing.T) {
	want := map[LoadClass]string{
		ClassUnknown: "unknown", ClassConstant: "constant",
		ClassStride: "stride", ClassContext: "context",
		ClassIrregular: "irregular",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("LoadClass(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestProfiledFiltersIrregularLoads(t *testing.T) {
	// An irregular load pollutes the hybrid's tables; with a profile it
	// never reaches them. Measure that the profiled predictor makes no
	// predictions for the irregular IP while still predicting a regular
	// one.
	var prof Profile
	prof.Set(0x200, ClassIrregular)

	p := NewProfiled(NewHybrid(DefaultHybridConfig()), &prof)
	if p.Name() != "hybrid+profile" {
		t.Errorf("Name = %q", p.Name())
	}
	var regular, irregular result
	x := uint32(5)
	for i := 0; i < 200; i++ {
		// Regular: constant load.
		refR := LoadRef{IP: 0x100}
		pr := p.Predict(refR)
		regular.loads++
		if pr.Speculate && pr.Addr == 0x7000 {
			regular.specCorrect++
		}
		p.Resolve(refR, pr, 0x7000)
		// Irregular: random load.
		x = x*1664525 + 1013904223
		refI := LoadRef{IP: 0x200}
		pr = p.Predict(refI)
		if pr.Predicted {
			irregular.predicted++
		}
		p.Resolve(refI, pr, x&^3)
	}
	wantAtLeast(t, "regular specCorrect", regular.specCorrect, 150)
	wantZero(t, "irregular predicted", irregular.predicted)
}

func TestProfiledReducesMispredictionsOnMixedWork(t *testing.T) {
	// Train a profile on a prefix, then compare plain vs profiled hybrid
	// on work with an irregular load aliasing useful table entries.
	mk := func() []access {
		var seq []access
		lists := []uint32{0x1010, 0x8058, 0x4024, 0x20c8}
		x := uint32(99)
		for i := 0; i < 800; i++ {
			seq = append(seq, ld(0x100, lists[i%4]+8, 8))
			x = x*1664525 + 1013904223
			seq = append(seq, ld(0x200, x&^3, 0))
		}
		return seq
	}

	// Profile pass.
	prof := NewProfiler()
	for _, a := range mk() {
		prof.Observe(a.ref.IP, a.addr)
	}
	profile := prof.Profile()
	if profile.Class(0x200) != ClassIrregular {
		t.Fatalf("random IP classified as %v", profile.Class(0x200))
	}
	if got := profile.Class(0x100); got != ClassContext {
		t.Fatalf("list IP classified as %v", got)
	}

	// Small LT so pollution matters ("helps reducing predictor size").
	cfg := DefaultHybridConfig()
	cfg.CAP.LTEntries = 64
	cfg.CAP.PFTableEntries = 0
	cfg.CAP.PFBits = 0
	plain := run(NewHybrid(cfg), mk())
	profiled := run(NewProfiled(NewHybrid(cfg), profile), mk())

	if profiled.specCorrect <= plain.specCorrect {
		t.Errorf("profile assist should protect the small LT: plain=%d profiled=%d",
			plain.specCorrect, profiled.specCorrect)
	}
}
