package predictor

import "testing"

func strideSeq(ip uint32, base uint32, stride, n int) []access {
	seq := make([]access, n)
	for i := 0; i < n; i++ {
		seq[i] = ld(ip, base+uint32(stride*i), 0)
	}
	return seq
}

func TestStridePredictsLinearTraversal(t *testing.T) {
	p := NewStride(BasicStrideConfig())
	r := run(p, strideSeq(0x100, 0x8000, 8, 50))
	// Warm-up: occurrence 1 (alloc), 2 (stride learned), then confidence
	// must build; from occurrence ~5 everything speculates correctly.
	wantAtLeast(t, "specCorrect", r.specCorrect, 44)
	wantZero(t, "mispred", r.mispred)
}

func TestStridePredictsConstant(t *testing.T) {
	// A stride predictor with stride 0 subsumes the last-address scheme.
	p := NewStride(BasicStrideConfig())
	r := run(p, repeatSeq([]access{ld(0x40, 0x9000, 4)}, 20))
	wantAtLeast(t, "specCorrect", r.specCorrect, 15)
	wantZero(t, "mispred", r.mispred)
}

func TestStrideFailsOnLinkedList(t *testing.T) {
	// The §2.1 pattern 18-88-48-28 is unpredictable by any stride scheme.
	p := NewStride(BasicStrideConfig())
	walk := listWalk(0x100, []uint32{0x10, 0x80, 0x40, 0x20}, 8)
	r := run(p, repeatSeq(walk, 40))
	if r.specCorrect > r.loads/10 {
		t.Errorf("stride predicted %d/%d of a linked-list walk; should be near zero",
			r.specCorrect, r.loads)
	}
}

func TestStrideBreakResetsConfidence(t *testing.T) {
	cfg := BasicStrideConfig()
	p := NewStride(cfg)
	seq := strideSeq(0x100, 0x1000, 4, 10)
	run(p, seq)
	// Break the stride; immediately after, prediction exists (new stride
	// not yet confirmed -> old stride used) but speculation must stop.
	p.Resolve(LoadRef{IP: 0x100}, p.Predict(LoadRef{IP: 0x100}), 0x9999)
	pr := p.Predict(LoadRef{IP: 0x100})
	if pr.Speculate {
		t.Error("speculation should stop right after a stride break")
	}
}

func TestStrideIntervalStopsSpeculationAtArrayEnd(t *testing.T) {
	cfg := DefaultStrideConfig()
	cfg.CF = CFConfig{} // isolate the interval mechanism
	p := NewStride(cfg)

	// Traverse a 10-element array repeatedly: address jumps back to the
	// base at the end of each traversal.
	traversal := strideSeq(0x200, 0x4000, 8, 10)
	basic := NewStride(BasicStrideConfig())

	rInterval := run(p, repeatSeq(traversal, 30))
	rBasic := run(basic, repeatSeq(traversal, 30))

	// The enhanced predictor trades mispredictions (at each wrap-around)
	// for no-predictions once the interval is learned.
	if rInterval.mispred >= rBasic.mispred {
		t.Errorf("interval mechanism did not reduce mispredictions: %d (interval) vs %d (basic)",
			rInterval.mispred, rBasic.mispred)
	}
	// It must still predict the body of each traversal.
	wantAtLeast(t, "specCorrect", rInterval.specCorrect, rBasic.specCorrect*8/10)
}

func TestStrideControlFlowIndicationBlocksRepeatOffender(t *testing.T) {
	cfg := BasicStrideConfig()
	cfg.CF = CFConfig{Bits: 2}
	p := NewStride(cfg)

	ref := LoadRef{IP: 0x300, GHR: 0b01}
	// Train a confident stride-0 prediction.
	for i := 0; i < 5; i++ {
		pr := p.Predict(ref)
		p.Resolve(ref, pr, 0x7000)
	}
	pr := p.Predict(ref)
	if !pr.Speculate {
		t.Fatal("expected confident speculation after training")
	}
	// Mispredict under GHR 0b01.
	p.Resolve(ref, pr, 0x7100)
	// Rebuild confidence under a different GHR.
	other := LoadRef{IP: 0x300, GHR: 0b10}
	for i := 0; i < 5; i++ {
		pr := p.Predict(other)
		p.Resolve(other, pr, 0x7100)
	}
	// Now, on the offending path, speculation is blocked...
	if got := p.Predict(ref); got.Speculate {
		t.Error("speculation should be blocked on the path of the last misprediction")
	}
	// ...but allowed on the other path.
	if got := p.Predict(other); !got.Speculate {
		t.Error("speculation should be allowed on an unrelated path")
	}
}

func TestStrideNames(t *testing.T) {
	if NewStride(BasicStrideConfig()).Name() != "stride" {
		t.Error("basic stride name")
	}
	if NewStride(DefaultStrideConfig()).Name() != "stride+" {
		t.Error("enhanced stride name")
	}
}

func TestStrideNegativeStride(t *testing.T) {
	p := NewStride(BasicStrideConfig())
	r := run(p, strideSeq(0x100, 0x8000, -16, 40))
	wantAtLeast(t, "specCorrect", r.specCorrect, 34)
	wantZero(t, "mispred", r.mispred)
}

func TestStrideAddressWraparound(t *testing.T) {
	// Address arithmetic is modulo 2^32; near-top addresses must not
	// break prediction.
	p := NewStride(BasicStrideConfig())
	r := run(p, strideSeq(0x100, 0xFFFF_FFF0, 8, 20))
	wantAtLeast(t, "specCorrect", r.specCorrect, 14)
	wantZero(t, "mispred", r.mispred)
}
