package predictor

import "testing"

// tinyCAP returns a small config for aliasing-sensitive tests.
func tinyCAP() CAPConfig {
	cfg := DefaultCAPConfig()
	cfg.LBEntries, cfg.LBWays = 64, 2
	cfg.LTEntries = 64
	return cfg
}

func TestCAPPredictsLinkedListWalk(t *testing.T) {
	// §2.1: the pattern 18-88-48-28 (bases 10-80-40-20, offset 8) repeats;
	// a context predictor must predict it, a stride predictor cannot.
	p := NewCAP(DefaultCAPConfig())
	walk := listWalk(0x100, []uint32{0x1010, 0x8058, 0x4024, 0x20c8}, 8)
	r := run(p, repeatSeq(walk, 50))
	// 200 loads; training costs a few traversals (PF bits require links be
	// seen twice; confidence needs two correct predictions).
	wantAtLeast(t, "specCorrect", r.specCorrect, 150)
	if r.mispred > 4 {
		t.Errorf("mispredictions = %d, want few", r.mispred)
	}
}

func TestCAPPredictsCallSitePattern(t *testing.T) {
	// §2.2 xlmatch: loads follow A1 A1 C U A2 A2 depending on call site.
	p := NewCAP(DefaultCAPConfig())
	walk := listWalk(0x200, []uint32{0xA110, 0xA110, 0xC058, 0xD0a4, 0xA230, 0xA230}, 4)
	r := run(p, repeatSeq(walk, 50))
	wantAtLeast(t, "specCorrect", r.specCorrect, 220)
	if r.mispred > 6 {
		t.Errorf("mispredictions = %d, want few", r.mispred)
	}
}

func TestCAPPredictsShortStrideLoop(t *testing.T) {
	// §4.3: a short, repeatedly executed stride run (the JAVA inner loop)
	// is 100% context-predictable once the links are recorded.
	p := NewCAP(DefaultCAPConfig())
	var walk []access
	for i := 0; i < 8; i++ {
		walk = append(walk, ld(0x300, uint32(0x939a+2*i), 0))
	}
	r := run(p, repeatSeq(walk, 40))
	wantAtLeast(t, "specCorrect", r.specCorrect, 240)
}

func TestCAPGlobalCorrelationSharesLinks(t *testing.T) {
	// Two static loads walk the same list: val at offset 2, next at
	// offset 8. With the base-address scheme they share LT links, so the
	// combined predictor trains faster and predicts more.
	bases := []uint32{0x1010, 0x8058, 0x4024, 0x20c8, 0x60e4}
	build := func(gc bool) result {
		cfg := DefaultCAPConfig()
		cfg.GlobalCorrelation = gc
		p := NewCAP(cfg)
		var seq []access
		for rep := 0; rep < 6; rep++ {
			for _, b := range bases {
				seq = append(seq, ld(0x100, b+2, 2), ld(0x200, b+8, 8))
			}
		}
		return run(p, seq)
	}
	with := build(true)
	without := build(false)
	if with.specCorrect <= without.specCorrect {
		t.Errorf("global correlation should increase correct predictions: with=%d without=%d",
			with.specCorrect, without.specCorrect)
	}
}

func TestCAPHistoryLengthDisambiguatesDirection(t *testing.T) {
	// §3.2 / figure 2: in a doubly linked list traversed alternately
	// forward and backward, the val field needs two addresses of history
	// to know the direction.
	bases := []uint32{0x1010, 0x2048, 0x30a4, 0x40c8}
	walk := func() []access {
		var seq []access
		for _, b := range bases { // forward
			seq = append(seq, ld(0x100, b+2, 2))
		}
		for i := len(bases) - 2; i > 0; i-- { // backward (endpoints shared)
			seq = append(seq, ld(0x100, bases[i]+2, 2))
		}
		return seq
	}()
	build := func(histLen int) result {
		cfg := DefaultCAPConfig()
		cfg.HistoryLen = histLen
		p := NewCAP(cfg)
		return run(p, repeatSeq(walk, 60))
	}
	short := build(1)
	long := build(4)
	if long.specCorrect <= short.specCorrect {
		t.Errorf("longer history should disambiguate direction: len4=%d len1=%d",
			long.specCorrect, short.specCorrect)
	}
}

func TestCAPLTTagsSuppressAliasMispredictions(t *testing.T) {
	// With a tiny LT, two unrelated loads alias. Tags convert alias
	// mispredictions into no-predictions (§3.4).
	mk := func(tagBits int) result {
		cfg := tinyCAP()
		cfg.TagBits = tagBits
		cfg.PFBits = 0 // isolate the tag mechanism
		cfg.CF = CFConfig{}
		p := NewCAP(cfg)
		var seq []access
		// Load 1: a stable recurring walk. Load 2: a long pseudo-random
		// sequence sharing the LT.
		walkBases := []uint32{0x1010, 0x8058, 0x4024, 0x20c8}
		rnd := uint32(12345)
		for rep := 0; rep < 200; rep++ {
			b := walkBases[rep%len(walkBases)]
			seq = append(seq, ld(0x100, b+8, 8))
			rnd = rnd*1664525 + 1013904223
			seq = append(seq, ld(0x200, rnd&0xFFFF_FFFC, 4))
		}
		return run(p, seq)
	}
	tagged := mk(8)
	untagged := mk(0)
	if tagged.mispred >= untagged.mispred {
		t.Errorf("LT tags should cut mispredictions: tagged=%d untagged=%d",
			tagged.mispred, untagged.mispred)
	}
}

func TestCAPPFBitsProtectLinksFromPollution(t *testing.T) {
	// §3.5: a long non-recurring sequence must not evict established
	// links. Train a walk, pollute via another load, then measure how
	// fast the walk predicts again.
	mk := func(pfBits int) (afterPollution result) {
		cfg := tinyCAP()
		cfg.PFBits = pfBits
		p := NewCAP(cfg)
		walk := listWalk(0x100, []uint32{0x1010, 0x8058, 0x4024, 0x20c8}, 8)
		run(p, repeatSeq(walk, 20)) // train
		// Pollute: 500 distinct addresses through another static load.
		var noise []access
		rnd := uint32(99)
		for i := 0; i < 500; i++ {
			rnd = rnd*1664525 + 1013904223
			noise = append(noise, ld(0x200, rnd&0xFFFF_FFFC, 4))
		}
		run(p, noise)
		return run(p, repeatSeq(walk, 3))
	}
	withPF := mk(4)
	withoutPF := mk(0)
	if withPF.specCorrect <= withoutPF.specCorrect {
		t.Errorf("PF bits should preserve links across pollution: with=%d without=%d",
			withPF.specCorrect, withoutPF.specCorrect)
	}
}

func TestCAPPFBitsRequireLinkSeenTwice(t *testing.T) {
	// With PF on, a link is recorded only on the second consecutive
	// identical update, adding one traversal of training time.
	walk := listWalk(0x100, []uint32{0x1010, 0x8058, 0x4024, 0x20c8}, 8)
	mk := func(pfBits int) result {
		cfg := DefaultCAPConfig()
		cfg.PFBits = pfBits
		return run(NewCAP(cfg), repeatSeq(walk, 6))
	}
	with := mk(4)
	without := mk(0)
	if with.specCorrect >= without.specCorrect {
		t.Errorf("PF bits should lengthen training: with=%d without=%d",
			with.specCorrect, without.specCorrect)
	}
	if with.specCorrect == 0 {
		t.Error("PF bits must not prevent training entirely")
	}
}

func TestCAPExternalPFTable(t *testing.T) {
	// The [Mora98]-style external PF table must behave like in-LT PF bits
	// for a simple recurring pattern.
	cfg := DefaultCAPConfig()
	cfg.PFTableEntries = 16384
	p := NewCAP(cfg)
	walk := listWalk(0x100, []uint32{0x1010, 0x8058, 0x4024, 0x20c8}, 8)
	r := run(p, repeatSeq(walk, 50))
	wantAtLeast(t, "specCorrect", r.specCorrect, 150)
}

func TestCAPSetAssociativeLT(t *testing.T) {
	cfg := DefaultCAPConfig()
	cfg.LTWays = 2
	p := NewCAP(cfg)
	walk := listWalk(0x100, []uint32{0x1010, 0x8058, 0x4024, 0x20c8}, 8)
	r := run(p, repeatSeq(walk, 50))
	wantAtLeast(t, "specCorrect", r.specCorrect, 150)
	if r.mispred > 4 {
		t.Errorf("mispredictions = %d, want few", r.mispred)
	}
}

func TestCAPConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*CAPConfig){
		"assoc LT without tags": func(c *CAPConfig) { c.LTWays = 2; c.TagBits = 0 },
		"zero history":          func(c *CAPConfig) { c.HistoryLen = 0 },
		"huge tags":             func(c *CAPConfig) { c.TagBits = 17 },
		"non-pow2 LT":           func(c *CAPConfig) { c.LTEntries = 1000 },
		"non-pow2 PF table":     func(c *CAPConfig) { c.PFTableEntries = 77 },
	} {
		cfg := DefaultCAPConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewCAP(cfg)
		}()
	}
}

func TestCAPAdvanceAges(t *testing.T) {
	// The shift(m)-xor scheme must age addresses out after HistoryLen
	// updates: two histories that differ only in an old address converge.
	core := newCAPCore(DefaultCAPConfig())
	h1, h2 := uint32(0), uint32(0)
	h1 = core.advance(h1, 0xAAAA0000)
	h2 = core.advance(h2, 0x55550000)
	if h1 == h2 {
		t.Fatal("different addresses should produce different histories")
	}
	for i := 0; i < core.cfg.HistoryLen; i++ {
		b := uint32(0x1000 * (i + 1))
		h1 = core.advance(h1, b)
		h2 = core.advance(h2, b)
	}
	if h1 != h2 {
		t.Errorf("histories did not converge after %d common updates: %x vs %x",
			core.cfg.HistoryLen, h1, h2)
	}
}

func TestCAPBaseAddressArithmetic(t *testing.T) {
	core := newCAPCore(DefaultCAPConfig())
	// Positive offset within 8 bits.
	if got := core.base(0x1008, 8); got != 0x1000 {
		t.Errorf("base(0x1008, 8) = %#x, want 0x1000", got)
	}
	// Negative offset: low 8 bits of -4 are 0xFC; base wraps consistently.
	b := core.base(0x0FFC, -4)
	if b+core.offLow(-4) != 0x0FFC {
		t.Error("negative-offset base arithmetic must reconstruct the address")
	}
	// Offsets beyond 8 bits keep their high part in the base (§3.3).
	if got := core.base(0x2104, 0x104); got != 0x2100 {
		t.Errorf("base(0x2104, 0x104) = %#x, want 0x2100 (only 8 LSBs stripped)", got)
	}
}

func TestCAPWithoutGlobalCorrelationUsesFullAddresses(t *testing.T) {
	cfg := DefaultCAPConfig()
	cfg.GlobalCorrelation = false
	core := newCAPCore(cfg)
	if got := core.base(0x1008, 8); got != 0x1008 {
		t.Errorf("without global correlation, base = %#x, want full address 0x1008", got)
	}
}

func TestCAPPredictAhead(t *testing.T) {
	// Train on a walk, then ask for the next three addresses at once —
	// the §5.4 multiple-ahead mechanism.
	p := NewCAP(DefaultCAPConfig())
	bases := []uint32{0x1010, 0x8058, 0x4024, 0x20c8}
	walk := listWalk(0x100, bases, 8)
	run(p, repeatSeq(walk, 40))

	// After the runs end, the history points past the last node; the
	// chain should name the next traversal's first three nodes.
	ahead := p.PredictAhead(LoadRef{IP: 0x100, Offset: 8}, 3)
	if len(ahead) != 3 {
		t.Fatalf("PredictAhead returned %d addresses, want 3", len(ahead))
	}
	want := []uint32{bases[0] + 8, bases[1] + 8, bases[2] + 8}
	for i := range want {
		if ahead[i] != want[i] {
			t.Errorf("ahead[%d] = %#x, want %#x", i, ahead[i], want[i])
		}
	}
}

func TestCAPPredictAheadUntrained(t *testing.T) {
	p := NewCAP(DefaultCAPConfig())
	if got := p.PredictAhead(LoadRef{IP: 0x999}, 4); got != nil {
		t.Errorf("untrained PredictAhead = %v, want nil", got)
	}
}

func TestCAPPredictAheadStopsAtChainEnd(t *testing.T) {
	// A single resolved pair (A -> B) can chain at most a couple of steps
	// before the links run out; the result must be truncated, not padded.
	cfg := DefaultCAPConfig()
	cfg.PFBits = 0 // train links on first sight
	p := NewCAP(cfg)
	ref := LoadRef{IP: 0x100, Offset: 0}
	for _, a := range []uint32{0x1010, 0x8058} {
		pr := p.Predict(ref)
		p.Resolve(ref, pr, a)
	}
	ahead := p.PredictAhead(ref, 8)
	if len(ahead) >= 8 {
		t.Errorf("chain should end early, got %d addresses", len(ahead))
	}
}
