package predictor

// cfInd implements the control-flow indications confidence mechanism of
// §3.4: when a speculative access mispredicts, the n LSBs of the global
// branch-history register are recorded; later predictions whose GHR
// matches the recorded pattern are not allowed to speculate.
//
// The advanced variant (PathTable) keeps 2^n bits, one per path, each
// recording the correctness of the last speculative access performed on
// that path; a path must not have a recorded failure to speculate.
type cfInd struct {
	pattern uint8 // GHR LSBs recorded at the last misprediction
	valid   bool
	seen    uint16 // advanced: paths with a recorded outcome
	ok      uint16 // advanced: paths whose last speculative access was correct
}

// CFConfig configures the control-flow indications mechanism. Bits of
// zero disables it entirely.
type CFConfig struct {
	Bits  int  // n: GHR bits considered (1..4)
	Table bool // use the advanced 2^n per-path variant
}

// NoCF returns a disabled control-flow indications configuration.
func NoCF() CFConfig { return CFConfig{} }

func (c CFConfig) enabled() bool { return c.Bits > 0 }

func (c CFConfig) mask() uint32 { return 1<<uint(c.Bits) - 1 }

// allow reports whether speculation is permitted under the current GHR.
func (f *cfInd) allow(cfg CFConfig, ghr uint32) bool {
	if !cfg.enabled() {
		return true
	}
	p := ghr & cfg.mask()
	if cfg.Table {
		bit := uint16(1) << p
		return f.seen&bit == 0 || f.ok&bit != 0
	}
	return !f.valid || uint8(p) != f.pattern
}

// record notes the outcome of a resolved prediction made under ghr. The
// simple scheme only reacts to speculated mispredictions (it records the
// path of the last misprediction); the table scheme tracks prediction
// correctness per path for every verified prediction, so a blocked path
// unblocks once predictions on it become correct again.
func (f *cfInd) record(cfg CFConfig, ghr uint32, correct, speculated bool) {
	if !cfg.enabled() {
		return
	}
	p := ghr & cfg.mask()
	if cfg.Table {
		bit := uint16(1) << p
		f.seen |= bit
		if correct {
			f.ok |= bit
		} else {
			f.ok &^= bit
		}
		return
	}
	if speculated && !correct {
		f.pattern = uint8(p)
		f.valid = true
	}
}
