package predictor

import "testing"

// access is one dynamic load for the test driver.
type access struct {
	ref  LoadRef
	addr uint32
}

// ld builds a simple access.
func ld(ip, addr uint32, offset int32) access {
	return access{ref: LoadRef{IP: ip, Offset: offset}, addr: addr}
}

// result aggregates driver outcomes.
type result struct {
	loads       int
	predicted   int
	speculated  int
	correct     int // correct among predicted
	specCorrect int // correct among speculated
	mispred     int // wrong among speculated
}

func (r result) accuracy() float64 {
	if r.speculated == 0 {
		return 0
	}
	return float64(r.specCorrect) / float64(r.speculated)
}

// run drives the predictor in immediate-update mode (§4): each prediction
// is resolved before the next one is made.
func run(p Predictor, seq []access) result {
	var r result
	for _, a := range seq {
		pr := p.Predict(a.ref)
		r.loads++
		if pr.Predicted {
			r.predicted++
			if pr.Addr == a.addr {
				r.correct++
			}
		}
		if pr.Speculate {
			r.speculated++
			if pr.Addr == a.addr {
				r.specCorrect++
			} else {
				r.mispred++
			}
		}
		p.Resolve(a.ref, pr, a.addr)
	}
	return r
}

// repeatSeq repeats a sequence n times.
func repeatSeq(seq []access, n int) []access {
	out := make([]access, 0, len(seq)*n)
	for i := 0; i < n; i++ {
		out = append(out, seq...)
	}
	return out
}

// listWalk builds the §2.1 linked-list pattern: one static load (ip)
// visiting bases in order, each with the given field offset.
func listWalk(ip uint32, bases []uint32, offset int32) []access {
	seq := make([]access, len(bases))
	for i, b := range bases {
		seq[i] = ld(ip, b+uint32(offset), offset)
	}
	return seq
}

func wantAtLeast(t *testing.T, name string, got, want int) {
	t.Helper()
	if got < want {
		t.Errorf("%s = %d, want at least %d", name, got, want)
	}
}

func wantZero(t *testing.T, name string, got int) {
	t.Helper()
	if got != 0 {
		t.Errorf("%s = %d, want 0", name, got)
	}
}
