package predictor

// UpdatePolicy selects when the hybrid predictor updates the link table
// (§4.3). The paper finds UpdateAlways slightly better on almost all
// traces because of unstable stride-like sequences.
type UpdatePolicy uint8

// Link-table update policies of §4.3.
const (
	// UpdateAlways updates the LT on every load resolution.
	UpdateAlways UpdatePolicy = iota
	// UpdateUnlessStrideCorrect skips the LT update when the stride
	// component predicted the load correctly.
	UpdateUnlessStrideCorrect
	// UpdateUnlessStrideSelected skips the LT update when the stride
	// component predicted correctly and its prediction was the one
	// selected for the speculative access.
	UpdateUnlessStrideSelected
)

// String names the policy.
func (u UpdatePolicy) String() string {
	switch u {
	case UpdateAlways:
		return "always"
	case UpdateUnlessStrideCorrect:
		return "unless-stride-correct"
	case UpdateUnlessStrideSelected:
		return "unless-stride-selected"
	default:
		return "invalid"
	}
}

// Selector counter states (2-bit, §3.7). The counter is initially biased
// towards weak CAP selection since CAP's base misprediction rate is lower.
const (
	SelStrongStride uint8 = iota
	SelWeakStride
	SelWeakCAP
	SelStrongCAP
)

// SelStateName returns a display name for a hybrid selector state.
func SelStateName(s uint8) string {
	return SelStateNameBetween(CompStride, CompCAP, s)
}

// SelStateNameBetween names a 2-bit selector state arbitrating lo (low
// counter values prefer it) against hi. The names come from the
// components' own name table rather than a closed stride/cap switch, so
// any tournament pairing renders correctly in breakdowns.
func SelStateNameBetween(lo, hi Component, s uint8) string {
	switch s {
	case SelStrongStride:
		return "strong-" + lo.String()
	case SelWeakStride:
		return "weak-" + lo.String()
	case SelWeakCAP:
		return "weak-" + hi.String()
	case SelStrongCAP:
		return "strong-" + hi.String()
	default:
		return "invalid"
	}
}

// HybridConfig configures the hybrid CAP/stride predictor of §3.7. The
// load buffer is shared: each entry carries both components' fields plus
// the selector counter.
type HybridConfig struct {
	Stride StrideConfig // Entries/Ways are taken from CAP.LBEntries/LBWays
	CAP    CAPConfig
	// StaticSelector, when not CompNone, always prefers that component
	// when both are confident instead of using the dynamic counter.
	StaticSelector Component
	UpdatePolicy   UpdatePolicy
	Speculative    bool
}

// DefaultHybridConfig returns the paper's baseline hybrid configuration.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{
		Stride:       DefaultStrideConfig(),
		CAP:          DefaultCAPConfig(),
		UpdatePolicy: UpdateAlways,
	}
}

type hybridEntry struct {
	stride strideState
	cap    capState
	sel    uint8
}

// Hybrid is the hybrid CAP/stride predictor: both components predict every
// dynamic load out of a shared load buffer; a speculative access is
// launched when at least one component is confident, with a per-entry
// 2-bit counter selecting between them when both are.
type Hybrid struct {
	cfg        HybridConfig
	strideCore strideCore
	capCore    *capCore
	lb         *LBTable[hybridEntry]
}

// NewHybrid builds a hybrid predictor. The Speculative flag is propagated
// to both components.
func NewHybrid(cfg HybridConfig) *Hybrid {
	cfg.Stride.Speculative = cfg.Speculative
	cfg.CAP.Speculative = cfg.Speculative
	return &Hybrid{
		cfg:        cfg,
		strideCore: strideCore{cfg: cfg.Stride},
		capCore:    newCAPCore(cfg.CAP),
		lb:         NewLBTable[hybridEntry](cfg.CAP.LBEntries, cfg.CAP.LBWays),
	}
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return "hybrid" }

// Predict implements Predictor. The LB entry is allocated at prediction
// time so that in-flight instance counts are exact in pipelined mode.
func (h *Hybrid) Predict(ref LoadRef) Prediction {
	e, existed := h.lb.Insert(ref.IP)
	if !existed {
		e.sel = SelWeakCAP // initial bias towards weak CAP (§4.2)
	}
	scp := h.strideCore.predict(&e.stride, ref)
	ccp := h.capCore.predict(&e.cap, ref)

	p := Prediction{Stride: scp, CAP: ccp, SelState: e.sel}
	switch {
	case scp.Confident && ccp.Confident:
		if h.selectCAP(e.sel) {
			p.Addr, p.Selected = ccp.Addr, CompCAP
		} else {
			p.Addr, p.Selected = scp.Addr, CompStride
		}
		p.Predicted, p.Speculate = true, true
	case ccp.Confident:
		p.Addr, p.Selected = ccp.Addr, CompCAP
		p.Predicted, p.Speculate = true, true
	case scp.Confident:
		p.Addr, p.Selected = scp.Addr, CompStride
		p.Predicted, p.Speculate = true, true
	case ccp.Predicted:
		p.Addr, p.Selected, p.Predicted = ccp.Addr, CompCAP, true
	case scp.Predicted:
		p.Addr, p.Selected, p.Predicted = scp.Addr, CompStride, true
	}
	return p
}

func (h *Hybrid) selectCAP(sel uint8) bool {
	if h.cfg.StaticSelector != CompNone {
		return h.cfg.StaticSelector == CompCAP
	}
	return sel >= SelWeakCAP
}

// Resolve implements Predictor.
func (h *Hybrid) Resolve(ref LoadRef, p Prediction, actual uint32) {
	e, existed := h.lb.Insert(ref.IP)
	if !existed {
		e.sel = SelWeakCAP // initial bias towards weak CAP (§4.2)
	}

	strideCorrect := p.Stride.Predicted && p.Stride.Addr == actual
	capCorrect := p.CAP.Predicted && p.CAP.Addr == actual

	// Selector counters record the relative performance of the two
	// components, updated after address verification (§3.7).
	if p.Stride.Predicted && p.CAP.Predicted {
		switch {
		case capCorrect && !strideCorrect:
			e.sel = satInc(e.sel, SelStrongCAP)
		case strideCorrect && !capCorrect:
			e.sel = satDec(e.sel)
		}
	}

	updateLT := true
	switch h.cfg.UpdatePolicy {
	case UpdateUnlessStrideCorrect:
		updateLT = !strideCorrect
	case UpdateUnlessStrideSelected:
		updateLT = !(strideCorrect && p.Speculate && p.Selected == CompStride)
	}

	spec := p.Speculate
	h.strideCore.resolve(&e.stride, p.Stride, spec && p.Selected == CompStride, ref, actual)
	h.capCore.resolve(&e.cap, p.CAP, spec && p.Selected == CompCAP, ref, actual, updateLT)
}

// Squash implements Squasher: both components drop the flushed in-flight
// prediction (§5.4 wrong-path recovery).
func (h *Hybrid) Squash(ref LoadRef, p Prediction) {
	e := h.lb.Lookup(ref.IP)
	if e == nil {
		return
	}
	h.strideCore.squash(&e.stride)
	h.capCore.squash(&e.cap)
}
