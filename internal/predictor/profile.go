package predictor

// Profile feedback / software assist — the first future-work direction of
// §6: "let the compiler/profiler classify loads according to the expected
// address pattern: last value, stride, context based, unknown. This
// reduces warm-up time, helps reducing predictor size, and eliminates
// prediction table pollution."
//
// Profiler observes a training stream and classifies every static load;
// Profiled wraps any predictor and uses the classification to keep
// irregular loads out of the prediction tables entirely.

// LoadClass is a profiled static load's expected address pattern.
type LoadClass uint8

// Load classes, ordered from most to least predictable.
const (
	ClassUnknown LoadClass = iota
	ClassConstant
	ClassStride
	ClassContext
	ClassIrregular
)

// String names the class.
func (c LoadClass) String() string {
	switch c {
	case ClassConstant:
		return "constant"
	case ClassStride:
		return "stride"
	case ClassContext:
		return "context"
	case ClassIrregular:
		return "irregular"
	default:
		return "unknown"
	}
}

// Profile maps static load IPs to classes. The zero value classifies
// everything as ClassUnknown.
type Profile struct {
	classes map[uint32]LoadClass
}

// Class returns the classification for ip.
func (p *Profile) Class(ip uint32) LoadClass {
	if p == nil || p.classes == nil {
		return ClassUnknown
	}
	return p.classes[ip]
}

// Set overrides the classification for ip (the compiler-hint path).
func (p *Profile) Set(ip uint32, c LoadClass) {
	if p.classes == nil {
		p.classes = make(map[uint32]LoadClass)
	}
	p.classes[ip] = c
}

// Len returns the number of classified static loads.
func (p *Profile) Len() int { return len(p.classes) }

// CountByClass tallies classifications.
func (p *Profile) CountByClass() map[LoadClass]int {
	out := make(map[LoadClass]int)
	for _, c := range p.classes {
		out[c]++
	}
	return out
}

// profState is the per-IP evidence the profiler accumulates.
type profState struct {
	count    int64
	constHit int64
	stridHit int64
	recurHit int64
	last     uint32
	stride   int32
	haveLast bool
	haveStr  bool
	ring     [8]uint32 // recent distinct addresses, for recurrence
	ringN    int
}

// Profiler classifies static loads from an observed address stream.
type Profiler struct {
	loads map[uint32]*profState
	// MinSamples is the occurrence count below which a load stays
	// ClassUnknown (too little evidence either way).
	MinSamples int64
	// Threshold is the hit fraction a pattern needs to win (default 0.75).
	Threshold float64
}

// NewProfiler returns a profiler with the default thresholds.
func NewProfiler() *Profiler {
	return &Profiler{
		loads:      make(map[uint32]*profState),
		MinSamples: 16,
		Threshold:  0.75,
	}
}

// Observe feeds one resolved load into the profiler.
func (p *Profiler) Observe(ip, addr uint32) {
	st := p.loads[ip]
	if st == nil {
		st = &profState{}
		p.loads[ip] = st
	}
	if st.haveLast {
		st.count++
		delta := int32(addr - st.last)
		if delta == 0 {
			st.constHit++
		}
		if st.haveStr && delta == st.stride {
			st.stridHit++
		}
		st.stride = delta
		st.haveStr = true
		for i := 0; i < st.ringN; i++ {
			if st.ring[i] == addr {
				st.recurHit++
				break
			}
		}
	}
	// Track recent distinct addresses for recurrence detection.
	found := false
	for i := 0; i < st.ringN; i++ {
		if st.ring[i] == addr {
			found = true
			break
		}
	}
	if !found {
		if st.ringN < len(st.ring) {
			st.ring[st.ringN] = addr
			st.ringN++
		} else {
			copy(st.ring[:], st.ring[1:])
			st.ring[len(st.ring)-1] = addr
		}
	}
	st.last = addr
	st.haveLast = true
}

// Profile produces the classification from the evidence so far.
func (p *Profiler) Profile() *Profile {
	out := &Profile{classes: make(map[uint32]LoadClass, len(p.loads))}
	for ip, st := range p.loads {
		out.classes[ip] = p.classify(st)
	}
	return out
}

func (p *Profiler) classify(st *profState) LoadClass {
	if st.count < p.MinSamples {
		return ClassUnknown
	}
	n := float64(st.count)
	switch {
	case float64(st.constHit)/n >= p.Threshold:
		return ClassConstant
	case float64(st.stridHit)/n >= p.Threshold:
		return ClassStride
	case float64(st.recurHit)/n >= p.Threshold:
		return ClassContext
	default:
		return ClassIrregular
	}
}

// Profiled wraps a predictor with profile feedback: loads the profile
// marks irregular never touch the prediction tables — no LB allocation,
// no LT updates, no wasted speculative accesses.
type Profiled struct {
	inner   Predictor
	profile *Profile
}

// NewProfiled wraps inner with the given profile.
func NewProfiled(inner Predictor, profile *Profile) *Profiled {
	return &Profiled{inner: inner, profile: profile}
}

// Name implements Predictor.
func (p *Profiled) Name() string { return p.inner.Name() + "+profile" }

// Predict implements Predictor.
func (p *Profiled) Predict(ref LoadRef) Prediction {
	if p.profile.Class(ref.IP) == ClassIrregular {
		return Prediction{}
	}
	return p.inner.Predict(ref)
}

// Resolve implements Predictor.
func (p *Profiled) Resolve(ref LoadRef, pr Prediction, actual uint32) {
	if p.profile.Class(ref.IP) == ClassIrregular {
		return
	}
	p.inner.Resolve(ref, pr, actual)
}
