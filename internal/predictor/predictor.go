// Package predictor implements the load-address predictors from
// "Correlated Load-Address Predictors" (Bekerman et al., ISCA 1999):
// a last-address predictor, a basic and an enhanced stride predictor, the
// correlated context-based address predictor (CAP), the hybrid CAP/stride
// predictor with a dynamic selector, and the control-based (g-share and
// call-path) predictors the paper evaluates as a negative result.
//
// All predictors implement the Predictor interface. Two resolution
// disciplines are supported with the same code:
//
//   - Immediate mode (§4 of the paper): call Predict, then immediately
//     Resolve with the actual address. Predict does not mutate state.
//   - Pipelined mode (§5): construct the predictor with Speculative set,
//     interpose internal/pipeline.Gap, and Resolve is called a
//     prediction-gap worth of loads later. Predict advances speculative
//     state; Resolve repairs it on mispredictions.
package predictor

import "fmt"

// LoadRef identifies a dynamic load at prediction time: everything the
// front end knows before the effective address is computed.
type LoadRef struct {
	IP     uint32 // static instruction address
	Offset int32  // immediate displacement from the instruction opcode
	GHR    uint32 // snapshot of the global branch-history register
	Path   uint32 // snapshot of the call-path history register
}

// Component identifies which component predictor produced an address.
// The zero value means none; values beyond the paper's hybrid pair name
// the tournament entrants (internal/predictor/tournament).
type Component uint8

// Component predictors known to the package and its composers.
const (
	CompNone Component = iota
	CompStride
	CompCAP
	CompLast
	CompMarkov
	CompDelta2
	CompCallPath
	numComponents // sentinel; keep last
)

// componentNames is the single open name table: every display surface —
// classification breakdowns, selector-state names, /metrics labels —
// derives component names from here (via the component's own ID) rather
// than a closed stride/cap switch, so new entrants render correctly.
var componentNames = [numComponents]string{
	CompNone:     "none",
	CompStride:   "stride",
	CompCAP:      "cap",
	CompLast:     "last",
	CompMarkov:   "markov",
	CompDelta2:   "delta2",
	CompCallPath: "callpath",
}

// String returns the component name.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return "invalid"
}

// ComponentPrediction is one side's opinion inside a hybrid prediction.
type ComponentPrediction struct {
	Addr      uint32
	Predicted bool // the component produced an address
	Confident bool // ... with enough confidence for a speculative access
}

// Prediction is the outcome of Predict for one dynamic load.
//
// Predicted means an address was produced (the paper: "on a LB hit, a
// load-address prediction is always performed"). Speculate means the
// confidence mechanisms all agreed, so a speculative cache access would be
// launched; only speculated predictions can cost a misprediction.
type Prediction struct {
	Addr      uint32
	Predicted bool
	Speculate bool

	// Hybrid detail, used by the selector-performance experiment (Fig. 8).
	Selected Component
	SelState uint8 // selector counter state at prediction time
	Stride   ComponentPrediction
	CAP      ComponentPrediction
}

// Correct reports whether the prediction produced the actual address.
func (p Prediction) Correct(actual uint32) bool {
	return p.Predicted && p.Addr == actual
}

// Mispredicted reports whether a speculative access was launched with a
// wrong address — the costly case.
func (p Prediction) Mispredicted(actual uint32) bool {
	return p.Speculate && p.Addr != actual
}

// Predictor is a load-address predictor.
type Predictor interface {
	// Predict produces a prediction for the load. In speculative mode it
	// also advances the predictor's speculative state.
	Predict(ref LoadRef) Prediction
	// Resolve verifies a previous prediction against the actual effective
	// address and updates the prediction tables. In pipelined operation
	// resolutions arrive in prediction order.
	Resolve(ref LoadRef, p Prediction, actual uint32)
	// Name returns a short identifier for reports.
	Name() string
}

// Squasher is implemented by predictors that support wrong-path recovery
// (§5.4): a prediction made on a mispredicted control path is flushed
// before it ever resolves. Squash undoes the in-flight bookkeeping of
// Predict — the paper's "reorder buffer-like or history buffer recovery
// mechanism ... to prevent destructive updates". Squashes must arrive in
// reverse prediction order (youngest first), as a pipeline flush does.
type Squasher interface {
	Squash(ref LoadRef, p Prediction)
}

// GHR is the global branch-history register: a shift register of recent
// branch outcomes, most recent in bit 0.
type GHR struct {
	bits uint32
}

// Update shifts the latest branch outcome into the register.
func (g *GHR) Update(taken bool) {
	g.bits <<= 1
	if taken {
		g.bits |= 1
	}
}

// Bits returns the n least-significant history bits.
func (g *GHR) Bits(n int) uint32 {
	if n <= 0 {
		return 0
	}
	if n >= 32 {
		return g.bits
	}
	return g.bits & (1<<uint(n) - 1)
}

// Value returns the full register.
func (g *GHR) Value() uint32 { return g.bits }

// PathHist is the call-path history register used by the control-based
// predictors: a hash over the instruction pointers of recent call sites.
type PathHist struct {
	bits uint32
}

// Push mixes a call-site IP into the path history.
func (p *PathHist) Push(ip uint32) {
	p.bits = p.bits<<3 ^ ip>>2
}

// Value returns the current path hash.
func (p *PathHist) Value() uint32 { return p.bits }

// log2 returns floor(log2(n)) for n ≥ 1.
func log2(n int) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// checkPow2 panics unless n is a positive power of two; table geometries
// in this package are all power-of-two.
func checkPow2(name string, n int) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("predictor: %s must be a positive power of two, got %d", name, n))
	}
}

// satInc increments a saturating counter bounded by max.
func satInc(c, max uint8) uint8 {
	if c < max {
		return c + 1
	}
	return c
}

// satDec decrements a saturating counter bounded below by zero.
func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}
