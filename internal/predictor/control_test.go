package predictor

import "testing"

func TestControlPredictsPathStableLoad(t *testing.T) {
	// A load whose address is fully determined by the call path is
	// predictable by the path-based predictor.
	p := NewControl(DefaultControlConfig(true))
	addrs := map[uint32]uint32{0x11: 0xA000, 0x22: 0xB000, 0x33: 0xC000}
	var r result
	for i := 0; i < 300; i++ {
		for path, addr := range addrs {
			ref := LoadRef{IP: 0x100, Path: path}
			pr := p.Predict(ref)
			r.loads++
			if pr.Speculate {
				r.speculated++
				if pr.Addr == addr {
					r.specCorrect++
				}
			}
			p.Resolve(ref, pr, addr)
		}
	}
	wantAtLeast(t, "specCorrect", r.specCorrect, r.loads*8/10)
}

func TestControlGShareUsesGHR(t *testing.T) {
	p := NewControl(DefaultControlConfig(false))
	// Address alternates with the GHR pattern.
	var r result
	for i := 0; i < 200; i++ {
		ghr := uint32(i % 2)
		addr := uint32(0xA000 + 0x100*(i%2))
		ref := LoadRef{IP: 0x100, GHR: ghr}
		pr := p.Predict(ref)
		r.loads++
		if pr.Speculate && pr.Addr == addr {
			r.specCorrect++
		}
		p.Resolve(ref, pr, addr)
	}
	wantAtLeast(t, "specCorrect", r.specCorrect, 180)
}

func TestControlFailsOnPointerChase(t *testing.T) {
	// §3.6: control-based predictors give poor results on loads that are
	// not correlated to control flow — here a list walk under a varying
	// GHR that does not encode position.
	p := NewControl(DefaultControlConfig(false))
	bases := []uint32{0x1010, 0x8058, 0x4024, 0x20c8, 0x60e4, 0x70a8}
	correct, loads := 0, 0
	for i := 0; i < 600; i++ {
		ref := LoadRef{IP: 0x100, GHR: uint32(i) * 2654435761}
		addr := bases[i%len(bases)] + 8
		pr := p.Predict(ref)
		loads++
		if pr.Speculate && pr.Addr == addr {
			correct++
		}
		p.Resolve(ref, pr, addr)
	}
	if correct > loads/4 {
		t.Errorf("control predictor should fail on uncorrelated pointer chase: %d/%d", correct, loads)
	}
}

func TestControlNames(t *testing.T) {
	if NewControl(DefaultControlConfig(false)).Name() != "gshare-addr" {
		t.Error("gshare name")
	}
	if NewControl(DefaultControlConfig(true)).Name() != "path-addr" {
		t.Error("path name")
	}
}
