package predictor

import (
	"testing"
	"testing/quick"
)

func TestGHR(t *testing.T) {
	var g GHR
	g.Update(true)
	g.Update(false)
	g.Update(true)
	g.Update(true)
	// Most recent in bit 0: 1,1,0,1 -> 0b1011.
	if got := g.Bits(4); got != 0b1011 {
		t.Errorf("Bits(4) = %04b, want 1011", got)
	}
	if got := g.Bits(2); got != 0b11 {
		t.Errorf("Bits(2) = %02b, want 11", got)
	}
	if got := g.Bits(0); got != 0 {
		t.Errorf("Bits(0) = %d, want 0", got)
	}
	if got := g.Bits(64); got != g.Value() {
		t.Errorf("Bits(64) = %x, want full value %x", got, g.Value())
	}
}

func TestPathHistChanges(t *testing.T) {
	var p PathHist
	v0 := p.Value()
	p.Push(0x400100)
	if p.Value() == v0 {
		t.Error("Push did not change path history")
	}
	v1 := p.Value()
	p.Push(0x500200)
	if p.Value() == v1 {
		t.Error("second Push did not change path history")
	}
}

func TestPathHistOrderSensitive(t *testing.T) {
	var a, b PathHist
	a.Push(0x100)
	a.Push(0x200)
	b.Push(0x200)
	b.Push(0x100)
	if a.Value() == b.Value() {
		t.Error("path history should be order sensitive")
	}
}

func TestPredictionCorrectAndMispredicted(t *testing.T) {
	p := Prediction{Addr: 100, Predicted: true, Speculate: true}
	if !p.Correct(100) || p.Correct(101) {
		t.Error("Correct misbehaves")
	}
	if p.Mispredicted(100) || !p.Mispredicted(101) {
		t.Error("Mispredicted misbehaves")
	}
	np := Prediction{}
	if np.Correct(0) {
		t.Error("unpredicted load cannot be correct")
	}
	if np.Mispredicted(0) {
		t.Error("non-speculated load cannot mispredict")
	}
}

func TestSatCounters(t *testing.T) {
	var c uint8
	for i := 0; i < 10; i++ {
		c = satInc(c, 3)
	}
	if c != 3 {
		t.Errorf("satInc saturation: got %d, want 3", c)
	}
	for i := 0; i < 10; i++ {
		c = satDec(c)
	}
	if c != 0 {
		t.Errorf("satDec floor: got %d, want 0", c)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]uint{1: 0, 2: 1, 4: 2, 4096: 12, 8192: 13}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCheckPow2Panics(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12, 4095} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("checkPow2(%d) did not panic", n)
				}
			}()
			checkPow2("x", n)
		}()
	}
	// Must not panic for powers of two.
	checkPow2("x", 1)
	checkPow2("x", 4096)
}

func TestComponentString(t *testing.T) {
	if CompStride.String() != "stride" || CompCAP.String() != "cap" || CompNone.String() != "none" {
		t.Error("Component.String wrong")
	}
}

// Property: GHR.Bits is always a sub-mask of Value.
func TestGHRBitsProperty(t *testing.T) {
	f := func(updates []bool, n uint8) bool {
		var g GHR
		for _, u := range updates {
			g.Update(u)
		}
		k := int(n % 33)
		bits := g.Bits(k)
		if k >= 32 {
			return bits == g.Value()
		}
		return bits == g.Value()&(1<<uint(k)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
