package predictor

import "testing"

func TestLastConstantAddress(t *testing.T) {
	p := NewLast(DefaultLastConfig())
	seq := repeatSeq([]access{ld(0x100, 0x8000, 0)}, 20)
	r := run(p, seq)
	// First occurrence misses; then conf must reach threshold (2 correct
	// resolutions) before speculation: 20 - 1 - 2 = 17 speculated correct.
	wantAtLeast(t, "specCorrect", r.specCorrect, 16)
	wantZero(t, "mispred", r.mispred)
}

func TestLastDoesNotPredictStride(t *testing.T) {
	p := NewLast(DefaultLastConfig())
	var seq []access
	for i := 0; i < 50; i++ {
		seq = append(seq, ld(0x100, uint32(0x8000+8*i), 0))
	}
	r := run(p, seq)
	wantZero(t, "specCorrect", r.specCorrect)
	// Confidence never reaches threshold, so no speculation and thus no
	// costly mispredictions either.
	wantZero(t, "mispred", r.mispred)
}

func TestLastConfidenceResetOnChange(t *testing.T) {
	p := NewLast(DefaultLastConfig())
	seq := repeatSeq([]access{ld(1<<4, 0xA0, 0)}, 10)
	seq = append(seq, ld(1<<4, 0xB0, 0)) // change
	seq = append(seq, ld(1<<4, 0xB0, 0)) // conf 1
	pr := p.Predict(LoadRef{IP: 1 << 4})
	_ = pr
	run(p, seq)
	// Right after the change, two occurrences passed: conf == 1 < 2.
	got := p.Predict(LoadRef{IP: 1 << 4})
	if !got.Predicted || got.Addr != 0xB0 {
		t.Fatalf("prediction after change = %+v, want addr 0xB0", got)
	}
	if got.Speculate {
		t.Error("should not speculate before confidence rebuilds")
	}
}

func TestLastCapacityConflict(t *testing.T) {
	// Tiny table: 2 entries, 1 way -> 2 sets. Three hot loads thrash.
	p := NewLast(LastConfig{Entries: 2, Ways: 1, ConfMax: 3, ConfThreshold: 2})
	var seq []access
	for i := 0; i < 30; i++ {
		seq = append(seq,
			ld(0<<2, 0x10, 0),
			ld(2<<2, 0x20, 0), // same set as 0 when sets==2? (ip>>2)&1: 0 and 2 -> sets 0,0... pick 3 ips covering both sets
			ld(4<<2, 0x30, 0),
		)
	}
	r := run(p, seq)
	// With thrashing, at least the two same-set loads never hit.
	if r.specCorrect == r.loads {
		t.Error("expected conflicts in a 2-entry table")
	}
}
