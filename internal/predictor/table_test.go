package predictor

import (
	"testing"
	"testing/quick"
)

func TestLBTableLookupMiss(t *testing.T) {
	tb := NewLBTable[int](16, 2)
	if tb.Lookup(0x1000) != nil {
		t.Error("lookup on empty table should miss")
	}
}

func TestLBTableInsertAndLookup(t *testing.T) {
	tb := NewLBTable[int](16, 2)
	v, existed := tb.Insert(0x1000)
	if existed {
		t.Error("first insert should not report existing")
	}
	*v = 42
	got := tb.Lookup(0x1000)
	if got == nil || *got != 42 {
		t.Fatalf("lookup after insert = %v, want 42", got)
	}
	v2, existed := tb.Insert(0x1000)
	if !existed || *v2 != 42 {
		t.Error("second insert should find the existing entry")
	}
}

func TestLBTableLRUEviction(t *testing.T) {
	// 4 entries, 2 ways -> 2 sets. IPs in the same set: set bits are
	// (ip>>2)&1, so ip=0, 8, 16 share set 0.
	tb := NewLBTable[int](4, 2)
	a, _ := tb.Insert(0)
	*a = 1
	b, _ := tb.Insert(8)
	*b = 2
	// Touch 0 so 8 becomes LRU.
	if tb.Lookup(0) == nil {
		t.Fatal("entry 0 vanished")
	}
	c, _ := tb.Insert(16)
	*c = 3
	if tb.Lookup(8) != nil {
		t.Error("LRU entry (ip 8) should have been evicted")
	}
	if got := tb.Lookup(0); got == nil || *got != 1 {
		t.Error("MRU entry (ip 0) should have survived")
	}
	if got := tb.Lookup(16); got == nil || *got != 3 {
		t.Error("new entry (ip 16) missing")
	}
}

func TestLBTableEvictedEntryIsZeroed(t *testing.T) {
	tb := NewLBTable[int](2, 2)
	a, _ := tb.Insert(0)
	*a = 7
	b, _ := tb.Insert(8)
	*b = 8
	// Set is full; inserting a third evicts LRU (ip 0).
	c, existed := tb.Insert(16)
	if existed {
		t.Error("insert after eviction should report new entry")
	}
	if *c != 0 {
		t.Errorf("recycled entry not zeroed: %d", *c)
	}
}

func TestLBTableDirectMapped(t *testing.T) {
	tb := NewLBTable[int](4, 1)
	v, _ := tb.Insert(0x100)
	*v = 5
	// 0x100>>2 = 0x40, set = 0x40 & 3 = 0; conflicting ip maps same set:
	conflict := uint32(0x100 + 4*4) // next multiple landing in set 0
	tb.Insert(conflict)
	if tb.Lookup(0x100) != nil {
		t.Error("direct-mapped conflict should evict")
	}
}

func TestLBTableGeometryPanics(t *testing.T) {
	for _, g := range []struct{ e, w int }{{0, 1}, {7, 1}, {4, 3}, {2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLBTable(%d,%d) did not panic", g.e, g.w)
				}
			}()
			NewLBTable[int](g.e, g.w)
		}()
	}
}

// Property: after inserting an IP, lookup always finds it (until evicted
// by a conflicting insert), and distinct tags never alias.
func TestLBTableNoFalseHits(t *testing.T) {
	f := func(ips []uint32) bool {
		tb := NewLBTable[uint32](64, 2)
		written := make(map[uint32]uint32)
		for _, ip := range ips {
			v, _ := tb.Insert(ip)
			*v = ip
			written[ip] = ip
		}
		// Any hit must return the value written for exactly that IP.
		for ip := range written {
			if got := tb.Lookup(ip); got != nil && *got != ip {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLBTableEntries(t *testing.T) {
	if got := NewLBTable[int](4096, 2).Entries(); got != 4096 {
		t.Errorf("entries() = %d, want 4096", got)
	}
}
