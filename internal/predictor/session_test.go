package predictor

import "testing"

// TestSessionTracksHistory verifies the façade maintains the same GHR
// and path registers a manual driver would.
func TestSessionTracksHistory(t *testing.T) {
	s := NewSession(NewCAP(DefaultCAPConfig()))
	var ghr GHR
	var path PathHist
	outcomes := []bool{true, false, true, true}
	for _, taken := range outcomes {
		s.Branch(taken)
		ghr.Update(taken)
	}
	calls := []uint32{0x400100, 0x500040}
	for _, ip := range calls {
		s.Call(ip)
		path.Push(ip)
	}
	ref := s.Ref(0x400200, 8)
	if ref.GHR != ghr.Value() || ref.Path != path.Value() {
		t.Fatalf("Ref registers diverge: got GHR %#x Path %#x, want %#x %#x",
			ref.GHR, ref.Path, ghr.Value(), path.Value())
	}
	if ref.IP != 0x400200 || ref.Offset != 8 {
		t.Fatalf("Ref load fields wrong: %+v", ref)
	}
}

// TestSessionLoadResolves checks Load performs a Predict/Resolve pair:
// after seeing the same load repeatedly, a last-address predictor must
// start predicting its address, which requires the Resolve half to have
// run.
func TestSessionLoadResolves(t *testing.T) {
	s := NewSession(NewLast(DefaultLastConfig()))
	const ip, addr = 0x400100, 0x8000
	var predicted bool
	for i := 0; i < 64; i++ {
		pr := s.Load(ip, 0, addr)
		if pr.Predicted && pr.Addr == addr {
			predicted = true
		}
	}
	if !predicted {
		t.Fatal("constant load never predicted: Resolve not reaching the predictor")
	}
}
