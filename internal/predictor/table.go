package predictor

// LBTable is a generic set-associative table indexed and tagged by static
// instruction address, with true-LRU replacement inside each set. All the
// load buffers in this package (last-address, stride, CAP, hybrid) are
// instances of it. It is exported so composing packages — the tournament
// meta-predictor's chooser table — share the exact allocation and LRU
// discipline of the in-package load buffers.
type LBTable[T any] struct {
	sets     int
	ways     int
	setLow   uint // bits to shift IP before set selection
	setMask  uint32
	tagShift uint // setLow + log2(sets), precomputed off the hot path
	slots    []lbSlot[T]
}

type lbSlot[T any] struct {
	valid bool
	tag   uint32
	age   uint32 // lower is more recently used
	val   T
}

// NewLBTable builds a table with the given total entry count and
// associativity; both must be powers of two with entries ≥ ways.
func NewLBTable[T any](entries, ways int) *LBTable[T] {
	checkPow2("LB entries", entries)
	checkPow2("LB ways", ways)
	if ways > entries {
		panic("predictor: LB ways exceed entries")
	}
	sets := entries / ways
	return &LBTable[T]{
		sets:     sets,
		ways:     ways,
		setLow:   2, // instructions are 4-byte aligned in our traces
		setMask:  uint32(sets - 1),
		tagShift: 2 + log2(sets),
		slots:    make([]lbSlot[T], entries),
	}
}

func (t *LBTable[T]) set(ip uint32) int {
	return int((ip >> t.setLow) & t.setMask)
}

func (t *LBTable[T]) tag(ip uint32) uint32 {
	return ip >> t.tagShift
}

// Lookup returns the entry for ip, or nil on a miss. A hit refreshes LRU.
func (t *LBTable[T]) Lookup(ip uint32) *T {
	base := t.set(ip) * t.ways
	tag := t.tag(ip)
	for i := base; i < base+t.ways; i++ {
		s := &t.slots[i]
		if s.valid && s.tag == tag {
			t.touch(base, i)
			return &s.val
		}
	}
	return nil
}

// Insert returns the entry for ip, allocating (and evicting the LRU way)
// if absent. The second result is true when the entry already existed.
func (t *LBTable[T]) Insert(ip uint32) (*T, bool) {
	base := t.set(ip) * t.ways
	tag := t.tag(ip)
	victim := base
	for i := base; i < base+t.ways; i++ {
		s := &t.slots[i]
		if s.valid && s.tag == tag {
			t.touch(base, i)
			return &s.val, true
		}
		if !s.valid {
			victim = i
		} else if t.slots[victim].valid && s.age > t.slots[victim].age {
			victim = i
		}
	}
	s := &t.slots[victim]
	var zero T
	s.valid = true
	s.tag = tag
	s.val = zero
	t.touch(base, victim)
	return &s.val, false
}

// touch marks slot i most recently used within its set.
func (t *LBTable[T]) touch(base, i int) {
	for j := base; j < base+t.ways; j++ {
		if t.slots[j].valid {
			t.slots[j].age++
		}
	}
	t.slots[i].age = 0
}

// entries returns the table capacity.
func (t *LBTable[T]) Entries() int { return t.sets * t.ways }
