package predictor

// Session is a step-wise façade over a predictor: it owns the global
// branch-history and call-path registers that RunTrace maintains
// internally, and exposes the per-event steps — branch outcome, call
// site, load — one at a time. It exists for callers that do not hold a
// whole trace.Source, such as a server session fed events over the
// network: stepping a Session over an event stream performs exactly the
// operations RunTrace's immediate-update loop performs, so the counters
// a caller records are bit-identical to an offline run over the same
// events.
type Session struct {
	p    Predictor
	ghr  GHR
	path PathHist
}

// NewSession wraps p with fresh history registers.
func NewSession(p Predictor) *Session { return &Session{p: p} }

// Predictor returns the wrapped predictor.
func (s *Session) Predictor() Predictor { return s.p }

// Branch shifts a branch outcome into the global history register.
func (s *Session) Branch(taken bool) { s.ghr.Update(taken) }

// Call mixes a call-site IP into the path-history register.
func (s *Session) Call(ip uint32) { s.path.Push(ip) }

// Ref assembles the LoadRef for a dynamic load under the current
// history registers — everything the front end knows before the
// effective address resolves.
func (s *Session) Ref(ip uint32, offset int32) LoadRef {
	return LoadRef{IP: ip, Offset: offset, GHR: s.ghr.Value(), Path: s.path.Value()}
}

// Load predicts one dynamic load and immediately resolves it against the
// actual effective address (the paper's immediate-update mode),
// returning the prediction for the caller to record.
func (s *Session) Load(ip uint32, offset int32, actual uint32) Prediction {
	ref := s.Ref(ip, offset)
	pr := s.p.Predict(ref)
	s.p.Resolve(ref, pr, actual)
	return pr
}
