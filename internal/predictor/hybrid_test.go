package predictor

import "testing"

func TestHybridPredictsBothPatternClasses(t *testing.T) {
	p := NewHybrid(DefaultHybridConfig())
	// Interleave a long array walk (stride territory) with a linked-list
	// walk (CAP territory) on two static loads.
	var seq []access
	lists := []uint32{0x1010, 0x8058, 0x4024, 0x20c8}
	for i := 0; i < 200; i++ {
		seq = append(seq, ld(0x100, uint32(0x100000+16*i), 0))
		seq = append(seq, ld(0x200, lists[i%4]+8, 8))
	}
	r := run(p, seq)
	wantAtLeast(t, "specCorrect", r.specCorrect, 340) // out of 400
	if r.mispred > 8 {
		t.Errorf("mispredictions = %d, want few", r.mispred)
	}
}

func TestHybridBeatsComponentsOnMixedWork(t *testing.T) {
	mixed := func() []access {
		var seq []access
		lists := []uint32{0x1010, 0x8058, 0x4024, 0x20c8}
		for i := 0; i < 300; i++ {
			seq = append(seq, ld(0x100, uint32(0x100000+16*i), 0))
			seq = append(seq, ld(0x200, lists[i%4]+8, 8))
		}
		return seq
	}
	h := run(NewHybrid(DefaultHybridConfig()), mixed())
	s := run(NewStride(DefaultStrideConfig()), mixed())
	c := run(NewCAP(DefaultCAPConfig()), mixed())
	if h.specCorrect <= s.specCorrect {
		t.Errorf("hybrid (%d) should beat stride (%d) on mixed work", h.specCorrect, s.specCorrect)
	}
	// CAP alone cannot follow a long fresh stride (its LT never recurs),
	// so the hybrid must beat it too.
	if h.specCorrect <= c.specCorrect {
		t.Errorf("hybrid (%d) should beat CAP (%d) on mixed work", h.specCorrect, c.specCorrect)
	}
}

func TestHybridSelectorConverges(t *testing.T) {
	// On a pure long-stride load where CAP keeps failing (fresh addresses,
	// links never recur), the selector must migrate towards stride.
	p := NewHybrid(DefaultHybridConfig())
	ip := uint32(0x100)
	for i := 0; i < 400; i++ {
		ref := LoadRef{IP: ip}
		pr := p.Predict(ref)
		p.Resolve(ref, pr, uint32(0x200000+64*i))
	}
	e := p.lb.Lookup(ip)
	if e == nil {
		t.Fatal("LB entry missing")
	}
	if e.sel > SelWeakStride {
		t.Errorf("selector state = %s, want stride side", SelStateName(e.sel))
	}
}

func TestHybridSelectorInitiallyWeakCAP(t *testing.T) {
	p := NewHybrid(DefaultHybridConfig())
	ref := LoadRef{IP: 0x40}
	pr := p.Predict(ref)
	p.Resolve(ref, pr, 0x1000)
	e := p.lb.Lookup(ref.IP)
	if e == nil {
		t.Fatal("LB entry missing")
	}
	if e.sel != SelWeakCAP {
		t.Errorf("initial selector = %s, want weak-cap", SelStateName(e.sel))
	}
}

func TestHybridStaticSelector(t *testing.T) {
	cfg := DefaultHybridConfig()
	cfg.StaticSelector = CompStride
	p := NewHybrid(cfg)
	// A constant load: both components become confident and agree; the
	// static selector must attribute the access to stride.
	ref := LoadRef{IP: 0x80, Offset: 4}
	for i := 0; i < 30; i++ {
		pr := p.Predict(ref)
		p.Resolve(ref, pr, 0x5010)
	}
	pr := p.Predict(ref)
	if !pr.Speculate {
		t.Fatal("expected confident prediction")
	}
	if pr.Selected != CompStride {
		t.Errorf("selected = %v, want stride (static selector)", pr.Selected)
	}
}

func TestHybridUpdatePolicies(t *testing.T) {
	// All three §4.3 policies must work; on stride-friendly work the
	// restrictive policies keep the LT emptier.
	work := func() []access {
		var seq []access
		for i := 0; i < 200; i++ {
			seq = append(seq, ld(0x100, uint32(0x100000+8*i), 0))
		}
		return seq
	}
	for _, pol := range []UpdatePolicy{UpdateAlways, UpdateUnlessStrideCorrect, UpdateUnlessStrideSelected} {
		cfg := DefaultHybridConfig()
		cfg.UpdatePolicy = pol
		r := run(NewHybrid(cfg), work())
		wantAtLeast(t, "specCorrect "+pol.String(), r.specCorrect, 180)
	}
	// PF bits already filter non-recurring updates, which would mask the
	// policy difference on a fresh stride; disable them for the count.
	lt := func(pol UpdatePolicy) int {
		cfg := DefaultHybridConfig()
		cfg.UpdatePolicy = pol
		cfg.CAP.PFBits = 0
		h := NewHybrid(cfg)
		run(h, work())
		n := 0
		for _, e := range h.capCore.lt {
			if e.linkValid {
				n++
			}
		}
		return n
	}
	if lt(UpdateUnlessStrideCorrect) >= lt(UpdateAlways) {
		t.Error("unless-stride-correct should record fewer links than always")
	}
}

func TestUpdatePolicyString(t *testing.T) {
	if UpdateAlways.String() != "always" ||
		UpdateUnlessStrideCorrect.String() != "unless-stride-correct" ||
		UpdateUnlessStrideSelected.String() != "unless-stride-selected" ||
		UpdatePolicy(9).String() != "invalid" {
		t.Error("UpdatePolicy.String wrong")
	}
}

func TestSelStateName(t *testing.T) {
	want := map[uint8]string{
		SelStrongStride: "strong-stride",
		SelWeakStride:   "weak-stride",
		SelWeakCAP:      "weak-cap",
		SelStrongCAP:    "strong-cap",
		9:               "invalid",
	}
	for s, n := range want {
		if SelStateName(s) != n {
			t.Errorf("SelStateName(%d) = %q, want %q", s, SelStateName(s), n)
		}
	}
}

func TestHybridReportsComponentOpinions(t *testing.T) {
	p := NewHybrid(DefaultHybridConfig())
	ref := LoadRef{IP: 0x100, Offset: 8}
	for i := 0; i < 20; i++ {
		pr := p.Predict(ref)
		p.Resolve(ref, pr, 0x7008)
	}
	pr := p.Predict(ref)
	if !pr.Stride.Predicted || !pr.CAP.Predicted {
		t.Errorf("both components should report predictions on a constant load: %+v", pr)
	}
	if !pr.Stride.Confident || !pr.CAP.Confident {
		t.Errorf("both components should be confident on a constant load: %+v", pr)
	}
}
