package predictor

import "testing"

// runGap drives a predictor in pipelined mode: each prediction is resolved
// only after `gap` further predictions have been made (§5).
func runGap(p Predictor, seq []access, gap int) result {
	var r result
	type pend struct {
		a  access
		pr Prediction
	}
	var q []pend
	flush := func(n int) {
		for len(q) > n {
			it := q[0]
			q = q[1:]
			p.Resolve(it.a.ref, it.pr, it.a.addr)
		}
	}
	for _, a := range seq {
		flush(gap - 1)
		pr := p.Predict(a.ref)
		r.loads++
		if pr.Predicted {
			r.predicted++
			if pr.Addr == a.addr {
				r.correct++
			}
		}
		if pr.Speculate {
			r.speculated++
			if pr.Addr == a.addr {
				r.specCorrect++
			} else {
				r.mispred++
			}
		}
		q = append(q, pend{a, pr})
	}
	flush(0)
	return r
}

func specStrideCfg() StrideConfig {
	cfg := DefaultStrideConfig()
	cfg.Speculative = true
	cfg.Interval = false // isolate pipelining effects
	cfg.CF = CFConfig{}
	return cfg
}

func TestSpecStrideCleanArrayUnaffectedByGap(t *testing.T) {
	// With no breaks, a stride predictor extrapolates through the gap and
	// loses nothing.
	seq := strideSeq(0x100, 0x8000, 8, 200)
	imm := run(NewStride(BasicStrideConfig()), seq)
	gap := runGap(NewStride(specStrideCfg()), seq, 8)
	// The gap lengthens warm-up (confidence builds only as predictions
	// resolve, a gap later) but must cost nothing in steady state: allow
	// about two gaps of warm-up, nothing more.
	if gap.specCorrect < imm.specCorrect-16 {
		t.Errorf("gap hurt a clean stride too much: imm=%d gap=%d",
			imm.specCorrect, gap.specCorrect)
	}
	wantZero(t, "mispred", gap.mispred)
}

func TestSpecStrideCatchUpAfterBreak(t *testing.T) {
	// One address jump mid-stream. The catch-up mechanism (§5.2) must
	// restore correct predictions right after the offending load
	// resolves, not after the whole window drains twice.
	var seq []access
	for i := 0; i < 100; i++ {
		seq = append(seq, ld(0x100, uint32(0x8000+8*i), 0))
	}
	for i := 0; i < 100; i++ {
		seq = append(seq, ld(0x100, uint32(0x20000+8*i), 0))
	}
	r := runGap(NewStride(specStrideCfg()), seq, 8)
	// The break costs about one gap of mispredictions plus confidence
	// rebuild, nothing more.
	wantAtLeast(t, "specCorrect", r.specCorrect, 160)
	if r.mispred > 16 {
		t.Errorf("mispredictions = %d, want about one gap worth", r.mispred)
	}
}

func TestSpecCAPStopsSpeculatingWhileMispredictionInFlight(t *testing.T) {
	cfg := DefaultCAPConfig()
	cfg.Speculative = true
	p := NewCAP(cfg)
	// Train on a walk, then change the list order to force a mispredict.
	walk := listWalk(0x100, []uint32{0x1010, 0x8058, 0x4024, 0x20c8}, 8)
	runGap(p, repeatSeq(walk, 30), 4)
	changed := listWalk(0x100, []uint32{0x1010, 0x4024, 0x8058, 0x20c8}, 8)
	r := runGap(p, repeatSeq(changed, 2), 4)
	// During the poisoned window CAP must not speculate; mispredictions
	// are bounded by roughly the in-flight window at the change.
	if r.mispred > 5 {
		t.Errorf("mispredictions = %d, want bounded by the in-flight window", r.mispred)
	}
}

func TestSpecCAPTightLoopDominoEffect(t *testing.T) {
	// §5.2: in a tight list-traversal loop whose period is shorter than
	// the prediction gap, a context predictor cannot maintain speculative
	// history and prediction rate collapses versus immediate update.
	walk := listWalk(0x100, []uint32{0x1010, 0x8058, 0x4024, 0x20c8}, 8)
	seq := repeatSeq(walk, 60)

	imm := run(NewCAP(DefaultCAPConfig()), seq)
	cfg := DefaultCAPConfig()
	cfg.Speculative = true
	gap := runGap(NewCAP(cfg), seq, 12)

	if gap.specCorrect >= imm.specCorrect {
		t.Errorf("a gap longer than the loop should hurt CAP: imm=%d gap=%d",
			imm.specCorrect, gap.specCorrect)
	}
}

func TestSpecCAPRecoversWhenInstanceSpacingExceedsGap(t *testing.T) {
	// §5.2: the misprediction/warm-up chain terminates when the time gap
	// between two instances of the same static load is large enough for
	// pending references to resolve. Interleave five filler loads between
	// walk instances so the spacing (6) exceeds the gap (4): CAP must
	// train and predict the walk.
	bases := []uint32{0x1010, 0x8058, 0x4024, 0x20c8}
	var seq []access
	for rep := 0; rep < 60; rep++ {
		for _, b := range bases {
			seq = append(seq, ld(0x100, b+8, 8))
			for f := 0; f < 5; f++ {
				ip := uint32(0x900 + 16*f)
				seq = append(seq, ld(ip, 0x50000+16*uint32(f), 0))
			}
		}
	}
	cfg := DefaultCAPConfig()
	cfg.Speculative = true
	p := NewCAP(cfg)

	// Count walk-load outcomes only.
	var walkLoads, walkCorrect int
	type pend struct {
		a  access
		pr Prediction
	}
	var q []pend
	flush := func(n int) {
		for len(q) > n {
			it := q[0]
			q = q[1:]
			p.Resolve(it.a.ref, it.pr, it.a.addr)
		}
	}
	for _, a := range seq {
		flush(3)
		pr := p.Predict(a.ref)
		if a.ref.IP == 0x100 {
			walkLoads++
			if pr.Speculate && pr.Addr == a.addr {
				walkCorrect++
			}
		}
		q = append(q, pend{a, pr})
	}
	flush(0)
	wantAtLeast(t, "walkCorrect", walkCorrect, walkLoads/2)
}

func TestSpecHybridGapDegradesGracefully(t *testing.T) {
	// Fig. 11 shape: the prediction rate drops from immediate to gapped
	// operation (the gap kills context prediction of the tightest loops)
	// but the predictor remains clearly useful, and degradation is
	// monotone in the gap.
	var seq []access
	lists := []uint32{0x1010, 0x8058, 0x4024, 0x20c8, 0x60e4, 0x70a8, 0x90cc, 0xa014}
	for i := 0; i < 600; i++ {
		seq = append(seq,
			ld(0x100, uint32(0x100000+16*i), 0),       // long stride
			ld(0x300, 0x5010, 4),                      // constant
			ld(0x400, uint32(0x200000+4*i), 0),        // long stride
			ld(0x500, 0x6020, 8),                      // constant
			ld(0x200, lists[i%len(lists)]+8, 8),       // list walk (spacing 6)
			ld(0x600, uint32(0x300000+64*(i%100)), 0)) // wrapping stride
	}
	imm := run(NewHybrid(DefaultHybridConfig()), seq)
	cfg := DefaultHybridConfig()
	cfg.Speculative = true
	g4 := runGap(NewHybrid(cfg), seq, 4)
	g12 := runGap(NewHybrid(cfg), seq, 12)

	// At gap 4 every stream's instance spacing (6) exceeds the gap, so
	// almost nothing is lost. At gap 12 the list walk's context chain can
	// no longer be maintained (§5.2) and the rate visibly drops, yet the
	// predictor stays clearly useful — the Fig. 11 shape.
	if g4.specCorrect > imm.specCorrect {
		t.Errorf("gapped cannot beat immediate: imm=%d g4=%d", imm.specCorrect, g4.specCorrect)
	}
	wantAtLeast(t, "g4 specCorrect", g4.specCorrect, imm.specCorrect*9/10)
	if g12.specCorrect >= g4.specCorrect {
		t.Errorf("a gap beyond the loop period must cost predictions: g4=%d g12=%d",
			g4.specCorrect, g12.specCorrect)
	}
	wantAtLeast(t, "g12 specCorrect", g12.specCorrect, imm.specCorrect*55/100)
}

func TestSpecPendingCounterDrains(t *testing.T) {
	// After all resolutions, internal pending counters must return to
	// zero so immediate behaviour resumes.
	cfg := DefaultCAPConfig()
	cfg.Speculative = true
	p := NewCAP(cfg)
	walk := listWalk(0x100, []uint32{0x1010, 0x8058, 0x4024, 0x20c8}, 8)
	runGap(p, repeatSeq(walk, 20), 6)
	cs := p.comp.lb.Lookup(0x100)
	if cs == nil {
		t.Fatal("LB entry missing")
	}
	if cs.pending != 0 {
		t.Errorf("pending = %d after drain, want 0", cs.pending)
	}
	if cs.poisoned {
		t.Error("poisoned flag should clear after drain")
	}
}

func TestSquashRestoresStrideConsistency(t *testing.T) {
	// Predict a few instances, squash the youngest (wrong path), then
	// resolve the rest: pending must balance and steady-state prediction
	// must continue as if the wrong-path instances never existed.
	cfg := specStrideCfg()
	p := NewStride(cfg)
	ref := LoadRef{IP: 0x100}
	// Warm up in immediate fashion.
	for i := 0; i < 10; i++ {
		pr := p.Predict(ref)
		p.Resolve(ref, pr, uint32(0x1000+8*i))
	}
	// Three in-flight predictions; the last two are wrong-path.
	pr1 := p.Predict(ref)
	pr2 := p.Predict(ref)
	pr3 := p.Predict(ref)
	p.Squash(ref, pr3)
	p.Squash(ref, pr2)
	p.Resolve(ref, pr1, 0x1000+8*10)
	st := p.comp.lb.Lookup(ref.IP)
	if st == nil {
		t.Fatal("entry missing")
	}
	if st.pending != 0 {
		t.Errorf("pending = %d after squash+resolve, want 0", st.pending)
	}
	// The next prediction must be correct again.
	pr := p.Predict(ref)
	if !pr.Predicted || pr.Addr != 0x1000+8*11 {
		t.Errorf("post-squash prediction = %+v, want next stride element", pr)
	}
}

func TestSquashRestoresCAPConsistency(t *testing.T) {
	cfg := DefaultCAPConfig()
	cfg.Speculative = true
	p := NewCAP(cfg)
	walk := listWalk(0x100, []uint32{0x1010, 0x8058, 0x4024, 0x20c8}, 8)
	run(p, repeatSeq(walk, 30)) // train architecturally

	ref := LoadRef{IP: 0x100, Offset: 8}
	pr1 := p.Predict(ref)
	pr2 := p.Predict(ref)
	p.Squash(ref, pr2)
	cs := p.comp.lb.Lookup(ref.IP)
	if cs == nil {
		t.Fatal("entry missing")
	}
	if cs.pending != 1 {
		t.Errorf("pending = %d after one squash, want 1", cs.pending)
	}
	p.Resolve(ref, pr1, pr1.Addr) // resolve correctly: the walk advanced one node
	if cs.pending != 0 || !cs.specValid {
		t.Errorf("state after drain: pending=%d specValid=%v", cs.pending, cs.specValid)
	}
	// Architectural history must be intact: continue the walk from where
	// the resolved prediction left it (rotated by one node) and predictions
	// must keep flowing immediately.
	rotated := listWalk(0x100, []uint32{0x8058, 0x4024, 0x20c8, 0x1010}, 8)
	r := run(p, repeatSeq(rotated, 3))
	wantAtLeast(t, "post-squash specCorrect", r.specCorrect, 9)
}

func TestHybridSquash(t *testing.T) {
	cfg := DefaultHybridConfig()
	cfg.Speculative = true
	p := NewHybrid(cfg)
	ref := LoadRef{IP: 0x40}
	for i := 0; i < 10; i++ {
		pr := p.Predict(ref)
		p.Resolve(ref, pr, 0x7000)
	}
	pr := p.Predict(ref)
	p.Squash(ref, pr)
	e := p.lb.Lookup(ref.IP)
	if e == nil {
		t.Fatal("entry missing")
	}
	if e.stride.pending != 0 || e.cap.pending != 0 {
		t.Errorf("pending after squash: stride=%d cap=%d", e.stride.pending, e.cap.pending)
	}
	// Squash of an unknown IP must be a no-op, not a panic.
	p.Squash(LoadRef{IP: 0xFFFF_0000}, Prediction{})
}
