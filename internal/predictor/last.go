package predictor

// LastConfig configures the last-address predictor used as the paper's
// first baseline (§1: "last-address predictors surprisingly handle an
// average of 40% of all load addresses").
type LastConfig struct {
	Entries       int   // total LB entries (power of two)
	Ways          int   // associativity (power of two)
	ConfMax       uint8 // saturating-counter ceiling
	ConfThreshold uint8 // counter value required to speculate
}

// DefaultLastConfig mirrors the baseline table geometry of §4.2.
func DefaultLastConfig() LastConfig {
	return LastConfig{Entries: 4096, Ways: 2, ConfMax: 3, ConfThreshold: 2}
}

type lastEntry struct {
	last uint32
	have bool
	conf uint8
}

// LastComponent is the last-address predictor at component granularity
// for composition by the tournament meta-predictor. Predict reads the
// architectural last address without mutating table contents, so the
// component is sound under a prediction gap as well: there is simply no
// speculative state to maintain or squash.
type LastComponent struct {
	cfg LastConfig
	lb  *LBTable[lastEntry]
}

// NewLastComponent builds the last-address component.
func NewLastComponent(cfg LastConfig) *LastComponent {
	return &LastComponent{cfg: cfg, lb: NewLBTable[lastEntry](cfg.Entries, cfg.Ways)}
}

// ID identifies the component in Prediction.Selected.
func (l *LastComponent) ID() Component { return CompLast }

// Name returns the component's display name.
func (l *LastComponent) Name() string { return "last" }

// Predict computes the component's opinion for the load.
func (l *LastComponent) Predict(ref LoadRef) ComponentPrediction {
	e := l.lb.Lookup(ref.IP)
	if e == nil || !e.have {
		return ComponentPrediction{}
	}
	return ComponentPrediction{
		Addr:      e.last,
		Predicted: true,
		Confident: e.conf >= l.cfg.ConfThreshold,
	}
}

// Resolve updates the last address and its confidence counter.
func (l *LastComponent) Resolve(ref LoadRef, cp ComponentPrediction, speculated bool, actual uint32) {
	e, _ := l.lb.Insert(ref.IP)
	if e.have && e.last == actual {
		e.conf = satInc(e.conf, l.cfg.ConfMax)
	} else {
		e.conf = 0
	}
	e.last = actual
	e.have = true
}

// Squash is a no-op: Predict leaves no in-flight bookkeeping behind.
func (l *LastComponent) Squash(ref LoadRef, cp ComponentPrediction) {}

// Last is the last-address predictor: it speculates that a static load's
// next address equals its previous one. It is the component wrapped as
// a full Predictor.
type Last struct {
	comp *LastComponent
}

// NewLast builds a last-address predictor.
func NewLast(cfg LastConfig) *Last {
	return &Last{comp: NewLastComponent(cfg)}
}

// Name implements Predictor.
func (l *Last) Name() string { return "last" }

// Predict implements Predictor.
func (l *Last) Predict(ref LoadRef) Prediction {
	cp := l.comp.Predict(ref)
	if !cp.Predicted {
		return Prediction{}
	}
	return Prediction{
		Addr:      cp.Addr,
		Predicted: true,
		Speculate: cp.Confident,
	}
}

// Resolve implements Predictor.
func (l *Last) Resolve(ref LoadRef, p Prediction, actual uint32) {
	l.comp.Resolve(ref, ComponentPrediction{}, false, actual)
}
