package predictor

// LastConfig configures the last-address predictor used as the paper's
// first baseline (§1: "last-address predictors surprisingly handle an
// average of 40% of all load addresses").
type LastConfig struct {
	Entries       int   // total LB entries (power of two)
	Ways          int   // associativity (power of two)
	ConfMax       uint8 // saturating-counter ceiling
	ConfThreshold uint8 // counter value required to speculate
}

// DefaultLastConfig mirrors the baseline table geometry of §4.2.
func DefaultLastConfig() LastConfig {
	return LastConfig{Entries: 4096, Ways: 2, ConfMax: 3, ConfThreshold: 2}
}

type lastEntry struct {
	last uint32
	have bool
	conf uint8
}

// Last is the last-address predictor: it speculates that a static load's
// next address equals its previous one.
type Last struct {
	cfg LastConfig
	lb  *lbTable[lastEntry]
}

// NewLast builds a last-address predictor.
func NewLast(cfg LastConfig) *Last {
	return &Last{cfg: cfg, lb: newLBTable[lastEntry](cfg.Entries, cfg.Ways)}
}

// Name implements Predictor.
func (l *Last) Name() string { return "last" }

// Predict implements Predictor.
func (l *Last) Predict(ref LoadRef) Prediction {
	e := l.lb.lookup(ref.IP)
	if e == nil || !e.have {
		return Prediction{}
	}
	return Prediction{
		Addr:      e.last,
		Predicted: true,
		Speculate: e.conf >= l.cfg.ConfThreshold,
	}
}

// Resolve implements Predictor.
func (l *Last) Resolve(ref LoadRef, p Prediction, actual uint32) {
	e, _ := l.lb.insert(ref.IP)
	if e.have && e.last == actual {
		e.conf = satInc(e.conf, l.cfg.ConfMax)
	} else {
		e.conf = 0
	}
	e.last = actual
	e.have = true
}
