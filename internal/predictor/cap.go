package predictor

// CAPConfig configures the correlated context-based address predictor of
// §3. The default configuration reproduces the paper's baseline: 4K-entry
// 2-way load buffer, 4K-entry direct-mapped link table recording base
// addresses, history of four base addresses compressed with shift(m)-xor,
// 8-bit LT tags, 4-bit pollution-free field, per-path control-flow
// indications, and 8 offset LSBs kept in the LB.
type CAPConfig struct {
	LBEntries int
	LBWays    int
	LTEntries int
	LTWays    int // 1 = direct-mapped (the paper's default)

	// HistoryLen is the number of past base addresses the history should
	// retain; it determines the shift amount m of the shift(m)-xor scheme
	// given the history width (LT index bits + TagBits).
	HistoryLen int
	// TagBits is the number of extra history bits stored in each LT entry
	// and matched on lookup (§3.4, "LT tags"). Zero disables tagging.
	TagBits int
	// CF configures the control-flow indications mechanism.
	CF CFConfig
	// GlobalCorrelation enables the base-address scheme of §3.3: the LB
	// history and the LT record base addresses (effective address minus
	// the low OffsetBits of the instruction's immediate offset) so loads
	// walking the same data structure share links.
	GlobalCorrelation bool
	// OffsetBits is how many offset LSBs are kept in the LB (the paper
	// keeps 8, since recursive data structures are typically aligned and
	// under 256 bytes).
	OffsetBits int
	// PFBits is the width of the pollution-free field (§3.5); the paper
	// uses bits 2..5 of the updating base address, i.e. 4 bits. Zero
	// disables the mechanism.
	PFBits int
	// PFTableEntries, when non-zero, moves the PF bits out of the LT into
	// a separate direct-mapped table with this many entries, indexed with
	// the extended history (the [Mora98]-style variant of §3.5).
	PFTableEntries int

	ConfMax       uint8
	ConfThreshold uint8
	Speculative   bool
}

// DefaultCAPConfig returns the paper's baseline CAP configuration (§4.2).
func DefaultCAPConfig() CAPConfig {
	return CAPConfig{
		LBEntries: 4096, LBWays: 2,
		LTEntries: 4096, LTWays: 1,
		HistoryLen:        4,
		TagBits:           8,
		CF:                CFConfig{Bits: 4, Table: true},
		GlobalCorrelation: true,
		OffsetBits:        8,
		PFBits:            4,
		PFTableEntries:    16384,
		ConfMax:           3,
		ConfThreshold:     2,
	}
}

// ltEntry is one link-table entry: the predicted next base address, the
// history tag, and the pollution-free field.
type ltEntry struct {
	link      uint32
	tag       uint16
	age       uint32
	linkValid bool
	pf        uint8
	pfValid   bool
}

// pfEntry is an external pollution-free-table entry.
type pfEntry struct {
	pf    uint8
	valid bool
}

// capState is the per-static-load CAP state kept in a load-buffer entry;
// the hybrid predictor embeds it alongside strideState.
type capState struct {
	hist uint32 // architectural history (shift-xor compressed)
	conf uint8
	cf   cfInd

	// Speculative (pipelined) state.
	specHist  uint32
	specValid bool
	pending   uint16
	poisoned  bool // misprediction in flight; suppress speculation (§5.2)
}

// capCore implements the CAP mechanism over external capState, so the
// stand-alone CAP predictor and the hybrid share one implementation. The
// link table lives here (it is global, not per-load).
type capCore struct {
	cfg     CAPConfig
	lt      []ltEntry
	pfTab   []pfEntry
	ltSets  int
	shift   uint   // m of shift(m)-xor
	histMsk uint32 // history width mask (index bits + tag bits)
	idxBits uint
	tagMsk  uint32
	offMsk  uint32
	pfMsk   uint32
}

func newCAPCore(cfg CAPConfig) *capCore {
	checkPow2("LT entries", cfg.LTEntries)
	checkPow2("LT ways", cfg.LTWays)
	if cfg.LTWays > 1 && cfg.TagBits == 0 {
		panic("predictor: set-associative LT requires TagBits > 0")
	}
	if cfg.HistoryLen < 1 {
		panic("predictor: HistoryLen must be at least 1")
	}
	if cfg.TagBits > 16 {
		panic("predictor: TagBits must be at most 16")
	}
	ltSets := cfg.LTEntries / cfg.LTWays
	idxBits := log2(ltSets)
	histBits := idxBits + uint(cfg.TagBits)
	if histBits > 32 {
		panic("predictor: history wider than 32 bits")
	}
	// Choose the shift so that HistoryLen addresses fit in the history:
	// after HistoryLen updates an address has been shifted out.
	shift := (histBits + uint(cfg.HistoryLen) - 1) / uint(cfg.HistoryLen)
	if shift == 0 {
		shift = 1
	}
	c := &capCore{
		cfg:     cfg,
		lt:      make([]ltEntry, cfg.LTEntries),
		ltSets:  ltSets,
		shift:   shift,
		idxBits: idxBits,
		histMsk: uint32(1)<<histBits - 1,
		tagMsk:  uint32(1)<<uint(cfg.TagBits) - 1,
		pfMsk:   uint32(1)<<uint(cfg.PFBits) - 1,
	}
	if histBits == 32 {
		c.histMsk = ^uint32(0)
	}
	if cfg.GlobalCorrelation {
		c.offMsk = uint32(1)<<uint(cfg.OffsetBits) - 1
	}
	if cfg.PFTableEntries > 0 {
		checkPow2("PF table entries", cfg.PFTableEntries)
		c.pfTab = make([]pfEntry, cfg.PFTableEntries)
	}
	return c
}

// offLow extracts the offset LSBs recorded in the LB. With global
// correlation disabled the mask is zero, so base == effective address and
// the predictor degenerates to per-load full-address links.
func (c *capCore) offLow(offset int32) uint32 {
	return uint32(offset) & c.offMsk
}

// base converts an effective address to the base address recorded in
// histories and links.
func (c *capCore) base(addr uint32, offset int32) uint32 {
	return addr - c.offLow(offset)
}

// advance folds a base address into the history: shift left by m, xor with
// the address LSBs minus the two alignment bits, truncate (§3.2).
func (c *capCore) advance(hist, base uint32) uint32 {
	return (hist<<c.shift ^ base>>2) & c.histMsk
}

func (c *capCore) split(hist uint32) (idx int, tag uint16) {
	return int(hist & (uint32(c.ltSets) - 1)), uint16(hist >> c.idxBits & c.tagMsk)
}

// ltLookup finds the link for a history value. ok distinguishes "no link
// recorded" from a valid link; tagOK is the §3.4 tag confidence signal.
func (c *capCore) ltLookup(hist uint32) (link uint32, ok, tagOK bool) {
	idx, tag := c.split(hist)
	base := idx * c.cfg.LTWays
	if c.cfg.LTWays == 1 {
		e := &c.lt[base]
		if !e.linkValid {
			return 0, false, false
		}
		return e.link, true, c.cfg.TagBits == 0 || e.tag == tag
	}
	for i := base; i < base+c.cfg.LTWays; i++ {
		e := &c.lt[i]
		if e.linkValid && e.tag == tag {
			return e.link, true, true
		}
	}
	return 0, false, false
}

// ltUpdate records hist → base, gated by the pollution-free mechanism:
// the link is written only when the same base attempted the same entry on
// the immediately preceding update (§3.5).
func (c *capCore) ltUpdate(hist, base uint32) {
	idx, tag := c.split(hist)
	pfNew := uint8(base >> 2 & c.pfMsk)

	gate := true
	if c.cfg.PFBits > 0 {
		if c.pfTab != nil {
			pe := &c.pfTab[hist&uint32(len(c.pfTab)-1)]
			gate = pe.valid && pe.pf == pfNew
			pe.pf, pe.valid = pfNew, true
		} else {
			// In-LT PF bits: one field per direct-mapped entry (or per
			// set when associative; the first way carries it).
			pe := &c.lt[idx*c.cfg.LTWays]
			gate = pe.pfValid && pe.pf == pfNew
			pe.pf, pe.pfValid = pfNew, true
		}
	}
	if !gate {
		return
	}

	setBase := idx * c.cfg.LTWays
	if c.cfg.LTWays == 1 {
		e := &c.lt[setBase]
		e.link, e.tag, e.linkValid = base, tag, true
		return
	}
	victim := setBase
	for i := setBase; i < setBase+c.cfg.LTWays; i++ {
		e := &c.lt[i]
		if e.linkValid && e.tag == tag {
			victim = i
			break
		}
		if !e.linkValid {
			victim = i
		} else if c.lt[victim].linkValid && e.age > c.lt[victim].age {
			victim = i
		}
	}
	for i := setBase; i < setBase+c.cfg.LTWays; i++ {
		c.lt[i].age++
	}
	e := &c.lt[victim]
	e.link, e.tag, e.linkValid, e.age = base, tag, true, 0
}

// predict computes the CAP opinion for the load and, in speculative mode,
// advances the speculative history.
func (c *capCore) predict(cs *capState, ref LoadRef) ComponentPrediction {
	if !c.cfg.Speculative {
		return c.predictFrom(cs, cs.hist, true, ref)
	}
	if cs.pending == 0 && !cs.poisoned {
		cs.specHist, cs.specValid = cs.hist, true
	}
	cp := c.predictFrom(cs, cs.specHist, cs.specValid, ref)
	if cp.Predicted && cs.specValid {
		cs.specHist = c.advance(cs.specHist, c.base(cp.Addr, ref.Offset))
	} else {
		// The address is unknown until resolution; the speculative
		// history cannot be maintained (§5.2: no catch-up mechanism).
		cs.specValid = false
	}
	if cs.poisoned {
		cp.Confident = false
	}
	cs.pending++
	return cp
}

func (c *capCore) predictFrom(cs *capState, hist uint32, histValid bool, ref LoadRef) ComponentPrediction {
	if !histValid {
		return ComponentPrediction{}
	}
	link, ok, tagOK := c.ltLookup(hist)
	if !ok {
		return ComponentPrediction{}
	}
	addr := link + c.offLow(ref.Offset)
	confident := cs.conf >= c.cfg.ConfThreshold &&
		tagOK &&
		cs.cf.allow(c.cfg.CF, ref.GHR)
	return ComponentPrediction{Addr: addr, Predicted: true, Confident: confident}
}

// resolve verifies the CAP part of a prediction and updates history,
// confidence and (when updateLT allows) the link table.
func (c *capCore) resolve(cs *capState, cp ComponentPrediction, speculated bool, ref LoadRef, actual uint32, updateLT bool) {
	if c.cfg.Speculative && cs.pending > 0 {
		cs.pending--
	}
	base := c.base(actual, ref.Offset)
	correct := cp.Predicted && cp.Addr == actual

	if cp.Predicted {
		if correct {
			cs.conf = satInc(cs.conf, c.cfg.ConfMax)
		} else {
			cs.conf = 0
		}
		cs.cf.record(c.cfg.CF, ref.GHR, correct, speculated)
	}

	if updateLT {
		c.ltUpdate(cs.hist, base)
	}
	cs.hist = c.advance(cs.hist, base)

	if c.cfg.Speculative {
		if cp.Predicted && !correct {
			cs.poisoned = true
			cs.specValid = false
		}
		if cs.pending == 0 {
			cs.poisoned = false
			cs.specHist, cs.specValid = cs.hist, true
		}
	}
}

// squash undoes Predict's in-flight bookkeeping for a flushed prediction.
// The speculative history cannot be rewound (shift-xor is lossy), so it
// is invalidated until the pending window drains — the architectural
// history is untouched, which is exactly the history-buffer recovery
// property §5.4 asks for.
func (c *capCore) squash(cs *capState) {
	if !c.cfg.Speculative {
		return
	}
	if cs.pending > 0 {
		cs.pending--
	}
	cs.specValid = false
	if cs.pending == 0 {
		cs.poisoned = false
		cs.specHist, cs.specValid = cs.hist, true
	}
}

// CAPComponent is the CAP predictor packaged at component granularity
// — per-load state in its own load buffer over the shared core and
// global link table — for composition by the tournament meta-predictor.
// Its Resolve always updates the link table (§4.3 UpdateAlways, the
// paper's best policy); the cross-component update policies remain a
// Hybrid-only refinement because they need the other component's
// outcome.
type CAPComponent struct {
	core *capCore
	lb   *LBTable[capState]
}

// NewCAPComponent builds the CAP component.
func NewCAPComponent(cfg CAPConfig) *CAPComponent {
	return &CAPComponent{
		core: newCAPCore(cfg),
		lb:   NewLBTable[capState](cfg.LBEntries, cfg.LBWays),
	}
}

// ID identifies the component in Prediction.Selected.
func (c *CAPComponent) ID() Component { return CompCAP }

// Name returns the component's display name.
func (c *CAPComponent) Name() string { return "cap" }

// Predict computes the component's opinion for the load, advancing
// speculative state in speculative mode. The LB entry is allocated at
// prediction time so in-flight instance counts are exact in pipelined
// mode.
func (c *CAPComponent) Predict(ref LoadRef) ComponentPrediction {
	cs, _ := c.lb.Insert(ref.IP)
	return c.core.predict(cs, ref)
}

// Resolve verifies the component's opinion and updates history,
// confidence and the link table.
func (c *CAPComponent) Resolve(ref LoadRef, cp ComponentPrediction, speculated bool, actual uint32) {
	cs, _ := c.lb.Insert(ref.IP)
	c.core.resolve(cs, cp, speculated, ref, actual, true)
}

// Squash undoes Predict's in-flight bookkeeping for a flushed
// prediction (§5.4 wrong-path recovery).
func (c *CAPComponent) Squash(ref LoadRef, cp ComponentPrediction) {
	if cs := c.lb.Lookup(ref.IP); cs != nil {
		c.core.squash(cs)
	}
}

// CAP is the stand-alone correlated context-based address predictor:
// the component wrapped as a full Predictor.
type CAP struct {
	comp *CAPComponent
}

// NewCAP builds a CAP predictor.
func NewCAP(cfg CAPConfig) *CAP {
	return &CAP{comp: NewCAPComponent(cfg)}
}

// Name implements Predictor.
func (c *CAP) Name() string { return "cap" }

// Predict implements Predictor.
func (c *CAP) Predict(ref LoadRef) Prediction {
	cp := c.comp.Predict(ref)
	return Prediction{
		Addr:      cp.Addr,
		Predicted: cp.Predicted,
		Speculate: cp.Confident,
		Selected:  CompCAP,
		CAP:       cp,
	}
}

// Resolve implements Predictor.
func (c *CAP) Resolve(ref LoadRef, p Prediction, actual uint32) {
	c.comp.Resolve(ref, p.CAP, p.Speculate, actual)
}

// Squash implements Squasher: the prediction was made on a wrong path and
// will never resolve.
func (c *CAP) Squash(ref LoadRef, p Prediction) {
	c.comp.Squash(ref, p.CAP)
}

// PredictAhead follows the link-table chain n steps from the load's
// current history, returning up to n predicted future addresses for the
// same static load. This is the §5.4 mechanism for predicting "multiple
// addresses ahead ... similar in concept to the two-block ahead branch
// predictor" [Sezn96]: each predicted base address is folded into a
// scratch history to look up the next link. The chain stops early at the
// first missing or tag-mismatching link. PredictAhead never mutates
// predictor state.
func (c *CAP) PredictAhead(ref LoadRef, n int) []uint32 {
	core := c.comp.core
	cs := c.comp.lb.Lookup(ref.IP)
	if cs == nil {
		return nil
	}
	hist := cs.hist
	if core.cfg.Speculative && cs.specValid {
		hist = cs.specHist
	}
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		link, ok, tagOK := core.ltLookup(hist)
		if !ok || !tagOK {
			break
		}
		out = append(out, link+core.offLow(ref.Offset))
		hist = core.advance(hist, link)
	}
	return out
}
