package predictor

// Control-based address predictors (§3.6). The paper evaluates two
// branch-predictor-like designs — indexing a table of addresses with the
// load IP xored with either the global branch history (g-share style) or
// a path history over recent call sites — and finds both too weak to
// substitute for CAP. They are reproduced here as that negative result.

// ControlConfig configures a control-based address predictor.
type ControlConfig struct {
	Entries       int // table entries (power of two)
	HistBits      int // history bits xored into the index
	UsePath       bool
	ConfMax       uint8
	ConfThreshold uint8
}

// DefaultControlConfig matches the CAP table budget for a fair comparison.
func DefaultControlConfig(usePath bool) ControlConfig {
	return ControlConfig{
		Entries: 8192, HistBits: 8, UsePath: usePath,
		ConfMax: 3, ConfThreshold: 2,
	}
}

type controlEntry struct {
	addr  uint32
	conf  uint8
	valid bool
}

// Control is a g-share-style (or call-path-style) address predictor.
type Control struct {
	cfg  ControlConfig
	tab  []controlEntry
	mask uint32
	hmsk uint32
}

// NewControl builds a control-based address predictor.
func NewControl(cfg ControlConfig) *Control {
	checkPow2("control table entries", cfg.Entries)
	return &Control{
		cfg:  cfg,
		tab:  make([]controlEntry, cfg.Entries),
		mask: uint32(cfg.Entries - 1),
		hmsk: uint32(1)<<uint(cfg.HistBits) - 1,
	}
}

// Name implements Predictor.
func (c *Control) Name() string {
	if c.cfg.UsePath {
		return "path-addr"
	}
	return "gshare-addr"
}

func (c *Control) index(ref LoadRef) uint32 {
	h := ref.GHR
	if c.cfg.UsePath {
		h = ref.Path
	}
	return (ref.IP>>2 ^ h&c.hmsk) & c.mask
}

// Predict implements Predictor.
func (c *Control) Predict(ref LoadRef) Prediction {
	e := &c.tab[c.index(ref)]
	if !e.valid {
		return Prediction{}
	}
	return Prediction{
		Addr:      e.addr,
		Predicted: true,
		Speculate: e.conf >= c.cfg.ConfThreshold,
	}
}

// Resolve implements Predictor.
func (c *Control) Resolve(ref LoadRef, p Prediction, actual uint32) {
	e := &c.tab[c.index(ref)]
	if e.valid && e.addr == actual {
		e.conf = satInc(e.conf, c.cfg.ConfMax)
	} else {
		e.conf = 0
	}
	e.addr = actual
	e.valid = true
}
