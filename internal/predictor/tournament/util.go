package tournament

import "fmt"

// log2 returns floor(log2(n)) for n ≥ 1.
func log2(n int) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// checkPow2 panics unless n is a positive power of two; table geometries
// in this package are all power-of-two, as in package predictor.
func checkPow2(name string, n int) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("tournament: %s must be a positive power of two, got %d", name, n))
	}
}

// satInc increments a saturating counter bounded by max.
func satInc(c, max uint8) uint8 {
	if c < max {
		return c + 1
	}
	return c
}

// satDec decrements a saturating counter bounded below by zero.
func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}
