package tournament

import (
	"strings"
	"testing"

	"capred/internal/predictor"
)

// feed resolves one address through a component in immediate mode:
// predict, then resolve with the actual, returning the prediction.
func feed(c Component, ip, addr uint32) predictor.ComponentPrediction {
	ref := predictor.LoadRef{IP: ip}
	cp := c.Predict(ref)
	c.Resolve(ref, cp, false, addr)
	return cp
}

func TestMarkovWarmupAndPattern(t *testing.T) {
	cfg := DefaultMarkovConfig()
	m := NewMarkov(cfg)

	// A repeating +8,+8,+120 stride pattern (array-of-structs walk).
	strides := []uint32{8, 8, 120}
	addr := uint32(0x1000)
	var got []predictor.ComponentPrediction
	for i := 0; i < 30; i++ {
		got = append(got, feed(m, 0x40, addr))
		addr += strides[i%len(strides)]
	}

	// Warm-up: the first occurrence establishes last, the next HistLen
	// fill the history, and training starts only after that — so no
	// table hit is possible before 2*HistLen+1 occurrences (the pattern
	// period must also repeat once for the trained entry to be reused).
	for i := 0; i <= 2*cfg.HistLen; i++ {
		if got[i].Predicted {
			t.Fatalf("occurrence %d: predicted during warm-up", i)
		}
	}
	// Steady state: every stride in the period is predicted exactly.
	// (The prediction at occurrence i is for a_i itself — the address
	// the load is about to produce.)
	addrCheck := uint32(0x1000)
	for i := 0; i < 30; i++ {
		if i >= 3*len(strides) {
			if !got[i].Predicted || got[i].Addr != addrCheck {
				t.Fatalf("occurrence %d: got %+v, want predicted addr %#x", i, got[i], addrCheck)
			}
		}
		addrCheck += strides[i%len(strides)]
	}
	// Confidence saturates on the repeating pattern.
	cp := m.Predict(predictor.LoadRef{IP: 0x40})
	if !cp.Confident {
		t.Fatalf("steady-state Markov prediction not confident: %+v", cp)
	}
}

// TestMarkovTagRejectsAliases finds two single-stride histories that
// collide on the table index but differ in tag, and checks that the
// tag match turns cross-load pollution into a quiet miss.
func TestMarkovTagRejectsAliases(t *testing.T) {
	cfg := MarkovConfig{
		Entries: 64, Ways: 2,
		TableEntries: 16, TagBits: 8,
		HistLen: 1, ConfMax: 3, ConfThreshold: 2,
	}
	m := NewMarkov(cfg)

	// Search stride space for an index collision with distinct tags,
	// using the component's own hash so the test tracks the geometry.
	histOf := func(s int32) uint32 { return m.advance(0, s) }
	var sA, sB int32 = -1, -1
	idxA, tagA := m.split(histOf(64))
outer:
	for s := int32(68); s < 1<<20; s += 4 {
		idx, tag := m.split(histOf(s))
		if idx == idxA && tag != tagA {
			sA, sB = 64, s
			break outer
		}
	}
	if sB < 0 {
		t.Fatal("no colliding stride pair found; geometry changed?")
	}

	// Load A trains: history(sA) → next stride sA (constant stride).
	addr := uint32(0x1000)
	for i := 0; i < 8; i++ {
		feed(m, 0x10, addr)
		addr += uint32(sA)
	}
	if cp := m.Predict(predictor.LoadRef{IP: 0x10}); !cp.Predicted {
		t.Fatalf("load A not predicting after training: %+v", cp)
	}

	// Load B reaches the same table index with a different tag. Two
	// occurrences make B warm (one stride in its history) without yet
	// training its own table entry, so the lookup lands on load A's
	// entry — and must get a miss (no prediction), not load A's stride.
	addr = uint32(0x8000)
	for i := 0; i < 2; i++ {
		feed(m, 0x20, addr)
		addr += uint32(sB)
	}
	cp := m.Predict(predictor.LoadRef{IP: 0x20})
	if cp.Predicted {
		t.Fatalf("tag failed to reject alias: load B predicted %+v (load A's entry)", cp)
	}

	// With tagging disabled the same collision silently serves load A's
	// stride to load B — the pollution the tag exists to stop.
	cfg.TagBits = 0
	m = NewMarkov(cfg)
	// Geometry changed (tag bits folded out of the history); re-find a
	// colliding pair by index only.
	idxA, _ = m.split(m.advance(0, 64))
	sB = -1
	for s := int32(68); s < 1<<20; s += 4 {
		if idx, _ := m.split(m.advance(0, s)); idx == idxA {
			sB = s
			break
		}
	}
	if sB < 0 {
		t.Fatal("no untagged collision found")
	}
	addr = 0x1000
	for i := 0; i < 8; i++ {
		feed(m, 0x10, addr)
		addr += 64
	}
	addr = 0x8000
	for i := 0; i < 2; i++ {
		feed(m, 0x20, addr)
		addr += uint32(sB)
	}
	cp = m.Predict(predictor.LoadRef{IP: 0x20})
	if !cp.Predicted || cp.Addr != addr-uint32(sB)+64 {
		t.Fatalf("untagged alias should serve load A's stride 64: %+v", cp)
	}
}

func TestDelta2Quadratic(t *testing.T) {
	d := NewDelta2(DefaultDelta2Config())

	// addr(n) = 4n² + 100: first difference 4(2n-1), second difference
	// constant 8. A stride predictor never converges on this stream; the
	// acceleration predictor is exact from the third occurrence on.
	addrAt := func(n uint32) uint32 { return 4*n*n + 100 }
	for n := uint32(0); n < 20; n++ {
		cp := feed(d, 0x80, addrAt(n))
		switch {
		case n < 3:
			if cp.Predicted {
				t.Fatalf("n=%d: predicted during warm-up: %+v", n, cp)
			}
		default:
			if !cp.Predicted || cp.Addr != addrAt(n) {
				t.Fatalf("n=%d: got %+v, want exact %#x", n, cp, addrAt(n))
			}
		}
		if n == 19 && !cp.Confident {
			t.Fatalf("n=%d: still not confident on exact stream", n)
		}
	}

	// A discontinuity resets the difference chain; two further
	// occurrences re-establish Δ and ΔΔ and the fourth is exact again.
	jump := []uint32{0x9000_0000, 0x9000_0010, 0x9000_0030, 0x9000_0060, 0x9000_00a0}
	for i, a := range jump {
		cp := feed(d, 0x80, a)
		if i == len(jump)-1 && (!cp.Predicted || cp.Addr != a) {
			t.Fatalf("post-jump occurrence %d: got %+v, want exact %#x", i, cp, a)
		}
	}
}

// TestDelta2SpeculativeCatchUp drives the speculative discipline by
// hand: predictions run GAP ahead of resolutions, and after the window
// fills every prediction of the quadratic stream must still be exact —
// the closed-form catch-up, not re-warm-up, keeps the chain aligned.
func TestDelta2SpeculativeCatchUp(t *testing.T) {
	cfg := DefaultDelta2Config()
	cfg.Speculative = true
	d := NewDelta2(cfg)
	ref := predictor.LoadRef{IP: 0x80}
	addrAt := func(n uint32) uint32 { return 8*n*n + 3*n }

	const gap = 4
	var q []predictor.ComponentPrediction
	for n := uint32(0); n < 40; n++ {
		if len(q) == gap {
			d.Resolve(ref, q[0], false, addrAt(n-gap))
			q = q[1:]
		}
		cp := d.Predict(ref)
		if n >= 3+gap && (!cp.Predicted || cp.Addr != addrAt(n)) {
			t.Fatalf("n=%d: speculative prediction %+v, want exact %#x", n, cp, addrAt(n))
		}
		q = append(q, cp)
	}
}

func TestCallPathContexts(t *testing.T) {
	cfg := CallPathConfig{TableEntries: 64, TagBits: 8, PathBits: 12, ConfMax: 3, ConfThreshold: 2}
	c := NewCallPath(cfg)

	// One static load reached through two call paths returns two
	// different addresses; the context keeps the entries apart (the
	// §3.6 win case), provided the two hashes land on distinct indices.
	refA := predictor.LoadRef{IP: 0x40, Path: 0x111}
	refB := predictor.LoadRef{IP: 0x40, Path: 0x222}
	idxA, _ := c.split(c.hash(refA))
	idxB, _ := c.split(c.hash(refB))
	if idxA == idxB {
		t.Fatalf("test paths collide (idx %d); pick different path values", idxA)
	}
	for i := 0; i < 4; i++ {
		c.Resolve(refA, predictor.ComponentPrediction{}, false, 0xAAAA)
		c.Resolve(refB, predictor.ComponentPrediction{}, false, 0xBBBB)
	}
	if cp := c.Predict(refA); !cp.Predicted || cp.Addr != 0xAAAA || !cp.Confident {
		t.Fatalf("context A: %+v, want confident 0xAAAA", cp)
	}
	if cp := c.Predict(refB); !cp.Predicted || cp.Addr != 0xBBBB || !cp.Confident {
		t.Fatalf("context B: %+v, want confident 0xBBBB", cp)
	}
}

// TestCallPathHashCollisions constructs two contexts that share a table
// index and checks both tag behaviors: distinct tags → miss, equal full
// hash after takeover → confidence restarts from zero.
func TestCallPathHashCollisions(t *testing.T) {
	cfg := CallPathConfig{TableEntries: 16, TagBits: 8, PathBits: 12, ConfMax: 3, ConfThreshold: 2}
	c := NewCallPath(cfg)

	refA := predictor.LoadRef{IP: 0x40, Path: 0}
	idxA, tagA := c.split(c.hash(refA))
	var refB predictor.LoadRef
	found := false
	for p := uint32(1); p < 1<<uint(cfg.PathBits); p++ {
		r := predictor.LoadRef{IP: 0x40, Path: p}
		if idx, tag := c.split(c.hash(r)); idx == idxA && tag != tagA {
			refB, found = r, true
			break
		}
	}
	if !found {
		t.Fatal("no tag-distinct index collision in path space; geometry changed?")
	}

	// Train context A to confidence.
	for i := 0; i < 4; i++ {
		c.Resolve(refA, predictor.ComponentPrediction{}, false, 0xAAAA)
	}
	// Context B collides on the index but not the tag: miss, not 0xAAAA.
	if cp := c.Predict(refB); cp.Predicted {
		t.Fatalf("tag failed to reject colliding context: %+v", cp)
	}
	// B resolves once: it takes the entry over with confidence reset...
	c.Resolve(refB, predictor.ComponentPrediction{}, false, 0xBBBB)
	if cp := c.Predict(refB); !cp.Predicted || cp.Addr != 0xBBBB || cp.Confident {
		t.Fatalf("takeover: %+v, want unconfident 0xBBBB", cp)
	}
	// ...and A is now the one missing on the tag.
	if cp := c.Predict(refA); cp.Predicted {
		t.Fatalf("evicted context A still predicting: %+v", cp)
	}
}

// scripted is a stub component for chooser unit tests: it replays a
// fixed opinion and records what Resolve told it.
type scripted struct {
	id      predictor.Component
	op      predictor.ComponentPrediction
	gotSpec []bool
}

func (s *scripted) ID() predictor.Component { return s.id }
func (s *scripted) Name() string            { return s.id.String() }
func (s *scripted) Predict(predictor.LoadRef) predictor.ComponentPrediction {
	return s.op
}
func (s *scripted) Resolve(_ predictor.LoadRef, cp predictor.ComponentPrediction, speculated bool, _ uint32) {
	s.gotSpec = append(s.gotSpec, speculated)
}
func (s *scripted) Squash(predictor.LoadRef, predictor.ComponentPrediction) {}

func TestChooserFallbackOrder(t *testing.T) {
	// Three components, none confident: the chooser must fall back in
	// descending-initial-counter order (markov init 3 outranks the
	// others), and the prediction must not speculate.
	a := &scripted{id: predictor.CompStride, op: predictor.ComponentPrediction{Addr: 1, Predicted: true}}
	b := &scripted{id: predictor.CompMarkov, op: predictor.ComponentPrediction{Addr: 2, Predicted: true}}
	c := &scripted{id: predictor.CompDelta2}
	tour := New(Config{Entries: 16, Ways: 2, CounterMax: 7, Init: []uint8{1, 3, 2}}, a, b, c)

	p := tour.Predict(predictor.LoadRef{IP: 0x10})
	if p.Selected != predictor.CompMarkov || p.Addr != 2 || p.Speculate {
		t.Fatalf("fallback pick = %+v, want markov addr 2 without speculation", p)
	}

	// Now only stride predicts: the fallback walks past markov.
	b.op = predictor.ComponentPrediction{}
	tour.Resolve(predictor.LoadRef{IP: 0x10}, p, 99)
	p = tour.Predict(predictor.LoadRef{IP: 0x10})
	if p.Selected != predictor.CompStride || p.Addr != 1 || p.Speculate {
		t.Fatalf("fallback past non-predictor = %+v, want stride addr 1", p)
	}
	tour.Resolve(predictor.LoadRef{IP: 0x10}, p, 99)
}

func TestChooserCounterArbitration(t *testing.T) {
	// Two confident components that disagree: resolutions move the
	// counters toward whichever is correct, and the pick follows.
	a := &scripted{id: predictor.CompStride, op: predictor.ComponentPrediction{Addr: 1, Predicted: true, Confident: true}}
	b := &scripted{id: predictor.CompCAP, op: predictor.ComponentPrediction{Addr: 2, Predicted: true, Confident: true}}
	tour := New(Config{Entries: 16, Ways: 2, CounterMax: 3, Speculative: true}, a, b)
	ref := predictor.LoadRef{IP: 0x10}

	// Default init biases CAP (1,2): first pick is CAP.
	p := tour.Predict(ref)
	if p.Selected != predictor.CompCAP || !p.Speculate {
		t.Fatalf("initial pick = %+v, want speculative CAP", p)
	}
	// Stride is right, CAP wrong: one disagreement moves the counters
	// (1,2) → (2,1) and the pick flips to stride — exactly the hybrid's
	// weak-CAP → weak-stride transition.
	tour.Resolve(ref, p, 1)
	p = tour.Predict(ref)
	if p.Selected != predictor.CompStride {
		t.Fatalf("after stride wins once: pick = %+v, want stride", p)
	}
	tour.Resolve(ref, p, 1)

	// Only the chosen component's Resolve saw speculated=true: CAP in
	// round one, stride in round two.
	if len(a.gotSpec) != 2 || a.gotSpec[0] || !a.gotSpec[1] {
		t.Fatalf("stride speculated flags = %v, want [false true]", a.gotSpec)
	}
	if len(b.gotSpec) != 2 || !b.gotSpec[0] || b.gotSpec[1] {
		t.Fatalf("cap speculated flags = %v, want [true false]", b.gotSpec)
	}

	// Selection stats attribute speculated picks to the chosen component.
	stats := tour.ComponentStats()
	if stats[1].Name != "cap" || stats[1].Selected != 1 || stats[1].Correct != 0 {
		t.Fatalf("cap stats = %+v, want 1 selected 0 correct", stats[1])
	}
	if stats[0].Selected != 1 || stats[0].Correct != 1 {
		t.Fatalf("stride stats = %+v, want 1 selected 1 correct", stats[0])
	}
}

func TestChooserAgreementFreezesCounters(t *testing.T) {
	// When all predicting components agree (all right or all wrong) the
	// counter vector must not move — same rule as the hybrid selector.
	a := &scripted{id: predictor.CompStride, op: predictor.ComponentPrediction{Addr: 5, Predicted: true, Confident: true}}
	b := &scripted{id: predictor.CompCAP, op: predictor.ComponentPrediction{Addr: 5, Predicted: true, Confident: true}}
	tour := New(Config{Entries: 16, Ways: 2, CounterMax: 3}, a, b)
	ref := predictor.LoadRef{IP: 0x10}

	for i := 0; i < 3; i++ { // both right
		tour.Resolve(ref, tour.Predict(ref), 5)
	}
	for i := 0; i < 3; i++ { // both wrong
		tour.Resolve(ref, tour.Predict(ref), 6)
	}
	if p := tour.Predict(ref); p.SelState != predictor.SelWeakCAP {
		t.Fatalf("SelState = %d, want untouched init %d", p.SelState, predictor.SelWeakCAP)
	}
	tour.Resolve(ref, tour.Predict(ref), 5)
}

func TestNewValidation(t *testing.T) {
	mk := func(id predictor.Component) Component { return &scripted{id: id} }
	for name, fn := range map[string]func(){
		"no components": func() { New(DefaultConfig()) },
		"dup ids": func() {
			New(DefaultConfig(), mk(predictor.CompStride), mk(predictor.CompStride))
		},
		"none id": func() { New(DefaultConfig(), mk(predictor.CompNone)) },
		"init len": func() {
			New(Config{Entries: 16, Ways: 2, CounterMax: 3, Init: []uint8{1}},
				mk(predictor.CompStride), mk(predictor.CompCAP))
		},
		"init above max": func() {
			New(Config{Entries: 16, Ways: 2, CounterMax: 3, Init: []uint8{4, 1}},
				mk(predictor.CompStride), mk(predictor.CompCAP))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestComponentNamesResolve(t *testing.T) {
	// Every buildable component must carry a distinct non-"none" ID whose
	// String() matches its Name() — the open-namespace satellite: metrics
	// labels and classification breakdowns must never print "none".
	seen := map[predictor.Component]bool{}
	for _, name := range ComponentNames() {
		c, err := NewComponent(name, false)
		if err != nil {
			t.Fatalf("NewComponent(%q): %v", name, err)
		}
		if c.ID() == predictor.CompNone || seen[c.ID()] {
			t.Fatalf("component %q: bad or duplicate ID %v", name, c.ID())
		}
		seen[c.ID()] = true
		// Name() may carry a variant suffix (e.g. "stride+" for the
		// enhanced stride), but must always extend the ID's label.
		if s := c.ID().String(); !strings.HasPrefix(c.Name(), s) || s == "none" || s == "invalid" {
			t.Fatalf("component %q: ID().String()=%q Name()=%q must agree", name, s, c.Name())
		}
	}
	if _, err := NewComponent("bogus", false); err == nil {
		t.Fatal("NewComponent(bogus) did not error")
	}
}
