// Package tournament generalizes the paper's two-way hybrid (§3.7) to
// an N-way tournament meta-predictor in the style of modern branch
// meta-predictors: any number of component predictors produce opinions
// for every dynamic load, and a per-load-buffer-entry vector of
// saturating counters arbitrates among the confident ones, with a
// confidence-gated fallback order when none is confident.
//
// The components are the package predictor cores refactored behind the
// Component interface (stride, CAP, last-address) plus three entrants
// of their own: a Markov-N stride-history predictor, a delta-delta
// (acceleration) predictor, and a call-path-context predictor — the
// latter re-casting §3.6's negative result as a specialist that only
// has to win the loads it is good at, not the whole trace.
//
// Both resolution disciplines compose unchanged: immediate mode
// (Predict then Resolve per load) and pipelined mode under
// internal/pipeline.Gap, including §5.4 wrong-path squashes. A two-way
// CAP+stride tournament built by NewPaperPair is decision-identical to
// predictor.NewHybrid with the default configuration; the differential
// fuzzer FuzzTournamentSelector pins that equivalence.
package tournament

import (
	"fmt"

	"capred/internal/predictor"
)

// Component is one tournament entrant: a predictor operating at
// component granularity. Predict computes the component's opinion for a
// dynamic load (advancing speculative state when the component was
// built speculative); Resolve verifies it against the actual address
// and updates the component's tables; Squash undoes Predict's in-flight
// bookkeeping for a flushed wrong-path prediction (§5.4, youngest
// first). Resolutions arrive in prediction order, as under a pipeline
// gap.
type Component interface {
	// ID identifies the component in Prediction.Selected.
	ID() predictor.Component
	// Name returns the display name used in tables and metrics labels.
	Name() string
	Predict(ref predictor.LoadRef) predictor.ComponentPrediction
	Resolve(ref predictor.LoadRef, cp predictor.ComponentPrediction, speculated bool, actual uint32)
	Squash(ref predictor.LoadRef, cp predictor.ComponentPrediction)
}

// MaxComponents bounds the entrant count so chooser entries stay a
// fixed-size array (no per-entry allocation).
const MaxComponents = 8

// Config configures the meta-chooser. Component configuration lives
// with the components themselves; the chooser only needs its table
// geometry and counter shape.
type Config struct {
	// Entries/Ways is the chooser table geometry; to compose with a
	// shared-LB mental model (and to match the hybrid exactly in the
	// two-way case) it should equal the components' LB geometry.
	Entries int
	Ways    int
	// CounterMax is the per-component saturating-counter ceiling.
	CounterMax uint8
	// Init is the initial counter vector a newly allocated chooser
	// entry starts from, one value per component in order. Empty means
	// the default bias: 1 for every component, 2 for CAP — the §4.2
	// "initially biased towards weak CAP selection" rule generalized.
	// The order of descending initial counters (ties broken by
	// component order) also fixes the confidence-gated fallback order.
	Init []uint8
	// Speculative records the discipline the components were built for;
	// it does not change chooser behavior but is validated against use.
	Speculative bool
}

// DefaultConfig mirrors the paper's load-buffer geometry (§4.2).
func DefaultConfig() Config {
	return Config{Entries: 4096, Ways: 2, CounterMax: 3}
}

// chooserEntry is the per-load chooser state: one saturating counter
// per component.
type chooserEntry struct {
	ctr [MaxComponents]uint8
}

// ComponentStat is one component's selection ledger: how often its
// address was the one launched speculatively, and how often that
// address was right. The fields are exported (and JSON-tagged) so the
// distributed-leaf seam can carry them.
type ComponentStat struct {
	Name     string `json:"name"`
	Selected int64  `json:"selected"`
	Correct  int64  `json:"correct"`
}

// Tournament is the N-way meta-predictor. It implements
// predictor.Predictor and predictor.Squasher.
type Tournament struct {
	cfg   Config
	comps []Component
	ids   []predictor.Component
	lb    *predictor.LBTable[chooserEntry]
	init  [MaxComponents]uint8
	pref  []int // component indices in fallback-preference order

	// In-flight per-component opinions, oldest first. Resolutions pop
	// the head (they arrive in prediction order); squashes pop the tail
	// (they arrive youngest first). Slots are preallocated slices of
	// len(comps), reused forever — the hot path does not allocate.
	ring []([]predictor.ComponentPrediction)
	head int
	n    int

	stats []ComponentStat
}

// New builds a tournament over the given components. Zero-valued
// geometry fields of cfg take their DefaultConfig values. Components
// must have distinct, non-none IDs; their speculative/immediate
// discipline must match cfg.Speculative by construction (the caller
// builds them).
func New(cfg Config, comps ...Component) *Tournament {
	if len(comps) == 0 {
		panic("tournament: at least one component required")
	}
	if len(comps) > MaxComponents {
		panic(fmt.Sprintf("tournament: %d components exceed MaxComponents=%d", len(comps), MaxComponents))
	}
	if cfg.Entries == 0 {
		cfg.Entries = DefaultConfig().Entries
	}
	if cfg.Ways == 0 {
		cfg.Ways = DefaultConfig().Ways
	}
	if cfg.CounterMax == 0 {
		cfg.CounterMax = DefaultConfig().CounterMax
	}
	t := &Tournament{
		cfg:   cfg,
		comps: comps,
		lb:    predictor.NewLBTable[chooserEntry](cfg.Entries, cfg.Ways),
	}
	seen := map[predictor.Component]bool{}
	for _, c := range comps {
		id := c.ID()
		if id == predictor.CompNone {
			panic("tournament: component with CompNone ID")
		}
		if seen[id] {
			panic(fmt.Sprintf("tournament: duplicate component %s", id))
		}
		seen[id] = true
		t.ids = append(t.ids, id)
		t.stats = append(t.stats, ComponentStat{Name: c.Name()})
	}
	if len(cfg.Init) == 0 {
		for i, id := range t.ids {
			t.init[i] = 1
			if id == predictor.CompCAP {
				t.init[i] = 2 // §4.2: initial bias towards weak CAP
			}
		}
	} else {
		if len(cfg.Init) != len(comps) {
			panic("tournament: Init length must match component count")
		}
		for i, v := range cfg.Init {
			if v > cfg.CounterMax {
				panic("tournament: Init exceeds CounterMax")
			}
			t.init[i] = v
		}
	}
	// Fallback preference: descending initial counter, stable in
	// component order. Also the tie-break among equally-ranked
	// confident components.
	for i := range comps {
		t.pref = append(t.pref, i)
	}
	for i := 1; i < len(t.pref); i++ {
		for j := i; j > 0 && t.init[t.pref[j]] > t.init[t.pref[j-1]]; j-- {
			t.pref[j], t.pref[j-1] = t.pref[j-1], t.pref[j]
		}
	}
	t.ring = make([][]predictor.ComponentPrediction, 16)
	for i := range t.ring {
		t.ring[i] = make([]predictor.ComponentPrediction, len(comps))
	}
	return t
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "tournament" }

// Components returns the entrants in order.
func (t *Tournament) Components() []Component { return t.comps }

// ComponentStats returns a copy of the per-component selection ledger:
// for each entrant, how many speculative accesses used its address and
// how many of those were correct.
func (t *Tournament) ComponentStats() []ComponentStat {
	out := make([]ComponentStat, len(t.stats))
	copy(out, t.stats)
	return out
}

// rank returns i's position in the fallback-preference order.
func (t *Tournament) rank(i int) int {
	for r, j := range t.pref {
		if j == i {
			return r
		}
	}
	return len(t.pref)
}

// pushFlight appends a fresh opinions slot to the in-flight ring.
func (t *Tournament) pushFlight() []predictor.ComponentPrediction {
	if t.n == len(t.ring) {
		grown := make([][]predictor.ComponentPrediction, 2*len(t.ring))
		for i := 0; i < t.n; i++ {
			grown[i] = t.ring[(t.head+i)%len(t.ring)]
		}
		for i := t.n; i < len(grown); i++ {
			grown[i] = make([]predictor.ComponentPrediction, len(t.comps))
		}
		t.ring, t.head = grown, 0
	}
	ops := t.ring[(t.head+t.n)%len(t.ring)]
	t.n++
	return ops
}

// popOldest removes and returns the oldest in-flight opinions.
func (t *Tournament) popOldest() []predictor.ComponentPrediction {
	ops := t.ring[t.head]
	t.head = (t.head + 1) % len(t.ring)
	t.n--
	return ops
}

// popNewest removes and returns the youngest in-flight opinions.
func (t *Tournament) popNewest() []predictor.ComponentPrediction {
	t.n--
	return t.ring[(t.head+t.n)%len(t.ring)]
}

// indexOf maps a component ID back to its slot, -1 for none.
func (t *Tournament) indexOf(id predictor.Component) int {
	for i, cid := range t.ids {
		if cid == id {
			return i
		}
	}
	return -1
}

// Predict implements Predictor. Every component produces an opinion;
// among the confident ones the chooser picks the highest per-entry
// counter (ties to the higher-preference component). With no confident
// component, the highest-preference predicted address is reported
// without speculation — the confidence-gated fallback. The chooser
// entry is allocated at prediction time, like the components' LB
// entries, so the two-way case stays in lockstep with the hybrid's
// shared load buffer.
func (t *Tournament) Predict(ref predictor.LoadRef) predictor.Prediction {
	e, existed := t.lb.Insert(ref.IP)
	if !existed {
		e.ctr = t.init
	}
	ops := t.pushFlight()
	for i, c := range t.comps {
		ops[i] = c.Predict(ref)
	}

	var p predictor.Prediction
	for i, id := range t.ids {
		switch id {
		case predictor.CompStride:
			p.Stride = ops[i]
		case predictor.CompCAP:
			p.CAP = ops[i]
		}
	}

	chosen := -1
	for i := range ops {
		if !ops[i].Confident {
			continue
		}
		if chosen < 0 || e.ctr[i] > e.ctr[chosen] ||
			(e.ctr[i] == e.ctr[chosen] && t.rank(i) < t.rank(chosen)) {
			chosen = i
		}
	}
	if chosen >= 0 {
		p.Addr, p.Predicted, p.Speculate = ops[chosen].Addr, true, true
	} else {
		for _, i := range t.pref {
			if ops[i].Predicted {
				chosen = i
				p.Addr, p.Predicted = ops[i].Addr, true
				break
			}
		}
	}
	if chosen >= 0 {
		p.Selected = t.ids[chosen]
	}
	// SelState: for a two-way tournament the second component's counter
	// is the full relative 2-bit state (the counter vector keeps a
	// constant sum, so it maps 1:1 onto the hybrid's selector — see
	// FuzzTournamentSelector); for N-way it reports the winner's
	// counter, which is what breakdowns want to see.
	switch {
	case len(t.comps) == 2:
		p.SelState = e.ctr[1]
	case chosen >= 0:
		p.SelState = e.ctr[chosen]
	}
	return p
}

// Resolve implements Predictor. The chooser records relative
// performance only on disagreement among predicting components — the
// §3.7 selector rule generalized: every predictor that was right while
// another was wrong moves up, every predictor that was wrong while
// another was right moves down.
func (t *Tournament) Resolve(ref predictor.LoadRef, p predictor.Prediction, actual uint32) {
	if t.n == 0 {
		panic("tournament: Resolve without a matching Predict")
	}
	ops := t.popOldest()
	e, existed := t.lb.Insert(ref.IP)
	if !existed {
		e.ctr = t.init
	}

	npred, ncorrect := 0, 0
	for i := range ops {
		if ops[i].Predicted {
			npred++
			if ops[i].Addr == actual {
				ncorrect++
			}
		}
	}
	if npred >= 2 && ncorrect > 0 && ncorrect < npred {
		for i := range ops {
			if !ops[i].Predicted {
				continue
			}
			if ops[i].Addr == actual {
				e.ctr[i] = satInc(e.ctr[i], t.cfg.CounterMax)
			} else {
				e.ctr[i] = satDec(e.ctr[i])
			}
		}
	}

	chosen := t.indexOf(p.Selected)
	for i, c := range t.comps {
		c.Resolve(ref, ops[i], p.Speculate && i == chosen, actual)
	}
	if p.Speculate && chosen >= 0 {
		t.stats[chosen].Selected++
		if p.Addr == actual {
			t.stats[chosen].Correct++
		}
	}
}

// Squash implements Squasher: the youngest in-flight prediction was
// made on a wrong path and will never resolve (§5.4). The chooser
// entry is looked up (not modified) to keep its LRU state in lockstep
// with the components' load buffers.
func (t *Tournament) Squash(ref predictor.LoadRef, p predictor.Prediction) {
	if t.n == 0 {
		return
	}
	t.lb.Lookup(ref.IP)
	ops := t.popNewest()
	for i, c := range t.comps {
		c.Squash(ref, ops[i])
	}
}
