package tournament

import "capred/internal/predictor"

// MarkovConfig configures the Markov-N stride-history component: each
// static load keeps a shift(m)-xor-compressed history of its last
// HistLen strides, and the history indexes a shared tagged table of
// next strides. Where the plain stride predictor locks onto one
// repeating delta, the Markov component learns short repeating stride
// *patterns* — the +8,+8,+120 walk of an array-of-structs traversal,
// or the alternating deltas of a ping-pong buffer.
type MarkovConfig struct {
	Entries int // per-load LB entries (power of two)
	Ways    int // LB associativity
	// TableEntries sizes the shared stride-history → next-stride table.
	TableEntries int
	// TagBits is the number of extra history bits stored per table
	// entry and matched on lookup; zero disables tagging.
	TagBits int
	// HistLen is the number of strides the history retains; it fixes
	// the shift amount of the shift(m)-xor compression exactly as CAP's
	// HistoryLen does (§3.2).
	HistLen       int
	ConfMax       uint8
	ConfThreshold uint8
	Speculative   bool
}

// DefaultMarkovConfig is the last-3-strides predictor at the paper's
// table budget.
func DefaultMarkovConfig() MarkovConfig {
	return MarkovConfig{
		Entries: 4096, Ways: 2,
		TableEntries: 4096, TagBits: 8,
		HistLen: 3,
		ConfMax: 3, ConfThreshold: 2,
	}
}

// markovState is the per-static-load state in the LB.
type markovState struct {
	last uint32 // architectural last address
	have bool
	nstr uint8  // strides accumulated, saturating at HistLen (warm-up)
	hist uint32 // compressed architectural stride history
	conf uint8

	// Speculative (pipelined) state: the Markov chain can be walked
	// ahead — each predicted stride is folded into a speculative
	// history, CAP-style. A misprediction poisons the chain until the
	// pending window drains (§5.2 discipline; no catch-up, because the
	// wrong stride corrupted the compressed history).
	specLast  uint32
	specHist  uint32
	specValid bool
	pending   uint16
	poisoned  bool
}

// markovEntry is one shared-table entry: history(+tag) → next stride.
type markovEntry struct {
	stride int32
	tag    uint16
	valid  bool
}

// Markov is the Markov-N stride-history component.
type Markov struct {
	cfg     MarkovConfig
	lb      *predictor.LBTable[markovState]
	tab     []markovEntry
	shift   uint
	histMsk uint32
	idxBits uint
	tagMsk  uint32
}

// NewMarkov builds the Markov component.
func NewMarkov(cfg MarkovConfig) *Markov {
	checkPow2("Markov table entries", cfg.TableEntries)
	if cfg.HistLen < 1 {
		panic("tournament: Markov HistLen must be at least 1")
	}
	if cfg.TagBits > 16 {
		panic("tournament: Markov TagBits must be at most 16")
	}
	idxBits := log2(cfg.TableEntries)
	histBits := idxBits + uint(cfg.TagBits)
	if histBits > 32 {
		panic("tournament: Markov history wider than 32 bits")
	}
	shift := (histBits + uint(cfg.HistLen) - 1) / uint(cfg.HistLen)
	if shift == 0 {
		shift = 1
	}
	m := &Markov{
		cfg:     cfg,
		lb:      predictor.NewLBTable[markovState](cfg.Entries, cfg.Ways),
		tab:     make([]markovEntry, cfg.TableEntries),
		shift:   shift,
		idxBits: idxBits,
		histMsk: uint32(1)<<histBits - 1,
		tagMsk:  uint32(1)<<uint(cfg.TagBits) - 1,
	}
	if histBits == 32 {
		m.histMsk = ^uint32(0)
	}
	return m
}

// ID identifies the component in Prediction.Selected.
func (m *Markov) ID() predictor.Component { return predictor.CompMarkov }

// Name returns the component's display name.
func (m *Markov) Name() string { return "markov" }

// advance folds a stride into the compressed history (§3.2 shift-xor,
// with the two alignment bits dropped as for base addresses).
func (m *Markov) advance(hist uint32, stride int32) uint32 {
	return (hist<<m.shift ^ uint32(stride)>>2) & m.histMsk
}

func (m *Markov) split(hist uint32) (idx int, tag uint16) {
	return int(hist & (uint32(len(m.tab)) - 1)), uint16(hist >> m.idxBits & uint32(m.tagMsk))
}

func (m *Markov) warm(st *markovState) bool {
	return st.have && st.nstr >= uint8(m.cfg.HistLen)
}

func (m *Markov) predictFrom(st *markovState, last, hist uint32, valid bool) predictor.ComponentPrediction {
	if !valid {
		return predictor.ComponentPrediction{}
	}
	idx, tag := m.split(hist)
	e := &m.tab[idx]
	if !e.valid || (m.cfg.TagBits > 0 && e.tag != tag) {
		return predictor.ComponentPrediction{}
	}
	return predictor.ComponentPrediction{
		Addr:      last + uint32(e.stride),
		Predicted: true,
		Confident: st.conf >= m.cfg.ConfThreshold,
	}
}

// Predict computes the component's opinion. In speculative mode each
// predicted stride is folded into the speculative history so the chain
// is walked ahead of resolution.
func (m *Markov) Predict(ref predictor.LoadRef) predictor.ComponentPrediction {
	st, _ := m.lb.Insert(ref.IP)
	if !m.cfg.Speculative {
		return m.predictFrom(st, st.last, st.hist, m.warm(st))
	}
	if st.pending == 0 && !st.poisoned {
		st.specLast, st.specHist, st.specValid = st.last, st.hist, m.warm(st)
	}
	cp := m.predictFrom(st, st.specLast, st.specHist, st.specValid)
	if cp.Predicted && st.specValid {
		st.specHist = m.advance(st.specHist, int32(cp.Addr-st.specLast))
		st.specLast = cp.Addr
	} else {
		st.specValid = false
	}
	if st.poisoned {
		cp.Confident = false
	}
	st.pending++
	return cp
}

// Resolve verifies the opinion, trains the stride table at the
// pre-update history, and advances the architectural state.
func (m *Markov) Resolve(ref predictor.LoadRef, cp predictor.ComponentPrediction, speculated bool, actual uint32) {
	st, _ := m.lb.Insert(ref.IP)
	if m.cfg.Speculative && st.pending > 0 {
		st.pending--
	}
	correct := cp.Predicted && cp.Addr == actual
	if cp.Predicted {
		if correct {
			st.conf = satInc(st.conf, m.cfg.ConfMax)
		} else {
			st.conf = 0
		}
	}

	if st.have {
		stride := int32(actual - st.last)
		// Train only once the history holds HistLen real strides, so
		// half-warm histories do not pollute the shared table.
		if st.nstr >= uint8(m.cfg.HistLen) {
			idx, tag := m.split(st.hist)
			m.tab[idx] = markovEntry{stride: stride, tag: tag, valid: true}
		}
		st.hist = m.advance(st.hist, stride)
		if st.nstr < uint8(m.cfg.HistLen) {
			st.nstr++
		}
	}
	st.last = actual
	st.have = true

	if m.cfg.Speculative {
		if cp.Predicted && !correct {
			st.poisoned = true
			st.specValid = false
		}
		if st.pending == 0 {
			st.poisoned = false
			st.specLast, st.specHist, st.specValid = st.last, st.hist, m.warm(st)
		}
	}
}

// Squash undoes Predict's in-flight bookkeeping; the speculative
// history cannot be rewound (shift-xor is lossy), so it is invalidated
// until the pending window drains.
func (m *Markov) Squash(ref predictor.LoadRef, cp predictor.ComponentPrediction) {
	st := m.lb.Lookup(ref.IP)
	if st == nil || !m.cfg.Speculative {
		return
	}
	if st.pending > 0 {
		st.pending--
	}
	st.specValid = false
	if st.pending == 0 {
		st.poisoned = false
		st.specLast, st.specHist, st.specValid = st.last, st.hist, m.warm(st)
	}
}
