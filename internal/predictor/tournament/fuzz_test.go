package tournament

import (
	"testing"

	"capred/internal/pipeline"
	"capred/internal/predictor"
)

// smallPair builds the hybrid and its two-way tournament replica over
// deliberately tiny tables (64-entry LBs, 64-entry LT with 4-bit tags)
// so fuzzed streams exercise collisions, evictions and selector
// saturation quickly. Both sides get identical component
// configurations.
func smallPair(speculative bool) (*predictor.Hybrid, *Tournament) {
	hc := predictor.DefaultHybridConfig()
	hc.CAP.LBEntries = 64
	hc.CAP.LBWays = 2
	hc.CAP.LTEntries = 64
	hc.CAP.TagBits = 4
	hc.CAP.PFTableEntries = 256
	hc.Speculative = speculative

	sc := hc.Stride
	sc.Speculative = speculative
	cc := hc.CAP
	cc.Speculative = speculative
	tour := New(Config{
		Entries:     hc.CAP.LBEntries,
		Ways:        hc.CAP.LBWays,
		CounterMax:  3,
		Speculative: speculative,
	}, predictor.NewStrideComponent(sc), predictor.NewCAPComponent(cc))
	return predictor.NewHybrid(hc), tour
}

// diffStep compares two predictions field for field.
func diffStep(t *testing.T, step int, ph, pt predictor.Prediction) {
	t.Helper()
	if ph != pt {
		t.Fatalf("step %d: tournament diverged from hybrid:\nhybrid     %+v\ntournament %+v", step, ph, pt)
	}
}

// FuzzTournamentSelector is the differential fuzzer of the equivalence
// claim: a two-way tournament configured as stride+CAP is
// decision-identical to the paper's Hybrid — same chosen component,
// same selector state, same confidence gating — in immediate mode and
// under a prediction gap with wrong-path squashes mixed in.
func FuzzTournamentSelector(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 0xFF, 0x80, 0x40, 0x20})
	seed := make([]byte, 96)
	for i := range seed {
		seed[i] = byte(i*61 + 7)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, gap := range []int{0, 4} {
			h, tour := smallPair(gap > 0)
			gh := pipeline.New(h, gap)
			gt := pipeline.New(tour, gap)
			var ghr predictor.GHR
			var path predictor.PathHist
			in := data
			for step := 0; len(in) >= 4; step++ {
				// A tiny IP space (16 static loads) plus low-entropy
				// addresses makes strides, repeats and collisions all
				// common; two control bits drive history updates and one
				// triggers a wrong-path squash.
				ip := uint32(in[0]&0xF) * 4
				addr := uint32(in[1])<<4 | uint32(in[2])
				offset := int32(in[3] & 0x3F)
				ghr.Update(in[3]&0x80 != 0)
				if in[3]&0x40 != 0 {
					path.Push(ip)
				}
				squash := in[0]&0x30 == 0x30
				in = in[4:]

				ref := predictor.LoadRef{IP: ip, Offset: offset, GHR: ghr.Value(), Path: path.Value()}
				diffStep(t, step, gh.Process(ref, addr), gt.Process(ref, addr))
				if squash {
					if nh, nt := gh.SquashNewest(1), gt.SquashNewest(1); nh != nt {
						t.Fatalf("step %d: squashed %d vs %d", step, nh, nt)
					}
				}
			}
			gh.Drain()
			gt.Drain()
			// The drained state must agree too: one more prediction per
			// static load compares the post-drain tables.
			for ip := uint32(0); ip < 16; ip++ {
				ref := predictor.LoadRef{IP: ip * 4, GHR: ghr.Value(), Path: path.Value()}
				diffStep(t, -1, gh.Process(ref, 0x1234), gt.Process(ref, 0x1234))
			}
		}
	})
}

// TestPaperPairMatchesHybrid pins the equivalence deterministically on
// a longer structured stream than fuzzing reaches, including a gap
// deeper than the tournament's initial in-flight ring (so ring growth
// is exercised) and periodic squashes.
func TestPaperPairMatchesHybrid(t *testing.T) {
	for _, gap := range []int{0, 4, 40} {
		h, tour := smallPair(gap > 0)
		gh := pipeline.New(h, gap)
		gt := pipeline.New(tour, gap)
		var ghr predictor.GHR
		var path predictor.PathHist
		rng := uint32(0x9E3779B9)
		next := func() uint32 { // xorshift: deterministic, seedless
			rng ^= rng << 13
			rng ^= rng >> 17
			rng ^= rng << 5
			return rng
		}
		for step := 0; step < 20_000; step++ {
			r := next()
			ip := (r & 0x1F) * 4
			var addr uint32
			switch r >> 30 {
			case 0: // strided
				addr = 0x1000 + uint32(step)*8
			case 1: // repeating walk
				addr = 0x8000 + (uint32(step)%7)*0x40
			default: // noise
				addr = next() & 0xFFFF
			}
			ghr.Update(r&0x100 != 0)
			if r&0x200 != 0 {
				path.Push(ip)
			}
			ref := predictor.LoadRef{IP: ip, Offset: int32(r >> 8 & 0x3F), GHR: ghr.Value(), Path: path.Value()}
			ph, pt := gh.Process(ref, addr), gt.Process(ref, addr)
			if ph != pt {
				t.Fatalf("gap %d step %d: hybrid %+v tournament %+v", gap, step, ph, pt)
			}
			if gap > 0 && r&0xF000 == 0xF000 {
				gh.SquashNewest(2)
				gt.SquashNewest(2)
			}
		}
		gh.Drain()
		gt.Drain()
	}
}
