package tournament

import "capred/internal/predictor"

// Delta2Config configures the delta-delta (acceleration) component:
// per static load it tracks the first and second difference of the
// address stream and predicts addr + Δ + ΔΔ. On streams whose second
// difference is constant — quadratic index expressions, triangular
// loop nests, growing-record appends — the prediction is exact where a
// plain stride predictor re-trains on every step.
type Delta2Config struct {
	Entries       int // per-load LB entries (power of two)
	Ways          int // LB associativity
	ConfMax       uint8
	ConfThreshold uint8
	Speculative   bool
}

// DefaultDelta2Config mirrors the paper's LB geometry (§4.2).
func DefaultDelta2Config() Delta2Config {
	return Delta2Config{Entries: 4096, Ways: 2, ConfMax: 3, ConfThreshold: 2}
}

// delta2State is the per-static-load state in the LB.
type delta2State struct {
	last uint32 // architectural last address
	have bool
	d1   int32 // last first-difference
	d2   int32 // last second-difference
	nd   uint8 // differences accumulated, saturating at 2 (warm-up)
	conf uint8

	// Speculative (pipelined) state: specLast/specD1 are the address
	// and first-difference of the most recently predicted instance. The
	// closed-form catch-up (§5.2 generalized to second order) restores
	// them after a misprediction without waiting for the drain.
	specLast  uint32
	specD1    int32
	specValid bool
	pending   uint16
}

// Delta2 is the delta-delta (acceleration) component.
type Delta2 struct {
	cfg Delta2Config
	lb  *predictor.LBTable[delta2State]
}

// NewDelta2 builds the delta-delta component.
func NewDelta2(cfg Delta2Config) *Delta2 {
	return &Delta2{cfg: cfg, lb: predictor.NewLBTable[delta2State](cfg.Entries, cfg.Ways)}
}

// ID identifies the component in Prediction.Selected.
func (d *Delta2) ID() predictor.Component { return predictor.CompDelta2 }

// Name returns the component's display name.
func (d *Delta2) Name() string { return "delta2" }

func (d *Delta2) predictFrom(st *delta2State, last uint32, d1 int32, valid bool) predictor.ComponentPrediction {
	if !valid {
		return predictor.ComponentPrediction{}
	}
	return predictor.ComponentPrediction{
		Addr:      last + uint32(d1+st.d2),
		Predicted: true,
		Confident: st.conf >= d.cfg.ConfThreshold,
	}
}

// Predict computes the component's opinion. In speculative mode the
// accelerating sequence is extrapolated across the pending window: each
// prediction advances the speculative first-difference by the
// architectural second-difference.
func (d *Delta2) Predict(ref predictor.LoadRef) predictor.ComponentPrediction {
	st, _ := d.lb.Insert(ref.IP)
	if !d.cfg.Speculative {
		return d.predictFrom(st, st.last, st.d1, st.nd >= 2)
	}
	if st.pending == 0 {
		st.specLast, st.specD1, st.specValid = st.last, st.d1, st.nd >= 2
	}
	cp := d.predictFrom(st, st.specLast, st.specD1, st.specValid)
	if cp.Predicted {
		st.specD1 += st.d2
		st.specLast = cp.Addr
	}
	st.pending++
	return cp
}

// Resolve verifies the opinion and updates the difference chain.
func (d *Delta2) Resolve(ref predictor.LoadRef, cp predictor.ComponentPrediction, speculated bool, actual uint32) {
	st, _ := d.lb.Insert(ref.IP)
	if d.cfg.Speculative && st.pending > 0 {
		st.pending--
	}
	correct := cp.Predicted && cp.Addr == actual
	if cp.Predicted {
		if correct {
			st.conf = satInc(st.conf, d.cfg.ConfMax)
		} else {
			st.conf = 0
		}
	}

	if st.have {
		nd1 := int32(actual - st.last)
		if st.nd == 0 {
			st.d1, st.nd = nd1, 1
		} else {
			st.d2 = nd1 - st.d1
			st.d1 = nd1
			st.nd = 2
		}
	}
	st.last = actual
	st.have = true

	if d.cfg.Speculative {
		if st.pending == 0 {
			st.specLast, st.specD1, st.specValid = st.last, st.d1, st.nd >= 2
		} else if !correct || !st.specValid {
			// Catch-up: extrapolate the quadratic over the pending
			// unresolved instances so the next prediction lands
			// correctly instead of waiting for the window to drain.
			if st.nd >= 2 {
				a, d1 := st.last, st.d1
				for i := uint16(0); i < st.pending; i++ {
					d1 += st.d2
					a += uint32(d1)
				}
				st.specLast, st.specD1, st.specValid = a, d1, true
			} else {
				st.specValid = false
			}
		}
	}
}

// Squash undoes Predict's in-flight bookkeeping; like the stride
// component, the speculative chain is invalidated and re-established by
// catch-up at the next resolution.
func (d *Delta2) Squash(ref predictor.LoadRef, cp predictor.ComponentPrediction) {
	st := d.lb.Lookup(ref.IP)
	if st == nil || !d.cfg.Speculative {
		return
	}
	if st.pending > 0 {
		st.pending--
	}
	st.specValid = false
	if st.pending == 0 {
		st.specLast, st.specD1, st.specValid = st.last, st.d1, st.nd >= 2
	}
}
