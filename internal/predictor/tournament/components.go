package tournament

import (
	"fmt"

	"capred/internal/predictor"
)

// ComponentNames lists every component NewComponent can build, in
// canonical order. capserve validates session configs against this
// list and pre-registers /metrics series from it.
func ComponentNames() []string {
	return []string{"stride", "cap", "last", "markov", "delta2", "callpath"}
}

// DefaultComponents is the full production lineup: the paper's hybrid
// pair plus the three new entrants.
func DefaultComponents() []string {
	return []string{"stride", "cap", "markov", "delta2", "callpath"}
}

// NewComponent builds the named component with its default
// configuration for the given discipline. The names are the components'
// own Name() values — one open namespace shared with the
// predictor.Component table, not a parallel enum.
func NewComponent(name string, speculative bool) (Component, error) {
	switch name {
	case "stride":
		cfg := predictor.DefaultStrideConfig()
		cfg.Speculative = speculative
		return predictor.NewStrideComponent(cfg), nil
	case "cap":
		cfg := predictor.DefaultCAPConfig()
		cfg.Speculative = speculative
		return predictor.NewCAPComponent(cfg), nil
	case "last":
		return predictor.NewLastComponent(predictor.DefaultLastConfig()), nil
	case "markov":
		cfg := DefaultMarkovConfig()
		cfg.Speculative = speculative
		return NewMarkov(cfg), nil
	case "delta2":
		cfg := DefaultDelta2Config()
		cfg.Speculative = speculative
		return NewDelta2(cfg), nil
	case "callpath":
		cfg := DefaultCallPathConfig()
		cfg.Speculative = speculative
		return NewCallPath(cfg), nil
	}
	return nil, fmt.Errorf("tournament: unknown component %q", name)
}

// NewNamed builds a tournament over the named components in order,
// each with its default configuration.
func NewNamed(cfg Config, speculative bool, names ...string) (*Tournament, error) {
	cfg.Speculative = speculative
	comps := make([]Component, 0, len(names))
	for _, n := range names {
		c, err := NewComponent(n, speculative)
		if err != nil {
			return nil, err
		}
		comps = append(comps, c)
	}
	return New(cfg, comps...), nil
}

// NewFull builds the default 5-way tournament (DefaultComponents over
// the default chooser).
func NewFull(speculative bool) *Tournament {
	t, err := NewNamed(DefaultConfig(), speculative, DefaultComponents()...)
	if err != nil {
		panic(err) // unreachable: DefaultComponents are all known
	}
	return t
}

// NewPaperPair builds the two-way stride+CAP tournament that is
// decision-identical to predictor.NewHybrid(DefaultHybridConfig()):
// same component configurations, chooser geometry equal to the shared
// load buffer, counter ceiling 3, and the (1,2) initial vector whose
// constant sum maps the counter pair 1:1 onto the hybrid's 2-bit
// selector. FuzzTournamentSelector holds this equivalence down to
// selector state and chosen component.
func NewPaperPair(speculative bool) *Tournament {
	hc := predictor.DefaultHybridConfig()
	cfg := Config{
		Entries:    hc.CAP.LBEntries,
		Ways:       hc.CAP.LBWays,
		CounterMax: 3,
	}
	t, err := NewNamed(cfg, speculative, "stride", "cap")
	if err != nil {
		panic(err) // unreachable
	}
	return t
}
