package tournament

import "capred/internal/predictor"

// CallPathConfig configures the call-path-context component: a hash of
// the load's IP and the low bits of the call-path history register —
// the rolling hash over the last few call-site IPs that
// predictor.Session maintains — indexes a shared, tagged correlation
// table of last addresses with per-context confidence.
//
// This is the paper's §3.6 call-path predictor, which loses badly as a
// stand-alone replacement for CAP. As a tournament entrant the economics
// flip: the context disambiguates loads reached through different
// callers (an allocator called from two sites, an accessor walking two
// distinct structures), the per-context counter keeps it quiet
// everywhere else, and the chooser only takes its address on the loads
// where it has actually been winning.
type CallPathConfig struct {
	TableEntries int // correlation table entries (power of two)
	// TagBits is the number of extra hash bits stored per entry and
	// matched on lookup; zero disables tagging.
	TagBits int
	// PathBits is how many low bits of the path-history hash enter the
	// index. The session hash shifts three bits per call site, so k
	// retained call sites need about 3k bits; the default 12 keeps the
	// last four.
	PathBits      int
	ConfMax       uint8
	ConfThreshold uint8
	Speculative   bool // accepted for symmetry; Predict is read-only either way
}

// DefaultCallPathConfig matches the §3.6 table budget with last-4
// call-site context.
func DefaultCallPathConfig() CallPathConfig {
	return CallPathConfig{
		TableEntries: 8192, TagBits: 8, PathBits: 12,
		ConfMax: 3, ConfThreshold: 2,
	}
}

// cpathEntry is one correlation-table entry.
type cpathEntry struct {
	addr  uint32
	tag   uint16
	conf  uint8
	valid bool
}

// CallPath is the call-path-context component. It keeps no per-load
// state and Predict never mutates the table, so the component is sound
// under a prediction gap without any speculative machinery: there is
// nothing to repair and nothing to squash.
type CallPath struct {
	cfg     CallPathConfig
	tab     []cpathEntry
	idxBits uint
	pathMsk uint32
	tagMsk  uint32
}

// NewCallPath builds the call-path-context component.
func NewCallPath(cfg CallPathConfig) *CallPath {
	checkPow2("call-path table entries", cfg.TableEntries)
	if cfg.TagBits > 16 {
		panic("tournament: call-path TagBits must be at most 16")
	}
	return &CallPath{
		cfg:     cfg,
		tab:     make([]cpathEntry, cfg.TableEntries),
		idxBits: log2(cfg.TableEntries),
		pathMsk: uint32(1)<<uint(cfg.PathBits) - 1,
		tagMsk:  uint32(1)<<uint(cfg.TagBits) - 1,
	}
}

// ID identifies the component in Prediction.Selected.
func (c *CallPath) ID() predictor.Component { return predictor.CompCallPath }

// Name returns the component's display name.
func (c *CallPath) Name() string { return "callpath" }

// hash mixes the load IP with the retained call-path bits; index and
// tag split the result exactly as the CAP link table does.
func (c *CallPath) hash(ref predictor.LoadRef) uint32 {
	return ref.IP>>2 ^ ref.Path&c.pathMsk
}

func (c *CallPath) split(h uint32) (idx int, tag uint16) {
	return int(h & (uint32(len(c.tab)) - 1)), uint16(h >> c.idxBits & c.tagMsk)
}

// Predict computes the component's opinion; it never mutates state.
func (c *CallPath) Predict(ref predictor.LoadRef) predictor.ComponentPrediction {
	idx, tag := c.split(c.hash(ref))
	e := &c.tab[idx]
	if !e.valid || (c.cfg.TagBits > 0 && e.tag != tag) {
		return predictor.ComponentPrediction{}
	}
	return predictor.ComponentPrediction{
		Addr:      e.addr,
		Predicted: true,
		Confident: e.conf >= c.cfg.ConfThreshold,
	}
}

// Resolve trains the correlation table: a matching context builds
// confidence on repeats and records the newest address; a conflicting
// context takes the entry over with confidence reset.
func (c *CallPath) Resolve(ref predictor.LoadRef, cp predictor.ComponentPrediction, speculated bool, actual uint32) {
	idx, tag := c.split(c.hash(ref))
	e := &c.tab[idx]
	if e.valid && (c.cfg.TagBits == 0 || e.tag == tag) && e.addr == actual {
		e.conf = satInc(e.conf, c.cfg.ConfMax)
	} else {
		e.conf = 0
	}
	e.addr, e.tag, e.valid = actual, tag, true
}

// Squash is a no-op: Predict leaves no in-flight bookkeeping behind.
func (c *CallPath) Squash(ref predictor.LoadRef, cp predictor.ComponentPrediction) {}
