package predictor

import (
	"encoding/binary"
	"testing"
)

// fuzzCAPConfig is a deliberately tiny link table so fuzzed histories
// collide constantly: 64 direct-mapped entries, 4-bit tags, in-LT PF
// bits (PFTableEntries = 0) — the configuration whose gate state lives
// in the same entry the link does.
func fuzzCAPConfig() CAPConfig {
	cfg := DefaultCAPConfig()
	cfg.LTEntries = 64
	cfg.LTWays = 1
	cfg.TagBits = 4
	cfg.HistoryLen = 2
	cfg.PFBits = 4
	cfg.PFTableEntries = 0
	return cfg
}

// shadowLT is an independent reimplementation of the direct-mapped link
// table with in-LT PF bits, used as the differential oracle: the real
// capCore must agree with it on every lookup after every update.
type shadowLT struct {
	link      [64]uint32
	tag       [64]uint16
	linkValid [64]bool
	pf        [64]uint8
	pfValid   [64]bool
}

func (s *shadowLT) split(hist uint32) (int, uint16) {
	return int(hist & 63), uint16(hist >> 6 & 0xF)
}

func (s *shadowLT) update(hist, base uint32) {
	idx, tag := s.split(hist)
	pfNew := uint8(base >> 2 & 0xF)
	// PF hysteresis (§3.5): the link is written only when the same PF
	// value hit this entry on the immediately preceding update.
	gate := s.pfValid[idx] && s.pf[idx] == pfNew
	s.pf[idx], s.pfValid[idx] = pfNew, true
	if !gate {
		return
	}
	s.link[idx], s.tag[idx], s.linkValid[idx] = base, tag, true
}

func (s *shadowLT) lookup(hist uint32) (uint32, bool, bool) {
	idx, tag := s.split(hist)
	if !s.linkValid[idx] {
		return 0, false, false
	}
	return s.link[idx], true, s.tag[idx] == tag
}

// FuzzCAPLookupUpdate differentially fuzzes the link table: every
// (hist, base) update stream must leave the real table and the shadow
// model in agreement, which pins the index/tag split, the tag-confidence
// signal and the PF-bit write gate all at once.
func FuzzCAPLookupUpdate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		core := newCAPCore(fuzzCAPConfig())
		var shadow shadowLT
		for len(data) >= 8 {
			hist := binary.LittleEndian.Uint32(data) & core.histMsk
			base := binary.LittleEndian.Uint32(data[4:])
			data = data[8:]

			core.ltUpdate(hist, base)
			shadow.update(hist, base)

			gotLink, gotOK, gotTag := core.ltLookup(hist)
			wantLink, wantOK, wantTag := shadow.lookup(hist)
			if gotOK != wantOK || gotTag != wantTag || (gotOK && gotLink != wantLink) {
				t.Fatalf("ltLookup(%#x) = (%#x, %v, %v), shadow says (%#x, %v, %v)",
					hist, gotLink, gotOK, gotTag, wantLink, wantOK, wantTag)
			}
		}
	})
}

// TestPFBitHysteresis pins the §3.5 gate deterministically: a link is
// recorded only on the second consecutive sighting of the same PF value,
// and an intervening different PF value restarts the sequence.
func TestPFBitHysteresis(t *testing.T) {
	core := newCAPCore(fuzzCAPConfig())
	const hist = 0x2A
	baseA := uint32(0x1000) // PF = bits 2..5 of the base
	baseB := uint32(0x1004) // different PF value, same LT index

	core.ltUpdate(hist, baseA)
	if _, ok, _ := core.ltLookup(hist); ok {
		t.Fatal("link written on first sighting; PF gate should hold it back")
	}
	core.ltUpdate(hist, baseB) // different PF: gate stays closed, PF field now B
	if _, ok, _ := core.ltLookup(hist); ok {
		t.Fatal("link written after alternating PF values")
	}
	core.ltUpdate(hist, baseB) // second consecutive sighting of B
	link, ok, tagOK := core.ltLookup(hist)
	if !ok || !tagOK || link != baseB {
		t.Fatalf("second sighting should record the link: link=%#x ok=%v tagOK=%v", link, ok, tagOK)
	}
	// Overwrite requires its own double sighting.
	core.ltUpdate(hist, baseA)
	if link, _, _ := core.ltLookup(hist); link != baseB {
		t.Fatalf("single sighting overwrote the link: %#x", link)
	}
	core.ltUpdate(hist, baseA)
	if link, _, _ := core.ltLookup(hist); link != baseA {
		t.Fatalf("double sighting should overwrite the link: %#x", link)
	}
}

// fuzzHybridConfig shrinks the hybrid's tables so fuzz inputs exercise
// collisions and evictions quickly.
func fuzzHybridConfig() HybridConfig {
	cfg := DefaultHybridConfig()
	cfg.CAP.LBEntries = 64
	cfg.CAP.LBWays = 2
	cfg.CAP.LTEntries = 64
	cfg.CAP.TagBits = 4
	cfg.CAP.PFTableEntries = 256
	return cfg
}

// FuzzHybridSelector drives the full hybrid predictor over fuzzed load
// streams and asserts its state-machine invariants: no panics, selector
// counters stay 2-bit and move at most one state per resolution (and
// only when both components predicted with exactly one correct), and
// confidence counters never exceed ConfMax.
func FuzzHybridSelector(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 0xFF, 0x80, 0x40, 0x20})
	seed := make([]byte, 96)
	for i := range seed {
		seed[i] = byte(i*61 + 7)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		h := NewHybrid(fuzzHybridConfig())
		var ghr GHR
		var path PathHist
		for len(data) >= 4 {
			// A tiny IP space (16 static loads) plus low-entropy addresses
			// makes strides, repeats and collisions all common.
			ip := uint32(data[0]&0xF) * 4
			addr := uint32(data[1])<<4 | uint32(data[2])
			offset := int32(data[3] & 0x3F)
			ghr.Update(data[3]&0x80 != 0)
			if data[3]&0x40 != 0 {
				path.Push(ip)
			}
			data = data[4:]

			ref := LoadRef{IP: ip, Offset: offset, GHR: ghr.Value(), Path: path.Value()}
			selBefore := uint8(SelWeakCAP)
			if e := h.lb.Lookup(ip); e != nil {
				selBefore = e.sel
			}
			p := h.Predict(ref)
			if p.Speculate && !p.Predicted {
				t.Fatal("speculated without predicting")
			}
			if p.SelState > SelStrongCAP {
				t.Fatalf("selector state out of range: %d", p.SelState)
			}
			h.Resolve(ref, p, addr)

			e := h.lb.Lookup(ip)
			if e == nil {
				t.Fatal("LB entry vanished between Predict and Resolve")
			}
			if e.sel > SelStrongCAP {
				t.Fatalf("selector left the 2-bit range: %d", e.sel)
			}
			diff := int(e.sel) - int(selBefore)
			if diff < -1 || diff > 1 {
				t.Fatalf("selector moved more than one state: %d -> %d", selBefore, e.sel)
			}
			if diff != 0 && !(p.Stride.Predicted && p.CAP.Predicted) {
				t.Fatalf("selector moved without both components predicting: %d -> %d", selBefore, e.sel)
			}
			cfg := h.cfg
			if e.stride.conf > cfg.Stride.ConfMax {
				t.Fatalf("stride confidence %d exceeds max %d", e.stride.conf, cfg.Stride.ConfMax)
			}
			if e.cap.conf > cfg.CAP.ConfMax {
				t.Fatalf("cap confidence %d exceeds max %d", e.cap.conf, cfg.CAP.ConfMax)
			}
		}
	})
}
