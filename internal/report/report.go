// Package report renders experiment results as aligned plain-text tables,
// one per paper figure, for the benchmark harness and cmd/capsim.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	footer  string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are rejected.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// SetFooter attaches free-form text rendered after the rows — the
// experiment drivers use it for "N of M traces failed" reports. An empty
// footer renders nothing.
func (t *Table) SetFooter(s string) { t.footer = s }

// Footer returns the attached footer text.
func (t *Table) Footer() string { return t.footer }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	if t.footer != "" {
		b.WriteString(t.footer)
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// Pct2 formats a ratio as a percentage with two decimals, used for
// accuracy numbers where the paper reports 98.9%-style precision.
func Pct2(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }

// Speedup formats a speedup factor ("1.21x").
func Speedup(x float64) string { return fmt.Sprintf("%.2fx", x) }
