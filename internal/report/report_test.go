package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Title", "col1", "column2", "c3")
	tb.Add("a", "bb", "ccc")
	tb.Add("dddd", "e")
	out := tb.String()

	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: every data line must be at least as wide as the
	// header prefix for its populated cells.
	if !strings.Contains(lines[1], "col1") || !strings.Contains(lines[1], "column2") {
		t.Errorf("header wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "a    ") {
		t.Errorf("narrow cell not padded to column width: %q", lines[3])
	}
	if !strings.Contains(lines[4], "dddd") {
		t.Errorf("second row missing: %q", lines[4])
	}
}

func TestTableColumnWidthGrowsWithCells(t *testing.T) {
	tb := New("", "x")
	tb.Add("wider-than-header")
	out := tb.String()
	if !strings.Contains(out, "wider-than-header") {
		t.Error("cell truncated")
	}
	// Header line must be padded to the cell width.
	lines := strings.Split(out, "\n")
	if len(lines[0]) < len("wider-than-header") {
		t.Errorf("header not padded: %q", lines[0])
	}
}

func TestTableRejectsOverlongRow(t *testing.T) {
	tb := New("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many cells")
		}
	}()
	tb.Add("1", "2", "3")
}

func TestTableRows(t *testing.T) {
	tb := New("t", "a")
	if tb.Rows() != 0 {
		t.Error("fresh table should have 0 rows")
	}
	tb.Add("x")
	tb.Add("y")
	if tb.Rows() != 2 {
		t.Errorf("Rows() = %d, want 2", tb.Rows())
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.675); got != "67.5%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct2(0.98912); got != "98.91%" {
		t.Errorf("Pct2 = %q", got)
	}
	if got := Speedup(1.2345); got != "1.23x" {
		t.Errorf("Speedup = %q", got)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := New("", "h")
	tb.Add("v")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("untitled table should not start with a blank line")
	}
}
