package analysis

// Intraprocedural control-flow graphs over go/ast, for the
// flow-sensitive analyzers (blockown, ctxflow). The builder decomposes
// a function body into basic blocks connected by edges, with:
//
//   - short-circuit conditions split so every && / || operand is its
//     own branch block (condition refinement sees each leaf);
//   - loops (for, range), switches (expr and type), select, labeled
//     break/continue, goto and fallthrough wired structurally;
//   - defer recorded in registration order on the graph; deferred
//     calls run at the function exit, so the dataflow engine replays
//     them against the exit state rather than inline.
//
// Only "simple" statements land in a block's node list (assignments,
// expression statements, sends, declarations, returns, defers, go
// statements, inc/dec); control statements are decomposed into edges
// and never appear as nodes, so an analyzer walking a node's subtree
// never re-enters flow the graph already models. Function literals
// inside a node are opaque: they get their own graph via funcCFGs.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: straight-line nodes, then either an
// unconditional edge set or a two-way branch on cond.
type cfgBlock struct {
	index int
	nodes []ast.Node
	// cond, when non-nil, is the branch condition: succs[0] is the
	// true edge, succs[1] the false edge. When nil, succs are
	// unordered alternatives (join points, loop heads, select/switch
	// dispatch).
	cond  ast.Expr
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// exit is the single synthetic exit block every return (and the
	// fall-off-the-end path) reaches. It holds no nodes; deferred
	// calls conceptually run here.
	exit *cfgBlock
	// defers lists every defer statement in registration order.
	// Execution order at exit is the reverse.
	defers []*ast.DeferStmt
}

// cfgTarget is one enclosing breakable/continuable construct.
type cfgTarget struct {
	label    string
	isLoop   bool
	breakTo  *cfgBlock
	contTo   *cfgBlock // loops only
	nextCase *cfgBlock // switch clauses: fallthrough destination
}

type cfgBuilder struct {
	g       *funcCFG
	cur     *cfgBlock
	targets []cfgTarget
	labels  map[string]*cfgBlock // goto targets, created on demand
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, labels: make(map[string]*cfgBlock)}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	// Falling off the end of the body reaches the exit.
	b.edge(b.cur, b.g.exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// edge appends an unconditional successor. A nil from (dead code after
// return/break) is a no-op.
func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// add appends a node to the current block, resurrecting a dangling
// block for statically dead code so its nodes still exist in the graph
// (the engine simply never reaches them).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the pending label when the
// statement was wrapped in `label: ...`.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// The label binds break/continue on the construct itself.
			b.stmt(s.Stmt, s.Label.Name)
		default:
			// A goto target: seal the current block into the label's
			// block and continue there.
			lb := b.labelBlock(s.Label.Name)
			b.edge(b.cur, lb)
			b.cur = lb
			b.stmt(s.Stmt, "")
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		then, done := b.newBlock(), b.newBlock()
		els := done
		if s.Else != nil {
			els = b.newBlock()
		}
		b.condExpr(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, done)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else, "")
			b.edge(b.cur, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		body, done := b.newBlock(), b.newBlock()
		if s.Cond != nil {
			b.cur = head
			b.condExpr(s.Cond, body, done)
		} else {
			head.succs = append(head.succs, body)
		}
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.pushTarget(cfgTarget{label: label, isLoop: true, breakTo: done, contTo: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.popTarget()
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post, "")
			b.edge(b.cur, head)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = done

	case *ast.RangeStmt:
		// The range operand is evaluated once, before the loop.
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		body, done := b.newBlock(), b.newBlock()
		head.succs = append(head.succs, body, done)
		b.pushTarget(cfgTarget{label: label, isLoop: true, breakTo: done, contTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.popTarget()
		b.edge(b.cur, head)
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause, blk *cfgBlock) {
			for _, e := range cc.List {
				blk.nodes = append(blk.nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		// The subject expression (x := y.(type) or y.(type)) is
		// evaluated once at the head.
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		done := b.newBlock()
		b.pushTarget(cfgTarget{label: label, breakTo: done})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm, "")
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, done)
		}
		b.popTarget()
		if len(s.Body.List) == 0 {
			// select{} blocks forever: done is unreachable.
			b.cur = nil
		}
		b.cur = done

	case *ast.DeferStmt:
		// Arguments are evaluated at registration; the call itself
		// runs at exit (the engine replays g.defers there).
		b.add(s)
		b.g.defers = append(b.g.defers, s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Expr, Go, IncDec, Send — straight-line.
		b.add(s)
	}
}

// switchClauses lowers the clause list shared by expr and type
// switches. addExprs, when non-nil, records a clause's case
// expressions into its block.
func (b *cfgBuilder) switchClauses(list []ast.Stmt, label string, addExprs func(*ast.CaseClause, *cfgBlock)) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	done := b.newBlock()
	// Pre-create clause blocks so fallthrough can resolve forward.
	blocks := make([]*cfgBlock, len(list))
	hasDefault := false
	for i, cl := range list {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if len(cl.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, cl := range list {
		cc := cl.(*ast.CaseClause)
		if addExprs != nil {
			addExprs(cc, blocks[i])
		}
		next := done
		if i+1 < len(list) {
			next = blocks[i+1]
		}
		b.pushTarget(cfgTarget{label: label, breakTo: done, nextCase: next})
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.popTarget()
		b.edge(b.cur, done)
	}
	b.cur = done
}

// branchStmt wires break/continue/goto/fallthrough.
func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if name == "" || t.label == name {
				b.edge(b.cur, t.breakTo)
				b.cur = nil
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.isLoop && (name == "" || t.label == name) {
				b.edge(b.cur, t.contTo)
				b.cur = nil
				return
			}
		}
	case token.GOTO:
		b.edge(b.cur, b.labelBlock(name))
		b.cur = nil
	case token.FALLTHROUGH:
		for i := len(b.targets) - 1; i >= 0; i-- {
			if t := b.targets[i]; t.nextCase != nil {
				b.edge(b.cur, t.nextCase)
				b.cur = nil
				return
			}
		}
	}
	// Malformed code (the type-checker rejects it); drop the edge.
	b.cur = nil
}

// labelBlock returns (creating on demand) the block a label names.
func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) pushTarget(t cfgTarget) { b.targets = append(b.targets, t) }
func (b *cfgBuilder) popTarget()             { b.targets = b.targets[:len(b.targets)-1] }

// condExpr lowers a branch condition with short-circuit decomposition:
// every && / || operand becomes its own leaf block whose cond the
// dataflow engine can refine per edge; ! swaps the edges.
func (b *cfgBuilder) condExpr(e ast.Expr, t, f *cfgBlock) {
	switch ex := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch ex.Op {
		case token.LAND:
			mid := b.newBlock()
			b.condExpr(ex.X, mid, f)
			b.cur = mid
			b.condExpr(ex.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.condExpr(ex.X, t, mid)
			b.cur = mid
			b.condExpr(ex.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if ex.Op == token.NOT {
			b.condExpr(ex.X, f, t)
			return
		}
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	// The leaf is both evaluated (a node, so nested calls are seen)
	// and branched on.
	b.cur.nodes = append(b.cur.nodes, e)
	b.cur.cond = e
	b.cur.succs = append(b.cur.succs, t, f)
	b.cur = nil
}

// eachFuncBody invokes fn for every function body in a file: the
// declarations and every function literal, each of which gets its own
// graph. enclosing is the chain of enclosing function nodes
// (outermost first) for literals.
func eachFuncBody(file *ast.File, fn func(node ast.Node, body *ast.BlockStmt, enclosing []ast.Node)) {
	var walk func(n ast.Node, chain []ast.Node)
	walk = func(n ast.Node, chain []ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncDecl:
				if m.Body == nil {
					return false
				}
				fn(m, m.Body, chain)
				walkInner(m.Body, append(chain, ast.Node(m)), fn)
				return false
			case *ast.FuncLit:
				fn(m, m.Body, chain)
				walkInner(m.Body, append(chain, ast.Node(m)), fn)
				return false
			}
			return true
		})
	}
	walk(file, nil)
}

// walkInner continues eachFuncBody's traversal inside a function body,
// yielding nested literals with the extended enclosing chain.
func walkInner(body *ast.BlockStmt, chain []ast.Node, fn func(ast.Node, *ast.BlockStmt, []ast.Node)) {
	ast.Inspect(body, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			fn(lit, lit.Body, chain)
			walkInner(lit.Body, append(chain, ast.Node(lit)), fn)
			return false
		}
		return true
	})
}
