package analysis

// A small forward-dataflow framework over funcCFG: an analyzer
// supplies a flowProblem (lattice + transfer), the engine iterates a
// worklist to a fixpoint, then replays every reachable block once
// against its fixed in-state with reporting enabled. Deferred calls
// are replayed against the exit state (in reverse registration order)
// through the problem's atExit hook, so release/close obligations
// discharged by defer are honoured on every path.

import (
	"go/ast"
	"go/token"
)

// flowFact is one analyzer-defined abstract state. Facts must be
// treated as immutable by transfer/branch/join: return a fresh value
// when anything changes.
type flowFact any

// reporter emits one diagnostic during the reporting sweep. It is nil
// during fixpoint iteration — transfer must be side-effect free then.
type reporter func(pos token.Pos, format string, args ...any)

// flowProblem is one analyzer's dataflow specification.
type flowProblem interface {
	// entry returns the fact at the function entry.
	entry() flowFact
	// transfer applies one straight-line node.
	transfer(f flowFact, n ast.Node, rep reporter) flowFact
	// branch refines the fact along one edge of a two-way branch on
	// cond (the leaf conditions short-circuit decomposition produces).
	branch(f flowFact, cond ast.Expr, takeTrue bool) flowFact
	// join merges facts at a control-flow merge point.
	join(a, b flowFact) flowFact
	// equal reports fact equality, bounding the fixpoint.
	equal(a, b flowFact) bool
	// atExit observes the exit fact with the function's defers (in
	// registration order; execution order is the reverse). Called
	// only during the reporting sweep.
	atExit(f flowFact, defers []*ast.DeferStmt, rep reporter)
}

// maxFlowVisits bounds the fixpoint per function; a lattice bug must
// degrade to silence, never to a hang. The bound is generous: real
// lattices here stabilise in a handful of passes.
const maxFlowVisits = 64

// runFlow solves the problem over g and, when rep is non-nil, replays
// the solution with reporting enabled.
func runFlow(g *funcCFG, p flowProblem, rep reporter) {
	in := make(map[*cfgBlock]flowFact, len(g.blocks))
	visits := make(map[*cfgBlock]int, len(g.blocks))
	in[g.entry] = p.entry()

	work := []*cfgBlock{g.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		if visits[blk]++; visits[blk] > maxFlowVisits {
			return // lattice failed to stabilise; stay silent
		}
		out := in[blk]
		for _, n := range blk.nodes {
			out = p.transfer(out, n, nil)
		}
		for i, succ := range blk.succs {
			next := out
			if blk.cond != nil && i < 2 {
				next = p.branch(out, blk.cond, i == 0)
			}
			prev, ok := in[succ]
			merged := next
			if ok {
				merged = p.join(prev, next)
			}
			if !ok || !p.equal(prev, merged) {
				in[succ] = merged
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}

	if rep == nil {
		return
	}
	// Reporting sweep: each reachable block once, in creation order,
	// against its fixed in-state — deterministic and duplicate-free.
	for _, blk := range g.blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		for _, n := range blk.nodes {
			st = p.transfer(st, n, rep)
		}
	}
	if exitSt, ok := in[g.exit]; ok {
		p.atExit(exitSt, g.defers, rep)
	}
}
