package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPrint keeps library packages silent: everything under internal/
// except report (the one package whose job is rendering output) must
// not write to the process's stdout/stderr. Output that bypasses the
// report/table path escapes the golden-equivalence diffs and the
// served-vs-offline byte comparisons — the exact channels the
// determinism contract is proven on.
var NoPrint = &Analyzer{
	Name: "noprint",
	Doc:  "library packages must not write to stdout/stderr",
	Scope: func(rel string) bool {
		if !strings.HasPrefix(rel, "internal/") {
			return false
		}
		return rel != "internal/report" && !strings.HasPrefix(rel, "internal/report/")
	},
	Run: runNoPrint,
}

func runNoPrint(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isBuiltin(info, call.Fun, "print") || isBuiltin(info, call.Fun, "println") {
				pass.Reportf(call.Pos(), "builtin %s writes to stderr; return the text or take an io.Writer",
					ast.Unparen(call.Fun).(*ast.Ident).Name)
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "fmt":
				switch fn.Name() {
				case "Print", "Printf", "Println":
					pass.Reportf(call.Pos(), "fmt.%s writes to stdout from a library package; return the text or take an io.Writer",
						fn.Name())
				case "Fprint", "Fprintf", "Fprintln":
					if len(call.Args) > 0 && isStdStream(info, call.Args[0]) {
						pass.Reportf(call.Pos(), "fmt.%s to os.%s from a library package; take an io.Writer instead",
							fn.Name(), stdStreamName(info, call.Args[0]))
					}
				}
			case "log":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					pass.Reportf(call.Pos(), "log.%s writes to the process default logger (stderr); inject a logger or writer",
						fn.Name())
				}
			case "os":
				// os.Stdout.Write-style method calls resolve to (*os.File)
				// methods; catch them via the receiver expression below.
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isStdStream(info, sel.X) {
				pass.Reportf(call.Pos(), "direct write to os.%s from a library package; take an io.Writer instead",
					stdStreamName(info, sel.X))
			}
			return true
		})
	}
}

// isStdStream reports whether expr denotes os.Stdout or os.Stderr.
func isStdStream(info *types.Info, expr ast.Expr) bool {
	return stdStreamName(info, expr) != ""
}

// stdStreamName returns "Stdout"/"Stderr" when expr denotes that os
// variable, else "".
func stdStreamName(info *types.Info, expr ast.Expr) string {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return ""
	}
	if obj.Name() == "Stdout" || obj.Name() == "Stderr" {
		return obj.Name()
	}
	return ""
}
