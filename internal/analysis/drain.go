package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Drain guards PR 1's silent-truncation fix: every error produced by
// the trace source/decoder layer and the simulation drain loops must
// reach a check. Counters from a stream that ended on a decode error
// look plausible while undercounting every rate, so a single dropped
// error reintroduces the exact bug class that PR fixed by hand.
//
// Flagged forms, for any drain-protected callee (see
// Facts.DrainProtected):
//
//   - the call as a bare statement, go statement, or defer (all
//     results discarded);
//   - the error result assigned to the blank identifier;
//   - the error assigned to a variable that is overwritten before any
//     statement reads it.
var Drain = &Analyzer{
	Name: "drain",
	Doc:  "errors from trace sources, decoders and drain loops must be checked",
	Run:  runDrain,
}

func runDrain(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, n.X, "")
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "go statement ")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "deferred ")
			case *ast.AssignStmt:
				checkBlankError(pass, n)
			case *ast.BlockStmt:
				checkOverwrittenError(pass, file, n.List)
			case *ast.CaseClause:
				checkOverwrittenError(pass, file, n.Body)
			case *ast.CommClause:
				checkOverwrittenError(pass, file, n.Body)
			}
			return true
		})
	}
}

// protectedCallee returns the drain-protected function a call invokes,
// or nil.
func protectedCallee(pass *Pass, expr ast.Expr) *types.Func {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || !pass.Facts.DrainProtected(fn) {
		return nil
	}
	return fn
}

// qualifiedName renders pkg.Func or (pkg.Recv).Method for messages.
func qualifiedName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if r := recvNamed(sig); r != "" {
		return r + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// checkDiscardedCall flags a protected call whose results vanish.
func checkDiscardedCall(pass *Pass, expr ast.Expr, how string) {
	if fn := protectedCallee(pass, expr); fn != nil {
		pass.Reportf(expr.Pos(),
			"%scall discards the error from %s; a dropped source error silently truncates the stream",
			how, qualifiedName(fn))
	}
}

// checkBlankError flags `..., _ := protected(...)` where the blank
// identifier lands on the error result.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 || len(as.Lhs) == 0 {
		return
	}
	fn := protectedCallee(pass, as.Rhs[0])
	if fn == nil {
		return
	}
	// DrainProtected guarantees the error is the last result, so the
	// last assignment target is the error's landing spot.
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Reportf(as.Pos(),
		"error from %s assigned to _; check it — a dropped source error silently truncates the stream",
		qualifiedName(fn))
}

// checkOverwrittenError scans a straight statement list for the
// shadow/overwrite pattern: an error variable receives a protected
// call's result, then is written again before any statement reads it.
func checkOverwrittenError(pass *Pass, file *ast.File, stmts []ast.Stmt) {
	info := pass.Pkg.Info
	for i, stmt := range stmts {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			continue
		}
		fn := protectedCallee(pass, as.Rhs[0])
		if fn == nil {
			continue
		}
		errID, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
		if !ok || errID.Name == "_" {
			continue
		}
		obj := info.Defs[errID]
		if obj == nil {
			obj = info.Uses[errID]
		}
		if obj == nil {
			continue
		}
		for _, later := range stmts[i+1:] {
			if readsObject(info, later, obj) {
				break
			}
			if w, pos := writesObject(info, later, obj); w {
				pass.Reportf(pos,
					"error from %s is overwritten before it was checked (assigned at line %d)",
					qualifiedName(fn), pass.Fset.Position(as.Pos()).Line)
				break
			}
		}
	}
}

// writesObject reports whether stmt assigns to obj at its top level
// (without also reading it), returning the write position.
func writesObject(info *types.Info, stmt ast.Stmt, obj types.Object) (bool, token.Pos) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false, 0
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				return true, id.Pos()
			}
		}
	}
	return false, 0
}

// readsObject reports whether stmt mentions obj anywhere except as a
// bare assignment target — any appearance in an expression, condition,
// argument, RHS, or nested statement counts as a read, keeping the
// overwrite check conservative.
func readsObject(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	writeTargets := make(map[*ast.Ident]bool)
	if as, ok := stmt.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				writeTargets[id] = true
			}
		}
	}
	read := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if read {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || writeTargets[id] {
			return true
		}
		if info.Uses[id] == obj {
			read = true
		}
		return true
	})
	return read
}
