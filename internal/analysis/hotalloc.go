package analysis

// HotAlloc turns the runtime zero-alloc guards (the AllocsPerRun(0)
// warm-drain tests behind the Gev/s numbers) into a compile-time
// check. A declared hot set — the warm-drain entry points StepBlock,
// forEachBlock, decodeColumns, memReader.NextBatch and cpu.Run, plus
// any function marked with a `// capvet:hot` doc directive — is
// scanned for allocation sites:
//
//   - inside a hot function, every loop body (the per-event path);
//   - plus, one level down the call graph, the full body of every
//     module-local function called from those loops, so extracting a
//     helper out of a hot loop (or adding one to it) stays covered.
//
// Flagged allocation shapes: address-taken or reference-kind composite
// literals, make/new, append growth, function literals created per
// iteration, string<->[]byte conversions, and arguments boxed into
// interface parameters. Two documented exemptions keep the pass quiet
// on the real tree's idioms:
//
//   - cold exits: an allocation inside a block that terminates the
//     hot path (its statement list ends in return, panic, break or
//     goto) is error-path work, paid only when the drain is already
//     over;
//   - non-escaping closures: a literal bound to a local variable that
//     is only ever called (`varint := func() ...`; `bump := func(e
//     *uint8) ...`) stays on the stack and is not an allocation.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "zero-alloc hot set: no allocation sites in warm-drain loops or their one-level callees",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			switch {
			case pass.Facts.hotFuncs[obj]:
				// The hot path is the per-event loop; setup code before
				// it may allocate freely.
				seen := make(map[*ast.BlockStmt]bool)
				eachLoopBody(fd.Body, func(body *ast.BlockStmt) {
					if seen[body] {
						return
					}
					seen[body] = true
					checkHotRegion(pass, fd, body, "hot loop in "+fd.Name.Name)
				})
			case pass.Facts.hotCallees[obj]:
				checkHotRegion(pass, fd, fd.Body, fd.Name.Name+", called from a hot loop")
			}
		}
	}
}

// checkHotRegion reports allocation sites inside region. enclosing is
// the declaration owning the region, used to resolve the non-escaping
// closure exemption.
func checkHotRegion(pass *Pass, enclosing *ast.FuncDecl, region ast.Node, where string) {
	info := pass.Pkg.Info
	parents := buildParents(region)
	coldExempt := func(n ast.Node) bool {
		return inColdExit(n, region, parents)
	}

	ast.Inspect(region, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !coldExempt(n) {
				pass.Reportf(n.Pos(), "address of composite literal allocates in %s", where)
			}

		case *ast.CompositeLit:
			if coldExempt(n) {
				return true
			}
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates in %s", where)
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates in %s", where)
				}
			}

		case *ast.FuncLit:
			if nonEscapingClosure(info, enclosing, n, parents) {
				return false // stack-allocated; its body is still scanned via its own loops
			}
			if !coldExempt(n) {
				pass.Reportf(n.Pos(), "function literal allocates a closure in %s", where)
			}

		case *ast.CallExpr:
			checkHotCall(pass, n, where, coldExempt)

		case *ast.AssignStmt:
			// Assigning a concrete value to an interface-typed
			// destination boxes it just like a call argument does.
			if len(n.Lhs) != len(n.Rhs) || coldExempt(n) {
				return true
			}
			for i, lhs := range n.Lhs {
				lt := info.TypeOf(lhs)
				if lt == nil {
					continue
				}
				if _, isIface := lt.Underlying().(*types.Interface); !isIface {
					continue
				}
				rt := info.TypeOf(n.Rhs[i])
				if rt == nil || boxFree(rt) {
					continue
				}
				pass.Reportf(n.Rhs[i].Pos(), "assignment boxes a %s into an interface in %s", types.TypeString(rt, nil), where)
			}
		}
		return true
	})
}

// checkHotCall classifies one call inside a hot region.
func checkHotCall(pass *Pass, call *ast.CallExpr, where string, coldExempt func(ast.Node) bool) {
	info := pass.Pkg.Info
	if coldExempt(call) {
		return
	}
	switch {
	case isBuiltin(info, call.Fun, "append"):
		pass.Reportf(call.Pos(), "append may grow its backing array in %s; pre-size outside the loop", where)
		return
	case isBuiltin(info, call.Fun, "make"):
		pass.Reportf(call.Pos(), "make allocates in %s", where)
		return
	case isBuiltin(info, call.Fun, "new"):
		pass.Reportf(call.Pos(), "new allocates in %s", where)
		return
	}
	// Conversions: string <-> []byte / []rune copy their payload.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.TypeOf(call.Args[0])
		if src != nil && stringBytesConversion(dst, src.Underlying()) {
			pass.Reportf(call.Pos(), "%s conversion copies its payload in %s", types.TypeString(tv.Type, nil), where)
		}
		return
	}
	// Interface boxing: a non-pointer concrete argument passed to an
	// interface parameter heap-allocates the value it wraps.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes a %s into an interface in %s", types.TypeString(at, nil), where)
	}
}

// callSignature resolves the signature of a call's callee, or nil for
// conversions and untypeable forms.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// boxFree reports whether converting a value of type t to an interface
// cannot allocate: pointers, channels, maps, funcs and unsafe pointers
// fit the interface data word; interfaces re-wrap; nil is free.
func boxFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UntypedNil || b.Kind() == types.UnsafePointer
	}
	return false
}

// stringBytesConversion reports whether dst(src) is one of the
// payload-copying string conversions.
func stringBytesConversion(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}

// buildParents maps every node under root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// inColdExit reports whether n sits inside a statement block (between
// n and the region root) whose list terminates the hot path: its last
// statement is a return, panic, break or goto. Error-path allocations
// (the fmt.Errorf inside `if bad { return ..., fmt.Errorf(...) }`)
// run at most once per drain, not per event.
func inColdExit(n ast.Node, region ast.Node, parents map[ast.Node]ast.Node) bool {
	terminates := func(list []ast.Stmt) bool {
		if len(list) == 0 {
			return false
		}
		switch last := list[len(list)-1].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			return last.Tok == token.BREAK || last.Tok == token.GOTO
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
		return false
	}
	for cur := n; cur != nil && cur != region; cur = parents[cur] {
		switch p := parents[cur].(type) {
		case *ast.BlockStmt:
			if p != region && terminates(p.List) {
				return true
			}
		case *ast.CaseClause:
			if terminates(p.Body) {
				return true
			}
		case *ast.CommClause:
			if terminates(p.Body) {
				return true
			}
		}
	}
	return false
}

// nonEscapingClosure reports whether lit is bound to a local variable
// that is only ever called — `varint := func() ... ; varint()` — so
// the compiler keeps it off the heap.
func nonEscapingClosure(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit, parents map[ast.Node]ast.Node) bool {
	as, ok := parents[lit].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	var obj types.Object
	for i, rhs := range as.Rhs {
		if rhs != lit {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			return false
		}
		obj = info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
	}
	if obj == nil {
		return false
	}
	// Every use of the variable must be direct call position.
	escapes := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		call, ok := parents[id].(*ast.CallExpr)
		if !ok || call.Fun != id {
			escapes = true
		}
		return true
	})
	return !escapes
}
