package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is the one-line invariant statement shown by capvet -list.
	Doc string
	// Scope, when non-nil, restricts the analyzer to packages whose
	// module-relative path it accepts. nil means every package.
	Scope func(relPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"` // module-relative
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the finding as file:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Pkg   *Package
	Facts *Facts
	Fset  *token.FileSet

	analyzer *Analyzer
	sink     *[]Diagnostic
	relFile  func(string) string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		File:     p.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite, in reporting order. The first
// five are the syntax-level passes from PR 5; blockown, hotalloc and
// ctxflow are the flow-sensitive passes over the CFG/dataflow engine.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Drain, GoIsolate, AtomicField, NoPrint, BlockOwn, HotAlloc, CtxFlow}
}

// underAny builds a Scope accepting packages at or under any of the
// given module-relative roots.
func underAny(roots ...string) func(string) bool {
	return func(rel string) bool {
		for _, r := range roots {
			if rel == r || strings.HasPrefix(rel, r+"/") {
				return true
			}
		}
		return false
	}
}

// IgnorePrefix introduces a suppression directive comment:
//
//	// capvet:ignore <analyzer> <reason>
//
// The directive suppresses findings of the named analyzer on the
// directive's own line and on the line immediately below it (so it can
// sit at the end of the offending line or alone on the line above).
// The reason is mandatory: a suppression nobody can re-evaluate later
// is how invariants rot, so a directive without one is itself a
// finding.
const IgnorePrefix = "capvet:ignore"

// directive is one parsed capvet:ignore comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
}

// directivesIn extracts every capvet:ignore directive from a file.
func directivesIn(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, IgnorePrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			d := directive{pos: fset.Position(c.Pos())}
			if len(fields) > 0 {
				d.analyzer = fields[0]
				d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
			}
			out = append(out, d)
		}
	}
	return out
}

// Run executes the analyzers over pkgs and returns the surviving
// findings sorted by position. Facts are computed over the whole
// package set first so cross-package classification (recovery
// wrappers, atomically-accessed fields, drain-protected callees) is
// available to every pass. Ignore directives are applied last; a
// directive missing its analyzer name or reason is reported under the
// driver's own name.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := BuildFacts(l, pkgs)
	relFile := func(name string) string {
		if rel, err := filepathRel(l.ModuleRoot, name); err == nil {
			return rel
		}
		return name
	}

	var diags []Diagnostic
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
		for _, pkg := range pkgs {
			if a.Scope != nil && !a.Scope(pkg.RelPath) {
				continue
			}
			pass := &Pass{
				Pkg: pkg, Facts: facts, Fset: l.Fset,
				analyzer: a, sink: &diags, relFile: relFile,
			}
			a.Run(pass)
		}
	}

	// Collect directives, validate them, and filter the findings. A
	// well-formed directive that suppresses nothing is stale — the
	// invariant it excused either moved or was fixed — and is itself a
	// finding, so dead suppressions can't mask a future regression.
	type lineKey struct {
		file string
		line int
	}
	type wellFormed struct {
		directive
		file string
		used bool
	}
	var formed []*wellFormed
	suppress := make(map[lineKey]map[string][]*wellFormed)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range directivesIn(l.Fset, f) {
				if d.analyzer == "" || !known[d.analyzer] || d.reason == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "capvet",
						Pos:      d.pos,
						File:     relFile(d.pos.Filename),
						Line:     d.pos.Line,
						Col:      d.pos.Column,
						Message: fmt.Sprintf("malformed %s directive: need %q with a known analyzer and a non-empty reason",
							IgnorePrefix, IgnorePrefix+" <analyzer> <reason>"),
					})
					continue
				}
				wf := &wellFormed{directive: d, file: relFile(d.pos.Filename)}
				formed = append(formed, wf)
				for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
					k := lineKey{wf.file, line}
					if suppress[k] == nil {
						suppress[k] = make(map[string][]*wellFormed)
					}
					suppress[k][d.analyzer] = append(suppress[k][d.analyzer], wf)
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if ds := suppress[lineKey{d.File, d.Line}][d.Analyzer]; len(ds) > 0 {
			for _, wf := range ds {
				wf.used = true
			}
			continue
		}
		kept = append(kept, d)
	}
	diags = kept
	for _, wf := range formed {
		if wf.used {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "capvet",
			Pos:      wf.pos,
			File:     wf.file,
			Line:     wf.pos.Line,
			Col:      wf.pos.Column,
			Message: fmt.Sprintf("stale %s directive: %s reports nothing here; remove it or re-justify it",
				IgnorePrefix, wf.analyzer),
		})
	}

	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders findings by (file, line, column, analyzer,
// message) so output is deterministic regardless of package walk order.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// DirectiveInfo is one capvet:ignore directive for the -ignores audit
// listing.
type DirectiveInfo struct {
	File     string `json:"file"` // module-relative
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	// Malformed marks a directive missing its analyzer name or reason.
	Malformed bool `json:"malformed,omitempty"`
}

// Directives lists every capvet:ignore directive in pkgs, sorted by
// file and line, for the capvet -ignores audit mode.
func Directives(l *Loader, pkgs []*Package) []DirectiveInfo {
	var out []DirectiveInfo
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range directivesIn(l.Fset, f) {
				file := d.pos.Filename
				if rel, err := filepathRel(l.ModuleRoot, file); err == nil {
					file = rel
				}
				out = append(out, DirectiveInfo{
					File:      file,
					Line:      d.pos.Line,
					Analyzer:  d.analyzer,
					Reason:    d.reason,
					Malformed: d.analyzer == "" || d.reason == "",
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return out
}
