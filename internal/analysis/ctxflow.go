package analysis

// CtxFlow enforces request-context discipline in the serving and fleet
// layers (internal/server, internal/dist, internal/load):
//
//  1. a function that already carries a context.Context (or an
//     *http.Request, whose Context() is the request context) must not
//     mint a fresh context.Background() / context.TODO() — that
//     detaches the work from the caller's deadline and cancellation,
//     exactly the bug the dist lease machinery exists to prevent;
//  2. every *http.Response obtained in those packages must have its
//     Body closed on every CFG path — including early error returns —
//     or escape to a caller that takes over the obligation. The
//     standard `if err != nil` guard is understood: on the error edge
//     the response is nil and carries no obligation.
//
// Rule 2 runs on the CFG/dataflow engine: responses are tracked
// through branches and joins, deferred closes (plain or wrapped in a
// closure) discharge at exit, and a response still open on some path
// is reported at its acquisition site.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var CtxFlow = &Analyzer{
	Name:  "ctxflow",
	Doc:   "request paths thread their incoming context and close every http.Response body on all paths",
	Scope: underAny("internal/server", "internal/dist", "internal/load"),
	Run:   runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(fn ast.Node, body *ast.BlockStmt, enclosing []ast.Node) {
			checkBackground(pass, fn, body)
			prob := &respCloseProblem{pass: pass, fn: fn}
			if !prob.anyResponses(body) {
				return
			}
			runFlow(buildCFG(body), prob, pass.Reportf)
		})
	}
}

// ---- rule 1: no context.Background()/TODO() on request paths ----

// checkBackground flags Background/TODO calls inside functions that
// already carry a request context. Function literals are checked when
// the walk reaches them (they inherit the verdict through their own
// parameters only, so a background helper closure stays allowed unless
// it takes a ctx itself — the capture case is caught when the walk
// visits the enclosing function, whose body includes the literal).
func checkBackground(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	if !carriesRequestContext(pass, fn) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Pkg.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" {
			return true
		}
		if f.Name() == "Background" || f.Name() == "TODO" {
			pass.Reportf(call.Pos(), "context.%s inside a function that carries a request context: thread the incoming ctx instead of detaching from its deadline", f.Name())
		}
		return true
	})
}

// carriesRequestContext reports whether the function's parameters
// include a context.Context or an *http.Request.
func carriesRequestContext(pass *Pass, fn ast.Node) bool {
	var ft *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	}
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.Pkg.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isNamedType(t, "context", "Context") || isHTTPResponsePtrTo(t, "Request") {
			return true
		}
	}
	return false
}

// ---- rule 2: http.Response bodies closed on all paths ----

// Response states; must-analysis: a response is reported only when it
// is open on some path and closed/escaped on none of the exits.
const (
	respOpen uint8 = iota
	respClosed
	respEscaped
)

type respState struct {
	state uint8
	// errObj, when non-nil, is the error variable bound alongside the
	// response: on the `err != nil` edge the response is nil and the
	// obligation disappears.
	errObj types.Object
	// acquiredAt anchors the diagnostic to the call that produced the
	// response.
	acquiredAt token.Pos
}

type respFact map[types.Object]respState

func (f respFact) clone() respFact {
	out := make(respFact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	return out
}

type respCloseProblem struct {
	pass *Pass
	fn   ast.Node
}

func (p *respCloseProblem) anyResponses(body *ast.BlockStmt) bool {
	found := false
	info := p.pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil && isHTTPResponsePtrTo(obj.Type(), "Response") {
				found = true
			}
		}
		return true
	})
	return found
}

func (p *respCloseProblem) entry() flowFact { return respFact{} }

func (p *respCloseProblem) join(a, b flowFact) flowFact {
	fa, fb := a.(respFact), b.(respFact)
	out := fa.clone()
	for obj, sb := range fb {
		sa, ok := out[obj]
		if !ok {
			out[obj] = sb
			continue
		}
		m := sa
		// escaped > open > closed: an escape anywhere hands off the
		// obligation; otherwise any open path keeps it alive.
		rank := func(s uint8) int {
			switch s {
			case respEscaped:
				return 2
			case respOpen:
				return 1
			}
			return 0
		}
		if rank(sb.state) > rank(m.state) {
			m.state = sb.state
		}
		out[obj] = m
	}
	return out
}

func (p *respCloseProblem) equal(a, b flowFact) bool {
	fa, fb := a.(respFact), b.(respFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if w, ok := fb[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// branch understands the `if err != nil { return ... }` idiom: on the
// edge where the paired error is non-nil, the response is nil and
// carries no close obligation.
func (p *respCloseProblem) branch(f flowFact, cond ast.Expr, takeTrue bool) flowFact {
	errObj, errNonNilWhenTrue := nilCheckedErr(p.pass.Pkg.Info, cond)
	if errObj == nil {
		return f
	}
	st := f.(respFact)
	var out respFact
	for obj, s := range st {
		if s.errObj != errObj {
			continue
		}
		if takeTrue == errNonNilWhenTrue {
			// This edge has err != nil: the response is nil here.
			if out == nil {
				out = st.clone()
			}
			delete(out, obj)
		}
	}
	if out == nil {
		return f
	}
	return out
}

func (p *respCloseProblem) transfer(f flowFact, n ast.Node, rep reporter) flowFact {
	st := f.(respFact)
	info := p.pass.Pkg.Info

	set := func(obj types.Object, s respState) {
		st = st.clone()
		st[obj] = s
	}

	// Acquisition: resp, err := <call> (or resp := <call>).
	if as, ok := n.(*ast.AssignStmt); ok {
		if len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				var resp, errv types.Object
				for i, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := identObj(info, id)
					if obj == nil {
						continue
					}
					if isHTTPResponsePtrTo(obj.Type(), "Response") {
						resp = obj
					} else if isErrorType(obj.Type()) && i == len(as.Lhs)-1 {
						errv = obj
					}
				}
				if resp != nil {
					set(resp, respState{state: respOpen, errObj: errv, acquiredAt: call.Pos()})
					return st
				}
			}
		}
		// Aliasing or rebinding from a non-call: track plain copies,
		// drop anything else.
		if len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := identObj(info, id)
				if obj == nil {
					continue
				}
				if src, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok {
					if sobj := identObj(info, src); sobj != nil {
						if s, tracked := st[sobj]; tracked {
							set(obj, s)
							continue
						}
					}
				}
				if _, tracked := st[obj]; tracked {
					st = st.clone()
					delete(st, obj)
				}
			}
		}
	}

	// A deferred call's effects replay at exit via atExit.
	var deferredCall *ast.CallExpr
	if d, ok := n.(*ast.DeferStmt); ok {
		deferredCall = d.Call
	}

	inspectNoFuncLit(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok || call == deferredCall {
			return
		}
		if obj := closedResponse(info, st, call); obj != nil {
			s := st[obj]
			s.state = respClosed
			set(obj, s)
			return
		}
		// Passing the response itself to another function hands off
		// the obligation; passing resp.Body does not (readers don't
		// close).
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					if s, tracked := st[obj]; tracked {
						s.state = respEscaped
						set(obj, s)
					}
				}
			}
		}
	})

	// Returning or storing the response hands the obligation to the
	// caller/owner.
	escapeIdents := func(exprs []ast.Expr) {
		for _, e := range exprs {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					if s, tracked := st[obj]; tracked {
						s.state = respEscaped
						set(obj, s)
					}
				}
			}
		}
	}
	switch s := n.(type) {
	case *ast.ReturnStmt:
		escapeIdents(s.Results)
	case *ast.SendStmt:
		escapeIdents([]ast.Expr{s.Value})
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if _, plain := lhs.(*ast.Ident); !plain {
					escapeIdents([]ast.Expr{s.Rhs[i]})
				}
			}
		}
	}
	return st
}

// atExit discharges deferred closes, then reports any response still
// open at its acquisition site.
func (p *respCloseProblem) atExit(f flowFact, defers []*ast.DeferStmt, rep reporter) {
	st := f.(respFact)
	info := p.pass.Pkg.Info
	closed := make(map[types.Object]bool)
	for _, d := range defers {
		if obj := closedResponse(info, st, d.Call); obj != nil {
			closed[obj] = true
			continue
		}
		// defer func() { ... resp.Body.Close() ... }() — any mention of
		// the response inside a deferred closure is treated as taking
		// over the obligation.
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := identObj(info, id); obj != nil {
						if _, tracked := st[obj]; tracked {
							closed[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	for obj, s := range st {
		if s.state != respOpen || closed[obj] {
			continue
		}
		rep(s.acquiredAt, "response body for %s is not closed on every path: defer %s.Body.Close() after the error check", obj.Name(), obj.Name())
	}
}

// closedResponse matches resp.Body.Close() and returns the tracked
// response variable, or nil.
func closedResponse(info *types.Info, st respFact, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Body" {
		return nil
	}
	id, ok := ast.Unparen(inner.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := identObj(info, id)
	if obj == nil {
		return nil
	}
	if _, tracked := st[obj]; !tracked {
		return nil
	}
	return obj
}

// nilCheckedErr decodes `err != nil` / `err == nil` / `nil != err`
// conditions, returning the error object and whether the TRUE edge is
// the err-non-nil one.
func nilCheckedErr(info *types.Info, cond ast.Expr) (types.Object, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	pick := func(a, b ast.Expr) *ast.Ident {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			if nb, ok := ast.Unparen(b).(*ast.Ident); ok && nb.Name == "nil" {
				return id
			}
		}
		return nil
	}
	id := pick(be.X, be.Y)
	if id == nil {
		id = pick(be.Y, be.X)
	}
	if id == nil {
		return nil, false
	}
	obj := identObj(info, id)
	if obj == nil || !isErrorType(obj.Type()) {
		return nil, false
	}
	return obj, be.Op == token.NEQ
}

// isNamedType reports whether t is (or points to) the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isHTTPResponsePtrTo reports whether t is *net/http.<name>.
func isHTTPResponsePtrTo(t types.Type, name string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamedType(p.Elem(), "net/http", name)
}

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
