package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Facts is the cross-package classification store shared by every
// analyzer pass: which functions recover panics (goisolate), which
// struct fields are touched through sync/atomic and where (atomicfield),
// and which interfaces define the trace source/sink contract (drain).
// It is computed once over the full package set before any analyzer
// runs, so a pass over internal/server can reason about a wrapper
// defined in internal/sim.
type Facts struct {
	// recovers holds functions (declarations or closures bound to a
	// variable) whose body installs a deferred recover — running inside
	// one of these is panic-isolated.
	recovers map[types.Object]bool
	// recoverersWhenDeferred holds functions that call recover directly
	// in their own body; they isolate panics only when invoked via
	// defer.
	recoverersWhenDeferred map[types.Object]bool
	// atomicFields maps struct fields to the position of one sync/atomic
	// access to them.
	atomicFields map[*types.Var]token.Position
	// atomicUses records the positions of selector expressions that ARE
	// the &field argument of a sync/atomic call — the sanctioned
	// accesses the atomicfield analyzer must not flag.
	atomicUses map[token.Pos]bool
	// sourceIface and sinkIface are the trace.Source / trace.Sink
	// interfaces when the module has an internal/trace package; methods
	// implementing them are drain-protected wherever the receiver lives.
	sourceIface *types.Interface
	sinkIface   *types.Interface

	// hotFuncs is the declared hot set for the hotalloc analyzer: the
	// named warm-drain entry points plus every function carrying a
	// capvet:hot directive. hotCallees holds the one-level call-graph
	// propagation: module-local functions called from a hot function's
	// loops, whose full bodies are hot regions too.
	hotFuncs   map[types.Object]bool
	hotCallees map[types.Object]bool

	modulePath string
}

// filepathRel is filepath.Rel with slash-normalised output, for
// module-relative file names in findings.
func filepathRel(root, name string) (string, error) {
	rel, err := filepath.Rel(root, name)
	if err != nil {
		return "", err
	}
	return filepath.ToSlash(rel), nil
}

// relPkgPath maps a package to its module-relative path ("" when the
// package is the module root or foreign).
func (f *Facts) relPkgPath(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if path == f.modulePath {
		return ""
	}
	if rest, ok := strings.CutPrefix(path, f.modulePath+"/"); ok {
		return rest
	}
	return ""
}

// BuildFacts computes the shared fact store for pkgs.
func BuildFacts(l *Loader, pkgs []*Package) *Facts {
	f := &Facts{
		recovers:               make(map[types.Object]bool),
		recoverersWhenDeferred: make(map[types.Object]bool),
		atomicFields:           make(map[*types.Var]token.Position),
		atomicUses:             make(map[token.Pos]bool),
		hotFuncs:               make(map[types.Object]bool),
		hotCallees:             make(map[types.Object]bool),
		modulePath:             l.ModulePath,
	}
	for _, pkg := range pkgs {
		f.lookupTraceIfaces(pkg)
		for _, file := range pkg.Files {
			f.collectRecoverers(pkg, file)
			f.collectAtomics(l, pkg, file)
		}
	}
	// The testdata harness loads packages that import the real
	// internal/trace without analyzing it; pull the interfaces from the
	// loader's cache too so the implements-rule still fires.
	if f.sourceIface == nil {
		for _, p := range l.pkgs {
			f.lookupTraceIfaces(p)
		}
	}
	f.collectHotSet(pkgs)
	return f
}

// HotDirective marks a function as part of the zero-alloc hot set when
// it appears in the function's doc comment:
//
//	// capvet:hot
//	func (s *Stepper) stepFast(...) { ... }
const HotDirective = "capvet:hot"

// hotByContract reports whether a declaration belongs to the declared
// hot set: the warm-drain entry points whose zero-alloc behaviour the
// AllocsPerRun guards pin.
func hotByContract(relPath, recv, name string) bool {
	switch relPath {
	case "internal/sim":
		return name == "StepBlock" || name == "forEachBlock"
	case "internal/trace":
		return name == "decodeColumns" || (recv == "memReader" && name == "NextBatch")
	case "internal/cpu":
		return name == "Run"
	}
	return false
}

// recvTypeName extracts a receiver's type name syntactically.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// collectHotSet resolves the hot set and its one-level propagation
// over the analyzed packages.
func (f *Facts) collectHotSet(pkgs []*Package) {
	type declSite struct {
		fd  *ast.FuncDecl
		pkg *Package
	}
	decls := make(map[types.Object]declSite)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				decls[obj] = declSite{fd, pkg}
				if hotByContract(pkg.RelPath, recvTypeName(fd), fd.Name.Name) || hasHotDirective(fd) {
					f.hotFuncs[obj] = true
				}
			}
		}
	}
	// One level of propagation: a module-local function called from a
	// hot function's loops is checked over its full body — a helper
	// extracted out of (or added to) a hot loop stays covered.
	for obj := range f.hotFuncs {
		site := decls[obj]
		if site.fd == nil {
			continue
		}
		eachLoopBody(site.fd.Body, func(body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeObject(site.pkg.Info, call)
				if callee == nil || f.hotFuncs[callee] {
					return true
				}
				if _, local := decls[callee]; local {
					f.hotCallees[callee] = true
				}
				return true
			})
		})
	}
}

// hasHotDirective reports whether the declaration's doc comment carries
// the capvet:hot directive.
func hasHotDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == HotDirective || strings.HasPrefix(text, HotDirective+" ") {
			return true
		}
	}
	return false
}

// eachLoopBody invokes fn for every for/range body under root,
// including loops inside function literals (a closure called from the
// function still iterates).
func eachLoopBody(root ast.Node, fn func(*ast.BlockStmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			fn(n.Body)
		case *ast.RangeStmt:
			fn(n.Body)
		}
		return true
	})
}

// lookupTraceIfaces captures trace.Source / trace.Sink when pkg is the
// module's internal/trace package.
func (f *Facts) lookupTraceIfaces(pkg *Package) {
	if pkg.RelPath != "internal/trace" || f.sourceIface != nil && f.sinkIface != nil {
		return
	}
	iface := func(name string) *types.Interface {
		obj := pkg.Types.Scope().Lookup(name)
		if obj == nil {
			return nil
		}
		i, _ := obj.Type().Underlying().(*types.Interface)
		return i
	}
	f.sourceIface = iface("Source")
	f.sinkIface = iface("Sink")
}

// hasDirectRecover reports whether body calls recover() outside any
// nested function literal.
func hasDirectRecover(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call.Fun, "recover") {
			found = true
		}
		return true
	})
	return found
}

// installsRecover reports whether body (run normally, not deferred)
// isolates panics: it contains a top-level-or-nested defer whose callee
// is a recover-calling literal, or a defer of a named function known to
// recover when deferred.
func (f *Facts) installsRecover(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fn := d.Call.Fun.(type) {
		case *ast.FuncLit:
			if hasDirectRecover(fn.Body, info) {
				found = true
			}
		default:
			if obj := calleeObject(info, d.Call); obj != nil && f.recoverersWhenDeferred[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// classifyFunc records what a function's body does about panics.
func (f *Facts) classifyFunc(obj types.Object, body *ast.BlockStmt, info *types.Info) {
	if obj == nil || body == nil {
		return
	}
	if hasDirectRecover(body, info) {
		f.recoverersWhenDeferred[obj] = true
	}
	if f.installsRecover(body, info) {
		f.recovers[obj] = true
	}
}

// collectRecoverers classifies every function declaration and every
// closure bound to a variable (v := func() {...}) in the file. Two
// sweeps, because a closure defined above may defer one defined below.
func (f *Facts) collectRecoverers(pkg *Package, file *ast.File) {
	// First sweep: direct recover() calls, so the second sweep can
	// resolve defers of named recoverers in either order.
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil && hasDirectRecover(n.Body, pkg.Info) {
				f.recoverersWhenDeferred[pkg.Info.Defs[n.Name]] = true
			}
		case *ast.AssignStmt:
			forEachBoundClosure(pkg.Info, n, func(obj types.Object, lit *ast.FuncLit) {
				if hasDirectRecover(lit.Body, pkg.Info) {
					f.recoverersWhenDeferred[obj] = true
				}
			})
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			f.classifyFunc(pkg.Info.Defs[n.Name], n.Body, pkg.Info)
		case *ast.AssignStmt:
			forEachBoundClosure(pkg.Info, n, func(obj types.Object, lit *ast.FuncLit) {
				f.classifyFunc(obj, lit.Body, pkg.Info)
			})
		}
		return true
	})
}

// forEachBoundClosure invokes fn for each `name := func(...) {...}`
// binding in an assignment.
func forEachBoundClosure(info *types.Info, as *ast.AssignStmt, fn func(types.Object, *ast.FuncLit)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lit, ok := rhs.(*ast.FuncLit)
		if !ok {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id] // plain `=` rebinding an existing variable
		}
		if obj != nil {
			fn(obj, lit)
		}
	}
}

// collectAtomics records struct fields passed by address to sync/atomic
// functions, and the sanctioned selector positions.
func (f *Facts) collectAtomics(l *Loader, pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			fv := fieldOf(pkg.Info, sel)
			if fv == nil {
				continue
			}
			if _, seen := f.atomicFields[fv]; !seen {
				f.atomicFields[fv] = l.Fset.Position(sel.Pos())
			}
			f.atomicUses[sel.Pos()] = true
		}
		return true
	})
}

// fieldOf returns the struct field a selector resolves to, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// calleeObject resolves a call's callee to its object, through plain
// identifiers and selector expressions (methods, qualified names).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel]
	}
	return nil
}

// calleeFunc is calleeObject narrowed to functions/methods.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := calleeObject(info, call).(*types.Func)
	return fn
}

// isBuiltin reports whether expr denotes the named builtin.
func isBuiltin(info *types.Info, expr ast.Expr, name string) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// moduleLocal reports whether pkg belongs to the analyzed module.
func (f *Facts) moduleLocal(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == f.modulePath || strings.HasPrefix(pkg.Path(), f.modulePath+"/")
}

// isBlockNamed reports whether t is the module's internal/trace Block
// type (the SoA event batch whose ownership lifecycle blockown tracks).
func (f *Facts) isBlockNamed(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Block" {
		return false
	}
	return f.relPkgPath(n.Obj().Pkg()) == "internal/trace"
}

// isBlockPtr reports whether t is *trace.Block.
func (f *Facts) isBlockPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && f.isBlockNamed(p.Elem())
}

// DrainProtected reports whether fn's error result is part of the
// drain contract — the call sites that silently truncated streams
// before PR 1 made them all return and check errors:
//
//   - internal/sim's RunTrace / RunTraceContext / forEachBatch;
//   - any Stepper method with an error result;
//   - every error-returning function or method of internal/trace (the
//     encoder/decoder layer);
//   - every error-returning load.Client method — the capload surfaces
//     (session RPCs and the /metrics scraper) report transport and SLO
//     failures only through the error result, so dropping one hides a
//     dead or throttled server from the soak report;
//   - any method with an error result implementing trace.Source or
//     trace.Sink, wherever the implementation lives.
func (f *Facts) DrainProtected(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return false
	}
	rel := f.relPkgPath(fn.Pkg())
	switch rel {
	case "internal/trace":
		return true
	case "internal/sim":
		switch fn.Name() {
		case "RunTrace", "RunTraceContext", "forEachBlock":
			return true
		}
		if recvNamed(sig) == "Stepper" {
			return true
		}
	case "internal/load":
		if recvNamed(sig) == "Client" {
			return true
		}
	}
	if sig.Recv() != nil {
		rt := sig.Recv().Type()
		// A value-receiver method may only satisfy the interface through
		// *T's method set; check both forms.
		impl := func(iface *types.Interface) bool {
			if types.Implements(rt, iface) {
				return true
			}
			if _, isPtr := rt.(*types.Pointer); !isPtr {
				return types.Implements(types.NewPointer(rt), iface)
			}
			return false
		}
		for _, iface := range []*types.Interface{f.sourceIface, f.sinkIface} {
			if iface != nil && impl(iface) && ifaceHasMethod(iface, fn.Name()) {
				return true
			}
		}
	}
	return false
}

// lastResultIsError reports whether a signature's final result is the
// error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && t.Obj().Pkg() == nil && t.Obj().Name() == "error"
}

// recvNamed returns the name of a method's receiver type, dereferenced.
func recvNamed(sig *types.Signature) string {
	if sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// ifaceHasMethod reports whether the interface declares a method name.
func ifaceHasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}
