package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The golden-diagnostic suite: each analyzer has a package under
// testdata/src/<name> whose source marks every expected finding with a
// trailing comment
//
//	// want "regex" ["regex" ...]
//
// on the line the diagnostic lands on. The test fails on any
// unmatched want AND on any diagnostic no want expects, so the
// testdata pins both the analyzer's reach and its silence on the
// clean cases sprinkled through the same files.

var (
	goldenOnce   sync.Once
	goldenLoader *Loader
	goldenErr    error
)

// sharedLoader caches one loader (and therefore one type-checked view
// of the standard library and the module packages the testdata
// imports) across all golden tests.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	goldenOnce.Do(func() {
		goldenLoader, goldenErr = NewLoader(filepath.Join("..", ".."))
	})
	if goldenErr != nil {
		t.Fatalf("loader: %v", goldenErr)
	}
	return goldenLoader
}

// loadGolden loads testdata/src/<name> under a synthetic import path,
// scoped as scopeAs.
func loadGolden(t *testing.T, name, scopeAs string) *Package {
	t.Helper()
	l := sharedLoader(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, l.ModulePath+"/capvet_testdata/"+name, scopeAs)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	return pkg
}

// wantRe extracts the quoted regexes of a want comment; both
// double-quoted and backquoted forms are accepted (strconv.Unquote
// handles either).
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants gathers want expectations per file:line.
func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, q := range wantRe.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// runGolden checks analyzers against their testdata package: every
// want matched by exactly one diagnostic, zero diagnostics unmatched.
// Most testdata exercises one analyzer; packages whose scope several
// analyzers share (internal/dist) pass them all together.
func runGolden(t *testing.T, name, scopeAs string, as ...*Analyzer) {
	t.Helper()
	l := sharedLoader(t)
	pkg := loadGolden(t, name, scopeAs)
	for _, a := range as {
		if a.Scope != nil && !a.Scope(pkg.RelPath) {
			t.Fatalf("testdata package scoped as %q is outside analyzer %s's scope", scopeAs, a.Name)
		}
	}
	diags := Run(l, []*Package{pkg}, as)
	wants := collectWants(t, l.Fset, pkg)

	matched := make([]bool, len(diags))
	for key, res := range wants {
		for _, re := range res {
			found := false
			for i, d := range diags {
				dk := fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)
				if matched[i] || dk != key {
					continue
				}
				if re.MatchString(d.Message) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: want %q: no matching diagnostic", key, re)
			}
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, "determinism", "internal/sim", Determinism)
}

func TestDrainGolden(t *testing.T) {
	runGolden(t, "drain", "x", Drain)
}

func TestGoIsolateGolden(t *testing.T) {
	runGolden(t, "goisolate", "internal/sim", GoIsolate)
}

func TestAtomicFieldGolden(t *testing.T) {
	runGolden(t, "atomicfield", "x", AtomicField)
}

func TestNoPrintGolden(t *testing.T) {
	runGolden(t, "noprint", "internal/sim", NoPrint)
}

func TestBlockOwnGolden(t *testing.T) {
	runGolden(t, "blockown", "x", BlockOwn)
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, "hotalloc", "internal/sim", HotAlloc)
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, "ctxflow", "internal/load", CtxFlow)
}

// TestDistFleetGolden pins the fleet package's analyzer coverage:
// internal/dist sits in both the determinism and goisolate scopes, and
// the dist testdata encodes the package's specific failure modes —
// wall-clock lease arithmetic and unmanaged heartbeat goroutines —
// next to their sanctioned counterparts.
func TestDistFleetGolden(t *testing.T) {
	runGolden(t, "dist", "internal/dist", Determinism, GoIsolate)
}

// TestScopeExcluded proves scoped analyzers stay silent outside their
// packages: the noprint testdata, scoped as the report package (the
// rendering layer), must produce nothing.
func TestScopeExcluded(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "noprint"),
		l.ModulePath+"/capvet_testdata/noprint_as_report", "internal/report")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if diags := Run(l, []*Package{pkg}, []*Analyzer{NoPrint}); len(diags) != 0 {
		t.Fatalf("noprint fired inside internal/report scope: %v", diags)
	}
}

// TestIgnoreDirective proves the escape hatch end to end: a directive
// with a reason suppresses (same line and next line), a directive
// without a reason or with an unknown analyzer is itself a finding and
// suppresses nothing.
func TestIgnoreDirective(t *testing.T) {
	l := sharedLoader(t)
	pkg := loadGolden(t, "ignore", "internal/sim")
	diags := Run(l, []*Package{pkg}, All())

	byAnalyzer := make(map[string]int)
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["capvet"] != 2 {
		t.Errorf("want 2 malformed-directive findings, got %d: %v", byAnalyzer["capvet"], diags)
	}
	if byAnalyzer["noprint"] != 3 {
		t.Errorf("want 3 surviving noprint findings, got %d: %v", byAnalyzer["noprint"], diags)
	}
	// The two suppressed calls are tagged SUPPRESSED inside their
	// directive reasons; nothing may be reported on a directive's line
	// or the line below it.
	tagged := map[int]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "SUPPRESSED") {
					tagged[l.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	if len(tagged) != 2 {
		t.Fatalf("testdata should tag exactly 2 suppressed sites, found %d", len(tagged))
	}
	for _, d := range diags {
		if tagged[d.Line] || tagged[d.Line-1] {
			t.Errorf("suppressed finding leaked: %s", d)
		}
		if d.Analyzer == "capvet" && !strings.Contains(d.Message, "non-empty reason") {
			t.Errorf("malformed-directive message should demand a reason: %s", d)
		}
	}
}
