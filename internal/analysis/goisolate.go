package analysis

import (
	"go/ast"
	"go/types"
)

// GoIsolate guards the panic-isolation contract from PR 1: a panic in
// a worker goroutine must become a *PanicError for its shard, never a
// process crash. In the scheduler, server and fleet packages it flags
// `go func` literals that neither
//
//   - take a context.Context parameter (cancellation-aware worker,
//     managed by its spawner), nor
//   - run under a recovery wrapper: a deferred recover in the literal
//     body, a deferred call to a function that recovers, or a call to
//     a function/closure that installs its own deferred recover (the
//     scheduler's runOne pattern).
var GoIsolate = &Analyzer{
	Name:  "goisolate",
	Doc:   "goroutines in sim/server/dist need panic isolation or a context",
	Scope: underAny("internal/sim", "internal/server", "internal/dist", "internal/load", "internal/predictor"),
	Run:   runGoIsolate,
}

func runGoIsolate(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			if takesContext(pass.Pkg.Info, lit) || isolated(pass, lit) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine has no panic isolation and no context: a panic here crashes the process instead of becoming a *PanicError")
			return true
		})
	}
}

// takesContext reports whether the literal declares a context.Context
// parameter.
func takesContext(info *types.Info, lit *ast.FuncLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if named, ok := sig.Params().At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}

// isolated reports whether the goroutine body is panic-isolated: it
// installs a deferred recover itself, or everything it runs goes
// through a function known (via facts) to install one.
func isolated(pass *Pass, lit *ast.FuncLit) bool {
	info := pass.Pkg.Info
	if pass.Facts.installsRecover(lit.Body, info) {
		return true
	}
	ok := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if obj := calleeObject(info, call); obj != nil && pass.Facts.recovers[obj] {
			ok = true
		}
		return true
	})
	return ok
}
