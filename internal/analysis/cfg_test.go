package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses a single function declaration and builds its CFG.
func buildTestCFG(t *testing.T, fn string) (*token.FileSet, *funcCFG) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n\n"+fn, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			return fset, buildCFG(fd.Body)
		}
	}
	t.Fatalf("no function declaration in %q", fn)
	return nil, nil
}

// cfgString renders a graph into one line per block, in creation
// order: nodes in brackets, the branch condition after ?, successor
// indexes after ->.
func cfgString(fset *token.FileSet, g *funcCFG) string {
	render := func(n ast.Node) string {
		var sb strings.Builder
		if err := printer.Fprint(&sb, fset, n); err != nil {
			return "<err>"
		}
		return strings.Join(strings.Fields(sb.String()), " ")
	}
	var sb strings.Builder
	for _, blk := range g.blocks {
		fmt.Fprintf(&sb, "b%d:", blk.index)
		for _, n := range blk.nodes {
			fmt.Fprintf(&sb, " [%s]", render(n))
		}
		if blk.cond != nil {
			fmt.Fprintf(&sb, " ?%s", render(blk.cond))
		}
		if len(blk.succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.succs {
				fmt.Fprintf(&sb, " %d", s.index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func checkCFG(t *testing.T, fn, want string) *funcCFG {
	t.Helper()
	fset, g := buildTestCFG(t, fn)
	got := cfgString(fset, g)
	want = strings.TrimLeft(want, "\n")
	if got != want {
		t.Errorf("graph mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if g.entry.index != 0 || g.exit.index != 1 {
		t.Errorf("entry/exit = b%d/b%d, want b0/b1", g.entry.index, g.exit.index)
	}
	return g
}

// Short-circuit conditions decompose into one leaf block per operand,
// with ! swapping the edge order: `a && !b` branches through a's block
// into b's block, whose TRUE edge goes to the else path.
func TestCFGShortCircuit(t *testing.T) {
	checkCFG(t, `
func f(a, b bool) {
	if a && !b {
		println(1)
	} else {
		println(2)
	}
	println(3)
}`, `
b0: [a] ?a -> 5 4
b1:
b2: [println(1)] -> 3
b3: [println(3)] -> 1
b4: [println(2)] -> 3
b5: [b] ?b -> 4 2
`)
}

// A labeled break from a nested range loop jumps to the OUTER loop's
// done block (b4), not the inner one's (b7).
func TestCFGLabeledBreak(t *testing.T) {
	checkCFG(t, `
func f(xs [][]int) int {
	sum := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			sum += v
		}
	}
	return sum
}`, `
b0: [sum := 0] [xs] -> 2
b1:
b2: -> 3 4
b3: [row] -> 5
b4: [return sum] -> 1
b5: -> 6 7
b6: [v < 0] ?v < 0 -> 8 9
b7: -> 2
b8: -> 4
b9: [sum += v] -> 5
`)
}

// The for-select drain-loop idiom: the infinite loop's head feeds the
// select dispatch, each comm clause is its own block (comm statement
// first), the return clause edges straight to exit, and the loop's
// done block is unreachable (no plain break).
func TestCFGForSelectDrain(t *testing.T) {
	g := checkCFG(t, `
func f(ch chan int, done chan struct{}) {
	for {
		select {
		case v := <-ch:
			consume(v)
		case <-done:
			return
		}
	}
}`, `
b0: -> 2
b1:
b2: -> 3
b3: -> 6 7
b4: -> 1
b5: -> 2
b6: [v := <-ch] [consume(v)] -> 5
b7: [<-done] [return] -> 1
`)
	// b4 (the for's done block) must have no predecessors: nothing
	// breaks out of the loop.
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			if s.index == 4 {
				t.Errorf("b%d -> b4: loop done block should be unreachable", blk.index)
			}
		}
	}
}

// defer in a loop body: the statement is a node where its arguments
// are evaluated, and it is recorded once in g.defers for exit replay.
func TestCFGDeferInLoop(t *testing.T) {
	g := checkCFG(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		defer cleanup(i)
	}
}`, `
b0: [i := 0] -> 2
b1:
b2: [i < n] ?i < n -> 3 4
b3: [defer cleanup(i)] -> 5
b4: -> 1
b5: [i++] -> 2
`)
	if len(g.defers) != 1 {
		t.Fatalf("len(defers) = %d, want 1", len(g.defers))
	}
}

// Expression switches: the tag is evaluated at the head, every clause
// gets its case expressions as nodes, fallthrough edges into the next
// clause, and a missing default adds a head->done edge.
func TestCFGSwitchFallthrough(t *testing.T) {
	checkCFG(t, `
func f(x int) {
	switch x {
	case 1:
		println(1)
		fallthrough
	case 2:
		println(2)
	}
	println(3)
}`, `
b0: [x] -> 3 4 2
b1:
b2: [println(3)] -> 1
b3: [1] [println(1)] -> 4
b4: [2] [println(2)] -> 2
`)
}

// goto wires an edge to the label's block; the labeled statement opens
// that block.
func TestCFGGoto(t *testing.T) {
	checkCFG(t, `
func f(n int) {
	if n > 0 {
		goto out
	}
	println(0)
out:
	println(1)
}`, `
b0: [n > 0] ?n > 0 -> 2 3
b1:
b2: -> 4
b3: [println(0)] -> 4
b4: [println(1)] -> 1
`)
}
