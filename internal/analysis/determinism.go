package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism guards the repo's core guarantee: experiment tables and
// streamed counters are bit-identical across worker counts and replay
// modes. Inside the result-producing packages it flags the three ways
// nondeterminism sneaks in:
//
//   - wall-clock reads (time.Now / time.Since / time.Until);
//   - the globally-seeded math/rand source (package-level rand.* calls
//     rather than an explicitly seeded *rand.Rand);
//   - ranging over a map while feeding an order-sensitive sink — an
//     append, a writer/builder, a table row, a float accumulation, a
//     channel send — since map iteration order is deliberately random.
//
// Ranging a map to collect keys is fine when the collected slice is
// sorted in the same function (the standard fix), and commutative
// integer accumulation is always fine.
var Determinism = &Analyzer{
	Name:  "determinism",
	Doc:   "no wall clock, global rand, or map-iteration order in result aggregation",
	Scope: underAny("internal/sim", "internal/predictor", "internal/metrics", "internal/report", "internal/dist", "internal/load"),
	Run:   runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
}

// checkNondetCall flags wall-clock and global-rand calls.
func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; results become irreproducible — inject the clock through config instead",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on an explicit *rand.Rand carry their own seeded
		// source; only the package-level (globally seeded) functions are
		// nondeterministic across runs. The source/generator constructors
		// (New, NewSource, NewPCG, …) are how seeded rngs are built in the
		// first place — they never touch the global source.
		if strings.HasPrefix(fn.Name(), "New") {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			pass.Reportf(call.Pos(),
				"%s.%s uses the global random source; use a *rand.Rand seeded from the workload spec instead",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags map iterations whose body feeds an
// order-sensitive sink.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if sink := findOrderSink(pass, file, rng); sink != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order is random but the loop body %s; iterate a sorted key slice instead", sink)
	}
}

// findOrderSink scans a map-range body for order-sensitive sinks and
// returns a description of the first one, or "".
func findOrderSink(pass *Pass, file *ast.File, rng *ast.RangeStmt) string {
	info := pass.Pkg.Info
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel (receive order becomes random)"
		case *ast.AssignStmt:
			if isFloatCompound(info, n) {
				sink = "accumulates floating point (addition order changes the result bits)"
			}
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n.Fun, "append"):
				if len(n.Args) > 0 && declaredOutside(info, n.Args[0], rng) &&
					!sortedLater(pass, file, rng, n) {
					sink = "appends to a slice (element order follows iteration order)"
				}
			case isOrderedWriteCall(info, n, rng):
				sink = "writes ordered output (rows/bytes are emitted in iteration order)"
			}
		}
		return true
	})
	return sink
}

// isFloatCompound reports whether an assignment is a compound
// accumulation (+=, -=, *=, /=) on a floating-point lvalue.
func isFloatCompound(info *types.Info, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	if len(as.Lhs) != 1 {
		return false
	}
	tv, ok := info.Types[as.Lhs[0]]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// orderedWriteNames are method names that emit into an ordered sink
// (table rows, builders, streams, float-merging accumulators).
var orderedWriteNames = map[string]bool{
	"Add": true, "Merge": true, "Push": true, "Append": true, "Emit": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// isOrderedWriteCall reports whether call is fmt.Print* (always a
// sink), fmt.Fprint* to a destination declared outside the range
// statement, or an ordered-write method on an outside receiver.
// Writing into per-iteration state is order-free and stays clean.
func isOrderedWriteCall(info *types.Info, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && declaredOutside(info, call.Args[0], rng)
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !orderedWriteNames[fn.Name()] {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return declaredOutside(info, sel.X, rng)
}

// declaredOutside reports whether the base variable of expr is declared
// outside the range statement; unresolvable expressions count as
// outside (conservative).
func declaredOutside(info *types.Info, expr ast.Expr, rng *ast.RangeStmt) bool {
	root := rootIdent(expr)
	if root == nil {
		return true
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	if obj == nil {
		return true
	}
	return !within(obj.Pos(), rng)
}

// sortedLater reports whether the slice receiving the append is sorted
// somewhere in the enclosing function — the collect-keys-then-sort
// idiom this analyzer wants violations rewritten into.
func sortedLater(pass *Pass, file *ast.File, rng *ast.RangeStmt, appendCall *ast.CallExpr) bool {
	info := pass.Pkg.Info
	root := rootIdent(appendCall.Args[0])
	if root == nil {
		return false
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	if obj == nil {
		return false
	}
	fn := enclosingFunc(file, rng.Pos())
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && (info.Uses[id] == obj || info.Defs[id] == obj) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// rootIdent walks selector/index/star chains down to the base
// identifier: a.b[i].c → a.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// within reports whether pos falls inside node's span.
func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos < node.End()
}

// enclosingFunc returns the innermost function declaration or literal
// containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if within(pos, n) {
				best = n // innermost wins: Inspect descends outside-in
			}
		}
		return true
	})
	return best
}
