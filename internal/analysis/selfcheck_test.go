package analysis

import "testing"

// TestSelfCheckCleanTree runs the full analyzer suite over the real
// module tree — the same run CI and scripts/capvet.sh do — and asserts
// it stays clean. Under `go test -race` this also exercises the whole
// load/typecheck/flow pipeline with the race detector on.
func TestSelfCheckCleanTree(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := Run(l, pkgs, All())
	for _, d := range diags {
		t.Errorf("self-check finding: %s", d)
	}
}

// TestRealTreeHotSetResolved pins the hotalloc contract to the real
// tree: the declared hot set must resolve to actual declarations (a
// rename would otherwise silently shrink the checked surface), and the
// one-level propagation must pick up callees of the hot loops.
func TestRealTreeHotSetResolved(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	facts := BuildFacts(l, pkgs)
	names := make(map[string]bool)
	for obj := range facts.hotFuncs {
		names[obj.Name()] = true
	}
	for _, want := range []string{"StepBlock", "forEachBlock", "decodeColumns", "NextBatch", "Run"} {
		if !names[want] {
			t.Errorf("declared hot function %s did not resolve; hot set: %v", want, names)
		}
	}
	if len(facts.hotCallees) == 0 {
		t.Error("one-level propagation resolved no hot callees")
	}
}
