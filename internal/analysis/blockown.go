package analysis

// BlockOwn enforces the trace.Block lifecycle contract from PR 7
// (DESIGN.md §14) with a flow-sensitive pass over each function's CFG:
//
//   - a block released with PutBlock must not be used again, and must
//     not be released twice (the pool would hand one block to two
//     drain loops);
//   - a delivered or freshly pooled block may be a zero-copy view over
//     shared replay storage: its column elements must not be written
//     (SetEvent, b.Col[i] = …, copy into a column) unless Own() or
//     Resize() dominates the write;
//   - a pool-owned block (GetBlock) must stay inside its drain scope:
//     returning it, storing it into a field/global/map/slice, sending
//     it on a channel, or handing it to a goroutine leaks pool-owned
//     memory past PutBlock.
//
// The analysis is intraprocedural and deliberately conservative:
// passing a block to another function makes its view state unknown
// (the callee may Resize or Own it), and only must-facts are reported
// — a variable released on every path, pooled on every path — so a
// finding is a real contract violation, not a may-alias guess.

import (
	"go/ast"
	"go/types"
)

var BlockOwn = &Analyzer{
	Name: "blockown",
	Doc:  "trace.Block lifecycle: no use-after-Release, no shared-view writes without Own, no pooled-block escape",
	Run:  runBlockOwn,
}

// View states, ordered by join precedence: shared dominates (a write
// is flagged if any path delivers a shared view), then unknown (a
// callee may have taken ownership — stay silent), then owned.
const (
	viewOwned uint8 = iota
	viewUnknown
	viewShared
)

// Pool states; join of differing states is poolTop (unknown), so
// escape and release findings need the fact to hold on every path.
const (
	poolNone uint8 = iota
	poolPooled
	poolReleased
	poolTop
)

type blockVarState struct{ view, pool uint8 }

// blockFact maps tracked *trace.Block variables to their state.
type blockFact map[types.Object]blockVarState

func (f blockFact) clone() blockFact {
	out := make(blockFact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	return out
}

func runBlockOwn(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(fn ast.Node, body *ast.BlockStmt, _ []ast.Node) {
			prob := &blockOwnProblem{pass: pass, fn: fn}
			if !prob.anyBlocks(body) {
				return
			}
			runFlow(buildCFG(body), prob, pass.Reportf)
		})
	}
}

type blockOwnProblem struct {
	pass *Pass
	fn   ast.Node // *ast.FuncDecl or *ast.FuncLit
}

// anyBlocks reports whether the body mentions any *trace.Block-typed
// identifier at all, skipping graph construction for the vast majority
// of functions.
func (p *blockOwnProblem) anyBlocks(body *ast.BlockStmt) bool {
	found := false
	info := p.pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(info, id); obj != nil && p.pass.Facts.isBlockPtr(obj.Type()) {
				found = true
			}
		}
		return true
	})
	return found
}

func (p *blockOwnProblem) entry() flowFact {
	// Parameters of *trace.Block type start unknown: the caller's
	// view/pool state is out of scope for an intraprocedural pass.
	st := make(blockFact)
	var ft *ast.FuncType
	switch fn := p.fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	}
	if ft != nil && ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := p.pass.Pkg.Info.Defs[name]; obj != nil && p.pass.Facts.isBlockPtr(obj.Type()) {
					st[obj] = blockVarState{view: viewUnknown, pool: poolNone}
				}
			}
		}
	}
	return st
}

func (p *blockOwnProblem) join(a, b flowFact) flowFact {
	fa, fb := a.(blockFact), b.(blockFact)
	out := fa.clone()
	for obj, sb := range fb {
		sa, ok := out[obj]
		if !ok {
			// Declared on one path only: its scope is ending anyway;
			// keep the state we have.
			out[obj] = sb
			continue
		}
		m := sa
		if sb.view > m.view {
			m.view = sb.view
		}
		if sa.pool != sb.pool {
			m.pool = poolTop
		}
		out[obj] = m
	}
	return out
}

func (p *blockOwnProblem) equal(a, b flowFact) bool {
	fa, fb := a.(blockFact), b.(blockFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if w, ok := fb[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (p *blockOwnProblem) branch(f flowFact, cond ast.Expr, takeTrue bool) flowFact {
	return f
}

// transfer interprets one straight-line node: checks (use-after-
// release, shared writes, pooled escapes) first against the incoming
// state, then applies the node's effects (release, own, share,
// rebinding).
func (p *blockOwnProblem) transfer(f flowFact, n ast.Node, rep reporter) flowFact {
	st := f.(blockFact)
	info := p.pass.Pkg.Info

	if rep != nil {
		p.check(st, n, rep)
	}

	set := func(obj types.Object, s blockVarState) {
		st = st.clone()
		st[obj] = s
	}

	// Effects from calls anywhere in the node (function literals are
	// opaque — they get their own graph). A deferred call's effects
	// apply at exit (atExit replays them), not at registration; only
	// its argument expressions are evaluated here.
	var deferredCall *ast.CallExpr
	if d, ok := n.(*ast.DeferStmt); ok {
		deferredCall = d.Call
	}
	inspectNoFuncLit(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok || call == deferredCall {
			return
		}
		switch kind, obj := p.blockCall(call); kind {
		case "PutBlock":
			if obj == nil {
				return
			}
			s, tracked := st[obj]
			if tracked && s.pool == poolReleased && rep != nil {
				rep(call.Pos(), "double release: %s was already returned to the pool by PutBlock", obj.Name())
			}
			if !tracked {
				s = blockVarState{view: viewUnknown}
			}
			s.pool = poolReleased
			set(obj, s)
		case "Own", "Resize":
			if s, ok := st[obj]; ok {
				s.view = viewOwned
				set(obj, s)
			}
		case "NextBlock":
			if obj == nil {
				return
			}
			s, ok := st[obj]
			if !ok {
				s = blockVarState{pool: poolNone}
			}
			s.view = viewShared
			set(obj, s)
		default:
			// Any other call taking a tracked block as a direct
			// argument may Resize/Own it: view becomes unknown.
			for _, arg := range call.Args {
				if obj := trackedIdent(info, st, arg); obj != nil {
					s := st[obj]
					s.view = viewUnknown
					set(obj, s)
				}
			}
		}
	})

	// Rebindings: b := GetBlock() / NewBlock() / &Block{} / alias.
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := identObj(info, id)
			if obj == nil {
				continue
			}
			if ns, ok := p.rhsState(st, as.Rhs[i]); ok {
				set(obj, ns)
			} else if _, tracked := st[obj]; tracked {
				// Rebound to something we cannot classify: drop it.
				st = st.clone()
				delete(st, obj)
			}
		}
	}
	return st
}

// rhsState classifies an assignment RHS that produces a block.
func (p *blockOwnProblem) rhsState(st blockFact, rhs ast.Expr) (blockVarState, bool) {
	info := p.pass.Pkg.Info
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		switch kind, _ := p.blockCall(e); kind {
		case "GetBlock":
			// A pooled block's columns may still alias the shared
			// storage its previous user delivered views over: the
			// contract requires Resize (or Own) before element writes.
			return blockVarState{view: viewShared, pool: poolPooled}, true
		case "NewBlock":
			return blockVarState{view: viewOwned, pool: poolNone}, true
		}
		if tv, ok := info.Types[rhs]; ok && p.pass.Facts.isBlockPtr(tv.Type) {
			return blockVarState{view: viewUnknown, pool: poolNone}, true
		}
	case *ast.Ident:
		if obj := identObj(info, e); obj != nil {
			if s, ok := st[obj]; ok {
				return s, true // alias copies the state at copy time
			}
		}
	case *ast.UnaryExpr:
		if lit, ok := e.X.(*ast.CompositeLit); ok {
			if tv, ok := info.Types[lit]; ok && p.pass.Facts.isBlockNamed(tv.Type) {
				return blockVarState{view: viewOwned, pool: poolNone}, true
			}
		}
	}
	return blockVarState{}, false
}

// check reports contract violations visible at this node under the
// incoming state.
func (p *blockOwnProblem) check(st blockFact, n ast.Node, rep reporter) {
	info := p.pass.Pkg.Info

	// Identifier positions excluded from the use-after-release scan:
	// plain assignment targets (rebinding is not a use) and PutBlock
	// arguments (reported as double release instead).
	excluded := make(map[*ast.Ident]bool)
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				excluded[id] = true
			}
		}
	}
	inspectNoFuncLit(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		if kind, _ := p.blockCall(call); kind == "PutBlock" {
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					excluded[id] = true
				}
			}
		}
	})

	// Use after release.
	inspectNoFuncLit(n, func(m ast.Node) {
		id, ok := m.(*ast.Ident)
		if !ok || excluded[id] {
			return
		}
		obj := identObj(info, id)
		if obj == nil {
			return
		}
		if s, tracked := st[obj]; tracked && s.pool == poolReleased {
			rep(id.Pos(), "use of %s after PutBlock returned it to the pool: another drain loop may already own it", obj.Name())
		}
	})

	// Column writes on shared views.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if obj, colPos := p.columnElementWrite(lhs); obj != nil {
				if s, tracked := st[obj]; tracked && s.view == viewShared {
					rep(colPos.Pos(), "column write on %s, which may be a zero-copy view over shared replay storage: call Own() or Resize() first", obj.Name())
				}
			}
		}
	}
	inspectNoFuncLit(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		// b.SetEvent(...) scatters into the columns.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "SetEvent" {
			if obj := trackedIdent(info, st, sel.X); obj != nil && st[obj].view == viewShared {
				rep(call.Pos(), "SetEvent on %s, which may be a zero-copy view over shared replay storage: call Own() or Resize() first", obj.Name())
			}
		}
		// copy(b.Col, ...) writes into a column.
		if isBuiltin(info, call.Fun, "copy") && len(call.Args) == 2 {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if obj := trackedIdent(info, st, sel.X); obj != nil && st[obj].view == viewShared {
					rep(call.Pos(), "copy into a column of %s, which may be a zero-copy view over shared replay storage: call Own() or Resize() first", obj.Name())
				}
			}
		}
	})

	// Pooled-block escapes: reported only when pool-owned on every
	// path.
	pooled := func(e ast.Expr) types.Object {
		obj := trackedIdent(info, st, e)
		if obj != nil && st[obj].pool == poolPooled {
			return obj
		}
		return nil
	}
	escape := func(pos ast.Node, obj types.Object, how string) {
		rep(pos.Pos(), "pooled block %s %s while still pool-owned: it escapes its drain scope and outlives PutBlock", obj.Name(), how)
	}
	switch s := n.(type) {
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if obj := pooled(res); obj != nil {
				escape(s, obj, "is returned")
			}
		}
	case *ast.SendStmt:
		if obj := pooled(s.Value); obj != nil {
			escape(s, obj, "is sent on a channel")
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			if obj := pooled(arg); obj != nil {
				escape(s, obj, "is handed to a goroutine")
			}
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pooled(id); obj != nil {
						escape(s, obj, "is captured by a goroutine")
						return false
					}
				}
				return true
			})
		}
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			break
		}
		for i, rhs := range s.Rhs {
			obj := pooled(rhs)
			if obj == nil {
				continue
			}
			switch lhs := s.Lhs[i].(type) {
			case *ast.Ident:
				// A local alias is tracked, not an escape; a
				// package-level variable outlives the drain scope.
				if tgt, ok := identObj(info, lhs).(*types.Var); ok && tgt.Parent() == tgt.Pkg().Scope() {
					escape(s, obj, "is stored outside the local scope")
				}
			default:
				// Field, index, or dereference store.
				escape(s, obj, "is stored outside the local scope")
			}
		}
	}
	inspectNoFuncLit(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.CompositeLit:
			for _, elt := range m.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if obj := pooled(e); obj != nil {
					escape(m, obj, "is stored in a composite literal")
				}
			}
		case *ast.CallExpr:
			if isBuiltin(info, m.Fun, "append") {
				for _, arg := range m.Args[1:] {
					if obj := pooled(arg); obj != nil {
						escape(m, obj, "is appended to a slice")
					}
				}
			}
		}
	})
}

// atExit replays the deferred calls in reverse registration order:
// a deferred PutBlock releasing an already-released block is the
// defer-plus-explicit-release double free.
func (p *blockOwnProblem) atExit(f flowFact, defers []*ast.DeferStmt, rep reporter) {
	st := f.(blockFact)
	released := make(map[types.Object]bool)
	for i := len(defers) - 1; i >= 0; i-- {
		d := defers[i]
		kind, obj := p.blockCall(d.Call)
		if kind != "PutBlock" || obj == nil {
			continue
		}
		s, tracked := st[obj]
		if (tracked && s.pool == poolReleased) || released[obj] {
			rep(d.Pos(), "deferred PutBlock releases %s twice: it was already returned to the pool", obj.Name())
		}
		released[obj] = true
	}
}

// blockCall classifies a call against the block lifecycle API:
// "GetBlock"/"NewBlock" (allocators), "PutBlock" (release, obj = the
// released variable), "Own"/"Resize" (un-sharing methods, obj = the
// receiver variable), "NextBlock" (delivery, obj = the filled block
// argument). Returns "" for anything else.
func (p *blockOwnProblem) blockCall(call *ast.CallExpr) (string, types.Object) {
	info := p.pass.Pkg.Info
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recv := identObjTyped(p.pass.Facts, info, sel.X); recv != nil {
			switch sel.Sel.Name {
			case "Own", "Resize":
				return sel.Sel.Name, recv
			}
		}
		if sel.Sel.Name == "NextBlock" && len(call.Args) >= 1 {
			if obj := identObjTyped(p.pass.Facts, info, call.Args[0]); obj != nil {
				return "NextBlock", obj
			}
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !p.pass.Facts.moduleLocal(fn.Pkg()) {
		return "", nil
	}
	switch fn.Name() {
	case "GetBlock", "NewBlock":
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() == 1 && p.pass.Facts.isBlockPtr(sig.Results().At(0).Type()) {
			return fn.Name(), nil
		}
	case "PutBlock":
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() == 1 && p.pass.Facts.isBlockPtr(sig.Params().At(0).Type()) {
			var obj types.Object
			if len(call.Args) == 1 {
				obj = identObjTyped(p.pass.Facts, info, call.Args[0])
			}
			return "PutBlock", obj
		}
	}
	return "", nil
}

// columnElementWrite matches b.Col[i] as an assignment target,
// returning the block variable and the write position.
func (p *blockOwnProblem) columnElementWrite(lhs ast.Expr) (types.Object, ast.Node) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	obj := identObjTyped(p.pass.Facts, p.pass.Pkg.Info, sel.X)
	if obj == nil {
		return nil, nil
	}
	return obj, ix
}

// identObj resolves an identifier to its object (def or use).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// identObjTyped resolves expr to a *trace.Block-typed variable object.
func identObjTyped(f *Facts, info *types.Info, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := identObj(info, id)
	if obj == nil || !f.isBlockPtr(obj.Type()) {
		return nil
	}
	return obj
}

// trackedIdent resolves expr to a variable currently in the fact map.
func trackedIdent(info *types.Info, st blockFact, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := identObj(info, id)
	if obj == nil {
		return nil
	}
	if _, ok := st[obj]; !ok {
		return nil
	}
	return obj
}

// inspectNoFuncLit walks a node's subtree without descending into
// function literals (their bodies are separate flow graphs).
func inspectNoFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			fn(m)
		}
		return true
	})
}
