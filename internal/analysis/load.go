// Package analysis implements capvet, the project-specific static
// analyzer suite. It enforces the invariants the repo's correctness
// story rests on — deterministic tables, drained error channels,
// isolated goroutines, consistent atomics, silent libraries — at
// build time instead of leaving them to golden tests and review
// discipline. See DESIGN.md §12 for the invariant catalogue.
//
// The suite is stdlib-only: packages are discovered by walking the
// module tree, parsed with go/parser, and type-checked with go/types.
// Standard-library imports resolve through the compiler's source
// importer, module-local imports through the same loader recursively,
// so every analyzer sees full type information without any external
// driver dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was type-checked under.
	Path string
	// RelPath is the module-relative path ("" for the module root
	// package, "internal/sim" for capred/internal/sim). Analyzer scopes
	// are expressed against RelPath so they hold in any module — the
	// real tree, the golden testdata packages, and the throwaway
	// modules the exit-code tests build.
	RelPath string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks the packages of one module. It
// implements types.Importer: module-local paths load recursively from
// source, everything else defers to the toolchain's source importer.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader returns a loader rooted at moduleRoot, which must contain
// a go.mod declaring the module path.
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: abs,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}

// Import implements types.Importer for the type-checker: module-local
// import paths load (and cache) from source, "unsafe" maps to the
// sentinel package, and everything else — the standard library — goes
// through the compiler's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.relOf(path); ok {
		p, err := l.loadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path, rel)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// relOf maps an import path inside the module to its module-relative
// form.
func (l *Loader) relOf(path string) (string, bool) {
	if path == l.ModulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// skipDir reports whether a directory subtree is excluded from module
// walks: VCS metadata, tool state, and testdata (which intentionally
// contains invariant violations).
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadAll loads every package in the module, in deterministic
// (path-sorted) order. Directories named testdata are skipped, like
// the go tool does.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != l.ModuleRoot && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		path := l.ModulePath
		if rel != "" {
			path = l.ModulePath + "/" + rel
		}
		p, err := l.loadDir(dir, path, rel)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadDir loads the package in dir under a caller-chosen import path
// and scope path. The golden-diagnostic harness uses it to load
// testdata packages as if they lived at a scoped location (say,
// internal/sim) without colliding with the real package there.
func (l *Loader) LoadDir(dir, asPath, scopeAs string) (*Package, error) {
	return l.loadDir(dir, asPath, scopeAs)
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isSourceFile reports whether name is a Go file capvet analyzes:
// buildable, non-test source.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

func (l *Loader) loadDir(dir, asPath, rel string) (*Package, error) {
	if p, ok := l.pkgs[asPath]; ok {
		return p, nil
	}
	if l.loading[asPath] {
		return nil, fmt.Errorf("import cycle through %s", asPath)
	}
	l.loading[asPath] = true
	defer delete(l.loading, asPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go source files", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(asPath, l.Fset, files, info)
	if typeErr != nil {
		return nil, typeErr
	}
	if err != nil {
		return nil, err
	}
	p := &Package{Path: asPath, RelPath: rel, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[asPath] = p
	return p, nil
}

// Match filters pkgs by go-style package patterns interpreted against
// the module root: "./..." (or "all") selects everything, "./x/..."
// a subtree, "./x" (or "x") a single package, "." the root package.
// A pattern that selects nothing is an error — a misspelled path must
// not silently vet zero packages.
func Match(pkgs []*Package, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := make(map[*Package]bool)
	for _, pat := range patterns {
		norm := strings.TrimPrefix(pat, "./")
		norm = strings.TrimSuffix(norm, "/")
		n := 0
		for _, p := range pkgs {
			ok := false
			switch {
			case pat == "all" || norm == "...":
				ok = true
			case strings.HasSuffix(norm, "/..."):
				base := strings.TrimSuffix(norm, "/...")
				ok = p.RelPath == base || strings.HasPrefix(p.RelPath, base+"/")
			case norm == "." || norm == "":
				ok = p.RelPath == ""
			default:
				ok = p.RelPath == norm
			}
			if ok {
				selected[p] = true
				n++
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	out := make([]*Package, 0, len(selected))
	for _, p := range pkgs {
		if selected[p] {
			out = append(out, p)
		}
	}
	return out, nil
}
