package analysis

import (
	"go/ast"
)

// AtomicField guards the server's budget/eviction counters and the
// scheduler's shard cursor: a struct field that is read or written
// through sync/atomic anywhere must be accessed that way everywhere.
// One plain `s.n++` next to an atomic.AddInt64(&s.n, 1) is a data race
// the race detector only catches when the schedule cooperates; the
// analyzer catches it on every build.
//
// Fields of the atomic.Int64-style wrapper types are safe by
// construction (their only operations are methods) and need no facts.
// Intentional plain access — say, reading a counter after the worker
// pool has drained — takes a capvet:ignore directive with the reason
// spelled out.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields touched via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := fieldOf(info, sel)
			if fv == nil {
				return true
			}
			atomicAt, isAtomic := pass.Facts.atomicFields[fv]
			if !isAtomic || pass.Facts.atomicUses[sel.Pos()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to field %q, which is accessed via sync/atomic at %s:%d; mixed access is a data race",
				fv.Name(), atomicAt.Filename, atomicAt.Line)
			return true
		})
	}
}
