// Golden testdata pinning the fleet package's coverage: internal/dist
// is inside both the determinism scope (lease arithmetic must run on
// the injected clock — a wall-clock read makes lease expiry, and with
// it which worker computes a shard, irreproducible) and the goisolate
// scope (a panic in a heartbeat or local-fallback goroutine must never
// crash the coordinator). Loaded scoped as internal/dist.
package dist

import (
	"context"
	"time"
)

type coord struct {
	now   func() time.Time
	lease time.Duration
}

// expired consults the wall clock directly: flagged — lease expiry
// decided off-config-clock cannot be replayed in tests.
func (c *coord) expired(deadline time.Time) bool {
	return time.Now().After(deadline) // want `time.Now reads the wall clock`
}

// expiredInjected is the coordinator's real shape: the injected clock.
func (c *coord) expiredInjected(deadline time.Time) bool {
	return c.now().After(deadline)
}

// newCoord defaults the clock by VALUE assignment — a reference to
// time.Now, not a call — which is the sanctioned pattern and must stay
// silent.
func newCoord() *coord {
	c := &coord{lease: 10 * time.Second}
	c.now = time.Now
	return c
}

// leaseLeft does lease arithmetic through time.Until: flagged, same
// reasoning as time.Now.
func (c *coord) leaseLeft(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until reads the wall clock`
}

// heartbeat spawns the lease-extension loop with no context and no
// recovery: flagged — a panic in post would take down the whole
// worker process, turning one bad shard into a dead fleet member.
func heartbeat(post func() error) {
	go func() { // want `goroutine has no panic isolation and no context`
		for {
			if err := post(); err != nil {
				return
			}
		}
	}()
}

// heartbeatManaged is the worker's real shape: the goroutine takes the
// context that revokes it. Clean.
func heartbeatManaged(ctx context.Context, period time.Duration, post func() error) {
	go func(ctx context.Context) {
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := post(); err != nil {
					return
				}
			}
		}
	}(ctx)
}

// localFallback runs a shard in-process under a recovering wrapper, the
// coordinator's degraded-mode shape. Clean.
func localFallback(run func()) {
	exec := func() {
		defer func() { _ = recover() }()
		run()
	}
	go func() {
		exec()
	}()
}
