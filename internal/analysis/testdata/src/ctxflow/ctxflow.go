// Golden testdata for the ctxflow analyzer, scoped as internal/load:
// request-context discipline (no fresh Background/TODO where a request
// context is in scope) and http.Response bodies closed on every CFG
// path, next to the sanctioned idioms (escape to caller, deferred
// closure close, close-before-branch, retry loops).
package ctxflow

import (
	"context"
	"io"
	"net/http"
)

func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context\.Background inside a function that carries a request context`
	_, _, _ = ctx, w, r
}

func rpcHelper(ctx context.Context, c *http.Client) {
	todo := context.TODO() // want `context\.TODO inside a function that carries a request context`
	_, _, _ = todo, ctx, c
}

func backgroundWorker() {
	ctx := context.Background() // clean: no request context in scope
	_ = ctx
}

func leaky(c *http.Client, url string) error {
	resp, err := c.Get(url) // want `response body for resp is not closed on every path`
	if err != nil {
		return err
	}
	_, _ = io.ReadAll(resp.Body)
	return nil
}

func closedDeferred(c *http.Client, url string) error {
	resp, err := c.Get(url) // clean: deferred close after the error check
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	return err
}

func earlyReturn(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url) // want `response body for resp is not closed on every path`
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, io.ErrUnexpectedEOF // the leaky early exit
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return data, err
}

// The load.Client.do idiom: read what is needed, close explicitly,
// then branch.
func closedExplicit(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url) // clean: closed before any branch
	if err != nil {
		return 0, err
	}
	code := resp.StatusCode
	resp.Body.Close()
	return code, nil
}

func passthrough(c *http.Client, url string) (*http.Response, error) {
	resp, err := c.Get(url) // clean: the caller takes the obligation
	return resp, err
}

func handoff(c *http.Client, url string) error {
	resp, err := c.Get(url) // clean: consume takes over the response
	if err != nil {
		return err
	}
	return consume(resp)
}

func consume(resp *http.Response) error {
	defer resp.Body.Close()
	_, err := io.ReadAll(resp.Body)
	return err
}

// Passing only the Body does NOT hand off the close obligation: the
// reader contract is read-only.
func bodyOnly(c *http.Client, url string) error {
	resp, err := c.Get(url) // want `response body for resp is not closed on every path`
	if err != nil {
		return err
	}
	return decode(resp.Body)
}

func decode(r io.Reader) error {
	_, err := io.ReadAll(r)
	return err
}

// The dist worker idiom: close wrapped in a deferred closure.
func deferredClosure(c *http.Client, url string) error {
	resp, err := c.Get(url) // clean: deferred closure closes
	if err != nil {
		return err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	_, err = io.ReadAll(resp.Body)
	return err
}

// Retry loop: each iteration acquires and settles its own response.
func retry(c *http.Client, url string) error {
	for i := 0; i < 3; i++ {
		resp, err := c.Get(url) // clean: closed on the success path, nil on the error path
		if err != nil {
			continue
		}
		resp.Body.Close()
		return nil
	}
	return io.ErrUnexpectedEOF
}
