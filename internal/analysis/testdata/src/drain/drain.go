// Golden testdata for the drain analyzer: every way an error from the
// trace/sim drain contract can silently vanish, next to the checked
// forms that must stay clean. Imports the real module packages so the
// protected-callee classification runs against the true signatures.
package drain

import (
	"capred/internal/load"
	"capred/internal/predictor"
	"capred/internal/sim"
	"capred/internal/trace"
)

// The capload surfaces: every error-returning load.Client method —
// session RPCs and the /metrics scraper — reports transport and SLO
// failures only through its error result.

func loadClientDiscards(c *load.Client) {
	c.CloseSession("s1")                // want `call discards the error from Client\.CloseSession`
	id, _ := c.OpenSession("markov", 8) // want `error from Client\.OpenSession assigned to _`
	_ = id
}

func scraperDiscards(c *load.Client) {
	c.Scrape() // want `call discards the error from Client\.Scrape`
}

func loadClientChecked(c *load.Client) error {
	id, err := c.OpenSession("markov", 8) // clean: error checked
	if err != nil {
		return err
	}
	acked, posts, err := c.PostEvents(id, nil) // clean: error checked
	_, _ = acked, posts
	if err != nil {
		return err
	}
	m, err := c.Scrape() // clean: error checked
	_ = m
	if err != nil {
		return err
	}
	return c.CloseSession(id) // clean: error returned to the caller
}

func discarded(src trace.Source, p predictor.Predictor) {
	sim.RunTrace(src, p, 0) // want `call discards the error from sim\.RunTrace`
	_ = src.Err()           // want `error from Source\.Err assigned to _`
}

func blanked(src trace.Source, p predictor.Predictor) {
	c, _ := sim.RunTrace(src, p, 0) // want `error from sim\.RunTrace assigned to _`
	_ = c
}

func checked(src trace.Source, p predictor.Predictor) error {
	c, err := sim.RunTrace(src, p, 0) // clean: error checked
	if err != nil {
		return err
	}
	_ = c
	return src.Err() // clean: error returned to the caller
}

func overwritten(a, b trace.Source, p predictor.Predictor) error {
	_, err := sim.RunTrace(a, p, 0)
	_, err = sim.RunTrace(b, p, 0) // want `error from sim\.RunTrace is overwritten before it was checked`
	return err
}

func checkedBetween(a, b trace.Source, p predictor.Predictor) error {
	_, err := sim.RunTrace(a, p, 0)
	if err != nil { // clean: first error read before the second run
		return err
	}
	_, err = sim.RunTrace(b, p, 0)
	return err
}

func deferred(w *trace.Writer) {
	defer w.Close() // want `deferred call discards the error from Writer\.Close`
}

func deferredChecked(w *trace.Writer, errp *error) {
	defer func() { // clean: the deferred closure propagates the error
		if err := w.Close(); err != nil && *errp == nil {
			*errp = err
		}
	}()
}

func inGoroutine(src trace.Source, p predictor.Predictor) {
	go sim.RunTrace(src, p, 0) // want `go statement call discards the error from sim\.RunTrace`
}

func flushes(w *trace.Writer, ev trace.Event) {
	w.Emit(ev) // want `call discards the error from Writer\.Emit`
	w.Flush()  // want `call discards the error from Writer\.Flush`
}

// memSource implements trace.Source outside internal/trace; its Err
// is drain-protected through the interface-implementation rule.
type memSource struct {
	evs []trace.Event
	pos int
	err error
}

func (m *memSource) Next() (trace.Event, bool) {
	if m.pos >= len(m.evs) {
		return trace.Event{}, false
	}
	ev := m.evs[m.pos]
	m.pos++
	return ev, true
}

func (m *memSource) Err() error { return m.err }

func implementsRule(m *memSource) {
	m.Err() // want `call discards the error from memSource\.Err`
}

// plainError is an unprotected error producer: dropping it is still
// bad style, but not this analyzer's invariant.
func plainError() error { return nil }

func unprotected() {
	plainError() // clean: not part of the drain contract
	_ = plainError()
}
