// Golden testdata for the hotalloc analyzer, scoped as internal/sim so
// StepBlock lands in the declared hot set. Every allocation shape in a
// hot loop is marked, next to the sanctioned idioms (setup before the
// loop, cold error exits, non-escaping closures) that must stay clean.
package hotalloc

import "fmt"

type point struct {
	x int
}

type recorder interface {
	Record(v uint64)
}

type Stepper struct {
	events []uint64
	sink   any
	cb     func() int
	buf    []byte
}

func sinkAny(v any) {}

// StepBlock is hot by contract (internal/sim). Only its loops are the
// hot region; per-drain setup above them allocates freely.
func (s *Stepper) StepBlock(n int, r recorder, name string) error {
	scratch := make([]uint64, 0, n) // clean: setup outside the loop
	for i := 0; i < n; i++ {
		s.events = append(s.events, uint64(i)) // want `append may grow its backing array`
		p := &point{x: i}                      // want `address of composite literal allocates`
		_ = p
		xs := []int{i} // want `slice literal allocates`
		_ = xs
		m := make(map[int]int) // want `make allocates`
		_ = m
		q := new(point) // want `new allocates`
		_ = q
		s.sink = i                       // want `assignment boxes a int into an interface`
		sinkAny(i)                       // want `argument boxes a int into an interface`
		s.cb = func() int { return i }   // want `function literal allocates a closure`
		_ = string(s.buf)                // want `string conversion copies its payload`
		b := []byte(name)                // want `\[\]byte conversion copies its payload`
		_ = b
		r.Record(uint64(i)) // clean: concrete parameter, no boxing
		_ = helperNoAlloc(i)
		_ = helperAlloc(i)
		_ = helperClosure(s.buf)
	}
	_ = scratch
	for i := range s.events {
		if s.events[i] == 0 {
			return fmt.Errorf("zero event at %d", i) // clean: cold exit pays once per drain
		}
	}
	return nil
}

// One level of call-graph propagation: called from StepBlock's loop,
// so the full body is a hot region.
func helperAlloc(i int) *point {
	return &point{x: i} // want `address of composite literal allocates in helperAlloc, called from a hot loop`
}

func helperNoAlloc(i int) int {
	return i * 2 // clean: no allocation sites
}

// The decodeEventColumns varint idiom: a closure bound to a local and
// only ever called stays on the stack.
func helperClosure(data []byte) uint64 {
	var off int
	varint := func() uint64 { // clean: non-escaping closure
		var v uint64
		for shift := 0; off < len(data); shift += 7 {
			c := data[off]
			off++
			v |= uint64(c&0x7f) << shift
			if c&0x80 == 0 {
				break
			}
		}
		return v
	}
	return varint() + varint()
}

// capvet:hot
func directiveHot(data []int) int {
	t := 0
	for _, v := range data {
		tmp := []int{v} // want `slice literal allocates`
		t += tmp[0]
		if v < 0 {
			msg := fmt.Sprintf("negative value %d", v) // clean: cold exit pays once
			_ = msg
			break
		}
	}
	return t
}

// notHot allocates the same shapes with no directive and no contract
// name: the analyzer must stay silent.
func notHot(data []int) []*point {
	var out []*point
	for _, v := range data {
		out = append(out, &point{x: v}) // clean: not in the hot set
	}
	return out
}
