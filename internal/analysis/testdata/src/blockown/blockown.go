// Golden testdata for the blockown analyzer: every way the
// trace.Block lifecycle contract can be broken — use-after-Release,
// double-Release, column writes on shared views, pooled blocks
// escaping their drain scope — next to the sanctioned idioms from the
// real tree that must stay clean.
package blockown

import "capred/internal/trace"

func process(b *trace.Block) {}

type holder struct {
	b *trace.Block
}

var sink *trace.Block

func useAfterRelease(src trace.BlockSource) {
	b := trace.GetBlock()
	n, ok := src.NextBlock(b, trace.BlockLen)
	_, _ = n, ok
	trace.PutBlock(b)
	_ = b.Len() // want `use of b after PutBlock returned it to the pool`
}

func doubleRelease() {
	b := trace.GetBlock()
	trace.PutBlock(b)
	trace.PutBlock(b) // want `double release: b was already returned to the pool`
}

func deferredDouble() {
	b := trace.GetBlock()
	defer trace.PutBlock(b) // want `deferred PutBlock releases b twice`
	b.Resize(1)
	trace.PutBlock(b)
}

func sharedWrite(src trace.BlockSource) {
	b := trace.NewBlock(trace.BlockLen)
	n, ok := src.NextBlock(b, trace.BlockLen)
	_, _ = n, ok
	b.IP[0] = 1                  // want `column write on b, which may be a zero-copy view`
	b.SetEvent(0, trace.Event{}) // want `SetEvent on b, which may be a zero-copy view`
}

func sharedCopy(src trace.BlockSource, scratch []uint32) {
	b := trace.NewBlock(trace.BlockLen)
	n, ok := src.NextBlock(b, trace.BlockLen)
	_, _ = n, ok
	copy(b.Addr, scratch) // want `copy into a column of b`
}

func pooledWriteNoResize() {
	b := trace.GetBlock()
	defer trace.PutBlock(b)
	b.KindTaken[0] = 0 // want `column write on b, which may be a zero-copy view`
}

// The faultsrc.Corrupt idiom: Own dominates the mutation, so the
// writes land on private columns.
func ownedWrite(src trace.BlockSource, b *trace.Block) {
	n, _ := src.NextBlock(b, 64)
	b.Own()
	for i := 0; i < n; i++ {
		ev := b.Event(i)
		b.SetEvent(i, ev) // clean: Own() dominates
	}
}

// The stream.FeedBlocks idiom: Resize reallocates shared columns
// before any write can land there.
func resizeThenWrite() {
	b := trace.GetBlock()
	defer trace.PutBlock(b)
	b.Resize(16)
	b.KindTaken[0] = 0 // clean: Resize() dominates
}

func escapes(ch chan *trace.Block, blocks []*trace.Block) *trace.Block {
	a := trace.GetBlock()
	sink = a // want `pooled block a is stored outside the local scope`
	b := trace.GetBlock()
	ch <- b // want `pooled block b is sent on a channel`
	c := trace.GetBlock()
	go process(c) // want `pooled block c is handed to a goroutine`
	d := trace.GetBlock()
	go func() { _ = d.Len() }() // want `pooled block d is captured by a goroutine`
	e := trace.GetBlock()
	blocks = append(blocks, e) // want `pooled block e is appended to a slice`
	f := trace.GetBlock()
	_ = holder{b: f} // want `pooled block f is stored in a composite literal`
	g := trace.GetBlock()
	return g // want `pooled block g is returned while still pool-owned`
}

func cleanReturn() *trace.Block {
	b := trace.NewBlock(8)
	return b // clean: NewBlock is caller-owned, not pooled
}

// The forEachBlock / cpu.Run drain idiom: one pooled block, deferred
// release, zero-copy deliveries read but never written.
func drainLoop(src trace.BlockSource) int {
	b := trace.GetBlock()
	defer trace.PutBlock(b)
	total := 0
	for {
		n, ok := src.NextBlock(b, trace.BlockLen)
		if !ok {
			break
		}
		total += n
	}
	return total
}

// Released on one path only: the must-direction analysis stays silent
// rather than guess (conservative by design).
func mayRelease(cond bool) {
	b := trace.GetBlock()
	if cond {
		trace.PutBlock(b)
	}
	_ = b.Len() // clean for the analyzer: released on one path only
}

// Each path releases exactly once: no double release.
func branchRelease(cond bool) {
	b := trace.GetBlock()
	if cond {
		b.Resize(4)
		trace.PutBlock(b)
		return
	}
	trace.PutBlock(b) // clean: the other path returned already
}
