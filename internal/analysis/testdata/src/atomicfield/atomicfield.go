// Golden testdata for the atomicfield analyzer: a struct field touched
// through sync/atomic anywhere must be accessed that way everywhere.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits  int64
	total int64
	mu    sync.Mutex
	plain int64
	gauge atomic.Int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1) // clean: the sanctioned access form
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.hits) // clean
}

func (c *counters) racy() int64 {
	c.hits++      // want `plain access to field "hits"`
	return c.hits // want `plain access to field "hits"`
}

func swapIn(c *counters, v int64) int64 {
	old := atomic.SwapInt64(&c.total, v) // clean
	return old
}

func (c *counters) racyWrite(v int64) {
	c.total = v // want `plain access to field "total"`
}

func (c *counters) unrelated() int64 {
	c.plain++ // clean: this field is never touched atomically
	return c.plain
}

func (c *counters) typed() int64 {
	c.gauge.Add(1)        // clean: atomic.Int64 has no plain-access form
	return c.gauge.Load() // clean
}

func (c *counters) drained() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	// capvet:ignore atomicfield read after the worker pool drained; no concurrent writers remain
	return c.total // clean: suppressed with a recorded reason
}
