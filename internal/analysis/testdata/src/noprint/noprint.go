// Golden testdata for the noprint analyzer: library packages stay
// silent; output flows through returned values or injected writers.
package noprint

import (
	"fmt"
	"io"
	"log"
	"os"
)

func shouty(x int) {
	fmt.Println("x =", x)           // want `fmt\.Println writes to stdout`
	fmt.Printf("x = %d\n", x)       // want `fmt\.Printf writes to stdout`
	fmt.Fprintf(os.Stderr, "%d", x) // want `fmt\.Fprintf to os\.Stderr`
	os.Stdout.WriteString("hello")  // want `direct write to os\.Stdout`
	log.Printf("x = %d", x)         // want `log\.Printf writes to the process default logger`
	println(x)                      // want `builtin println writes to stderr`
}

func quiet(w io.Writer, x int) error {
	_, err := fmt.Fprintf(w, "x = %d\n", x) // clean: caller-supplied writer
	return err
}

func rendered(x int) string {
	return fmt.Sprintf("x = %d", x) // clean: returns the text
}

func ownLogger(l *log.Logger, x int) {
	l.Printf("x = %d", x) // clean: injected logger, caller picked the sink
}
