// Golden testdata for the capvet:ignore escape hatch, demonstrated
// against noprint. The two legitimately silenced calls carry an
// all-caps tag in their directive reasons; the test asserts nothing is
// reported on or directly under those directives, that a directive
// without a reason (or naming an unknown analyzer) silences nothing,
// and that the malformed directives are themselves findings.
package ignore

import "fmt"

func suppressedSameLine() {
	fmt.Println("one") // capvet:ignore noprint demo output reviewed, SUPPRESSED

	fmt.Println("survives-a")
}

func suppressedNextLine() {
	// capvet:ignore noprint migration banner allowed for now, SUPPRESSED
	fmt.Println("two")
}

func missingReason() {
	// capvet:ignore noprint
	fmt.Println("three")
}

func unknownAnalyzer() {
	fmt.Println("four") // capvet:ignore nosuchcheck because reasons
}
