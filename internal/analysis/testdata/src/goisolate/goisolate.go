// Golden testdata for the goisolate analyzer. Loaded scoped as
// internal/sim, where every goroutine must be panic-isolated or
// context-managed.
package goisolate

import "context"

func bare(work func()) {
	go func() { // want `goroutine has no panic isolation and no context`
		work()
	}()
}

func bareWithArgs(work func(int)) {
	go func(n int) { // want `goroutine has no panic isolation and no context`
		work(n)
	}(7)
}

func withRecover(work func()) {
	go func() { // clean: deferred recover isolates the panic
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		work()
	}()
}

func withContext(ctx context.Context, work func()) {
	go func(ctx context.Context) { // clean: context-managed worker
		<-ctx.Done()
		work()
	}(ctx)
}

func viaWrapper(work func()) {
	runOne := func() {
		defer func() { _ = recover() }()
		work()
	}
	go func() { // clean: everything runs through a recovering closure
		for i := 0; i < 4; i++ {
			runOne()
		}
	}()
}

func viaNamed(work func()) {
	go func() { // clean: defers a named recoverer
		defer swallowPanic()
		work()
	}()
}

// swallowPanic isolates a panic when invoked via defer.
func swallowPanic() { _ = recover() }

// namedWorker is spawned as a named function, not a literal; the
// analyzer's contract covers `go func` literals only.
func namedWorker() {}

func spawnsNamed() {
	go namedWorker() // clean: not a func literal
}
