// Golden testdata for the determinism analyzer. Loaded scoped as
// internal/sim, where the invariant applies.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// table stands in for report.Table: Add appends an ordered row.
type table struct{ rows []string }

func (t *table) Add(cells ...string) { t.rows = append(t.rows, cells...) }

func wallClock() time.Duration {
	start := time.Now()   // want `time\.Now reads the wall clock`
	_ = time.Since(start) // want `time\.Since reads the wall clock`
	return time.Second    // clean: a duration constant is not a clock read
}

func globalRand(r *rand.Rand) int {
	n := rand.Intn(8)    // want `global random source`
	return n + r.Intn(8) // clean: explicitly seeded source
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // clean: constructors build seeded sources
	return rng.Intn(8)
}

func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is random but the loop body appends`
		out = append(out, k)
	}
	return out
}

func mapKeysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // clean: the collected keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapCount(m map[string]int) int64 {
	var total int64
	for _, n := range m { // clean: integer addition commutes
		total += int64(n)
	}
	return total
}

func mapFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates floating point`
		sum += v
	}
	return sum
}

func mapPrint(m map[string]int, b *strings.Builder) {
	for k, v := range m { // want `writes ordered output`
		fmt.Fprintf(b, "%s=%d\n", k, v)
	}
}

func mapTable(m map[string]int, t *table) {
	for k := range m { // want `writes ordered output`
		t.Add(k)
	}
}

func mapSend(m map[string]int, ch chan string) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

func sliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs { // clean: slices iterate in index order
		out = append(out, x)
	}
	return out
}

func mapRekey(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // clean: writing a map keyed by the range key commutes
		out[k] = v
	}
	return out
}

func perIterationState(m map[string][]int) int {
	total := 0
	for _, vs := range m { // clean: the builder lives inside the iteration
		var b strings.Builder
		for _, v := range vs {
			fmt.Fprintf(&b, "%d", v)
		}
		total += b.Len()
	}
	return total
}
