package pipeline

import (
	"testing"

	"capred/internal/predictor"
)

// recorder is a fake predictor that logs the order of operations.
type recorder struct {
	ops []string
	ids map[predictor.LoadRef]int
}

func newRecorder() *recorder {
	return &recorder{ids: make(map[predictor.LoadRef]int)}
}

func (r *recorder) Name() string { return "recorder" }

func (r *recorder) Predict(ref predictor.LoadRef) predictor.Prediction {
	r.ops = append(r.ops, "P"+string(rune('0'+ref.IP)))
	return predictor.Prediction{Addr: ref.IP * 10, Predicted: true}
}

func (r *recorder) Resolve(ref predictor.LoadRef, p predictor.Prediction, actual uint32) {
	r.ops = append(r.ops, "R"+string(rune('0'+ref.IP)))
	if p.Addr != ref.IP*10 {
		panic("resolution got the wrong prediction")
	}
	if actual != ref.IP*100 {
		panic("resolution got the wrong actual address")
	}
}

func TestGapZeroIsImmediate(t *testing.T) {
	r := newRecorder()
	g := New(r, 0)
	for ip := uint32(1); ip <= 3; ip++ {
		g.Process(predictor.LoadRef{IP: ip}, ip*100)
	}
	g.Drain()
	want := "P1R1P2R2P3R3"
	got := ""
	for _, op := range r.ops {
		got += op
	}
	if got != want {
		t.Errorf("immediate order = %s, want %s", got, want)
	}
}

func TestGapDefersResolutionByDepth(t *testing.T) {
	r := newRecorder()
	g := New(r, 2)
	for ip := uint32(1); ip <= 4; ip++ {
		g.Process(predictor.LoadRef{IP: ip}, ip*100)
	}
	g.Drain()
	// With depth 2: P1 P2, then each new prediction first retires the
	// oldest: R1 P3, R2 P4, drain R3 R4.
	want := "P1P2R1P3R2P4R3R4"
	got := ""
	for _, op := range r.ops {
		got += op
	}
	if got != want {
		t.Errorf("gapped order = %s, want %s", got, want)
	}
}

func TestGapPendingAndDrain(t *testing.T) {
	g := New(newRecorder(), 3)
	for ip := uint32(1); ip <= 2; ip++ {
		g.Process(predictor.LoadRef{IP: ip}, ip*100)
	}
	if g.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", g.Pending())
	}
	g.Drain()
	if g.Pending() != 0 {
		t.Errorf("Pending after Drain = %d, want 0", g.Pending())
	}
	// Drain on empty is a no-op.
	g.Drain()
}

func TestGapDepthAccessor(t *testing.T) {
	if New(newRecorder(), 5).Depth() != 5 {
		t.Error("Depth() wrong")
	}
}

func TestGapNegativeDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative depth")
		}
	}()
	New(newRecorder(), -1)
}

func TestGapLongRunRingBuffer(t *testing.T) {
	// Exercise ring-buffer wrap-around with many loads.
	r := newRecorder()
	g := New(r, 4)
	const n = 100
	for i := 0; i < n; i++ {
		g.Process(predictor.LoadRef{IP: uint32(i % 8)}, uint32(i%8)*100)
	}
	g.Drain()
	var preds, ress int
	for _, op := range r.ops {
		if op[0] == 'P' {
			preds++
		} else {
			ress++
		}
	}
	if preds != n || ress != n {
		t.Errorf("got %d predictions, %d resolutions, want %d each", preds, ress, n)
	}
}

// squashRecorder counts squashes.
type squashRecorder struct {
	recorder
	squashed []uint32
}

func (s *squashRecorder) Squash(ref predictor.LoadRef, p predictor.Prediction) {
	s.squashed = append(s.squashed, ref.IP)
}

func TestGapSquashNewest(t *testing.T) {
	r := &squashRecorder{recorder: *newRecorder()}
	g := New(r, 4)
	for ip := uint32(1); ip <= 4; ip++ {
		g.Process(predictor.LoadRef{IP: ip}, ip*100)
	}
	// Flush the two youngest (wrong-path) predictions.
	if n := g.SquashNewest(2); n != 2 {
		t.Fatalf("squashed %d, want 2", n)
	}
	if g.Pending() != 2 {
		t.Errorf("pending = %d, want 2", g.Pending())
	}
	// Youngest-first order: IP 4 then IP 3.
	if len(r.squashed) != 2 || r.squashed[0] != 4 || r.squashed[1] != 3 {
		t.Errorf("squash order = %v, want [4 3]", r.squashed)
	}
	// Remaining predictions resolve normally and in order.
	g.Drain()
	got := ""
	for _, op := range r.ops {
		got += op
	}
	if got != "P1P2P3P4R1R2" {
		t.Errorf("ops = %s", got)
	}
}

func TestGapSquashMoreThanPending(t *testing.T) {
	r := &squashRecorder{recorder: *newRecorder()}
	g := New(r, 4)
	g.Process(predictor.LoadRef{IP: 1}, 100)
	if n := g.SquashNewest(10); n != 1 {
		t.Errorf("squashed %d, want 1", n)
	}
	if g.Pending() != 0 {
		t.Error("pending should be 0")
	}
}

func TestGapSquashImmediateModeNoop(t *testing.T) {
	g := New(newRecorder(), 0)
	if n := g.SquashNewest(3); n != 0 {
		t.Errorf("immediate-mode squash flushed %d", n)
	}
}

func TestGapSquashNonSquasherDropsSilently(t *testing.T) {
	r := newRecorder() // does not implement Squasher
	g := New(r, 2)
	g.Process(predictor.LoadRef{IP: 1}, 100)
	if n := g.SquashNewest(1); n != 1 {
		t.Errorf("flushed %d, want 1", n)
	}
	g.Drain()
	for _, op := range r.ops {
		if op == "R1" {
			t.Error("squashed prediction must not resolve")
		}
	}
}
