// Package pipeline models the predict-to-update delay of a real pipelined
// processor (§5 of the paper). In a pipelined machine a load-address
// prediction is verified only a "prediction gap" later; in the meantime
// further predictions — including for the same static load — are made from
// speculative predictor state.
//
// Gap wraps a Predictor and defers every resolution by a fixed number of
// dynamic loads, which stands in for the pipeline stages between the
// front-end prediction and the memory-ordering-buffer verification.
package pipeline

import (
	"capred/internal/predictor"
)

// Gap drives a predictor with a fixed prediction-to-resolution distance,
// measured in dynamic loads. Depth 0 degenerates to immediate update.
type Gap struct {
	p     predictor.Predictor
	depth int
	q     []slot
	head  int
	used  int
}

type slot struct {
	ref    predictor.LoadRef
	pred   predictor.Prediction
	actual uint32
}

// New wraps p with a prediction gap of the given depth (≥ 0). The
// predictor should have been constructed in speculative mode when depth is
// non-zero, otherwise its internal state repair is never exercised and
// results are meaningless.
func New(p predictor.Predictor, depth int) *Gap {
	if depth < 0 {
		panic("pipeline: negative gap depth")
	}
	g := &Gap{p: p, depth: depth}
	if depth > 0 {
		g.q = make([]slot, depth)
	}
	return g
}

// Depth returns the configured prediction gap.
func (g *Gap) Depth() int { return g.depth }

// Process predicts the load and schedules its resolution (with the actual
// effective address, known to the trace driver) for `depth` loads later.
// It returns the prediction made now; its verification happens inside a
// later Process or Drain call.
func (g *Gap) Process(ref predictor.LoadRef, actual uint32) predictor.Prediction {
	if g.depth == 0 {
		p := g.p.Predict(ref)
		g.p.Resolve(ref, p, actual)
		return p
	}
	if g.used == g.depth {
		s := &g.q[g.head]
		g.p.Resolve(s.ref, s.pred, s.actual)
		g.used--
		g.head = (g.head + 1) % g.depth
	}
	p := g.p.Predict(ref)
	tail := (g.head + g.used) % g.depth
	g.q[tail] = slot{ref: ref, pred: p, actual: actual}
	g.used++
	return p
}

// Drain resolves every pending prediction, e.g. at the end of a trace.
func (g *Gap) Drain() {
	for g.used > 0 {
		s := &g.q[g.head]
		g.p.Resolve(s.ref, s.pred, s.actual)
		g.used--
		g.head = (g.head + 1) % g.depth
	}
}

// Pending returns the number of unresolved predictions in flight.
func (g *Gap) Pending() int { return g.used }

// SquashNewest flushes the n most recently made predictions without
// resolving them, as a branch-misprediction recovery does to wrong-path
// loads (§5.4). Predictors implementing predictor.Squasher get their
// in-flight bookkeeping repaired; for others the predictions are simply
// dropped. It returns how many predictions were flushed.
func (g *Gap) SquashNewest(n int) int {
	if g.depth == 0 {
		return 0 // immediate mode has nothing in flight
	}
	sq, _ := g.p.(predictor.Squasher)
	flushed := 0
	for flushed < n && g.used > 0 {
		tail := (g.head + g.used - 1) % g.depth
		s := &g.q[tail]
		if sq != nil {
			sq.Squash(s.ref, s.pred)
		}
		g.used--
		flushed++
	}
	return flushed
}
