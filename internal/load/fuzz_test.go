package load

import (
	"testing"
	"time"
)

// FuzzSchedule drives the generator across seeds, profiles and sizes,
// checking the invariants the engine depends on: session count
// conserved (and untouched by time-scale compression — the scale is
// not even an input to Generate), no negative inter-arrival gaps,
// strictly monotone batch due times within a session, and monotone
// non-negative compressed offsets for the timeline.
func FuzzSchedule(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(100), uint8(4), uint8(120))
	f.Add(int64(42), uint8(1), uint16(500), uint8(1), uint8(1))
	f.Add(int64(-7), uint8(2), uint16(1), uint8(12), uint8(255))
	f.Add(int64(0), uint8(3), uint16(2000), uint8(3), uint8(60))

	f.Fuzz(func(t *testing.T, seed int64, profIdx uint8, sessions uint16, meanBatches uint8, scale uint8) {
		profiles := Profiles()
		cfg := Config{
			Profile:     profiles[int(profIdx)%len(profiles)],
			Sessions:    1 + int(sessions)%2000,
			Day:         24 * time.Hour,
			Seed:        seed,
			BatchEvents: 100,
			MeanEvents:  (1 + int(meanBatches)%16) * 100,
			Think:       5 * time.Minute,
			Predictors:  []string{"hybrid"},
			Traces:      []string{"INT_xli"},
		}
		s, err := Generate(cfg)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}

		// Session count is conserved: the generator plans exactly what was
		// asked for, and compression below never adds or drops a session.
		if len(s.Sessions) != cfg.Sessions {
			t.Fatalf("planned %d sessions, got %d", cfg.Sessions, len(s.Sessions))
		}

		ts := float64(1 + int(scale))
		var prevStart, prevReal time.Duration
		for i, sess := range s.Sessions {
			// No negative inter-arrival gaps: arrival order is sorted.
			if gap := sess.Start - prevStart; gap < 0 {
				t.Fatalf("session %d: negative inter-arrival gap %v", i, gap)
			}
			prevStart = sess.Start
			if sess.Start < 0 || sess.Start >= cfg.Day {
				t.Fatalf("session %d: start %v outside the day", i, sess.Start)
			}

			// Compression is monotone across sessions and non-negative.
			real := RealOffset(sess.Start, ts)
			if real < 0 || real < prevReal {
				t.Fatalf("session %d: compressed offset %v regressed below %v at scale %g", i, real, prevReal, ts)
			}
			prevReal = real

			// Batch due times strictly increase within a session, and
			// compression preserves their order too.
			if len(sess.Batches) == 0 {
				t.Fatalf("session %d: no batches", i)
			}
			for b := 1; b < len(sess.Batches); b++ {
				if sess.Batches[b].At <= sess.Batches[b-1].At {
					t.Fatalf("session %d: batch %d due %v not after %v",
						i, b, sess.Batches[b].At, sess.Batches[b-1].At)
				}
				if RealOffset(sess.Batches[b].At, ts) < RealOffset(sess.Batches[b-1].At, ts) {
					t.Fatalf("session %d: compression reordered batches %d/%d", i, b-1, b)
				}
			}
		}

		// Determinism: a second generation is identical.
		s2, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s.Sessions {
			a, b := s.Sessions[i], s2.Sessions[i]
			if a.Start != b.Start || a.Predictor != b.Predictor || a.Trace != b.Trace ||
				len(a.Batches) != len(b.Batches) {
				t.Fatalf("session %d differs between identical generations", i)
			}
		}
	})
}
