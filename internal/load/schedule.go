// Package load is the capload client fleet: a time-compressed load
// simulator for capserve. A seeded Schedule lays out thousands of
// streaming prediction sessions over a simulated day (diurnal, bursty,
// ramp or steady arrivals); an Engine replays that schedule against a
// live capserve over the real HTTP surface with a virtual-user pool,
// honouring the server's backpressure (429 Retry-After waits, 413 batch
// splits); the run ends in a JSON report plus a timeline CSV of batch
// latency percentiles and rejection rates, an SLO gate, and a
// crosscheck of the client's books against the server's /metrics
// counters.
//
// Everything in this package is deterministic for a fixed seed: the
// schedule is pure arithmetic over a seeded *rand.Rand, and the engine
// reads time only through an injected now()/sleep() pair, so the
// capvet determinism analyzer applies here just as it does to the
// result-producing simulator packages.
package load

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Profile names an arrival-intensity shape over the simulated day.
type Profile string

const (
	// ProfileSteady arrives uniformly over the day.
	ProfileSteady Profile = "steady"
	// ProfileDiurnal follows a day/night curve: quiet small hours, a
	// midday plateau, an evening shoulder.
	ProfileDiurnal Profile = "diurnal"
	// ProfileBursty is a low baseline punctuated by seeded bursts of
	// 8-20x intensity — the overload shape admission control exists for.
	ProfileBursty Profile = "bursty"
	// ProfileRamp grows linearly from near-idle to 10x, the capacity
	// -planning shape: where on the ramp do SLOs break?
	ProfileRamp Profile = "ramp"
)

// Profiles lists the valid arrival shapes.
func Profiles() []Profile {
	return []Profile{ProfileSteady, ProfileDiurnal, ProfileBursty, ProfileRamp}
}

// diurnalHours is the relative arrival weight per hour-of-day, an
// integer shape (no trig) so schedules are bit-reproducible everywhere:
// a 2am trough, a climb through the morning, a 1pm peak, an evening
// shoulder.
var diurnalHours = [24]int64{
	3, 2, 1, 1, 1, 2, 4, 7, 10, 12, 13, 13,
	14, 14, 13, 12, 12, 11, 10, 8, 6, 5, 4, 3,
}

// scheduleSlots is the arrival-intensity resolution: the simulated day
// is cut into this many equal slots and sessions land in slots with
// probability proportional to the profile's slot weight.
const scheduleSlots = 288

// Config shapes a Schedule. All durations are simulated time; the
// Engine's TimeScale compresses them to wall time at execution.
type Config struct {
	Profile Profile
	// Sessions is the total session count over the day. Time-scale
	// compression never changes it — that invariant is fuzzed.
	Sessions int
	// Day is the simulated span arrivals are spread over.
	Day time.Duration
	// Seed makes the schedule reproducible.
	Seed int64
	// MeanEvents is the target mean events per session. Sessions hold
	// a whole number of batches, so actual counts are multiples of
	// BatchEvents with this mean.
	MeanEvents int
	// BatchEvents is the events carried by each POSTed batch.
	BatchEvents int
	// Think is the mean simulated gap between a session's batches.
	Think time.Duration
	// Predictors is the predictor-kind rotation sessions bind to.
	Predictors []string
	// Traces is the workload-trace rotation sessions stream.
	Traces []string
}

// Batch is one planned POST …/events: its simulated due time and the
// index of its byte range within the session's encoded trace stream.
type Batch struct {
	At    time.Duration // simulated offset from schedule start
	Index int           // batch number within the session, from 0
}

// Session is one planned streaming prediction session.
type Session struct {
	Index     int           // position in Schedule.Sessions (arrival order)
	Start     time.Duration // simulated arrival offset
	Predictor string
	Trace     string
	Batches   []Batch // due times are nondecreasing, first == Start
}

// Events returns the session's total planned events.
func (s Session) Events(batchEvents int) int64 {
	return int64(len(s.Batches)) * int64(batchEvents)
}

// Schedule is a fully-materialised arrival plan: every session, every
// batch, every simulated due time. It is pure data — generating it
// issues no I/O and reads no clock.
type Schedule struct {
	Cfg      Config
	Sessions []Session // sorted by Start, ties by draw order
}

// Validate rejects configs the generator cannot honour.
func (c Config) Validate() error {
	switch c.Profile {
	case ProfileSteady, ProfileDiurnal, ProfileBursty, ProfileRamp:
	default:
		return fmt.Errorf("load: unknown profile %q (one of %v)", c.Profile, Profiles())
	}
	if c.Sessions <= 0 {
		return fmt.Errorf("load: sessions must be positive, got %d", c.Sessions)
	}
	if c.Day <= 0 {
		return fmt.Errorf("load: day must be positive, got %v", c.Day)
	}
	if c.BatchEvents <= 0 {
		return fmt.Errorf("load: batch events must be positive, got %d", c.BatchEvents)
	}
	if c.MeanEvents < c.BatchEvents {
		return fmt.Errorf("load: mean events (%d) must be at least one batch (%d)", c.MeanEvents, c.BatchEvents)
	}
	if c.Think <= 0 {
		return fmt.Errorf("load: think time must be positive, got %v", c.Think)
	}
	if len(c.Predictors) == 0 {
		return fmt.Errorf("load: at least one predictor kind is required")
	}
	if len(c.Traces) == 0 {
		return fmt.Errorf("load: at least one trace name is required")
	}
	return nil
}

// slotWeights renders the profile as integer arrival weights over the
// day's slots. Weights only need to be relatively sized; they are
// sampled by cumulative sum.
func slotWeights(p Profile, rng *rand.Rand) []int64 {
	w := make([]int64, scheduleSlots)
	switch p {
	case ProfileSteady:
		for i := range w {
			w[i] = 1
		}
	case ProfileDiurnal:
		for i := range w {
			hour := i * 24 / scheduleSlots
			w[i] = diurnalHours[hour]
		}
	case ProfileBursty:
		for i := range w {
			w[i] = 2
		}
		// Six bursts at seeded positions: short windows of 8-20x the
		// baseline, the arrival shape MaxSessions and the budgets are
		// sized against.
		for b := 0; b < 6; b++ {
			start := rng.Intn(scheduleSlots)
			length := 2 + rng.Intn(7)
			amp := int64(8 + rng.Intn(13))
			for j := 0; j < length; j++ {
				w[(start+j)%scheduleSlots] += 2 * amp
			}
		}
	case ProfileRamp:
		for i := range w {
			w[i] = 1 + int64(i*9)/int64(scheduleSlots-1)
		}
	}
	return w
}

// Generate materialises the schedule for cfg. The same cfg always
// yields the identical schedule, byte for byte.
func Generate(cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := slotWeights(cfg.Profile, rng)
	cum := make([]int64, len(weights))
	var total int64
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	slotDur := cfg.Day / scheduleSlots

	// Draw every arrival, then sort: a schedule reads in arrival order.
	type draw struct {
		start time.Duration
		ord   int
	}
	draws := make([]draw, cfg.Sessions)
	for i := range draws {
		r := rng.Int63n(total)
		slot := sort.Search(len(cum), func(j int) bool { return cum[j] > r })
		off := time.Duration(rng.Int63n(int64(slotDur)))
		draws[i] = draw{start: time.Duration(slot)*slotDur + off, ord: i}
	}
	sort.Slice(draws, func(a, b int) bool {
		if draws[a].start != draws[b].start {
			return draws[a].start < draws[b].start
		}
		return draws[a].ord < draws[b].ord
	})

	// Per-session shape draws happen in arrival order so the rng
	// consumption sequence — and therefore the schedule — is a pure
	// function of (seed, profile, counts).
	meanBatches := cfg.MeanEvents / cfg.BatchEvents
	sched := &Schedule{Cfg: cfg, Sessions: make([]Session, cfg.Sessions)}
	for i, d := range draws {
		// 1..2*mean-1 uniformly: the mean lands on meanBatches exactly.
		nb := 1 + rng.Intn(2*meanBatches-1)
		s := Session{
			Index:     i,
			Start:     d.start,
			Predictor: cfg.Predictors[rng.Intn(len(cfg.Predictors))],
			Trace:     cfg.Traces[rng.Intn(len(cfg.Traces))],
			Batches:   make([]Batch, nb),
		}
		at := d.start
		for b := 0; b < nb; b++ {
			s.Batches[b] = Batch{At: at, Index: b}
			// Think gaps are uniform in [Think/2, 3*Think/2): positive,
			// so due times are strictly increasing within a session.
			at += cfg.Think/2 + time.Duration(rng.Int63n(int64(cfg.Think)))
		}
		sched.Sessions[i] = s
	}
	return sched, nil
}

// MaxBatches returns the largest per-session batch count in the
// schedule (sizing the encoded trace streams).
func (s *Schedule) MaxBatches() int {
	m := 0
	for _, sess := range s.Sessions {
		if len(sess.Batches) > m {
			m = len(sess.Batches)
		}
	}
	return m
}

// End returns the latest batch due time in the schedule.
func (s *Schedule) End() time.Duration {
	var end time.Duration
	for _, sess := range s.Sessions {
		if n := len(sess.Batches); n > 0 {
			if at := sess.Batches[n-1].At; at > end {
				end = at
			}
		}
	}
	return end
}

// RealOffset compresses a simulated offset to wall time under scale.
// It is monotone and preserves non-negativity — compression reorders
// nothing and drops nothing; those invariants are fuzzed.
func RealOffset(sim time.Duration, scale float64) time.Duration {
	if scale <= 1 {
		return sim
	}
	return time.Duration(float64(sim) / scale)
}
