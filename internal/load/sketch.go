package load

// A fixed-layout log-bucketed latency sketch. Quantiles come back as a
// bucket's upper bound, so two runs observing the same multiset of
// durations render identical percentiles — the property the seeded
// -determinism golden needs — and merging is plain addition, so the
// engine's concurrent users can tally into shards and merge after the
// pool drains without ordering sensitivity.

import "time"

const (
	// sketchBuckets spans 1µs to ~1.4h at 25% resolution (bucket 0
	// holds everything under 1µs).
	sketchBuckets = 104
	sketchBaseNS  = 1_000 // 1µs
)

// sketchBounds[i] is the exclusive upper bound (ns) of bucket i,
// growing by 5/4 per bucket in integer arithmetic.
var sketchBounds = func() [sketchBuckets]int64 {
	var b [sketchBuckets]int64
	bound := int64(sketchBaseNS)
	for i := range b {
		b[i] = bound
		bound += bound / 4
	}
	return b
}()

// Sketch accumulates durations into log buckets. The zero value is
// ready to use. Not safe for concurrent use; merge shards with Merge.
type Sketch struct {
	counts [sketchBuckets]int64
	total  int64
}

// Observe records one duration.
func (s *Sketch) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bucketOf(ns)
	s.counts[i]++
	s.total++
}

// bucketOf finds the first bucket whose upper bound exceeds ns.
func bucketOf(ns int64) int {
	lo, hi := 0, sketchBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ns < sketchBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Merge adds o's observations into s.
func (s *Sketch) Merge(o *Sketch) {
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
	s.total += o.total
}

// Count returns the number of observations.
func (s *Sketch) Count() int64 { return s.total }

// Quantile returns the q-quantile (0 < q <= 1) as the holding bucket's
// upper bound — pessimistic by at most one bucket width (25%), exact in
// rank. Zero observations yield zero.
func (s *Sketch) Quantile(q float64) time.Duration {
	if s.total == 0 {
		return 0
	}
	rank := int64(q*float64(s.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.total {
		rank = s.total
	}
	var cum int64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			return time.Duration(sketchBounds[i])
		}
	}
	return time.Duration(sketchBounds[sketchBuckets-1])
}

// QuantileMS renders a quantile in milliseconds for reports.
func (s *Sketch) QuantileMS(q float64) float64 {
	return float64(s.Quantile(q).Nanoseconds()) / 1e6
}
