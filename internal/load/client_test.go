package load

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestParseRetryAfter: both RFC 9110 forms parse, absence is not an
// error, and garbage is.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in      string
		want    time.Duration
		ok      bool
		wantErr bool
	}{
		{"", 0, false, false},
		{"0", 0, true, false},
		{"1", time.Second, true, false},
		{"120", 2 * time.Minute, true, false},
		{"-1", 0, true, true},
		{now.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second, true, false},
		{now.Add(-30 * time.Second).Format(http.TimeFormat), 0, true, false}, // past date clamps to 0
		{"soon", 0, true, true},
		{"1.5", 0, true, true},
		{"1s", 0, true, true},
	}
	for _, tc := range cases {
		d, ok, err := ParseRetryAfter(tc.in, now)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseRetryAfter(%q): err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if ok != tc.ok {
			t.Errorf("ParseRetryAfter(%q): ok = %v, want %v", tc.in, ok, tc.ok)
		}
		if err == nil && d != tc.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.in, d, tc.want)
		}
	}
}

func testClient(base string) *Client {
	return &Client{
		HC:       http.DefaultClient,
		Base:     base,
		MaxTries: 3,
		Now:      time.Now,
		Sleep:    func(time.Duration) {},
	}
}

// TestClientRetries429: the client waits the advertised delay, fires
// the On429 hook once per response, and gives up after MaxTries.
func TestClientRetries429(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := testClient(ts.URL)
	var slept []time.Duration
	c.Sleep = func(d time.Duration) { slept = append(slept, d) }
	hooks := 0
	c.On429 = func() { hooks++ }

	_, err := c.OpenSession("hybrid", 0)
	if err == nil {
		t.Fatal("expected an error once the retry budget was spent")
	}
	if !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("error %q does not report the exhausted budget", err)
	}
	if hits != 3 || hooks != 3 {
		t.Fatalf("hits=%d hooks=%d, want 3 each", hits, hooks)
	}
	for _, d := range slept {
		if d != 2*time.Second {
			t.Fatalf("backoff %v, want the advertised 2s", d)
		}
	}
}

// TestClientMalformedRetryAfterFails: a garbage hint is an immediate
// error, not an invented backoff.
func TestClientMalformedRetryAfterFails(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "eventually")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := testClient(ts.URL)
	slept := 0
	c.Sleep = func(time.Duration) { slept++ }
	_, err := c.OpenSession("hybrid", 0)
	if err == nil || !strings.Contains(err.Error(), "Retry-After") {
		t.Fatalf("err = %v, want a Retry-After parse error", err)
	}
	if slept != 0 {
		t.Fatalf("client slept %d times on a malformed hint", slept)
	}
}

// TestClientSplitsOn413: a body cap forces recursive halving; every
// byte is delivered in order and posts counts the 200 responses.
func TestClientSplitsOn413(t *testing.T) {
	const cap = 16
	var got []byte
	posts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, cap+1)
		n, _ := r.Body.Read(body)
		if n > cap {
			w.WriteHeader(http.StatusRequestEntityTooLarge)
			return
		}
		got = append(got, body[:n]...)
		posts++
		fmt.Fprintf(w, `{"events": %d}`, n)
	}))
	defer ts.Close()

	c := testClient(ts.URL)
	splits := 0
	c.On413 = func() { splits++ }
	data := []byte("0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMN") // 50 bytes
	acked, nposts, err := c.PostEvents("s1", data)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("server received %q, want the original bytes in order", got)
	}
	if acked != int64(len(data)) {
		t.Fatalf("acked %d, want %d (sum of the per-post events)", acked, len(data))
	}
	if nposts != posts {
		t.Fatalf("client counted %d posts, server served %d", nposts, posts)
	}
	if splits == 0 {
		t.Fatal("On413 hook never fired despite forced splits")
	}
}

// TestParseMetrics: integer series parse, labelled series sum into the
// family, floats and comments are skipped.
func TestParseMetrics(t *testing.T) {
	page := `# HELP capserve_sessions_opened_total sessions opened
# TYPE capserve_sessions_opened_total counter
capserve_sessions_opened_total 42
capserve_batches_by_predictor_total{predictor="hybrid"} 7
capserve_batches_by_predictor_total{predictor="stride"} 5
capserve_latency_seconds_sum 1.25
`
	m, err := parseMetrics([]byte(page))
	if err != nil {
		t.Fatal(err)
	}
	if m["capserve_sessions_opened_total"] != 42 {
		t.Fatalf("opened = %d, want 42", m["capserve_sessions_opened_total"])
	}
	if m["capserve_batches_by_predictor_total"] != 12 {
		t.Fatalf("labelled sum = %d, want 12", m["capserve_batches_by_predictor_total"])
	}
	if _, present := m["capserve_latency_seconds_sum"]; present {
		t.Fatal("float series leaked into the integer map")
	}
}
