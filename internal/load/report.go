package load

// The run's two artifacts: a JSON report (config echo, totals, latency
// percentiles, SLO verdicts, /metrics crosscheck) and a timeline CSV
// (one row per simulated interval). Both are rendered with fixed field
// order and fixed float formatting, so a seeded run against a
// deterministic server is byte-identical — the golden test pins that.

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ReportConfig echoes the run's knobs into the report.
type ReportConfig struct {
	Seed        int64    `json:"seed"`
	Profile     string   `json:"profile"`
	Sessions    int      `json:"sessions"`
	Users       int      `json:"users"`
	DaySimSecs  float64  `json:"day_sim_seconds"`
	TimeScale   float64  `json:"time_scale"`
	AggSimSecs  float64  `json:"agg_sim_seconds"`
	MeanEvents  int      `json:"mean_events"`
	BatchEvents int      `json:"batch_events"`
	Predictors  []string `json:"predictors"`
	Traces      []string `json:"traces"`
}

// LatencyMS is the run-wide batch latency summary.
type LatencyMS struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Report is the JSON artifact of one capload run.
type Report struct {
	Tool        string       `json:"tool"`
	GeneratedAt string       `json:"generated_at"`
	Config      ReportConfig `json:"config"`
	Totals      Totals       `json:"totals"`
	Latency     LatencyMS    `json:"batch_latency_ms"`
	ElapsedSecs float64      `json:"elapsed_seconds"`
	SLO         []SLOResult  `json:"slo,omitempty"`
	Crosscheck  *Crosscheck  `json:"metrics_crosscheck,omitempty"`
}

// BuildReport assembles the report from a finished run. generatedAt
// comes from the caller's injected clock.
func BuildReport(cfg Config, engineCfg EngineConfig, res *Result, generatedAt time.Time) *Report {
	return &Report{
		Tool:        "capload",
		GeneratedAt: generatedAt.UTC().Format(time.RFC3339),
		Config: ReportConfig{
			Seed:        cfg.Seed,
			Profile:     string(cfg.Profile),
			Sessions:    cfg.Sessions,
			Users:       engineCfg.Users,
			DaySimSecs:  cfg.Day.Seconds(),
			TimeScale:   engineCfg.TimeScale,
			AggSimSecs:  engineCfg.AggInterval.Seconds(),
			MeanEvents:  cfg.MeanEvents,
			BatchEvents: cfg.BatchEvents,
			Predictors:  cfg.Predictors,
			Traces:      cfg.Traces,
		},
		Totals: res.Totals,
		Latency: LatencyMS{
			P50: res.Latency.QuantileMS(0.50),
			P95: res.Latency.QuantileMS(0.95),
			P99: res.Latency.QuantileMS(0.99),
		},
		ElapsedSecs: res.Elapsed.Seconds(),
	}
}

// WriteJSON renders the report with stable field order and a trailing
// newline.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteTimelineCSV renders the per-interval timeline.
func WriteTimelineCSV(w io.Writer, rows []BucketRow) error {
	if _, err := fmt.Fprintln(w, "sim_start_seconds,sessions_started,sessions_rejected,batches_delivered,events_acked,p50_ms,p95_ms,p99_ms,open_429,budget_429,too_large_413,conflict_409,evicted_404,errors"); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%d,%d,%d,%d,%d,%d\n",
			int64(row.SimStart.Seconds()),
			row.SessionsStarted, row.SessionsRejected,
			row.BatchesDelivered, row.EventsAcked,
			row.P50, row.P95, row.P99,
			row.Open429, row.Budget429, row.TooLarge413,
			row.Conflict409, row.Evicted404, row.Errors); err != nil {
			return err
		}
	}
	return nil
}

// CrosscheckEntry compares one server counter's delta over the run
// against the client's own ledger for the same event class.
type CrosscheckEntry struct {
	Metric string `json:"metric"`
	Server int64  `json:"server"`
	Client int64  `json:"client"`
	OK     bool   `json:"ok"`
}

// Crosscheck is the reconciliation of the client's books against the
// server's /metrics counters, scraped before and after the run. Exact
// agreement requires capload to be the server's only client; Note
// flags conditions (transport errors) that can legitimately break it.
type Crosscheck struct {
	OK      bool              `json:"ok"`
	Checks  []CrosscheckEntry `json:"checks"`
	Evicted int64             `json:"server_evictions"` // informational: TTL/janitor evictions observed server-side
	Note    string            `json:"note,omitempty"`
}

// BuildCrosscheck reconciles totals against the two scrapes. The
// counter list is fixed and ordered — no map iteration feeds the
// report.
func BuildCrosscheck(before, after map[string]int64, t Totals) *Crosscheck {
	delta := func(name string) int64 { return after[name] - before[name] }
	checks := []CrosscheckEntry{
		{Metric: "capserve_sessions_opened_total", Server: delta("capserve_sessions_opened_total"), Client: t.SessionsOpened},
		{Metric: "capserve_sessions_closed_total", Server: delta("capserve_sessions_closed_total"), Client: t.SessionsClosed},
		{Metric: "capserve_sessions_rejected_total", Server: delta("capserve_sessions_rejected_total"), Client: t.Open429},
		{Metric: "capserve_events_ingested_total", Server: delta("capserve_events_ingested_total"), Client: t.EventsAcked},
		{Metric: "capserve_batches_served_total", Server: delta("capserve_batches_served_total"), Client: t.PostsOK},
		{Metric: "capserve_batches_dropped_budget_total", Server: delta("capserve_batches_dropped_budget_total"), Client: t.Budget429},
		{Metric: "capserve_batches_rejected_too_large_total", Server: delta("capserve_batches_rejected_too_large_total"), Client: t.TooLarge413},
		{Metric: "capserve_batches_conflict_total", Server: delta("capserve_batches_conflict_total"), Client: t.Conflict409},
	}
	cc := &Crosscheck{OK: true, Evicted: delta("capserve_sessions_evicted_total")}
	for i := range checks {
		checks[i].OK = checks[i].Server == checks[i].Client
		if !checks[i].OK {
			cc.OK = false
		}
	}
	cc.Checks = checks
	if t.Errors > 0 {
		cc.Note = fmt.Sprintf("%d transport errors during the run; responses lost in flight can legitimately skew client-side counts", t.Errors)
	}
	return cc
}
