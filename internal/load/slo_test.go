package load

import (
	"strings"
	"testing"
)

// TestParseSLOs: the happy path round-trips, and every malformation is
// a named error — a misspelled gate must not silently pass.
func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("p99_batch_ms=50, reject_rate=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 || slos[0].Key != "p99_batch_ms" || slos[0].Limit != 50 ||
		slos[1].Key != "reject_rate" || slos[1].Limit != 0.01 {
		t.Fatalf("parsed %+v", slos)
	}

	if slos, err := ParseSLOs("  "); err != nil || slos != nil {
		t.Fatalf("empty spec: slos=%v err=%v, want nil,nil", slos, err)
	}
	for _, bad := range []string{
		"p99_batch_ms",        // no limit
		"p99_latency_ms=50",   // unknown key
		"p99_batch_ms=fifty",  // malformed limit
		"p99_batch_ms=-1",     // negative limit
		"reject_rate=0.01=oo", // stray equals
	} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted a malformed spec", bad)
		}
	}
	if _, err := ParseSLOs("p99_latency_ms=50"); !strings.Contains(err.Error(), "p99_batch_ms") {
		t.Errorf("unknown-key error %q does not list the valid keys", err)
	}
}

// TestEvaluateSLOs: at-limit passes, over-limit fails, and the derived
// rates divide by the right denominators.
func TestEvaluateSLOs(t *testing.T) {
	totals := Totals{
		SessionsPlanned:  200,
		SessionsRejected: 10,
		PostsOK:          900,
		Budget429:        100,
		TooLarge413:      100,
		Errors:           2,
		Evicted404:       3,
	}
	lat := LatencyMS{P50: 1, P95: 20, P99: 50}

	slos, err := ParseSLOs("p99_batch_ms=50,reject_rate=0.04,drop_rate=0.2,too_large_rate=0.1,error_rate=0.01,evicted_sessions=3")
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateSLOs(slos, totals, lat)
	want := map[string]struct {
		actual float64
		pass   bool
	}{
		"p99_batch_ms":     {50, true}, // at-limit passes
		"reject_rate":      {0.05, false},
		"drop_rate":        {0.1, true},
		"too_large_rate":   {0.1, true},
		"error_rate":       {0.01, true},
		"evicted_sessions": {3, true},
	}
	for _, r := range res {
		w, ok := want[r.Key]
		if !ok {
			t.Fatalf("unexpected key %q", r.Key)
		}
		if r.Actual != w.actual || r.Pass != w.pass {
			t.Errorf("%s: actual=%g pass=%v, want actual=%g pass=%v", r.Key, r.Actual, r.Pass, w.actual, w.pass)
		}
	}
	if n := SLOViolations(res); n != 1 {
		t.Fatalf("violations = %d, want 1 (reject_rate)", n)
	}

	// Zero denominators are rates of zero, not NaN.
	res = EvaluateSLOs(slos, Totals{}, LatencyMS{})
	for _, r := range res {
		if r.Actual != 0 && r.Key != "p99_batch_ms" {
			t.Errorf("%s on empty totals = %g, want 0", r.Key, r.Actual)
		}
	}
}
