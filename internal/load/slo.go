package load

// The SLO gate: "-slo p99_batch_ms=50,reject_rate=0.01" turns the
// report's measurements into pass/fail verdicts, so a CI soak can
// enforce "the admission constants hold these latencies under this
// overload" the same way benchsweep -gate enforces throughput and
// capvet enforces determinism.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SLO is one objective: a named measurement must not exceed Limit.
type SLO struct {
	Key   string
	Limit float64
}

// SLOResult is one evaluated objective.
type SLOResult struct {
	Key    string  `json:"key"`
	Limit  float64 `json:"limit"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

// sloKeys maps each supported objective onto its measurement. Rates are
// fractions of the relevant attempt class; counts compare directly.
var sloKeys = map[string]func(t Totals, lat LatencyMS) float64{
	"p50_batch_ms": func(t Totals, lat LatencyMS) float64 { return lat.P50 },
	"p95_batch_ms": func(t Totals, lat LatencyMS) float64 { return lat.P95 },
	"p99_batch_ms": func(t Totals, lat LatencyMS) float64 { return lat.P99 },
	// reject_rate: sessions that never got in / sessions planned.
	"reject_rate": func(t Totals, lat LatencyMS) float64 {
		return ratio(t.SessionsRejected, t.SessionsPlanned)
	},
	// drop_rate: event batches refused for budget / batches attempted.
	"drop_rate": func(t Totals, lat LatencyMS) float64 {
		return ratio(t.Budget429, t.PostsOK+t.Budget429)
	},
	// too_large_rate: 413 responses / successful posts (a measure of
	// how often the body cap forces splits).
	"too_large_rate": func(t Totals, lat LatencyMS) float64 {
		return ratio(t.TooLarge413, t.PostsOK+t.TooLarge413)
	},
	// error_rate: transport failures / sessions planned.
	"error_rate": func(t Totals, lat LatencyMS) float64 {
		return ratio(t.Errors, t.SessionsPlanned)
	},
	// evicted_sessions: absolute count of sessions lost to eviction.
	"evicted_sessions": func(t Totals, lat LatencyMS) float64 {
		return float64(t.Evicted404)
	},
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// SLOKeys lists the supported objective names, sorted.
func SLOKeys() []string {
	keys := make([]string, 0, len(sloKeys))
	for k := range sloKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParseSLOs parses "key=limit,key=limit". Unknown keys and malformed
// limits are errors — a misspelled gate that silently passes is worse
// than no gate.
func ParseSLOs(spec string) ([]SLO, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []SLO
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return nil, fmt.Errorf("load: SLO %q is not key=limit", part)
		}
		key = strings.TrimSpace(key)
		if _, ok := sloKeys[key]; !ok {
			return nil, fmt.Errorf("load: unknown SLO key %q (one of %s)", key, strings.Join(SLOKeys(), ", "))
		}
		limit, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || limit < 0 {
			return nil, fmt.Errorf("load: SLO %s has malformed limit %q", key, val)
		}
		out = append(out, SLO{Key: key, Limit: limit})
	}
	return out, nil
}

// EvaluateSLOs renders verdicts against a run's measurements. An
// objective passes when the measurement is at or below its limit.
func EvaluateSLOs(slos []SLO, t Totals, lat LatencyMS) []SLOResult {
	out := make([]SLOResult, len(slos))
	for i, s := range slos {
		actual := sloKeys[s.Key](t, lat)
		out[i] = SLOResult{Key: s.Key, Limit: s.Limit, Actual: actual, Pass: actual <= s.Limit}
	}
	return out
}

// SLOViolations counts failing objectives.
func SLOViolations(results []SLOResult) int {
	n := 0
	for _, r := range results {
		if !r.Pass {
			n++
		}
	}
	return n
}
