package load

// The execution half of capload: an Engine replays a Schedule against
// a live capserve through a pool of virtual users. Each user owns a
// plain HTTP client; each session opens over POST /v1/sessions, streams
// its pre-encoded v3 batches at their compressed due times, and closes
// with DELETE. The server's backpressure is honoured, tallied and
// reported: 429 waits out Retry-After, 413 splits the batch, 409/404
// end the session.
//
// Determinism: the engine reads time only through the injected
// now()/sleep() pair, and every tally it keeps is commutative (atomic
// sums and mergeable sketches), so a run's totals and timeline are a
// pure function of (schedule, server behaviour) regardless of how the
// pool's goroutines interleave.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"capred/internal/trace"
	"capred/internal/workload"
)

// EngineConfig wires an Engine to a server and a schedule.
type EngineConfig struct {
	// BaseURL is the capserve root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient issues every request; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Schedule is the arrival plan to replay.
	Schedule *Schedule
	// TimeScale compresses simulated time: 120 replays a 24h schedule
	// in 12 minutes. Values <= 1 replay in real time.
	TimeScale float64
	// Users is the virtual-user pool size — the max concurrently
	// in-flight sessions. Sessions whose due time arrives while every
	// user is busy start late, exactly like real clients behind an
	// overloaded fleet.
	Users int
	// MaxTries bounds 429 retries per request.
	MaxTries int
	// AggInterval is the timeline bucket width in simulated time.
	AggInterval time.Duration
	// Now and Sleep are the injected clock. Nil defaults to the wall
	// clock; the seeded-determinism golden injects a fixed pair.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// Totals is the run's aggregate ledger. Response-class fields count
// HTTP responses one for one with the server's counters, which is what
// makes the /metrics crosscheck exact.
type Totals struct {
	SessionsPlanned   int64 `json:"sessions_planned"`
	SessionsOpened    int64 `json:"sessions_opened"`
	SessionsRejected  int64 `json:"sessions_rejected"` // open retries exhausted on 429
	SessionsCompleted int64 `json:"sessions_completed"`
	SessionsAborted   int64 `json:"sessions_aborted"` // opened but ended early (budget, conflict, eviction, error)
	SessionsClosed    int64 `json:"sessions_closed"`  // DELETE reached the server and found the session

	BatchesPlanned   int64 `json:"batches_planned"`
	BatchesDelivered int64 `json:"batches_delivered"` // plan batches fully acknowledged
	PostsOK          int64 `json:"posts_ok"`          // 200 events responses (splits inflate this)
	EventsPlanned    int64 `json:"events_planned"`
	EventsAcked      int64 `json:"events_acked"`

	Open429     int64 `json:"open_429"`      // 429 responses to session opens
	Budget429   int64 `json:"budget_429"`    // 429 responses to event posts
	TooLarge413 int64 `json:"too_large_413"` // 413 responses
	Conflict409 int64 `json:"conflict_409"`  // 409 responses to event posts
	Evicted404  int64 `json:"evicted_404"`   // sessions found evicted mid-stream
	Truncated   int64 `json:"truncated_closes"`
	Errors      int64 `json:"errors"` // transport failures and unclassified statuses
}

// BucketRow is one timeline interval: counts of what happened to work
// whose *scheduled* time fell in the bucket (scale-invariant, so the
// same schedule yields the same timeline at any compression).
type BucketRow struct {
	SimStart         time.Duration
	SessionsStarted  int64
	SessionsRejected int64
	BatchesDelivered int64
	EventsAcked      int64
	P50, P95, P99    float64 // batch latency, ms
	Open429          int64
	Budget429        int64
	TooLarge413      int64
	Conflict409      int64
	Evicted404       int64
	Errors           int64
}

// Result is everything a run measured.
type Result struct {
	Totals   Totals
	Latency  *Sketch // batch latency across the whole run
	Timeline []BucketRow
	Elapsed  time.Duration // wall time of the replay
}

// bucket shards the tallies per timeline interval. Counters are atomic
// and the sketch is mutex-merged: every update is commutative, so
// goroutine interleaving cannot change the result.
type bucket struct {
	started, rejected  atomic.Int64
	batches, events    atomic.Int64
	open429, budget429 atomic.Int64
	tooLarge, conflict atomic.Int64
	evicted, errs      atomic.Int64
	mu                 sync.Mutex
	lat                Sketch
}

type tally struct {
	agg     time.Duration
	buckets []bucket

	opened, rejected, completed, aborted, closed atomic.Int64
	batchesDone, postsOK, eventsAcked            atomic.Int64
	open429, budget429, tooLarge413              atomic.Int64
	conflict409, evicted404, truncated, errs     atomic.Int64
}

func (t *tally) bucket(sim time.Duration) *bucket {
	i := int(sim / t.agg)
	if i < 0 {
		i = 0
	}
	if i >= len(t.buckets) {
		i = len(t.buckets) - 1
	}
	return &t.buckets[i]
}

// traceStream is one pre-encoded v3 byte stream with batch boundaries
// marked, shared read-only by every session on that trace.
type traceStream struct {
	data  []byte
	marks []int // marks[i] = end offset of batch i
}

func (ts *traceStream) batch(i int) []byte {
	start := 0
	if i > 0 {
		start = ts.marks[i-1]
	}
	return ts.data[start:ts.marks[i]]
}

// Engine replays one schedule. Build with NewEngine, run once.
type Engine struct {
	cfg     EngineConfig
	now     func() time.Time
	sleep   func(time.Duration)
	streams map[string]*traceStream
}

// NewEngine validates cfg and pre-encodes every trace the schedule
// streams (one encode per distinct trace, shared by all its sessions).
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Schedule == nil || len(cfg.Schedule.Sessions) == 0 {
		return nil, fmt.Errorf("load: engine needs a non-empty schedule")
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("load: engine needs a base URL")
	}
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("load: users must be positive, got %d", cfg.Users)
	}
	if cfg.AggInterval <= 0 {
		return nil, fmt.Errorf("load: aggregation interval must be positive, got %v", cfg.AggInterval)
	}
	if cfg.MaxTries <= 0 {
		cfg.MaxTries = 8
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	e := &Engine{cfg: cfg, now: cfg.Now, sleep: cfg.Sleep}
	if e.now == nil {
		e.now = time.Now
	}
	if e.sleep == nil {
		e.sleep = time.Sleep
	}
	sched := cfg.Schedule
	maxEvents := sched.MaxBatches() * sched.Cfg.BatchEvents
	e.streams = make(map[string]*traceStream, len(sched.Cfg.Traces))
	for _, name := range sched.Cfg.Traces {
		ts, err := encodeStream(name, maxEvents, sched.Cfg.BatchEvents)
		if err != nil {
			return nil, err
		}
		e.streams[name] = ts
	}
	return e, nil
}

// encodeStream renders n events of the named workload trace as one v3
// stream, recording the byte offset at every batch boundary.
func encodeStream(name string, n, batchEvents int) (*traceStream, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("load: unknown trace %q", name)
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	src := trace.NewLimit(spec.Open(), int64(n))
	count := 0
	var marks []int
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Emit(ev); err != nil {
			return nil, fmt.Errorf("load: encoding %s: %w", name, err)
		}
		count++
		if count%batchEvents == 0 {
			if err := w.Flush(); err != nil {
				return nil, err
			}
			marks = append(marks, buf.Len())
		}
	}
	if err := src.Err(); err != nil {
		return nil, fmt.Errorf("load: generating %s: %w", name, err)
	}
	if count != n {
		return nil, fmt.Errorf("load: trace %s yielded %d of %d events", name, count, n)
	}
	return &traceStream{data: buf.Bytes(), marks: marks}, nil
}

// Run replays the schedule and blocks until every session finished or
// ctx was cancelled. It is single-shot.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	sched := e.cfg.Schedule
	nb := int(sched.End()/e.cfg.AggInterval) + 1
	t := &tally{agg: e.cfg.AggInterval, buckets: make([]bucket, nb)}

	start := e.now()
	work := make(chan int)
	var wg sync.WaitGroup
	for u := 0; u < e.cfg.Users; u++ {
		wg.Add(1)
		go func(ctx context.Context) {
			defer wg.Done()
			c := &Client{
				HC:       e.cfg.HTTPClient,
				Base:     e.cfg.BaseURL,
				MaxTries: e.cfg.MaxTries,
				Now:      e.now,
				Sleep:    e.sleep,
			}
			for idx := range work {
				if ctx.Err() != nil {
					continue // drain the channel; nothing else starts
				}
				e.runSession(ctx, c, sched.Sessions[idx], start, t)
			}
		}(ctx)
	}
	for i := range sched.Sessions {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := e.now().Sub(start)

	// Merge and snapshot. Totals and rows are sums of commutative
	// tallies; iteration here is over slices in index order.
	res := &Result{Latency: &Sketch{}, Elapsed: elapsed}
	res.Totals = Totals{
		SessionsPlanned:   int64(len(sched.Sessions)),
		SessionsOpened:    t.opened.Load(),
		SessionsRejected:  t.rejected.Load(),
		SessionsCompleted: t.completed.Load(),
		SessionsAborted:   t.aborted.Load(),
		SessionsClosed:    t.closed.Load(),
		BatchesDelivered:  t.batchesDone.Load(),
		PostsOK:           t.postsOK.Load(),
		EventsAcked:       t.eventsAcked.Load(),
		Open429:           t.open429.Load(),
		Budget429:         t.budget429.Load(),
		TooLarge413:       t.tooLarge413.Load(),
		Conflict409:       t.conflict409.Load(),
		Evicted404:        t.evicted404.Load(),
		Truncated:         t.truncated.Load(),
		Errors:            t.errs.Load(),
	}
	for _, s := range sched.Sessions {
		res.Totals.BatchesPlanned += int64(len(s.Batches))
	}
	res.Totals.EventsPlanned = res.Totals.BatchesPlanned * int64(sched.Cfg.BatchEvents)
	res.Timeline = make([]BucketRow, nb)
	for i := range t.buckets {
		b := &t.buckets[i]
		res.Latency.Merge(&b.lat)
		res.Timeline[i] = BucketRow{
			SimStart:         time.Duration(i) * e.cfg.AggInterval,
			SessionsStarted:  b.started.Load(),
			SessionsRejected: b.rejected.Load(),
			BatchesDelivered: b.batches.Load(),
			EventsAcked:      b.events.Load(),
			P50:              b.lat.QuantileMS(0.50),
			P95:              b.lat.QuantileMS(0.95),
			P99:              b.lat.QuantileMS(0.99),
			Open429:          b.open429.Load(),
			Budget429:        b.budget429.Load(),
			TooLarge413:      b.tooLarge.Load(),
			Conflict409:      b.conflict.Load(),
			Evicted404:       b.evicted.Load(),
			Errors:           b.errs.Load(),
		}
	}
	return res, ctx.Err()
}

// sleepUntil waits until the schedule offset `due` (already compressed
// to real time) has elapsed since start. A due time already in the past
// returns immediately — a saturated pool runs late, it never skips.
func (e *Engine) sleepUntil(start time.Time, due time.Duration) {
	if wait := due - e.now().Sub(start); wait > 0 {
		e.sleep(wait)
	}
}

// statusOf unwraps the HTTP status from an error chain, 0 for
// transport-level failures.
func statusOf(err error) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status
	}
	return 0
}

// runSession executes one planned session end to end.
func (e *Engine) runSession(ctx context.Context, c *Client, sp Session, start time.Time, t *tally) {
	scale := e.cfg.TimeScale
	e.sleepUntil(start, RealOffset(sp.Start, scale))
	sb := t.bucket(sp.Start)

	c.On429 = func() { t.open429.Add(1); sb.open429.Add(1) }
	c.On413 = nil
	id, err := c.OpenSession(sp.Predictor, 0)
	if err != nil {
		if statusOf(err) == http.StatusTooManyRequests {
			t.rejected.Add(1)
			sb.rejected.Add(1)
		} else {
			t.errs.Add(1)
			sb.errs.Add(1)
		}
		return
	}
	t.opened.Add(1)
	sb.started.Add(1)

	stream := e.streams[sp.Trace]
	gone := false // 404: the server evicted the session; nothing left to close
	clean := true
	for _, b := range sp.Batches {
		if ctx.Err() != nil {
			clean = false
			break
		}
		e.sleepUntil(start, RealOffset(b.At, scale))
		bb := t.bucket(b.At)
		c.On429 = func() { t.budget429.Add(1); bb.budget429.Add(1) }
		c.On413 = func() { t.tooLarge413.Add(1); bb.tooLarge.Add(1) }
		t0 := e.now()
		acked, posts, err := c.PostEvents(id, stream.batch(b.Index))
		lat := e.now().Sub(t0)
		t.eventsAcked.Add(acked)
		bb.events.Add(acked)
		t.postsOK.Add(int64(posts))
		if err != nil {
			clean = false
			switch statusOf(err) {
			case http.StatusConflict:
				t.conflict409.Add(1)
				bb.conflict.Add(1)
			case http.StatusNotFound:
				t.evicted404.Add(1)
				bb.evicted.Add(1)
				gone = true
			case http.StatusTooManyRequests:
				// retry budget exhausted on event-budget 429s; each 429
				// response was already tallied by the hook
			default:
				t.errs.Add(1)
				bb.errs.Add(1)
			}
			break
		}
		t.batchesDone.Add(1)
		bb.batches.Add(1)
		bb.mu.Lock()
		bb.lat.Observe(lat)
		bb.mu.Unlock()
	}

	if !gone {
		c.On429 = nil
		c.On413 = nil
		switch err := c.CloseSession(id); statusOf(err) {
		case 0:
			if err == nil {
				t.closed.Add(1)
			} else {
				clean = false
				t.errs.Add(1)
				sb.errs.Add(1)
			}
		case http.StatusBadRequest:
			// The stream ended mid-event (a split delivered a partial
			// tail before failing); the server still closed it.
			t.closed.Add(1)
			t.truncated.Add(1)
			clean = false
		case http.StatusNotFound:
			t.evicted404.Add(1)
			sb.evicted.Add(1)
			clean = false
		default:
			clean = false
			t.errs.Add(1)
			sb.errs.Add(1)
		}
	}
	if clean {
		t.completed.Add(1)
	} else {
		t.aborted.Add(1)
	}
}
