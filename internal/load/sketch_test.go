package load

import (
	"testing"
	"time"
)

// TestSketchQuantileRanks: quantiles are exact in rank and come back as
// the holding bucket's upper bound.
func TestSketchQuantileRanks(t *testing.T) {
	var s Sketch
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty sketch p99 = %v, want 0", got)
	}
	// 99 observations at ~1ms, one at ~1s: p50 lands in the 1ms bucket,
	// p99 still 1ms (rank 99), p100 in the 1s bucket.
	for i := 0; i < 99; i++ {
		s.Observe(time.Millisecond)
	}
	s.Observe(time.Second)
	if s.Count() != 100 {
		t.Fatalf("count = %d, want 100", s.Count())
	}
	p50, p100 := s.Quantile(0.50), s.Quantile(1.0)
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms (its bucket's upper bound)", p50)
	}
	if p100 < time.Second || p100 > 2*time.Second {
		t.Fatalf("p100 = %v, want ~1s", p100)
	}
	if p99 := s.Quantile(0.99); p99 != p50 {
		t.Fatalf("p99 = %v, want %v (rank 99 of 100 is still the 1ms bucket)", p99, p50)
	}
}

// TestSketchMergeOrderInsensitive: merging shards in any order yields
// the same sketch — the property the engine's drain-then-merge relies
// on.
func TestSketchMergeOrderInsensitive(t *testing.T) {
	durations := []time.Duration{
		0, time.Microsecond, 50 * time.Microsecond, time.Millisecond,
		7 * time.Millisecond, 300 * time.Millisecond, 2 * time.Second, time.Hour,
	}
	var a, b, c Sketch
	for i, d := range durations {
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		c.Observe(d)
	}
	var ab, ba Sketch
	ab.Merge(&a)
	ab.Merge(&b)
	ba.Merge(&b)
	ba.Merge(&a)
	if ab != ba {
		t.Fatal("merge order changed the sketch")
	}
	if ab != c {
		t.Fatal("merged shards differ from a single sketch over the same observations")
	}
}

// TestSketchBoundsMonotone: the bucket bounds strictly increase and
// bucketOf is consistent with them.
func TestSketchBoundsMonotone(t *testing.T) {
	for i := 1; i < sketchBuckets; i++ {
		if sketchBounds[i] <= sketchBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, sketchBounds[i], sketchBounds[i-1])
		}
	}
	for i := 0; i < sketchBuckets; i++ {
		if got := bucketOf(sketchBounds[i] - 1); got != i {
			t.Fatalf("bucketOf(bounds[%d]-1) = %d, want %d", i, got, i)
		}
	}
	// Beyond the last bound everything lands in the final bucket.
	if got := bucketOf(sketchBounds[sketchBuckets-1] * 2); got != sketchBuckets-1 {
		t.Fatalf("overflow bucket = %d, want %d", got, sketchBuckets-1)
	}
}
