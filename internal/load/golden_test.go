package load

import (
	"bytes"
	"context"
	"flag"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"capred/internal/server"
)

var update = flag.Bool("update", false, "rewrite the capload golden artifacts")

// goldenFixture runs a small seeded schedule against an in-process
// capserve with a frozen clock on both sides and a no-op sleep: every
// latency observes as zero and every tally is a pure function of
// (seed, server config), so the rendered report and timeline are
// byte-stable across runs and machines.
func goldenFixture(t *testing.T) (reportJSON, timelineCSV []byte) {
	t.Helper()
	frozen := time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)

	scfg := server.DefaultConfig()
	scfg.Now = func() time.Time { return frozen }
	scfg.SweepInterval = 0 // no janitor: wall time must not influence the run
	scfg.SessionTTL = 0
	// Small enough that the schedule provokes real backpressure: the
	// global budget runs dry partway through, so the golden pins 429
	// accounting, not just the happy path.
	scfg.MaxSessions = 8
	scfg.GlobalEventBudget = 120_000
	srv := server.New(scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	cfg := Config{
		Profile:     ProfileBursty,
		Sessions:    40,
		Day:         24 * time.Hour,
		Seed:        1,
		MeanEvents:  4000,
		BatchEvents: 2000,
		Think:       5 * time.Minute,
		Predictors:  []string{"hybrid", "stride"},
		Traces:      []string{"INT_xli", "TPC_t23"},
	}
	sched, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One user: with a frozen clock and no-op sleep, a single worker
	// replays the schedule in strict arrival order, so even the
	// server-side admission outcomes are reproducible.
	ecfg := EngineConfig{
		BaseURL:     "http://" + ln.Addr().String(),
		Schedule:    sched,
		TimeScale:   1,
		Users:       1,
		MaxTries:    2,
		AggInterval: 4 * time.Hour,
		Now:         func() time.Time { return frozen },
		Sleep:       func(time.Duration) {},
	}
	engine, err := NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}

	scraper := &Client{HC: http.DefaultClient, Base: ecfg.BaseURL, MaxTries: 1,
		Now: func() time.Time { return frozen }, Sleep: func(time.Duration) {}}
	before, err := scraper.Scrape()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	after, err := scraper.Scrape()
	if err != nil {
		t.Fatal(err)
	}

	report := BuildReport(cfg, ecfg, res, frozen)
	slos, err := ParseSLOs("p99_batch_ms=1000,error_rate=0")
	if err != nil {
		t.Fatal(err)
	}
	report.SLO = EvaluateSLOs(slos, res.Totals, report.Latency)
	report.Crosscheck = BuildCrosscheck(before, after, res.Totals)
	if !report.Crosscheck.OK {
		for _, c := range report.Crosscheck.Checks {
			if !c.OK {
				t.Errorf("crosscheck %s: server %d, client %d", c.Metric, c.Server, c.Client)
			}
		}
		t.Fatal("client books disagree with the server's /metrics deltas")
	}

	var rj, tc bytes.Buffer
	if err := report.WriteJSON(&rj); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineCSV(&tc, res.Timeline); err != nil {
		t.Fatal(err)
	}
	return rj.Bytes(), tc.Bytes()
}

// TestGoldenReport: same seed + schedule → byte-identical JSON report
// and timeline CSV, run to run and against the committed goldens.
func TestGoldenReport(t *testing.T) {
	r1, c1 := goldenFixture(t)
	r2, c2 := goldenFixture(t)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("two seeded runs rendered different reports:\n--- run 1\n%s\n--- run 2\n%s", r1, r2)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("two seeded runs rendered different timelines:\n--- run 1\n%s\n--- run 2\n%s", c1, c2)
	}

	reportPath := filepath.Join("testdata", "golden_report.json")
	csvPath := filepath.Join("testdata", "golden_timeline.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(reportPath, r1, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvPath, c1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s and %s", reportPath, csvPath)
		return
	}
	wantReport, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("%v (run with -update to write the goldens)", err)
	}
	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, wantReport) {
		t.Errorf("report drifted from the golden:\n--- got\n%s\n--- want\n%s", r1, wantReport)
	}
	if !bytes.Equal(c1, wantCSV) {
		t.Errorf("timeline drifted from the golden:\n--- got\n%s\n--- want\n%s", c1, wantCSV)
	}
}
