package load

import (
	"reflect"
	"testing"
	"time"
)

func testScheduleConfig() Config {
	return Config{
		Profile:     ProfileBursty,
		Sessions:    200,
		Day:         24 * time.Hour,
		Seed:        7,
		MeanEvents:  4000,
		BatchEvents: 1000,
		Think:       5 * time.Minute,
		Predictors:  []string{"hybrid", "stride"},
		Traces:      []string{"INT_xli", "TPC_t23"},
	}
}

// TestGenerateDeterministic: the schedule is a pure function of the
// config — two generations are deeply equal.
func TestGenerateDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		cfg := testScheduleConfig()
		cfg.Profile = p
		a, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		b, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same config produced different schedules", p)
		}
	}
}

// TestGenerateInvariants: arrival order, in-session monotonicity,
// bounds, and exact session count for every profile.
func TestGenerateInvariants(t *testing.T) {
	for _, p := range Profiles() {
		cfg := testScheduleConfig()
		cfg.Profile = p
		s, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(s.Sessions) != cfg.Sessions {
			t.Fatalf("%s: %d sessions, want %d", p, len(s.Sessions), cfg.Sessions)
		}
		var prev time.Duration
		for i, sess := range s.Sessions {
			if sess.Index != i {
				t.Fatalf("%s: session %d has index %d", p, i, sess.Index)
			}
			if sess.Start < prev {
				t.Fatalf("%s: session %d starts at %v before predecessor %v", p, i, sess.Start, prev)
			}
			prev = sess.Start
			if sess.Start < 0 || sess.Start >= cfg.Day {
				t.Fatalf("%s: session %d start %v outside [0, %v)", p, i, sess.Start, cfg.Day)
			}
			if len(sess.Batches) == 0 {
				t.Fatalf("%s: session %d has no batches", p, i)
			}
			if sess.Batches[0].At != sess.Start {
				t.Fatalf("%s: session %d first batch at %v, want start %v", p, i, sess.Batches[0].At, sess.Start)
			}
			for b := 1; b < len(sess.Batches); b++ {
				gap := sess.Batches[b].At - sess.Batches[b-1].At
				if gap <= 0 {
					t.Fatalf("%s: session %d batch %d has non-positive gap %v", p, i, b, gap)
				}
				if gap < cfg.Think/2 || gap >= cfg.Think*3/2 {
					t.Fatalf("%s: session %d batch %d gap %v outside [%v, %v)", p, i, b, gap, cfg.Think/2, cfg.Think*3/2)
				}
			}
		}
	}
}

// TestGenerateMeanEvents: the realised mean events per session lands
// near the configured mean (within 15% at 200 sessions).
func TestGenerateMeanEvents(t *testing.T) {
	cfg := testScheduleConfig()
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events int64
	for _, sess := range s.Sessions {
		events += sess.Events(cfg.BatchEvents)
	}
	mean := float64(events) / float64(len(s.Sessions))
	want := float64(cfg.MeanEvents)
	if mean < 0.85*want || mean > 1.15*want {
		t.Fatalf("mean events per session %.0f, want within 15%% of %d", mean, cfg.MeanEvents)
	}
}

// TestProfilesShapeArrivals: bursty concentrates arrivals (some slot
// sees far more than the uniform share); ramp's second half outweighs
// its first; diurnal's night is quieter than its midday.
func TestProfilesShapeArrivals(t *testing.T) {
	halves := func(p Profile) (first, second int) {
		cfg := testScheduleConfig()
		cfg.Profile = p
		cfg.Sessions = 2000
		s, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, sess := range s.Sessions {
			if sess.Start < cfg.Day/2 {
				first++
			} else {
				second++
			}
		}
		return
	}
	if f, s := halves(ProfileRamp); s <= f {
		t.Fatalf("ramp: second half %d arrivals <= first half %d", s, f)
	}

	cfg := testScheduleConfig()
	cfg.Profile = ProfileDiurnal
	cfg.Sessions = 2000
	sched, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	night, midday := 0, 0
	for _, sess := range sched.Sessions {
		h := int(sess.Start / time.Hour)
		switch {
		case h >= 1 && h < 5:
			night++
		case h >= 11 && h < 15:
			midday++
		}
	}
	if night >= midday {
		t.Fatalf("diurnal: night arrivals %d >= midday %d", night, midday)
	}
}

// TestRealOffset: compression is monotone, non-negative, and identity
// at scale <= 1.
func TestRealOffset(t *testing.T) {
	if got := RealOffset(time.Hour, 1); got != time.Hour {
		t.Fatalf("scale 1: %v", got)
	}
	if got := RealOffset(time.Hour, 0); got != time.Hour {
		t.Fatalf("scale 0: %v", got)
	}
	if got := RealOffset(24*time.Hour, 120); got != 12*time.Minute {
		t.Fatalf("24h at 120x = %v, want 12m", got)
	}
}

// TestValidateRejects: each invalid knob is named in the error.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"profile", func(c *Config) { c.Profile = "sinusoidal" }},
		{"sessions", func(c *Config) { c.Sessions = 0 }},
		{"day", func(c *Config) { c.Day = 0 }},
		{"batch events", func(c *Config) { c.BatchEvents = 0 }},
		{"mean events", func(c *Config) { c.MeanEvents = 10; c.BatchEvents = 100 }},
		{"think", func(c *Config) { c.Think = 0 }},
		{"predictors", func(c *Config) { c.Predictors = nil }},
		{"traces", func(c *Config) { c.Traces = nil }},
	}
	for _, tc := range cases {
		cfg := testScheduleConfig()
		tc.mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}
