package load

// The HTTP client side of the fleet: strict Retry-After parsing (shared
// with examples/serving — a malformed hint is an error, never a silent
// default) and a thin capserve API client that cooperates with the
// server's backpressure the way a production client must: 429 waits out
// the advertised delay with a bounded retry budget, 413 splits the
// batch and resends the halves.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// ParseRetryAfter parses an HTTP Retry-After header value. ok reports
// whether the header carried a value at all (empty string means the
// server sent no hint — callers pick their own fallback). Both RFC 9110
// forms are accepted: delay-seconds and an HTTP-date, the latter
// resolved against now. A present-but-malformed value is an error —
// silently defaulting would hide a broken server from the one client
// positioned to notice it.
func ParseRetryAfter(v string, now time.Time) (d time.Duration, ok bool, err error) {
	if v == "" {
		return 0, false, nil
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, true, fmt.Errorf("load: negative Retry-After %q", v)
		}
		return time.Duration(secs) * time.Second, true, nil
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true, nil
	}
	return 0, true, fmt.Errorf("load: malformed Retry-After %q: not delay-seconds or an HTTP-date", v)
}

// StatusError is a non-2xx reply with the code kept inspectable.
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string { return e.Msg }

// Client drives the capserve API for one virtual user. It is not safe
// for concurrent use; the engine gives each user its own.
type Client struct {
	HC       *http.Client
	Base     string
	MaxTries int                 // attempts per request before giving up on 429s
	Now      func() time.Time    // injected clock (latency + Retry-After dates)
	Sleep    func(time.Duration) // injected so compressed runs and tests control waiting

	// On429 is called once per 429 response, before the backoff sleep.
	On429 func()
	// On413 is called once per 413 response, before the split.
	On413 func()
}

// do issues one request and decodes the JSON reply into out (when
// non-nil). 429s wait the server's Retry-After (an absent hint falls
// back to 500ms; a malformed one is an error) and retry up to MaxTries;
// other non-2xx statuses return a *StatusError.
func (c *Client) do(method, url string, body []byte, out any) error {
	var lastErr error
	for try := 0; try < c.MaxTries; try++ {
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := c.HC.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if c.On429 != nil {
				c.On429()
			}
			lastErr = &StatusError{resp.StatusCode,
				fmt.Sprintf("%s %s: %s: %s", method, url, resp.Status, bytes.TrimSpace(data))}
			wait, ok, err := ParseRetryAfter(resp.Header.Get("Retry-After"), c.Now())
			if err != nil {
				return err
			}
			if !ok {
				wait = 500 * time.Millisecond
			}
			c.Sleep(wait)
			continue
		}
		if resp.StatusCode/100 != 2 {
			return &StatusError{resp.StatusCode,
				fmt.Sprintf("%s %s: %s: %s", method, url, resp.Status, bytes.TrimSpace(data))}
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return fmt.Errorf("load: gave up after %d attempts: %w", c.MaxTries, lastErr)
}

// batchReply mirrors the wire shape of POST /v1/sessions/{id}/events.
type batchReply struct {
	Events  int64 `json:"events"`
	Total   int64 `json:"total_events"`
	Batches int64 `json:"batches"`
}

// sessionReply mirrors the wire shape of session create/get/delete.
type sessionReply struct {
	ID string `json:"id"`
}

// OpenSession opens a prediction session bound to the predictor kind.
func (c *Client) OpenSession(predictor string, gap int) (string, error) {
	body, err := json.Marshal(map[string]any{"predictor": predictor, "gap": gap})
	if err != nil {
		return "", err
	}
	var s sessionReply
	if err := c.do("POST", c.Base+"/v1/sessions", body, &s); err != nil {
		return "", err
	}
	return s.ID, nil
}

// PostEvents streams one chunk of v3 trace bytes at the session,
// splitting on 413 (any byte split yields the same counters — the
// server buffers partial events across POSTs). It returns the events
// the server acknowledged and the number of 200 responses it took
// (splits inflate the latter; the /metrics crosscheck counts server
// responses, not plan batches).
func (c *Client) PostEvents(id string, data []byte) (acked int64, posts int, err error) {
	var reply batchReply
	err = c.do("POST", c.Base+"/v1/sessions/"+id+"/events", data, &reply)
	if err == nil {
		return reply.Events, 1, nil
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusRequestEntityTooLarge || len(data) < 2 {
		return 0, 0, err
	}
	if c.On413 != nil {
		c.On413()
	}
	half := len(data) / 2
	n1, p1, err := c.PostEvents(id, data[:half])
	if err != nil {
		return n1, p1, err
	}
	n2, p2, err := c.PostEvents(id, data[half:])
	return n1 + n2, p1 + p2, err
}

// CloseSession finishes the session (drains the prediction gap).
func (c *Client) CloseSession(id string) error {
	return c.do("DELETE", c.Base+"/v1/sessions/"+id, nil, nil)
}

// Scrape fetches and parses the server's /metrics page into a
// name→value map. Labelled series sum into their family name, which is
// what the crosscheck wants (per-predictor counters roll up to the
// session totals).
func (c *Client) Scrape() (map[string]int64, error) {
	req, err := http.NewRequest("GET", c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HC.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: GET /metrics: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseMetrics(data)
}

// parseMetrics reads the Prometheus text exposition format, keeping
// integer-valued series only (the summaries' float sums are not part of
// the crosscheck).
func parseMetrics(data []byte) (map[string]int64, error) {
	out := make(map[string]int64)
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		sp := bytes.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, value := line[:sp], line[sp+1:]
		v, err := strconv.ParseInt(string(value), 10, 64)
		if err != nil {
			continue // float-valued series (summaries) are not crosschecked
		}
		name := series
		if br := bytes.IndexByte(series, '{'); br >= 0 {
			name = series[:br]
		}
		out[string(name)] += v
	}
	return out, nil
}
