package trace

import (
	"strings"
	"testing"
)

func TestCollectCountsAndClassification(t *testing.T) {
	var evs []Event
	// IP 1: constant address.
	for i := 0; i < 5; i++ {
		evs = append(evs, Event{Kind: KindLoad, IP: 1, Addr: 0x100})
	}
	// IP 2: stride 8.
	for i := 0; i < 5; i++ {
		evs = append(evs, Event{Kind: KindLoad, IP: 2, Addr: uint32(0x200 + 8*i)})
	}
	// IP 3: irregular.
	for _, a := range []uint32{0x10, 0x80, 0x40, 0x20, 0x90} {
		evs = append(evs, Event{Kind: KindLoad, IP: 3, Addr: a})
	}
	// Branches: 3 taken, 1 not.
	evs = append(evs,
		Event{Kind: KindBranch, IP: 4, Taken: true},
		Event{Kind: KindBranch, IP: 4, Taken: true},
		Event{Kind: KindBranch, IP: 4, Taken: true},
		Event{Kind: KindBranch, IP: 4, Taken: false},
	)
	evs = append(evs, Event{Kind: KindALU, IP: 5}, Event{Kind: KindStore, IP: 6, Addr: 1})

	s, err := Collect(NewSliceSource(evs))
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != int64(len(evs)) {
		t.Errorf("Total = %d, want %d", s.Total, len(evs))
	}
	if s.ByKind[KindLoad] != 15 {
		t.Errorf("loads = %d, want 15", s.ByKind[KindLoad])
	}
	if s.LoadIPs != 3 {
		t.Errorf("LoadIPs = %d, want 3", s.LoadIPs)
	}
	if s.ConstantLoads != 1 || s.StrideLoads != 1 || s.OtherLoads != 1 {
		t.Errorf("classification = const %d stride %d other %d, want 1/1/1",
			s.ConstantLoads, s.StrideLoads, s.OtherLoads)
	}
	if got, want := s.TakenPct, 0.75; got != want {
		t.Errorf("TakenPct = %v, want %v", got, want)
	}
	if got := s.LoadShare(); got != 15.0/float64(len(evs)) {
		t.Errorf("LoadShare = %v", got)
	}
	if !strings.Contains(s.String(), "static loads: 3") {
		t.Errorf("String() missing static load count:\n%s", s.String())
	}
}

func TestCollectEmpty(t *testing.T) {
	s, err := Collect(NewSliceSource(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 0 || s.LoadShare() != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestSingleOccurrenceLoadIsConstant(t *testing.T) {
	// A load seen once has trivially constant behaviour.
	s, err := Collect(NewSliceSource([]Event{{Kind: KindLoad, IP: 9, Addr: 4}}))
	if err != nil {
		t.Fatal(err)
	}
	if s.ConstantLoads != 1 {
		t.Errorf("single-shot load classified as constant=%d", s.ConstantLoads)
	}
}

func TestTopLoads(t *testing.T) {
	var evs []Event
	for i := 0; i < 7; i++ {
		evs = append(evs, Event{Kind: KindLoad, IP: 100})
	}
	for i := 0; i < 3; i++ {
		evs = append(evs, Event{Kind: KindLoad, IP: 200})
	}
	evs = append(evs, Event{Kind: KindLoad, IP: 300})
	ips, counts, err := TopLoads(NewSliceSource(evs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 2 || ips[0] != 100 || ips[1] != 200 {
		t.Errorf("TopLoads ips = %v, want [100 200]", ips)
	}
	if counts[0] != 7 || counts[1] != 3 {
		t.Errorf("TopLoads counts = %v, want [7 3]", counts)
	}
}

func TestTopLoadsTieBreaksByIP(t *testing.T) {
	evs := []Event{
		{Kind: KindLoad, IP: 7},
		{Kind: KindLoad, IP: 3},
	}
	ips, _, err := TopLoads(NewSliceSource(evs), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 2 || ips[0] != 3 || ips[1] != 7 {
		t.Errorf("tie-break order = %v, want [3 7]", ips)
	}
}
