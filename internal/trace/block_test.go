package trace

// Block pipeline tests: SoA delivery must be indistinguishable from the
// per-event stream for every source and wrapper in the package, the
// zero-copy replay views must be tamper-proof against consumers that
// mutate their block, and the warm drain loop must not allocate.

import (
	"bytes"
	"errors"
	"testing"
)

// drainBlocks pulls every event out of src through NextBlock at the
// given block size, gathering into []Event for comparison, then checks
// Err.
func drainBlocks(t *testing.T, src Source, blockLen int) []Event {
	t.Helper()
	bs := AsBlocks(src)
	b := NewBlock(blockLen)
	var out []Event
	for {
		n, ok := bs.NextBlock(b, blockLen)
		out = b.AppendEvents(out)
		if n != b.Len() {
			t.Fatalf("NextBlock returned %d but resized the block to %d", n, b.Len())
		}
		if !ok {
			break
		}
	}
	if err := src.Err(); err != nil {
		t.Fatalf("Err after drain: %v", err)
	}
	return out
}

// warmReplayCursor materialises evs into a cache and returns an opener
// for warm cursors over the resident columns.
func warmReplayCursor(t *testing.T, evs []Event) func() Source {
	t.Helper()
	c := NewReplayCache(0)
	gen := func() Source { return NewSliceSource(evs) }
	c.Open("k", gen) // materialise
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stream not resident: %+v", st)
	}
	return func() Source { return c.Open("k", gen) }
}

// TestBlockMatchesPerEvent checks that every block-native implementation
// and the scatter adapter yield exactly the canonical per-event stream,
// across block sizes that divide, straddle and exceed the stream length.
func TestBlockMatchesPerEvent(t *testing.T) {
	want := testEvents(1000)
	sources := map[string]func() Source{
		"slice":   func() Source { return NewSliceSource(want) },
		"adapter": func() Source { return &unbatched{src: NewSliceSource(want)} },
		"limit": func() Source {
			return NewLimit(NewSliceSource(testEvents(4000)), 1000)
		},
		"corrupt-every-1e9": func() Source {
			return NewCorrupt(NewSliceSource(want), 1<<40, nil)
		},
		"replay-warm": warmReplayCursor(t, want),
	}
	for name, mk := range sources {
		for _, bl := range []int{1, 7, 100, 1000, 4096} {
			got := drainBlocks(t, mk(), bl)
			switch name {
			case "limit":
				eventsEqual(t, got, testEvents(4000)[:1000])
			case "replay-warm":
				// The cache stores the canonical form, like the v3 codec.
				eventsEqual(t, got, canonicalAll(want))
			default:
				eventsEqual(t, got, want)
			}
		}
	}
}

// TestBlockGatherScatterRoundTrip pins the column contract: SetEvent
// followed by Event returns exactly the canonical form — the fields the
// kind carries, everything else zero — even when the columns start out
// full of another event's data.
func TestBlockGatherScatterRoundTrip(t *testing.T) {
	evs := randomEvents(7, 500)
	b := NewBlock(len(evs))
	b.Resize(len(evs))
	// Pre-soil every column so a missing kind gate would leak stale data.
	for i := range b.KindTaken {
		b.SetEvent(i, Event{Kind: KindLoad, IP: ^uint32(0), Addr: ^uint32(0),
			Val: ^uint32(0), Offset: -1, Src1: ^uint32(0), Src2: ^uint32(0)})
	}
	for i, ev := range evs {
		b.SetEvent(i, ev)
		if got, want := b.Event(i), canonical(ev); got != want {
			t.Fatalf("event %d (%v): gather got %+v, want %+v", i, ev.Kind, got, want)
		}
	}
}

// TestReaderBlockDecodes drives the windowed file Reader's columnar
// decode over a stream several times the window size, at block sizes
// that force partial blocks at window boundaries, and requires the exact
// canonical event stream.
func TestReaderBlockDecodes(t *testing.T) {
	// ~6.7 bytes/event: 40k events ≈ 4 windows, so refill, compaction and
	// the window-boundary partial-block path all run many times.
	evs := randomEvents(42, 40_000)
	data := encodeEvents(t, evs)
	want := canonicalAll(evs)
	for _, bl := range []int{1, 333, BlockLen} {
		got := drainBlocks(t, NewReader(bytes.NewReader(data)), bl)
		eventsEqual(t, got, want)
	}
}

// TestReaderMixedBlockAndEventReads interleaves NextBlock with per-event
// Next on one Reader: the pending-block hand-off between the two entry
// points must not drop, duplicate or reorder events.
func TestReaderMixedBlockAndEventReads(t *testing.T) {
	evs := randomEvents(3, 10_000)
	data := encodeEvents(t, evs)
	want := canonicalAll(evs)

	r := NewReader(bytes.NewReader(data))
	b := NewBlock(97)
	var out []Event
	for i := 0; ; i++ {
		if i%2 == 0 {
			n, ok := r.NextBlock(b, 97)
			out = b.AppendEvents(out)
			if n == 0 && !ok {
				break
			}
		} else {
			for j := 0; j < 13; j++ {
				ev, ok := r.Next()
				if !ok {
					break
				}
				out = append(out, ev)
			}
		}
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	eventsEqual(t, out, want)
}

// TestFailAfterBlockReportsInjectedError mirrors the batch test on the
// block path: exactly n events delivered, then the injected error.
func TestFailAfterBlockReportsInjectedError(t *testing.T) {
	boom := errors.New("boom")
	src := NewFailAfter(NewSliceSource(testEvents(1000)), 700, boom)
	bs := AsBlocks(src)
	b := NewBlock(128)
	var got int
	for {
		n, ok := bs.NextBlock(b, 128)
		got += n
		if !ok {
			break
		}
	}
	if got != 700 {
		t.Fatalf("delivered %d events before failing, want 700", got)
	}
	if err := src.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err: got %v, want injected error", err)
	}
}

// TestCorruptBlockLeavesSharedStorageIntact is the Own contract end to
// end: a Corrupt wrapper mutating blocks from a warm replay cursor must
// corrupt only its own consumer's view — a second, clean cursor over the
// same resident columns must still see the pristine stream.
func TestCorruptBlockLeavesSharedStorageIntact(t *testing.T) {
	evs := testEvents(3000)
	open := warmReplayCursor(t, evs)
	want := canonicalAll(evs)

	corrupted := drainBlocks(t, NewCorrupt(open(), 5, nil), 256)
	var mutated int
	for i := range corrupted {
		if corrupted[i] != want[i] {
			mutated++
		}
	}
	if mutated == 0 {
		t.Fatal("corrupt wrapper mutated nothing through the block path")
	}

	// The resident columns must be untouched.
	eventsEqual(t, drainBlocks(t, open(), 256), want)
}

// TestWarmBlockDrainZeroAlloc is the steady-state allocation guard for
// the hot path: draining a warm replay cursor through pooled blocks must
// not allocate per event — the full-trace drain is allowed only the
// constant per-open overhead (the cursor itself and its adapter checks).
func TestWarmBlockDrainZeroAlloc(t *testing.T) {
	const events = 100_000
	evs := testEvents(events)
	open := warmReplayCursor(t, evs)

	var total int64
	allocs := testing.AllocsPerRun(10, func() {
		src := open()
		bs := AsBlocks(src)
		b := GetBlock()
		for {
			n, ok := bs.NextBlock(b, BlockLen)
			total += int64(n)
			if !ok {
				break
			}
		}
		PutBlock(b)
	})
	if total == 0 {
		t.Fatal("drained nothing")
	}
	// Per-open constant overhead only: cursor allocation and cache
	// bookkeeping, nothing proportional to the 100k events drained.
	if allocs > 8 {
		t.Fatalf("warm block drain allocated %.0f times per full-trace drain; the per-event hot path must not allocate", allocs)
	}
}

// TestFeedBlocksMatchesFeed runs the streaming decoder's block entry
// point against the per-event one over every chunking of the same bytes
// — including chunks smaller than the columnar safety margin, which
// force the bounds-checked sweep to do all the work — and requires
// identical events, counts and tail behaviour.
func TestFeedBlocksMatchesFeed(t *testing.T) {
	evs := randomEvents(11, 5_000)
	data := encodeEvents(t, evs)
	for _, chunk := range []int{1, 3, 64, 71, 72, 73, 1024, len(data)} {
		want, err := feedAll(t, data, chunk)
		if err != nil {
			t.Fatalf("chunk %d: Feed: %v", chunk, err)
		}

		d := NewStreamDecoder()
		var got []Event
		for pos := 0; pos < len(data); pos += chunk {
			end := pos + chunk
			if end > len(data) {
				end = len(data)
			}
			if err := d.FeedBlocks(data[pos:end], func(b *Block) {
				got = b.AppendEvents(got)
			}); err != nil {
				t.Fatalf("chunk %d: FeedBlocks: %v", chunk, err)
			}
		}
		eventsEqual(t, got, want)
		if d.Events() != int64(len(want)) {
			t.Fatalf("chunk %d: decoder counted %d events, want %d", chunk, d.Events(), len(want))
		}
		if err := d.Close(); err != nil {
			t.Fatalf("chunk %d: Close after complete stream: %v", chunk, err)
		}
	}
}

// TestFeedBlocksLatchesDecodeError: corruption mid-stream must latch on
// the block path exactly as on the per-event path.
func TestFeedBlocksLatchesDecodeError(t *testing.T) {
	data := encodeEvents(t, testEvents(100))
	data = append(data, 0x3f) // invalid kind byte where the next event should start
	d := NewStreamDecoder()
	err := d.FeedBlocks(data, nil)
	if err == nil {
		t.Fatal("corrupt stream decoded cleanly")
	}
	if err2 := d.FeedBlocks([]byte{0}, nil); !errors.Is(err2, err) {
		t.Fatalf("error not latched: first %v, then %v", err, err2)
	}
}

// TestAsBlocksReturnsNativeImplementation mirrors the AsBatch test.
func TestAsBlocksReturnsNativeImplementation(t *testing.T) {
	s := NewSliceSource(testEvents(10))
	if AsBlocks(s) != BlockSource(s) {
		t.Fatalf("AsBlocks re-wrapped a native BlockSource")
	}
	u := &unbatched{src: s}
	if _, ok := AsBlocks(u).(*blockAdapter); !ok {
		t.Fatalf("AsBlocks did not adapt an unblocked source")
	}
}
