package trace

import (
	"bytes"
	"testing"
)

// testEvents returns a deterministic mixed-kind stream of n events.
func testEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		switch i % 5 {
		case 0:
			evs[i] = Event{Kind: KindLoad, IP: uint32(i), Addr: uint32(i * 8), Val: uint32(i * 3), Offset: int32(i % 64), Src1: uint32(i % 7)}
		case 1:
			evs[i] = Event{Kind: KindStore, IP: uint32(i), Addr: uint32(i * 4), Offset: -int32(i % 32), Src2: uint32(i % 3)}
		case 2:
			evs[i] = Event{Kind: KindBranch, IP: uint32(i), Addr: uint32(i + 100), Taken: i%3 == 0, Src1: uint32(i % 5)}
		case 3:
			evs[i] = Event{Kind: KindALU, IP: uint32(i), Src1: 1, Src2: 2, Lat: uint8(1 + i%4)}
		default:
			evs[i] = Event{Kind: KindCall, IP: uint32(i), Addr: uint32(i * 16)}
		}
	}
	return evs
}

// drainBatched pulls every event out of src through NextBatch using the
// given batch size, then checks Err.
func drainBatched(t *testing.T, src BatchSource, batchLen int) []Event {
	t.Helper()
	var out []Event
	buf := make([]Event, batchLen)
	for {
		n, ok := src.NextBatch(buf)
		out = append(out, buf[:n]...)
		if !ok {
			break
		}
	}
	if err := src.Err(); err != nil {
		t.Fatalf("Err after drain: %v", err)
	}
	return out
}

func eventsEqual(t *testing.T, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestBatchMatchesPerEvent checks that every batched implementation and
// the adapter yield exactly the per-event stream, across batch sizes that
// divide, straddle and exceed the stream length.
func TestBatchMatchesPerEvent(t *testing.T) {
	want := testEvents(1000)
	sources := map[string]func() BatchSource{
		"slice":   func() BatchSource { return NewSliceSource(want) },
		"adapter": func() BatchSource { return AsBatch(&unbatched{src: NewSliceSource(want)}) },
		"limit": func() BatchSource {
			return NewLimit(NewSliceSource(testEvents(4000)), 1000)
		},
		"corrupt-every-1e9": func() BatchSource {
			// every-k with huge k: passthrough, stream must be intact.
			return NewCorrupt(NewSliceSource(want), 1<<40, nil)
		},
	}
	for name, mk := range sources {
		for _, bl := range []int{1, 7, 100, 1000, 4096} {
			got := drainBatched(t, mk(), bl)
			if name == "limit" {
				eventsEqual(t, got, testEvents(4000)[:1000])
				continue
			}
			eventsEqual(t, got, want)
		}
	}
}

// unbatched hides any NextBatch method so AsBatch must install the
// adapter.
type unbatched struct{ src Source }

func (u *unbatched) Next() (Event, bool) { return u.src.Next() }
func (u *unbatched) Err() error          { return u.src.Err() }

func TestAsBatchReturnsNativeImplementation(t *testing.T) {
	s := NewSliceSource(testEvents(10))
	if AsBatch(s) != BatchSource(s) {
		t.Fatalf("AsBatch re-wrapped a native BatchSource")
	}
	u := &unbatched{src: s}
	if _, ok := AsBatch(u).(*batchAdapter); !ok {
		t.Fatalf("AsBatch did not adapt an unbatched source")
	}
}

func TestLimitBatchTruncatesExactly(t *testing.T) {
	for _, limit := range []int64{0, 1, 99, 100, 101, 250} {
		src := NewLimit(NewSliceSource(testEvents(100)), limit)
		got := drainBatched(t, src, 64)
		want := int(limit)
		if want > 100 {
			want = 100
		}
		if len(got) != want {
			t.Errorf("limit %d: got %d events, want %d", limit, len(got), want)
		}
	}
}

func TestFailAfterBatchReportsInjectedError(t *testing.T) {
	src := NewFailAfter(NewSliceSource(testEvents(100)), 37, nil)
	var out []Event
	buf := make([]Event, 16)
	for {
		n, ok := src.NextBatch(buf)
		out = append(out, buf[:n]...)
		if !ok {
			break
		}
	}
	if len(out) != 37 {
		t.Fatalf("got %d events before failure, want 37", len(out))
	}
	if err := src.Err(); err != ErrInjected {
		t.Fatalf("Err = %v, want ErrInjected", err)
	}
	eventsEqual(t, out, testEvents(100)[:37])
}

func TestCorruptBatchMutatesSameSchedule(t *testing.T) {
	const every = 7
	perEvent := NewCorrupt(NewSliceSource(testEvents(200)), every, nil)
	var want []Event
	for {
		ev, ok := perEvent.Next()
		if !ok {
			break
		}
		want = append(want, ev)
	}
	for _, bl := range []int{1, 5, 64, 200} {
		batched := NewCorrupt(NewSliceSource(testEvents(200)), every, nil)
		got := drainBatched(t, batched, bl)
		eventsEqual(t, got, want)
	}
}

func TestReaderBatchDecodes(t *testing.T) {
	want := testEvents(500)
	for i := range want {
		want[i] = canonical(want[i])
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, ev := range want {
		if err := w.Emit(ev); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := NewReader(&buf)
	got := drainBatched(t, r, 33)
	eventsEqual(t, got, want)
}
