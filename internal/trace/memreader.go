package trace

import (
	"errors"
	"fmt"
)

var errTruncatedEvent = errors.New("trace: truncated event")

// replayPad is the run of zero bytes the replay cache appends after an
// encoded stream. Zero bytes are one-byte varints, so a decoder that has
// consumed the last real event can never index past the slice while
// finishing its bookkeeping — which lets the hot decode loop drop the
// per-byte bounds checks a file reader needs.
const replayPad = 16

// memReader decodes the binary trace format straight out of a byte
// slice ending in replayPad zero bytes. Reader pulls varints through the
// io.ByteReader interface — one dynamic dispatch per byte — which is
// fine for files but dominates the replay cache's hot path, where the
// whole stream is already resident. Decoding from the slice directly,
// with the one-byte varint fast path inlined (the delta encoding makes
// that the common case) and the delta state kept in registers across a
// batch, keeps a cached cursor faster than the generator it replaces.
type memReader struct {
	data []byte
	pos  int
	end  int // logical end of the stream: len(data) - replayPad
	st   deltaState
	err  error
}

// newMemReader returns a cursor over an encoded trace held in memory,
// including its trailing padding. The header is validated immediately;
// the returned Source reports any problem through Err, like Reader.
func newMemReader(data []byte) *memReader {
	r := &memReader{data: data, end: len(data) - replayPad}
	if r.end < 5 {
		r.err = ErrBadMagic
		return r
	}
	if [4]byte(data[:4]) != magic {
		r.err = ErrBadMagic
		return r
	}
	if data[4] != formatVersion {
		r.err = fmt.Errorf("%w: %d", ErrBadVersion, data[4])
		return r
	}
	r.pos = 5
	return r
}

// uvarintAt decodes an unsigned varint at pos. The caller guarantees
// pos is in range (the padding keeps every in-event read inside the
// slice). A negative result position reports an overlong varint.
func uvarintAt(data []byte, pos int) (uint64, int) {
	if b := data[pos]; b < 0x80 {
		return uint64(b), pos + 1
	}
	return uvarintLongAt(data, pos)
}

// uvarintLongAt is the multi-byte continuation of uvarintAt. It is kept
// out of line so uvarintAt itself stays under the inlining budget — the
// one-byte fast path then compiles to a load and a compare at each call
// site in NextBatch.
//
//go:noinline
func uvarintLongAt(data []byte, pos int) (uint64, int) {
	var v uint64
	var s uint
	for pos < len(data) {
		b := data[pos]
		pos++
		if b < 0x80 {
			if s == 63 && b > 1 {
				return 0, -1 // overflows uint64
			}
			return v | uint64(b)<<s, pos
		}
		v |= uint64(b&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, -1
		}
	}
	return 0, -1
}

// zigzag32 maps a zigzag-encoded varint back to a wrapping 32-bit delta.
func zigzag32(u uint64) uint32 {
	return uint32(u>>1) ^ -uint32(u&1)
}

// NextBatch implements BatchSource. The whole batch decodes with the
// position and delta state in locals; they are written back once per
// call.
func (r *memReader) NextBatch(dst []Event) (int, bool) {
	if r.err != nil {
		return 0, false
	}
	data := r.data
	pos := r.pos
	st := r.st
	var u uint64
	for i := range dst {
		if pos >= r.end {
			r.pos, r.st = pos, st
			if pos > r.end {
				r.err = errTruncatedEvent
			}
			return i, false
		}
		kb := data[pos]
		pos++
		kind := Kind(kb &^ takenBit)
		if !kind.Valid() {
			r.pos, r.st = pos, st
			r.err = fmt.Errorf("trace: invalid event kind %d", kb)
			return i, false
		}
		ev := &dst[i]
		*ev = Event{Kind: kind}
		if b := data[pos]; b < 0x80 {
			u = uint64(b)
			pos++
		} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
			r.st = st
			r.err = errTruncatedEvent
			return i, false
		}
		st.prevIP += zigzag32(u)
		ev.IP = st.prevIP
		switch kind {
		case KindLoad, KindStore:
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			st.prevAddr[kind] += zigzag32(u)
			ev.Addr = st.prevAddr[kind]
			if kind == KindLoad {
				// Fixed-width field; the trailing padding keeps the 4-byte
				// read in bounds even at a truncated stream's edge.
				ev.Val = uint32(data[pos]) | uint32(data[pos+1])<<8 |
					uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24
				pos += 4
			}
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Offset = int32(zigzag32(u))
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src1 = uint32(u)
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src2 = uint32(u)
		case KindBranch:
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			st.prevAddr[kind] += zigzag32(u)
			ev.Addr = st.prevAddr[kind]
			ev.Taken = kb&takenBit != 0
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src1 = uint32(u)
		case KindCall, KindReturn:
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			st.prevAddr[kind] += zigzag32(u)
			ev.Addr = st.prevAddr[kind]
		case KindALU:
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src1 = uint32(u)
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src2 = uint32(u)
			ev.Lat = data[pos]
			pos++
		}
	}
	r.pos, r.st = pos, st
	return len(dst), true
}

// Next implements Source.
func (r *memReader) Next() (Event, bool) {
	var buf [1]Event
	if n, _ := r.NextBatch(buf[:]); n == 0 {
		return Event{}, false
	}
	return buf[0], true
}

// Err implements Source.
func (r *memReader) Err() error { return r.err }
