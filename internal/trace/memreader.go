package trace

import (
	"errors"
	"fmt"
)

var errTruncatedEvent = errors.New("trace: truncated event")

// replayPad is the run of zero bytes the replay cache appends after an
// encoded stream. Zero bytes are one-byte varints, so a decoder that has
// consumed the last real event can never index past the slice while
// finishing its bookkeeping — which lets the hot decode loop drop the
// per-byte bounds checks a file reader needs.
const replayPad = 16

// maxEventBytes bounds how far one event's parse can advance, even on
// hostile bytes: kind, five varints of at most ten bytes each (longer
// ones fail inside uvarintLongAt before consuming an eleventh byte),
// the 4-byte load value and the latency byte. The writer never emits a
// varint over five bytes, but the decode margin must hold for corrupt
// input too.
const maxEventBytes = 1 + 5*10 + 4 + 1

// decodeMargin is how far short of its valid bytes a buffered reader
// must hold decodeColumns' end: an event starting just before end may
// advance maxEventBytes past it, the two-byte varint fast path peeks
// one byte further, and the word fast path reads 16 bytes from the
// event start.
const decodeMargin = maxEventBytes + 16

// memReader decodes the binary trace format straight out of a byte
// slice ending in replayPad zero bytes. Reader pulls varints through the
// io.ByteReader interface — one dynamic dispatch per byte — which is
// fine for files but dominates the replay cache's hot path, where the
// whole stream is already resident. Decoding from the slice directly,
// with the one-byte varint fast path inlined (the delta encoding makes
// that the common case) and the delta state kept in registers across a
// batch, keeps a cached cursor faster than the generator it replaces.
type memReader struct {
	data []byte
	pos  int
	end  int // logical end of the stream: len(data) - replayPad
	st   deltaState
	err  error
}

// newMemReader returns a cursor over an encoded trace held in memory,
// including its trailing padding. The header is validated immediately;
// the returned Source reports any problem through Err, like Reader.
func newMemReader(data []byte) *memReader {
	r := &memReader{data: data, end: len(data) - replayPad}
	if r.end < 5 {
		r.err = ErrBadMagic
		return r
	}
	if [4]byte(data[:4]) != magic {
		r.err = ErrBadMagic
		return r
	}
	if data[4] != formatVersion {
		r.err = fmt.Errorf("%w: %d", ErrBadVersion, data[4])
		return r
	}
	r.pos = 5
	return r
}

// uvarintAt decodes an unsigned varint at pos. The caller guarantees
// pos is in range (the padding keeps every in-event read inside the
// slice). A negative result position reports an overlong varint.
func uvarintAt(data []byte, pos int) (uint64, int) {
	if b := data[pos]; b < 0x80 {
		return uint64(b), pos + 1
	}
	return uvarintLongAt(data, pos)
}

// uvarintLongAt is the multi-byte continuation of uvarintAt. It is kept
// out of line so uvarintAt itself stays under the inlining budget — the
// one-byte fast path then compiles to a load and a compare at each call
// site in NextBatch.
//
//go:noinline
func uvarintLongAt(data []byte, pos int) (uint64, int) {
	var v uint64
	var s uint
	for pos < len(data) {
		b := data[pos]
		pos++
		if b < 0x80 {
			if s == 63 && b > 1 {
				return 0, -1 // overflows uint64
			}
			return v | uint64(b)<<s, pos
		}
		v |= uint64(b&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, -1
		}
	}
	return 0, -1
}

// zigzag32 maps a zigzag-encoded varint back to a wrapping 32-bit delta.
func zigzag32(u uint64) uint32 {
	return uint32(u>>1) ^ -uint32(u&1)
}

// NextBatch implements BatchSource. The whole batch decodes with the
// position and delta state in locals; they are written back once per
// call.
func (r *memReader) NextBatch(dst []Event) (int, bool) {
	if r.err != nil {
		return 0, false
	}
	data := r.data
	pos := r.pos
	st := r.st
	var u uint64
	for i := range dst {
		if pos >= r.end {
			r.pos, r.st = pos, st
			if pos > r.end {
				r.err = errTruncatedEvent
			}
			return i, false
		}
		kb := data[pos]
		pos++
		kind := Kind(kb &^ takenBit)
		if !kind.Valid() {
			r.pos, r.st = pos, st
			r.err = fmt.Errorf("trace: invalid event kind %d", kb)
			return i, false
		}
		ev := &dst[i]
		*ev = Event{Kind: kind}
		if b := data[pos]; b < 0x80 {
			u = uint64(b)
			pos++
		} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
			r.st = st
			r.err = errTruncatedEvent
			return i, false
		}
		st.prevIP += zigzag32(u)
		ev.IP = st.prevIP
		switch kind {
		case KindLoad, KindStore:
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			st.prevAddr[kind] += zigzag32(u)
			ev.Addr = st.prevAddr[kind]
			if kind == KindLoad {
				// Fixed-width field; the trailing padding keeps the 4-byte
				// read in bounds even at a truncated stream's edge.
				ev.Val = uint32(data[pos]) | uint32(data[pos+1])<<8 |
					uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24
				pos += 4
			}
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Offset = int32(zigzag32(u))
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src1 = uint32(u)
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src2 = uint32(u)
		case KindBranch:
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			st.prevAddr[kind] += zigzag32(u)
			ev.Addr = st.prevAddr[kind]
			ev.Taken = kb&takenBit != 0
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src1 = uint32(u)
		case KindCall, KindReturn:
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			st.prevAddr[kind] += zigzag32(u)
			ev.Addr = st.prevAddr[kind]
		case KindALU:
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src1 = uint32(u)
			if b := data[pos]; b < 0x80 {
				u = uint64(b)
				pos++
			} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
				r.st = st
				r.err = errTruncatedEvent
				return i, false
			}
			ev.Src2 = uint32(u)
			ev.Lat = data[pos]
			pos++
		}
	}
	r.pos, r.st = pos, st
	return len(dst), true
}

// Next implements Source.
func (r *memReader) Next() (Event, bool) {
	var buf [1]Event
	if n, _ := r.NextBatch(buf[:]); n == 0 {
		return Event{}, false
	}
	return buf[0], true
}

// Err implements Source.
func (r *memReader) Err() error { return r.err }

// le64 assembles the eight little-endian bytes at data[pos:] into one
// word. The replay padding keeps the read in bounds for every position
// inside the stream (pos < end implies pos+8 ≤ end+7 < len for
// replayPad ≥ 8).
func le64(data []byte, pos int) uint64 {
	b := data[pos : pos+8 : pos+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// NextBlock implements BlockSource via the shared columnar decode core.
func (r *memReader) NextBlock(b *Block, max int) (int, bool) {
	if r.err != nil || max <= 0 {
		b.Resize(0)
		return 0, false
	}
	n, pos, err := decodeColumns(b, max, r.data, r.pos, r.end, &r.st)
	r.pos = pos
	if err != nil {
		r.err = err
		return n, false
	}
	if n < max {
		if pos > r.end {
			// The last event's fields ran into the padding: the stream is
			// truncated mid-event, exactly as NextBatch reports it.
			r.err = errTruncatedEvent
		}
		return n, false
	}
	return n, true
}

// decodeColumns is the columnar word-at-a-time decode core shared by
// the in-memory cursor (memReader), the buffered file Reader and the
// streaming decoder: each event's leading bytes are read as one 64-bit
// word, and when every varint of the event fits in one byte — the
// overwhelmingly common case under delta encoding — the whole event is
// extracted from the word with shifts and written column by column,
// with no per-field byte loop and no Event materialisation. Events with
// a multi-byte varint (or the rare store) take the generic per-field
// path.
//
// It decodes up to max events from data[pos:end] into b (resized to the
// count decoded) and returns the count and the new position. The caller
// guarantees every byte offset the decode can touch is readable: an
// event starting before end reads at most maxEventBytes beyond its
// first byte plus the two 8-byte words of the fast path, so
// len(data) ≥ end + replayPad suffices when the bytes past end are
// zeros (padding), and a buffered reader must keep its window end at
// least decodeMargin short of the valid bytes. A position past end on
// return means the final event's fields overran the logical stream —
// truncation when the stream is complete, "refill and retry" for a
// windowed caller.
func decodeColumns(b *Block, max int, data []byte, pos, end int, stp *deltaState) (int, int, error) {
	b.Resize(max)
	kt := b.KindTaken
	ip := b.IP[:len(kt)]
	addr := b.Addr[:len(kt)]
	val := b.Val[:len(kt)]
	off := b.Offset[:len(kt)]
	src1 := b.Src1[:len(kt)]
	src2 := b.Src2[:len(kt)]
	st := *stp
	i := 0
	for i < len(kt) {
		if pos >= end {
			break
		}
		w := le64(data, pos)
		kb := uint8(w)
		kt[i] = kb
		switch kb {
		case uint8(KindALU):
			// bytes: kind, IPΔ, Src1, Src2, Lat — varints at 1..3.
			if w&0x80808000 == 0 {
				st.prevIP += zigzag32((w >> 8) & 0x7f)
				ip[i] = st.prevIP
				src1[i] = uint32(w>>16) & 0x7f
				src2[i] = uint32(w>>24) & 0x7f
				b.Lat[i] = uint8(w >> 32)
				pos += 5
				i++
				continue
			}
		case uint8(KindLoad):
			// bytes: kind, IPΔ, AddrΔ, Val (4 fixed), Offset | Src1, Src2
			// in the next word — varints at 1, 2, 7, 8, 9.
			if w&0x8000000000808000 == 0 {
				w2 := le64(data, pos+8)
				if w2&0x8080 == 0 {
					st.prevIP += zigzag32((w >> 8) & 0x7f)
					ip[i] = st.prevIP
					st.prevAddr[KindLoad] += zigzag32((w >> 16) & 0x7f)
					addr[i] = st.prevAddr[KindLoad]
					val[i] = uint32(w >> 24)
					off[i] = int32(zigzag32((w >> 56) & 0x7f))
					src1[i] = uint32(w2) & 0x7f
					src2[i] = uint32(w2>>8) & 0x7f
					pos += 10
					i++
					continue
				}
			}
		case uint8(KindBranch), uint8(KindBranch) | takenBit:
			// bytes: kind|taken, IPΔ, AddrΔ, Src1 — varints at 1..3.
			if w&0x80808000 == 0 {
				st.prevIP += zigzag32((w >> 8) & 0x7f)
				ip[i] = st.prevIP
				st.prevAddr[KindBranch] += zigzag32((w >> 16) & 0x7f)
				addr[i] = st.prevAddr[KindBranch]
				src1[i] = uint32(w>>24) & 0x7f
				pos += 4
				i++
				continue
			}
		case uint8(KindCall), uint8(KindReturn):
			// bytes: kind, IPΔ, AddrΔ — varints at 1..2.
			if w&0x808000 == 0 {
				st.prevIP += zigzag32((w >> 8) & 0x7f)
				ip[i] = st.prevIP
				st.prevAddr[kb] += zigzag32((w >> 16) & 0x7f)
				addr[i] = st.prevAddr[kb]
				pos += 3
				i++
				continue
			}
		}
		// Slow path: a multi-byte varint somewhere in the event, a store,
		// or an invalid kind byte. Decodes one event generically into the
		// columns (or fails), then the loop resumes on the fast paths.
		next, err := decodeEventColumns(data, b, i, pos, &st)
		if err != nil {
			*stp = st
			b.Resize(i)
			return i, pos, err
		}
		pos = next
		i++
	}
	*stp = st
	b.Resize(i)
	return i, pos, nil
}

// decodeEventColumns is decodeColumns' generic slow path: it decodes
// the single event at pos field by field into b's columns at index i,
// advancing st, and returns the position after the event. Each varint's
// one- and two-byte cases are decoded inline (two bytes covers every
// delta within ±8 KiB, which is nearly all of the multi-byte tail);
// only longer encodings pay the uvarintLongAt call.
func decodeEventColumns(data []byte, b *Block, i, pos int, st *deltaState) (int, error) {
	kb := data[pos]
	pos++
	kind := Kind(kb &^ takenBit)
	if !kind.Valid() {
		return 0, fmt.Errorf("trace: invalid event kind %d", kb)
	}
	var u uint64
	varint := func() bool {
		if c := data[pos]; c < 0x80 {
			u = uint64(c)
			pos++
		} else if c2 := data[pos+1]; c2 < 0x80 {
			// Two bytes are always in range: the replay padding extends
			// past the logical end of the stream.
			u = uint64(c&0x7f) | uint64(c2)<<7
			pos += 2
		} else if u, pos = uvarintLongAt(data, pos); pos < 0 {
			return false
		}
		return true
	}
	if !varint() {
		return 0, errTruncatedEvent
	}
	st.prevIP += zigzag32(u)
	b.IP[i] = st.prevIP
	switch kind {
	case KindLoad, KindStore:
		if !varint() {
			return 0, errTruncatedEvent
		}
		st.prevAddr[kind] += zigzag32(u)
		b.Addr[i] = st.prevAddr[kind]
		if kind == KindLoad {
			b.Val[i] = uint32(data[pos]) | uint32(data[pos+1])<<8 |
				uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24
			pos += 4
		}
		if !varint() {
			return 0, errTruncatedEvent
		}
		b.Offset[i] = int32(zigzag32(u))
		if !varint() {
			return 0, errTruncatedEvent
		}
		b.Src1[i] = uint32(u)
		if !varint() {
			return 0, errTruncatedEvent
		}
		b.Src2[i] = uint32(u)
	case KindBranch:
		if !varint() {
			return 0, errTruncatedEvent
		}
		st.prevAddr[kind] += zigzag32(u)
		b.Addr[i] = st.prevAddr[kind]
		if !varint() {
			return 0, errTruncatedEvent
		}
		b.Src1[i] = uint32(u)
	case KindCall, KindReturn:
		if !varint() {
			return 0, errTruncatedEvent
		}
		st.prevAddr[kind] += zigzag32(u)
		b.Addr[i] = st.prevAddr[kind]
	case KindALU:
		if !varint() {
			return 0, errTruncatedEvent
		}
		b.Src1[i] = uint32(u)
		if !varint() {
			return 0, errTruncatedEvent
		}
		b.Src2[i] = uint32(u)
		b.Lat[i] = data[pos]
		pos++
	}
	return pos, nil
}
