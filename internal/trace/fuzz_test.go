package trace

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic and must either produce valid events or report an error. The
// seeds cover a valid file, truncations, and corrupted headers; `go test`
// always runs the seed corpus.
func FuzzReader(f *testing.F) {
	// Seed: a valid two-event trace.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Emit(Event{Kind: KindLoad, IP: 0x400100, Addr: 0x8000, Val: 7, Offset: 8, Src1: 2})
	_ = w.Emit(Event{Kind: KindBranch, IP: 0x400104, Addr: 0x400100, Taken: true})
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated event
	f.Add(valid[:5])            // header only
	f.Add([]byte("CAPT\x01"))   // old version
	f.Add([]byte("XXXX\x02"))   // bad magic
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		n := 0
		for {
			ev, ok := r.Next()
			if !ok {
				break
			}
			if !ev.Kind.Valid() {
				t.Fatalf("reader produced invalid kind %d", ev.Kind)
			}
			n++
			if n > 1<<20 {
				t.Fatal("unbounded event stream from bounded input")
			}
		}
		// After the stream ends, Err is stable and Next stays false.
		_ = r.Err()
		if _, ok := r.Next(); ok {
			t.Fatal("Next returned true after end of stream")
		}
	})
}
