package trace

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// sliceSource replays a fixed event slice — enough structure to exercise
// the fault wrappers without pulling in the workload generator.
type sliceSource struct {
	evs []Event
	i   int
}

func (s *sliceSource) Next() (Event, bool) {
	if s.i >= len(s.evs) {
		return Event{}, false
	}
	ev := s.evs[s.i]
	s.i++
	return ev, true
}

func (s *sliceSource) Err() error { return nil }

func events(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{Kind: KindLoad, IP: uint32(0x400 + i), Addr: uint32(0x1000 + 8*i)}
	}
	return out
}

func TestFailAfterYieldsThenFails(t *testing.T) {
	src := NewFailAfter(&sliceSource{evs: events(10)}, 4, nil)
	var n int
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Errorf("yielded %d events, want 4", n)
	}
	if !errors.Is(src.Err(), ErrInjected) {
		t.Errorf("Err() = %v, want ErrInjected", src.Err())
	}
}

func TestFailAfterCleanWhenBudgetNotReached(t *testing.T) {
	src := NewFailAfter(&sliceSource{evs: events(3)}, 100, nil)
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if err := src.Err(); err != nil {
		t.Errorf("stream ended before the fault budget, want clean EOF, got %v", err)
	}
}

func TestFailAfterWrappedErrorWins(t *testing.T) {
	inner := errors.New("inner decode error")
	src := NewFailAfter(NewErrSource(inner), 5, nil)
	if _, ok := src.Next(); ok {
		t.Fatal("expected immediate end")
	}
	if !errors.Is(src.Err(), inner) {
		t.Errorf("Err() = %v, want the wrapped source's error", src.Err())
	}
}

func TestCorruptMutatesEveryKth(t *testing.T) {
	clean := events(9)
	src := NewCorrupt(&sliceSource{evs: events(9)}, 3, nil)
	var mutated int
	for i := 0; ; i++ {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if ev.Addr != clean[i].Addr {
			mutated++
		}
	}
	if mutated != 3 {
		t.Errorf("mutated %d events, want every 3rd of 9 = 3", mutated)
	}
	if err := src.Err(); err != nil {
		t.Errorf("corruption is silent damage, want nil Err, got %v", err)
	}
}

func TestCorruptCustomMutator(t *testing.T) {
	src := NewCorrupt(&sliceSource{evs: events(4)}, 2, func(ev *Event) { ev.Addr = 0 })
	var zeros int
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if ev.Addr == 0 {
			zeros++
		}
	}
	if zeros != 2 {
		t.Errorf("custom mutator hit %d events, want 2", zeros)
	}
}

func TestErrSource(t *testing.T) {
	src := NewErrSource(nil)
	if _, ok := src.Next(); ok {
		t.Error("ErrSource must yield nothing")
	}
	if !errors.Is(src.Err(), ErrInjected) {
		t.Errorf("Err() = %v, want ErrInjected", src.Err())
	}
}

func TestHangUnblocksOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	src := NewHang(ctx, &sliceSource{evs: events(5)}, 2)
	for i := 0; i < 2; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatal("hang ended before its budget")
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := src.Next(); ok {
			t.Error("hung Next returned an event")
		}
	}()
	select {
	case <-done:
		t.Fatal("Next returned before cancellation")
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Next did not unblock after cancel")
	}
	if !errors.Is(src.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want wrapped context.Canceled", src.Err())
	}
}

func TestTransientMarking(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) must stay nil")
	}
	err := Transient(ErrInjected)
	if !IsTransient(err) {
		t.Error("Transient error not detected")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", err)) {
		t.Error("transience must survive wrapping")
	}
	if !errors.Is(err, ErrInjected) {
		t.Error("Transient must preserve the underlying error identity")
	}
	if IsTransient(ErrInjected) {
		t.Error("unmarked error reported transient")
	}
	if IsTransient(Transient(context.Canceled)) {
		t.Error("cancellation must never be treated as transient")
	}
	if IsTransient(Transient(context.DeadlineExceeded)) {
		t.Error("deadline expiry must never be treated as transient")
	}
}

func TestFlakyOpen(t *testing.T) {
	open := FlakyOpen(func() Source { return &sliceSource{evs: events(10)} }, 2, 3)
	drain := func(src Source) (int, error) {
		var n int
		for {
			if _, ok := src.Next(); !ok {
				return n, src.Err()
			}
			n++
		}
	}
	for attempt := 0; attempt < 2; attempt++ {
		n, err := drain(open())
		if n != 3 || !IsTransient(err) {
			t.Fatalf("flaky open %d: n=%d err=%v, want 3 events and a transient error", attempt, n, err)
		}
	}
	n, err := drain(open())
	if n != 10 || err != nil {
		t.Fatalf("post-flake open: n=%d err=%v, want full clean stream", n, err)
	}
}
