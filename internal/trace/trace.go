// Package trace defines the instruction-trace event model shared by the
// workload generators, the address predictors and the timing model.
//
// A trace is an ordered stream of Events. Every event carries the static
// instruction pointer (IP) of the instruction that produced it; loads and
// stores additionally carry the effective address and the immediate offset
// encoded in the instruction, which the base-address scheme of the CAP
// predictor depends on. Events also carry dependency links (distances back
// to producer instructions) so the out-of-order timing model can rebuild
// the data-flow graph without a register model.
package trace

// Kind discriminates trace events.
type Kind uint8

// Event kinds. ALU covers every non-memory, non-control instruction.
const (
	KindALU Kind = iota
	KindLoad
	KindStore
	KindBranch
	KindCall
	KindReturn
	numKinds
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	default:
		return "invalid"
	}
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < numKinds }

// Event is a single dynamic instruction in a trace.
//
// Dependency links (Src1, Src2) are expressed as distances: an instruction
// at stream position p with Src1 = d depends on the instruction at position
// p-d. A distance of zero means "no dependency". For loads, Src1 is by
// convention the producer of the address (so a pointer-chasing load has
// Src1 pointing at the previous load in the chain) and Src2, if set, is any
// additional operand.
type Event struct {
	Kind   Kind
	IP     uint32 // static instruction address
	Addr   uint32 // effective address (load/store); target (branch/call)
	Val    uint32 // value loaded (loads only), for value-prediction studies
	Offset int32  // immediate displacement encoded in a load/store
	Taken  bool   // branch outcome
	Src1   uint32 // distance back to the first source producer, 0 = none
	Src2   uint32 // distance back to the second source producer, 0 = none
	Lat    uint8  // execution latency in cycles (0 is treated as 1)
}

// IsMem reports whether the event accesses memory.
func (e Event) IsMem() bool { return e.Kind == KindLoad || e.Kind == KindStore }

// Latency returns the execution latency, treating the zero value as one
// cycle so that generators may leave Lat unset for simple operations.
func (e Event) Latency() int {
	if e.Lat == 0 {
		return 1
	}
	return int(e.Lat)
}

// Source is a stream of trace events. Implementations follow the
// bufio.Scanner error model: Next returns ok=false at end of stream, after
// which Err reports whether the stream ended because of an error.
type Source interface {
	// Next returns the next event. ok is false when the stream is
	// exhausted or an error occurred.
	Next() (ev Event, ok bool)
	// Err returns the first error encountered, or nil on clean EOF.
	Err() error
}

// Sink consumes trace events.
type Sink interface {
	Emit(Event) error
}

// SliceSource adapts an in-memory event slice to the Source interface.
type SliceSource struct {
	events []Event
	pos    int
}

// NewSliceSource returns a Source that yields the given events in order.
// The slice is not copied.
func NewSliceSource(events []Event) *SliceSource {
	return &SliceSource{events: events}
}

// Next implements Source.
func (s *SliceSource) Next() (Event, bool) {
	if s.pos >= len(s.events) {
		return Event{}, false
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, true
}

// Err implements Source; a SliceSource never fails.
func (s *SliceSource) Err() error { return nil }

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// SliceSink collects events into memory, for tests and small tools.
type SliceSink struct {
	Events []Event
}

// Emit implements Sink.
func (s *SliceSink) Emit(ev Event) error {
	s.Events = append(s.Events, ev)
	return nil
}

// Limit wraps a source and truncates it after n events.
type Limit struct {
	src  Source
	bs   BatchSource // lazily initialised batch view of src
	blks BlockSource // lazily initialised block view of src
	n    int64
}

// NewLimit returns a Source yielding at most n events from src.
func NewLimit(src Source, n int64) *Limit {
	return &Limit{src: src, n: n}
}

// Next implements Source.
func (l *Limit) Next() (Event, bool) {
	if l.n <= 0 {
		return Event{}, false
	}
	l.n--
	return l.src.Next()
}

// Err implements Source.
func (l *Limit) Err() error { return l.src.Err() }

// Copy streams every event from src into sink and returns the number of
// events transferred. It stops at the first sink or source error.
func Copy(sink Sink, src Source) (int64, error) {
	var n int64
	for {
		ev, ok := src.Next()
		if !ok {
			return n, src.Err()
		}
		if err := sink.Emit(ev); err != nil {
			return n, err
		}
		n++
	}
}
