package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip encodes the events and decodes them back.
func roundTrip(t *testing.T, evs []Event) []Event {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, ev := range evs {
		if err := w.Emit(ev); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r := NewReader(&buf)
	var out []Event
	for {
		ev, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, ev)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Reader.Err: %v", err)
	}
	return out
}

// canonical zeroes the fields that the format intentionally does not store
// for the event's kind, so round-trip comparison is meaningful.
func canonical(ev Event) Event {
	c := Event{Kind: ev.Kind, IP: ev.IP}
	switch ev.Kind {
	case KindLoad, KindStore:
		c.Addr, c.Offset, c.Src1, c.Src2 = ev.Addr, ev.Offset, ev.Src1, ev.Src2
		if ev.Kind == KindLoad {
			c.Val = ev.Val
		}
	case KindBranch:
		c.Addr, c.Taken, c.Src1 = ev.Addr, ev.Taken, ev.Src1
	case KindCall, KindReturn:
		c.Addr = ev.Addr
	case KindALU:
		c.Src1, c.Src2, c.Lat = ev.Src1, ev.Src2, ev.Lat
	}
	return c
}

func TestRoundTripBasic(t *testing.T) {
	evs := []Event{
		{Kind: KindLoad, IP: 0x400100, Addr: 0x8000_0010, Offset: -4, Src1: 3, Src2: 1},
		{Kind: KindStore, IP: 0x400104, Addr: 0x8000_0020, Offset: 12},
		{Kind: KindBranch, IP: 0x400108, Addr: 0x400100, Taken: true, Src1: 2},
		{Kind: KindCall, IP: 0x40010c, Addr: 0x500000},
		{Kind: KindReturn, IP: 0x500040, Addr: 0x400110},
		{Kind: KindALU, IP: 0x400110, Src1: 1, Src2: 4, Lat: 3},
	}
	got := roundTrip(t, evs)
	if len(got) != len(evs) {
		t.Fatalf("round trip returned %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != canonical(evs[i]) {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], canonical(evs[i]))
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	got := roundTrip(t, nil)
	if len(got) != 0 {
		t.Fatalf("empty trace decoded to %d events", len(got))
	}
}

// TestRoundTripProperty: every valid event survives encode/decode.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Event {
		return Event{
			Kind:   Kind(rng.Intn(int(numKinds))),
			IP:     rng.Uint32(),
			Addr:   rng.Uint32(),
			Val:    rng.Uint32(),
			Offset: int32(rng.Uint32()),
			Taken:  rng.Intn(2) == 0,
			Src1:   rng.Uint32() % 1024,
			Src2:   rng.Uint32() % 1024,
			Lat:    uint8(rng.Intn(20)),
		}
	}
	f := func(n uint8) bool {
		evs := make([]Event, int(n)%64+1)
		for i := range evs {
			evs[i] = gen()
		}
		got := roundTrip(t, evs)
		if len(got) != len(evs) {
			return false
		}
		for i := range evs {
			if got[i] != canonical(evs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPE!...")))
	if _, ok := r.Next(); ok {
		t.Fatal("expected failure on bad magic")
	}
	if !errors.Is(r.Err(), ErrBadMagic) {
		t.Errorf("got error %v, want ErrBadMagic", r.Err())
	}
}

func TestReaderBadVersion(t *testing.T) {
	data := append(append([]byte{}, magic[:]...), 0xFF)
	r := NewReader(bytes.NewReader(data))
	if _, ok := r.Next(); ok {
		t.Fatal("expected failure on bad version")
	}
	if !errors.Is(r.Err(), ErrBadVersion) {
		t.Errorf("got error %v, want ErrBadVersion", r.Err())
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Emit(Event{Kind: KindLoad, IP: 0x1234, Addr: 0xdeadbeef}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Chop the last byte so the event is cut mid-field.
	r := NewReader(bytes.NewReader(data[:len(data)-1]))
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Error("expected truncation error, got clean EOF")
	}
}

func TestReaderEmptyInput(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, ok := r.Next(); ok {
		t.Fatal("expected failure on empty input")
	}
	if !errors.Is(r.Err(), ErrBadMagic) {
		t.Errorf("got error %v, want ErrBadMagic", r.Err())
	}
}

func TestWriterRejectsInvalidKind(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Emit(Event{Kind: Kind(250)}); err == nil {
		t.Error("expected error for invalid kind")
	}
}

func TestHeaderWrittenForEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 5 {
		t.Errorf("empty trace file is %d bytes, want 5 (magic+version)", buf.Len())
	}
	if !reflect.DeepEqual(buf.Bytes()[:4], magic[:]) {
		t.Error("missing magic in empty trace file")
	}
}

func TestWriterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Emit(Event{Kind: KindALU, IP: 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Emit(Event{Kind: KindALU, IP: 8}); err == nil {
		t.Error("Emit after Close must fail")
	}
	// Close is idempotent.
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if buf.Len() <= 5 {
		t.Error("event not flushed by Close")
	}
}
