package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format
//
//	magic   [4]byte  "CAPT"
//	version uint8    currently 3
//	events  ...      repeated until EOF
//
// Each event is a kind byte followed by varint-encoded fields. Only the
// fields meaningful for the kind are stored, and the large 32-bit fields
// (IP, Addr, Val) are delta-encoded against the previous event carrying
// the same field, which keeps most varints in the 1-2 byte range: real
// instruction streams revisit nearby IPs and walk nearby addresses, so
// consecutive differences are small where absolute values never are. A
// branch's taken flag rides in bit 7 of its kind byte.
//
//	all kinds:     kind|taken<<7, varint(IP - prevIP)
//	load:          varint(Addr - prevAddr[load]) u32le(Val) varint(Offset) uvarint(Src1) uvarint(Src2)
//	store:         varint(Addr - prevAddr[store]) varint(Offset) uvarint(Src1) uvarint(Src2)
//	branch:        varint(Addr - prevAddr[branch]) uvarint(Src1)
//	call, return:  varint(Addr - prevAddr[kind])
//	alu:           uvarint(Src1) uvarint(Src2) byte(Lat)
//
// Deltas are computed on wrapping uint32 arithmetic and stored as the
// zigzag varint of the signed 32-bit difference, so every field value
// round-trips exactly. The per-kind Addr history means interleaved load
// and store streams do not destroy each other's locality. Load values are
// the one field with no exploitable locality — they are near-random, so a
// varint (delta or absolute) averages five to six bytes; a fixed
// little-endian word is both smaller and a single load to decode.
var (
	magic = [4]byte{'C', 'A', 'P', 'T'}

	// ErrBadMagic is returned when a trace file does not start with the
	// expected magic bytes.
	ErrBadMagic = errors.New("trace: bad magic, not a trace file")
	// ErrBadVersion is returned for an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported format version")
)

const formatVersion = 3

// takenBit flags a taken branch inside the kind byte.
const takenBit = 0x80

// deltaState is the codec's running compression context: the previous
// IP and the previous Addr per event kind. Writer and the readers
// advance identical copies of it, so the encoded deltas resolve to the
// original absolute values.
type deltaState struct {
	prevIP   uint32
	prevAddr [8]uint32 // indexed by Kind
}

// Writer encodes events to an io.Writer in the binary trace format.
type Writer struct {
	w      *bufio.Writer
	buf    []byte
	st     deltaState
	wrote  bool
	closed bool
}

// NewWriter returns a Writer that writes the file header lazily on the
// first Emit. Call Flush before closing the underlying writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	if _, err := w.w.Write(magic[:]); err != nil {
		return err
	}
	return w.w.WriteByte(formatVersion)
}

// Emit implements Sink.
func (w *Writer) Emit(ev Event) error {
	if w.closed {
		return errors.New("trace: write after Close")
	}
	if !ev.Kind.Valid() {
		return fmt.Errorf("trace: invalid event kind %d", ev.Kind)
	}
	if err := w.header(); err != nil {
		return err
	}
	kb := byte(ev.Kind)
	if ev.Kind == KindBranch && ev.Taken {
		kb |= takenBit
	}
	b := w.buf[:0]
	b = append(b, kb)
	b = binary.AppendVarint(b, int64(int32(ev.IP-w.st.prevIP)))
	w.st.prevIP = ev.IP
	addrDelta := func(b []byte) []byte {
		b = binary.AppendVarint(b, int64(int32(ev.Addr-w.st.prevAddr[ev.Kind])))
		w.st.prevAddr[ev.Kind] = ev.Addr
		return b
	}
	switch ev.Kind {
	case KindLoad, KindStore:
		b = addrDelta(b)
		if ev.Kind == KindLoad {
			b = binary.LittleEndian.AppendUint32(b, ev.Val)
		}
		b = binary.AppendVarint(b, int64(ev.Offset))
		b = binary.AppendUvarint(b, uint64(ev.Src1))
		b = binary.AppendUvarint(b, uint64(ev.Src2))
	case KindBranch:
		b = addrDelta(b)
		b = binary.AppendUvarint(b, uint64(ev.Src1))
	case KindCall, KindReturn:
		b = addrDelta(b)
	case KindALU:
		b = binary.AppendUvarint(b, uint64(ev.Src1))
		b = binary.AppendUvarint(b, uint64(ev.Src2))
		b = append(b, ev.Lat)
	}
	w.buf = b[:0]
	_, err := w.w.Write(b)
	return err
}

// Flush writes any buffered data (and the header, for an empty trace) to
// the underlying writer.
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Close flushes the writer and rejects any further Emit calls. It does
// not close the underlying io.Writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.Flush()
}

// Reader decodes a binary trace file as a Source.
type Reader struct {
	r       *bufio.Reader
	st      deltaState
	err     error
	started bool
}

// NewReader returns a Source reading the binary trace format from r.
// The header is validated on the first call to Next.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) start() error {
	r.started = true
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrBadMagic
		}
		return err
	}
	if [4]byte(hdr[:4]) != magic {
		return ErrBadMagic
	}
	if hdr[4] != formatVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	return nil
}

func (r *Reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = truncated(err)
	}
	return v
}

func (r *Reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = truncated(err)
	}
	return v
}

func (r *Reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var b [4]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.err = truncated(err)
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (r *Reader) byte() byte {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	if err != nil {
		r.err = truncated(err)
	}
	return b
}

// truncated maps any EOF inside an event to an explicit corruption error:
// clean EOF is only legal at an event boundary.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return errors.New("trace: truncated event")
	}
	return err
}

// Next implements Source.
func (r *Reader) Next() (Event, bool) {
	if r.err != nil {
		return Event{}, false
	}
	if !r.started {
		if err := r.start(); err != nil {
			r.err = err
			return Event{}, false
		}
	}
	kb, err := r.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			r.err = err
		}
		return Event{}, false
	}
	ev := Event{Kind: Kind(kb &^ takenBit)}
	if !ev.Kind.Valid() {
		r.err = fmt.Errorf("trace: invalid event kind %d", kb)
		return Event{}, false
	}
	ev.IP = r.st.prevIP + uint32(r.varint())
	r.st.prevIP = ev.IP
	addr := func() uint32 {
		a := r.st.prevAddr[ev.Kind] + uint32(r.varint())
		r.st.prevAddr[ev.Kind] = a
		return a
	}
	switch ev.Kind {
	case KindLoad, KindStore:
		ev.Addr = addr()
		if ev.Kind == KindLoad {
			ev.Val = r.u32()
		}
		ev.Offset = int32(r.varint())
		ev.Src1 = uint32(r.uvarint())
		ev.Src2 = uint32(r.uvarint())
	case KindBranch:
		ev.Addr = addr()
		ev.Taken = kb&takenBit != 0
		ev.Src1 = uint32(r.uvarint())
	case KindCall, KindReturn:
		ev.Addr = addr()
	case KindALU:
		ev.Src1 = uint32(r.uvarint())
		ev.Src2 = uint32(r.uvarint())
		ev.Lat = r.byte()
	}
	if r.err != nil {
		return Event{}, false
	}
	return ev, true
}

// Err implements Source.
func (r *Reader) Err() error { return r.err }
