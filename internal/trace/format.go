package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format
//
//	magic   [4]byte  "CAPT"
//	version uint8    currently 3
//	events  ...      repeated until EOF
//
// Each event is a kind byte followed by varint-encoded fields. Only the
// fields meaningful for the kind are stored, and the large 32-bit fields
// (IP, Addr, Val) are delta-encoded against the previous event carrying
// the same field, which keeps most varints in the 1-2 byte range: real
// instruction streams revisit nearby IPs and walk nearby addresses, so
// consecutive differences are small where absolute values never are. A
// branch's taken flag rides in bit 7 of its kind byte.
//
//	all kinds:     kind|taken<<7, varint(IP - prevIP)
//	load:          varint(Addr - prevAddr[load]) u32le(Val) varint(Offset) uvarint(Src1) uvarint(Src2)
//	store:         varint(Addr - prevAddr[store]) varint(Offset) uvarint(Src1) uvarint(Src2)
//	branch:        varint(Addr - prevAddr[branch]) uvarint(Src1)
//	call, return:  varint(Addr - prevAddr[kind])
//	alu:           uvarint(Src1) uvarint(Src2) byte(Lat)
//
// Deltas are computed on wrapping uint32 arithmetic and stored as the
// zigzag varint of the signed 32-bit difference, so every field value
// round-trips exactly. The per-kind Addr history means interleaved load
// and store streams do not destroy each other's locality. Load values are
// the one field with no exploitable locality — they are near-random, so a
// varint (delta or absolute) averages five to six bytes; a fixed
// little-endian word is both smaller and a single load to decode.
var (
	magic = [4]byte{'C', 'A', 'P', 'T'}

	// ErrBadMagic is returned when a trace file does not start with the
	// expected magic bytes.
	ErrBadMagic = errors.New("trace: bad magic, not a trace file")
	// ErrBadVersion is returned for an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported format version")
)

const formatVersion = 3

// takenBit flags a taken branch inside the kind byte.
const takenBit = 0x80

// deltaState is the codec's running compression context: the previous
// IP and the previous Addr per event kind. Writer and the readers
// advance identical copies of it, so the encoded deltas resolve to the
// original absolute values.
type deltaState struct {
	prevIP   uint32
	prevAddr [8]uint32 // indexed by Kind
}

// Writer encodes events to an io.Writer in the binary trace format.
type Writer struct {
	w      *bufio.Writer
	buf    []byte
	st     deltaState
	wrote  bool
	closed bool
}

// NewWriter returns a Writer that writes the file header lazily on the
// first Emit. Call Flush before closing the underlying writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	if _, err := w.w.Write(magic[:]); err != nil {
		return err
	}
	return w.w.WriteByte(formatVersion)
}

// Emit implements Sink.
func (w *Writer) Emit(ev Event) error {
	if w.closed {
		return errors.New("trace: write after Close")
	}
	if !ev.Kind.Valid() {
		return fmt.Errorf("trace: invalid event kind %d", ev.Kind)
	}
	if err := w.header(); err != nil {
		return err
	}
	kb := byte(ev.Kind)
	if ev.Kind == KindBranch && ev.Taken {
		kb |= takenBit
	}
	b := w.buf[:0]
	b = append(b, kb)
	b = binary.AppendVarint(b, int64(int32(ev.IP-w.st.prevIP)))
	w.st.prevIP = ev.IP
	addrDelta := func(b []byte) []byte {
		b = binary.AppendVarint(b, int64(int32(ev.Addr-w.st.prevAddr[ev.Kind])))
		w.st.prevAddr[ev.Kind] = ev.Addr
		return b
	}
	switch ev.Kind {
	case KindLoad, KindStore:
		b = addrDelta(b)
		if ev.Kind == KindLoad {
			b = binary.LittleEndian.AppendUint32(b, ev.Val)
		}
		b = binary.AppendVarint(b, int64(ev.Offset))
		b = binary.AppendUvarint(b, uint64(ev.Src1))
		b = binary.AppendUvarint(b, uint64(ev.Src2))
	case KindBranch:
		b = addrDelta(b)
		b = binary.AppendUvarint(b, uint64(ev.Src1))
	case KindCall, KindReturn:
		b = addrDelta(b)
	case KindALU:
		b = binary.AppendUvarint(b, uint64(ev.Src1))
		b = binary.AppendUvarint(b, uint64(ev.Src2))
		b = append(b, ev.Lat)
	}
	w.buf = b[:0]
	_, err := w.w.Write(b)
	return err
}

// Flush writes any buffered data (and the header, for an empty trace) to
// the underlying writer.
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Close flushes the writer and rejects any further Emit calls. It does
// not close the underlying io.Writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.Flush()
}

// Reader decodes a binary trace file as a Source. It buffers the input
// in a sliding byte window and runs the same columnar decode core
// (decodeColumns) the replay path uses, so file-backed and cached
// streams share one decode cost model; Next and NextBatch gather events
// out of an internal block.
type Reader struct {
	r       io.Reader
	buf     []byte // window; buf[pos:filled] is undecoded input
	pos     int
	filled  int
	st      deltaState
	err     error
	started bool
	eof     bool // underlying reader hit EOF; padding appended

	// pend holds decoded-ahead events for the per-event and batch
	// interfaces; pend[pi:] are not yet delivered.
	pend *Block
	pi   int
}

// readerWindow is the Reader's input buffer size.
const readerWindow = 1 << 16

// NewReader returns a Source reading the binary trace format from r.
// The header is validated on the first read.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: make([]byte, readerWindow)}
}

// fill slides the undecoded tail of the window to the front and reads
// more input after it. The window always keeps replayPad bytes of slack
// at its top; at EOF that slack is zeroed so the decode core sees the
// same padded tail a replay cursor does. Read errors go to r.err.
func (r *Reader) fill() {
	if r.pos > 0 {
		r.filled = copy(r.buf, r.buf[r.pos:r.filled])
		r.pos = 0
	}
	for tries := 0; !r.eof && r.err == nil; {
		n, err := r.r.Read(r.buf[r.filled : len(r.buf)-replayPad])
		r.filled += n
		switch {
		case err == io.EOF:
			r.eof = true
		case err != nil:
			r.err = err
		case n > 0:
			return
		default:
			// A reader stuck on (0, nil) must not spin us forever.
			if tries++; tries >= 100 {
				r.err = io.ErrNoProgress
			}
		}
	}
	if r.eof {
		// Zero padding: terminates any varint and keeps every in-event
		// read inside the slice, exactly like a replay cursor's tail.
		pad := r.buf[r.filled : r.filled+replayPad]
		for i := range pad {
			pad[i] = 0
		}
	}
}

// start consumes and validates the file header.
func (r *Reader) start() {
	r.started = true
	for r.filled-r.pos < 5 && !r.eof && r.err == nil {
		r.fill()
	}
	if r.err != nil {
		return
	}
	if r.filled-r.pos < 5 {
		r.err = ErrBadMagic
		return
	}
	hdr := r.buf[r.pos : r.pos+5]
	if [4]byte(hdr[:4]) != magic {
		r.err = ErrBadMagic
		return
	}
	if hdr[4] != formatVersion {
		r.err = fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
		return
	}
	r.pos += 5
}

// NextBlock implements BlockSource. Mid-stream it decodes only up to
// decodeMargin short of the buffered bytes (so no event parse can leave
// the window), refilling as the window drains; after EOF it decodes to
// the logical end over the zero padding, where an overrun means a
// truncated final event.
func (r *Reader) NextBlock(b *Block, max int) (int, bool) {
	if r.err != nil || max <= 0 {
		b.Resize(0)
		return 0, false
	}
	if !r.started {
		r.start()
		if r.err != nil {
			b.Resize(0)
			return 0, false
		}
	}
	if r.pend != nil && r.pi < r.pend.Len() {
		// A per-event consumer left decoded-ahead events behind; deliver
		// the remainder as a view before decoding any further.
		n := r.pend.Len() - r.pi
		if n > max {
			n = max
		}
		viewBlock(b, r.pend, r.pi, n)
		r.pi += n
		return n, true
	}
	for {
		end := r.filled - decodeMargin
		if r.eof {
			end = r.filled // logical end; buf extends replayPad past it
		}
		if r.pos < end {
			n, pos, err := decodeColumns(b, max, r.buf, r.pos, end, &r.st)
			r.pos = pos
			if err != nil {
				r.err = err
				return n, false
			}
			if r.eof && pos >= end {
				// Clean EOF lands exactly on end; an overrun means the
				// final event's fields ran into the padding.
				if pos > end {
					r.err = errTruncatedEvent
				}
				return n, false
			}
			if n > 0 {
				return n, true
			}
		}
		if r.eof {
			b.Resize(0)
			return 0, false
		}
		r.fill()
		if r.err != nil {
			b.Resize(0)
			return 0, false
		}
	}
}

// viewBlock points b at n events of src starting at off, as a shared
// read-only view.
func viewBlock(b, src *Block, off, n int) {
	b.KindTaken = src.KindTaken[off : off+n]
	b.IP = src.IP[off : off+n]
	b.Addr = src.Addr[off : off+n]
	b.Val = src.Val[off : off+n]
	b.Offset = src.Offset[off : off+n]
	b.Src1 = src.Src1[off : off+n]
	b.Src2 = src.Src2[off : off+n]
	b.Lat = src.Lat[off : off+n]
	b.shared = true
}

// refillPend decodes the next run of events into the internal block for
// the per-event and batch interfaces.
func (r *Reader) refillPend() int {
	if r.pend == nil {
		r.pend = NewBlock(BlockLen)
	}
	n, _ := r.NextBlock(r.pend, BlockLen)
	r.pi = 0
	return n
}

// Next implements Source.
func (r *Reader) Next() (Event, bool) {
	if r.pend == nil || r.pi >= r.pend.Len() {
		if r.refillPend() == 0 {
			return Event{}, false
		}
	}
	ev := r.pend.Event(r.pi)
	r.pi++
	return ev, true
}

// NextBatch implements BatchSource, gathering out of the columnar
// decode. The cached and file paths run the same decode loop; only the
// final gather differs.
func (r *Reader) NextBatch(dst []Event) (int, bool) {
	i := 0
	for i < len(dst) {
		if r.pend == nil || r.pi >= r.pend.Len() {
			if r.refillPend() == 0 {
				return i, false
			}
		}
		for i < len(dst) && r.pi < r.pend.Len() {
			dst[i] = r.pend.Event(r.pi)
			i++
			r.pi++
		}
	}
	return i, true
}

// Err implements Source.
func (r *Reader) Err() error { return r.err }
