package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format
//
//	magic   [4]byte  "CAPT"
//	version uint8    currently 2
//	events  ...      repeated until EOF
//
// Each event is a kind byte followed by varint-encoded fields. Only the
// fields meaningful for the kind are stored, keeping files compact:
//
//	all kinds:     uvarint(IP)
//	load:          uvarint(Addr) uvarint(Val) varint(Offset) uvarint(Src1) uvarint(Src2)
//	store:         uvarint(Addr) varint(Offset) uvarint(Src1) uvarint(Src2)
//	branch:        uvarint(Addr) byte(Taken) uvarint(Src1)
//	call, return:  uvarint(Addr)
//	alu:           uvarint(Src1) uvarint(Src2) byte(Lat)
var (
	magic = [4]byte{'C', 'A', 'P', 'T'}

	// ErrBadMagic is returned when a trace file does not start with the
	// expected magic bytes.
	ErrBadMagic = errors.New("trace: bad magic, not a trace file")
	// ErrBadVersion is returned for an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported format version")
)

const formatVersion = 2

// Writer encodes events to an io.Writer in the binary trace format.
type Writer struct {
	w      *bufio.Writer
	buf    []byte
	wrote  bool
	closed bool
}

// NewWriter returns a Writer that writes the file header lazily on the
// first Emit. Call Flush before closing the underlying writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	if _, err := w.w.Write(magic[:]); err != nil {
		return err
	}
	return w.w.WriteByte(formatVersion)
}

// Emit implements Sink.
func (w *Writer) Emit(ev Event) error {
	if w.closed {
		return errors.New("trace: write after Close")
	}
	if !ev.Kind.Valid() {
		return fmt.Errorf("trace: invalid event kind %d", ev.Kind)
	}
	if err := w.header(); err != nil {
		return err
	}
	b := w.buf[:0]
	b = append(b, byte(ev.Kind))
	b = binary.AppendUvarint(b, uint64(ev.IP))
	switch ev.Kind {
	case KindLoad, KindStore:
		b = binary.AppendUvarint(b, uint64(ev.Addr))
		if ev.Kind == KindLoad {
			b = binary.AppendUvarint(b, uint64(ev.Val))
		}
		b = binary.AppendVarint(b, int64(ev.Offset))
		b = binary.AppendUvarint(b, uint64(ev.Src1))
		b = binary.AppendUvarint(b, uint64(ev.Src2))
	case KindBranch:
		b = binary.AppendUvarint(b, uint64(ev.Addr))
		if ev.Taken {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendUvarint(b, uint64(ev.Src1))
	case KindCall, KindReturn:
		b = binary.AppendUvarint(b, uint64(ev.Addr))
	case KindALU:
		b = binary.AppendUvarint(b, uint64(ev.Src1))
		b = binary.AppendUvarint(b, uint64(ev.Src2))
		b = append(b, ev.Lat)
	}
	w.buf = b[:0]
	_, err := w.w.Write(b)
	return err
}

// Flush writes any buffered data (and the header, for an empty trace) to
// the underlying writer.
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Close flushes the writer and rejects any further Emit calls. It does
// not close the underlying io.Writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.Flush()
}

// Reader decodes a binary trace file as a Source.
type Reader struct {
	r       *bufio.Reader
	err     error
	started bool
}

// NewReader returns a Source reading the binary trace format from r.
// The header is validated on the first call to Next.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) start() error {
	r.started = true
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrBadMagic
		}
		return err
	}
	if [4]byte(hdr[:4]) != magic {
		return ErrBadMagic
	}
	if hdr[4] != formatVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	return nil
}

func (r *Reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = truncated(err)
	}
	return v
}

func (r *Reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = truncated(err)
	}
	return v
}

func (r *Reader) byte() byte {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	if err != nil {
		r.err = truncated(err)
	}
	return b
}

// truncated maps any EOF inside an event to an explicit corruption error:
// clean EOF is only legal at an event boundary.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return errors.New("trace: truncated event")
	}
	return err
}

// Next implements Source.
func (r *Reader) Next() (Event, bool) {
	if r.err != nil {
		return Event{}, false
	}
	if !r.started {
		if err := r.start(); err != nil {
			r.err = err
			return Event{}, false
		}
	}
	kb, err := r.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			r.err = err
		}
		return Event{}, false
	}
	ev := Event{Kind: Kind(kb)}
	if !ev.Kind.Valid() {
		r.err = fmt.Errorf("trace: invalid event kind %d", kb)
		return Event{}, false
	}
	ev.IP = uint32(r.uvarint())
	switch ev.Kind {
	case KindLoad, KindStore:
		ev.Addr = uint32(r.uvarint())
		if ev.Kind == KindLoad {
			ev.Val = uint32(r.uvarint())
		}
		ev.Offset = int32(r.varint())
		ev.Src1 = uint32(r.uvarint())
		ev.Src2 = uint32(r.uvarint())
	case KindBranch:
		ev.Addr = uint32(r.uvarint())
		ev.Taken = r.byte() != 0
		ev.Src1 = uint32(r.uvarint())
	case KindCall, KindReturn:
		ev.Addr = uint32(r.uvarint())
	case KindALU:
		ev.Src1 = uint32(r.uvarint())
		ev.Src2 = uint32(r.uvarint())
		ev.Lat = r.byte()
	}
	if r.err != nil {
		return Event{}, false
	}
	return ev, true
}

// Err implements Source.
func (r *Reader) Err() error { return r.err }
