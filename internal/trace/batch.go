package trace

// Batched event delivery. The experiment harness replays the same traces
// through dozens of predictor configurations; pulling events one
// interface call at a time makes dynamic dispatch the bottleneck of
// every drain loop. BatchSource amortises that cost: a consumer hands in
// an event buffer and receives up to len(buf) events per call.
//
// The contract mirrors Source's scanner model:
//
//   - NextBatch fills dst from the front and returns how many events
//     were written. dst must be non-empty.
//   - ok is false once the stream is exhausted (clean EOF or error); the
//     final partial batch may be delivered alongside ok == false.
//   - After ok == false, Err reports whether the stream ended on an
//     error, exactly as for Source.
//
// Wrappers that implement BatchSource natively (Limit, FailAfter,
// Corrupt) keep batching intact through a wrapper chain; everything else
// is adapted by AsBatch with a per-event fallback loop.

// BatchSource is a Source that can deliver events in batches.
type BatchSource interface {
	Source
	// NextBatch fills dst with up to len(dst) events and returns the
	// count written. ok is false when the stream is exhausted; a final
	// partial batch may arrive in the same call.
	NextBatch(dst []Event) (n int, ok bool)
}

// AsBatch returns src itself when it already implements BatchSource, or
// wraps it in an adapter that assembles batches with per-event Next
// calls otherwise.
func AsBatch(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &batchAdapter{src: src}
}

// batchAdapter lifts an unbatched Source to the BatchSource interface.
type batchAdapter struct{ src Source }

// Next implements Source.
func (a *batchAdapter) Next() (Event, bool) { return a.src.Next() }

// Err implements Source.
func (a *batchAdapter) Err() error { return a.src.Err() }

// NextBatch implements BatchSource.
func (a *batchAdapter) NextBatch(dst []Event) (int, bool) {
	for i := range dst {
		ev, ok := a.src.Next()
		if !ok {
			return i, false
		}
		dst[i] = ev
	}
	return len(dst), true
}

// NextBatch implements BatchSource by copying straight out of the slice.
func (s *SliceSource) NextBatch(dst []Event) (int, bool) {
	n := copy(dst, s.events[s.pos:])
	s.pos += n
	return n, s.pos < len(s.events)
}

// NextBatch implements BatchSource: the limit truncates the batch, and
// batching is preserved through the wrapped source when it supports it.
func (l *Limit) NextBatch(dst []Event) (int, bool) {
	if l.n <= 0 {
		return 0, false
	}
	if int64(len(dst)) > l.n {
		dst = dst[:l.n]
	}
	if l.bs == nil {
		l.bs = AsBatch(l.src)
	}
	n, ok := l.bs.NextBatch(dst)
	l.n -= int64(n)
	if l.n <= 0 {
		ok = false
	}
	return n, ok
}
