package trace

import (
	"fmt"
	"sync"
)

// ReplayCache materialises event streams once, as struct-of-arrays
// column stores (one full-trace Block per key), and hands out
// independent replay cursors over the shared columns. The experiment
// harness replays every trace through dozens of predictor
// configurations; without the cache each replay re-runs the workload
// generator from scratch, which dominates sweep wall-clock. A warm
// cursor's NextBlock delivers zero-copy views into the resident
// columns, so warm replay is bounded by memory bandwidth, not decode:
// no varints, no per-event branches, no allocation.
//
// Columns cost 26 bytes/event resident (vs ~6.7 for the v3 varint
// encoding the trace files use) — the cache deliberately trades memory
// for hardware-speed replay; a full 45-trace × 400k-event roster is
// still under half a gigabyte. The budget caps that footprint.
//
// Concurrency: a key is materialised at most once (concurrent first
// opens of the same key serialise on the entry; distinct keys
// materialise in parallel), and cursors only read the shared immutable
// columns — Block.Resize and Block.Own reallocate before any consumer
// write can land in them — so any number of goroutines may replay the
// same trace concurrently.
//
// Budget: the cache retains at most budget bytes of resident columns. A
// stream that would overflow the budget is not retained — the open that
// discovered it and every later open of the same key fall back to the
// live generator, so results are identical with and without the cache,
// only slower.
type ReplayCache struct {
	budget int64 // bytes; <= 0 means unlimited

	mu       sync.Mutex
	used     int64
	resident int
	rejected int
	hits     int64
	misses   int64
	entries  map[string]*replayEntry
}

// replayEntry is one key's materialisation slot.
type replayEntry struct {
	mu   sync.Mutex
	done bool
	cols *Block // nil when not retained (over budget or source error)
}

// colBytesPerEvent is the resident cost of one event across a Block's
// columns: kind+lat bytes plus six 4-byte lanes.
const colBytesPerEvent = 26

// ReplayStats is a snapshot of the cache's occupancy.
type ReplayStats struct {
	Entries  int   // streams resident in memory
	Bytes    int64 // resident column bytes
	Budget   int64 // configured budget (0 = unlimited)
	Rejected int   // streams not retained (over budget or source error)
	Hits     int64 // opens served from a resident stream
	Misses   int64 // opens that fell back to the live source
}

// NewReplayCache returns a cache bounded to budgetBytes of resident
// columns; a non-positive budget means unlimited.
func NewReplayCache(budgetBytes int64) *ReplayCache {
	return &ReplayCache{budget: budgetBytes, entries: make(map[string]*replayEntry)}
}

// Open returns a Source replaying the stream identified by key. On the
// first open of a key the stream is drawn from gen(), encoded and (budget
// permitting) retained; later opens return fresh cursors over the shared
// encoding. When the stream cannot be retained — it would overflow the
// budget, or gen()'s stream ended on an error — Open falls back to a
// fresh gen() source so the caller sees exactly the live behaviour.
//
// gen must be deterministic for a fixed key: every call yields the same
// stream. The cache trusts the key; callers must fold anything that
// changes the stream (trace name, event budget) into it.
func (c *ReplayCache) Open(key string, gen func() Source) Source {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &replayEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	if !e.done {
		e.cols = c.materialise(gen)
		e.done = true
	}
	cols := e.cols
	e.mu.Unlock()

	c.mu.Lock()
	if cols == nil {
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()

	if cols == nil {
		return gen()
	}
	return newColReader(cols)
}

// materialise drains one stream into a column store, honouring the byte
// budget. It returns nil when the stream is not retained. Events pass
// through the block scatter (SetEvent), so only the fields each kind
// carries land in the columns — cached replays return exactly the
// canonical form the v3 codec round-trips.
func (c *ReplayCache) materialise(gen func() Source) *Block {
	limit := c.remaining()
	src := AsBlocks(gen())
	b := GetBlock()
	defer PutBlock(b)
	cols := &Block{}
	for {
		n, ok := src.NextBlock(b, BlockLen)
		cols.KindTaken = append(cols.KindTaken, b.KindTaken[:n]...)
		cols.IP = append(cols.IP, b.IP[:n]...)
		cols.Addr = append(cols.Addr, b.Addr[:n]...)
		cols.Val = append(cols.Val, b.Val[:n]...)
		cols.Offset = append(cols.Offset, b.Offset[:n]...)
		cols.Src1 = append(cols.Src1, b.Src1[:n]...)
		cols.Src2 = append(cols.Src2, b.Src2[:n]...)
		cols.Lat = append(cols.Lat, b.Lat[:n]...)
		if limit >= 0 && int64(cols.Len())*colBytesPerEvent > limit {
			// Over budget: abandon the columns; every open of this key
			// regenerates live instead.
			return c.reject()
		}
		if !ok {
			break
		}
	}
	if err := src.Err(); err != nil {
		// A failing stream is never cached: the error must surface
		// through the live path on every open.
		return c.reject()
	}
	size := int64(cols.Len()) * colBytesPerEvent
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check at commit time: concurrent materialisations of distinct
	// keys may each have fit the budget alone but not together.
	if c.budget > 0 && c.used+size > c.budget {
		c.rejected++
		return nil
	}
	c.used += size
	c.resident++
	return cols
}

// remaining returns the unspent byte budget, or -1 for unlimited.
func (c *ReplayCache) remaining() int64 {
	if c.budget <= 0 {
		return -1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rem := c.budget - c.used
	if rem < 0 {
		rem = 0
	}
	return rem
}

// reject counts a stream that was not retained and returns the nil
// column slot, so call sites read as one-liners.
func (c *ReplayCache) reject() *Block {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
	return nil
}

// colReader is a replay cursor over a resident column store. NextBlock
// hands out zero-copy views (marked shared, see Block); Next and
// NextBatch gather events through the kind-gated scatter/gather so
// per-event consumers see the same canonical events.
type colReader struct {
	cols *Block
	pos  int
}

func newColReader(cols *Block) *colReader { return &colReader{cols: cols} }

// Next implements Source.
func (r *colReader) Next() (Event, bool) {
	if r.pos >= r.cols.Len() {
		return Event{}, false
	}
	ev := r.cols.Event(r.pos)
	r.pos++
	return ev, true
}

// Err implements Source: a resident store never fails.
func (r *colReader) Err() error { return nil }

// NextBatch implements BatchSource by gathering into the caller's
// buffer.
func (r *colReader) NextBatch(dst []Event) (int, bool) {
	n := r.cols.Len() - r.pos
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.cols.Event(r.pos + i)
	}
	r.pos += n
	return n, r.pos < r.cols.Len()
}

// NextBlock implements BlockSource with a zero-copy view: b's columns
// are repointed at the resident store for the next n events. The view
// is read-only and valid until the next call (the Block contract).
func (r *colReader) NextBlock(b *Block, max int) (int, bool) {
	n := r.cols.Len() - r.pos
	if n > max {
		n = max
	}
	p := r.pos
	b.KindTaken = r.cols.KindTaken[p : p+n]
	b.IP = r.cols.IP[p : p+n]
	b.Addr = r.cols.Addr[p : p+n]
	b.Val = r.cols.Val[p : p+n]
	b.Offset = r.cols.Offset[p : p+n]
	b.Src1 = r.cols.Src1[p : p+n]
	b.Src2 = r.cols.Src2[p : p+n]
	b.Lat = r.cols.Lat[p : p+n]
	b.shared = true
	r.pos += n
	return n, r.pos < r.cols.Len()
}

// Stats returns a snapshot of the cache occupancy and hit counters.
func (c *ReplayCache) Stats() ReplayStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ReplayStats{
		Entries:  c.resident,
		Bytes:    c.used,
		Budget:   c.budget,
		Rejected: c.rejected,
		Hits:     c.hits,
		Misses:   c.misses,
	}
}

// String renders the stats as one report line.
func (s ReplayStats) String() string {
	budget := "unlimited"
	if s.Budget > 0 {
		budget = fmt.Sprintf("%d MiB", s.Budget>>20)
	}
	return fmt.Sprintf("replay cache: %d streams, %.1f MiB resident (budget %s), %d hits, %d misses, %d rejected",
		s.Entries, float64(s.Bytes)/(1<<20), budget, s.Hits, s.Misses, s.Rejected)
}
