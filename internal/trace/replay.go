package trace

import (
	"bytes"
	"fmt"
	"sync"
)

// ReplayCache materialises event streams once, in the compact varint
// encoding of format.go, and hands out independent replay cursors over
// the shared bytes. The experiment harness replays every trace through
// dozens of predictor configurations; without the cache each replay
// re-runs the workload generator from scratch, which dominates sweep
// wall-clock. Encoded streams run a few bytes per event instead of the
// ~32-byte Event struct, so a full 45-trace roster fits comfortably in a
// few hundred megabytes.
//
// Concurrency: a key is materialised at most once (concurrent first
// opens of the same key serialise on the entry; distinct keys
// materialise in parallel), and cursors only read the shared immutable
// byte slice, so any number of goroutines may replay the same trace
// concurrently.
//
// Budget: the cache retains at most budget bytes of encoded streams. A
// stream that would overflow the budget is not retained — the open that
// discovered it and every later open of the same key fall back to the
// live generator, so results are identical with and without the cache,
// only slower.
type ReplayCache struct {
	budget int64 // bytes; <= 0 means unlimited

	mu       sync.Mutex
	used     int64
	resident int
	rejected int
	hits     int64
	misses   int64
	entries  map[string]*replayEntry
}

// replayEntry is one key's materialisation slot.
type replayEntry struct {
	mu   sync.Mutex
	done bool
	data []byte // nil when not retained (over budget or source error)
}

// ReplayStats is a snapshot of the cache's occupancy.
type ReplayStats struct {
	Entries  int   // streams resident in memory
	Bytes    int64 // encoded bytes resident
	Budget   int64 // configured budget (0 = unlimited)
	Rejected int   // streams not retained (over budget or source error)
	Hits     int64 // opens served from a resident stream
	Misses   int64 // opens that fell back to the live source
}

// NewReplayCache returns a cache bounded to budgetBytes of encoded
// streams; a non-positive budget means unlimited.
func NewReplayCache(budgetBytes int64) *ReplayCache {
	return &ReplayCache{budget: budgetBytes, entries: make(map[string]*replayEntry)}
}

// Open returns a Source replaying the stream identified by key. On the
// first open of a key the stream is drawn from gen(), encoded and (budget
// permitting) retained; later opens return fresh cursors over the shared
// encoding. When the stream cannot be retained — it would overflow the
// budget, or gen()'s stream ended on an error — Open falls back to a
// fresh gen() source so the caller sees exactly the live behaviour.
//
// gen must be deterministic for a fixed key: every call yields the same
// stream. The cache trusts the key; callers must fold anything that
// changes the stream (trace name, event budget) into it.
func (c *ReplayCache) Open(key string, gen func() Source) Source {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &replayEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	if !e.done {
		e.data = c.materialise(gen)
		e.done = true
	}
	data := e.data
	e.mu.Unlock()

	c.mu.Lock()
	if data == nil {
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()

	if data == nil {
		return gen()
	}
	return newMemReader(data)
}

// materialise encodes one stream, honouring the byte budget. It returns
// nil when the stream is not retained.
func (c *ReplayCache) materialise(gen func() Source) []byte {
	limit := c.remaining()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	src := AsBatch(gen())
	var batch [1024]Event
	for {
		n, ok := src.NextBatch(batch[:])
		for _, ev := range batch[:n] {
			if err := w.Emit(ev); err != nil {
				return c.reject()
			}
		}
		if err := w.Flush(); err != nil {
			return c.reject()
		}
		if limit >= 0 && int64(buf.Len()) > limit {
			// Over budget: abandon the encoding; every open of this key
			// regenerates live instead.
			return c.reject()
		}
		if !ok {
			break
		}
	}
	if err := src.Err(); err != nil {
		// A failing stream is never cached: the error must surface
		// through the live path on every open.
		return c.reject()
	}
	if err := w.Close(); err != nil {
		return c.reject()
	}
	// Trailing zero padding lets replay cursors drop per-byte bounds
	// checks in their decode loop (see replayPad).
	buf.Write(make([]byte, replayPad))
	data := buf.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check at commit time: concurrent materialisations of distinct
	// keys may each have fit the budget alone but not together.
	if c.budget > 0 && c.used+int64(len(data)) > c.budget {
		c.rejected++
		return nil
	}
	c.used += int64(len(data))
	c.resident++
	return data
}

// remaining returns the unspent byte budget, or -1 for unlimited.
func (c *ReplayCache) remaining() int64 {
	if c.budget <= 0 {
		return -1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rem := c.budget - c.used
	if rem < 0 {
		rem = 0
	}
	return rem
}

// reject counts a stream that was not retained and returns the nil data
// slot, so call sites read as one-liners.
func (c *ReplayCache) reject() []byte {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the cache occupancy and hit counters.
func (c *ReplayCache) Stats() ReplayStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ReplayStats{
		Entries:  c.resident,
		Bytes:    c.used,
		Budget:   c.budget,
		Rejected: c.rejected,
		Hits:     c.hits,
		Misses:   c.misses,
	}
}

// String renders the stats as one report line.
func (s ReplayStats) String() string {
	budget := "unlimited"
	if s.Budget > 0 {
		budget = fmt.Sprintf("%d MiB", s.Budget>>20)
	}
	return fmt.Sprintf("replay cache: %d streams, %.1f MiB resident (budget %s), %d hits, %d misses, %d rejected",
		s.Entries, float64(s.Bytes)/(1<<20), budget, s.Hits, s.Misses, s.Rejected)
}
