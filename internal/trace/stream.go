package trace

import (
	"fmt"
	"io"
)

// StreamDecoder decodes the binary trace format incrementally from
// arbitrarily-segmented chunks of one logical stream — the shape of a
// network ingest path, where a session's events arrive across many
// request bodies split at whatever byte boundaries the transport chose.
// The delta-compression state persists across Feed calls, so the
// concatenation of all chunks decodes to exactly the events a Reader or
// a replay cursor would produce over the whole stream at once.
//
// Bytes that form an incomplete trailing event are buffered until the
// next Feed supplies the rest; the buffer is bounded by the largest
// possible encoded event (a few tens of bytes), since every varint is
// capped at ten bytes before it is rejected as overlong. Only Close can
// tell truncation apart from "more chunks coming", so the decoder
// reports a mid-event stream end when the caller declares the stream
// finished, exactly like Reader does at a file's EOF.
type StreamDecoder struct {
	st      deltaState
	tail    []byte // owned buffer of an incomplete trailing event (or header)
	started bool   // header consumed
	err     error
	events  int64
}

// NewStreamDecoder returns a decoder expecting the standard file header
// at the start of the stream.
func NewStreamDecoder() *StreamDecoder { return &StreamDecoder{} }

// Events returns the number of events decoded so far.
func (d *StreamDecoder) Events() int64 { return d.events }

// Buffered returns the number of bytes held back as an incomplete
// trailing event.
func (d *StreamDecoder) Buffered() int { return len(d.tail) }

// Err returns the first error encountered, or nil.
func (d *StreamDecoder) Err() error { return d.err }

// Feed appends chunk to the stream and decodes every complete event in
// it, appending them to dst and returning the extended slice. chunk is
// not retained. Once the decoder has failed, Feed keeps returning the
// same error.
func (d *StreamDecoder) Feed(dst []Event, chunk []byte) ([]Event, error) {
	if d.err != nil {
		return dst, d.err
	}
	data := chunk
	if len(d.tail) > 0 {
		d.tail = append(d.tail, chunk...)
		data = d.tail
	}
	pos := 0
	if !d.started {
		if len(data) < 5 {
			d.keepTail(data, 0)
			return dst, nil
		}
		if [4]byte(data[:4]) != magic {
			d.err = ErrBadMagic
			return dst, d.err
		}
		if data[4] != formatVersion {
			d.err = fmt.Errorf("%w: %d", ErrBadVersion, data[4])
			return dst, d.err
		}
		d.started = true
		pos = 5
	}
	for pos < len(data) {
		ev, next, err := decodeStreamEvent(data, pos, &d.st)
		if err == errShortEvent {
			break
		}
		if err != nil {
			d.err = err
			d.tail = nil
			return dst, d.err
		}
		dst = append(dst, ev)
		d.events++
		pos = next
	}
	d.keepTail(data, pos)
	return dst, nil
}

// FeedBlocks is Feed for the block pipeline: it decodes every complete
// event in chunk straight into SoA blocks and invokes fn on each
// non-empty block, never materialising an Event per event on the bulk
// path. The bulk of the chunk goes through the columnar word-at-a-time
// core (safe wherever an event's farthest possible speculative read
// stays inside the chunk); the final decodeMargin bytes go through the
// fully bounds-checked per-event path, so the per-call event count is
// identical to Feed's — everything complete decodes now, only a
// genuinely incomplete trailing event waits for the next chunk.
//
// The block passed to fn is reused across calls and valid only for the
// duration of the call. Delta state, tail buffering, error latching and
// the Events counter behave exactly as for Feed; the two entry points
// may even be mixed on one decoder.
func (d *StreamDecoder) FeedBlocks(chunk []byte, fn func(*Block)) error {
	if d.err != nil {
		return d.err
	}
	data := chunk
	if len(d.tail) > 0 {
		d.tail = append(d.tail, chunk...)
		data = d.tail
	}
	pos := 0
	if !d.started {
		if len(data) < 5 {
			d.keepTail(data, 0)
			return nil
		}
		if [4]byte(data[:4]) != magic {
			d.err = ErrBadMagic
			return d.err
		}
		if data[4] != formatVersion {
			d.err = fmt.Errorf("%w: %d", ErrBadVersion, data[4])
			return d.err
		}
		d.started = true
		pos = 5
	}
	b := GetBlock()
	defer PutBlock(b)
	// Columnar bulk. Holding end decodeMargin short of the chunk keeps
	// every speculative read of the word-at-a-time core inside data; the
	// final event before end may legitimately extend past it (those are
	// real bytes, not padding), and the tail sweep resumes after it.
	for end := len(data) - decodeMargin; pos < end; {
		n, next, err := decodeColumns(b, BlockLen, data, pos, end, &d.st)
		pos = next
		d.events += int64(n)
		if n > 0 && fn != nil {
			fn(b)
		}
		if err != nil {
			d.err = err
			d.tail = nil
			return d.err
		}
	}
	// Margin sweep: per-event and bounds-checked, stopping only at a
	// genuinely incomplete trailing event. At most decodeMargin bytes —
	// a handful of events — so the gather/scatter cost is immaterial.
	b.Resize(BlockLen)
	i := 0
	for pos < len(data) {
		ev, next, err := decodeStreamEvent(data, pos, &d.st)
		if err == errShortEvent {
			break
		}
		if err != nil {
			d.err = err
			d.tail = nil
			return d.err
		}
		b.SetEvent(i, ev)
		i++
		pos = next
	}
	if i > 0 {
		b.Resize(i)
		d.events += int64(i)
		if fn != nil {
			fn(b)
		}
	}
	d.keepTail(data, pos)
	return nil
}

// keepTail retains data[pos:] in the decoder-owned tail buffer. data may
// be the tail buffer itself (overlapping copy is fine) or the caller's
// chunk (which must be copied, not aliased).
func (d *StreamDecoder) keepTail(data []byte, pos int) {
	rem := data[pos:]
	if len(rem) == 0 {
		d.tail = d.tail[:0]
		return
	}
	if d.tail == nil {
		d.tail = make([]byte, 0, 64)
	}
	d.tail = d.tail[:0]
	d.tail = append(d.tail, rem...)
}

// Close declares the end of the stream. It returns an error when the
// stream ended in the middle of an event — or before a complete header,
// which mirrors Reader treating a short header as ErrBadMagic — and nil
// on a clean event boundary.
func (d *StreamDecoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if !d.started {
		d.err = ErrBadMagic
		return d.err
	}
	if len(d.tail) > 0 {
		d.err = errTruncatedEvent
		return d.err
	}
	return nil
}

// streamChunk is the read granularity of DecodeStream: large enough to
// amortise the read syscall, small enough to bound per-call latency.
const streamChunk = 32 << 10

// DecodeStream reads r to EOF, decoding complete events and invoking fn
// on each decoded batch; it is the reader-based batch-decode entry point
// the serving path drains request bodies through. Decoder state persists
// across calls, so one session may span many readers. fn must not retain
// the batch slice. A non-nil fn error aborts the read and is returned
// verbatim; decode errors are also latched in the decoder.
func (d *StreamDecoder) DecodeStream(r io.Reader, fn func([]Event) error) error {
	if d.err != nil {
		return d.err
	}
	var buf [streamChunk]byte
	var evs []Event
	for {
		n, rerr := r.Read(buf[:])
		if n > 0 {
			var err error
			evs, err = d.Feed(evs[:0], buf[:n])
			if err != nil {
				return err
			}
			if len(evs) > 0 && fn != nil {
				if err := fn(evs); err != nil {
					return err
				}
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			d.err = rerr
			return rerr
		}
	}
}

// decodeStreamEvent decodes one event at data[pos:], advancing the delta
// state. It returns errShortEvent — without touching st — when data ends
// before the event does, so the caller can retry once more bytes arrive.
func decodeStreamEvent(data []byte, pos int, st *deltaState) (Event, int, error) {
	// Decode against a scratch copy of the state: a short event must not
	// leave half-advanced deltas behind for the retry.
	scratch := *st
	kb := data[pos]
	pos++
	ev := Event{Kind: Kind(kb &^ takenBit)}
	if !ev.Kind.Valid() {
		return Event{}, 0, fmt.Errorf("trace: invalid event kind %d", kb)
	}
	u, pos, err := streamUvarint(data, pos)
	if err != nil {
		return Event{}, 0, err
	}
	scratch.prevIP += zigzag32(u)
	ev.IP = scratch.prevIP
	addr := func() error {
		u, pos, err = streamUvarint(data, pos)
		if err == nil {
			scratch.prevAddr[ev.Kind] += zigzag32(u)
			ev.Addr = scratch.prevAddr[ev.Kind]
		}
		return err
	}
	switch ev.Kind {
	case KindLoad, KindStore:
		if err := addr(); err != nil {
			return Event{}, 0, err
		}
		if ev.Kind == KindLoad {
			if pos+4 > len(data) {
				return Event{}, 0, errShortEvent
			}
			ev.Val = uint32(data[pos]) | uint32(data[pos+1])<<8 |
				uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24
			pos += 4
		}
		if u, pos, err = streamUvarint(data, pos); err != nil {
			return Event{}, 0, err
		}
		ev.Offset = int32(zigzag32(u))
		if u, pos, err = streamUvarint(data, pos); err != nil {
			return Event{}, 0, err
		}
		ev.Src1 = uint32(u)
		if u, pos, err = streamUvarint(data, pos); err != nil {
			return Event{}, 0, err
		}
		ev.Src2 = uint32(u)
	case KindBranch:
		if err := addr(); err != nil {
			return Event{}, 0, err
		}
		ev.Taken = kb&takenBit != 0
		if u, pos, err = streamUvarint(data, pos); err != nil {
			return Event{}, 0, err
		}
		ev.Src1 = uint32(u)
	case KindCall, KindReturn:
		if err := addr(); err != nil {
			return Event{}, 0, err
		}
	case KindALU:
		if u, pos, err = streamUvarint(data, pos); err != nil {
			return Event{}, 0, err
		}
		ev.Src1 = uint32(u)
		if u, pos, err = streamUvarint(data, pos); err != nil {
			return Event{}, 0, err
		}
		ev.Src2 = uint32(u)
		if pos >= len(data) {
			return Event{}, 0, errShortEvent
		}
		ev.Lat = data[pos]
		pos++
	}
	*st = scratch
	return ev, pos, nil
}

// errShortEvent reports that the chunk ends before the current event
// does; unlike errTruncatedEvent it is recoverable — the decoder waits
// for the next chunk.
var errShortEvent = fmt.Errorf("trace: event continues past chunk")

// streamUvarint decodes an unsigned varint at data[pos:], distinguishing
// "ran out of bytes" (errShortEvent) from an overlong encoding, which is
// corruption no further bytes can repair.
func streamUvarint(data []byte, pos int) (uint64, int, error) {
	var v uint64
	var s uint
	for i := pos; i < len(data); i++ {
		b := data[i]
		if b < 0x80 {
			if s == 63 && b > 1 {
				return 0, 0, errTruncatedEvent // overflows uint64
			}
			return v | uint64(b)<<s, i + 1, nil
		}
		v |= uint64(b&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, 0, errTruncatedEvent
		}
	}
	return 0, 0, errShortEvent
}
