package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// encodeEvents renders evs in the binary format, header included.
func encodeEvents(t *testing.T, evs []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, ev := range evs {
		if err := w.Emit(ev); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// randomEvents builds a deterministic pseudo-random event mix.
func randomEvents(seed int64, n int) []Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Kind:   Kind(rng.Intn(int(numKinds))),
			IP:     rng.Uint32(),
			Addr:   rng.Uint32(),
			Val:    rng.Uint32(),
			Offset: int32(rng.Uint32()),
			Taken:  rng.Intn(2) == 0,
			Src1:   rng.Uint32() % 1024,
			Src2:   rng.Uint32() % 1024,
			Lat:    uint8(rng.Intn(20)),
		}
	}
	return evs
}

// feedAll drives a StreamDecoder over data in fixed-size chunks.
func feedAll(t *testing.T, data []byte, chunk int) ([]Event, error) {
	t.Helper()
	d := NewStreamDecoder()
	var out []Event
	for pos := 0; pos < len(data); pos += chunk {
		end := pos + chunk
		if end > len(data) {
			end = len(data)
		}
		var err error
		out, err = d.Feed(out, data[pos:end])
		if err != nil {
			return out, err
		}
	}
	return out, d.Close()
}

func TestStreamDecoderChunkSizes(t *testing.T) {
	evs := randomEvents(7, 500)
	data := encodeEvents(t, evs)
	for _, chunk := range []int{1, 2, 3, 5, 7, 64, 4096, len(data)} {
		got, err := feedAll(t, data, chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if len(got) != len(evs) {
			t.Fatalf("chunk %d: decoded %d events, want %d", chunk, len(got), len(evs))
		}
		for i := range evs {
			if got[i] != canonical(evs[i]) {
				t.Fatalf("chunk %d: event %d = %+v, want %+v", chunk, i, got[i], canonical(evs[i]))
			}
		}
	}
}

func TestStreamDecoderEmptyStream(t *testing.T) {
	data := encodeEvents(t, nil) // header only
	got, err := feedAll(t, data, 2)
	if err != nil || len(got) != 0 {
		t.Fatalf("header-only stream: got %d events, err %v", len(got), err)
	}
}

func TestStreamDecoderBadHeader(t *testing.T) {
	if _, err := feedAll(t, []byte("XXXX\x03rest"), 3); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	if _, err := feedAll(t, []byte{'C', 'A', 'P', 'T', 99}, 2); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v", err)
	}
	// A stream that ends before a full header is indistinguishable from a
	// non-trace stream.
	if _, err := feedAll(t, []byte("CAP"), 1); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("short header: got %v", err)
	}
	if _, err := feedAll(t, nil, 1); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty stream: got %v", err)
	}
}

func TestStreamDecoderTruncatedTail(t *testing.T) {
	evs := randomEvents(11, 50)
	data := encodeEvents(t, evs)
	for cut := len(data) - 1; cut > len(data)-10 && cut > 5; cut-- {
		got, err := feedAll(t, data[:cut], 7)
		if err == nil {
			t.Fatalf("cut at %d: no error from truncated stream", cut)
		}
		if len(got) >= len(evs) {
			t.Fatalf("cut at %d: decoded %d events from truncated stream of %d", cut, len(got), len(evs))
		}
	}
}

func TestStreamDecoderInvalidKind(t *testing.T) {
	data := append(encodeEvents(t, randomEvents(3, 4)), 0x17) // kind 23 is invalid
	_, err := feedAll(t, data, 3)
	if err == nil {
		t.Fatal("invalid kind byte not rejected")
	}
}

func TestStreamDecoderErrorLatches(t *testing.T) {
	d := NewStreamDecoder()
	if _, err := d.Feed(nil, []byte("XXXXXXXX")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("first Feed: %v", err)
	}
	if _, err := d.Feed(nil, encodeEvents(t, randomEvents(1, 3))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("error did not latch: %v", err)
	}
	if err := d.Close(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Close after error: %v", err)
	}
}

// TestStreamDecoderDecodeStream drains an io.Reader in batches and must
// agree with the in-memory decode of the same bytes.
func TestStreamDecoderDecodeStream(t *testing.T) {
	evs := randomEvents(23, 3000)
	data := encodeEvents(t, evs)
	d := NewStreamDecoder()
	var got []Event
	err := d.DecodeStream(iotest{r: bytes.NewReader(data), step: 13}, func(batch []Event) error {
		got = append(got, batch...)
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != canonical(evs[i]) {
			t.Fatalf("event %d mismatch", i)
		}
	}
	if d.Events() != int64(len(evs)) {
		t.Fatalf("Events() = %d, want %d", d.Events(), len(evs))
	}
}

// TestStreamDecoderSpansReaders: one logical stream split across two
// readers (two request bodies) decodes seamlessly.
func TestStreamDecoderSpansReaders(t *testing.T) {
	evs := randomEvents(29, 200)
	data := encodeEvents(t, evs)
	cut := len(data) / 2
	d := NewStreamDecoder()
	var got []Event
	collect := func(batch []Event) error { got = append(got, batch...); return nil }
	if err := d.DecodeStream(bytes.NewReader(data[:cut]), collect); err != nil {
		t.Fatalf("first body: %v", err)
	}
	if err := d.DecodeStream(bytes.NewReader(data[cut:]), collect); err != nil {
		t.Fatalf("second body: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
}

func TestStreamDecoderFnError(t *testing.T) {
	data := encodeEvents(t, randomEvents(31, 100))
	d := NewStreamDecoder()
	sentinel := errors.New("stop")
	err := d.DecodeStream(bytes.NewReader(data), func([]Event) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("fn error not propagated: %v", err)
	}
}

// iotest delivers at most step bytes per Read, forcing chunk reassembly.
type iotest struct {
	r    io.Reader
	step int
}

func (s iotest) Read(p []byte) (int, error) {
	if len(p) > s.step {
		p = p[:s.step]
	}
	return s.r.Read(p)
}

// memDecodeAll decodes data (header + events, no padding) through the
// replay cache's in-memory cursor, the package's reference decoder.
func memDecodeAll(data []byte) ([]Event, error) {
	padded := append(append([]byte{}, data...), make([]byte, replayPad)...)
	r := newMemReader(padded)
	var out []Event
	var buf [256]Event
	for {
		n, ok := r.NextBatch(buf[:])
		out = append(out, buf[:n]...)
		if !ok {
			break
		}
	}
	return out, r.Err()
}

// FuzzStreamDecoder cross-checks the chunked stream decoder against the
// in-memory reference cursor over identical bytes: same events, and
// errors on the same inputs — including truncated and corrupt tails. The
// one tolerated divergence: on a truncated tail the padded in-memory
// cursor may emit a final garbage event decoded out of its padding
// before flagging the error; the stream decoder never emits it.
func FuzzStreamDecoder(f *testing.F) {
	valid := func(n int) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			_ = w.Emit(Event{
				Kind: Kind(rng.Intn(int(numKinds))), IP: rng.Uint32(), Addr: rng.Uint32(),
				Val: rng.Uint32(), Offset: int32(rng.Uint32()), Taken: i%2 == 0,
				Src1: rng.Uint32() % 512, Src2: rng.Uint32() % 512, Lat: uint8(i),
			})
		}
		_ = w.Close()
		return buf.Bytes()
	}
	f.Add(valid(20), uint8(3))
	f.Add(valid(5)[:20], uint8(1))          // truncated mid-event
	f.Add(append(valid(2), 0x42), uint8(4)) // corrupt tail kind
	f.Add([]byte("CAPT\x03"), uint8(1))
	f.Add([]byte("CAPT\x02"), uint8(2))
	f.Add([]byte{}, uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		step := int(chunk)%64 + 1
		want, wantErr := memDecodeAll(data)

		d := NewStreamDecoder()
		var got []Event
		var gotErr error
		for pos := 0; pos < len(data) && gotErr == nil; pos += step {
			end := pos + step
			if end > len(data) {
				end = len(data)
			}
			got, gotErr = d.Feed(got, data[pos:end])
		}
		if gotErr == nil {
			gotErr = d.Close()
		}

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error divergence: mem=%v stream=%v", wantErr, gotErr)
		}
		if wantErr == nil {
			if len(got) != len(want) {
				t.Fatalf("decoded %d events, reference %d", len(got), len(want))
			}
		} else {
			// Reference may have emitted one extra padding-built event.
			if len(want)-len(got) > 1 || len(got) > len(want) {
				t.Fatalf("on error: decoded %d events, reference %d", len(got), len(want))
			}
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("event %d: stream %+v, reference %+v", i, got[i], want[i])
			}
		}
	})
}
