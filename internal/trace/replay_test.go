package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

// drainAll pulls a source dry per-event and fails the test on a stream
// error.
func drainAll(t *testing.T, src Source) []Event {
	t.Helper()
	var out []Event
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, ev)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("Err after drain: %v", err)
	}
	return out
}

// canonicalAll maps the stream through the codec's canonical form, the
// shape in which cached replays are expected to return events.
func canonicalAll(evs []Event) []Event {
	out := make([]Event, len(evs))
	for i, ev := range evs {
		out[i] = canonical(ev)
	}
	return out
}

func TestReplayCacheMaterialisesOnce(t *testing.T) {
	want := canonicalAll(testEvents(2000))
	var opens atomic.Int64
	gen := func() Source {
		opens.Add(1)
		return NewSliceSource(want)
	}
	c := NewReplayCache(0)
	for i := 0; i < 5; i++ {
		got := drainAll(t, c.Open("k", gen))
		eventsEqual(t, got, want)
	}
	if n := opens.Load(); n != 1 {
		t.Fatalf("generator opened %d times, want 1", n)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 5 || st.Misses != 0 || st.Rejected != 0 {
		t.Fatalf("stats = %+v, want 1 entry, 5 hits", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("stats report %d resident bytes", st.Bytes)
	}
}

func TestReplayCacheConcurrentCursors(t *testing.T) {
	want := canonicalAll(testEvents(5000))
	c := NewReplayCache(0)
	gen := func() Source { return NewSliceSource(want) }
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := c.Open("k", gen)
			var n int
			for {
				ev, ok := src.Next()
				if !ok {
					break
				}
				if ev != want[n] {
					errs <- "cursor diverged from reference stream"
					return
				}
				n++
			}
			if src.Err() != nil || n != len(want) {
				errs <- "cursor ended early or with error"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func TestReplayCacheBudgetFallback(t *testing.T) {
	want := canonicalAll(testEvents(4000))
	var opens atomic.Int64
	gen := func() Source {
		opens.Add(1)
		return NewSliceSource(want)
	}
	// A 4000-event stream encodes to far more than 128 bytes, so the
	// cache must reject it and regenerate on every open.
	c := NewReplayCache(128)
	for i := 0; i < 3; i++ {
		got := drainAll(t, c.Open("k", gen))
		eventsEqual(t, got, want)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("over-budget stream retained: %+v", st)
	}
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3", st.Misses)
	}
	// One open to materialise (abandoned) + one live fallback per Open.
	if n := opens.Load(); n != 4 {
		t.Fatalf("generator opened %d times, want 4", n)
	}
}

func TestReplayCacheFailingStreamNotCached(t *testing.T) {
	var opens atomic.Int64
	gen := func() Source {
		opens.Add(1)
		return NewFailAfter(NewSliceSource(testEvents(100)), 10, nil)
	}
	c := NewReplayCache(0)
	for i := 0; i < 2; i++ {
		src := c.Open("bad", gen)
		var n int
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			n++
		}
		if n != 10 {
			t.Fatalf("open %d: got %d events, want 10", i, n)
		}
		if err := src.Err(); err != ErrInjected {
			t.Fatalf("open %d: Err = %v, want ErrInjected", i, err)
		}
	}
	if st := c.Stats(); st.Entries != 0 || st.Rejected != 1 {
		t.Fatalf("failing stream cached: %+v", c.Stats())
	}
}

func TestReplayCacheDistinctKeys(t *testing.T) {
	a := canonicalAll(testEvents(100))
	b := canonicalAll(testEvents(300))
	c := NewReplayCache(0)
	gotA := drainAll(t, c.Open("a", func() Source { return NewSliceSource(a) }))
	gotB := drainAll(t, c.Open("b", func() Source { return NewSliceSource(b) }))
	eventsEqual(t, gotA, a)
	eventsEqual(t, gotB, b)
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

func TestReplayStatsString(t *testing.T) {
	c := NewReplayCache(64 << 20)
	drainAll(t, c.Open("k", func() Source { return NewSliceSource(canonicalAll(testEvents(50))) }))
	s := c.Stats().String()
	if s == "" {
		t.Fatal("empty stats string")
	}
}
