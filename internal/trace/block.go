package trace

// Struct-of-arrays event delivery. A Block holds one batch of events as
// parallel per-field columns instead of a []Event slice: the hot replay
// loops never materialise a 32-byte Event struct per event, decoders
// write straight into the columns, and consumers read only the columns
// their event kinds carry. The batch pipeline — replay cursor, wrapper
// chain, sim.Stepper, the timing model and the serving path — moves
// blocks end to end; []Event batches remain only as the compatibility
// adapter for external sources (see AsBlocks).
//
// Column contract: a column holds meaningful data only at indices whose
// kind carries that field (the same fields the v3 encoding stores — see
// format.go). Everything else is stale garbage from earlier fills, which
// is what lets decoders skip zeroing 32 bytes per event. Consumers must
// therefore gate every column read on the event kind, exactly as
// Block.Event does; comparing or copying whole columns across events of
// mixed kinds is a bug.

import "sync"

// BlockLen is the standard block capacity of the hot loops: the same
// 1024-event granularity the []Event batch path used, large enough to
// amortise per-call dispatch, small enough that the cancellation poll
// between blocks stays in the microseconds.
const BlockLen = 1024

// KindTakenBit flags a taken branch inside a Block's KindTaken column;
// the low bits are the event Kind (the v3 kind-byte layout).
const KindTakenBit = takenBit

// Block is a struct-of-arrays batch of events. All columns share one
// length (Len); NextBlock implementations resize the block to exactly
// the events they delivered.
//
// A block may be a zero-copy view over shared storage (a replay cache's
// column store): NextBlock implementations are free to repoint the
// columns at shared memory instead of copying into the caller's backing
// arrays. A delivered block is therefore valid only until the next
// NextBlock call on the same source, and must be treated as read-only
// unless Own has been called first.
type Block struct {
	KindTaken []uint8 // Kind | KindTakenBit (branches)
	IP        []uint32
	Addr      []uint32 // load/store/call/return: effective; branch: target
	Val       []uint32 // loads only
	Offset    []int32  // load/store only
	Src1      []uint32 // load/store/branch/alu
	Src2      []uint32 // load/store/alu
	Lat       []uint8  // alu only

	// shared marks the columns as aliasing storage the block does not
	// own. Resize and Own reallocate before any write can land there.
	shared bool
}

// NewBlock returns an empty block with all columns pre-allocated to the
// given capacity. Resize grows past it on demand; pre-sizing just avoids
// the reallocation.
func NewBlock(capacity int) *Block {
	b := &Block{}
	b.Resize(capacity)
	b.Resize(0)
	return b
}

// Len returns the number of events in the block.
func (b *Block) Len() int { return len(b.KindTaken) }

// Resize sets the block's length to n events, reallocating the columns
// when n exceeds their capacity (or when they alias shared storage, so
// a filler can never scribble over another cursor's data). Newly
// exposed entries hold unspecified (stale) data; fillers overwrite the
// fields their kinds carry.
func (b *Block) Resize(n int) {
	if b.shared || cap(b.KindTaken) < n {
		b.shared = false
		b.KindTaken = make([]uint8, n)
		b.IP = make([]uint32, n)
		b.Addr = make([]uint32, n)
		b.Val = make([]uint32, n)
		b.Offset = make([]int32, n)
		b.Src1 = make([]uint32, n)
		b.Src2 = make([]uint32, n)
		b.Lat = make([]uint8, n)
		return
	}
	b.KindTaken = b.KindTaken[:n]
	b.IP = b.IP[:n]
	b.Addr = b.Addr[:n]
	b.Val = b.Val[:n]
	b.Offset = b.Offset[:n]
	b.Src1 = b.Src1[:n]
	b.Src2 = b.Src2[:n]
	b.Lat = b.Lat[:n]
}

// Own ensures the block owns its columns, copying them out of shared
// storage if NextBlock delivered a zero-copy view. Mutators (SetEvent on
// a delivered block, fault injectors) must call it first; it is a no-op
// on an already-owned block.
func (b *Block) Own() {
	if !b.shared {
		return
	}
	n := len(b.KindTaken)
	kt := make([]uint8, n)
	copy(kt, b.KindTaken)
	ip := make([]uint32, n)
	copy(ip, b.IP)
	addr := make([]uint32, n)
	copy(addr, b.Addr)
	val := make([]uint32, n)
	copy(val, b.Val)
	off := make([]int32, n)
	copy(off, b.Offset)
	src1 := make([]uint32, n)
	copy(src1, b.Src1)
	src2 := make([]uint32, n)
	copy(src2, b.Src2)
	lat := make([]uint8, n)
	copy(lat, b.Lat)
	b.KindTaken, b.IP, b.Addr, b.Val, b.Offset, b.Src1, b.Src2, b.Lat = kt, ip, addr, val, off, src1, src2, lat
	b.shared = false
}

// Kind returns event i's kind.
func (b *Block) Kind(i int) Kind { return Kind(b.KindTaken[i] &^ KindTakenBit) }

// Taken reports event i's branch outcome.
func (b *Block) Taken(i int) bool { return b.KindTaken[i]&KindTakenBit != 0 }

// Event gathers event i into the AoS representation, reading only the
// columns event i's kind carries — fields the kind does not store come
// back zero, exactly as a Reader would decode them.
func (b *Block) Event(i int) Event {
	kb := b.KindTaken[i]
	ev := Event{Kind: Kind(kb &^ KindTakenBit), IP: b.IP[i]}
	switch ev.Kind {
	case KindLoad:
		ev.Addr = b.Addr[i]
		ev.Val = b.Val[i]
		ev.Offset = b.Offset[i]
		ev.Src1 = b.Src1[i]
		ev.Src2 = b.Src2[i]
	case KindStore:
		ev.Addr = b.Addr[i]
		ev.Offset = b.Offset[i]
		ev.Src1 = b.Src1[i]
		ev.Src2 = b.Src2[i]
	case KindBranch:
		ev.Addr = b.Addr[i]
		ev.Taken = kb&KindTakenBit != 0
		ev.Src1 = b.Src1[i]
	case KindCall, KindReturn:
		ev.Addr = b.Addr[i]
	case KindALU:
		ev.Src1 = b.Src1[i]
		ev.Src2 = b.Src2[i]
		ev.Lat = b.Lat[i]
	}
	return ev
}

// SetEvent scatters ev into the columns at index i, writing exactly the
// fields ev's kind carries (the column contract above).
func (b *Block) SetEvent(i int, ev Event) {
	kb := uint8(ev.Kind)
	if ev.Kind == KindBranch && ev.Taken {
		kb |= KindTakenBit
	}
	b.KindTaken[i] = kb
	b.IP[i] = ev.IP
	switch ev.Kind {
	case KindLoad:
		b.Addr[i] = ev.Addr
		b.Val[i] = ev.Val
		b.Offset[i] = ev.Offset
		b.Src1[i] = ev.Src1
		b.Src2[i] = ev.Src2
	case KindStore:
		b.Addr[i] = ev.Addr
		b.Offset[i] = ev.Offset
		b.Src1[i] = ev.Src1
		b.Src2[i] = ev.Src2
	case KindBranch:
		b.Addr[i] = ev.Addr
		b.Src1[i] = ev.Src1
	case KindCall, KindReturn:
		b.Addr[i] = ev.Addr
	case KindALU:
		b.Src1[i] = ev.Src1
		b.Src2[i] = ev.Src2
		b.Lat[i] = ev.Lat
	}
}

// AppendEvents gathers the whole block onto dst, for consumers that
// still want []Event batches.
func (b *Block) AppendEvents(dst []Event) []Event {
	for i := range b.KindTaken {
		dst = append(dst, b.Event(i))
	}
	return dst
}

// BlockSource is a Source that can deliver events as SoA blocks. The
// contract mirrors BatchSource's scanner model:
//
//   - NextBlock fills b with up to max events (max ≥ 1; the block is
//     resized to exactly the count delivered) and returns that count.
//   - ok is false once the stream is exhausted (clean EOF or error); the
//     final partial block may be delivered alongside ok == false.
//   - After ok == false, Err reports whether the stream ended on an
//     error, exactly as for Source.
type BlockSource interface {
	Source
	NextBlock(b *Block, max int) (n int, ok bool)
}

// blockPool recycles standard-capacity blocks across drain loops, so a
// steady-state replay allocates nothing per trace, let alone per event.
var blockPool = sync.Pool{New: func() any { return NewBlock(BlockLen) }}

// GetBlock returns a pooled block; pair it with PutBlock when the drain
// loop is done. Its column capacity is at least BlockLen.
func GetBlock() *Block { return blockPool.Get().(*Block) }

// PutBlock returns a block obtained from GetBlock to the pool.
func PutBlock(b *Block) {
	if b != nil {
		blockPool.Put(b)
	}
}

// AsBlocks returns src itself when it already delivers blocks natively,
// or wraps it in an adapter that assembles blocks from []Event batches
// (which in turn fall back to per-event Next for unbatched sources).
// Wrapper chains built from the package's own sources and wrappers stay
// block-native end to end.
func AsBlocks(src Source) BlockSource {
	if bs, ok := src.(BlockSource); ok {
		return bs
	}
	return &blockAdapter{bs: AsBatch(src)}
}

// blockAdapter lifts a BatchSource to block delivery: the compatibility
// path for external sources. The scratch batch is reused across calls.
type blockAdapter struct {
	bs  BatchSource
	buf []Event
}

// Next implements Source.
func (a *blockAdapter) Next() (Event, bool) { return a.bs.Next() }

// Err implements Source.
func (a *blockAdapter) Err() error { return a.bs.Err() }

// NextBlock implements BlockSource by scattering a []Event batch.
func (a *blockAdapter) NextBlock(b *Block, max int) (int, bool) {
	if max > cap(a.buf) {
		a.buf = make([]Event, max)
	}
	n, ok := a.bs.NextBatch(a.buf[:max])
	b.Resize(n)
	for i, ev := range a.buf[:n] {
		b.SetEvent(i, ev)
	}
	return n, ok
}

// NextBlock implements BlockSource by scattering straight out of the
// slice.
func (s *SliceSource) NextBlock(b *Block, max int) (int, bool) {
	n := len(s.events) - s.pos
	if n > max {
		n = max
	}
	b.Resize(n)
	for i, ev := range s.events[s.pos : s.pos+n] {
		b.SetEvent(i, ev)
	}
	s.pos += n
	return n, s.pos < len(s.events)
}

// NextBlock implements BlockSource: the limit truncates the block, and
// block delivery is preserved through the wrapped source when it
// supports it.
func (l *Limit) NextBlock(b *Block, max int) (int, bool) {
	if l.n <= 0 {
		b.Resize(0)
		return 0, false
	}
	if int64(max) > l.n {
		max = int(l.n)
	}
	if l.blks == nil {
		l.blks = AsBlocks(l.src)
	}
	n, ok := l.blks.NextBlock(b, max)
	l.n -= int64(n)
	if l.n <= 0 {
		ok = false
	}
	return n, ok
}
