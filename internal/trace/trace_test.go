package trace

import (
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindALU:    "alu",
		KindLoad:   "load",
		KindStore:  "store",
		KindBranch: "branch",
		KindCall:   "call",
		KindReturn: "return",
		Kind(99):   "invalid",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, s)
		}
	}
}

func TestKindValid(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if !k.Valid() {
			t.Errorf("Kind(%d).Valid() = false, want true", k)
		}
	}
	if Kind(numKinds).Valid() {
		t.Errorf("Kind(%d).Valid() = true, want false", numKinds)
	}
}

func TestEventIsMem(t *testing.T) {
	if !(Event{Kind: KindLoad}).IsMem() {
		t.Error("load should be mem")
	}
	if !(Event{Kind: KindStore}).IsMem() {
		t.Error("store should be mem")
	}
	if (Event{Kind: KindBranch}).IsMem() {
		t.Error("branch should not be mem")
	}
	if (Event{Kind: KindALU}).IsMem() {
		t.Error("alu should not be mem")
	}
}

func TestEventLatencyDefault(t *testing.T) {
	if got := (Event{}).Latency(); got != 1 {
		t.Errorf("zero Lat should mean 1 cycle, got %d", got)
	}
	if got := (Event{Lat: 4}).Latency(); got != 4 {
		t.Errorf("Lat 4 should mean 4 cycles, got %d", got)
	}
}

func TestSliceSource(t *testing.T) {
	evs := []Event{
		{Kind: KindLoad, IP: 1, Addr: 100},
		{Kind: KindBranch, IP: 2, Taken: true},
	}
	src := NewSliceSource(evs)
	for i, want := range evs {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("event %d: unexpected end of stream", i)
		}
		if got != want {
			t.Errorf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Error("expected end of stream")
	}
	if src.Err() != nil {
		t.Errorf("unexpected error: %v", src.Err())
	}

	src.Reset()
	if ev, ok := src.Next(); !ok || ev != evs[0] {
		t.Errorf("after Reset, got %+v ok=%v, want first event", ev, ok)
	}
}

func TestLimit(t *testing.T) {
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = Event{Kind: KindALU, IP: uint32(i)}
	}
	lim := NewLimit(NewSliceSource(evs), 3)
	var n int
	for {
		_, ok := lim.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("Limit yielded %d events, want 3", n)
	}
	if lim.Err() != nil {
		t.Errorf("unexpected error: %v", lim.Err())
	}
}

func TestLimitZero(t *testing.T) {
	lim := NewLimit(NewSliceSource([]Event{{Kind: KindALU}}), 0)
	if _, ok := lim.Next(); ok {
		t.Error("Limit(0) should yield nothing")
	}
}

func TestCopy(t *testing.T) {
	evs := []Event{
		{Kind: KindLoad, IP: 10, Addr: 0x1000, Offset: 8},
		{Kind: KindStore, IP: 11, Addr: 0x2000},
		{Kind: KindALU, IP: 12, Src1: 1},
	}
	var sink SliceSink
	n, err := Copy(&sink, NewSliceSource(evs))
	if err != nil {
		t.Fatalf("Copy: %v", err)
	}
	if n != int64(len(evs)) {
		t.Errorf("Copy transferred %d events, want %d", n, len(evs))
	}
	for i := range evs {
		if sink.Events[i] != evs[i] {
			t.Errorf("event %d: got %+v, want %+v", i, sink.Events[i], evs[i])
		}
	}
}
