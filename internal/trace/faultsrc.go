package trace

import (
	"context"
	"errors"
	"fmt"
)

// Fault-injecting Source wrappers. The resilient-harness tests (and
// capsim's -inject flag) use these to drive corrupt and hostile streams
// through the full experiment path: a production-grade harness must
// isolate a bad trace instead of crashing or silently folding garbage
// into the aggregate tables.

// ErrInjected is the default error produced by the fault wrappers.
var ErrInjected = errors.New("trace: injected fault")

// transientErr marks an error as transient: the run layer's bounded
// retry policy re-opens the trace when it sees one.
type transientErr struct{ err error }

func (t *transientErr) Error() string { return "transient: " + t.err.Error() }
func (t *transientErr) Unwrap() error { return t.err }

// Transient wraps err so that IsTransient reports true for it. A nil err
// is returned unchanged.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err (or any error it wraps) was marked
// with Transient. Context cancellation and deadline expiry are never
// transient.
func IsTransient(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t *transientErr
	return errors.As(err, &t)
}

// FailAfter yields at most n events from src and then ends the stream
// with the given error — the trace-file analogue of a file truncated
// mid-event or a decoder hitting corrupt bytes. A nil err defaults to
// ErrInjected.
type FailAfter struct {
	src  Source
	bs   BatchSource
	blks BlockSource
	n    int64
	err  error
}

// NewFailAfter returns a Source that fails with err after n events.
func NewFailAfter(src Source, n int64, err error) *FailAfter {
	if err == nil {
		err = ErrInjected
	}
	return &FailAfter{src: src, n: n, err: err}
}

// Next implements Source.
func (f *FailAfter) Next() (Event, bool) {
	if f.n <= 0 {
		return Event{}, false
	}
	f.n--
	return f.src.Next()
}

// NextBatch implements BatchSource: the fault budget truncates batches
// exactly as it truncates per-event delivery.
func (f *FailAfter) NextBatch(dst []Event) (int, bool) {
	if f.n <= 0 {
		return 0, false
	}
	if int64(len(dst)) > f.n {
		dst = dst[:f.n]
	}
	if f.bs == nil {
		f.bs = AsBatch(f.src)
	}
	n, ok := f.bs.NextBatch(dst)
	f.n -= int64(n)
	if f.n <= 0 {
		ok = false
	}
	return n, ok
}

// NextBlock implements BlockSource with the same truncating budget.
func (f *FailAfter) NextBlock(b *Block, max int) (int, bool) {
	if f.n <= 0 {
		b.Resize(0)
		return 0, false
	}
	if int64(max) > f.n {
		max = int(f.n)
	}
	if f.blks == nil {
		f.blks = AsBlocks(f.src)
	}
	n, ok := f.blks.NextBlock(b, max)
	f.n -= int64(n)
	if f.n <= 0 {
		ok = false
	}
	return n, ok
}

// Err implements Source: once the budget is exhausted the injected error
// is reported; an earlier error from the wrapped source wins.
func (f *FailAfter) Err() error {
	if err := f.src.Err(); err != nil {
		return err
	}
	if f.n <= 0 {
		return f.err
	}
	return nil
}

// Corrupt passes events through, mutating every k-th one. The default
// mutation scrambles the effective address and flips the branch outcome
// — plausible-looking damage that only failure accounting (not a crash)
// can surface.
type Corrupt struct {
	src    Source
	bs     BatchSource
	blks   BlockSource
	every  int64
	n      int64
	mutate func(*Event)
}

// NewCorrupt returns a Source corrupting every k-th event (k ≥ 1) with
// mutate; a nil mutate installs the default field-scrambler.
func NewCorrupt(src Source, every int64, mutate func(*Event)) *Corrupt {
	if every < 1 {
		every = 1
	}
	if mutate == nil {
		mutate = func(ev *Event) {
			ev.Addr = ^ev.Addr ^ 0xDEAD_BEEF
			ev.Taken = !ev.Taken
			ev.Offset = -ev.Offset - 1
		}
	}
	return &Corrupt{src: src, every: every, mutate: mutate}
}

// Next implements Source.
func (c *Corrupt) Next() (Event, bool) {
	ev, ok := c.src.Next()
	if !ok {
		return ev, false
	}
	c.n++
	if c.n%c.every == 0 {
		c.mutate(&ev)
	}
	return ev, true
}

// NextBatch implements BatchSource, applying the same every-k mutation
// schedule to batched delivery.
func (c *Corrupt) NextBatch(dst []Event) (int, bool) {
	if c.bs == nil {
		c.bs = AsBatch(c.src)
	}
	n, ok := c.bs.NextBatch(dst)
	for i := 0; i < n; i++ {
		c.n++
		if c.n%c.every == 0 {
			c.mutate(&dst[i])
		}
	}
	return n, ok
}

// NextBlock implements BlockSource. Corrupted events round-trip through
// the AoS form so arbitrary mutate functions keep working; under the
// block column contract only the fields the (possibly mutated) kind
// carries survive into the columns, which is all any kind-gated
// consumer can observe.
func (c *Corrupt) NextBlock(b *Block, max int) (int, bool) {
	if c.blks == nil {
		c.blks = AsBlocks(c.src)
	}
	n, ok := c.blks.NextBlock(b, max)
	for i := 0; i < n; i++ {
		c.n++
		if c.n%c.every == 0 {
			// The block may be a zero-copy view into shared replay
			// storage; take ownership before scribbling on it.
			b.Own()
			ev := b.Event(i)
			c.mutate(&ev)
			b.SetEvent(i, ev)
		}
	}
	return n, ok
}

// Err implements Source.
func (c *Corrupt) Err() error { return c.src.Err() }

// ErrSource ends the stream immediately with a fixed error, standing in
// for a source whose open/handshake fails.
type ErrSource struct{ err error }

// NewErrSource returns a Source that yields nothing and reports err
// (ErrInjected when nil).
func NewErrSource(err error) *ErrSource {
	if err == nil {
		err = ErrInjected
	}
	return &ErrSource{err: err}
}

// Next implements Source.
func (e *ErrSource) Next() (Event, bool) { return Event{}, false }

// Err implements Source.
func (e *ErrSource) Err() error { return e.err }

// Hang yields events from src until after n, then blocks in Next until
// the context is cancelled, after which the stream ends with the
// context's error. It models a stalled pipe or network trace feed; only
// cancellation can unblock the consuming goroutine.
type Hang struct {
	ctx context.Context
	src Source
	n   int64
	err error
}

// NewHang returns a Source that hangs after n events until ctx is done.
func NewHang(ctx context.Context, src Source, n int64) *Hang {
	return &Hang{ctx: ctx, src: src, n: n}
}

// Next implements Source.
func (h *Hang) Next() (Event, bool) {
	if h.n > 0 {
		h.n--
		return h.src.Next()
	}
	<-h.ctx.Done()
	h.err = fmt.Errorf("trace: source hung until cancelled: %w", h.ctx.Err())
	return Event{}, false
}

// Err implements Source.
func (h *Hang) Err() error {
	if h.err != nil {
		return h.err
	}
	return h.src.Err()
}

// FlakyOpen wraps an opener so that its first `failures` opens yield a
// source failing with a transient error after `events` events; later
// opens pass through. The run layer's retry policy is tested with this.
func FlakyOpen(open func() Source, failures int, events int64) func() Source {
	remaining := failures
	return func() Source {
		if remaining > 0 {
			remaining--
			return NewFailAfter(open(), events, Transient(ErrInjected))
		}
		return open()
	}
}
