package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarises a trace: event counts by kind, static footprint, and a
// coarse per-static-load pattern classification used by cmd/traceinfo to
// sanity-check generated workloads against the behaviours described in §2
// of the paper.
type Stats struct {
	Total    int64
	ByKind   [int(numKinds)]int64
	LoadIPs  int // distinct static loads
	TakenPct float64

	// Pattern classification of static loads by their dynamic address
	// sequence. A static load is classified by the strongest property its
	// sequence exhibits: Constant ⊂ Stride ⊂ Other.
	ConstantLoads int // same address every time (stride 0)
	StrideLoads   int // constant non-zero delta
	OtherLoads    int // anything else (context or irregular)
}

// LoadShare returns the fraction of all events that are loads.
func (s *Stats) LoadShare() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.ByKind[KindLoad]) / float64(s.Total)
}

// String renders the stats as a small human-readable report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d\n", s.Total)
	for k := Kind(0); k < numKinds; k++ {
		if s.ByKind[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-7s %12d\n", k, s.ByKind[k])
	}
	fmt.Fprintf(&b, "static loads: %d (constant %d, stride %d, other %d)\n",
		s.LoadIPs, s.ConstantLoads, s.StrideLoads, s.OtherLoads)
	if s.ByKind[KindBranch] > 0 {
		fmt.Fprintf(&b, "branch taken: %.1f%%\n", s.TakenPct*100)
	}
	return b.String()
}

// loadClass tracks the running classification of one static load.
type loadClass struct {
	count    int64
	last     uint32
	stride   int64
	constant bool
	strided  bool
}

// Collect consumes the whole source and returns its statistics.
func Collect(src Source) (*Stats, error) {
	s := &Stats{}
	loads := make(map[uint32]*loadClass)
	var taken int64
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		s.Total++
		s.ByKind[ev.Kind]++
		switch ev.Kind {
		case KindBranch:
			if ev.Taken {
				taken++
			}
		case KindLoad:
			c := loads[ev.IP]
			if c == nil {
				c = &loadClass{constant: true, strided: true}
				loads[ev.IP] = c
			}
			classify(c, ev.Addr)
		}
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	s.LoadIPs = len(loads)
	for _, c := range loads {
		switch {
		case c.constant:
			s.ConstantLoads++
		case c.strided:
			s.StrideLoads++
		default:
			s.OtherLoads++
		}
	}
	if s.ByKind[KindBranch] > 0 {
		s.TakenPct = float64(taken) / float64(s.ByKind[KindBranch])
	}
	return s, nil
}

func classify(c *loadClass, addr uint32) {
	defer func() { c.last = addr; c.count++ }()
	if c.count == 0 {
		return
	}
	delta := int64(addr) - int64(c.last)
	if delta != 0 {
		c.constant = false
	}
	if c.count == 1 {
		c.stride = delta
		return
	}
	if delta != c.stride {
		c.strided = false
	}
}

// TopLoads returns up to n static load IPs ordered by dynamic execution
// count, highest first. It consumes the source.
func TopLoads(src Source, n int) ([]uint32, []int64, error) {
	counts := make(map[uint32]int64)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if ev.Kind == KindLoad {
			counts[ev.IP]++
		}
	}
	if err := src.Err(); err != nil {
		return nil, nil, err
	}
	ips := make([]uint32, 0, len(counts))
	for ip := range counts {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool {
		if counts[ips[i]] != counts[ips[j]] {
			return counts[ips[i]] > counts[ips[j]]
		}
		return ips[i] < ips[j]
	})
	if len(ips) > n {
		ips = ips[:n]
	}
	out := make([]int64, len(ips))
	for i, ip := range ips {
		out[i] = counts[ip]
	}
	return ips, out, nil
}
