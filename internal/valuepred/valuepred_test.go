package valuepred

import "testing"

// drive runs a predictor over a value sequence for one static load.
func drive(p Predictor, ip uint32, vals []uint32) (specCorrect, mispred int) {
	for _, v := range vals {
		pr := p.Predict(ip)
		if pr.Speculate {
			if pr.Val == v {
				specCorrect++
			} else {
				mispred++
			}
		}
		p.Resolve(ip, pr, v)
	}
	return
}

func constSeq(v uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestLastValueConstant(t *testing.T) {
	p := NewLast(DefaultConfig())
	c, m := drive(p, 0x100, constSeq(42, 30))
	if c < 25 {
		t.Errorf("specCorrect = %d, want most of 30", c)
	}
	if m != 0 {
		t.Errorf("mispred = %d", m)
	}
}

func TestLastValueFailsOnCounter(t *testing.T) {
	p := NewLast(DefaultConfig())
	vals := make([]uint32, 40)
	for i := range vals {
		vals[i] = uint32(i)
	}
	c, _ := drive(p, 0x100, vals)
	if c != 0 {
		t.Errorf("last-value predicted %d of a counter", c)
	}
}

func TestStrideValueCounter(t *testing.T) {
	p := NewStride(DefaultConfig())
	vals := make([]uint32, 40)
	for i := range vals {
		vals[i] = uint32(7 + 3*i)
	}
	c, m := drive(p, 0x100, vals)
	if c < 32 {
		t.Errorf("specCorrect = %d, want most of 40", c)
	}
	if m != 0 {
		t.Errorf("mispred = %d", m)
	}
}

func TestContextValueRecurringSequence(t *testing.T) {
	p := NewContext(DefaultConfig())
	pattern := []uint32{10, 80, 40, 20}
	var vals []uint32
	for i := 0; i < 40; i++ {
		vals = append(vals, pattern[i%4])
	}
	c, _ := drive(p, 0x100, vals)
	if c < 28 {
		t.Errorf("specCorrect = %d, want most of 40", c)
	}
}

func TestContextValueFailsOnRandom(t *testing.T) {
	p := NewContext(DefaultConfig())
	x := uint32(9)
	vals := make([]uint32, 200)
	for i := range vals {
		x = x*1664525 + 1013904223
		vals[i] = x
	}
	c, _ := drive(p, 0x100, vals)
	if c > 10 {
		t.Errorf("context predicted %d of random values", c)
	}
}

func TestHybridValueCoversBothPatterns(t *testing.T) {
	p := NewHybrid(DefaultConfig())
	// Counter on one load, recurring pattern on another.
	counter := make([]uint32, 60)
	for i := range counter {
		counter[i] = uint32(4 * i)
	}
	c1, _ := drive(p, 0x100, counter)
	pattern := []uint32{5, 6, 9, 5, 7}
	var rec []uint32
	for i := 0; i < 60; i++ {
		rec = append(rec, pattern[i%len(pattern)])
	}
	c2, _ := drive(p, 0x200, rec)
	if c1 < 45 {
		t.Errorf("hybrid missed the counter: %d", c1)
	}
	if c2 < 45 {
		t.Errorf("hybrid missed the recurring values: %d", c2)
	}
}

func TestNames(t *testing.T) {
	cfg := DefaultConfig()
	for p, want := range map[Predictor]string{
		NewLast(cfg):    "last-value",
		NewStride(cfg):  "stride-value",
		NewContext(cfg): "context-value",
		NewHybrid(cfg):  "hybrid-value",
	} {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 1000
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLast(cfg)
}

func TestPredictionCorrect(t *testing.T) {
	p := Prediction{Val: 5, Predicted: true}
	if !p.Correct(5) || p.Correct(6) {
		t.Error("Correct misbehaves")
	}
	if (Prediction{}).Correct(0) {
		t.Error("unpredicted cannot be correct")
	}
}
