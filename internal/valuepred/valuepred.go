// Package valuepred implements load-value predictors — the alternative
// technique the paper's introduction weighs against address prediction
// ("load-value prediction may be used as an alternate option to reduce
// load-to-use latency; however, its lower predictability makes this
// option less attractive", §1). The designs follow the prior art the
// paper cites: the last-value predictor of [Lipa96a], a stride value
// predictor, the context (FCM) predictor of [Saze97], and the hybrid
// stride+context scheme of [Wang97].
//
// The predictors mirror the address predictors' interface so the same
// harness can measure value predictability of the same dynamic loads.
package valuepred

// Prediction is a value predictor's output for one dynamic load.
type Prediction struct {
	Val       uint32
	Predicted bool
	Speculate bool
}

// Correct reports whether the predicted value matched.
func (p Prediction) Correct(actual uint32) bool {
	return p.Predicted && p.Val == actual
}

// Predictor is a load-value predictor.
type Predictor interface {
	// Predict produces a value prediction for the static load at ip.
	Predict(ip uint32) Prediction
	// Resolve verifies a prediction against the loaded value and trains.
	Resolve(ip uint32, p Prediction, actual uint32)
	// Name identifies the predictor in reports.
	Name() string
}

// Config sizes the value predictors to match the address predictors'
// storage budget for a fair comparison.
type Config struct {
	Entries       int   // per-load table entries (direct-mapped)
	VHTEntries    int   // value history table for the context predictor
	HistoryLen    int   // values of history for the context predictor
	ConfMax       uint8 // saturating confidence ceiling
	ConfThreshold uint8
}

// DefaultConfig mirrors the address predictors' 4K-entry budget.
func DefaultConfig() Config {
	return Config{
		Entries:       4096,
		VHTEntries:    4096,
		HistoryLen:    4,
		ConfMax:       3,
		ConfThreshold: 2,
	}
}

func (c Config) index(ip uint32) int {
	return int(ip>>2) & (c.Entries - 1)
}

// lastValue predicts the previously loaded value ([Lipa96a]).
type lastValue struct {
	cfg  Config
	last []uint32
	have []bool
	conf []uint8
}

// NewLast builds a last-value predictor.
func NewLast(cfg Config) Predictor {
	checkPow2(cfg.Entries)
	return &lastValue{
		cfg:  cfg,
		last: make([]uint32, cfg.Entries),
		have: make([]bool, cfg.Entries),
		conf: make([]uint8, cfg.Entries),
	}
}

func (l *lastValue) Name() string { return "last-value" }

func (l *lastValue) Predict(ip uint32) Prediction {
	i := l.cfg.index(ip)
	if !l.have[i] {
		return Prediction{}
	}
	return Prediction{
		Val:       l.last[i],
		Predicted: true,
		Speculate: l.conf[i] >= l.cfg.ConfThreshold,
	}
}

func (l *lastValue) Resolve(ip uint32, p Prediction, actual uint32) {
	i := l.cfg.index(ip)
	if l.have[i] && l.last[i] == actual {
		if l.conf[i] < l.cfg.ConfMax {
			l.conf[i]++
		}
	} else {
		l.conf[i] = 0
	}
	l.last[i] = actual
	l.have[i] = true
}

// strideValue predicts last + learned delta (counters, induction values).
type strideValue struct {
	cfg    Config
	last   []uint32
	stride []int32
	state  []uint8 // 0 none, 1 have-last, 2 have-stride
	conf   []uint8
}

// NewStride builds a stride value predictor.
func NewStride(cfg Config) Predictor {
	checkPow2(cfg.Entries)
	return &strideValue{
		cfg:    cfg,
		last:   make([]uint32, cfg.Entries),
		stride: make([]int32, cfg.Entries),
		state:  make([]uint8, cfg.Entries),
		conf:   make([]uint8, cfg.Entries),
	}
}

func (s *strideValue) Name() string { return "stride-value" }

func (s *strideValue) Predict(ip uint32) Prediction {
	i := s.cfg.index(ip)
	if s.state[i] == 0 {
		return Prediction{}
	}
	return Prediction{
		Val:       s.last[i] + uint32(s.stride[i]),
		Predicted: true,
		Speculate: s.conf[i] >= s.cfg.ConfThreshold,
	}
}

func (s *strideValue) Resolve(ip uint32, p Prediction, actual uint32) {
	i := s.cfg.index(ip)
	if p.Predicted {
		if p.Val == actual {
			if s.conf[i] < s.cfg.ConfMax {
				s.conf[i]++
			}
		} else {
			s.conf[i] = 0
		}
	}
	if s.state[i] >= 1 {
		delta := int32(actual - s.last[i])
		if s.state[i] == 2 && delta == s.stride[i] {
			// steady
		} else {
			s.stride[i] = delta
			s.state[i] = 2
		}
	} else {
		s.state[i] = 1
	}
	s.last[i] = actual
}

// contextValue is the FCM predictor of [Saze97]: a per-load history of
// recent values, hashed to index a value history table.
type contextValue struct {
	cfg   Config
	hist  []uint32
	conf  []uint8
	vht   []uint32
	vhtOK []bool
	shift uint
	mask  uint32
}

// NewContext builds an FCM (context) value predictor.
func NewContext(cfg Config) Predictor {
	checkPow2(cfg.Entries)
	checkPow2(cfg.VHTEntries)
	bits := uint(0)
	for n := cfg.VHTEntries; n > 1; n >>= 1 {
		bits++
	}
	shift := (bits + uint(cfg.HistoryLen) - 1) / uint(cfg.HistoryLen)
	if shift == 0 {
		shift = 1
	}
	return &contextValue{
		cfg:   cfg,
		hist:  make([]uint32, cfg.Entries),
		conf:  make([]uint8, cfg.Entries),
		vht:   make([]uint32, cfg.VHTEntries),
		vhtOK: make([]bool, cfg.VHTEntries),
		shift: shift,
		mask:  uint32(cfg.VHTEntries - 1),
	}
}

func (c *contextValue) Name() string { return "context-value" }

func (c *contextValue) fold(hist, val uint32) uint32 {
	return (hist<<c.shift ^ val ^ val>>11) & c.mask
}

func (c *contextValue) Predict(ip uint32) Prediction {
	i := c.cfg.index(ip)
	h := c.hist[i]
	if !c.vhtOK[h] {
		return Prediction{}
	}
	return Prediction{
		Val:       c.vht[h],
		Predicted: true,
		Speculate: c.conf[i] >= c.cfg.ConfThreshold,
	}
}

func (c *contextValue) Resolve(ip uint32, p Prediction, actual uint32) {
	i := c.cfg.index(ip)
	if p.Predicted {
		if p.Val == actual {
			if c.conf[i] < c.cfg.ConfMax {
				c.conf[i]++
			}
		} else {
			c.conf[i] = 0
		}
	}
	h := c.hist[i]
	c.vht[h] = actual
	c.vhtOK[h] = true
	c.hist[i] = c.fold(h, actual)
}

// hybridValue combines stride and context components with a per-load
// selector, after [Wang97].
type hybridValue struct {
	cfg     Config
	stride  *strideValue
	context *contextValue
	sel     []uint8
}

// NewHybrid builds the hybrid stride+context value predictor.
func NewHybrid(cfg Config) Predictor {
	return &hybridValue{
		cfg:     cfg,
		stride:  NewStride(cfg).(*strideValue),
		context: NewContext(cfg).(*contextValue),
		sel:     make([]uint8, cfg.Entries),
	}
}

func (h *hybridValue) Name() string { return "hybrid-value" }

func (h *hybridValue) Predict(ip uint32) Prediction {
	sp := h.stride.Predict(ip)
	cp := h.context.Predict(ip)
	switch {
	case sp.Speculate && cp.Speculate:
		if h.sel[h.cfg.index(ip)] >= 2 {
			return cp
		}
		return sp
	case cp.Speculate:
		return cp
	case sp.Speculate:
		return sp
	case cp.Predicted:
		return cp
	default:
		return sp
	}
}

func (h *hybridValue) Resolve(ip uint32, p Prediction, actual uint32) {
	sp := h.stride.Predict(ip)
	cp := h.context.Predict(ip)
	i := h.cfg.index(ip)
	if sp.Predicted && cp.Predicted {
		switch {
		case cp.Val == actual && sp.Val != actual:
			if h.sel[i] < 3 {
				h.sel[i]++
			}
		case sp.Val == actual && cp.Val != actual:
			if h.sel[i] > 0 {
				h.sel[i]--
			}
		}
	}
	h.stride.Resolve(ip, sp, actual)
	h.context.Resolve(ip, cp, actual)
}

func checkPow2(n int) {
	if n <= 0 || n&(n-1) != 0 {
		panic("valuepred: table sizes must be powers of two")
	}
}
